(* Chaos engineering: seed-controlled fault injection and the DST harness.

   Three layers of coverage:
   - unit semantics of each fault kind (straggler / attempt failure / crash)
     against hand-computed timelines;
   - qcheck properties of [Chaos.materialize] (determinism, per-entity
     stream stability under job removal, the never-uncompletable guarantees)
     and of recovery (every random fault plan still completes every job,
     deterministically, under the full invariant oracle);
   - the DST harness itself: chaos-off bit-identity, pass verdicts on
     random scenarios, and the mutation self-test (a deliberately broken
     manager is caught and shrinks to <= 2 jobs + 1 fault). *)

module T = Mapreduce.Types
module Chaos = Opensim.Chaos
module Sim = Opensim.Simulator

let mrcp_driver ?(manager = ref None) cluster =
  let solver =
    {
      Cp.Solver.default_options with
      Cp.Solver.exact_task_limit = 400;
      fail_limit = 2_000;
      time_limit = 1e9;
    }
  in
  let m =
    Mrcp.Manager.create ~cluster
      {
        Mrcp.Manager.default_config with
        Mrcp.Manager.solver;
        validate = true;
        deferral_window = Some 2_000;
      }
  in
  manager := Some m;
  Opensim.Driver.of_mrcp m

(* --- chaos-off bit-identity --------------------------------------------- *)

let workload () =
  Gen.reset_tasks ();
  [
    Gen.mk_job ~id:0 ~deadline:6_000 ~maps:[ 1_000; 1_000; 500 ]
      ~reduces:[ 800 ] ();
    Gen.mk_job ~id:1 ~arrival:400 ~est:1_000 ~deadline:9_000
      ~maps:[ 700; 700 ] ~reduces:[ 300; 300 ] ();
    Gen.mk_job ~id:2 ~arrival:2_500 ~deadline:12_000 ~maps:[ 1_500 ]
      ~reduces:[] ();
  ]

let test_chaos_off_bit_identity () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  let run ~with_empty_plan =
    Gen.reset_tasks ();
    let driver = mrcp_driver cluster in
    if with_empty_plan then
      Sim.run ~validate:true ~chaos:Chaos.no_faults ~driver ~jobs:(workload ())
        ()
    else Sim.run ~validate:true ~driver ~jobs:(workload ()) ()
  in
  let a = run ~with_empty_plan:false in
  let b = run ~with_empty_plan:true in
  let completions r =
    List.map
      (fun (o : Sim.job_outcome) -> (o.Sim.job.T.id, o.Sim.completion))
      r.Sim.outcomes
  in
  Alcotest.(check (list (pair int int)))
    "identical completions" (completions a) (completions b);
  Alcotest.(check int) "identical event counts" a.Sim.events_executed
    b.Sim.events_executed;
  Alcotest.(check int) "no crashes" 0 b.Sim.crashes;
  Alcotest.(check int) "no failures" 0 b.Sim.task_failures;
  Alcotest.(check int) "no stragglers" 0 b.Sim.stragglers;
  Alcotest.(check int) "no lost work" 0 b.Sim.lost_work_ms

(* --- unit semantics of each fault kind ---------------------------------- *)

let one_task_job ~exec =
  Gen.reset_tasks ();
  let j = Gen.mk_job ~id:0 ~deadline:100_000 ~maps:[ exec ] ~reduces:[] () in
  (j, j.T.map_tasks.(0).T.task_id)

let test_straggler_semantics () =
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let job, task = one_task_job ~exec:1_000 in
  let manager = ref None in
  let driver = mrcp_driver ~manager cluster in
  let r =
    Sim.run ~validate:true
      ~chaos:[ Chaos.Straggler { task; attempt = 0; factor_1000 = 2_000 } ]
      ~driver ~jobs:[ job ] ()
  in
  Alcotest.(check int) "completion doubled" 2_000 r.Sim.makespan_ms;
  Alcotest.(check int) "one straggler" 1 r.Sim.stragglers;
  Alcotest.(check int) "nothing lost" 0 r.Sim.lost_work_ms;
  (* the slot was genuinely occupied for the inflated duration *)
  Alcotest.(check int) "busy accounting inflated" 2_000 r.Sim.map_busy_ms;
  let m = Option.get !manager in
  Alcotest.(check bool) "manager was told (session reset)" true
    (Mrcp.Manager.fault_resets m >= 1)

let test_attempt_failure_semantics () =
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let job, task = one_task_job ~exec:1_000 in
  let driver = mrcp_driver cluster in
  let r =
    Sim.run ~validate:true
      ~chaos:[ Chaos.Task_failure { task; attempt = 0; frac_1000 = 500 } ]
      ~driver ~jobs:[ job ] ()
  in
  (* fails 500 ms in, re-executes from scratch: 500 + 1000 *)
  Alcotest.(check int) "completion delayed by wasted half" 1_500
    r.Sim.makespan_ms;
  Alcotest.(check int) "one failure" 1 r.Sim.task_failures;
  Alcotest.(check int) "half the attempt lost" 500 r.Sim.lost_work_ms;
  Alcotest.(check int) "busy = wasted + full rerun" 1_500 r.Sim.map_busy_ms

let test_crash_semantics () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  let job, _task = one_task_job ~exec:1_000 in
  let manager = ref None in
  let driver = mrcp_driver ~manager cluster in
  let r =
    Sim.run ~validate:true
      ~chaos:[ Chaos.Crash { resource = 0; at = 500; rejoin = Some 50_000 } ]
      ~driver ~jobs:[ job ] ()
  in
  (* the attempt on r0 dies 500 ms in; the re-solve restarts it on r1 *)
  Alcotest.(check int) "killed and re-executed" 1_500 r.Sim.makespan_ms;
  Alcotest.(check int) "one crash" 1 r.Sim.crashes;
  Alcotest.(check int) "one rejoin" 1 r.Sim.rejoins;
  Alcotest.(check int) "partial work lost" 500 r.Sim.lost_work_ms;
  let m = Option.get !manager in
  Alcotest.(check int) "resource back up at the end" 0
    (Mrcp.Manager.resources_down m);
  Alcotest.(check bool) "certificate dropped" true
    (Mrcp.Manager.fault_resets m >= 2 (* crash + rejoin *))

let test_crash_baseline_recovers () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  let job, _ = one_task_job ~exec:1_000 in
  let driver =
    Opensim.Driver.of_slot_scheduler
      (Baselines.Slot_scheduler.create ~cluster
         ~policy:Baselines.Slot_scheduler.Min_edf_wc)
  in
  let r =
    Sim.run ~validate:true
      ~chaos:[ Chaos.Crash { resource = 0; at = 500; rejoin = None } ]
      ~driver ~jobs:[ job ] ()
  in
  Alcotest.(check int) "re-executed on the survivor" 1_500 r.Sim.makespan_ms;
  Alcotest.(check int) "partial work lost" 500 r.Sim.lost_work_ms

(* --- materialize properties --------------------------------------------- *)

let arbitrary_chaos_input =
  let open QCheck.Gen in
  let gen =
    let* m = int_range 1 4 in
    let* cap = int_range 1 2 in
    let* n_jobs = int_range 1 5 in
    let* jobs = flatten_l (List.init n_jobs (fun id -> Gen.gen_job id)) in
    let* seed = int_range 0 10_000 in
    return (T.uniform_cluster ~m ~map_capacity:cap ~reduce_capacity:cap, jobs, seed)
  in
  QCheck.make gen

let chatty_config =
  {
    Chaos.default with
    Chaos.crash_rate = 0.05;
    straggler_p = 0.3;
    task_failure_p = 0.3;
  }

let test_materialize_deterministic =
  QCheck.Test.make ~name:"materialize is a pure function of its inputs"
    ~count:50 arbitrary_chaos_input (fun (cluster, jobs, seed) ->
      Chaos.materialize chatty_config ~cluster ~jobs ~seed
      = Chaos.materialize chatty_config ~cluster ~jobs ~seed)

let task_fault_key = function
  | Chaos.Task_failure { task; _ } | Chaos.Straggler { task; _ } -> Some task
  | Chaos.Crash _ -> None

let test_materialize_stable_under_job_removal =
  QCheck.Test.make
    ~name:"dropping a job never changes the remaining tasks' faults" ~count:50
    arbitrary_chaos_input (fun (cluster, jobs, seed) ->
      QCheck.assume (List.length jobs > 1);
      let full = Chaos.materialize chatty_config ~cluster ~jobs ~seed in
      let reduced_jobs = List.filteri (fun i _ -> i > 0) jobs in
      let reduced =
        Chaos.materialize chatty_config ~cluster ~jobs:reduced_jobs ~seed
      in
      let surviving_ids =
        List.concat_map
          (fun j -> List.map (fun t -> t.T.task_id) (T.job_tasks j))
          reduced_jobs
      in
      let restrict plan =
        List.filter
          (fun f ->
            match task_fault_key f with
            | Some t -> List.mem t surviving_ids
            | None -> false)
          plan
      in
      restrict full = restrict reduced)

let test_materialize_bounds =
  QCheck.Test.make
    ~name:"materialized plans respect the never-uncompletable guarantees"
    ~count:50 arbitrary_chaos_input (fun (cluster, jobs, seed) ->
      let m = Array.length cluster in
      let plan = Chaos.materialize chatty_config ~cluster ~jobs ~seed in
      let failures = Hashtbl.create 16 in
      List.iter
        (function
          | Chaos.Crash { at; rejoin; _ } ->
              if m = 1 then QCheck.Test.fail_report "crash on a 1-node cluster";
              if at < 0 then QCheck.Test.fail_report "negative crash time";
              (match rejoin with
              | Some r when r <= at -> QCheck.Test.fail_report "rejoin <= at"
              | _ -> ())
          | Chaos.Task_failure { task; frac_1000; _ } ->
              if frac_1000 < 1 || frac_1000 > 999 then
                QCheck.Test.fail_report "frac out of (0,1)";
              Hashtbl.replace failures task
                (1 + Option.value (Hashtbl.find_opt failures task) ~default:0)
          | Chaos.Straggler { factor_1000; _ } ->
              if factor_1000 <= 1_000 then
                QCheck.Test.fail_report "straggler factor <= 1")
        plan;
      Hashtbl.iter
        (fun _ n ->
          if n > chatty_config.Chaos.max_failures then
            QCheck.Test.fail_report "more than max_failures failures on a task")
        failures;
      (* at least one resource up at every crash instant *)
      let crashes =
        List.filter_map
          (function
            | Chaos.Crash { resource; at; rejoin } -> Some (resource, at, rejoin)
            | _ -> None)
          plan
      in
      List.for_all
        (fun (_, at, _) ->
          let down_now =
            List.filter
              (fun (_, at', rejoin') ->
                at' <= at
                && match rejoin' with None -> true | Some r -> r > at)
              crashes
            |> List.map (fun (r, _, _) -> r)
            |> List.sort_uniq compare
          in
          List.length down_now < m)
        crashes)

let test_fault_json_roundtrip =
  QCheck.Test.make ~name:"fault JSON round-trips" ~count:50
    arbitrary_chaos_input (fun (cluster, jobs, seed) ->
      let plan = Chaos.materialize chatty_config ~cluster ~jobs ~seed in
      List.for_all
        (fun f -> Chaos.fault_of_json (Chaos.fault_to_json f) = f)
        plan)

(* --- recovery invariants over random fault plans ------------------------ *)

(* The heavyweight property: any materialized fault plan, on any manager,
   completes every job under the full oracle — twice, byte-identically.
   [Dst.check] is exactly that, so drive it through scenario seeds. *)
let test_recovery_invariants =
  QCheck.Test.make ~name:"random fault plans recover under the oracle"
    ~count:15
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      match Dst.check (Dst.generate ~seed) with
      | Dst.Pass _ -> true
      | Dst.Violation { message } -> QCheck.Test.fail_report message)

let test_scenario_json_roundtrip =
  QCheck.Test.make ~name:"scenario repro files round-trip" ~count:25
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let s = Dst.generate ~seed in
      Dst.of_json (Dst.to_json s) = s)

(* --- the shrinker bites ------------------------------------------------- *)

let find_violation ~mutation =
  let rec go seed =
    if seed > 50 then Alcotest.fail "no violation found in 50 seeds"
    else
      let s = Dst.generate ~seed in
      match Dst.run_once ~mutation s with
      | Error msg -> (s, msg)
      | Ok _ -> go (seed + 1)
  in
  go 1

let test_mutation_caught_and_shrunk () =
  let mutation = Dst.Drop_attempt_failed in
  let scenario, violation = find_violation ~mutation in
  let r = Dst.shrink ~mutation ~fuel:200 scenario ~violation in
  let jobs = List.length r.Dst.minimal.Dst.jobs in
  let faults = List.length r.Dst.minimal.Dst.faults in
  Alcotest.(check bool) "minimal repro <= 2 jobs" true (jobs <= 2);
  Alcotest.(check bool) "minimal repro <= 1 fault" true (faults <= 1);
  (* the minimal scenario still violates, and still does after a JSON
     round-trip (the repro file reproduces the bug) *)
  (match Dst.run_once ~mutation r.Dst.minimal with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "minimal scenario no longer violates");
  match Dst.run_once ~mutation (Dst.of_json (Dst.to_json r.Dst.minimal)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "round-tripped repro no longer violates"

let test_unmutated_repro_passes () =
  (* the same minimal repro with the mutation removed must be clean: the
     violation is the mutation's fault, not the scenario's *)
  let mutation = Dst.Drop_attempt_failed in
  let scenario, violation = find_violation ~mutation in
  let r = Dst.shrink ~mutation ~fuel:200 scenario ~violation in
  match Dst.check r.Dst.minimal with
  | Dst.Pass _ -> ()
  | Dst.Violation { message } ->
      Alcotest.failf "unmutated repro violates: %s" message

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "chaos"
    [
      ( "bit-identity",
        [ Alcotest.test_case "chaos off = no chaos arg" `Quick
            test_chaos_off_bit_identity ] );
      ( "semantics",
        [
          Alcotest.test_case "straggler inflates in place" `Quick
            test_straggler_semantics;
          Alcotest.test_case "attempt failure re-executes" `Quick
            test_attempt_failure_semantics;
          Alcotest.test_case "crash kills and re-plans" `Quick
            test_crash_semantics;
          Alcotest.test_case "baseline recovers from a crash" `Quick
            test_crash_baseline_recovers;
        ] );
      ( "materialize",
        [
          q test_materialize_deterministic;
          q test_materialize_stable_under_job_removal;
          q test_materialize_bounds;
          q test_fault_json_roundtrip;
        ] );
      ( "recovery",
        [ q test_recovery_invariants; q test_scenario_json_roundtrip ] );
      ( "shrinker",
        [
          Alcotest.test_case "mutation caught, shrunk to <= 2 jobs + 1 fault"
            `Slow test_mutation_caught_and_shrunk;
          Alcotest.test_case "unmutated minimal repro is clean" `Slow
            test_unmutated_repro_passes;
        ] );
    ]
