(* Shared instance builders and QCheck generators for the test suite.

   Every test binary used to carry its own ad-hoc [mk_task]/[mk_job]/counter
   trio; they are unified here.  The random generators produce scaled-down
   instances with the *shape* of the paper's Table 3/4 workloads — multi-task
   map phases, optional reduce phases, AR jobs with s_j > arrival, deadlines
   derived from est + a contention factor over the execution time — so qcheck
   counter-examples stay small and readable while still covering all three
   solver regimes (seed-optimal, exact B&B, LNS). *)

module T = Mapreduce.Types
module Instance = Sched.Instance

(* --- deterministic builders -------------------------------------------- *)

let task_counter = ref 1000

(* Tests that rebuild copies of the same jobs (e.g. one per driver) call this
   between builds so every copy gets identical task ids. *)
let reset_tasks ?(at = 1000) () = task_counter := at

let mk_task ~id ~job ~kind ~e =
  { T.task_id = id; job_id = job; kind; exec_time = e; capacity_req = 1 }

(* [maps] and [reduces] are duration lists; task ids come from the shared
   counter.  [earliest_start = max est arrival] covers both plain jobs
   (est 0) and AR jobs with an advance reservation. *)
let mk_job ~id ?(arrival = 0) ?(est = 0) ~deadline ~maps ~reduces () =
  let fresh kind e =
    incr task_counter;
    mk_task ~id:!task_counter ~job:id ~kind ~e
  in
  {
    T.id;
    arrival;
    earliest_start = max est arrival;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

let instance ?(now = 0) ?(map_cap = 2) ?(reduce_cap = 2) jobs =
  Instance.of_fresh_jobs ~now ~map_capacity:map_cap ~reduce_capacity:reduce_cap
    jobs

(* --- random instances --------------------------------------------------- *)

(* Inclusive (lo, hi) parameter ranges, mirroring the knobs of the paper's
   Table 3 (workload: task counts, execution times, laxity) and Table 4
   (cluster capacities), scaled down for fast shrinking. *)
type params = {
  n_jobs : int * int;
  n_maps : int * int;
  n_reduces : int * int;
  exec : int * int;
  est : int * int;  (** s_j offset: > 0 makes an AR job *)
  slack : int * int;  (** deadline laxity beyond est + work/2 *)
  cap : int * int;  (** per-pool slot count of the combined resource *)
}

let default_params =
  {
    n_jobs = (1, 5);
    n_maps = (1, 4);
    n_reduces = (0, 3);
    exec = (1, 30);
    est = (0, 50);
    slack = (0, 120);
    cap = (1, 3);
  }

(* Small instances whose exact B&B always terminates quickly — for
   properties that need every solve to prove optimality. *)
let tiny_params =
  {
    default_params with
    n_jobs = (1, 4);
    n_maps = (1, 3);
    n_reduces = (0, 2);
    exec = (1, 20);
    slack = (0, 60);
  }

let range (lo, hi) = QCheck.Gen.int_range lo hi

let gen_job ?(p = default_params) id =
  let open QCheck.Gen in
  let* n_maps = range p.n_maps in
  let* n_reduces = range p.n_reduces in
  let* maps = list_repeat n_maps (range p.exec) in
  let* reduces = list_repeat n_reduces (range p.exec) in
  let* est = range p.est in
  let* slack = range p.slack in
  let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
  return
    (mk_job ~id ~est ~deadline:(est + (total / 2) + slack) ~maps ~reduces ())

let gen_instance ?(p = default_params) () =
  let open QCheck.Gen in
  let* n_jobs = range p.n_jobs in
  let* jobs = flatten_l (List.init n_jobs (fun id -> gen_job ~p id)) in
  let* map_cap = range p.cap in
  let* reduce_cap = range p.cap in
  return (instance ~map_cap ~reduce_cap jobs)

let gen_cluster =
  let open QCheck.Gen in
  let* m = range (1, 4) in
  let* map_capacity = range (1, 3) in
  let* reduce_capacity = range (1, 3) in
  return (T.uniform_cluster ~m ~map_capacity ~reduce_capacity)

(* Shrink by dropping whole jobs, then by halving single-job task durations.
   Both rebuild through [of_fresh_jobs] with the original capacities and
   preserve task ids, so a shrunk counter-example still names the same
   tasks. *)
let shrink_instance (inst : Instance.t) yield =
  let rebuild jobs =
    Instance.of_fresh_jobs ~now:inst.Instance.now
      ~map_capacity:inst.Instance.map_capacity
      ~reduce_capacity:inst.Instance.reduce_capacity jobs
  in
  let jobs =
    Array.to_list
      (Array.map (fun (pj : Instance.pending_job) -> pj.Instance.job)
         inst.Instance.jobs)
  in
  if List.length jobs > 1 then
    List.iteri
      (fun i _ -> yield (rebuild (List.filteri (fun j _ -> j <> i) jobs)))
      jobs;
  List.iteri
    (fun i (job : T.job) ->
      let halve (t : T.task) =
        if t.T.exec_time > 1 then { t with T.exec_time = t.T.exec_time / 2 }
        else t
      in
      let job' =
        {
          job with
          T.map_tasks = Array.map halve job.T.map_tasks;
          reduce_tasks = Array.map halve job.T.reduce_tasks;
        }
      in
      if job' <> job then
        yield (rebuild (List.mapi (fun j x -> if j = i then job' else x) jobs)))
    jobs

let arb_instance_of ?(p = default_params) () =
  QCheck.make
    ~print:(Format.asprintf "%a" Instance.pp)
    ~shrink:shrink_instance (gen_instance ~p ())

let arb_instance = arb_instance_of ()
let arb_tiny_instance = arb_instance_of ~p:tiny_params ()
