(* Tests for the propagation-kernel overhaul: event-granular watchers and
   timestamp wakeup suppression in the store, the Θ-Λ tree, and differential
   properties between the naive, timetable and edge-finding kernels.

   The key invariants:
   - [Timetable] computes exactly the pre-overhaul fixpoints, so its search
     trajectory (nodes/failures/objective/proof) is bit-identical to
     [Naive]'s on every instance;
   - the edge-finding kernels only prune — they never lose a solution the
     timetable search can reach, so proved objectives agree across all four
     kernels. *)

module Store = Cp.Store
module P = Cp.Propagators
module Model = Cp.Model
module Search = Cp.Search

(* --- event-granular watchers ------------------------------------------- *)

(* A min-watcher is woken by set_min but not by set_max (and vice versa);
   watch_fix fires only when the domain becomes a singleton. *)
let test_watch_granularity () =
  let s = Store.create () in
  let v = Store.new_var s ~min:0 ~max:10 in
  let min_runs = ref 0 and max_runs = ref 0 and fix_runs = ref 0 in
  let p_min = Store.register s (fun _ -> incr min_runs) in
  let p_max = Store.register s (fun _ -> incr max_runs) in
  let p_fix = Store.register s (fun _ -> incr fix_runs) in
  Store.watch_min s v p_min;
  Store.watch_max s v p_max;
  Store.watch_fix s v p_fix;
  Store.set_max s v 8;
  Store.propagate s;
  Alcotest.(check int) "set_max wakes no min-watcher" 0 !min_runs;
  Alcotest.(check int) "set_max wakes the max-watcher" 1 !max_runs;
  Alcotest.(check int) "set_max (non-fixing) wakes no fix-watcher" 0 !fix_runs;
  Store.set_min s v 3;
  Store.propagate s;
  Alcotest.(check int) "set_min wakes the min-watcher" 1 !min_runs;
  Alcotest.(check int) "set_min wakes no max-watcher" 1 !max_runs;
  Store.fix s v 5;
  Store.propagate s;
  Alcotest.(check int) "fixing wakes the fix-watcher" 1 !fix_runs;
  Alcotest.(check int) "fixing wakes both bound watchers" 2 !min_runs;
  Alcotest.(check int) "fixing wakes both bound watchers (max)" 2 !max_runs

(* An idempotent propagator's own writes do not re-queue it; a foreign
   write after its run does. *)
let test_wakeup_suppression () =
  let s = Store.create () in
  let x = Store.new_var s ~min:0 ~max:100 in
  let y = Store.new_var s ~min:0 ~max:100 in
  let runs = ref 0 in
  (* y >= x: reads min x, writes min y — idempotent *)
  let pid =
    Store.register s ~idempotent:true (fun s ->
        incr runs;
        Store.set_min s y (Store.min_of s x))
  in
  Store.watch_min s x pid;
  Store.watch_min s y pid;
  let before = Store.stats_wakeups_skipped s in
  Store.set_min s x 10;
  Store.propagate s;
  Alcotest.(check int) "one run reaches the fixpoint" 1 !runs;
  Alcotest.(check bool) "its own write to y was suppressed" true
    (Store.stats_wakeups_skipped s > before);
  Store.set_min s y 20;
  Store.propagate s;
  Alcotest.(check int) "a foreign write still wakes it" 2 !runs

(* --- Θ-Λ tree ----------------------------------------------------------- *)

let test_theta_tree_ect () =
  let tr = Cp.Theta_tree.create () in
  Cp.Theta_tree.prepare tr 3;
  Alcotest.(check int) "empty ect" Cp.Theta_tree.neg_inf
    (Cp.Theta_tree.ect tr);
  (* leaves in est order: (0,5) (4,5) (30,4) *)
  Cp.Theta_tree.add tr 0 ~est:0 ~p:5;
  Cp.Theta_tree.add tr 1 ~est:4 ~p:5;
  Alcotest.(check int) "ect{t0,t1} chains" 10 (Cp.Theta_tree.ect tr);
  Cp.Theta_tree.add tr 2 ~est:30 ~p:4;
  Alcotest.(check int) "ect{t0,t1,t2}" 34 (Cp.Theta_tree.ect tr);
  Cp.Theta_tree.remove tr 2;
  Alcotest.(check int) "remove restores" 10 (Cp.Theta_tree.ect tr);
  (* gray t1: Θ = {t0}, Λ = {t1}; ect_bar extends Θ by t1 *)
  Cp.Theta_tree.gray tr 1;
  Alcotest.(check int) "ect of Θ alone" 5 (Cp.Theta_tree.ect tr);
  Alcotest.(check int) "ect_bar extends by the gray task" 10
    (Cp.Theta_tree.ect_bar tr);
  Alcotest.(check int) "gray task is responsible" 1
    (Cp.Theta_tree.responsible tr)

(* The edge finder engages only on unary-equivalent pools. *)
let test_disjunctive_applicable () =
  let tsk start duration demand = { P.start; duration; demand } in
  Alcotest.(check bool) "cap 1, demand 1" true
    (P.disjunctive_applicable
       ~tasks:[| tsk 0 5 1; tsk 1 3 1 |]
       ~fixed:[||] ~capacity:1);
  Alcotest.(check bool) "all demands = capacity" true
    (P.disjunctive_applicable
       ~tasks:[| tsk 0 5 3; tsk 1 3 3 |]
       ~fixed:[||] ~capacity:3);
  Alcotest.(check bool) "a sub-capacity demand disables it" false
    (P.disjunctive_applicable
       ~tasks:[| tsk 0 5 1; tsk 1 3 2 |]
       ~fixed:[||] ~capacity:2);
  Alcotest.(check bool) "sub-capacity frozen occupation disables it" false
    (P.disjunctive_applicable
       ~tasks:[| tsk 0 5 2 |]
       ~fixed:[| (0, 4, 1) |] ~capacity:2);
  Alcotest.(check bool) "no variable task disables it" false
    (P.disjunctive_applicable ~tasks:[||] ~fixed:[| (0, 4, 1) |] ~capacity:1)

(* Edge finding prunes a textbook case the time table cannot: three unary
   tasks where t3 must go last, so its est rises past the others' joint
   completion even though no compulsory parts exist. *)
let test_edge_finding_prunes_textbook () =
  let build kernel =
    let s = Store.create () in
    let a = Store.new_var s ~min:0 ~max:6 in
    let b = Store.new_var s ~min:1 ~max:6 in
    let c = Store.new_var s ~min:0 ~max:20 in
    let tasks =
      [|
        { P.start = a; duration = 5; demand = 1 };
        { P.start = b; duration = 5; demand = 1 };
        { P.start = c; duration = 5; demand = 1 };
      |]
    in
    P.cumulative_kernel s ~kernel ~tasks ~fixed:[||] ~capacity:1;
    Store.propagate s;
    (s, c)
  in
  let s_tt, c_tt = build P.Timetable in
  let s_ef, c_ef = build P.Both in
  (* lcts are 11: t1 and t2 must both finish before t3 can start *)
  Alcotest.(check bool) "timetable leaves c's est weak" true
    (Store.min_of s_tt c_tt < 10);
  Alcotest.(check int) "edge finding lifts c past {a,b}" 10
    (Store.min_of s_ef c_ef)

(* --- differential properties over generated instances ------------------- *)

let root_bounds kernel inst =
  let model = Model.build ~kernel inst ~horizon:(Model.default_horizon inst) in
  match Store.propagate model.Model.store with
  | () ->
      let bounds v =
        (Store.min_of model.Model.store v, Store.max_of model.Model.store v)
      in
      Some
        (Array.concat
           [
             Array.map (fun (tv : Model.task_var) -> bounds tv.Model.var)
               model.Model.starts;
             Array.map bounds model.Model.lates;
             Array.map bounds model.Model.completions;
           ])
  | exception Store.Fail _ -> None

(* Root fixpoints: [Timetable] is exactly [Naive]'s; the edge-finding
   kernels are at least as tight on every variable (or fail earlier). *)
let prop_root_fixpoint_no_looser =
  QCheck.Test.make ~count:150 ~name:"root fixpoints: timetable = naive <= EF"
    Gen.arb_instance (fun inst ->
      match root_bounds P.Naive inst with
      | None -> true (* naive failed: nothing to compare *)
      | Some naive -> (
          (match root_bounds P.Timetable inst with
          | Some tt ->
              if tt <> naive then
                QCheck.Test.fail_report
                  "timetable root fixpoint differs from naive"
          | None -> QCheck.Test.fail_report "timetable failed where naive ran");
          match root_bounds P.Both inst with
          | None -> true (* strictly stronger: found the inconsistency *)
          | Some both ->
              Array.for_all2
                (fun (nmin, nmax) (bmin, bmax) -> bmin >= nmin && bmax <= nmax)
                naive both))

let search_outcome kernel inst =
  let model = Model.build ~kernel inst ~horizon:(Model.default_horizon inst) in
  let greedy = Sched.Greedy.solve inst in
  model.Model.bound := greedy.Sched.Solution.late_jobs + 1;
  let o =
    Search.run model { Search.no_limits with Search.fail_limit = 50_000 }
  in
  let late =
    match o.Search.best with
    | Some s -> s.Sched.Solution.late_jobs
    | None -> greedy.Sched.Solution.late_jobs
  in
  (o.Search.nodes, o.Search.failures, late, o.Search.proved_optimal)

(* The timetable escape hatch reproduces the pre-overhaul (= naive) search
   trajectory bit-identically: same nodes, same failures, same objective,
   same proof status. *)
let prop_timetable_trajectory_bit_identical =
  QCheck.Test.make ~count:40 ~name:"naive/timetable trajectories identical"
    Gen.arb_instance (fun inst ->
      search_outcome P.Naive inst = search_outcome P.Timetable inst)

(* Edge finding never prunes a reachable solution: on proof-complete runs
   every kernel lands on the same optimal objective. *)
let prop_kernels_agree_on_optimum =
  QCheck.Test.make ~count:40 ~name:"all kernels prove the same optimum"
    Gen.arb_tiny_instance (fun inst ->
      let outcomes =
        List.map (fun k -> search_outcome k inst) P.all_kernels
      in
      let proved = List.for_all (fun (_, _, _, p) -> p) outcomes in
      QCheck.assume proved;
      match outcomes with
      | (_, _, late0, _) :: rest ->
          List.for_all (fun (_, _, late, _) -> late = late0) rest
      | [] -> false)

(* Wakeup suppression engages on real searches. *)
let test_wakeups_skipped_on_search () =
  let inst =
    Gen.instance ~map_cap:2 ~reduce_cap:1
      (List.init 4 (fun i ->
           Gen.mk_job ~id:i ~deadline:(30 + (5 * i)) ~maps:[ 10; 8 ]
             ~reduces:[ 5 ] ()))
  in
  let model =
    Model.build ~kernel:P.Timetable inst
      ~horizon:(Model.default_horizon inst)
  in
  model.Model.bound := 5;
  ignore (Search.run model Search.no_limits);
  Alcotest.(check bool) "wakeups were suppressed" true
    (Store.stats_wakeups_skipped model.Model.store > 0)

let () =
  Alcotest.run "kernels"
    [
      ( "store events",
        [
          Alcotest.test_case "event-granular watchers" `Quick
            test_watch_granularity;
          Alcotest.test_case "timestamp wakeup suppression" `Quick
            test_wakeup_suppression;
          Alcotest.test_case "suppression engages on real searches" `Quick
            test_wakeups_skipped_on_search;
        ] );
      ( "theta tree",
        [
          Alcotest.test_case "ect maintenance" `Quick test_theta_tree_ect;
          Alcotest.test_case "engagement rule" `Quick
            test_disjunctive_applicable;
          Alcotest.test_case "edge finding beats the time table" `Quick
            test_edge_finding_prunes_textbook;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_root_fixpoint_no_looser;
            prop_timetable_trajectory_bit_identical;
            prop_kernels_agree_on_optimum;
          ] );
    ]
