(* Differential tests for the persistent solver session (Cp.Session).

   The core property: driven through the same arrival / complete / freeze
   sequence, the persistent session and a fresh cold solve must prove the
   same optimum on every instance (the session's store is a live superset of
   the cold model — wider horizon, retracted tasks fixed in place — so under
   proof-complete budgets both searches are complete over the same feasible
   set).  The mini-driver below replays the manager's Table-2 classification
   without the manager, so the session sees realistic diffs: est bumps,
   frozen (started-but-running) tasks, retracted completions, departed jobs,
   and mid-stream arrivals. *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution

(* Proof-complete options: on Gen.tiny-scale instances every solve runs the
   exact B&B to exhaustion, so session and cold must both prove and land on
   the same objective. *)
let proof_options restart =
  {
    Cp.Solver.default_options with
    Cp.Solver.exact_task_limit = 200;
    fail_limit = 1_000_000;
    time_limit = 60.;
    seed = 7;
    restart;
  }

(* --- mini-driver: Table-2 classification against an installed plan ------ *)

(* [classify ~now dispatch j] mirrors Mrcp.Manager's per-invocation task
   classification: a dispatched task whose window ended is completed, one
   that started is frozen at its dispatch, everything else (including
   dispatches still in the future — the next solve may move them) is
   pending.  Returns [None] once every task of the job has completed. *)
let classify ~now dispatch (j : T.job) =
  let part tasks =
    let completed = ref [] and fixed = ref [] and pending = ref [] in
    Array.iter
      (fun (t : T.task) ->
        match Hashtbl.find_opt dispatch t.T.task_id with
        | Some s when s + t.T.exec_time <= now ->
            completed := (t, s) :: !completed
        | Some s when s <= now -> fixed := (t, s) :: !fixed
        | Some _ | None ->
            Hashtbl.remove dispatch t.T.task_id;
            pending := t :: !pending)
      tasks;
    (List.rev !completed, List.rev !fixed, List.rev !pending)
  in
  let cm, fm, pm = part j.T.map_tasks in
  let cr, fr, pr = part j.T.reduce_tasks in
  if pm = [] && pr = [] && fm = [] && fr = [] then None
  else
    let finish (t, s) = s + t.T.exec_time in
    let max_finish l = List.fold_left (fun acc p -> max acc (finish p)) 0 l in
    let to_fixed (t, s) = { Instance.task = t; start = s } in
    Some
      {
        Instance.job = j;
        est = max j.T.earliest_start now;
        pending_maps = Array.of_list pm;
        pending_reduces = Array.of_list pr;
        fixed_maps = Array.of_list (List.map to_fixed fm);
        fixed_reduces = Array.of_list (List.map to_fixed fr);
        frozen_lfmt = max_finish (cm @ fm);
        frozen_completion = max_finish (cm @ fm @ cr @ fr);
      }

let instance_at ~now ~map_cap ~reduce_cap dispatch jobs =
  let pjobs =
    jobs
    |> List.filter (fun j -> j.T.arrival <= now)
    |> List.filter_map (classify ~now dispatch)
  in
  {
    Instance.now;
    map_capacity = map_cap;
    reduce_capacity = reduce_cap;
    jobs = Array.of_list pjobs;
  }

let install dispatch (inst : Instance.t) (sol : Solution.t) =
  Array.iter
    (fun pj ->
      Array.iter
        (fun (t : T.task) ->
          Hashtbl.replace dispatch t.T.task_id
            (Solution.start_of sol ~task_id:t.T.task_id))
        (Array.append pj.Instance.pending_maps pj.Instance.pending_reduces))
    inst.Instance.jobs

(* Event times: every distinct arrival, plus two drain points so tasks
   complete (exercising retraction) and jobs depart entirely. *)
let event_times jobs =
  let arrivals = List.map (fun j -> j.T.arrival) jobs in
  let last = List.fold_left max 0 arrivals in
  List.sort_uniq compare (arrivals @ [ last + 37; last + 5_000 ])

(* Run the whole stream through one persistent session, cold-solving every
   instance alongside it.  [check inst session_result cold_result] runs per
   event; the session's plan drives the stream. *)
let drive ~options ~map_cap ~reduce_cap jobs check =
  let session = Cp.Session.create ~options () in
  let dispatch = Hashtbl.create 64 in
  List.iter
    (fun now ->
      let inst = instance_at ~now ~map_cap ~reduce_cap dispatch jobs in
      let ssol, sst = Cp.Session.solve session ~options inst in
      let csol, cst = Cp.Solver.solve ~options inst in
      check inst (ssol, sst) (csol, cst);
      install dispatch inst ssol)
    (event_times jobs);
  session

(* --- random job streams ------------------------------------------------- *)

let gen_stream =
  let open QCheck.Gen in
  let* n = int_range 2 5 in
  let* gaps = list_repeat n (int_range 0 45) in
  let* specs =
    flatten_l
      (List.init n (fun id ->
           let* n_maps = int_range 1 3 in
           let* n_reduces = int_range 0 2 in
           let* maps = list_repeat n_maps (int_range 1 20) in
           let* reduces = list_repeat n_reduces (int_range 1 20) in
           let* est_off = int_range 0 30 in
           let* slack = int_range 0 60 in
           return (id, maps, reduces, est_off, slack)))
  in
  let* map_cap = int_range 1 3 in
  let* reduce_cap = int_range 1 3 in
  Gen.reset_tasks ();
  let _, jobs =
    List.fold_left2
      (fun (t, acc) gap (id, maps, reduces, est_off, slack) ->
        let arrival = t + gap in
        let est = arrival + est_off in
        let total =
          List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces
        in
        let j =
          Gen.mk_job ~id ~arrival ~est
            ~deadline:(est + (total / 2) + slack)
            ~maps ~reduces ()
        in
        (arrival, j :: acc))
      (0, []) gaps specs
  in
  return (List.rev jobs, map_cap, reduce_cap)

let print_stream (jobs, map_cap, reduce_cap) =
  Format.asprintf "caps=(%d,%d)@ %a" map_cap reduce_cap
    (Format.pp_print_list T.pp_job)
    jobs

let arb_stream = QCheck.make ~print:print_stream gen_stream

(* --- properties --------------------------------------------------------- *)

(* (a) Per invocation, session and cold solve prove the same Σ N_j, and the
   session's solution passes the Table-1 oracle for the instance. *)
let prop_session_matches_cold ~restart ~count name =
  QCheck.Test.make ~count ~name arb_stream
    (fun (jobs, map_cap, reduce_cap) ->
      let options = proof_options restart in
      let _session =
        drive ~options ~map_cap ~reduce_cap jobs
          (fun inst (ssol, sst) (csol, cst) ->
            if not sst.Cp.Solver.proved_optimal then
              QCheck.Test.fail_reportf "session did not prove: %a" Instance.pp
                inst;
            if not cst.Cp.Solver.proved_optimal then
              QCheck.Test.fail_reportf "cold did not prove: %a" Instance.pp
                inst;
            if ssol.Solution.late_jobs <> csol.Solution.late_jobs then
              QCheck.Test.fail_reportf
                "optima differ: session %d vs cold %d on %a"
                ssol.Solution.late_jobs csol.Solution.late_jobs Instance.pp
                inst;
            match Solution.feasibility_errors inst ssol with
            | [] -> ()
            | errs ->
                QCheck.Test.fail_reportf "session solution infeasible: %s"
                  (String.concat "; " errs))
      in
      true)

(* (b) Session bookkeeping under lazy sync: the store only sees the jobs of
   invocations that actually searched (seed-optimal and LNS invocations
   never touch it), so the exact stream totals are upper bounds — but the
   counters must stay consistent with them, and nothing on these tiny
   streams may force a rebuild. *)
let prop_session_counters =
  QCheck.Test.make ~count:40 ~name:"session counters account for the stream"
    arb_stream
    (fun (jobs, map_cap, reduce_cap) ->
      let options = proof_options Cp.Restart.Off in
      let session =
        drive ~options ~map_cap ~reduce_cap jobs (fun _ _ _ -> ())
      in
      let n_tasks = List.fold_left (fun acc j -> acc + T.task_count j) 0 jobs in
      let appended = Cp.Session.stats_appended_jobs session in
      let retracted = Cp.Session.stats_retracted session in
      let rebuilds = Cp.Session.stats_rebuilds session in
      if rebuilds <> 0 then
        QCheck.Test.fail_reportf "%d rebuilds on a tiny stream" rebuilds;
      if appended > List.length jobs then
        QCheck.Test.fail_reportf "appended %d jobs, stream has only %d"
          appended (List.length jobs);
      if retracted > n_tasks then
        QCheck.Test.fail_reportf "retracted %d tasks, stream has only %d"
          retracted n_tasks;
      true)

(* --- deterministic cases ------------------------------------------------ *)

(* Contention streams exercise the store: two unit-capacity jobs whose
   deadlines only one can meet force a real search (the contention lateness
   is invisible to the solo lower bound), so the session must sync.  A
   second contending pair arriving after the first drained makes that later
   sync retire the departed pair's tasks.  Lazy sync means only searched
   invocations touch the store: the drain events at the end are
   seed-optimal and never sync, so the second pair's tasks are still live
   when the stream ends — appended counts all four jobs, retracted only the
   first pair's tasks. *)
let contention_stream () =
  Gen.reset_tasks ();
  [
    Gen.mk_job ~id:0 ~deadline:10 ~maps:[ 10 ] ~reduces:[] ();
    Gen.mk_job ~id:1 ~deadline:12 ~maps:[ 10 ] ~reduces:[] ();
    Gen.mk_job ~id:2 ~arrival:21 ~est:21 ~deadline:31 ~maps:[ 10 ]
      ~reduces:[] ();
    Gen.mk_job ~id:3 ~arrival:21 ~est:21 ~deadline:33 ~maps:[ 10 ]
      ~reduces:[] ();
  ]

let test_counters_deterministic () =
  let jobs = contention_stream () in
  let options = proof_options Cp.Restart.Off in
  let session =
    drive ~options ~map_cap:1 ~reduce_cap:1 jobs
      (fun inst (ssol, sst) (csol, cst) ->
        Alcotest.(check bool) "session proved" true sst.Cp.Solver.proved_optimal;
        Alcotest.(check bool) "cold proved" true cst.Cp.Solver.proved_optimal;
        Alcotest.(check int) "same optimum" csol.Solution.late_jobs
          ssol.Solution.late_jobs;
        Alcotest.(check (list string))
          "feasible" []
          (Solution.feasibility_errors inst ssol))
  in
  Alcotest.(check int) "appended" 4 (Cp.Session.stats_appended_jobs session);
  Alcotest.(check int) "retracted" 2 (Cp.Session.stats_retracted session);
  Alcotest.(check int) "rebuilds" 0 (Cp.Session.stats_rebuilds session)

(* The carried optimality certificate: after the t = 0 search proves the
   contending pair costs one late job, a t = 1 re-invocation (triggered by a
   harmless third arrival) still seeds at one late — but the solo lower
   bound is 0, because the lateness comes from contention, not from any job
   alone.  A cold solve must search again to re-prove it; the session's
   certificate carries the t = 0 proof across, so the invocation finishes
   seed-optimal with no search at all. *)
let test_cert_proof () =
  Gen.reset_tasks ();
  let jobs =
    [
      Gen.mk_job ~id:0 ~deadline:10 ~maps:[ 10 ] ~reduces:[] ();
      Gen.mk_job ~id:1 ~deadline:12 ~maps:[ 10 ] ~reduces:[] ();
      Gen.mk_job ~id:2 ~arrival:1 ~est:1 ~deadline:100 ~maps:[ 2 ]
        ~reduces:[] ();
    ]
  in
  let options = proof_options Cp.Restart.Off in
  let session =
    drive ~options ~map_cap:1 ~reduce_cap:1 jobs
      (fun inst (ssol, sst) (csol, cst) ->
        Alcotest.(check bool) "session proved" true sst.Cp.Solver.proved_optimal;
        Alcotest.(check bool) "cold proved" true cst.Cp.Solver.proved_optimal;
        Alcotest.(check int) "same optimum" csol.Solution.late_jobs
          ssol.Solution.late_jobs;
        if inst.Instance.now = 1 then
          Alcotest.(check int) "no search at t=1" 0 sst.Cp.Solver.nodes)
  in
  Alcotest.(check int) "one certificate proof" 1
    (Cp.Session.stats_cert_proofs session)

(* An empty invocation (every job already departed) must come back optimal
   with zero late jobs and leave the session healthy for a later arrival. *)
let test_empty_invocation () =
  Gen.reset_tasks ();
  let j0 = Gen.mk_job ~id:0 ~deadline:20 ~maps:[ 3 ] ~reduces:[] () in
  let j1 =
    Gen.mk_job ~id:1 ~arrival:100 ~est:100 ~deadline:140 ~maps:[ 4 ]
      ~reduces:[ 2 ] ()
  in
  let options = proof_options Cp.Restart.Off in
  let session = Cp.Session.create ~options () in
  let dispatch = Hashtbl.create 16 in
  let solve_at now =
    let inst =
      instance_at ~now ~map_cap:2 ~reduce_cap:2 dispatch [ j0; j1 ]
    in
    let sol, st = Cp.Session.solve session ~options inst in
    install dispatch inst sol;
    (inst, sol, st)
  in
  let _, _, _ = solve_at 0 in
  (* j0's single map ran at 0..3; by 50 it has departed and j1 has not
     arrived: the instance is empty. *)
  let _, sol50, st50 = solve_at 50 in
  Alcotest.(check int) "empty optimum" 0 sol50.Solution.late_jobs;
  Alcotest.(check bool) "empty proved" true st50.Cp.Solver.proved_optimal;
  let inst100, sol100, st100 = solve_at 100 in
  Alcotest.(check bool) "later arrival proved" true
    st100.Cp.Solver.proved_optimal;
  Alcotest.(check (list string))
    "later arrival feasible" []
    (Solution.feasibility_errors inst100 sol100)

(* --no-session bit-identity: with the session disabled the manager's first
   invocation routes through Cp.Solver.solve on the classified instance, so
   its search trajectory (nodes, failures, seed, bound, proof) and objective
   must match a direct cold solve on the equivalent fresh-jobs instance. *)
let test_no_session_bit_identity () =
  (* single-task phases: the manager's classify reverses per-phase task
     order, so multi-task phases would not reproduce of_fresh_jobs's layout *)
  let mk () =
    Gen.reset_tasks ();
    [
      Gen.mk_job ~id:0 ~deadline:11 ~maps:[ 6 ] ~reduces:[ 4 ] ();
      Gen.mk_job ~id:1 ~deadline:19 ~maps:[ 5 ] ~reduces:[ 3 ] ();
      Gen.mk_job ~id:2 ~deadline:26 ~maps:[ 4 ] ~reduces:[ 2 ] ();
    ]
  in
  let jobs = mk () in
  let base = proof_options Cp.Restart.Off in
  let cluster =
    T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1
  in
  let mgr =
    Mrcp.Manager.create ~cluster
      {
        Mrcp.Manager.solver = base;
        domains = 1;
        deferral_window = None;
        validate = true;
        warm_start = false;
        session = false;
        journal = None;
      }
  in
  List.iter (fun j -> Mrcp.Manager.submit mgr ~now:0 j) jobs;
  Mrcp.Manager.invoke mgr ~now:0;
  let mstats =
    match Mrcp.Manager.last_solver_stats mgr with
    | Some s -> s
    | None -> Alcotest.fail "manager did not solve"
  in
  let jobs' = mk () in
  let inst =
    Instance.of_fresh_jobs ~now:0 ~map_capacity:1 ~reduce_capacity:1 jobs'
  in
  (* the manager salts the LNS seed with its solve counter (0 here) and
     passes warm_start = None on a cold first invocation *)
  let _, dstats = Cp.Solver.solve ~options:base inst in
  Alcotest.(check int) "nodes" dstats.Cp.Solver.nodes mstats.Cp.Solver.nodes;
  Alcotest.(check int) "failures" dstats.Cp.Solver.failures
    mstats.Cp.Solver.failures;
  Alcotest.(check int) "seed_late" dstats.Cp.Solver.seed_late
    mstats.Cp.Solver.seed_late;
  Alcotest.(check int) "lower_bound" dstats.Cp.Solver.lower_bound
    mstats.Cp.Solver.lower_bound;
  Alcotest.(check bool) "proved" dstats.Cp.Solver.proved_optimal
    mstats.Cp.Solver.proved_optimal

(* Instrumented session solves surface the session counters in stats; their
   per-invocation deltas must sum to the same totals the introspection
   accessors report. *)
let test_session_metrics () =
  let jobs = contention_stream () in
  let options =
    { (proof_options Cp.Restart.Off) with Cp.Solver.instrument = true }
  in
  let snaps = ref [] in
  let _session =
    drive ~options ~map_cap:1 ~reduce_cap:1 jobs
      (fun _ (_, sst) _ ->
        match sst.Cp.Solver.metrics with
        | Some snap -> snaps := snap :: !snaps
        | None -> Alcotest.fail "instrumented session solve without metrics")
  in
  let merged = Obs.Metrics.merge_all (List.rev !snaps) in
  let counter name =
    match List.assoc_opt name merged.Obs.Metrics.counters with
    | Some v -> v
    | None -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "session/appended_jobs" 4
    (counter "session/appended_jobs");
  Alcotest.(check int) "session/retracted" 2 (counter "session/retracted");
  Alcotest.(check int) "session/rebuilds" 0 (counter "session/rebuilds");
  Alcotest.(check bool) "session/cert_proofs present" true
    (List.mem_assoc "session/cert_proofs" merged.Obs.Metrics.counters);
  Alcotest.(check bool) "store/words_allocated present" true
    (List.mem_assoc "store/words_allocated" merged.Obs.Metrics.counters)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "session"
    [
      ( "differential",
        qsuite
          [
            prop_session_matches_cold ~restart:Cp.Restart.Off ~count:35
              "session = cold optimum (no restarts)";
            prop_session_matches_cold ~restart:(Cp.Restart.Luby 16) ~count:20
              "session = cold optimum (luby restarts, carried nogoods)";
            prop_session_counters;
          ] );
      ( "deterministic",
        [
          Alcotest.test_case "counters over contending pairs" `Quick
            test_counters_deterministic;
          Alcotest.test_case "certificate carries a proof" `Quick
            test_cert_proof;
          Alcotest.test_case "empty invocation mid-stream" `Quick
            test_empty_invocation;
          Alcotest.test_case "--no-session bit-identity" `Quick
            test_no_session_bit_identity;
          Alcotest.test_case "instrumented session counters" `Quick
            test_session_metrics;
        ] );
    ]
