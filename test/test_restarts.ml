(* Restart-driven search: Luby policy arithmetic, trajectory snapshots
   proving [--restarts off] is bit-identical to the pre-restart DFS,
   differential optimality of restarts+nogoods against plain DFS, and
   soundness of every recorded nogood against a known optimal solution. *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Model = Cp.Model
module Search = Cp.Search
module Restart = Cp.Restart
module Nogood = Cp.Nogood
open Gen

(* --- policy arithmetic --------------------------------------------------- *)

let test_luby_sequence () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  List.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "luby %d" (i + 1))
        want
        (Restart.luby (i + 1)))
    expected;
  Alcotest.(check int) "luby scale" (128 * 4) (Restart.slice (Restart.Luby 128) 7);
  Alcotest.(check int) "geom slice 3" 2048
    (Restart.slice (Restart.Geometric { base = 512; grow = 2.0 }) 3);
  Alcotest.(check int) "off = unlimited" 0 (Restart.slice Restart.Off 5)

let test_policy_strings () =
  List.iter
    (fun p ->
      match Restart.of_string (Restart.to_string p) with
      | Ok p' -> Alcotest.(check bool) (Restart.to_string p) true (p = p')
      | Error e -> Alcotest.fail e)
    [ Restart.Off; Restart.Luby 128; Restart.Geometric { base = 512; grow = 2.0 } ];
  Alcotest.(check bool) "bogus rejected" true
    (Result.is_error (Restart.of_string "bogus"))

(* --- helpers ------------------------------------------------------------- *)

let run_search ?(fail_limit = 50_000) ?(restart = Restart.Off) ?nogoods inst =
  let model = Model.build inst ~horizon:(Model.default_horizon inst) in
  (match nogoods with
  | Some db ->
      let vars =
        Array.append model.Model.lates
          (Array.map (fun tv -> tv.Model.var) model.Model.starts)
      in
      Nogood.attach db model.Model.store ~vars
  | None -> ());
  let greedy = Sched.Greedy.solve inst in
  model.Model.bound := greedy.Sched.Solution.late_jobs + 1;
  let o =
    Search.run ~restart ?nogoods model
      { Search.no_limits with Search.fail_limit }
  in
  let best = match o.Search.best with Some s -> s | None -> greedy in
  (o, best, model)

(* --- [--restarts off] is bit-identical to the pre-restart search --------- *)

(* Trajectories (nodes, failures, late, proved) captured from the search as
   of PR 4, before the restart engine existed, at fail limit 50k.  Any drift
   here means [Restart.Off] no longer reproduces the old DFS decision
   sequence — which would silently invalidate every historical benchmark. *)
let snapshot_cases () =
  [
    ( "tight-6",
      (reset_tasks ();
       instance ~map_cap:2 ~reduce_cap:1
         (List.init 6 (fun i ->
              mk_job ~id:i
                ~deadline:(25 + (4 * i))
                ~maps:[ 9; 7 ] ~reduces:[ 4 ] ()))),
      (7908, 6727, 1, true) );
    ( "mixed-5",
      (reset_tasks ();
       instance ~map_cap:2 ~reduce_cap:2
         [
           mk_job ~id:0 ~deadline:30 ~maps:[ 12; 5 ] ~reduces:[ 6; 3 ] ();
           mk_job ~id:1 ~deadline:22 ~maps:[ 8 ] ~reduces:[ 8 ] ();
           mk_job ~id:2 ~est:10 ~deadline:45 ~maps:[ 10; 10 ] ~reduces:[ 5 ] ();
           mk_job ~id:3 ~deadline:18 ~maps:[ 6; 6; 6 ] ~reduces:[] ();
           mk_job ~id:4 ~deadline:60 ~maps:[ 15 ] ~reduces:[ 9 ] ();
         ]),
      (65, 46, 0, true) );
    ( "ar-8",
      (reset_tasks ();
       instance ~map_cap:3 ~reduce_cap:2
         (List.init 8 (fun i ->
              mk_job ~id:i
                ~est:(3 * (i mod 3))
                ~deadline:(28 + (5 * i))
                ~maps:[ 7; 5 + (i mod 4) ]
                ~reduces:(if i mod 2 = 0 then [ 4 ] else [])
                ()))),
      (231, 190, 0, true) );
    ( "unary-4",
      (reset_tasks ();
       instance ~map_cap:1 ~reduce_cap:1
         (List.init 4 (fun i ->
              mk_job ~id:i
                ~deadline:(20 + (6 * i))
                ~maps:[ 5 + i ] ~reduces:[ 3 ] ()))),
      (45, 28, 0, true) );
    ( "loose-10",
      (reset_tasks ();
       instance ~map_cap:4 ~reduce_cap:2
         (List.init 10 (fun i ->
              mk_job ~id:i
                ~deadline:(40 + (7 * i))
                ~maps:[ 6; 4 ] ~reduces:[ 5 ] ()))),
      (496, 435, 0, true) );
  ]

let test_off_bit_identical () =
  List.iter
    (fun (name, inst, (nodes, failures, late, proved)) ->
      let o, best, _ = run_search ~restart:Restart.Off inst in
      Alcotest.(check int) (name ^ " nodes") nodes o.Search.nodes;
      Alcotest.(check int) (name ^ " failures") failures o.Search.failures;
      Alcotest.(check int) (name ^ " late") late best.Solution.late_jobs;
      Alcotest.(check bool) (name ^ " proved") proved o.Search.proved_optimal;
      Alcotest.(check int) (name ^ " no restarts") 0 o.Search.restarts)
    (snapshot_cases ())

(* --- restart bookkeeping ------------------------------------------------- *)

let test_restarts_fire_and_limits_hold () =
  let _, inst, _ = List.hd (snapshot_cases ()) in
  let fail_limit = 2_000 in
  let o, _, _ =
    run_search ~fail_limit ~restart:(Restart.Luby 16) inst
  in
  Alcotest.(check bool) "restarted" true (o.Search.restarts > 0);
  Alcotest.(check bool) "fail limit held" true (o.Search.failures <= fail_limit)

(* --- differential properties over generated instances -------------------- *)

let per_job_lateness inst (sol : Solution.t) =
  Array.map
    (fun (j : Instance.pending_job) ->
      if Solution.job_completion j sol.Solution.starts > j.Instance.job.T.deadline
      then 1
      else 0)
    inst.Instance.jobs

(* A clause claims: no solution with < bound late jobs satisfies all its
   literals.  An optimal solution with late < bound must therefore violate
   at least one literal — otherwise the nogood would have pruned the
   optimum. *)
let check_nogoods_sound inst (model : Model.t) db (best : Solution.t) =
  let n_lates = Array.length model.Model.lates in
  let lateness = per_job_lateness inst best in
  let start_value k =
    let tv = model.Model.starts.(k) in
    Solution.start_of best ~task_id:tv.Model.task.T.task_id
  in
  let lit_holds l =
    let vref = Nogood.lit_var l and a = Nogood.lit_const l in
    let v = if vref < n_lates then lateness.(vref) else start_value (vref - n_lates) in
    if Nogood.lit_is_ge l then v >= a else v <= a
  in
  let ok = ref true in
  Nogood.iter db (fun ~lits ~bound ->
      if best.Solution.late_jobs < bound && Array.for_all lit_holds lits then
        ok := false);
  !ok

let prop_same_optimum =
  QCheck.Test.make ~count:80
    ~name:"restarts+nogoods reach the plain-DFS optimum (proved runs)"
    arb_tiny_instance (fun inst ->
      let o_dfs, best_dfs, _ = run_search ~restart:Restart.Off inst in
      let db = Nogood.create () in
      let o_rst, best_rst, model =
        run_search ~restart:(Restart.Luby 8) ~nogoods:db inst
      in
      QCheck.assume (o_dfs.Search.proved_optimal && o_rst.Search.proved_optimal);
      if best_dfs.Solution.late_jobs <> best_rst.Solution.late_jobs then
        QCheck.Test.fail_reportf "dfs late=%d restart late=%d"
          best_dfs.Solution.late_jobs best_rst.Solution.late_jobs;
      if not (check_nogoods_sound inst model db best_rst) then
        QCheck.Test.fail_reportf
          "a recorded nogood prunes the optimal solution (late=%d, %d clauses)"
          best_rst.Solution.late_jobs (Nogood.size db);
      true)

let prop_nogoods_sound_vs_dfs_optimum =
  QCheck.Test.make ~count:80
    ~name:"recorded nogoods never exclude the independent DFS optimum"
    arb_tiny_instance (fun inst ->
      (* check against the *other* search's optimum, so a shared systematic
         bias in the restart run cannot mask an unsound clause *)
      let o_dfs, best_dfs, _ = run_search ~restart:Restart.Off inst in
      let db = Nogood.create () in
      let o_rst, _, model =
        run_search ~restart:(Restart.Luby 8) ~nogoods:db inst
      in
      QCheck.assume (o_dfs.Search.proved_optimal && o_rst.Search.proved_optimal);
      check_nogoods_sound inst model db best_dfs)

(* --- solver-level plumbing ---------------------------------------------- *)

let test_solver_restart_options () =
  reset_tasks ();
  let inst =
    instance ~map_cap:2 ~reduce_cap:2
      (List.init 4 (fun i ->
           mk_job ~id:i
             ~deadline:(24 + (6 * i))
             ~maps:[ 8; 5 ] ~reduces:[ 4 ] ()))
  in
  let solve restart =
    let options =
      { Cp.Solver.default_options with restart; time_limit = 10.0 }
    in
    Cp.Solver.solve ~options inst
  in
  let sol_off, stats_off = solve Restart.Off in
  let sol_on, stats_on = solve (Restart.Luby 32) in
  Alcotest.(check int)
    "same late count" sol_off.Solution.late_jobs sol_on.Solution.late_jobs;
  Alcotest.(check int) "off never restarts" 0 stats_off.Cp.Solver.restarts;
  Alcotest.(check bool)
    "restart stat plumbed" true
    (stats_on.Cp.Solver.restarts >= 0)

let () =
  Alcotest.run "restarts"
    [
      ( "policy",
        [
          Alcotest.test_case "luby sequence and slices" `Quick
            test_luby_sequence;
          Alcotest.test_case "policy string round-trip" `Quick
            test_policy_strings;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "restarts off is bit-identical to pre-PR DFS"
            `Quick test_off_bit_identical;
          Alcotest.test_case "restarts fire and respect global limits" `Quick
            test_restarts_fire_and_limits_hold;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_same_optimum; prop_nogoods_sound_vs_dfs_optimum ] );
      ( "solver",
        [
          Alcotest.test_case "solver options thread restart policy" `Quick
            test_solver_restart_options;
        ] );
    ]
