(* End-to-end simulation tests: MRCP-RM and the slot schedulers driving real
   workloads through the event simulator with the full validation oracle on
   (slot exclusivity, precedence, earliest start times). *)

module T = Mapreduce.Types
module Sim = Opensim.Simulator

let mk_job = Gen.mk_job

let mrcp_driver ?(config = Mrcp.Manager.default_config) cluster =
  let config = { config with Mrcp.Manager.validate = true } in
  Opensim.Driver.of_mrcp (Mrcp.Manager.create ~cluster config)

let slot_driver policy cluster =
  Opensim.Driver.of_slot_scheduler
    (Baselines.Slot_scheduler.create ~cluster ~policy)

let run ?(validate = true) driver jobs = Sim.run ~validate ~driver ~jobs ()

(* --- basic correctness across managers ---------------------------------- *)

let all_drivers cluster =
  [
    ("mrcp", mrcp_driver cluster);
    ("minedf-wc", slot_driver Baselines.Slot_scheduler.Min_edf_wc cluster);
    ("edf-wc", slot_driver Baselines.Slot_scheduler.Edf_wc cluster);
    ("fcfs-wc", slot_driver Baselines.Slot_scheduler.Fcfs_wc cluster);
  ]

let test_single_job_all_managers () =
  List.iter
    (fun (name, driver) ->
      Gen.reset_tasks ();
      let cluster = () in
      ignore cluster;
      let jobs =
        [ mk_job ~id:0 ~deadline:60_000 ~maps:[ 5000; 8000 ] ~reduces:[ 10_000 ] () ]
      in
      let r = run driver jobs in
      Alcotest.(check int) (name ^ ": completed") 1 r.Sim.jobs_total;
      Alcotest.(check int) (name ^ ": on time") 0 r.Sim.n_late;
      (* maps in parallel (two slots): 8000, then reduce: 18000 *)
      Alcotest.(check int) (name ^ ": makespan") 18_000 r.Sim.makespan_ms)
    (all_drivers (T.uniform_cluster ~m:1 ~map_capacity:2 ~reduce_capacity:1))

let test_open_stream_all_managers () =
  List.iter
    (fun (name, driver) ->
      Gen.reset_tasks ();
      let jobs =
        List.init 10 (fun i ->
            mk_job ~id:i ~arrival:(i * 3000)
              ~deadline:((i * 3000) + 100_000)
              ~maps:[ 4000; 6000 ] ~reduces:[ 5000 ] ())
      in
      let r = run driver jobs in
      Alcotest.(check int) (name ^ ": all jobs done") 10 r.Sim.jobs_total;
      Alcotest.(check int) (name ^ ": none late") 0 r.Sim.n_late)
    (all_drivers (T.uniform_cluster ~m:2 ~map_capacity:2 ~reduce_capacity:2))

let test_ar_jobs_respect_est_all_managers () =
  List.iter
    (fun (name, driver) ->
      Gen.reset_tasks ();
      let jobs =
        [
          mk_job ~id:0 ~arrival:0 ~est:50_000 ~deadline:200_000
            ~maps:[ 1000 ] ~reduces:[ 1000 ] ();
          mk_job ~id:1 ~arrival:1000 ~deadline:100_000 ~maps:[ 2000 ] ~reduces:[] ();
        ]
      in
      (* validation inside the simulator checks no task starts before s_j *)
      let r = run driver jobs in
      Alcotest.(check int) (name ^ ": done") 2 r.Sim.jobs_total;
      let ar =
        List.find (fun o -> o.Sim.job.T.id = 0) r.Sim.outcomes
      in
      Alcotest.(check bool) (name ^ ": AR completion after s_j") true
        (ar.Sim.completion >= 50_000 + 2000))
    (all_drivers (T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1))

let test_turnaround_measured_from_est () =
  (* T is sum(CT - s_j)/n: an AR job idle-waiting does not inflate T *)
  Gen.reset_tasks ();
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let jobs =
    [ mk_job ~id:0 ~arrival:0 ~est:100_000 ~deadline:300_000 ~maps:[ 10_000 ] ~reduces:[] () ]
  in
  let r = run (mrcp_driver cluster) jobs in
  Alcotest.(check bool) "turnaround ~ exec time" true
    (Float.abs (r.Sim.avg_turnaround_s -. 10.) < 0.5);
  Alcotest.(check bool) "turnaround from arrival includes the wait" true
    (r.Sim.avg_turnaround_from_arrival_s >= 110.)

(* Closed-batch consistency: when every job arrives at t=0 the manager
   solves exactly once and the simulator executes that plan verbatim, so the
   simulated late count must equal the CP solution's late count on the same
   instance (deterministic, same default seed). *)
let test_closed_batch_matches_solver () =
  let cluster = T.uniform_cluster ~m:3 ~map_capacity:2 ~reduce_capacity:1 in
  Gen.reset_tasks ();
  let jobs =
    List.init 8 (fun i ->
        mk_job ~id:i
          ~deadline:(20_000 + (6_000 * i))
          ~maps:[ 5000; 4000 ] ~reduces:[ 3000 ] ())
  in
  let inst =
    Sched.Instance.of_fresh_jobs ~now:0
      ~map_capacity:(T.total_map_slots cluster)
      ~reduce_capacity:(T.total_reduce_slots cluster)
      jobs
  in
  let direct, _ = Cp.Solver.solve inst in
  let r = run (mrcp_driver cluster) jobs in
  (* each same-instant arrival triggers its own pass (as in the paper);
     the final pass sees the full batch with nothing started, so the
     executed schedule is a from-scratch solve of the same instance *)
  Alcotest.(check int) "one solve per arrival" 8 r.Sim.solves;
  Alcotest.(check int) "simulated lateness equals solver objective"
    direct.Sched.Solution.late_jobs r.Sim.n_late;
  Alcotest.(check bool) "max invocation tracked" true
    (r.Sim.max_invocation_s > 0.
    && r.Sim.max_invocation_s <= r.Sim.total_overhead_s +. 1e-9)

let test_utilization_accounting () =
  Gen.reset_tasks ();
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let jobs =
    [ mk_job ~id:0 ~deadline:60_000 ~maps:[ 10_000 ] ~reduces:[ 5000 ] () ]
  in
  let r = Sim.run ~validate:true ~cluster ~driver:(mrcp_driver cluster) ~jobs () in
  Alcotest.(check int) "map busy" 10_000 r.Sim.map_busy_ms;
  Alcotest.(check int) "reduce busy" 5000 r.Sim.reduce_busy_ms;
  (* makespan 15000: map slot busy 10/15, reduce 5/15 *)
  (match (r.Sim.map_utilization, r.Sim.reduce_utilization) with
  | Some mu, Some ru ->
      Alcotest.(check bool) "map util 2/3" true (Float.abs (mu -. (2. /. 3.)) < 1e-9);
      Alcotest.(check bool) "reduce util 1/3" true
        (Float.abs (ru -. (1. /. 3.)) < 1e-9)
  | _ -> Alcotest.fail "expected utilizations");
  (* without ~cluster the utilizations are not computed *)
  Gen.reset_tasks ();
  let jobs =
    [ mk_job ~id:0 ~deadline:60_000 ~maps:[ 10_000 ] ~reduces:[ 5000 ] () ]
  in
  let r2 = Sim.run ~driver:(mrcp_driver cluster) ~jobs () in
  Alcotest.(check bool) "no cluster, no utilization" true
    (r2.Sim.map_utilization = None)

let test_contention_minedf_vs_mrcp () =
  (* one slot, three tight jobs: MRCP-RM (exact) must not be worse than
     MinEDF-WC *)
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let make_jobs () =
    Gen.reset_tasks ();
    [
      mk_job ~id:0 ~deadline:35_000 ~maps:[ 10_000 ] ~reduces:[] ();
      mk_job ~id:1 ~arrival:1 ~deadline:21_000 ~maps:[ 10_000 ] ~reduces:[] ();
      mk_job ~id:2 ~arrival:2 ~deadline:32_000 ~maps:[ 10_000 ] ~reduces:[] ();
    ]
  in
  let r_mrcp = run (mrcp_driver cluster) (make_jobs ()) in
  let r_min = run (slot_driver Baselines.Slot_scheduler.Min_edf_wc cluster) (make_jobs ()) in
  Alcotest.(check bool) "mrcp no worse" true (r_mrcp.Sim.n_late <= r_min.Sim.n_late)

(* --- synthetic workload end-to-end -------------------------------------- *)

let synth_cluster = T.uniform_cluster ~m:10 ~map_capacity:2 ~reduce_capacity:2

let synth_jobs ?(n = 25) seed =
  Mapreduce.Synthetic.generate
    {
      Mapreduce.Synthetic.default with
      Mapreduce.Synthetic.n_jobs = n;
      map_tasks_max = 10;
      reduce_tasks_max = 5;
      e_max = 20;
      lambda = 0.02;
    }
    ~cluster:synth_cluster ~seed

let test_synthetic_stream_mrcp () =
  let r = run (mrcp_driver synth_cluster) (synth_jobs 11) in
  Alcotest.(check int) "all jobs complete" 25 r.Sim.jobs_total;
  Alcotest.(check bool) "few late" true (r.Sim.n_late <= 3);
  Alcotest.(check bool) "overhead sane" true (r.Sim.total_overhead_s < 30.)

let test_synthetic_stream_all_baselines () =
  List.iter
    (fun policy ->
      let r =
        run (slot_driver policy synth_cluster) (synth_jobs 13)
      in
      Alcotest.(check int)
        (Baselines.Slot_scheduler.policy_to_string policy ^ " completes")
        25 r.Sim.jobs_total)
    Baselines.Slot_scheduler.[ Min_edf_wc; Edf_wc; Fcfs_wc ]

let test_deferral_ablation_consistency () =
  (* §V.E deferral on vs off: same workload must fully execute either way,
     with est still respected (the validator checks) *)
  let jobs seed =
    Mapreduce.Synthetic.generate
      {
        Mapreduce.Synthetic.default with
        Mapreduce.Synthetic.n_jobs = 15;
        map_tasks_max = 6;
        reduce_tasks_max = 3;
        e_max = 10;
        p = 0.8;
        s_max = 200;
        lambda = 0.05;
      }
      ~cluster:synth_cluster ~seed
  in
  let with_deferral =
    run
      (mrcp_driver
         ~config:
           { Mrcp.Manager.default_config with Mrcp.Manager.deferral_window = Some 50_000 }
         synth_cluster)
      (jobs 7)
  in
  let without =
    run
      (mrcp_driver
         ~config:{ Mrcp.Manager.default_config with Mrcp.Manager.deferral_window = None }
         synth_cluster)
      (jobs 7)
  in
  Alcotest.(check int) "deferral: all complete" 15 with_deferral.Sim.jobs_total;
  Alcotest.(check int) "no deferral: all complete" 15 without.Sim.jobs_total

(* qcheck: for random small open systems, every manager completes every job
   under full validation *)
let prop_all_managers_complete =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* seed = int_range 0 10_000 in
      let* lambda_scale = int_range 1 20 in
      return (n, seed, lambda_scale))
  in
  QCheck.Test.make ~count:25 ~name:"random streams complete under validation"
    (QCheck.make gen) (fun (n, seed, lambda_scale) ->
      let jobs =
        Mapreduce.Synthetic.generate
          {
            Mapreduce.Synthetic.default with
            Mapreduce.Synthetic.n_jobs = n;
            map_tasks_max = 6;
            reduce_tasks_max = 4;
            e_max = 15;
            p = 0.3;
            s_max = 100;
            lambda = 0.005 *. float_of_int lambda_scale;
          }
          ~cluster:synth_cluster ~seed
      in
      List.for_all
        (fun (_, driver) ->
          let r = Sim.run ~validate:true ~driver ~jobs () in
          r.Sim.jobs_total = n)
        (all_drivers synth_cluster))

let () =
  Alcotest.run "opensim"
    [
      ( "basics",
        [
          Alcotest.test_case "single job" `Quick test_single_job_all_managers;
          Alcotest.test_case "open stream" `Quick test_open_stream_all_managers;
          Alcotest.test_case "AR est respected" `Quick
            test_ar_jobs_respect_est_all_managers;
          Alcotest.test_case "turnaround from est" `Quick
            test_turnaround_measured_from_est;
          Alcotest.test_case "utilization" `Quick test_utilization_accounting;
          Alcotest.test_case "closed batch = solver" `Quick
            test_closed_batch_matches_solver;
          Alcotest.test_case "mrcp vs minedf contention" `Quick
            test_contention_minedf_vs_mrcp;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "mrcp stream" `Slow test_synthetic_stream_mrcp;
          Alcotest.test_case "baseline streams" `Slow
            test_synthetic_stream_all_baselines;
          Alcotest.test_case "deferral ablation" `Slow
            test_deferral_ablation_consistency;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_all_managers_complete ] );
    ]
