(* Property and regression tests for warm-start incremental re-solving:
   solver-level properties over the warm candidate / starting incumbent, and
   manager-level tests for the plan-cache-hit fast path — including the
   deferral re-entry regression (a deferred job whose effective s_j is bumped
   past its own deadline must still go through the full validated path). *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Dispatch = Sched.Dispatch

(* CI runs the suite under a domains matrix: MRCP_TEST_DOMAINS picks how many
   domains the manager-level tests solve with (default 1; the multi-domain
   leg exercises the portfolio's warm-start plumbing end to end). *)
let test_domains =
  match Sys.getenv_opt "MRCP_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* Proof-complete options: on Gen.tiny instances every solve runs the exact
   B&B to exhaustion, so warm and cold must both prove and land on the same
   objective. *)
let proof_options =
  {
    Cp.Solver.default_options with
    Cp.Solver.exact_task_limit = 200;
    fail_limit = 1_000_000;
    time_limit = 60.;
    seed = 5;
  }

let incumbent_of_starts starts ~changed =
  { Cp.Solver.carried_starts = starts; changed_jobs = changed }

(* Deterministically corrupt a carried plan: drop some entries (partial
   carry-over), shift others (possibly below est, i.e. stale; possibly
   forward into a capacity or precedence conflict). *)
let corrupt_starts ~salt starts =
  let carried = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id s ->
      match (id + salt) mod 5 with
      | 0 -> ()
      | 1 -> Hashtbl.replace carried id (max 0 (s - 17))
      | 2 -> Hashtbl.replace carried id (s + (3 * (salt mod 13)))
      | _ -> Hashtbl.replace carried id s)
    starts;
  carried

let arb_instance_with_salt =
  QCheck.pair Gen.arb_tiny_instance QCheck.(int_bound 1000)

(* (a) A warm-started solve never returns a worse Σ N_j than a cold solve on
   the same instance and seed.  Under proof-complete options both runs prove
   optimality, so the objectives must be equal — even when the carried plan
   is partial or corrupted. *)
let prop_warm_never_worse_than_cold =
  QCheck.Test.make ~count:75
    ~name:"warm solve never worse than cold (equal under proofs)"
    arb_instance_with_salt (fun (inst, salt) ->
      let cold_sol, cold_stats = Cp.Solver.solve ~options:proof_options inst in
      let carried = corrupt_starts ~salt cold_sol.Solution.starts in
      let warm_options =
        {
          proof_options with
          Cp.Solver.warm_start = Some (incumbent_of_starts carried ~changed:[]);
        }
      in
      let warm_sol, warm_stats = Cp.Solver.solve ~options:warm_options inst in
      QCheck.assume cold_stats.Cp.Solver.proved_optimal;
      QCheck.assume warm_stats.Cp.Solver.proved_optimal;
      Solution.feasibility_errors inst warm_sol = []
      && warm_sol.Solution.late_jobs = cold_sol.Solution.late_jobs)

(* (b) A completed carried-over incumbent always passes the Table-1 oracle,
   no matter how stale or conflicting the carried entries are: warm_candidate
   either repairs the plan into a feasible one or returns None. *)
let prop_warm_candidate_always_feasible =
  QCheck.Test.make ~count:200
    ~name:"warm candidate always passes the Table-1 oracle"
    arb_instance_with_salt (fun (inst, salt) ->
      let base, _ = Cp.Solver.solve ~options:proof_options inst in
      let carried = corrupt_starts ~salt base.Solution.starts in
      match
        Cp.Solver.warm_candidate inst (incumbent_of_starts carried ~changed:[])
      with
      | None -> true
      | Some cand -> Solution.feasibility_errors inst cand = [])

(* (c) The cache-hit fast path fires iff the carried plan (completed around
   the instance) is feasible and already meets the lower bound.  The solver
   exposes the hit as warm_seeded ∧ seed_late ≤ lower_bound ∧ no search. *)
let prop_fast_path_iff_feasible_and_bound_optimal =
  QCheck.Test.make ~count:100
    ~name:"cache-hit fast path fires iff carried plan feasible and \
           bound-optimal"
    arb_instance_with_salt (fun (inst, salt) ->
      let base, _ = Cp.Solver.solve ~options:proof_options inst in
      let carried = corrupt_starts ~salt base.Solution.starts in
      let inc = incumbent_of_starts carried ~changed:[] in
      let lb = Cp.Solver.late_lower_bound inst in
      let expect_hit =
        match Cp.Solver.warm_candidate inst inc with
        | Some cand -> cand.Solution.late_jobs <= lb
        | None -> false
      in
      let _, stats =
        Cp.Solver.solve
          ~options:{ proof_options with Cp.Solver.warm_start = Some inc }
          inst
      in
      let hit =
        stats.Cp.Solver.warm_seeded
        && stats.Cp.Solver.seed_late <= stats.Cp.Solver.lower_bound
        && stats.Cp.Solver.nodes = 0
      in
      hit = expect_hit)

(* --- manager-level cache-hit plumbing ----------------------------------- *)

let cluster2x2 = T.uniform_cluster ~m:2 ~map_capacity:2 ~reduce_capacity:2

let base_config =
  {
    Mrcp.Manager.default_config with
    Mrcp.Manager.validate = true;
    domains = test_domains;
  }

let last_stats mgr =
  match Mrcp.Manager.last_solver_stats mgr with
  | Some s -> s
  | None -> Alcotest.fail "manager has no solver stats"

(* An arrival that does not disturb the carried plan: the fast path fires,
   the hit is counted, and no search runs. *)
let test_cache_hit_on_undisturbed_plan () =
  Gen.reset_tasks ();
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 base_config in
  let j0 =
    Gen.mk_job ~id:0 ~est:5_000 ~deadline:100_000 ~maps:[ 1000; 1000 ]
      ~reduces:[ 500 ] ()
  in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "cold solve, no hit" 0 (Mrcp.Manager.cache_hit_count mgr);
  let j1 =
    Gen.mk_job ~id:1 ~arrival:100 ~deadline:100_000 ~maps:[ 1000 ] ~reduces:[]
      ()
  in
  Mrcp.Manager.submit mgr ~now:100 j1;
  Mrcp.Manager.invoke mgr ~now:100;
  Alcotest.(check int) "two passes" 2 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check int) "plan cache hit" 1 (Mrcp.Manager.cache_hit_count mgr);
  let s = last_stats mgr in
  Alcotest.(check bool) "warm seeded" true s.Cp.Solver.warm_seeded;
  Alcotest.(check int) "no search ran" 0 s.Cp.Solver.nodes;
  Alcotest.(check bool) "bound met" true
    (s.Cp.Solver.seed_late <= s.Cp.Solver.lower_bound)

(* A tight arrival that only fits if the carried job is pushed back: the
   carried plan completed around it is feasible but suboptimal, so the fast
   path must NOT fire and the re-solve must find the 0-late plan. *)
let test_no_hit_when_replanning_saves_a_job () =
  Gen.reset_tasks ();
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let mgr = Mrcp.Manager.create ~cluster base_config in
  let j0 =
    Gen.mk_job ~id:0 ~est:2_000 ~deadline:50_000 ~maps:[ 10_000 ] ~reduces:[]
      ()
  in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  (* carried: j0's map at [2000,12000).  j1 (map 3000, deadline 3200) cannot
     fit in the [100,2000) gap, so the carried completion is late for j1
     while running j1 first saves both. *)
  let j1 =
    Gen.mk_job ~id:1 ~arrival:100 ~deadline:3_200 ~maps:[ 3_000 ] ~reduces:[]
      ()
  in
  Mrcp.Manager.submit mgr ~now:100 j1;
  Mrcp.Manager.invoke mgr ~now:100;
  Alcotest.(check int) "no cache hit" 0 (Mrcp.Manager.cache_hit_count mgr);
  let plan = Mrcp.Manager.plan mgr in
  let start_of job_id =
    match
      List.find_opt
        (fun (d : Dispatch.t) -> d.Dispatch.task.T.job_id = job_id)
        plan
    with
    | Some d -> d.Dispatch.start
    | None -> Alcotest.fail (Printf.sprintf "job %d not in plan" job_id)
  in
  Alcotest.(check bool) "j1 replanned on time" true
    (start_of 1 + 3_000 <= 3_200);
  Alcotest.(check bool) "j0 pushed behind j1" true (start_of 0 >= 3_100 - 100)

(* warm_start = false is the paper's cold re-solve: no hits, ever. *)
let test_no_hits_when_disabled () =
  Gen.reset_tasks ();
  let config = { base_config with Mrcp.Manager.warm_start = false } in
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 config in
  let j0 =
    Gen.mk_job ~id:0 ~est:5_000 ~deadline:100_000 ~maps:[ 1000; 1000 ]
      ~reduces:[ 500 ] ()
  in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  let j1 =
    Gen.mk_job ~id:1 ~arrival:100 ~deadline:100_000 ~maps:[ 1000 ] ~reduces:[]
      ()
  in
  Mrcp.Manager.submit mgr ~now:100 j1;
  Mrcp.Manager.invoke mgr ~now:100;
  Alcotest.(check int) "two passes" 2 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check int) "no hits with warm start off" 0
    (Mrcp.Manager.cache_hit_count mgr);
  Alcotest.(check bool) "never warm seeded" false
    (last_stats mgr).Cp.Solver.warm_seeded

(* Same open stream, warm on vs off: identical Σ N_j (warm-starting is an
   overhead optimization, not a policy change), all jobs complete under full
   validation. *)
let test_stream_warm_equals_cold_objective () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:2 ~reduce_capacity:2 in
  let jobs () =
    Gen.reset_tasks ();
    List.init 10 (fun i ->
        Gen.mk_job ~id:i ~arrival:(i * 2000)
          ~deadline:((i * 2000) + 60_000)
          ~maps:[ 3000; 4000 ] ~reduces:[ 2000 ] ())
  in
  let run warm_start =
    let config = { base_config with Mrcp.Manager.warm_start } in
    let driver =
      Opensim.Driver.of_mrcp (Mrcp.Manager.create ~cluster config)
    in
    Opensim.Simulator.run ~validate:true ~driver ~jobs:(jobs ()) ()
  in
  let warm = run true in
  let cold = run false in
  Alcotest.(check int) "all jobs complete" 10 warm.Opensim.Simulator.jobs_total;
  Alcotest.(check int) "same late count"
    cold.Opensim.Simulator.n_late warm.Opensim.Simulator.n_late

(* --- deferral re-entry regression ---------------------------------------- *)

(* A deferred job re-entering via next_wake goes through the same validated
   path as any other arrival — including when the clock has already passed
   its deadline, so classify bumps its effective s_j to now > d_j.  The plan
   validator now also checks every dispatch against that bumped earliest
   start, which previously went unchecked for re-entering deferred jobs. *)
let test_deferred_reentry_past_deadline_validated () =
  Gen.reset_tasks ();
  let config = { base_config with Mrcp.Manager.deferral_window = Some 1_000 } in
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 config in
  let job =
    Gen.mk_job ~id:0 ~est:50_000 ~deadline:60_000 ~maps:[ 1_000 ] ~reduces:[]
      ()
  in
  Mrcp.Manager.submit mgr ~now:0 job;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "deferred, not solved" 0 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check (option int)) "wake armed at s_j - window" (Some 49_000)
    (Mrcp.Manager.next_wake mgr);
  (* the next invocation only lands at 70s — past d_j = 60s *)
  Mrcp.Manager.invoke mgr ~now:70_000;
  Alcotest.(check int) "scheduled on re-entry" 1 (Mrcp.Manager.solve_count mgr);
  let plan = Mrcp.Manager.plan mgr in
  Alcotest.(check int) "map planned" 1 (List.length plan);
  List.iter
    (fun (d : Dispatch.t) ->
      Alcotest.(check bool) "start respects the bumped s_j" true
        (d.Dispatch.start >= 70_000))
    plan;
  Alcotest.(check int) "provably late" 1 (last_stats mgr).Cp.Solver.lower_bound

let () =
  Alcotest.run "warm_start"
    [
      ( "manager",
        [
          Alcotest.test_case "cache hit on undisturbed plan" `Quick
            test_cache_hit_on_undisturbed_plan;
          Alcotest.test_case "no hit when replanning saves a job" `Quick
            test_no_hit_when_replanning_saves_a_job;
          Alcotest.test_case "no hits when disabled" `Quick
            test_no_hits_when_disabled;
          Alcotest.test_case "stream: warm objective equals cold" `Quick
            test_stream_warm_equals_cold_objective;
          Alcotest.test_case "deferred re-entry past deadline validated"
            `Quick test_deferred_reentry_past_deadline_validated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_warm_never_worse_than_cold;
            prop_warm_candidate_always_feasible;
            prop_fast_path_iff_feasible_and_bound_optimal;
          ] );
    ]
