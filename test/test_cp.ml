(* Tests for the CP solver: store/propagator unit tests, model correctness on
   hand-built instances with known optima, and qcheck properties checking
   that every returned solution passes the Table-1 feasibility oracle and
   never does worse than greedy. *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution

(* Builders are shared across the test binaries (see gen.ml). *)
let mk_task = Gen.mk_task
let mk_job = Gen.mk_job
let instance = Gen.instance

let solve ?options inst = Cp.Solver.solve ?options inst

let check_feasible inst sol =
  match Solution.feasibility_errors inst sol with
  | [] -> ()
  | errs -> Alcotest.failf "infeasible solution: %s" (String.concat "; " errs)

(* --- store ----------------------------------------------------------- *)

let test_store_bounds () =
  let s = Cp.Store.create () in
  let v = Cp.Store.new_var s ~min:0 ~max:10 in
  Alcotest.(check int) "min" 0 (Cp.Store.min_of s v);
  Alcotest.(check int) "max" 10 (Cp.Store.max_of s v);
  Cp.Store.set_min s v 3;
  Cp.Store.set_max s v 7;
  Alcotest.(check int) "min'" 3 (Cp.Store.min_of s v);
  Alcotest.(check int) "max'" 7 (Cp.Store.max_of s v);
  Alcotest.check_raises "crossing fails"
    (Cp.Store.Fail "set_min: new min above max")
    (fun () -> Cp.Store.set_min s v 8)

let test_store_backtrack () =
  let s = Cp.Store.create () in
  let v = Cp.Store.new_var s ~min:0 ~max:10 in
  Cp.Store.push_level s;
  Cp.Store.set_min s v 5;
  Cp.Store.push_level s;
  Cp.Store.fix s v 6;
  Alcotest.(check bool) "fixed" true (Cp.Store.is_fixed s v);
  Cp.Store.backtrack s;
  Alcotest.(check int) "min restored to level1" 5 (Cp.Store.min_of s v);
  Alcotest.(check int) "max restored" 10 (Cp.Store.max_of s v);
  Cp.Store.backtrack s;
  Alcotest.(check int) "min restored to root" 0 (Cp.Store.min_of s v)

let test_propagator_precedence () =
  let s = Cp.Store.create () in
  let x = Cp.Store.new_var s ~min:0 ~max:100 in
  let y = Cp.Store.new_var s ~min:0 ~max:100 in
  Cp.Propagators.precedence s ~before:x ~duration:10 ~after:y;
  Cp.Store.propagate s;
  Alcotest.(check int) "y pushed" 10 (Cp.Store.min_of s y);
  Alcotest.(check int) "x capped" 90 (Cp.Store.max_of s x);
  Cp.Store.set_min s x 20;
  Cp.Store.propagate s;
  Alcotest.(check int) "y follows" 30 (Cp.Store.min_of s y)

let test_propagator_max () =
  let s = Cp.Store.create () in
  let a = Cp.Store.new_var s ~min:0 ~max:10 in
  let b = Cp.Store.new_var s ~min:5 ~max:20 in
  let m = Cp.Store.new_var s ~min:0 ~max:100 in
  Cp.Propagators.max_of s ~result:m ~terms:[ (a, 2); (b, 0) ] ~floor:3;
  Cp.Store.propagate s;
  Alcotest.(check int) "m min = max(3, 0+2, 5)" 5 (Cp.Store.min_of s m);
  Alcotest.(check int) "m max = max(3, 12, 20)" 20 (Cp.Store.max_of s m);
  Cp.Store.set_max s m 8;
  Cp.Store.propagate s;
  Alcotest.(check int) "a capped to 6" 6 (Cp.Store.max_of s a);
  Alcotest.(check int) "b capped to 8" 8 (Cp.Store.max_of s b)

let test_propagator_cumulative_overload () =
  let s = Cp.Store.create () in
  (* two unit-demand tasks of length 10 fixed at t=0 under capacity 1 *)
  let x = Cp.Store.new_var s ~min:0 ~max:0 in
  let y = Cp.Store.new_var s ~min:0 ~max:0 in
  Cp.Propagators.cumulative s
    ~tasks:
      [|
        { Cp.Propagators.start = x; duration = 10; demand = 1 };
        { Cp.Propagators.start = y; duration = 10; demand = 1 };
      |]
    ~fixed:[||] ~capacity:1;
  Alcotest.check_raises "overload detected"
    (Cp.Store.Fail "cumulative overload") (fun () -> Cp.Store.propagate s)

let test_propagator_cumulative_pushes () =
  let s = Cp.Store.create () in
  (* a fixed task occupies [0,10) at demand 1, capacity 1: a second task of
     duration 5 must be pushed to start >= 10 *)
  let y = Cp.Store.new_var s ~min:0 ~max:100 in
  Cp.Propagators.cumulative s
    ~tasks:[| { Cp.Propagators.start = y; duration = 5; demand = 1 } |]
    ~fixed:[| (0, 10, 1) |] ~capacity:1;
  Cp.Store.propagate s;
  Alcotest.(check int) "pushed past frozen task" 10 (Cp.Store.min_of s y)

(* --- solver on known instances --------------------------------------- *)

(* One job, plenty of room: everything starts asap, on time. *)
let test_single_job_on_time () =
  let job = mk_job ~id:0 ~deadline:100_000 ~maps:[ 10; 20 ] ~reduces:[ 5 ] () in
  let inst = instance [ job ] in
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "no late jobs" 0 sol.Solution.late_jobs;
  Alcotest.(check bool) "optimal" true stats.Cp.Solver.proved_optimal;
  (* maps start at est=0, reduce after the longest map *)
  let reduce = job.T.reduce_tasks.(0) in
  Alcotest.(check int) "reduce after LFMT" 20
    (Solution.start_of sol ~task_id:reduce.T.task_id)

(* A job that cannot make its deadline is late in every schedule; the lower
   bound detects it and the seed is proved optimal without search. *)
let test_doomed_job () =
  let job = mk_job ~id:0 ~deadline:5 ~maps:[ 10 ] ~reduces:[ 10 ] () in
  let inst = instance [ job ] in
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "one late job" 1 sol.Solution.late_jobs;
  Alcotest.(check int) "lower bound saw it" 1 stats.Cp.Solver.lower_bound;
  Alcotest.(check bool) "optimal" true stats.Cp.Solver.proved_optimal

(* EDF greedy fails here but CP succeeds: two unit-capacity-slot jobs where
   scheduling the later-deadline job first is required.  Job A (deadline 30)
   has a long map; job B (deadline 21) arrives with est 1.  On one map slot:
   EDF puts B first (deadline 21 < 30) ... both fit; make it adversarial:
   A: map of 10 then reduce of 10, deadline 20 (tight, laxity 0, needs map
   slot at 0).  B: map of 10, deadline 21, est 1.  One map slot, one reduce
   slot.  A must run its map at [0,10) and reduce [10,20); B's map runs
   [10,20) finishing at 20 <= 21?  EDF order: A (d=20) first, so greedy
   already solves it; order B first and B occupies [1,11), pushing A's map
   to 11, reduce to 21 > 20: late.  By-job-id ordering with B as job 0
   reproduces exactly that, so this also checks that the solver recovers
   from a bad seed via search. *)
let test_cp_beats_bad_seed () =
  let b = mk_job ~id:0 ~est:1 ~deadline:21_000 ~maps:[ 10_000 ] ~reduces:[] () in
  let a =
    mk_job ~id:1 ~deadline:20_000 ~maps:[ 10_000 ] ~reduces:[ 10_000 ] ()
  in
  let inst = instance ~map_cap:1 ~reduce_cap:1 [ b; a ] in
  (* Greedy in by-job-id order is late for A. *)
  let greedy = Sched.Greedy.solve ~order:Sched.Greedy.By_job_id inst in
  Alcotest.(check int) "greedy by-id is late" 1 greedy.Solution.late_jobs;
  (* Force the solver to seed with the bad ordering (no EDF rescue): the
     solver still tries all three orderings for its seed, which here finds
     the optimum via EDF — so instead verify the full result is 0-late and
     feasible, proving the model/search path agrees. *)
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "no late jobs" 0 sol.Solution.late_jobs;
  Alcotest.(check bool) "optimal" true stats.Cp.Solver.proved_optimal

(* A case where no greedy ordering is optimal, forcing actual tree search:
   three jobs on one map slot.  J0: map 10, deadline 30, est 0.
   J1: map 10, deadline 20, est 0.  J2: map 10, deadline 10, est 0.
   Any order that is not J2, J1, J0 has >= 1 late job; EDF finds it.  To
   defeat EDF, give J2 the largest deadline but an est that only works
   last... Construct instead with interacting est gaps:
   J0: est 0, map 10, deadline 40.
   J1: est 0, map 10, deadline 21.
   J2: est 11, map 10, deadline 22.
   EDF order: J1 (21), J2 (22), J0 (40): J1 [0,10), J2 [11,21)... 21<=22 ok,
   J0 earliest fit: gap [10,11) too small -> [21,31): 31<=40 ok: EDF wins
   again.  Try to construct a genuinely greedy-defeating case:
   one map slot; J0: est 0, d 20, map 10. J1: est 0, d 20, map 10.
   Only one of them can win: optimum = 1 late.  Seed also finds 1 late; the
   solver must PROVE optimality (lower bound is 0, so tree search must
   exhaust).  This tests exact B&B termination and correctness. *)
let test_exact_proof_of_suboptimum () =
  let j0 = mk_job ~id:0 ~deadline:15 ~maps:[ 10 ] ~reduces:[] () in
  let j1 = mk_job ~id:1 ~deadline:15 ~maps:[ 10 ] ~reduces:[] () in
  let inst = instance ~map_cap:1 ~reduce_cap:1 [ j0; j1 ] in
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "exactly one late" 1 sol.Solution.late_jobs;
  Alcotest.(check bool) "proved optimal by search" true
    stats.Cp.Solver.proved_optimal;
  (* either the tree was explored or root propagation already refuted the
     0-late hypothesis — both count as the exact path having run *)
  Alcotest.(check bool) "search actually ran" true
    (stats.Cp.Solver.nodes + stats.Cp.Solver.failures > 0)

(* Interleaving two jobs exploits the map/reduce phase overlap: with one map
   slot and one reduce slot, two jobs of (map 10, reduce 10) can finish at
   30 by pipelining; a non-pipelined schedule takes 40.  Deadlines at 30 and
   31 force the pipeline: greedy EDF produces exactly this, and CP must
   agree that 0 late is achievable. *)
let test_pipeline_overlap () =
  let j0 = mk_job ~id:0 ~deadline:20 ~maps:[ 10 ] ~reduces:[ 10 ] () in
  let j1 = mk_job ~id:1 ~deadline:30 ~maps:[ 10 ] ~reduces:[ 10 ] () in
  let inst = instance ~map_cap:1 ~reduce_cap:1 [ j0; j1 ] in
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "pipelined, none late" 0 sol.Solution.late_jobs;
  Alcotest.(check bool) "optimal" true stats.Cp.Solver.proved_optimal

(* Frozen (isPrevScheduled) tasks: a running task occupies the only map slot
   until t=50; a new job with deadline 70 still fits (map 10 at 50, done 60);
   with deadline 55 it is provably late. *)
let test_frozen_tasks_respected () =
  let running_task = mk_task ~id:1 ~job:99 ~kind:T.Map_task ~e:50 in
  let make_instance deadline =
    let j = mk_job ~id:0 ~deadline ~maps:[ 10 ] ~reduces:[] () in
    let base =
      instance ~map_cap:1 ~reduce_cap:1 [ j ]
    in
    let frozen_job =
      {
        Instance.job =
          {
            T.id = 99;
            arrival = 0;
            earliest_start = 0;
            deadline = max_int;
            map_tasks = [| running_task |];
            reduce_tasks = [||];
          };
        est = 0;
        pending_maps = [||];
        pending_reduces = [||];
        fixed_maps = [| { Instance.task = running_task; start = 0 } |];
        fixed_reduces = [||];
        frozen_lfmt = 50;
        frozen_completion = 50;
      }
    in
    { base with Instance.jobs = Array.append base.Instance.jobs [| frozen_job |] }
  in
  let inst_ok = make_instance 70 in
  let sol, _ = solve inst_ok in
  check_feasible inst_ok sol;
  Alcotest.(check int) "fits after the running task" 0 sol.Solution.late_jobs;
  let j0_task = inst_ok.Instance.jobs.(0).Instance.pending_maps.(0) in
  Alcotest.(check bool) "starts at or after 50" true
    (Solution.start_of sol ~task_id:j0_task.T.task_id >= 50);
  let inst_late = make_instance 55 in
  let sol2, stats2 = solve inst_late in
  check_feasible inst_late sol2;
  Alcotest.(check int) "provably late" 1 sol2.Solution.late_jobs;
  Alcotest.(check bool) "proved" true stats2.Cp.Solver.proved_optimal

(* A doomed job must not push a savable one over its deadline: the seed or
   search must serve job 1 first even though job 0 has the earlier deadline. *)
let test_doomed_job_sacrificed () =
  (* one map slot; job 0 needs 100 by t=50 (hopeless), job 1 needs 10 by
     t=15.  EDF runs job 0 first and ruins job 1; optimal = 1 late. *)
  let doomed = mk_job ~id:0 ~deadline:50 ~maps:[ 100 ] ~reduces:[] () in
  let savable = mk_job ~id:1 ~deadline:15 ~maps:[ 10 ] ~reduces:[] () in
  let inst = instance ~map_cap:1 ~reduce_cap:1 [ doomed; savable ] in
  let sol, stats = solve inst in
  check_feasible inst sol;
  Alcotest.(check int) "only the doomed job is late" 1 sol.Solution.late_jobs;
  Alcotest.(check bool) "optimal" true stats.Cp.Solver.proved_optimal;
  let s1 = Solution.start_of sol ~task_id:savable.T.map_tasks.(0).T.task_id in
  Alcotest.(check bool) "savable job runs first" true (s1 + 10 <= 15)

(* Search limits: with a zero-ish budget the solver still returns a feasible
   seed and reports non-optimality when the seed exceeds the lower bound. *)
let test_budget_zero_returns_seed () =
  let jobs =
    List.init 6 (fun i ->
        mk_job ~id:i ~deadline:(25 + i) ~maps:[ 10; 10 ] ~reduces:[ 5 ] ())
  in
  let inst = instance ~map_cap:1 ~reduce_cap:1 jobs in
  let options =
    {
      Cp.Solver.default_options with
      Cp.Solver.exact_task_limit = 0;
      time_limit = 0.;
      lns_max_stall = 0;
    }
  in
  let sol, stats = solve ~options inst in
  check_feasible inst sol;
  Alcotest.(check int) "seed returned unchanged" stats.Cp.Solver.seed_late
    sol.Solution.late_jobs;
  Alcotest.(check int) "no search nodes" 0 stats.Cp.Solver.nodes

(* The LNS path (instance above exact_task_limit) must also produce feasible,
   no-worse-than-seed solutions. *)
let test_lns_path () =
  let rng_jobs =
    List.init 12 (fun i ->
        mk_job ~id:i
          ~est:(7 * i)
          ~deadline:(40 + (9 * i))
          ~maps:[ 10; 8; 6 ] ~reduces:[ 7 ] ())
  in
  let inst = instance ~map_cap:2 ~reduce_cap:1 rng_jobs in
  let options =
    { Cp.Solver.default_options with Cp.Solver.exact_task_limit = 4 }
  in
  let sol, stats = solve ~options inst in
  check_feasible inst sol;
  Alcotest.(check bool) "lns ran or seed was optimal" true
    (stats.Cp.Solver.lns_moves > 0 || stats.Cp.Solver.proved_optimal);
  Alcotest.(check bool) "no worse than seed" true
    (sol.Solution.late_jobs <= stats.Cp.Solver.seed_late)

(* Determinism: the same instance and options yield the same result. *)
let test_solver_deterministic () =
  let jobs =
    List.init 8 (fun i ->
        mk_job ~id:i ~deadline:(30 + (4 * i)) ~maps:[ 9; 7 ] ~reduces:[ 5 ] ())
  in
  let make () = instance ~map_cap:2 ~reduce_cap:1 jobs in
  let options =
    { Cp.Solver.default_options with Cp.Solver.exact_task_limit = 4;
      time_limit = 10. (* generous: stall limit terminates *) }
  in
  let sol1, _ = solve ~options (make ()) in
  let sol2, _ = solve ~options (make ()) in
  Alcotest.(check int) "same late count" sol1.Solution.late_jobs
    sol2.Solution.late_jobs;
  Alcotest.(check int) "same tardiness" sol1.Solution.total_tardiness
    sol2.Solution.total_tardiness

(* Search node/fail limits are honoured. *)
let test_search_limits_honoured () =
  let jobs =
    List.init 10 (fun i ->
        mk_job ~id:i ~deadline:(28 + i) ~maps:[ 10; 10 ] ~reduces:[] ())
  in
  let inst = instance ~map_cap:1 ~reduce_cap:1 jobs in
  let model = Cp.Model.build inst ~horizon:(Cp.Model.default_horizon inst) in
  model.Cp.Model.bound := 10;
  let outcome =
    Cp.Search.run model
      { Cp.Search.no_limits with Cp.Search.node_limit = 25 }
  in
  Alcotest.(check bool) "node limit" true (outcome.Cp.Search.nodes <= 25);
  Alcotest.(check bool) "not proved under limits" false
    outcome.Cp.Search.proved_optimal

(* --- parallel portfolio ----------------------------------------------- *)

(* Exact equality of two solutions: same objective AND the same start time
   for every task (bit-identical start maps). *)
let check_same_solution msg (a : Solution.t) (b : Solution.t) =
  Alcotest.(check int) (msg ^ ": late jobs") a.Solution.late_jobs
    b.Solution.late_jobs;
  Alcotest.(check int) (msg ^ ": tardiness") a.Solution.total_tardiness
    b.Solution.total_tardiness;
  Alcotest.(check int) (msg ^ ": size") (Hashtbl.length a.Solution.starts)
    (Hashtbl.length b.Solution.starts);
  Hashtbl.iter
    (fun task_id start ->
      match Hashtbl.find_opt b.Solution.starts task_id with
      | Some s -> Alcotest.(check int) (Printf.sprintf "%s: task %d" msg task_id) start s
      | None -> Alcotest.failf "%s: task %d missing" msg task_id)
    a.Solution.starts

(* instances exercising all three solver regimes: seed-optimal fast path,
   exact B&B, and LNS *)
let portfolio_instances () =
  [
    ( "seed-optimal",
      instance [ mk_job ~id:0 ~deadline:100_000 ~maps:[ 10; 20 ] ~reduces:[ 5 ] () ] );
    ( "bnb",
      instance ~map_cap:1 ~reduce_cap:1
        [
          mk_job ~id:0 ~deadline:15 ~maps:[ 10 ] ~reduces:[] ();
          mk_job ~id:1 ~deadline:15 ~maps:[ 10 ] ~reduces:[] ();
          mk_job ~id:2 ~deadline:40 ~maps:[ 10 ] ~reduces:[ 5 ] ();
        ] );
    ( "lns",
      instance ~map_cap:2 ~reduce_cap:1
        (List.init 12 (fun i ->
             mk_job ~id:i
               ~est:(7 * i)
               ~deadline:(40 + (9 * i))
               ~maps:[ 10; 8; 6 ] ~reduces:[ 7 ] ())) );
  ]

let portfolio_options =
  {
    Cp.Solver.default_options with
    Cp.Solver.exact_task_limit = 12;
    time_limit = 10. (* generous: stall/fail limits terminate *);
    fail_limit = 5_000;
    seed = 3;
  }

(* (a) domains=1 must be observably identical to the sequential solver. *)
let test_portfolio_domains1_identical () =
  List.iter
    (fun (name, inst) ->
      let seq_sol, seq_stats = Cp.Solver.solve ~options:portfolio_options inst in
      let par_sol, pstats =
        Cp.Portfolio.solve ~domains:1 ~options:portfolio_options inst
      in
      check_same_solution name seq_sol par_sol;
      Alcotest.(check int) (name ^ ": nodes") seq_stats.Cp.Solver.nodes
        pstats.Cp.Portfolio.base.Cp.Solver.nodes;
      Alcotest.(check int) (name ^ ": failures") seq_stats.Cp.Solver.failures
        pstats.Cp.Portfolio.base.Cp.Solver.failures;
      Alcotest.(check int) (name ^ ": lns moves") seq_stats.Cp.Solver.lns_moves
        pstats.Cp.Portfolio.base.Cp.Solver.lns_moves;
      Alcotest.(check bool) (name ^ ": proof") seq_stats.Cp.Solver.proved_optimal
        pstats.Cp.Portfolio.base.Cp.Solver.proved_optimal;
      Alcotest.(check int) (name ^ ": one worker") 1
        (Array.length pstats.Cp.Portfolio.workers))
    (portfolio_instances ())

(* (b) multi-domain runs are feasible and never worse than sequential. *)
let test_portfolio_multi_domain_no_worse () =
  List.iter
    (fun (name, inst) ->
      let seq_sol, _ = Cp.Solver.solve ~options:portfolio_options inst in
      let par_sol, pstats =
        Cp.Portfolio.solve ~domains:4 ~options:portfolio_options inst
      in
      check_feasible inst par_sol;
      Alcotest.(check bool)
        (name ^ ": portfolio no worse than sequential")
        true
        (par_sol.Solution.late_jobs <= seq_sol.Solution.late_jobs);
      (* the winner is one of the strategies that ran *)
      Alcotest.(check bool) (name ^ ": winner ran") true
        (Array.exists
           (fun (w : Cp.Portfolio.worker_stats) ->
             w.Cp.Portfolio.strategy = pstats.Cp.Portfolio.winner)
           pstats.Cp.Portfolio.workers);
      (* aggregate counters are the per-worker sums *)
      let sum f = Array.fold_left (fun acc w -> acc + f w) 0 pstats.Cp.Portfolio.workers in
      Alcotest.(check int) (name ^ ": nodes add up")
        (sum (fun w -> w.Cp.Portfolio.w_nodes))
        pstats.Cp.Portfolio.base.Cp.Solver.nodes;
      Alcotest.(check int) (name ^ ": lns moves add up")
        (sum (fun w -> w.Cp.Portfolio.w_lns_moves))
        pstats.Cp.Portfolio.base.Cp.Solver.lns_moves)
    (portfolio_instances ())

(* The seed-optimal fast path must not spawn domains: a single pseudo-worker
   and a proof, identical to the sequential fast path. *)
let test_portfolio_seed_shortcut () =
  let inst =
    instance [ mk_job ~id:0 ~deadline:100_000 ~maps:[ 10; 20 ] ~reduces:[ 5 ] () ]
  in
  let seq_sol, _ = Cp.Solver.solve inst in
  let par_sol, pstats = Cp.Portfolio.solve ~domains:8 inst in
  check_same_solution "seed shortcut" seq_sol par_sol;
  Alcotest.(check bool) "proved" true
    pstats.Cp.Portfolio.base.Cp.Solver.proved_optimal;
  Alcotest.(check int) "no domains spawned" 1 pstats.Cp.Portfolio.domains_used;
  Alcotest.(check int) "zero nodes" 0 pstats.Cp.Portfolio.base.Cp.Solver.nodes

(* Proof parity: when sequential B&B proves optimality, a multi-domain run
   reaches the same objective and also reports a proof. *)
let test_portfolio_proves_optimal () =
  let inst =
    instance ~map_cap:1 ~reduce_cap:1
      [
        mk_job ~id:0 ~deadline:15 ~maps:[ 10 ] ~reduces:[] ();
        mk_job ~id:1 ~deadline:15 ~maps:[ 10 ] ~reduces:[] ();
      ]
  in
  let seq_sol, seq_stats = Cp.Solver.solve inst in
  Alcotest.(check bool) "sequential proves" true seq_stats.Cp.Solver.proved_optimal;
  let par_sol, pstats = Cp.Portfolio.solve ~domains:3 inst in
  check_feasible inst par_sol;
  Alcotest.(check int) "same optimum" seq_sol.Solution.late_jobs
    par_sol.Solution.late_jobs;
  Alcotest.(check bool) "portfolio proves" true
    pstats.Cp.Portfolio.base.Cp.Solver.proved_optimal

(* Search tie-breaks must not change the proved optimum, only the tree. *)
let test_tie_breaks_agree () =
  let inst =
    instance ~map_cap:1 ~reduce_cap:1
      [
        mk_job ~id:0 ~deadline:20 ~maps:[ 10 ] ~reduces:[ 10 ] ();
        mk_job ~id:1 ~est:1 ~deadline:35 ~maps:[ 10 ] ~reduces:[ 5 ] ();
        mk_job ~id:2 ~deadline:18 ~maps:[ 9 ] ~reduces:[] ();
      ]
  in
  let solve_with tie_break =
    let options = { Cp.Solver.default_options with Cp.Solver.tie_break } in
    let sol, stats = Cp.Solver.solve ~options inst in
    check_feasible inst sol;
    Alcotest.(check bool) "proved" true stats.Cp.Solver.proved_optimal;
    sol.Solution.late_jobs
  in
  let base = solve_with Cp.Search.Slack_first in
  Alcotest.(check int) "duration tie-break agrees" base
    (solve_with Cp.Search.Duration_first);
  Alcotest.(check int) "deadline tie-break agrees" base
    (solve_with Cp.Search.Deadline_first)

(* --- direct per-resource formulation (pre-§V.D) ------------------------ *)

(* oracle for the direct model: every per-resource profile within capacity *)
let direct_assignment_feasible cluster (inst : Instance.t)
    (a : Cp.Direct.assignment) =
  let ok = ref true in
  Array.iter
    (fun (res : T.resource) ->
      let check kind cap =
        if cap > 0 then begin
          let profile = Sched.Profile.create ~capacity:cap in
          Array.iter
            (fun (j : Instance.pending_job) ->
              let scan (task : T.task) =
                if
                  task.T.kind = kind
                  && Hashtbl.find a.Cp.Direct.resource_of task.T.task_id
                     = res.T.res_id
                then begin
                  let start =
                    Solution.start_of a.Cp.Direct.solution
                      ~task_id:task.T.task_id
                  in
                  if
                    not
                      (Sched.Profile.fits profile ~start
                         ~duration:task.T.exec_time
                         ~amount:task.T.capacity_req)
                  then ok := false;
                  Sched.Profile.add profile ~start ~duration:task.T.exec_time
                    ~amount:task.T.capacity_req
                end
              in
              Array.iter scan j.Instance.pending_maps;
              Array.iter scan j.Instance.pending_reduces)
            inst.Instance.jobs
        end
      in
      check T.Map_task res.T.map_capacity;
      check T.Reduce_task res.T.reduce_capacity)
    cluster;
  !ok

let test_direct_matches_combined () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  let make () =
    [
      mk_job ~id:0 ~deadline:40 ~maps:[ 10; 10 ] ~reduces:[ 10 ] ();
      mk_job ~id:1 ~deadline:35 ~maps:[ 15 ] ~reduces:[ 10 ] ();
      mk_job ~id:2 ~est:5 ~deadline:60 ~maps:[ 10 ] ~reduces:[] ();
    ]
  in
  let inst = instance ~map_cap:2 ~reduce_cap:2 (make ()) in
  let combined, cstats = solve inst in
  let direct, dstats = Cp.Direct.solve ~cluster inst in
  Alcotest.(check bool) "combined proved" true cstats.Cp.Solver.proved_optimal;
  Alcotest.(check bool) "direct proved" true dstats.Cp.Direct.proved_optimal;
  match direct with
  | Some a ->
      Alcotest.(check int) "same optimal late count"
        combined.Solution.late_jobs
        a.Cp.Direct.solution.Solution.late_jobs;
      Alcotest.(check bool) "per-resource capacities hold" true
        (direct_assignment_feasible cluster inst a);
      Alcotest.(check (list string)) "combined-level oracle holds" []
        (Solution.feasibility_errors inst a.Cp.Direct.solution)
  | None -> Alcotest.fail "direct model found no solution"

let test_direct_slower_than_combined () =
  (* the §V.D claim, in miniature: the direct model explores far more nodes
     than the decomposed pipeline on the same batch *)
  let cluster = T.uniform_cluster ~m:3 ~map_capacity:1 ~reduce_capacity:1 in
  let jobs =
    List.init 4 (fun i ->
        mk_job ~id:i ~deadline:(35 + (3 * i)) ~maps:[ 10; 8 ] ~reduces:[ 6 ] ())
  in
  let inst = instance ~map_cap:3 ~reduce_cap:3 jobs in
  let _, cstats = solve inst in
  let limits = { Cp.Search.no_limits with Cp.Search.fail_limit = 200_000 } in
  let _, dstats = Cp.Direct.solve ~limits ~cluster inst in
  Alcotest.(check bool) "direct does much more work" true
    (dstats.Cp.Direct.nodes
    > (10 * cstats.Cp.Solver.nodes) + 10)

let test_direct_rejects_mismatched_cluster () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  let inst =
    instance ~map_cap:4 ~reduce_cap:4
      [ mk_job ~id:0 ~deadline:100 ~maps:[ 5 ] ~reduces:[] () ]
  in
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Cp.Direct.solve ~cluster inst);
       false
     with Invalid_argument _ -> true)

(* --- qcheck properties ------------------------------------------------ *)

let arb_instance = Gen.arb_instance

let prop_solution_feasible =
  QCheck.Test.make ~count:150 ~name:"cp solution always feasible" arb_instance
    (fun inst ->
      let sol, _ = solve inst in
      Solution.feasibility_errors inst sol = [])

let prop_no_worse_than_greedy =
  QCheck.Test.make ~count:150 ~name:"cp never worse than any greedy order"
    arb_instance (fun inst ->
      let sol, _ = solve inst in
      List.for_all
        (fun order ->
          let g = Sched.Greedy.solve ~order inst in
          sol.Solution.late_jobs <= g.Solution.late_jobs)
        [ Sched.Greedy.By_job_id; Sched.Greedy.Edf; Sched.Greedy.Least_laxity ])

let prop_objective_at_least_lower_bound =
  QCheck.Test.make ~count:150 ~name:"late count >= lower bound" arb_instance
    (fun inst ->
      let sol, stats = solve inst in
      sol.Solution.late_jobs >= stats.Cp.Solver.lower_bound)

(* The "sequential replica" guarantee from the portfolio PR, now checked on
   random instances instead of three hand-written cases: a 1-domain portfolio
   run must be bit-identical to the sequential solver — same start for every
   task, same objective, same search counters, same proof flag. *)
let prop_portfolio_domains1_bit_identical =
  let options =
    {
      Cp.Solver.default_options with
      Cp.Solver.exact_task_limit = 12;
      time_limit = 60. (* never binds: stall/fail limits terminate; keep
                           headroom so core contention from parallel suites
                           cannot cut one arm short and break bit-identity *);
      fail_limit = 2_000;
      seed = 7;
    }
  in
  QCheck.Test.make ~count:200
    ~name:"portfolio domains=1 bit-identical to sequential solver"
    arb_instance (fun inst ->
      let seq_sol, seq = Cp.Solver.solve ~options inst in
      let par_sol, p = Cp.Portfolio.solve ~domains:1 ~options inst in
      let base = p.Cp.Portfolio.base in
      let same_starts =
        Hashtbl.length seq_sol.Solution.starts
        = Hashtbl.length par_sol.Solution.starts
        && Hashtbl.fold
             (fun id s acc ->
               acc && Hashtbl.find_opt par_sol.Solution.starts id = Some s)
             seq_sol.Solution.starts true
      in
      same_starts
      && seq_sol.Solution.late_jobs = par_sol.Solution.late_jobs
      && seq_sol.Solution.total_tardiness = par_sol.Solution.total_tardiness
      && seq.Cp.Solver.nodes = base.Cp.Solver.nodes
      && seq.Cp.Solver.failures = base.Cp.Solver.failures
      && seq.Cp.Solver.lns_moves = base.Cp.Solver.lns_moves
      && seq.Cp.Solver.proved_optimal = base.Cp.Solver.proved_optimal)

let prop_portfolio_no_worse_than_sequential =
  QCheck.Test.make ~count:40
    ~name:"portfolio (2 domains) feasible and never worse than sequential"
    arb_instance (fun inst ->
      let options =
        { Cp.Solver.default_options with Cp.Solver.time_limit = 5.; seed = 11 }
      in
      let seq, _ = solve ~options inst in
      let par, _ = Cp.Portfolio.solve ~domains:2 ~options inst in
      Solution.feasibility_errors inst par = []
      && par.Solution.late_jobs <= seq.Solution.late_jobs)

let prop_optimal_matches_bruteforce =
  (* On tiny instances, compare against brute-force over all job sequences
     decoded greedily; CP should never be worse than the best sequence. *)
  let gen_tiny =
    let open QCheck.Gen in
    let gen_job id =
      let* maps = list_repeat 1 (int_range 1 20) in
      let* reduces = list_repeat 1 (int_range 1 20) in
      let* slack = int_range 0 40 in
      let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
      return (mk_job ~id ~deadline:(total + slack) ~maps ~reduces ())
    in
    let* n = int_range 2 4 in
    let* jobs = flatten_l (List.init n gen_job) in
    return (instance ~map_cap:1 ~reduce_cap:1 jobs)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  QCheck.Test.make ~count:60
    ~name:"cp no worse than best greedy job sequence"
    (QCheck.make ~print:(Format.asprintf "%a" Instance.pp) gen_tiny)
    (fun inst ->
      let n = Array.length inst.Instance.jobs in
      let best_seq =
        permutations (List.init n Fun.id)
        |> List.map (fun perm ->
               (Sched.Greedy.solve_with_sequence inst (Array.of_list perm))
                 .Solution.late_jobs)
        |> List.fold_left min max_int
      in
      let sol, _ = solve inst in
      sol.Solution.late_jobs <= best_seq)

let () =
  Alcotest.run "cp"
    [
      ( "store",
        [
          Alcotest.test_case "bounds" `Quick test_store_bounds;
          Alcotest.test_case "backtrack" `Quick test_store_backtrack;
        ] );
      ( "propagators",
        [
          Alcotest.test_case "precedence" `Quick test_propagator_precedence;
          Alcotest.test_case "max" `Quick test_propagator_max;
          Alcotest.test_case "cumulative overload" `Quick
            test_propagator_cumulative_overload;
          Alcotest.test_case "cumulative pushes" `Quick
            test_propagator_cumulative_pushes;
        ] );
      ( "solver",
        [
          Alcotest.test_case "single job on time" `Quick
            test_single_job_on_time;
          Alcotest.test_case "doomed job" `Quick test_doomed_job;
          Alcotest.test_case "cp beats bad seed" `Quick test_cp_beats_bad_seed;
          Alcotest.test_case "exact proof of suboptimum" `Quick
            test_exact_proof_of_suboptimum;
          Alcotest.test_case "pipeline overlap" `Quick test_pipeline_overlap;
          Alcotest.test_case "frozen tasks respected" `Quick
            test_frozen_tasks_respected;
          Alcotest.test_case "doomed job sacrificed" `Quick
            test_doomed_job_sacrificed;
          Alcotest.test_case "budget zero returns seed" `Quick
            test_budget_zero_returns_seed;
          Alcotest.test_case "lns path" `Quick test_lns_path;
          Alcotest.test_case "deterministic" `Quick test_solver_deterministic;
          Alcotest.test_case "search limits" `Quick
            test_search_limits_honoured;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "domains=1 identical to sequential" `Quick
            test_portfolio_domains1_identical;
          Alcotest.test_case "multi-domain no worse" `Quick
            test_portfolio_multi_domain_no_worse;
          Alcotest.test_case "seed shortcut spawns nothing" `Quick
            test_portfolio_seed_shortcut;
          Alcotest.test_case "proves optimality" `Quick
            test_portfolio_proves_optimal;
          Alcotest.test_case "tie-breaks agree on the optimum" `Quick
            test_tie_breaks_agree;
        ] );
      ( "direct formulation",
        [
          Alcotest.test_case "matches combined" `Quick
            test_direct_matches_combined;
          Alcotest.test_case "slower than combined" `Quick
            test_direct_slower_than_combined;
          Alcotest.test_case "rejects mismatch" `Quick
            test_direct_rejects_mismatched_cluster;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_solution_feasible;
            prop_no_worse_than_greedy;
            prop_objective_at_least_lower_bound;
            prop_portfolio_domains1_bit_identical;
            prop_portfolio_no_worse_than_sequential;
            prop_optimal_matches_bruteforce;
          ] );
    ]
