(* Decision-journal tests: determinism (same seed ⇒ identical canonical
   journal), the quantile estimator at bucket boundaries, the audit tool's
   independent recomputation oracle, and the zero-cost-when-off guarantee
   (journaling must not perturb the solver trajectory). *)

module T = Mapreduce.Types
module M = Obs.Metrics

(* The acceptance workload: the contended λ=0.05 / 40-job / 4-host variant
   of the Fig. 2 setup that BENCH_session.json tracks.  fail_limit (not the
   wall clock) cuts every exact search, so trajectories — and hence
   journals — are deterministic. *)
let cluster = T.uniform_cluster ~m:4 ~map_capacity:2 ~reduce_capacity:2

let params =
  {
    Mapreduce.Synthetic.default with
    Mapreduce.Synthetic.n_jobs = 40;
    lambda = 0.05;
    map_tasks_max = 12;
    reduce_tasks_max = 4;
    e_max = 25;
    s_max = 100;
    d_m = 1.5;
  }

let solver_options =
  {
    Cp.Solver.default_options with
    Cp.Solver.exact_task_limit = 400;
    fail_limit = 2_000;
  }

let run_sim ?journal ?metrics_every ?(fail_limit = 2_000) ~seed () =
  let jobs = Mapreduce.Synthetic.generate params ~cluster ~seed in
  let mgr =
    Mrcp.Manager.create ~cluster
      {
        Mrcp.Manager.default_config with
        Mrcp.Manager.solver = { solver_options with Cp.Solver.fail_limit };
        journal;
      }
  in
  let driver = Opensim.Driver.of_mrcp mgr in
  let r = Opensim.Simulator.run ?journal ?metrics_every ~driver ~jobs () in
  (r, mgr)

(* --- determinism -------------------------------------------------------- *)

let test_determinism () =
  let journal_of seed =
    let j = Obs.Journal.create () in
    ignore (run_sim ~journal:j ~seed ());
    Obs.Journal.to_string j
  in
  let a = journal_of 42 and b = journal_of 42 in
  Alcotest.(check string)
    "same-seed canonical fingerprints equal" (Obs.Journal.fingerprint a)
    (Obs.Journal.fingerprint b);
  (* stronger than the hash: the canonical (wall-stripped) lines are
     byte-identical *)
  let canon text =
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "")
    |> List.map Obs.Journal.canonical_line
  in
  List.iter2
    (fun la lb -> Alcotest.(check string) "canonical line" la lb)
    (canon a) (canon b);
  let c = journal_of 43 in
  Alcotest.(check bool)
    "different seed, different journal" false
    (Obs.Journal.fingerprint a = Obs.Journal.fingerprint c)

let test_lines_parse () =
  let j = Obs.Journal.create () in
  ignore (run_sim ~journal:j ~metrics_every:500_000 ~seed:42 ());
  let lines =
    String.split_on_char '\n' (Obs.Journal.to_string j)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "journal nonempty" true (List.length lines > 0);
  List.iteri
    (fun i line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "line %d does not parse: %s" (i + 1) e
      | Ok ev ->
          Alcotest.(check (option int))
            "versioned" (Some Obs.Journal.version)
            (Option.bind (Obs.Json.member "v" ev) Obs.Json.to_int_opt);
          Alcotest.(check (option int))
            "seq contiguous" (Some i)
            (Option.bind (Obs.Json.member "seq" ev) Obs.Json.to_int_opt))
    lines;
  Alcotest.(check bool) "snapshots present" true
    (List.exists
       (fun l ->
         match Obs.Json.of_string l with
         | Ok ev ->
             Option.bind (Obs.Json.member "ev" ev) Obs.Json.to_string_opt
             = Some "snapshot"
         | Error _ -> false)
       lines)

(* --- quantiles ---------------------------------------------------------- *)

let histo_of values =
  let r = M.create () in
  let h = M.histogram r "t" in
  List.iter (M.observe h) values;
  match M.find_histo (M.snapshot r) "t" with
  | Some h -> h
  | None -> Alcotest.fail "histogram missing from snapshot"

let test_quantile_boundaries () =
  (* empty: nan *)
  let empty = histo_of [] in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (M.quantile empty 0.5));
  (* single observation: every quantile is that value *)
  let one = histo_of [ 3.5 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) "single value" 3.5 (M.quantile one q))
    [ 0.; 0.25; 0.5; 1. ];
  (* q=0 and q=1 are exactly vmin/vmax even across buckets *)
  let spread = histo_of [ 0.001; 0.4; 7.25; 1024. ] in
  Alcotest.(check (float 0.)) "q=0 is vmin" 0.001 (M.quantile spread 0.);
  Alcotest.(check (float 0.)) "q=1 is vmax" 1024. (M.quantile spread 1.);
  (* every observation on its bucket's lower bound: ranks are exact.
     2^-2, 2^0, 2^3 are bucket lower bounds of distinct buckets; nearest
     rank is ceil(q*3), so q in (0,1/3] -> 0.25, (1/3,2/3] -> 1.0,
     (2/3,1] -> 8.0 *)
  let exact = histo_of [ 0.25; 1.0; 8.0 ] in
  Alcotest.(check (float 1e-12)) "boundary p-low" 0.25 (M.quantile exact 0.3);
  Alcotest.(check (float 1e-12)) "boundary p-mid" 1.0 (M.quantile exact 0.5);
  Alcotest.(check (float 1e-12)) "boundary p-high" 8.0 (M.quantile exact 0.99);
  (* same-bucket data: interpolation stays within [vmin, vmax] *)
  let tight = histo_of [ 1.0; 1.3; 1.9 ] in
  let p50 = M.quantile tight 0.5 in
  Alcotest.(check bool) "clamped to observed range" true (p50 >= 1.0 && p50 <= 1.9)

let test_prometheus_render () =
  let r = M.create () in
  M.add (M.counter r "solver/solves") 3;
  M.set_gauge (M.gauge r "queue-depth") 2.5;
  let h = M.histogram r "invoke/elapsed_s" in
  List.iter (M.observe h) [ 0.25; 1.0; 8.0 ];
  let text = M.to_prometheus (M.snapshot r) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "# TYPE mrcp_solver_solves_total counter";
      "mrcp_solver_solves_total 3";
      "# TYPE mrcp_queue_depth gauge";
      "mrcp_queue_depth 2.5";
      "# TYPE mrcp_invoke_elapsed_s histogram";
      "mrcp_invoke_elapsed_s_bucket{le=\"+Inf\"} 3";
      "mrcp_invoke_elapsed_s_count 3";
      "mrcp_invoke_elapsed_s_sum 9.25";
    ]

let test_quantile_monotone () =
  let h = histo_of [ 0.01; 0.02; 0.5; 0.5; 3.0; 47.0; 47.0; 100.0 ] in
  let qs = [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ] in
  let vals = List.map (M.quantile h) qs in
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (a <= b);
        mono rest
    | _ -> ()
  in
  mono vals

(* --- audit oracle ------------------------------------------------------- *)

let test_audit_crosscheck () =
  let j = Obs.Journal.create () in
  let r, mgr = run_sim ~journal:j ~seed:42 () in
  let rep =
    match Report.Audit.of_string (Obs.Journal.to_string j) with
    | Ok rep -> rep
    | Error e -> Alcotest.failf "audit parse failed: %s" e
  in
  Alcotest.(check bool) "all cross-checks pass" true (Report.Audit.checks_ok rep);
  Alcotest.(check int)
    "recomputed Σ N_j = simulator N" r.Opensim.Simulator.n_late
    rep.Report.Audit.n_late;
  Alcotest.(check int)
    "one job-done per job" r.Opensim.Simulator.jobs_total
    (List.length rep.Report.Audit.jobs);
  Alcotest.(check int)
    "one invoke per solve"
    (Mrcp.Manager.solve_count mgr)
    rep.Report.Audit.invokes;
  (* exact: the audit replays the same float additions in the same order *)
  Alcotest.(check bool)
    "recomputed O total bitwise-equal" true
    (Float.equal
       (Mrcp.Manager.overhead_seconds mgr)
       rep.Report.Audit.total_overhead_s);
  (* the renderers should not raise on a real report *)
  Alcotest.(check bool) "render nonempty" true
    (String.length (Report.Audit.render rep) > 0);
  match rep.Report.Audit.jobs with
  | j0 :: _ ->
      Alcotest.(check bool) "timeline nonempty" true
        (String.length (Report.Audit.render_timeline rep j0.Report.Audit.job) > 0)
  | [] -> Alcotest.fail "no jobs in audit report"

let test_audit_rejects_garbage () =
  (match Report.Audit.of_string "not json\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
      Alcotest.(check bool) "names the line" true
        (String.length e > 0 && String.sub e 0 6 = "line 1"));
  match
    Report.Audit.of_string
      {|{"v":3,"seq":0,"t":0,"ev":"arrival","job":0,"est":0,"deadline":1,"tasks":1}|}
  with
  | Ok _ -> Alcotest.fail "accepted future version"
  | Error _ -> ()

(* --- zero cost when off ------------------------------------------------- *)

let test_journaling_off_bit_identity () =
  let j = Obs.Journal.create () in
  let r_on, mgr_on = run_sim ~journal:j ~seed:42 () in
  let r_off, mgr_off = run_sim ~seed:42 () in
  let open Opensim.Simulator in
  Alcotest.(check int) "n_late" r_off.n_late r_on.n_late;
  Alcotest.(check int) "makespan" r_off.makespan_ms r_on.makespan_ms;
  Alcotest.(check int) "events" r_off.events_executed r_on.events_executed;
  Alcotest.(check int) "solves" r_off.solves r_on.solves;
  Alcotest.(check (list (pair int int)))
    "per-job completions identical"
    (List.map (fun o -> (o.job.T.id, o.completion)) r_off.outcomes)
    (List.map (fun o -> (o.job.T.id, o.completion)) r_on.outcomes);
  (* the solver saw bit-identical searches, not just equal outcomes *)
  match (Mrcp.Manager.last_solver_stats mgr_off,
         Mrcp.Manager.last_solver_stats mgr_on) with
  | Some off, Some on ->
      Alcotest.(check int) "nodes" off.Cp.Solver.nodes on.Cp.Solver.nodes;
      Alcotest.(check int) "failures" off.Cp.Solver.failures
        on.Cp.Solver.failures;
      Alcotest.(check bool) "stop reason" true
        (off.Cp.Solver.stop_reason = on.Cp.Solver.stop_reason)
  | _ -> Alcotest.fail "missing solver stats"

(* --- stop reasons ------------------------------------------------------- *)

let test_stop_reason_fail_limit () =
  let j = Obs.Journal.create () in
  (* a 2-failure budget cannot finish the contended searches: the journal
     must attribute those stops to the failure budget, not the wall clock *)
  ignore (run_sim ~journal:j ~fail_limit:2 ~seed:42 ());
  let rep =
    match Report.Audit.of_string (Obs.Journal.to_string j) with
    | Ok rep -> rep
    | Error e -> Alcotest.failf "audit parse failed: %s" e
  in
  Alcotest.(check bool) "fail_limit stops recorded" true
    (List.mem_assoc "fail_limit" rep.Report.Audit.stop_reasons);
  Alcotest.(check bool) "no wall_limit stops" false
    (List.mem_assoc "wall_limit" rep.Report.Audit.stop_reasons)

let () =
  Alcotest.run "journal"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same canonical journal" `Slow
            test_determinism;
          Alcotest.test_case "every line parses, seq contiguous" `Slow
            test_lines_parse;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_quantile_boundaries;
          Alcotest.test_case "monotone in q" `Quick test_quantile_monotone;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_render;
        ] );
      ( "audit",
        [
          Alcotest.test_case "recomputation oracle" `Slow test_audit_crosscheck;
          Alcotest.test_case "rejects malformed input" `Quick
            test_audit_rejects_garbage;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "journaling-off bit-identity" `Slow
            test_journaling_off_bit_identity;
        ] );
      ( "stop-reason",
        [
          Alcotest.test_case "fail budget attribution" `Slow
            test_stop_reason_fail_limit;
        ] );
    ]
