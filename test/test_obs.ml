(* Tests for the observability layer: histogram bucket maths, snapshot
   merging, Chrome-trace span nesting/ordering, and — most importantly —
   that instrumentation is a pure side channel: a fixed-seed solve with
   tracing + metrics enabled returns bit-identical schedules and search
   statistics to the uninstrumented run. *)

module M = Obs.Metrics
module Tr = Obs.Trace
module T = Mapreduce.Types

(* --- histogram buckets -------------------------------------------------- *)

let test_bucket_edges () =
  Alcotest.(check int) "zero" 0 (M.bucket_of 0.);
  Alcotest.(check int) "negative" 0 (M.bucket_of (-3.5));
  Alcotest.(check int) "one" 34 (M.bucket_of 1.);
  Alcotest.(check int) "below one" 33 (M.bucket_of 0.75);
  Alcotest.(check int) "two" 35 (M.bucket_of 2.);
  Alcotest.(check int) "within bucket" 35 (M.bucket_of 3.9);
  Alcotest.(check int) "2^-33" 1 (M.bucket_of (Float.pow 2. (-33.)));
  Alcotest.(check int) "tiny clamps low" 1 (M.bucket_of (Float.pow 2. (-60.)));
  Alcotest.(check int) "2^31" 65 (M.bucket_of (Float.pow 2. 31.));
  Alcotest.(check int) "huge clamps high" 65 (M.bucket_of (Float.pow 2. 50.));
  Alcotest.(check bool)
    "bucket 0 lower bound" true
    (M.bucket_lower_bound 0 = neg_infinity);
  Alcotest.(check (float 0.)) "bucket 34 lower bound" 1. (M.bucket_lower_bound 34);
  Alcotest.(check (float 0.))
    "bucket 1 lower bound"
    (Float.pow 2. (-33.))
    (M.bucket_lower_bound 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.bucket_lower_bound: bucket out of range")
    (fun () -> ignore (M.bucket_lower_bound M.n_buckets))

let test_observe_buckets () =
  let r = M.create () in
  let h = M.histogram r "h" in
  List.iter (M.observe h) [ 1.0; 1.5; 4.0; 0.; -2. ];
  let snap = M.snapshot r in
  match M.find_histo snap "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some d ->
      Alcotest.(check int) "count" 5 d.M.count;
      Alcotest.(check (float 1e-9)) "sum" 4.5 d.M.sum;
      Alcotest.(check (float 0.)) "min" (-2.) d.M.vmin;
      Alcotest.(check (float 0.)) "max" 4.0 d.M.vmax;
      (* two sub-zero values in bucket 0, 1.0 and 1.5 in bucket 34, 4.0 in
         bucket 36; occupancy list is sorted and sparse *)
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 2); (34, 2); (36, 1) ]
        d.M.buckets

(* --- merge -------------------------------------------------------------- *)

let test_counter_merge () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "x") 3;
  M.add (M.counter a "y") 1;
  M.add (M.counter b "x") 4;
  M.add (M.counter b "z") 5;
  M.set_gauge (M.gauge a "g") 1.0;
  M.set_gauge (M.gauge b "g") 2.0;
  let m = M.merge (M.snapshot a) (M.snapshot b) in
  Alcotest.(check (list (pair string int)))
    "counters add and stay sorted"
    [ ("x", 7); ("y", 1); ("z", 5) ]
    m.M.counters;
  Alcotest.(check (list (pair string (float 0.))))
    "gauges: right wins"
    [ ("g", 2.0) ]
    m.M.gauges;
  let again = M.merge_all [ M.snapshot a; M.snapshot b; M.empty ] in
  Alcotest.(check (list (pair string int)))
    "merge_all agrees" m.M.counters again.M.counters

let test_histo_merge () =
  let a = M.create () and b = M.create () in
  List.iter (M.observe (M.histogram a "h")) [ 1.0; 4.0 ];
  M.observe (M.histogram b "h") 0.25;
  let m = M.merge (M.snapshot a) (M.snapshot b) in
  match M.find_histo m "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some d ->
      Alcotest.(check int) "count" 3 d.M.count;
      Alcotest.(check (float 1e-9)) "sum" 5.25 d.M.sum;
      Alcotest.(check (float 0.)) "min" 0.25 d.M.vmin;
      Alcotest.(check (float 0.)) "max" 4.0 d.M.vmax;
      Alcotest.(check (list (pair int int)))
        "bucketwise sum"
        [ (32, 1); (34, 1); (36, 1) ]
        d.M.buckets

let test_kind_mismatch () =
  let r = M.create () in
  ignore (M.counter r "x");
  Alcotest.check_raises "histogram under a counter name"
    (Invalid_argument "Metrics: \"x\" already registered as another kind")
    (fun () -> ignore (M.histogram r "x"))

(* --- trace serialization ------------------------------------------------- *)

(* Pull a float field out of one serialized event line. *)
let field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      let stop = ref false in
      let b = Buffer.create 16 in
      while (not !stop) && !j < n do
        match line.[!j] with
        | ',' | '}' -> stop := true
        | c ->
            Buffer.add_char b c;
            incr j
      done;
      float_of_string_opt (Buffer.contents b)
    end
    else find (i + 1)
  in
  find 0

let test_span_nesting () =
  Fun.protect ~finally:Tr.stop (fun () ->
      Tr.start ();
      let v =
        Tr.with_span ~cat:"t" "outer" (fun () ->
            Tr.with_span ~cat:"t" "inner" (fun () -> ());
            Tr.instant ~cat:"t" "mark" ~args:[ ("k", Tr.Int 7) ];
            17)
      in
      Tr.stop ();
      Alcotest.(check int) "with_span is transparent" 17 v;
      Alcotest.(check int) "three events recorded" 3 (Tr.events_recorded ());
      let dump = Tr.dump_string () in
      let lines =
        String.split_on_char '\n' dump |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check string) "opens a JSON array" "[" (List.hd lines);
      Alcotest.(check string)
        "closes the array" "]"
        (List.nth lines (List.length lines - 1));
      let event_lines =
        List.filter (fun l -> String.length l > 0 && l.[0] = '{') lines
      in
      (* process_name metadata + the three recorded events *)
      Alcotest.(check int) "one line per event" 4 (List.length event_lines);
      let find name =
        match
          List.find_opt
            (fun l ->
              let pat = Printf.sprintf "\"name\":%S" name in
              let rec has i =
                i + String.length pat <= String.length l
                && (String.sub l i (String.length pat) = pat || has (i + 1))
              in
              has 0)
            event_lines
        with
        | Some l -> l
        | None -> Alcotest.failf "no %S event in dump" name
      in
      let outer = find "outer" and inner = find "inner" in
      let f line key =
        match field line key with
        | Some v -> v
        | None -> Alcotest.failf "missing %s in %s" key line
      in
      (* sorted by start time: outer starts first even though it is emitted
         last (complete events are recorded at span end) *)
      let ts = List.filter_map (fun l -> field l "ts") event_lines in
      Alcotest.(check bool)
        "events sorted by ts" true
        (List.sort compare ts = ts);
      Alcotest.(check bool)
        "inner starts after outer" true
        (f inner "ts" >= f outer "ts");
      Alcotest.(check bool)
        "inner ends before outer" true
        (f inner "ts" +. f inner "dur" <= f outer "ts" +. f outer "dur");
      (* instants carry the mandated "s" scope field *)
      let mark = find "mark" in
      Alcotest.(check bool)
        "instant has scope" true
        (let rec has i =
           i + 8 <= String.length mark
           && (String.sub mark i 8 = {|"s":"t",|} || has (i + 1))
         in
         has 0))

let test_disabled_records_nothing () =
  Fun.protect ~finally:Tr.stop (fun () ->
      Tr.start ();
      Tr.stop ();
      Alcotest.(check bool) "disabled" false (Tr.enabled ());
      Tr.with_span "ghost" (fun () -> ());
      Tr.instant "ghost-i";
      Tr.counter "ghost-c" [ ("v", 1.) ];
      Alcotest.(check int) "nothing recorded" 0 (Tr.events_recorded ()))

let test_event_limit () =
  Fun.protect ~finally:Tr.stop (fun () ->
      Tr.start ~limit:3 ();
      for i = 0 to 9 do
        Tr.instant (Printf.sprintf "e%d" i)
      done;
      Tr.stop ();
      Alcotest.(check int) "capped at limit" 3 (Tr.events_recorded ());
      let dump = Tr.dump_string () in
      let has pat =
        let n = String.length pat in
        let rec go i =
          i + n <= String.length dump
          && (String.sub dump i n = pat || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "dropped events reported" true
        (has {|"events_dropped"|} && has {|"dropped":7|}))

(* --- instrumentation is a pure side channel ------------------------------ *)

let task_counter = ref 0

let mk_job ~id ?(arrival = 0) ~deadline ~maps ~reduces () =
  let fresh kind e =
    incr task_counter;
    {
      T.task_id = !task_counter;
      job_id = id;
      kind;
      exec_time = e;
      capacity_req = 1;
    }
  in
  {
    T.id;
    arrival;
    earliest_start = arrival;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

(* Enough contention that the solver really searches (B&B + propagators). *)
let contended_instance () =
  let jobs =
    List.init 6 (fun i ->
        mk_job ~id:i
          ~deadline:(50 + (7 * i))
          ~maps:[ 10 + i; 12; 9 ]
          ~reduces:[ 11; 8 + i ]
          ())
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:2 jobs

let sorted_starts (sol : Sched.Solution.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sol.Sched.Solution.starts []
  |> List.sort compare

let test_instrumented_run_bit_identical () =
  task_counter := 0;
  let inst = contended_instance () in
  (* a generous wall limit makes [fail_limit] the binding cutoff: a
     wall-clock cutoff would make node counts depend on machine speed and
     metering overhead, which is exactly what this test must not measure *)
  let options = { Cp.Solver.default_options with time_limit = 30.0 } in
  let plain_sol, plain_stats = Cp.Solver.solve ~options inst in
  task_counter := 0;
  let inst' = contended_instance () in
  Fun.protect ~finally:Tr.stop (fun () ->
      Tr.start ();
      let obs_sol, obs_stats =
        Cp.Solver.solve ~options:{ options with instrument = true } inst'
      in
      Tr.stop ();
      Alcotest.(check int)
        "late jobs" plain_sol.Sched.Solution.late_jobs
        obs_sol.Sched.Solution.late_jobs;
      Alcotest.(check int)
        "tardiness" plain_sol.Sched.Solution.total_tardiness
        obs_sol.Sched.Solution.total_tardiness;
      Alcotest.(check (list (pair int int)))
        "identical start times" (sorted_starts plain_sol)
        (sorted_starts obs_sol);
      Alcotest.(check int)
        "same node count" plain_stats.Cp.Solver.nodes obs_stats.Cp.Solver.nodes;
      Alcotest.(check int)
        "same failure count" plain_stats.Cp.Solver.failures
        obs_stats.Cp.Solver.failures;
      Alcotest.(check int)
        "same LNS moves" plain_stats.Cp.Solver.lns_moves
        obs_stats.Cp.Solver.lns_moves;
      Alcotest.(check bool)
        "plain run carries no metrics" true
        (plain_stats.Cp.Solver.metrics = None);
      match obs_stats.Cp.Solver.metrics with
      | None -> Alcotest.fail "instrumented run lost its metrics"
      | Some snap ->
          Alcotest.(check bool)
            "propagations counted" true
            (match M.find_counter snap "store/propagations" with
            | Some n -> n > 0
            | None -> false);
          Alcotest.(check bool)
            "per-propagator fires present" true
            (List.exists
               (fun (name, v) ->
                 String.length name > 5
                 && String.sub name 0 5 = "prop/"
                 && v > 0)
               snap.M.counters))

(* --- end-to-end: manager + portfolio + simulator spans ------------------- *)

let test_trace_covers_all_layers () =
  task_counter := 0;
  let jobs =
    List.init 8 (fun i ->
        mk_job ~id:i ~arrival:(i * 5)
          ~deadline:((i * 5) + 55 + (3 * i))
          ~maps:[ 20 + i; 25; 18 ]
          ~reduces:[ 22; 15 ]
          ())
  in
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:2 ~reduce_capacity:2 in
  let config =
    {
      Mrcp.Manager.default_config with
      Mrcp.Manager.solver =
        { Cp.Solver.default_options with instrument = true };
      domains = 2;
    }
  in
  Fun.protect ~finally:Tr.stop (fun () ->
      Tr.start ();
      let driver = Opensim.Driver.of_mrcp (Mrcp.Manager.create ~cluster config) in
      let r = Opensim.Simulator.run ~validate:true ~cluster ~driver ~jobs () in
      Tr.stop ();
      Alcotest.(check int) "all jobs ran" 8 r.Opensim.Simulator.jobs_total;
      Alcotest.(check bool)
        "simulator counted events" true
        (r.Opensim.Simulator.events_executed > 0);
      let dump = Tr.dump_string () in
      let has pat =
        let n = String.length pat in
        let rec go i =
          i + n <= String.length dump
          && (String.sub dump i n = pat || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun pat ->
          Alcotest.(check bool) (pat ^ " span present") true (has pat))
        [
          {|"name":"invoke"|};      (* manager invocation *)
          {|"name":"search"|};      (* B&B search phase *)
          {|"name":"propagate"|};   (* store propagation inside search *)
          "worker:";                (* portfolio worker span *)
          {|"name":"simulate"|};    (* whole-simulation span *)
          {|"name":"job-done"|};    (* per-job completion instant *)
        ];
      match r.Opensim.Simulator.metrics with
      | None -> Alcotest.fail "instrumented manager returned no metrics"
      | Some snap ->
          Alcotest.(check bool)
            "manager invocations counted" true
            (match M.find_counter snap "manager/invocations" with
            | Some n -> n > 0
            | None -> false);
          Alcotest.(check bool)
            "solver solves merged in" true
            (match M.find_counter snap "solver/solves" with
            | Some n -> n > 0
            | None -> false))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "observe buckets" `Quick test_observe_buckets;
          Alcotest.test_case "counter merge" `Quick test_counter_merge;
          Alcotest.test_case "histogram merge" `Quick test_histo_merge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled is silent" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "event limit" `Quick test_event_limit;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "instrumented run bit-identical" `Quick
            test_instrumented_run_bit_identical;
          Alcotest.test_case "trace covers all layers" `Slow
            test_trace_covers_all_layers;
        ] );
    ]
