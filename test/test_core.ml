(* Tests for the MRCP-RM core: the §V.D matchmaker and the Table-2 manager. *)

module T = Mapreduce.Types
module Dispatch = Sched.Dispatch

let cluster2x2 = T.uniform_cluster ~m:2 ~map_capacity:2 ~reduce_capacity:2

let mk_task ~id ?(job = 0) ?(kind = T.Map_task) ~e () =
  Gen.mk_task ~id ~job ~kind ~e

(* --- matchmaker --------------------------------------------------------- *)

let test_slot_counts () =
  let mm = Mrcp.Matchmaker.create ~cluster:cluster2x2 in
  Alcotest.(check int) "map slots" 4 (Mrcp.Matchmaker.map_slot_count mm);
  Alcotest.(check int) "reduce slots" 4 (Mrcp.Matchmaker.reduce_slot_count mm)

let test_assign_basic () =
  let mm = Mrcp.Matchmaker.create ~cluster:cluster2x2 in
  let t1 = mk_task ~id:1 ~e:10 () in
  let d1 = Mrcp.Matchmaker.assign mm ~kind:T.Map_task ~task:t1 ~start:0 in
  Alcotest.(check int) "start preserved" 0 d1.Dispatch.start;
  Alcotest.(check bool) "valid slot" true (d1.Dispatch.slot >= 0 && d1.Dispatch.slot < 4)

let test_assign_best_fit_gap () =
  (* Paper §V.D example: r1 busy until 10, r2 busy until 8; a task starting
     at 11 goes to the slot leaving the smaller gap (the one free at 10). *)
  let mm = Mrcp.Matchmaker.create ~cluster:(T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1) in
  Mrcp.Matchmaker.occupy mm ~kind:T.Map_task ~slot:0 ~until:10;
  Mrcp.Matchmaker.occupy mm ~kind:T.Map_task ~slot:1 ~until:8;
  let t = mk_task ~id:1 ~e:4 () in
  let d = Mrcp.Matchmaker.assign mm ~kind:T.Map_task ~task:t ~start:11 in
  Alcotest.(check int) "smallest gap slot chosen" 0 d.Dispatch.slot

let test_assign_never_overlaps () =
  (* a capacity-feasible combined schedule always matchmakes conflict-free *)
  let cluster = T.uniform_cluster ~m:3 ~map_capacity:2 ~reduce_capacity:1 in
  let mm = Mrcp.Matchmaker.create ~cluster in
  (* 6 map slots: schedule tasks with <= 6 concurrent *)
  let starts = Hashtbl.create 32 in
  let tasks = ref [] in
  for i = 0 to 17 do
    let t = mk_task ~id:i ~e:10 () in
    tasks := t :: !tasks;
    (* waves of 6 starting at 0, 10, 20 *)
    Hashtbl.replace starts i (i / 6 * 10)
  done;
  let ds = Mrcp.Matchmaker.assign_all mm ~starts ~pending:(List.rev !tasks) in
  Alcotest.(check int) "all assigned" 18 (List.length ds);
  (* no two dispatches on the same slot overlap *)
  List.iteri
    (fun i (a : Dispatch.t) ->
      List.iteri
        (fun j (b : Dispatch.t) ->
          if i < j && a.Dispatch.slot = b.Dispatch.slot then begin
            let disjoint =
              Dispatch.finish a <= b.Dispatch.start
              || Dispatch.finish b <= a.Dispatch.start
            in
            Alcotest.(check bool) "no slot overlap" true disjoint
          end)
        ds)
    ds

let test_occupied_slots_avoided () =
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:2 ~reduce_capacity:1 in
  let mm = Mrcp.Matchmaker.create ~cluster in
  (* slot 0 runs a frozen task until 100 *)
  Mrcp.Matchmaker.occupy mm ~kind:T.Map_task ~slot:0 ~until:100;
  let t = mk_task ~id:1 ~e:10 () in
  let d = Mrcp.Matchmaker.assign mm ~kind:T.Map_task ~task:t ~start:50 in
  Alcotest.(check int) "other slot used" 1 d.Dispatch.slot

let test_spread_evenly_paper_example () =
  (* §V.D: 100 reduce slots over 30 resources -> twenty 3s and ten 4s *)
  let shares = Mrcp.Matchmaker.spread_evenly ~slots:100 ~over:30 in
  let threes = Array.to_list shares |> List.filter (( = ) 3) |> List.length in
  let fours = Array.to_list shares |> List.filter (( = ) 4) |> List.length in
  Alcotest.(check int) "twenty resources with 3" 20 threes;
  Alcotest.(check int) "ten resources with 4" 10 fours;
  Alcotest.(check int) "total conserved" 100 (Array.fold_left ( + ) 0 shares)

let test_spread_evenly_exact_division () =
  let shares = Mrcp.Matchmaker.spread_evenly ~slots:100 ~over:50 in
  Array.iter (fun s -> Alcotest.(check int) "all equal" 2 s) shares

(* --- manager ------------------------------------------------------------- *)

let mk_job = Gen.mk_job

let validating_config =
  { Mrcp.Manager.default_config with Mrcp.Manager.validate = true }

let test_manager_plans_on_submit () =
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 validating_config in
  let job = mk_job ~id:0 ~deadline:100_000 ~maps:[ 1000; 2000 ] ~reduces:[ 500 ] () in
  Mrcp.Manager.submit mgr ~now:0 job;
  Alcotest.(check (list Alcotest.reject)) "no plan before invoke" []
    (List.map (fun _ -> Alcotest.fail "unexpected") (Mrcp.Manager.plan mgr));
  Mrcp.Manager.invoke mgr ~now:0;
  let plan = Mrcp.Manager.plan mgr in
  Alcotest.(check int) "all three tasks planned" 3 (List.length plan);
  Alcotest.(check int) "one solve" 1 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check int) "one job scheduled" 1 (Mrcp.Manager.jobs_scheduled mgr);
  (* maps at t=0, reduce after the longest map *)
  List.iter
    (fun (d : Dispatch.t) ->
      match d.Dispatch.task.T.kind with
      | T.Map_task -> Alcotest.(check int) "maps immediately" 0 d.Dispatch.start
      | T.Reduce_task ->
          Alcotest.(check int) "reduce at LFMT" 2000 d.Dispatch.start)
    plan

let test_manager_invoke_without_work_is_noop () =
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 validating_config in
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "no solve" 0 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check bool) "no overhead" true
    (Mrcp.Manager.overhead_seconds mgr = 0.)

let test_manager_reschedules_unstarted () =
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 validating_config in
  (* job 0's reduce is planned for t=2000; before anything starts, a tighter
     job arrives; MRCP-RM may remap everything that has not started *)
  let j0 = mk_job ~id:0 ~deadline:100_000 ~maps:[ 1000 ] ~reduces:[ 1000 ] () in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  let j1 = mk_job ~id:1 ~arrival:100 ~deadline:10_000 ~maps:[ 500 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:100 j1;
  Mrcp.Manager.invoke mgr ~now:100;
  let plan = Mrcp.Manager.plan mgr in
  (* j0's map started at 0 (frozen), so the plan covers j0's reduce + j1's map *)
  Alcotest.(check int) "two unstarted tasks planned" 2 (List.length plan);
  List.iter
    (fun (d : Dispatch.t) ->
      Alcotest.(check bool) "no past starts" true (d.Dispatch.start >= 100))
    plan;
  Alcotest.(check int) "two jobs scheduled" 2 (Mrcp.Manager.jobs_scheduled mgr)

let test_manager_deferral () =
  let config =
    { validating_config with Mrcp.Manager.deferral_window = Some 10_000 }
  in
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 config in
  (* s_j = 100s, window = 10s: deferred until 90s *)
  let job = mk_job ~id:0 ~est:100_000 ~deadline:500_000 ~maps:[ 1000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:0 job;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "not scheduled yet" 0 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check (option int)) "wake at s_j - window" (Some 90_000)
    (Mrcp.Manager.next_wake mgr);
  Mrcp.Manager.invoke mgr ~now:90_000;
  Alcotest.(check int) "scheduled at wake" 1 (Mrcp.Manager.solve_count mgr);
  Alcotest.(check (option int)) "no more wakes" None (Mrcp.Manager.next_wake mgr);
  let plan = Mrcp.Manager.plan mgr in
  List.iter
    (fun (d : Dispatch.t) ->
      Alcotest.(check bool) "start respects s_j" true
        (d.Dispatch.start >= 100_000))
    plan

let test_manager_deferral_disabled () =
  let config = { validating_config with Mrcp.Manager.deferral_window = None } in
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 config in
  let job = mk_job ~id:0 ~est:100_000 ~deadline:500_000 ~maps:[ 1000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:0 job;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "scheduled immediately" 1 (Mrcp.Manager.solve_count mgr)

let test_manager_frozen_tasks_keep_slots () =
  let cluster = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  let mgr = Mrcp.Manager.create ~cluster validating_config in
  let j0 = mk_job ~id:0 ~deadline:1_000_000 ~maps:[ 10_000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  (* j0's map runs [0,10000) on the only slot.  At t=5000 a new job arrives:
     its map must be planned at >= 10000 (slot busy with a frozen task). *)
  let j1 = mk_job ~id:1 ~arrival:5000 ~deadline:1_000_000 ~maps:[ 1000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:5000 j1;
  Mrcp.Manager.invoke mgr ~now:5000;
  let plan = Mrcp.Manager.plan mgr in
  Alcotest.(check int) "only j1's map in plan" 1 (List.length plan);
  let d = List.hd plan in
  Alcotest.(check bool) "waits for the frozen task" true
    (d.Dispatch.start >= 10_000)

let test_manager_completed_jobs_leave () =
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 validating_config in
  let j0 = mk_job ~id:0 ~deadline:100_000 ~maps:[ 1000 ] ~reduces:[ 1000 ] () in
  Mrcp.Manager.submit mgr ~now:0 j0;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check int) "active" 1 (Mrcp.Manager.active_jobs mgr);
  (* long after both tasks finished, a new arrival triggers cleanup *)
  let j1 = mk_job ~id:1 ~arrival:50_000 ~deadline:200_000 ~maps:[ 1000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:50_000 j1;
  Mrcp.Manager.invoke mgr ~now:50_000;
  Alcotest.(check int) "j0 retired, j1 active" 1 (Mrcp.Manager.active_jobs mgr)

let test_manager_overhead_accumulates () =
  let mgr = Mrcp.Manager.create ~cluster:cluster2x2 validating_config in
  let j = mk_job ~id:0 ~deadline:100_000 ~maps:[ 1000 ] ~reduces:[] () in
  Mrcp.Manager.submit mgr ~now:0 j;
  Mrcp.Manager.invoke mgr ~now:0;
  Alcotest.(check bool) "overhead measured" true
    (Mrcp.Manager.overhead_seconds mgr > 0.)

let () =
  Alcotest.run "core"
    [
      ( "matchmaker",
        [
          Alcotest.test_case "slot counts" `Quick test_slot_counts;
          Alcotest.test_case "assign basic" `Quick test_assign_basic;
          Alcotest.test_case "best fit gap" `Quick test_assign_best_fit_gap;
          Alcotest.test_case "never overlaps" `Quick test_assign_never_overlaps;
          Alcotest.test_case "occupied avoided" `Quick
            test_occupied_slots_avoided;
          Alcotest.test_case "spread paper example" `Quick
            test_spread_evenly_paper_example;
          Alcotest.test_case "spread exact" `Quick
            test_spread_evenly_exact_division;
        ] );
      ( "manager",
        [
          Alcotest.test_case "plans on submit" `Quick
            test_manager_plans_on_submit;
          Alcotest.test_case "noop invoke" `Quick
            test_manager_invoke_without_work_is_noop;
          Alcotest.test_case "reschedules unstarted" `Quick
            test_manager_reschedules_unstarted;
          Alcotest.test_case "deferral" `Quick test_manager_deferral;
          Alcotest.test_case "deferral disabled" `Quick
            test_manager_deferral_disabled;
          Alcotest.test_case "frozen tasks keep slots" `Quick
            test_manager_frozen_tasks_keep_slots;
          Alcotest.test_case "completed jobs leave" `Quick
            test_manager_completed_jobs_leave;
          Alcotest.test_case "overhead accumulates" `Quick
            test_manager_overhead_accumulates;
        ] );
    ]
