module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Dispatch = Sched.Dispatch

let log_src = Logs.Src.create "mrcp.manager" ~doc:"MRCP-RM resource manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  solver : Cp.Solver.options;
  domains : int;
  deferral_window : int option;
  validate : bool;
  warm_start : bool;
  session : bool;
  journal : Obs.Journal.t option;
}

let default_config =
  {
    solver = Cp.Solver.default_options;
    domains = 1;
    deferral_window = Some 300_000 (* 300 s *);
    validate = false;
    warm_start = true;
    session = true;
    journal = None;
  }

type task_state = {
  nominal : T.task; (* as submitted; [task] may carry a straggler's inflated
                       execution time for the current attempt *)
  mutable task : T.task;
  mutable dispatch : Dispatch.t option;
  mutable finished : bool;
}

type job_state = {
  job : T.job;
  mutable est : int;
  maps : task_state array;
  reduces : task_state array;
}

type t = {
  cluster : T.resource array;
  config : config;
  map_capacity : int;
  reduce_capacity : int;
  mutable active : job_state list;
  queue : T.job Queue.t;
  mutable deferred : T.job list; (* sorted by earliest_start *)
  mutable current_plan : Dispatch.t list;
  mutable overhead : float;
  mutable max_invocation : float;
  mutable plan_version : int;
  mutable solves : int;
  mutable cache_hits : int;
  mutable scheduled_jobs : int;
  mutable last_stats : Cp.Solver.stats option;
  mutable last_portfolio : Cp.Portfolio.stats option;
  (* the persistent solver store, created lazily at the first solve; None
     when [config.session] is off or [config.domains > 1] (the portfolio's
     workers each need their own store) *)
  mutable session : Cp.Session.t option;
  (* manager-level metrics (invocation counts/latency), allocated only when
     [config.solver.instrument] is set *)
  registry : Obs.Metrics.t option;
  (* accumulated snapshots of every solve so far *)
  mutable solver_metrics : Obs.Metrics.snapshot;
  (* Σ N_j of the last installed plan, for the trace's late-job delta *)
  mutable last_late : int;
  (* fault-reaction state: resources currently down, whether a fault
     notification forces the next invocation to re-plan even with an empty
     queue, and how many times a fault invalidated the persistent session
     (and with it the carried optimality certificate) *)
  down : (int, unit) Hashtbl.t;
  mutable dirty : bool;
  mutable fault_resets : int;
  (* journal-only bookkeeping (both empty when [config.journal = None]):
     per-job accumulated solver overhead, and the last journaled predicted
     SLA state (true = at risk) per active job *)
  job_overhead : (int, float) Hashtbl.t;
  sla_state : (int, bool) Hashtbl.t;
}

let create ~cluster config =
  if Array.length cluster = 0 then invalid_arg "Manager.create: empty cluster";
  {
    cluster;
    config;
    map_capacity = T.total_map_slots cluster;
    reduce_capacity = T.total_reduce_slots cluster;
    active = [];
    queue = Queue.create ();
    deferred = [];
    current_plan = [];
    overhead = 0.;
    max_invocation = 0.;
    plan_version = 0;
    solves = 0;
    cache_hits = 0;
    scheduled_jobs = 0;
    last_stats = None;
    last_portfolio = None;
    session = None;
    registry =
      (if config.solver.Cp.Solver.instrument then Some (Obs.Metrics.create ())
       else None);
    solver_metrics = Obs.Metrics.empty;
    last_late = 0;
    down = Hashtbl.create 8;
    dirty = false;
    fault_resets = 0;
    job_overhead = Hashtbl.create 64;
    sla_state = Hashtbl.create 64;
  }

let due ~now t (job : T.job) =
  match t.config.deferral_window with
  | None -> true
  | Some window -> job.T.earliest_start <= now + window

(* One "submit" journal line per admission decision (§V.E): admitted jobs
   enter the work queue now, deferred jobs park until s_j approaches. *)
let journal_submit t ~now (job : T.job) ~admitted =
  match t.config.journal with
  | None -> ()
  | Some j ->
      Obs.Journal.event j ~t_ms:now "submit"
        [
          ("job", Obs.Json.Int job.T.id);
          ("action", Obs.Json.String (if admitted then "admit" else "defer"));
          ( "reason",
            Obs.Json.String
              (if admitted then "within_deferral_window"
               else "starts_beyond_deferral_window") );
          ("est", Obs.Json.Int job.T.earliest_start);
          ("deadline", Obs.Json.Int job.T.deadline);
          ("arrival", Obs.Json.Int job.T.arrival);
        ]

let submit t ~now job =
  let admitted = due ~now t job in
  journal_submit t ~now job ~admitted;
  if admitted then Queue.push job t.queue
  else
    t.deferred <-
      List.merge
        (fun a b -> compare a.T.earliest_start b.T.earliest_start)
        [ job ] t.deferred

let next_wake t =
  match (t.deferred, t.config.deferral_window) with
  | [], _ | _, None -> None
  | job :: _, Some window -> Some (max 0 (job.T.earliest_start - window))

(* Move deferred jobs whose s_j is close enough into the work queue. *)
let release_due t ~now =
  let due_jobs, still = List.partition (due ~now t) t.deferred in
  t.deferred <- still;
  List.iter
    (fun (j : T.job) ->
      (match t.config.journal with
      | None -> ()
      | Some jr ->
          Obs.Journal.event jr ~t_ms:now "submit"
            [
              ("job", Obs.Json.Int j.T.id);
              ("action", Obs.Json.String "release");
              ("reason", Obs.Json.String "deferred_start_now_due");
              ("est", Obs.Json.Int j.T.earliest_start);
              ("deadline", Obs.Json.Int j.T.deadline);
            ]);
      Queue.push j t.queue)
    due_jobs

(* Table 2 lines 5–18: classify a job's tasks by the clock.  Returns the
   pending-job view for the CP instance, or None when the job has fully
   completed (and should leave the system). *)
let classify ~now (js : job_state) =
  let pending = ref [] and fixed = ref [] in
  let frozen_lfmt = ref 0 and frozen_completion = ref 0 in
  let remaining = ref 0 in
  let scan is_map ts =
    match ts.dispatch with
    | Some d when d.Dispatch.start <= now ->
        let finish = Dispatch.finish d in
        if finish <= now then begin
          (* line 14: completed *)
          ts.finished <- true;
          if is_map && finish > !frozen_lfmt then frozen_lfmt := finish;
          if finish > !frozen_completion then frozen_completion := finish
        end
        else begin
          (* line 11: started but running — freeze *)
          incr remaining;
          fixed := (is_map, { Instance.task = ts.task; start = d.Dispatch.start }) :: !fixed;
          if is_map && finish > !frozen_lfmt then frozen_lfmt := finish;
          if finish > !frozen_completion then frozen_completion := finish
        end
    | Some _ | None ->
        (* not started: remap and reschedule *)
        incr remaining;
        ts.dispatch <- None;
        pending := (is_map, ts.task) :: !pending
  in
  Array.iter (scan true) js.maps;
  Array.iter (scan false) js.reduces;
  if !remaining = 0 then None
  else begin
    js.est <- max js.job.T.earliest_start now;
    let select b l = List.filter_map (fun (m, x) -> if m = b then Some x else None) l in
    Some
      {
        Instance.job = js.job;
        est = js.est;
        pending_maps = Array.of_list (select true !pending);
        pending_reduces = Array.of_list (select false !pending);
        fixed_maps = Array.of_list (select true !fixed);
        fixed_reduces = Array.of_list (select false !fixed);
        frozen_lfmt = !frozen_lfmt;
        frozen_completion = !frozen_completion;
      }
  end

let task_states js = Array.to_list js.maps @ Array.to_list js.reduces

(* Plans from consecutive invocations must keep each running task on its slot
   and never double-book a unit slot.  [ests] maps each scheduled job to the
   effective earliest start of this invocation — for a deferred job
   re-entering via [next_wake] that is its s_j bumped up to [now] (possibly
   past its own deadline), which the solution-level oracle alone would only
   check against the instance the solver saw, not against what the
   matchmaker actually dispatched. *)
let validate_plan dispatches frozen ~ests =
  let by_slot = Hashtbl.create 64 in
  let record kind slot start finish task_id =
    let key = (kind, slot) in
    let existing = Option.value (Hashtbl.find_opt by_slot key) ~default:[] in
    List.iter
      (fun (s, f, other) ->
        if start < f && finish > s then
          failwith
            (Printf.sprintf
               "plan validation: tasks %d and %d overlap on %s slot %d"
               task_id other
               (T.task_kind_to_string kind)
               slot))
      existing;
    Hashtbl.replace by_slot key ((start, finish, task_id) :: existing)
  in
  List.iter
    (fun (d : Dispatch.t) ->
      record d.Dispatch.task.T.kind d.Dispatch.slot d.Dispatch.start
        (Dispatch.finish d) d.Dispatch.task.T.task_id)
    (frozen @ dispatches);
  List.iter
    (fun (d : Dispatch.t) ->
      match Hashtbl.find_opt ests d.Dispatch.task.T.job_id with
      | Some est when d.Dispatch.start < est ->
          failwith
            (Printf.sprintf
               "plan validation: task %d of job %d dispatched at %d before \
                the job's effective earliest start %d"
               d.Dispatch.task.T.task_id d.Dispatch.task.T.job_id
               d.Dispatch.start est)
      | Some _ | None -> ())
    dispatches

(* Capacity over the resources currently up (all of them, absent faults). *)
let up_capacity t select =
  if Hashtbl.length t.down = 0 then
    Array.fold_left (fun acc r -> acc + select r) 0 t.cluster
  else
    Array.fold_left
      (fun acc r ->
        if Hashtbl.mem t.down r.T.res_id then acc else acc + select r)
      0 t.cluster

let invoke t ~now =
  release_due t ~now;
  if (not (Queue.is_empty t.queue)) || t.dirty then begin
    t.dirty <- false;
    let span_ts = if Obs.Trace.enabled () then Some (Obs.Trace.now_us ()) else None in
    let t0 = Unix.gettimeofday () in
    (* absorb the job queue into the active set *)
    let arrived = ref [] in
    Queue.iter
      (fun (job : T.job) ->
        let state task = { nominal = task; task; dispatch = None; finished = false } in
        t.active <-
          {
            job;
            est = max job.T.earliest_start now;
            maps = Array.map state job.T.map_tasks;
            reduces = Array.map state job.T.reduce_tasks;
          }
          :: t.active;
        arrived := job.T.id :: !arrived;
        t.scheduled_jobs <- t.scheduled_jobs + 1)
      t.queue;
    Queue.clear t.queue;
    (* warm start: snapshot the surviving plan (planned-but-unstarted tasks)
       before [classify] wipes their dispatches.  Started/finished tasks need
       no carried entry — they re-enter the instance as frozen tasks. *)
    let carried = Hashtbl.create 64 in
    if t.config.warm_start then
      List.iter
        (fun js ->
          List.iter
            (fun ts ->
              match ts.dispatch with
              | Some d when (not ts.finished) && d.Dispatch.start > now ->
                  Hashtbl.replace carried ts.task.T.task_id d.Dispatch.start
              | Some _ | None -> ())
            (task_states js))
        t.active;
    (* classify tasks, dropping completed jobs (Table 2 l.15–16) *)
    let still_active, pending_jobs =
      List.fold_left
        (fun (actives, pjs) js ->
          match classify ~now js with
          | None -> (actives, pjs)
          | Some pj -> (js :: actives, pj :: pjs))
        ([], []) t.active
    in
    t.active <- still_active;
    if pending_jobs = [] then begin
      (* a fault notification left nothing pending (e.g. a rejoin with no
         open tasks, or the affected tasks are all still running): install
         the trivial empty plan — bumping the version so the simulator
         reconciles away any stale start events — and skip the solve. *)
      (* not a scheduling pass: no solve ran and no "invoke" journal line is
         written, so the O bookkeeping skips it too — the audit tool's
         Σ elapsed over journaled invokes must equal the run-end total *)
      t.current_plan <- [];
      t.plan_version <- t.plan_version + 1
    end
    else begin
    let inst =
      {
        Instance.now;
        map_capacity = up_capacity t (fun r -> r.T.map_capacity);
        reduce_capacity = up_capacity t (fun r -> r.T.reduce_capacity);
        jobs = Array.of_list pending_jobs;
      }
    in
    (* lines 19–20: generate and solve the model, warm-started from the
       carried plan when one survived *)
    let warm =
      if t.config.warm_start && Hashtbl.length carried > 0 then
        Some
          { Cp.Solver.carried_starts = carried; changed_jobs = !arrived }
      else None
    in
    let options =
      { t.config.solver with
        Cp.Solver.seed = t.config.solver.Cp.Solver.seed + t.solves;
        warm_start = warm }
    in
    (* session counters before the solve, so the journal can report this
       invocation's store-diff work as deltas *)
    let sess_before =
      match (t.config.journal, t.session) with
      | Some _, Some s ->
          ( Cp.Session.stats_appended_jobs s,
            Cp.Session.stats_retracted s,
            Cp.Session.stats_rebuilds s,
            Cp.Session.stats_reused_nogoods s,
            Cp.Session.stats_cert_proofs s )
      | _ -> (0, 0, 0, 0, 0)
    in
    let solution, stats =
      if t.config.domains > 1 then begin
        let sol, ps =
          Cp.Portfolio.solve ~domains:t.config.domains ~options inst
        in
        t.last_portfolio <- Some ps;
        (sol, ps.Cp.Portfolio.base)
      end
      else if t.config.session then begin
        let session =
          match t.session with
          | Some s -> s
          | None ->
              let s = Cp.Session.create ~options () in
              t.session <- Some s;
              s
        in
        Cp.Session.solve session ~options inst
      end
      else Cp.Solver.solve ~options inst
    in
    (* plan cache hit: the carried plan, completed around the new arrivals,
       was still feasible and already met the lower bound, so the solver
       adopted it and returned straight from the fast path — no model was
       built, no search ran (nodes = 0) *)
    let cache_hit =
      stats.Cp.Solver.warm_seeded
      && stats.Cp.Solver.seed_late <= stats.Cp.Solver.lower_bound
    in
    if cache_hit then begin
      t.cache_hits <- t.cache_hits + 1;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"manager" "plan-cache-hit"
          ~args:[ ("late", Obs.Trace.Int solution.Solution.late_jobs) ]
    end;
    t.last_stats <- Some stats;
    t.solves <- t.solves + 1;
    if t.config.validate then begin
      match Solution.feasibility_errors inst solution with
      | [] -> ()
      | errs ->
          failwith ("MRCP-RM solver produced infeasible solution: "
                    ^ String.concat "; " errs)
    end;
    (* lines 21–22 + §V.D: extract starts, matchmake onto resources.  Slot
       numbering always follows the full cluster — crashed resources keep
       their slot ids but are excluded from assignment — so frozen tasks on
       surviving resources stay on the slots they already hold. *)
    let mm = Matchmaker.create ~cluster:t.cluster in
    if Hashtbl.length t.down > 0 then
      Hashtbl.fold (fun rid () acc -> rid :: acc) t.down []
      |> List.sort compare
      |> List.iter (fun resource_id -> Matchmaker.disable_resource mm ~resource_id);
    let frozen_dispatches = ref [] in
    List.iter
      (fun js ->
        List.iter
          (fun ts ->
            match ts.dispatch with
            | Some d when not ts.finished ->
                (* running task keeps its slot *)
                Matchmaker.occupy mm ~kind:ts.task.T.kind ~slot:d.Dispatch.slot
                  ~until:(Dispatch.finish d);
                frozen_dispatches := d :: !frozen_dispatches
            | Some _ | None -> ())
          (task_states js))
      t.active;
    let pending_tasks =
      List.concat_map
        (fun js ->
          List.filter_map
            (fun ts -> if ts.dispatch = None && not ts.finished then Some ts.task else None)
            (task_states js))
        t.active
    in
    let dispatches =
      Matchmaker.assign_all mm ~starts:solution.Solution.starts
        ~pending:pending_tasks
    in
    if t.config.validate then begin
      let ests = Hashtbl.create 64 in
      List.iter
        (fun (pj : Instance.pending_job) ->
          Hashtbl.replace ests pj.Instance.job.T.id pj.Instance.est)
        pending_jobs;
      validate_plan dispatches !frozen_dispatches ~ests
    end;
    (* install the new plan on the task states *)
    let by_id = Hashtbl.create 256 in
    List.iter
      (fun (d : Dispatch.t) ->
        Hashtbl.replace by_id d.Dispatch.task.T.task_id d)
      dispatches;
    List.iter
      (fun js ->
        List.iter
          (fun ts ->
            match Hashtbl.find_opt by_id ts.task.T.task_id with
            | Some d -> ts.dispatch <- Some d
            | None -> ())
          (task_states js))
      t.active;
    let prev_plan = t.current_plan in
    t.current_plan <- List.sort Dispatch.compare_by_start dispatches;
    t.plan_version <- t.plan_version + 1;
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed > t.max_invocation then t.max_invocation <- elapsed;
    t.overhead <- t.overhead +. elapsed;
    let late = solution.Solution.late_jobs in
    (match t.registry with
    | Some r ->
        Obs.Metrics.add (Obs.Metrics.counter r "manager/invocations") 1;
        if cache_hit then
          Obs.Metrics.add (Obs.Metrics.counter r "manager/plan_cache_hits") 1;
        Obs.Metrics.observe (Obs.Metrics.histogram r "manager/invoke_s") elapsed;
        Obs.Metrics.set_gauge (Obs.Metrics.gauge r "manager/late_jobs")
          (float_of_int late);
        t.solver_metrics <-
          Obs.Metrics.merge t.solver_metrics (Obs.Solve_stats.to_metrics stats)
    | None -> ());
    (match span_ts with
    | Some ts ->
        Obs.Trace.complete ~cat:"manager" ~ts "invoke"
          ~args:
            [
              ("now_ms", Obs.Trace.Int now);
              ("active_jobs", Obs.Trace.Int (List.length t.active));
              ( "pending_tasks",
                Obs.Trace.Int (Sched.Instance.pending_task_count inst) );
              ("late_jobs", Obs.Trace.Int late);
              ("late_delta", Obs.Trace.Int (late - t.last_late));
              ("cache_hit", Obs.Trace.Int (if cache_hit then 1 else 0));
            ];
        Obs.Trace.instant ~cat:"solver" "stop-reason"
          ~args:
            [
              ( "reason",
                Obs.Trace.Str
                  (Obs.Solve_stats.stop_reason_to_string
                     stats.Cp.Solver.stop_reason) );
            ]
    | None -> ());
    (match t.config.journal with
    | None -> ()
    | Some j ->
        (* every job active in this invocation shares its wall-clock cost:
           O is a per-run scalar in the paper, but lateness attribution
           needs the per-job share (§V.E of the audit design) *)
        List.iter
          (fun js ->
            let id = js.job.T.id in
            let cur =
              Option.value (Hashtbl.find_opt t.job_overhead id) ~default:0.
            in
            Hashtbl.replace t.job_overhead id (cur +. elapsed))
          t.active;
        let sa, sr, sb, sn, sc = sess_before in
        let session_fields =
          match t.session with
          | None -> []
          | Some s ->
              [
                ( "session",
                  Obs.Json.Obj
                    [
                      ( "appended_jobs",
                        Obs.Json.Int (Cp.Session.stats_appended_jobs s - sa) );
                      ( "retracted",
                        Obs.Json.Int (Cp.Session.stats_retracted s - sr) );
                      ( "rebuilds",
                        Obs.Json.Int (Cp.Session.stats_rebuilds s - sb) );
                      ( "reused_nogoods",
                        Obs.Json.Int (Cp.Session.stats_reused_nogoods s - sn) );
                      ( "cert_proofs",
                        Obs.Json.Int (Cp.Session.stats_cert_proofs s - sc) );
                    ] );
              ]
        in
        (* plan diff against the previously installed plan, by task id *)
        let old_by_task = Hashtbl.create 64 in
        List.iter
          (fun (d : Dispatch.t) ->
            Hashtbl.replace old_by_task d.Dispatch.task.T.task_id d)
          prev_plan;
        let kept = ref 0 and moved = ref 0 and added = ref 0 in
        List.iter
          (fun (d : Dispatch.t) ->
            match Hashtbl.find_opt old_by_task d.Dispatch.task.T.task_id with
            | Some od ->
                Hashtbl.remove old_by_task d.Dispatch.task.T.task_id;
                if od = d then incr kept else incr moved
            | None -> incr added)
          t.current_plan;
        let removed = Hashtbl.length old_by_task in
        Obs.Journal.event j ~t_ms:now "invoke"
          ~wall:[ ("elapsed_s", Obs.Json.Float elapsed) ]
          ([
             ("invocation", Obs.Json.Int (t.solves - 1));
             ( "arrived",
               Obs.Json.List (List.rev_map (fun i -> Obs.Json.Int i) !arrived)
             );
             ("active_jobs", Obs.Json.Int (List.length t.active));
             ( "pending_tasks",
               Obs.Json.Int (Sched.Instance.pending_task_count inst) );
             ("late", Obs.Json.Int late);
             ("late_delta", Obs.Json.Int (late - t.last_late));
             ("cache_hit", Obs.Json.Bool cache_hit);
             ("plan_version", Obs.Json.Int t.plan_version);
             ( "solve",
               Obs.Json.Obj
                 [
                   ( "stop_reason",
                     Obs.Json.String
                       (Obs.Solve_stats.stop_reason_to_string
                          stats.Cp.Solver.stop_reason) );
                   ("seed_late", Obs.Json.Int stats.Cp.Solver.seed_late);
                   ("lower_bound", Obs.Json.Int stats.Cp.Solver.lower_bound);
                   ("proved", Obs.Json.Bool stats.Cp.Solver.proved_optimal);
                   ("warm_seeded", Obs.Json.Bool stats.Cp.Solver.warm_seeded);
                   ("nodes", Obs.Json.Int stats.Cp.Solver.nodes);
                   ("failures", Obs.Json.Int stats.Cp.Solver.failures);
                   ("restarts", Obs.Json.Int stats.Cp.Solver.restarts);
                   ("lns_moves", Obs.Json.Int stats.Cp.Solver.lns_moves);
                 ] );
             ( "plan",
               Obs.Json.Obj
                 [
                   ("kept", Obs.Json.Int !kept);
                   ("moved", Obs.Json.Int !moved);
                   ("added", Obs.Json.Int !added);
                   ("removed", Obs.Json.Int removed);
                 ] );
           ]
          @ session_fields);
        (* predicted SLA state per active job: at risk when the installed
           plan already finishes it past d_j.  One "sla" line per transition
           (and for the initial state only when it is already at_risk). *)
        List.iter
          (fun js ->
            let predicted =
              List.fold_left
                (fun acc ts ->
                  match (acc, ts.dispatch) with
                  | None, _ | _, None -> None
                  | Some m, Some d -> Some (max m (Dispatch.finish d)))
                (Some 0) (task_states js)
            in
            match predicted with
            | None -> () (* not fully planned; keep the previous state *)
            | Some completion ->
                let at_risk = completion > js.job.T.deadline in
                let prev = Hashtbl.find_opt t.sla_state js.job.T.id in
                let state b = if b then "at_risk" else "on_time" in
                (match prev with
                | Some p when p = at_risk -> ()
                | Some p ->
                    Obs.Journal.event j ~t_ms:now "sla"
                      [
                        ("job", Obs.Json.Int js.job.T.id);
                        ("from", Obs.Json.String (state p));
                        ("to", Obs.Json.String (state at_risk));
                        ("predicted_completion", Obs.Json.Int completion);
                        ("deadline", Obs.Json.Int js.job.T.deadline);
                      ]
                | None ->
                    if at_risk then
                      Obs.Journal.event j ~t_ms:now "sla"
                        [
                          ("job", Obs.Json.Int js.job.T.id);
                          ("from", Obs.Json.String "on_time");
                          ("to", Obs.Json.String "at_risk");
                          ("predicted_completion", Obs.Json.Int completion);
                          ("deadline", Obs.Json.Int js.job.T.deadline);
                        ]);
                Hashtbl.replace t.sla_state js.job.T.id at_risk)
          t.active);
    t.last_late <- late;
    Log.debug (fun m ->
        m
          "invocation at %d: %d active jobs, %d pending tasks planned, %a,            %.4fs"
          now (List.length t.active) (List.length dispatches)
          (Fmt.option Cp.Solver.pp_stats)
          t.last_stats elapsed)
    end
  end

(* --- fault reactions (driven by the simulator's chaos events) ------------ *)

let find_task_state t task_id =
  let hit = ref None in
  let scan ts = if ts.task.T.task_id = task_id then hit := Some ts in
  List.iter
    (fun js ->
      if !hit = None then begin
        Array.iter scan js.maps;
        Array.iter scan js.reduces
      end)
    t.active;
  !hit

(* Any fault invalidates the persistent session and its carried optimality
   certificate: a rejoin grows the capacity (a carried bound could overclaim),
   a lost or failed task falsifies the session's root-fixed starts, and a
   straggler changes a duration baked into the stored model.  The next solve
   rebuilds a fresh session from scratch. *)
let drop_session t =
  t.session <- None;
  t.fault_resets <- t.fault_resets + 1;
  t.dirty <- true

(* The attempt is gone: forget its dispatch and any straggler-inflated
   execution time so the task re-enters the next instance as freshly pending
   (classify will bump its effective est up to now). *)
let requeue_task ts =
  ts.dispatch <- None;
  ts.finished <- false;
  ts.task <- ts.nominal

let resource_lost t ~now:_ ~resource_id ~lost =
  Hashtbl.replace t.down resource_id ();
  List.iter
    (fun id ->
      match find_task_state t id with
      | Some ts -> requeue_task ts
      | None -> ())
    lost;
  drop_session t

let resource_rejoined t ~now:_ ~resource_id =
  Hashtbl.remove t.down resource_id;
  drop_session t

let task_attempt_failed t ~now:_ ~task_id =
  (match find_task_state t task_id with
  | Some ts -> requeue_task ts
  | None -> ());
  drop_session t

let task_started t ~now:_ ~task_id ~exec_ms =
  match find_task_state t task_id with
  | None -> ()
  | Some ts ->
      if ts.task.T.exec_time <> exec_ms then begin
        ts.task <- { ts.task with T.exec_time = exec_ms };
        (match ts.dispatch with
        | Some d -> ts.dispatch <- Some { d with Dispatch.task = ts.task }
        | None -> ());
        drop_session t
      end

let fault_resets t = t.fault_resets
let resources_down t = Hashtbl.length t.down

let plan t = t.current_plan
let plan_version t = t.plan_version
let active_jobs t = List.length t.active
let overhead_seconds t = t.overhead
let max_invocation_seconds t = t.max_invocation

let job_overhead_seconds t id =
  match Hashtbl.find_opt t.job_overhead id with Some v -> v | None -> 0.
let solve_count t = t.solves
let cache_hit_count t = t.cache_hits
let jobs_scheduled t = t.scheduled_jobs
let last_stats t = t.last_stats
let last_solver_stats = last_stats
let last_portfolio_stats t = t.last_portfolio

let metrics t =
  match t.registry with
  | None -> None
  | Some r -> Some (Obs.Metrics.merge (Obs.Metrics.snapshot r) t.solver_metrics)
