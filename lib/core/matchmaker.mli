(** Matchmaking (paper §V.D): distribute a combined-resource schedule over
    the physical resources.

    The combined schedule (from the CP solver) gives each task a start time
    under the aggregate capacity constraint.  Matchmaking assigns each task
    to a concrete unit slot — the paper's first step ("map the tasks from
    the single resource schedule to unit capacity resources") — using the
    paper's best-fit rule: pick the slot that leaves the smallest idle gap
    before the task's start.  Because the combined schedule never runs more
    than [capacity] tasks of a kind concurrently, a slot is always available
    (interval-graph colourability), so matchmaking cannot fail.

    Unit slots are numbered globally: resource 0's map slots first, then
    resource 1's, ...; reduce slots are numbered in a separate space. *)

type slot_state = {
  slot_id : int;
  resource_id : int;
  mutable available_from : int;
      (** end of the latest task committed to this slot *)
}

type t

val create : cluster:Mapreduce.Types.resource array -> t
(** Fresh matchmaker with all slots free from time [min_int]. *)

val map_slot_count : t -> int
val reduce_slot_count : t -> int

val disable_resource : t -> resource_id:int -> unit
(** Mark every slot of a crashed resource permanently unavailable
    ([available_from = max_int]) while keeping the global slot numbering
    stable — best-fit assignment then never picks them, and frozen tasks on
    surviving resources keep their slot ids. *)

val occupy :
  t -> kind:Mapreduce.Types.task_kind -> slot:int -> until:int -> unit
(** Pre-load a running (frozen) task's occupation: the slot is unavailable
    until [until].  Used when rebuilding the matchmaker at an MRCP-RM
    invocation — running tasks keep their slots (they cannot migrate). *)

val assign :
  t ->
  kind:Mapreduce.Types.task_kind ->
  task:Mapreduce.Types.task ->
  start:int ->
  Sched.Dispatch.t
(** Best-fit-gap slot choice for one task.  Tasks must be assigned in
    non-decreasing [start] order (assert-checked).
    @raise Invalid_argument for tasks with [capacity_req <> 1]: matchmaking
    onto unit slots requires the paper's q_t = 1 (the CP solver itself
    handles general demands, but such schedules cannot be decomposed into
    unit slots).
    @raise Failure if no slot is free — impossible for capacity-feasible
    combined schedules, so this signals a solver bug. *)

val assign_all :
  t ->
  starts:(int, int) Hashtbl.t ->
  pending:Mapreduce.Types.task list ->
  Sched.Dispatch.t list
(** Sort [pending] by combined-schedule start (looked up in [starts]) and
    assign every task; returns dispatches in start order. *)

val spread_evenly : slots:int -> over:int -> int array
(** The paper's redistribution example (§V.D): divide [slots] unit slots over
    [over] resources as evenly as possible — e.g. 100 slots over 30 resources
    gives 20 resources with 3 and 10 with 4.  Exposed for the generalized
    regrouping API and tested against the paper's numbers. *)
