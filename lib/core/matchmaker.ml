module T = Mapreduce.Types

type slot_state = {
  slot_id : int;
  resource_id : int;
  mutable available_from : int;
}

type t = {
  map_slots : slot_state array;
  reduce_slots : slot_state array;
  mutable last_map_start : int;
  mutable last_reduce_start : int;
}

let slots_of cluster select =
  let slots = ref [] in
  let next = ref 0 in
  Array.iter
    (fun (r : T.resource) ->
      for _ = 1 to select r do
        slots :=
          { slot_id = !next; resource_id = r.T.res_id; available_from = min_int }
          :: !slots;
        incr next
      done)
    cluster;
  Array.of_list (List.rev !slots)

let create ~cluster =
  {
    map_slots = slots_of cluster (fun r -> r.T.map_capacity);
    reduce_slots = slots_of cluster (fun r -> r.T.reduce_capacity);
    last_map_start = min_int;
    last_reduce_start = min_int;
  }

let map_slot_count t = Array.length t.map_slots
let reduce_slot_count t = Array.length t.reduce_slots

let slots_for t = function
  | T.Map_task -> t.map_slots
  | T.Reduce_task -> t.reduce_slots

let disable_resource t ~resource_id =
  let disable slots =
    Array.iter
      (fun s -> if s.resource_id = resource_id then s.available_from <- max_int)
      slots
  in
  disable t.map_slots;
  disable t.reduce_slots

let occupy t ~kind ~slot ~until =
  let slots = slots_for t kind in
  if slot < 0 || slot >= Array.length slots then
    invalid_arg "Matchmaker.occupy: slot out of range";
  let s = slots.(slot) in
  if until > s.available_from then s.available_from <- until

let assign t ~kind ~task ~start =
  if task.T.capacity_req <> 1 then
    invalid_arg
      "Matchmaker.assign: only unit capacity requirements are supported \
       (the paper's q_t = 1); tasks with q_t > 1 cannot be matched to unit \
       slots";
  let slots = slots_for t kind in
  (match kind with
  | T.Map_task ->
      assert (start >= t.last_map_start);
      t.last_map_start <- start
  | T.Reduce_task ->
      assert (start >= t.last_reduce_start);
      t.last_reduce_start <- start);
  (* Best fit: among slots free by [start], take the one freed latest
     (smallest remaining gap, paper §V.D). *)
  let best = ref None in
  Array.iter
    (fun s ->
      if s.available_from <= start then
        match !best with
        | Some b when b.available_from >= s.available_from -> ()
        | _ -> best := Some s)
    slots;
  match !best with
  | None ->
      failwith
        (Printf.sprintf
           "Matchmaker.assign: no free %s slot at %d for task %d (solver \
            capacity bug)"
           (T.task_kind_to_string kind) start task.T.task_id)
  | Some s ->
      s.available_from <- start + task.T.exec_time;
      {
        Sched.Dispatch.task;
        resource_id = s.resource_id;
        slot = s.slot_id;
        start;
      }

let assign_all t ~starts ~pending =
  let with_start =
    List.map
      (fun (task : T.task) ->
        match Hashtbl.find_opt starts task.T.task_id with
        | Some s -> (s, task)
        | None ->
            invalid_arg
              (Printf.sprintf "Matchmaker.assign_all: task %d has no start"
                 task.T.task_id))
      pending
  in
  let sorted =
    List.sort
      (fun (s1, t1) (s2, t2) ->
        let c = compare s1 s2 in
        if c <> 0 then c else compare t1.T.task_id t2.T.task_id)
      with_start
  in
  List.map
    (fun (start, task) -> assign t ~kind:task.T.kind ~task ~start)
    sorted

let spread_evenly ~slots ~over =
  if over <= 0 then invalid_arg "Matchmaker.spread_evenly: over must be > 0";
  if slots < 0 then invalid_arg "Matchmaker.spread_evenly: negative slots";
  let base = slots / over and extra = slots mod over in
  (* the paper gives the larger share to the tail of the list: 100 over 30 ->
     twenty 3s then ten 4s *)
  Array.init over (fun i -> if i < over - extra then base else base + 1)
