(** MRCP-RM: the MapReduce Constraint-Programming Resource Manager
    (paper §V, Table 2).

    The manager owns the set of active jobs and the current plan (a dispatch
    per not-yet-started task).  On each invocation it executes the Table-2
    algorithm:

    + bump earliest start times below the current time up to now (l.1–4);
    + classify every previously scheduled task by the clock: not started
      (reschedulable), started-but-running (frozen via an equality
      constraint, [isPrevScheduled]), or finished (removed; a job with no
      remaining tasks leaves the system) (l.5–18);
    + rebuild the CP model over pending tasks and solve it (l.19–20),
      seeding/solving through {!Cp.Solver} with the configured job ordering —
      warm-started (when [config.warm_start]) from the surviving portion of
      the previous plan, with the solve skipped entirely when that carried
      plan is still feasible and already bound-optimal (a "plan cache hit");
    + extract the new combined schedule and matchmake it onto physical
      resources (§V.D) to produce the new plan (l.21–22).

    The §V.E optimization is built in: a job whose s_j lies further than
    [deferral_window] in the future is parked in a deferral queue and enters
    matchmaking only when its s_j approaches ({!next_wake} tells the caller
    when to re-invoke).

    The manager never looks at wall-clock arrival events itself — the
    simulator (or a real dispatcher) calls {!submit} and {!invoke}; the
    manager infers running/completed states purely from its own plan and
    [now], exactly as the published algorithm does. *)

type config = {
  solver : Cp.Solver.options;
  domains : int;
      (** > 1: solve through {!Cp.Portfolio} on that many OCaml domains;
          1 (default) keeps the sequential, deterministic {!Cp.Solver} *)
  deferral_window : int option;
      (** §V.E: [Some w] defers jobs with s_j > now + w; [None] disables *)
  validate : bool;
      (** re-check every solution against the Table-1 oracle and every plan
          against slot-exclusivity (slower; on in tests).  Applies to every
          path that installs a plan — cold solves, warm-started solves, the
          plan-cache-hit fast path, and invocations triggered by deferred
          jobs re-entering via {!next_wake}. *)
  warm_start : bool;
      (** carry the surviving portion of the previous plan into the next
          solve as a starting incumbent ({!Cp.Solver.options.warm_start}),
          and skip the solve entirely (a "plan cache hit") when that carried
          plan — completed around the new arrivals — is still feasible and
          already meets the lower bound.  Default [true]; disable
          ([--no-warm-start] in the CLIs) to reproduce the paper's cold
          re-solve on every invocation. *)
  session : bool;
      (** solve through one persistent {!Cp.Session} — the manager's solver
          store is created once and diffed between invocations (arrivals
          appended, completed tasks retracted, nogoods carried) instead of
          rebuilt from scratch.  Only effective with [domains = 1]; the
          portfolio's workers each build their own store.  Default [true];
          disable ([--no-session] in the CLIs) to reproduce the historical
          cold per-invocation {!Cp.Solver.solve} bit-for-bit. *)
  journal : Obs.Journal.t option;
      (** [Some j]: append one structured {!Obs.Journal} event per admission
          decision ("submit": admit/defer/release with reason), per
          scheduling pass ("invoke": arrivals, plan diff, session deltas, the
          solve's {!Obs.Solve_stats.stop_reason}, with wall-clock latency
          isolated under the ["wall"] key), and per predicted SLA-state
          transition ("sla": on_time ⇄ at_risk against the installed plan).
          [None] (default) is strictly zero-cost: no events are built, and
          the solver trajectory is bit-identical to a journal-free run. *)
}

val default_config : config
(** EDF ordering, 1 domain (sequential), deferral window 300 s, validation
    off, warm start on, persistent session on, journaling off. *)

type t

val create : cluster:Mapreduce.Types.resource array -> config -> t

val submit : t -> now:int -> Mapreduce.Types.job -> unit
(** A job arrives.  It is queued (or deferred, §V.E); call {!invoke} to run
    the matchmaking-and-scheduling pass. *)

val invoke : t -> now:int -> unit
(** Run the MRCP-RM algorithm if there is queued work (new or deferred-due
    jobs) or a fault notification marked the state dirty.  No-op otherwise —
    mirroring "if MRCP-RM is not busy and there are jobs available in the job
    queue" (§V.A). *)

val resource_lost : t -> now:int -> resource_id:int -> lost:int list -> unit
(** A resource crashed.  [lost] are the task ids whose in-flight attempts
    died with it: their dispatches are forgotten (the work is lost; they
    re-enter the next instance as pending with est bumped to now), the
    resource is excluded from capacity and matchmaking until
    {!resource_rejoined}, the persistent session and its carried optimality
    certificate are invalidated, and the next {!invoke} re-solves even with
    an empty queue. *)

val resource_rejoined : t -> now:int -> resource_id:int -> unit
(** The resource accepts work again.  Capacity grows back, so the carried
    certificate (a lower bound proved under the smaller capacity) is
    invalidated along with the session, and a re-solve is forced. *)

val task_attempt_failed : t -> now:int -> task_id:int -> unit
(** The task's running attempt aborted; it re-enters the open set and will
    be re-executed from scratch (with its nominal execution time). *)

val task_started : t -> now:int -> task_id:int -> exec_ms:int -> unit
(** An attempt started with an actual execution time of [exec_ms] (a chaos
    straggler).  The manager updates the task's frozen record — so later
    classifications and matchmaker occupations use the real finish time —
    and forces a re-solve to repair the downstream plan.  No-op when
    [exec_ms] equals the recorded execution time. *)

val fault_resets : t -> int
(** Times a fault notification invalidated the persistent session (and the
    carried optimality certificate).  0 in fault-free runs. *)

val resources_down : t -> int
(** Resources currently excluded after {!resource_lost}. *)

val plan : t -> Sched.Dispatch.t list
(** Current dispatches for every active task that has not yet started,
    ordered by start time.  Starts are absolute simulation times. *)

val plan_version : t -> int
(** Incremented every time {!invoke} actually re-solves (and hence may have
    changed the plan); lets callers skip reconciliation after no-op
    invocations. *)

val next_wake : t -> int option
(** Earliest future time at which {!invoke} should be called again because a
    deferred job becomes due. *)

val active_jobs : t -> int
(** Jobs tracked (arrived, not yet fully completed at the last invocation). *)

val overhead_seconds : t -> float
(** Total wall-clock time spent in solving + matchmaking so far — the
    numerator of the paper's O metric. *)

val max_invocation_seconds : t -> float
(** Longest single matchmaking-and-scheduling pass so far (the paper quotes
    these maxima, e.g. "O was observed to be 0.57s" at small m). *)

val job_overhead_seconds : t -> int -> float
(** Wall-clock solver + matchmaking time attributed to a job: the sum of
    [elapsed] over every invocation in which the job was active.  Tracked
    only when [config.journal] is set (0. otherwise) — it feeds the
    journal's per-job lateness attribution, not the paper's O metric. *)

val solve_count : t -> int
(** Scheduling passes run (including plan-cache hits, which replace a solve
    with an O(1)-ish plan completion). *)

val cache_hit_count : t -> int
(** Passes that skipped the CP solve because the carried-over plan was still
    feasible and bound-optimal (also counted in the [manager/plan_cache_hits]
    metric and flagged on the invoke trace span).  Always 0 when
    [config.warm_start] is false. *)

val jobs_scheduled : t -> int
(** Total jobs that have been through at least one scheduling pass —
    the denominator of O. *)

val last_solver_stats : t -> Cp.Solver.stats option
(** Stats of the most recent solve.  Under a portfolio configuration this is
    the aggregate ({!Cp.Portfolio.stats.base}). *)

val last_portfolio_stats : t -> Cp.Portfolio.stats option
(** Per-worker breakdown of the most recent solve; [None] until a solve has
    run with [config.domains > 1]. *)

val metrics : t -> Obs.Metrics.snapshot option
(** Accumulated telemetry over every invocation so far — manager-level
    counters ([manager/*]) merged with the per-solve solver and propagator
    metrics ([solver/*], [prop/*], [store/*]).  [None] unless the manager
    was created with [config.solver.instrument = true]. *)
