(** Branch-and-bound mixed-integer programming over the {!Simplex} kernel.

    Minimizes the LP objective subject to integrality of the designated
    variables; branching adds bound rows (x ≤ ⌊v⌋ / x ≥ ⌈v⌉) and re-solves
    the relaxation from scratch (no warm starts — the point of this module
    is to reproduce the {e scaling} contrast with CP from the paper's
    motivation, not to be a competitive MILP code). *)

type limits = {
  max_nodes : int;  (** 0 = unlimited *)
  wall_deadline : float option;
      (** absolute deadline on the monotonic clock ({!Obs.Clock.now}), not
          [Unix.gettimeofday] *)
}

val no_limits : limits

type outcome = {
  best : (float * float array) option;
      (** (objective, solution) of the best integral point found *)
  proved_optimal : bool;  (** search space exhausted within limits *)
  nodes : int;
}

val solve :
  ?limits:limits -> ?integrality_eps:float -> Simplex.problem -> integer:int list -> outcome
(** [solve p ~integer] minimizes [p] with the listed variables integral.
    Branches on the most fractional integer variable. *)
