type limits = { max_nodes : int; wall_deadline : float option }

let no_limits = { max_nodes = 0; wall_deadline = None }

type outcome = {
  best : (float * float array) option;
  proved_optimal : bool;
  nodes : int;
}

exception Limit_reached

let solve ?(limits = no_limits) ?(integrality_eps = 1e-6)
    (problem : Simplex.problem) ~integer =
  let n = Array.length problem.Simplex.objective in
  List.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Mip.solve: integer index range")
    integer;
  let best = ref None in
  let nodes = ref 0 in
  let check_limits () =
    if limits.max_nodes > 0 && !nodes >= limits.max_nodes then
      raise Limit_reached;
    match limits.wall_deadline with
    | Some d when !nodes land 15 = 0 && Obs.Clock.now () > d ->
        raise Limit_reached
    | _ -> ()
  in
  let fractional x =
    (* most fractional integer variable, or None if all integral *)
    let best_j = ref (-1) and best_frac = ref integrality_eps in
    List.iter
      (fun j ->
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best_frac := frac;
          best_j := j
        end)
      integer;
    if !best_j < 0 then None else Some !best_j
  in
  let bound_row j relation rhs =
    let coeffs = Array.make n 0. in
    coeffs.(j) <- 1.;
    { Simplex.coeffs; relation; rhs }
  in
  let rec branch extra_rows =
    check_limits ();
    incr nodes;
    let p = { problem with Simplex.rows = extra_rows @ problem.Simplex.rows } in
    match Simplex.solve p with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* an unbounded relaxation cannot be pruned; treat as a failure of
           the model (our scheduling MILPs are always bounded) *)
        failwith "Mip.solve: unbounded relaxation"
    | Simplex.Optimal { objective; solution } -> (
        let dominated =
          match !best with
          | Some (incumbent, _) -> objective >= incumbent -. 1e-9
          | None -> false
        in
        if not dominated then
          match fractional solution with
          | None -> best := Some (objective, Array.copy solution)
          | Some j ->
              let v = solution.(j) in
              let lo = Float.of_int (int_of_float (Float.floor v)) in
              (* explore the side closer to the relaxation first *)
              let down () =
                branch (bound_row j Simplex.Le lo :: extra_rows)
              in
              let up () =
                branch (bound_row j Simplex.Ge (lo +. 1.) :: extra_rows)
              in
              if v -. lo <= 0.5 then begin
                down ();
                up ()
              end
              else begin
                up ();
                down ()
              end)
  in
  let proved_optimal =
    try
      branch [];
      true
    with Limit_reached -> false
  in
  { best = !best; proved_optimal; nodes = !nodes }
