(** Shared experiment runner: one "point" = one (workload, system, manager)
    configuration, replicated over several seeds, summarizing the paper's
    four metrics.  Used by bin/experiments.ml (figure regeneration) and
    bench/main.ml. *)

type manager_kind =
  | Mrcp_rm  (** the paper's contribution *)
  | Min_edf_wc  (** Verma et al. [8], the Fig. 2/3 comparator *)
  | Edf_wc  (** ablation: work-conserving EDF without min allocation *)
  | Fcfs_wc  (** ablation: FCFS *)
  | Greedy_only
      (** ablation: MRCP-RM pipeline with the CP improvement search disabled
          (greedy seed only) — isolates the CP solver's contribution *)

val manager_to_string : manager_kind -> string

type config = {
  n_jobs : int;  (** jobs per replication *)
  reps : int;  (** replications (paper: until CI ±1%; here fixed count) *)
  base_seed : int;
  manager : manager_kind;
  ordering : Sched.Greedy.order;  (** MRCP-RM job-ordering strategy *)
  solver_time_limit : float;  (** per-invocation CP budget, seconds *)
  solver_domains : int;
      (** > 1 solves through {!Cp.Portfolio} on that many domains; 1 keeps
          the deterministic sequential solver *)
  deferral_window : int option;  (** §V.E, ms *)
  validate : bool;
  instrument : bool;
      (** collect solver/propagator metrics into [point.metrics] (MRCP-RM
          managers only) *)
  warm_start : bool;
      (** carry the previous plan into each solve as a starting incumbent
          (see {!Mrcp.Manager.config}); [false] reproduces the paper's cold
          re-solve on every invocation ([--no-warm-start] in the CLIs) *)
  session : bool;
      (** solve through a persistent {!Cp.Session} (one store per manager,
          diffed between invocations); [false] rebuilds the model on every
          invocation ([--no-session] in the CLIs) *)
  kernel : Cp.Propagators.kernel;
      (** propagation kernel for every CP solve ([--kernel] in the CLIs;
          default {!Cp.Propagators.Both}) *)
  restart : Cp.Restart.policy;
      (** restart policy for every CP solve ([--restarts] in the CLIs;
          default {!Cp.Restart.Off} — opt in with e.g. [--restarts luby]) *)
  journal : Obs.Journal.t option;
      (** decision journal shared by the manager and the simulator
          ([--journal] in the CLIs).  One journal spans every replication:
          rep i+1's events append after rep i's.  Use [reps = 1] for
          per-run audit files. *)
  metrics_every : int option;
      (** with [journal]: virtual ms between metrics-snapshot journal
          events ([--metrics-every], which takes seconds, in the CLIs) *)
  chaos : Opensim.Chaos.config option;
      (** [Some c]: materialize a fault plan per replication (from the
          replication's seed, {!Opensim.Chaos.materialize}) and run the
          simulation under injected crashes / stragglers / attempt failures
          ([--crash-rate] etc. in mrcp_sim).  [None] (default) runs
          fault-free and bit-identical to a chaos-free build. *)
}

val default_config : config
(** 200 jobs, 3 reps, MRCP-RM, EDF, 0.2 s budget, 1 domain, 300 s deferral
    window, warm start on, persistent session on. *)

type point = {
  label : string;
  config : config;
  o_s : Simstats.Confidence.interval option;  (** O: overhead per job, s *)
  t_s : Simstats.Confidence.interval option;  (** T: turnaround, s *)
  p_late : float;  (** P: pooled late fraction over all reps *)
  n_late_mean : float;  (** N per replication *)
  o_mean : float;
  t_mean : float;
  solves_mean : float;
  elapsed_s : float;  (** wall-clock cost of producing this point *)
  metrics : Obs.Metrics.snapshot option;
      (** merged over replications; [None] unless [config.instrument] *)
}

val run_synthetic :
  ?label:string ->
  ?m:int ->
  ?map_capacity:int ->
  ?reduce_capacity:int ->
  params:Mapreduce.Synthetic.params ->
  config:config ->
  unit ->
  point
(** Table-3 synthetic workload on an m-resource cluster (defaults m=50,
    2 map + 2 reduce slots — the paper's defaults). *)

val run_facebook :
  ?label:string ->
  params:Mapreduce.Facebook.params ->
  config:config ->
  unit ->
  point
(** Table-4 Facebook workload on the 64×(1,1) cluster of Fig. 2/3. *)

val point_row : point -> string list
(** [label; O; T; P; N] formatted for {!Report.Table}. *)

val point_headers : string list
