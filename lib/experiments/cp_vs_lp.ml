module T = Mapreduce.Types

type row = {
  jobs : int;
  tasks : int;
  cp_time_s : float;
  cp_late : int;
  cp_optimal : bool;
  milp_vars : int;
  milp_time_s : float;
  milp_late : int option;
  milp_optimal : bool;
}

(* Small contended batches with integral-second times so that the MILP's
   1-second quantum is exact and both solvers optimize the same problem. *)
let make_batch ~n ~rng ~task_counter =
  let jobs =
    List.init n (fun id ->
        let fresh kind e =
          incr task_counter;
          {
            T.task_id = !task_counter;
            job_id = id;
            kind;
            exec_time = e;
            capacity_req = 1;
          }
        in
        let maps =
          List.init
            (1 + Simrand.Rng.int rng 2)
            (fun _ -> fresh T.Map_task (1 + Simrand.Rng.int rng 4))
        in
        let reduces =
          if Simrand.Rng.bool rng then
            [ fresh T.Reduce_task (1 + Simrand.Rng.int rng 3) ]
          else []
        in
        let total =
          List.fold_left (fun a (t : T.task) -> a + t.T.exec_time) 0
            (maps @ reduces)
        in
        {
          T.id;
          arrival = 0;
          earliest_start = 0;
          deadline = (total / 2) + 2 + Simrand.Rng.int rng 8;
          map_tasks = Array.of_list maps;
          reduce_tasks = Array.of_list reduces;
        })
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:1 jobs

let run ?(sizes = [ 1; 2; 3; 4; 5 ]) ?(milp_budget = 5.) ?(seed = 17) () =
  let task_counter = ref 0 in
  List.map
    (fun n ->
      let rng = Simrand.Rng.create (seed + n) in
      let inst = make_batch ~n ~rng ~task_counter in
      let tasks = Sched.Instance.pending_task_count inst in
      (* CP *)
      let t0 = Obs.Clock.now () in
      let cp_sol, cp_stats = Cp.Solver.solve inst in
      let cp_time_s = Obs.Clock.now () -. t0 in
      (* MILP *)
      let horizon = Lp.Milp_model.suggested_horizon_slots inst ~quantum:1 + 4 in
      let t0 = Obs.Clock.now () in
      let model = Lp.Milp_model.build inst ~quantum:1 ~horizon_slots:horizon in
      let milp_sol, outcome =
        Lp.Milp_model.solve
          ~limits:
            {
              Lp.Mip.max_nodes = 0;
              wall_deadline = Some (Obs.Clock.now () +. milp_budget);
            }
          model
      in
      let milp_time_s = Obs.Clock.now () -. t0 in
      {
        jobs = n;
        tasks;
        cp_time_s;
        cp_late = cp_sol.Sched.Solution.late_jobs;
        cp_optimal = cp_stats.Cp.Solver.proved_optimal;
        milp_vars = Lp.Milp_model.variables model;
        milp_time_s;
        milp_late =
          Option.map (fun (s : Sched.Solution.t) -> s.Sched.Solution.late_jobs) milp_sol;
        milp_optimal = outcome.Lp.Mip.proved_optimal;
      })
    sizes

let headers =
  [
    "jobs"; "tasks"; "cp time"; "cp late"; "cp opt"; "milp vars"; "milp time";
    "milp late"; "milp opt";
  ]

let rows_of rows =
  List.map
    (fun r ->
      [
        string_of_int r.jobs;
        string_of_int r.tasks;
        Report.Table.fmt_seconds r.cp_time_s;
        string_of_int r.cp_late;
        string_of_bool r.cp_optimal;
        string_of_int r.milp_vars;
        Report.Table.fmt_seconds r.milp_time_s;
        (match r.milp_late with Some l -> string_of_int l | None -> "-");
        string_of_bool r.milp_optimal;
      ])
    rows

let render rows =
  Report.Table.render
    ~title:
      "Ablation: CP (Table-1 model) vs time-indexed MILP on closed batches \
       ([12]'s comparison)"
    ~headers ~rows:(rows_of rows) ()

let to_csv rows = Report.Table.csv ~headers ~rows:(rows_of rows)
