module T = Mapreduce.Types

type row = {
  jobs : int;
  tasks : int;
  resources : int;
  combined_time_s : float;
  combined_late : int;
  direct_time_s : float;
  direct_late : int option;
  direct_nodes : int;
  direct_optimal : bool;
}

let make_batch ~n ~rng ~task_counter =
  let jobs =
    List.init n (fun id ->
        let fresh kind e =
          incr task_counter;
          {
            T.task_id = !task_counter;
            job_id = id;
            kind;
            exec_time = e;
            capacity_req = 1;
          }
        in
        let maps =
          List.init (2 + Simrand.Rng.int rng 2) (fun _ ->
              fresh T.Map_task (5 + Simrand.Rng.int rng 10))
        in
        let reduces = [ fresh T.Reduce_task (4 + Simrand.Rng.int rng 6) ] in
        let total =
          List.fold_left (fun a (t : T.task) -> a + t.T.exec_time) 0
            (maps @ reduces)
        in
        {
          T.id;
          arrival = 0;
          earliest_start = Simrand.Rng.int rng 10;
          deadline = (total / 2) + 10 + Simrand.Rng.int rng 25;
          map_tasks = Array.of_list maps;
          reduce_tasks = Array.of_list reduces;
        })
  in
  jobs

let run ?(sizes = [ 2; 4; 6; 8 ]) ?(m = 4) ?(direct_budget = 5.) ?(seed = 23)
    () =
  let cluster = T.uniform_cluster ~m ~map_capacity:1 ~reduce_capacity:1 in
  let task_counter = ref 0 in
  List.map
    (fun n ->
      let rng = Simrand.Rng.create (seed + n) in
      let jobs = make_batch ~n ~rng ~task_counter in
      let inst =
        Sched.Instance.of_fresh_jobs ~now:0
          ~map_capacity:(T.total_map_slots cluster)
          ~reduce_capacity:(T.total_reduce_slots cluster)
          jobs
      in
      (* combined pipeline: CP solve on the aggregate + matchmaking *)
      let t0 = Obs.Clock.now () in
      let solution, _ = Cp.Solver.solve inst in
      let mm = Mrcp.Matchmaker.create ~cluster in
      let pending =
        Array.to_list inst.Sched.Instance.jobs
        |> List.concat_map (fun (j : Sched.Instance.pending_job) ->
               Array.to_list j.Sched.Instance.pending_maps
               @ Array.to_list j.Sched.Instance.pending_reduces)
      in
      let _ =
        Mrcp.Matchmaker.assign_all mm
          ~starts:solution.Sched.Solution.starts ~pending
      in
      let combined_time_s = Obs.Clock.now () -. t0 in
      (* direct formulation *)
      let limits =
        {
          Cp.Search.no_limits with
          Cp.Search.wall_deadline =
            Some (Obs.Clock.now () +. direct_budget);
        }
      in
      let direct, dstats = Cp.Direct.solve ~limits ~cluster inst in
      {
        jobs = n;
        tasks = Sched.Instance.pending_task_count inst;
        resources = m;
        combined_time_s;
        combined_late = solution.Sched.Solution.late_jobs;
        direct_time_s = dstats.Cp.Direct.elapsed;
        direct_late =
          Option.map
            (fun (a : Cp.Direct.assignment) ->
              a.Cp.Direct.solution.Sched.Solution.late_jobs)
            direct;
        direct_nodes = dstats.Cp.Direct.nodes;
        direct_optimal = dstats.Cp.Direct.proved_optimal;
      })
    sizes

let headers =
  [
    "jobs"; "tasks"; "m"; "combined time"; "combined late"; "direct time";
    "direct late"; "direct nodes"; "direct opt";
  ]

let rows_of rows =
  List.map
    (fun r ->
      [
        string_of_int r.jobs;
        string_of_int r.tasks;
        string_of_int r.resources;
        Report.Table.fmt_seconds r.combined_time_s;
        string_of_int r.combined_late;
        Report.Table.fmt_seconds r.direct_time_s;
        (match r.direct_late with Some l -> string_of_int l | None -> "-");
        string_of_int r.direct_nodes;
        string_of_bool r.direct_optimal;
      ])
    rows

let render rows =
  Report.Table.render
    ~title:
      "Ablation: §V.D decomposition (combined solve + matchmaking) vs the \
       direct per-resource CP model"
    ~headers ~rows:(rows_of rows) ()

let to_csv rows = Report.Table.csv ~headers ~rows:(rows_of rows)
