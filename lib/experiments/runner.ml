module T = Mapreduce.Types
module Sim = Opensim.Simulator

type manager_kind = Mrcp_rm | Min_edf_wc | Edf_wc | Fcfs_wc | Greedy_only

let manager_to_string = function
  | Mrcp_rm -> "mrcp-rm"
  | Min_edf_wc -> "minedf-wc"
  | Edf_wc -> "edf-wc"
  | Fcfs_wc -> "fcfs-wc"
  | Greedy_only -> "greedy-only"

type config = {
  n_jobs : int;
  reps : int;
  base_seed : int;
  manager : manager_kind;
  ordering : Sched.Greedy.order;
  solver_time_limit : float;
  solver_domains : int;
  deferral_window : int option;
  validate : bool;
  instrument : bool;
  warm_start : bool;
  session : bool;
  kernel : Cp.Propagators.kernel;
  restart : Cp.Restart.policy;
  journal : Obs.Journal.t option;
      (* one journal shared across reps: events of rep i+1 append after rep
         i's (seq keeps growing); use reps = 1 for per-run audit files *)
  metrics_every : int option; (* virtual ms between journal snapshots *)
  chaos : Opensim.Chaos.config option;
      (* fault injection: a plan is materialized per replication from the
         rep's seed, so reps see different (but reproducible) fault traces *)
}

let default_config =
  {
    n_jobs = 200;
    reps = 3;
    base_seed = 42;
    manager = Mrcp_rm;
    ordering = Sched.Greedy.Edf;
    solver_time_limit = 0.2;
    solver_domains = 1;
    deferral_window = Some 300_000;
    validate = false;
    instrument = false;
    warm_start = true;
    session = true;
    kernel = Cp.Propagators.Both;
    restart = Cp.Restart.Off;
    journal = None;
    metrics_every = None;
    chaos = None;
  }

type point = {
  label : string;
  config : config;
  o_s : Simstats.Confidence.interval option;
  t_s : Simstats.Confidence.interval option;
  p_late : float;
  n_late_mean : float;
  o_mean : float;
  t_mean : float;
  solves_mean : float;
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot option;
}

let make_driver config cluster ~seed =
  match config.manager with
  | Mrcp_rm | Greedy_only ->
      let solver =
        {
          Cp.Solver.default_options with
          Cp.Solver.ordering = config.ordering;
          time_limit = config.solver_time_limit;
          seed;
          instrument = config.instrument;
          kernel = config.kernel;
          restart = config.restart;
        }
      in
      let solver =
        if config.manager = Greedy_only then
          { solver with Cp.Solver.exact_task_limit = 0; lns_max_stall = 0;
            time_limit = 0. }
        else solver
      in
      let mconfig =
        {
          Mrcp.Manager.solver;
          domains = config.solver_domains;
          deferral_window = config.deferral_window;
          validate = config.validate;
          warm_start = config.warm_start;
          session = config.session;
          journal = config.journal;
        }
      in
      Opensim.Driver.of_mrcp (Mrcp.Manager.create ~cluster mconfig)
  | Min_edf_wc | Edf_wc | Fcfs_wc ->
      let policy =
        match config.manager with
        | Min_edf_wc -> Baselines.Slot_scheduler.Min_edf_wc
        | Edf_wc -> Baselines.Slot_scheduler.Edf_wc
        | Fcfs_wc | Mrcp_rm | Greedy_only -> Baselines.Slot_scheduler.Fcfs_wc
      in
      Opensim.Driver.of_slot_scheduler
        (Baselines.Slot_scheduler.create ~cluster ~policy)

let summarize ~label ~config ~elapsed results =
  let metric f = Array.of_list (List.map f results) in
  let o = metric (fun r -> r.Sim.overhead_per_job_s) in
  let t = metric (fun r -> r.Sim.avg_turnaround_s) in
  let ci samples =
    if Array.length samples >= 2 then
      Some (Simstats.Confidence.of_samples samples)
    else None
  in
  let mean samples =
    Array.fold_left ( +. ) 0. samples /. float_of_int (Array.length samples)
  in
  let late_total =
    List.fold_left (fun acc r -> acc + r.Sim.n_late) 0 results
  in
  let jobs_total =
    List.fold_left (fun acc r -> acc + r.Sim.jobs_total) 0 results
  in
  {
    label;
    config;
    o_s = ci o;
    t_s = ci t;
    p_late = float_of_int late_total /. float_of_int jobs_total;
    n_late_mean =
      float_of_int late_total /. float_of_int (List.length results);
    o_mean = mean o;
    t_mean = mean t;
    solves_mean =
      mean (metric (fun r -> float_of_int r.Sim.solves));
    elapsed_s = elapsed;
    metrics =
      (match List.filter_map (fun r -> r.Sim.metrics) results with
      | [] -> None
      | snaps -> Some (Obs.Metrics.merge_all snaps));
  }

let replicate ~label ~config ~make_jobs ~cluster =
  let t0 = Obs.Clock.now () in
  let results =
    List.init config.reps (fun i ->
        let seed = config.base_seed + (7919 * i) in
        let jobs = make_jobs ~seed in
        let driver = make_driver config cluster ~seed in
        let chaos =
          match config.chaos with
          | None -> Opensim.Chaos.no_faults
          | Some c -> Opensim.Chaos.materialize c ~cluster ~jobs ~seed:(seed + 61)
        in
        Sim.run ~validate:config.validate ?journal:config.journal
          ?metrics_every:config.metrics_every ~chaos ~driver ~jobs ())
  in
  summarize ~label ~config ~elapsed:(Obs.Clock.now () -. t0) results

let run_synthetic ?label ?(m = 50) ?(map_capacity = 2) ?(reduce_capacity = 2)
    ~params ~config () =
  let cluster = T.uniform_cluster ~m ~map_capacity ~reduce_capacity in
  let params = { params with Mapreduce.Synthetic.n_jobs = config.n_jobs } in
  let label =
    Option.value label
      ~default:
        (Format.asprintf "%s %a" (manager_to_string config.manager)
           Mapreduce.Synthetic.pp_params params)
  in
  let make_jobs ~seed = Mapreduce.Synthetic.generate params ~cluster ~seed in
  replicate ~label ~config ~make_jobs ~cluster

let run_facebook ?label ~params ~config () =
  let cluster = Mapreduce.Facebook.cluster () in
  let params = { params with Mapreduce.Facebook.n_jobs = config.n_jobs } in
  let label =
    Option.value label
      ~default:
        (Printf.sprintf "%s facebook lambda=%g"
           (manager_to_string config.manager)
           params.Mapreduce.Facebook.lambda)
  in
  let make_jobs ~seed = Mapreduce.Facebook.generate params ~cluster ~seed in
  replicate ~label ~config ~make_jobs ~cluster

let point_headers = [ "point"; "O (s/job)"; "T (s)"; "P"; "N/rep"; "wall (s)" ]

let fmt_ci fmt_mean = function
  | Some (ci : Simstats.Confidence.interval) ->
      Printf.sprintf "%s ±%.1f%%" (fmt_mean ci.Simstats.Confidence.mean)
        (100. *. Simstats.Confidence.relative_half_width ci)
  | None -> "n/a"

let point_row p =
  [
    p.label;
    (match p.o_s with
    | Some _ -> fmt_ci Report.Table.fmt_seconds p.o_s
    | None -> Report.Table.fmt_seconds p.o_mean);
    (match p.t_s with
    | Some _ -> fmt_ci (fun x -> Report.Table.fmt_float ~decimals:1 x) p.t_s
    | None -> Report.Table.fmt_float ~decimals:1 p.t_mean);
    Report.Table.fmt_pct p.p_late;
    Report.Table.fmt_float ~decimals:1 p.n_late_mean;
    Report.Table.fmt_float ~decimals:1 p.elapsed_s;
  ]
