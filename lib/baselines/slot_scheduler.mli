(** Slot-based dynamic MapReduce schedulers, including MinEDF-WC — the
    comparator of the paper's Fig. 2/3 (Verma et al. [8]).

    Unlike MRCP-RM, these schedulers do not plan future start times: they
    keep per-resource map/reduce slots and dispatch runnable tasks onto free
    slots whenever a slot frees or a job arrives.  Reduce tasks of a job
    become runnable only after all of its map tasks have completed (the same
    precedence as the CP model).

    Policies:
    - {!Min_edf_wc}: jobs in EDF order; each job is first granted up to its
      {e minimum} slot allocation — the smallest (map, reduce) slot counts
      whose bounds-based completion-time estimate meets the deadline (the
      ARIA-style model: phase time ≈ remaining work / slots + longest task)
      — then leftover slots are distributed work-conservingly in EDF order.
      Because allocations are re-derived at every event, spare slots are
      effectively de-allocated as their tasks finish when a needier job has
      arrived, which is MinEDF-WC's allocate/de-allocate behaviour.
    - {!Edf_wc}: pure EDF, work-conserving (no minimum-allocation cap —
      the earliest-deadline job takes every slot it can use).
    - {!Fcfs_wc}: arrival order, work-conserving.

    All state mutations are driven by {!submit}, {!task_completed} and
    {!dispatches}; the simulator executes the dispatches immediately. *)

type policy = Min_edf_wc | Edf_wc | Fcfs_wc

val policy_to_string : policy -> string

type t

val create : cluster:Mapreduce.Types.resource array -> policy:policy -> t

val submit : t -> now:int -> Mapreduce.Types.job -> unit
(** Job arrival: registers the job; its map tasks become runnable at
    max(s_j, now) — jobs with a future earliest start are held until then
    ({!next_wake}). *)

val task_completed : t -> now:int -> task_id:int -> unit
(** The simulator reports a task completion; its slot returns to the pool,
    and a job whose last map finished unlocks its reduces.
    @raise Invalid_argument for an unknown or not-running task. *)

val task_attempt_failed : t -> now:int -> task_id:int -> unit
(** Chaos: the running attempt aborted.  The slot returns to the pool and
    the task re-enters its job's pending list (to be re-executed in full).
    @raise Invalid_argument for an unknown or not-running task. *)

val resource_lost : t -> now:int -> resource_id:int -> lost:int list -> unit
(** Chaos: the resource crashed.  Its idle slots leave the free pool, and
    each task in [lost] (the attempts killed in flight) re-enters its job's
    pending list without freeing a slot. *)

val resource_rejoined : t -> now:int -> resource_id:int -> unit
(** Chaos: the resource is back; its full slot set rejoins the free pool. *)

val dispatches : t -> now:int -> Sched.Dispatch.t list
(** Decide what to launch right now (all starts = [now]).  Call after any
    {!submit}/{!task_completed}/wake; idempotent (returned tasks are marked
    running immediately). *)

val next_wake : t -> int option
(** Earliest future s_j of a held job, if any. *)

val active_jobs : t -> int
val overhead_seconds : t -> float
val policy : t -> policy
(** Wall-clock time spent making decisions (comparator for the O metric). *)

val min_allocation :
  map_work:int ->
  map_longest:int ->
  map_tasks:int ->
  reduce_work:int ->
  reduce_longest:int ->
  reduce_tasks:int ->
  budget:int ->
  map_slots_max:int ->
  reduce_slots_max:int ->
  (int * int) option
(** The minimum-slot model, exposed for unit tests: smallest (s_m, s_r)
    (minimizing s_m + s_r, then s_m) such that
    [map_work/s_m + map_longest + reduce_work/s_r + reduce_longest <= budget],
    each phase capped by its task count; [None] if even the maximum
    allocation misses the budget. *)
