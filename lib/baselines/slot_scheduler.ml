module T = Mapreduce.Types
module Dispatch = Sched.Dispatch

type policy = Min_edf_wc | Edf_wc | Fcfs_wc

let policy_to_string = function
  | Min_edf_wc -> "minedf-wc"
  | Edf_wc -> "edf-wc"
  | Fcfs_wc -> "fcfs-wc"

type job_state = {
  job : T.job;
  runnable_from : int;
  mutable pending_maps : T.task list; (* longest first *)
  mutable pending_reduces : T.task list;
  mutable running_maps : int;
  mutable running_reduces : int;
  mutable maps_remaining : int; (* pending + running *)
}

type running = {
  r_job : job_state;
  r_task : T.task;
  r_kind : T.task_kind;
  r_slot : int;
  r_resource : int;
}

type slot = { s_id : int; s_resource : int }

type t = {
  policy : policy;
  cluster : T.resource array;
  mutable jobs : job_state list; (* active, unordered *)
  mutable free_map_slots : slot list;
  mutable free_reduce_slots : slot list;
  running : (int, running) Hashtbl.t; (* task_id -> running info *)
  total_map_slots : int;
  total_reduce_slots : int;
  mutable last_now : int;
  mutable overhead : float;
}

let slots_of cluster select =
  let slots = ref [] and next = ref 0 in
  Array.iter
    (fun (r : T.resource) ->
      for _ = 1 to select r do
        slots := { s_id = !next; s_resource = r.T.res_id } :: !slots;
        incr next
      done)
    cluster;
  List.rev !slots

let create ~cluster ~policy =
  let map_slots = slots_of cluster (fun r -> r.T.map_capacity) in
  let reduce_slots = slots_of cluster (fun r -> r.T.reduce_capacity) in
  {
    policy;
    cluster;
    jobs = [];
    free_map_slots = map_slots;
    free_reduce_slots = reduce_slots;
    running = Hashtbl.create 256;
    total_map_slots = List.length map_slots;
    total_reduce_slots = List.length reduce_slots;
    last_now = 0;
    overhead = 0.;
  }

let by_length_desc a b =
  let c = compare b.T.exec_time a.T.exec_time in
  if c <> 0 then c else compare a.T.task_id b.T.task_id

let submit t ~now job =
  let js =
    {
      job;
      runnable_from = max job.T.earliest_start now;
      pending_maps = List.sort by_length_desc (Array.to_list job.T.map_tasks);
      pending_reduces =
        List.sort by_length_desc (Array.to_list job.T.reduce_tasks);
      running_maps = 0;
      running_reduces = 0;
      maps_remaining = Array.length job.T.map_tasks;
    }
  in
  t.jobs <- js :: t.jobs

let task_completed t ~now:_ ~task_id =
  match Hashtbl.find_opt t.running task_id with
  | None ->
      invalid_arg
        (Printf.sprintf "Slot_scheduler.task_completed: task %d not running"
           task_id)
  | Some r ->
      Hashtbl.remove t.running task_id;
      let slot = { s_id = r.r_slot; s_resource = r.r_resource } in
      (match r.r_kind with
      | T.Map_task ->
          t.free_map_slots <- slot :: t.free_map_slots;
          r.r_job.running_maps <- r.r_job.running_maps - 1;
          r.r_job.maps_remaining <- r.r_job.maps_remaining - 1
      | T.Reduce_task ->
          t.free_reduce_slots <- slot :: t.free_reduce_slots;
          r.r_job.running_reduces <- r.r_job.running_reduces - 1);
      (* retire fully-finished jobs *)
      let done_ js =
        js.pending_maps = [] && js.pending_reduces = [] && js.running_maps = 0
        && js.running_reduces = 0
      in
      if done_ r.r_job then t.jobs <- List.filter (fun j -> j != r.r_job) t.jobs

(* Take a running attempt back: the task re-enters its job's pending list
   (kept sorted longest-first) and the running counters shrink.
   [maps_remaining] counts pending + running, so it is unchanged. *)
let requeue t ~task_id ~free_slot =
  match Hashtbl.find_opt t.running task_id with
  | None ->
      invalid_arg
        (Printf.sprintf "Slot_scheduler.requeue: task %d not running" task_id)
  | Some r ->
      Hashtbl.remove t.running task_id;
      let slot = { s_id = r.r_slot; s_resource = r.r_resource } in
      (match r.r_kind with
      | T.Map_task ->
          if free_slot then t.free_map_slots <- slot :: t.free_map_slots;
          r.r_job.running_maps <- r.r_job.running_maps - 1;
          r.r_job.pending_maps <-
            List.merge by_length_desc [ r.r_task ] r.r_job.pending_maps
      | T.Reduce_task ->
          if free_slot then t.free_reduce_slots <- slot :: t.free_reduce_slots;
          r.r_job.running_reduces <- r.r_job.running_reduces - 1;
          r.r_job.pending_reduces <-
            List.merge by_length_desc [ r.r_task ] r.r_job.pending_reduces)

let task_attempt_failed t ~now:_ ~task_id = requeue t ~task_id ~free_slot:true

let resource_lost t ~now:_ ~resource_id ~lost =
  (* the dead resource's idle slots leave the pool; its occupied slots are
     implicitly retired with the killed attempts (not returned to the free
     list), so [resource_rejoined] can restore the full slot set *)
  t.free_map_slots <-
    List.filter (fun s -> s.s_resource <> resource_id) t.free_map_slots;
  t.free_reduce_slots <-
    List.filter (fun s -> s.s_resource <> resource_id) t.free_reduce_slots;
  List.iter (fun task_id -> requeue t ~task_id ~free_slot:false) lost

let resource_rejoined t ~now:_ ~resource_id =
  (* while down, none of the resource's slots were in circulation (idle ones
     were filtered out, occupied ones died with their attempts), so the full
     per-resource slot set — recomputed under the stable global numbering —
     returns to the pool *)
  let mine slots =
    List.filter (fun s -> s.s_resource = resource_id) slots
  in
  let map_slots = mine (slots_of t.cluster (fun r -> r.T.map_capacity)) in
  let reduce_slots = mine (slots_of t.cluster (fun r -> r.T.reduce_capacity)) in
  t.free_map_slots <- map_slots @ t.free_map_slots;
  t.free_reduce_slots <- reduce_slots @ t.free_reduce_slots

(* Bounds-based phase-time estimate with s slots: (W - longest)/s + longest
   (the ARIA-style upper bound). *)
let phase_time ~work ~longest ~slots =
  if work = 0 then 0
  else if slots <= 0 then max_int
  else ((work - longest + slots - 1) / slots) + longest

let min_allocation ~map_work ~map_longest ~map_tasks ~reduce_work
    ~reduce_longest ~reduce_tasks ~budget ~map_slots_max ~reduce_slots_max =
  if budget <= 0 then None
  else begin
    let sm_cap = min map_slots_max (max map_tasks 0) in
    let sr_cap = min reduce_slots_max (max reduce_tasks 0) in
    let best = ref None in
    let consider sm sr =
      match !best with
      | Some (bm, br) when bm + br < sm + sr || (bm + br = sm + sr && bm <= sm)
        -> ()
      | _ -> best := Some (sm, sr)
    in
    let sm_lo = if map_tasks = 0 then 0 else 1 in
    for sm = sm_lo to max sm_lo sm_cap do
      let mt = phase_time ~work:map_work ~longest:map_longest ~slots:sm in
      let mt = if map_tasks = 0 then 0 else mt in
      if mt <= budget then begin
        if reduce_tasks = 0 then consider sm 0
        else begin
          let remaining = budget - mt in
          (* smallest sr with (W_r - longest)/sr + longest <= remaining *)
          if remaining > reduce_longest || (reduce_work = reduce_longest && remaining >= reduce_longest)
          then begin
            let numer = reduce_work - reduce_longest in
            let sr =
              if numer <= 0 then 1
              else begin
                let denom = remaining - reduce_longest in
                if denom <= 0 then max_int else (numer + denom - 1) / denom
              end
            in
            if sr <= sr_cap then consider sm (max 1 sr)
          end
        end
      end
    done;
    !best
  end

let job_order policy a b =
  let key js =
    match policy with
    | Min_edf_wc | Edf_wc -> js.job.T.deadline
    | Fcfs_wc -> js.job.T.arrival
  in
  let c = compare (key a) (key b) in
  if c <> 0 then c else compare a.job.T.id b.job.T.id

let sum_exec tasks = List.fold_left (fun acc t -> acc + t.T.exec_time) 0 tasks
let longest tasks = List.fold_left (fun acc t -> max acc t.T.exec_time) 0 tasks

let dispatches t ~now =
  let t0 = Unix.gettimeofday () in
  t.last_now <- now;
  let out = ref [] in
  let eligible =
    List.filter (fun js -> js.runnable_from <= now) t.jobs
    |> List.sort (job_order t.policy)
  in
  let launch js (task : T.task) =
    let free, set_free =
      match task.T.kind with
      | T.Map_task ->
          (t.free_map_slots, fun l -> t.free_map_slots <- l)
      | T.Reduce_task ->
          (t.free_reduce_slots, fun l -> t.free_reduce_slots <- l)
    in
    match free with
    | [] -> false
    | slot :: rest ->
        set_free rest;
        (match task.T.kind with
        | T.Map_task ->
            js.pending_maps <- List.tl js.pending_maps;
            js.running_maps <- js.running_maps + 1
        | T.Reduce_task ->
            js.pending_reduces <- List.tl js.pending_reduces;
            js.running_reduces <- js.running_reduces + 1);
        Hashtbl.replace t.running task.T.task_id
          {
            r_job = js;
            r_task = task;
            r_kind = task.T.kind;
            r_slot = slot.s_id;
            r_resource = slot.s_resource;
          };
        out :=
          {
            Dispatch.task;
            resource_id = slot.s_resource;
            slot = slot.s_id;
            start = now;
          }
          :: !out;
        true
  in
  (* a job's runnable task list: maps first; reduces only once maps done *)
  let runnable_head js =
    match js.pending_maps with
    | task :: _ -> Some task
    | [] ->
        if js.maps_remaining = 0 then
          match js.pending_reduces with task :: _ -> Some task | [] -> None
        else None
  in
  (* pass 1: minimum guarantees (Min_edf_wc only) *)
  if t.policy = Min_edf_wc then
    List.iter
      (fun js ->
        let budget = js.job.T.deadline - now in
        let demand =
          min_allocation
            ~map_work:(sum_exec js.pending_maps)
            ~map_longest:(longest js.pending_maps)
            ~map_tasks:(List.length js.pending_maps)
            ~reduce_work:(sum_exec js.pending_reduces)
            ~reduce_longest:(longest js.pending_reduces)
            ~reduce_tasks:(List.length js.pending_reduces)
            ~budget ~map_slots_max:t.total_map_slots
            ~reduce_slots_max:t.total_reduce_slots
        in
        match demand with
        | None -> () (* cannot meet the deadline: no guaranteed share *)
        | Some (sm, sr) ->
            let grant target running pick =
              let n = ref (target - running) in
              let continue = ref true in
              while !n > 0 && !continue do
                match pick () with
                | Some task -> if launch js task then decr n else continue := false
                | None -> continue := false
              done
            in
            grant sm js.running_maps (fun () ->
                match js.pending_maps with x :: _ -> Some x | [] -> None);
            if js.maps_remaining = 0 then
              grant sr js.running_reduces (fun () ->
                  match js.pending_reduces with x :: _ -> Some x | [] -> None))
      eligible;
  (* pass 2: work conservation — hand out every remaining usable slot *)
  List.iter
    (fun js ->
      let continue = ref true in
      while !continue do
        match runnable_head js with
        | Some task -> if not (launch js task) then continue := false
        | None -> continue := false
      done)
    eligible;
  t.overhead <- t.overhead +. (Unix.gettimeofday () -. t0);
  List.rev !out

let next_wake t =
  List.fold_left
    (fun acc js ->
      if js.runnable_from > t.last_now then
        match acc with
        | Some w when w <= js.runnable_from -> acc
        | _ -> Some js.runnable_from
      else acc)
    None t.jobs

let active_jobs t = List.length t.jobs
let overhead_seconds t = t.overhead
let policy t = t.policy
