type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
      if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.12g" v)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
