type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest of %.12g/%.17g that round-trips: journal consumers (the audit
   oracle) must recover the exact float the producer measured. *)
let float_repr v =
  let s = Printf.sprintf "%.12g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
      if Float.is_finite v then Buffer.add_string b (float_repr v)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* -- parsing ------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c "unterminated string"
    else
      match c.src.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
          if c.pos + 1 >= String.length c.src then fail c "bad escape";
          (match c.src.[c.pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if c.pos + 5 >= String.length c.src then fail c "bad \\u escape";
              let hex = String.sub c.src (c.pos + 2) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail c "bad \\u escape"
              in
              (* Journal producers only escape control chars; decode the
                 BMP code point as UTF-8 and don't bother with surrogate
                 pairs. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
              else (
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
              c.pos <- c.pos + 4
          | _ -> fail c "bad escape");
          c.pos <- c.pos + 2;
          go ()
      | ch ->
          Buffer.add_char b ch;
          c.pos <- c.pos + 1;
          go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      c.pos <- c.pos + 1;
      String (parse_string_body c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then (
        c.pos <- c.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then (
        c.pos <- c.pos + 1;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
