(** Span-based tracing with a lock-free per-domain sink.

    Disabled by default (the noop state): every probe first reads one atomic
    bool and returns, so instrumented hot paths cost a single load — the
    solver's search trajectory is bit-identical with tracing on or off (only
    wall-clock side channels differ).

    When {!start}ed, each domain lazily allocates its own event buffer
    (domain-local storage), so portfolio workers record spans without any
    shared-memory contention; the buffers are merged at {!write} time, after
    the workers have been joined.

    Output is the Chrome trace event format (one JSON event object per line,
    wrapped in a JSON array), loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.  Complete events ([ph = "X"])
    carry microsecond start + duration; [tid] is the OCaml domain id. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val start : ?limit:int -> unit -> unit
(** Enable tracing and clear previously recorded events.  [limit] caps the
    number of events each domain may record (default [2^20]); events beyond
    the cap are counted and reported as a [dropped] metadata event rather
    than recorded. *)

val stop : unit -> unit
(** Disable tracing.  Recorded events are kept until the next {!start}. *)

val enabled : unit -> bool
(** One atomic load — this is the hot-path guard. *)

val now_us : unit -> float
(** Microseconds since {!start} ({!Clock}-monotonic). *)

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and records a complete event, including
    when [f] raises.  When tracing is disabled it is exactly [f ()]. *)

val complete : ?cat:string -> ?args:(string * arg) list -> ts:float -> string -> unit
(** Manual span end: records a complete event from [ts] (a {!now_us} value
    captured at span start) to now.  For hot paths where argument values are
    only known at span end, or where closure allocation matters. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** Point event ([ph = "i"]), e.g. an incumbent improvement. *)

val counter : ?cat:string -> string -> (string * float) list -> unit
(** Counter event ([ph = "C"]): named series sampled at the current time,
    e.g. the simulator's virtual-clock-vs-wall-clock series. *)

val events_recorded : unit -> int
(** Total events currently buffered across all domains (for tests). *)

val events_dropped : unit -> int
(** Total events discarded over the per-domain cap since {!start}. *)

val dropped_by_domain : unit -> (int * int) list
(** [(tid, dropped)] for every domain that discarded events, sorted by
    domain id; empty when nothing was dropped.  Lets CLI summaries report
    the loss without parsing the trace file. *)

val dump_string : unit -> string
(** Serialize the buffered events (sorted by timestamp) to the Chrome trace
    array format, one event per line. *)

val write : path:string -> unit
(** {!dump_string} to a file. *)
