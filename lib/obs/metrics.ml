type counter = { mutable c : int }
type gauge = { mutable g : float }

type histo = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  occ : int array;  (* occupancy per bucket *)
}

type metric = C of counter | G of gauge | H of histo
type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 32

let n_buckets = 66

(* exponent floor(log2 v) clamped to [-33, 31], shifted to 1..65 *)
let bucket_of v =
  if v <= 0. then 0
  else begin
    let k = int_of_float (Float.floor (Float.log2 v)) in
    let k = if k < -33 then -33 else if k > 31 then 31 else k in
    k + 34
  end

let bucket_lower_bound i =
  if i < 0 || i >= n_buckets then
    invalid_arg "Metrics.bucket_lower_bound: bucket out of range";
  if i = 0 then neg_infinity else Float.pow 2. (float_of_int (i - 34))

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter t name =
  match Hashtbl.find_opt t name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace t name (C c);
      c

let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { g = 0. } in
      Hashtbl.replace t name (G g);
      g

let set_gauge g v = g.g <- v

let histogram t name =
  match Hashtbl.find_opt t name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
      let h =
        {
          count = 0;
          sum = 0.;
          vmin = infinity;
          vmax = neg_infinity;
          occ = Array.make n_buckets 0;
        }
      in
      Hashtbl.replace t name (H h);
      h

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.occ.(b) <- h.occ.(b) + 1

type histo_data = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histos : (string * histo_data) list;
}

let empty = { counters = []; gauges = []; histos = [] }

let snapshot (t : t) =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  Hashtbl.iter
    (fun name -> function
      | C c -> counters := (name, c.c) :: !counters
      | G g -> gauges := (name, g.g) :: !gauges
      | H h ->
          let buckets = ref [] in
          for i = n_buckets - 1 downto 0 do
            if h.occ.(i) > 0 then buckets := (i, h.occ.(i)) :: !buckets
          done;
          histos :=
            ( name,
              {
                count = h.count;
                sum = h.sum;
                vmin = h.vmin;
                vmax = h.vmax;
                buckets = !buckets;
              } )
            :: !histos)
    t;
  let by_name (a, _) (b, _) = compare (a : string) b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histos = List.sort by_name !histos;
  }

(* Union of two sorted assoc lists, [combine] applied on key collision. *)
let rec union combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      if ka < kb then (ka, va) :: union combine ta b
      else if kb < ka then (kb, vb) :: union combine a tb
      else (ka, combine va vb) :: union combine ta tb

let merge_histo (a : histo_data) (b : histo_data) =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax;
    buckets = union ( + ) a.buckets b.buckets;
  }

let merge a b =
  {
    counters = union ( + ) a.counters b.counters;
    gauges = union (fun _ vb -> vb) a.gauges b.gauges;
    histos = union merge_histo a.histos b.histos;
  }

let merge_all = List.fold_left merge empty

let find_counter s name = List.assoc_opt name s.counters
let find_histo s name = List.assoc_opt name s.histos

let quantile (h : histo_data) q =
  if h.count = 0 then Float.nan
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    (* target rank in 1..count *)
    let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
    let r = if r < 1 then 1 else if r > h.count then h.count else r in
    let rec go c0 = function
      | [] -> h.vmax (* unreachable when bucket occupancies sum to count *)
      | (i, n) :: rest ->
          if c0 + n < r then go (c0 + n) rest
          else begin
            (* Bucket range clamped to the observed envelope: rank 1 is
               exactly vmin and rank count exactly vmax, so values sitting
               on bucket boundaries come back exact rather than smeared
               across the bucket. *)
            let lo_raw =
              if i = 0 then Float.min h.vmin 0. else bucket_lower_bound i
            in
            let hi_raw =
              if i = 0 then 0.
              else if i = n_buckets - 1 then h.vmax
              else bucket_lower_bound (i + 1)
            in
            let lo = Float.max lo_raw h.vmin in
            let hi = Float.min hi_raw h.vmax in
            let hi = if hi < lo then lo else hi in
            if r = h.count then hi
            else if n <= 1 then lo
            else
              let pos = float_of_int (r - c0 - 1) /. float_of_int (n - 1) in
              lo +. (pos *. (hi -. lo))
          end
    in
    go 0 h.buckets
  end

let prom_sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Json.to_string (Json.Float v)

let to_prometheus ?(namespace = "mrcp") s =
  let b = Buffer.create 4096 in
  let line name v = Printf.bprintf b "%s %s\n" name v in
  let full k = namespace ^ "_" ^ prom_sanitize k in
  List.iter
    (fun (k, v) ->
      let n = full k ^ "_total" in
      Printf.bprintf b "# TYPE %s counter\n" n;
      line n (string_of_int v))
    s.counters;
  List.iter
    (fun (k, v) ->
      let n = full k in
      Printf.bprintf b "# TYPE %s gauge\n" n;
      line n (prom_float v))
    s.gauges;
  List.iter
    (fun (k, (h : histo_data)) ->
      let n = full k in
      Printf.bprintf b "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      List.iter
        (fun (i, occ) ->
          cum := !cum + occ;
          let le =
            if i >= n_buckets - 1 then infinity else bucket_lower_bound (i + 1)
          in
          if le < infinity then
            Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n (prom_float le)
              !cum)
        h.buckets;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" n h.count;
      line (n ^ "_sum") (prom_float h.sum);
      line (n ^ "_count") (string_of_int h.count))
    s.histos;
  Buffer.contents b

let to_json s =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histo_data)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.count);
                     ("sum", Json.Float h.sum);
                     ("min", Json.Float (if h.count = 0 then 0. else h.vmin));
                     ("max", Json.Float (if h.count = 0 then 0. else h.vmax));
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (i, n) ->
                              Json.Obj
                                [
                                  ("ge", Json.Float (bucket_lower_bound i));
                                  ("n", Json.Int n);
                                ])
                            h.buckets) );
                   ] ))
             s.histos) );
    ]

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-40s %d@," k v)
    s.counters;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-40s %g@," k v)
    s.gauges;
  List.iter
    (fun (k, (h : histo_data)) ->
      if h.count = 0 then Format.fprintf fmt "%-40s n=0@," k
      else
        Format.fprintf fmt "%-40s n=%d sum=%g mean=%g min=%g max=%g@," k
          h.count h.sum
          (h.sum /. float_of_int h.count)
          h.vmin h.vmax)
    s.histos;
  Format.fprintf fmt "@]"
