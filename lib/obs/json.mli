(** Minimal JSON emission for the observability layer (trace files and
    metrics snapshots).  Emission only — parsing lives in whatever consumes
    the files (chrome://tracing, Perfetto, jq, CI scripts). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Backslash-escape quotes, backslashes and control characters. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit
