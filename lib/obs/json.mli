(** Minimal JSON for the observability layer: compact emission (trace
    files, metrics snapshots, the decision journal) plus a small
    recursive-descent parser so in-repo consumers — the journal audit
    tool, tests — can read those files back without external deps. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Backslash-escape quotes, backslashes and control characters. *)

val to_string : t -> string
(** Compact (single-line) rendering.  Finite floats round-trip exactly:
    the shortest of [%.12g]/[%.17g] that parses back to the same float. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document.  Numbers without [.], [e] or overflow become
    [Int]; everything else numeric becomes [Float].  [\u] escapes decode
    as UTF-8 code points (no surrogate-pair handling — the emitter above
    only escapes control characters). *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    non-objects. *)

val to_int_opt : t -> int option
(** [Int], or an integral [Float]. *)

val to_float_opt : t -> float option
(** [Float], or any [Int] widened. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
