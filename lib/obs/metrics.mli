(** Metrics registry: named counters, gauges and log-scale histograms, with
    an immutable snapshot/merge API.

    A registry is a plain single-domain object — it is {e not} thread-safe.
    The intended multi-domain pattern (used by {!Cp.Portfolio}) is
    share-nothing: each domain owns a registry, takes a {!snapshot} when its
    work is done, and the coordinator {!merge}s the snapshots after joining.

    Metric names are flat strings; the repo convention is a [/]-separated
    path whose first segment is the subsystem, e.g. [solver/nodes],
    [prop/cumulative/fires], [manager/invoke_s]. *)

type t
(** A mutable registry. *)

val create : unit -> t

(** {2 Instruments}

    [counter]/[gauge]/[histogram] find-or-create by name; re-registering an
    existing name with a different instrument kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histo

val counter : t -> string -> counter
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit

val histogram : t -> string -> histo

val observe : histo -> float -> unit
(** Record one value into its log-2 bucket (see {!bucket_of}). *)

(** {2 Log-scale bucketing}

    Histograms use base-2 log-scale buckets so that one histogram spans
    nanoseconds to hours.  There are {!n_buckets} = 66 buckets:
    - bucket 0 holds every value [v <= 0];
    - bucket [i] (1 ≤ i ≤ 65) holds [2^(i-34) <= v < 2^(i-33)], i.e. the
      exponent range −33..31 shifted to 1..65;
    - values below [2^-33] land in bucket 1, values ≥ [2^31] in bucket 65
      (the extreme buckets absorb the tails). *)

val n_buckets : int

val bucket_of : float -> int
(** Bucket index of a value (0 ≤ result < {!n_buckets}). *)

val bucket_lower_bound : int -> float
(** Inclusive lower bound of a bucket; [neg_infinity] for bucket 0.
    @raise Invalid_argument outside [0, n_buckets). *)

(** {2 Snapshots} *)

type histo_data = {
  count : int;
  sum : float;
  vmin : float;  (** smallest observed value; [infinity] when [count = 0] *)
  vmax : float;  (** largest observed value; [neg_infinity] when [count = 0] *)
  buckets : (int * int) list;  (** (bucket index, occupancy), occupied only *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histos : (string * histo_data) list;  (** sorted by name *)
}

val empty : snapshot

val snapshot : t -> snapshot
(** Immutable copy of the registry's current state. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: counters add, histograms add bucketwise (count/sum add,
    min/max widen), and for gauges the right operand wins on collision (a
    gauge is a last-observed value, not an accumulator). *)

val merge_all : snapshot list -> snapshot

val find_counter : snapshot -> string -> int option
val find_histo : snapshot -> string -> histo_data option

val quantile : histo_data -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] clamped to [0, 1]) from
    the log-2 buckets by linear rank interpolation inside the bucket
    holding the target rank, with the bucket range clamped to
    [vmin, vmax].  Exact for [q = 0] ([vmin]) and [q = 1] ([vmax]), and
    exact whenever every observation in the target bucket sits on the
    bucket's lower bound; otherwise off by at most the bucket width (a
    factor of 2).  [nan] when [count = 0]. *)

val to_prometheus : ?namespace:string -> snapshot -> string
(** Prometheus text exposition (version 0.0.4).  Names are
    [<namespace>_<metric>] (default namespace ["mrcp"]) with non
    [[a-zA-Z0-9_:]] characters mapped to [_]; counters get a [_total]
    suffix, histograms emit cumulative [_bucket{le="..."}] series over the
    occupied log-2 buckets plus [_sum]/[_count]. *)

val to_json : snapshot -> Json.t

val pp : Format.formatter -> snapshot -> unit
(** Human-readable multi-line listing (used by [--metrics] reports). *)
