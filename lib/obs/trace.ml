type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : char;  (* 'X' complete, 'i' instant, 'C' counter *)
  ts : float;  (* µs since trace start *)
  dur : float;  (* µs; complete events only *)
  args : (string * arg) list;
}

(* Per-domain sink: only its owning domain ever touches [events]/[count], so
   recording is lock-free.  The sink list itself is touched under a mutex,
   but only once per domain (at first access) and at start/dump time, which
   happen on the coordinating domain while no worker is recording. *)
type sink = {
  tid : int;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  mutable dropped : int;
}

let enabled_flag = Atomic.make false
let origin = Atomic.make 0.
let event_limit = Atomic.make (1 lsl 20)
let sinks : sink list ref = ref []
let sinks_mu = Mutex.create ()

let sink_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { tid = (Domain.self () :> int); events = []; count = 0; dropped = 0 }
      in
      Mutex.lock sinks_mu;
      sinks := s :: !sinks;
      Mutex.unlock sinks_mu;
      s)

let enabled () = Atomic.get enabled_flag

let start ?(limit = 1 lsl 20) () =
  Atomic.set enabled_flag false;
  Mutex.lock sinks_mu;
  List.iter
    (fun s ->
      s.events <- [];
      s.count <- 0;
      s.dropped <- 0)
    !sinks;
  Mutex.unlock sinks_mu;
  Atomic.set event_limit limit;
  Atomic.set origin (Clock.now ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

(* Monotonic (Obs.Clock), so span durations survive wall-clock jumps. *)
let now_us () = (Clock.now () -. Atomic.get origin) *. 1e6

let emit ev =
  let s = Domain.DLS.get sink_key in
  if s.count >= Atomic.get event_limit then s.dropped <- s.dropped + 1
  else begin
    s.events <- ev :: s.events;
    s.count <- s.count + 1
  end

let with_span ?(cat = "app") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      emit { name; cat; ph = 'X'; ts = t0; dur = now_us () -. t0; args }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let complete ?(cat = "app") ?(args = []) ~ts name =
  if enabled () then
    emit { name; cat; ph = 'X'; ts; dur = now_us () -. ts; args }

let instant ?(cat = "app") ?(args = []) name =
  if enabled () then
    emit { name; cat; ph = 'i'; ts = now_us (); dur = 0.; args }

let counter ?(cat = "app") name series =
  if enabled () then
    emit
      {
        name;
        cat;
        ph = 'C';
        ts = now_us ();
        dur = 0.;
        args = List.map (fun (k, v) -> (k, Float v)) series;
      }

let collect () =
  Mutex.lock sinks_mu;
  let snap = !sinks in
  Mutex.unlock sinks_mu;
  snap

let events_recorded () =
  List.fold_left (fun acc s -> acc + s.count) 0 (collect ())

let events_dropped () =
  List.fold_left (fun acc s -> acc + s.dropped) 0 (collect ())

let dropped_by_domain () =
  collect ()
  |> List.filter_map (fun s ->
         if s.dropped > 0 then Some (s.tid, s.dropped) else None)
  |> List.sort compare

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let json_of_event tid e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (String.make 1 e.ph));
      ("ts", Json.Float e.ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
    ]
  in
  let base = if e.ph = 'X' then base @ [ ("dur", Json.Float e.dur) ] else base in
  let base = if e.ph = 'i' then base @ [ ("s", Json.String "t") ] else base in
  let base =
    match e.args with
    | [] -> base
    | args ->
        base
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Json.Obj base

let dump_string () =
  let snaps = collect () in
  let all =
    List.concat_map (fun s -> List.rev_map (fun e -> (s.tid, e)) s.events) snaps
  in
  let all =
    List.stable_sort (fun (_, a) (_, b) -> Float.compare a.ts b.ts) all
  in
  let dropped = List.fold_left (fun acc s -> acc + s.dropped) 0 snaps in
  let b = Buffer.create (4096 + (128 * List.length all)) in
  Buffer.add_string b "[\n";
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "mrcp-rm") ]);
      ]
  in
  Json.to_buffer b meta;
  if dropped > 0 then begin
    Buffer.add_string b ",\n";
    Json.to_buffer b
      (Json.Obj
         [
           ("name", Json.String "events_dropped");
           ("ph", Json.String "M");
           ("pid", Json.Int 1);
           ("args", Json.Obj [ ("dropped", Json.Int dropped) ]);
         ])
  end;
  List.iter
    (fun (tid, e) ->
      Buffer.add_string b ",\n";
      Json.to_buffer b (json_of_event tid e))
    all;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_string ()))
