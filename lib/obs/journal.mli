(** The decision journal: an append-only, versioned JSONL log of every
    scheduling decision the manager and the open-system simulator make.

    Each line is one event object with a fixed envelope —
    [{"v":1,"seq":N,"t":T,"ev":KIND, ...payload, "wall":{...}}] — where

    - [v] is the schema {!version} (bumped on incompatible change; readers
      must reject versions they don't know),
    - [seq] is a 0-based line counter (gap-free within one journal),
    - [t] is the simulator's {e virtual} clock in milliseconds,
    - [ev] names the event kind, and
    - [wall], always the {e last} key when present, holds every
      wall-clock-measured field (elapsed seconds, metrics snapshots).

    The envelope split is the determinism contract: everything outside
    [wall] is a pure function of the workload, the seed and the solver
    configuration, so two runs with the same seed produce byte-identical
    journals {e modulo the [wall] sub-objects}.  {!fingerprint} hashes
    exactly that canonical form, and the audit tool reads the [wall]
    fields to recompute wall-clock totals (scheduler overhead [O]).

    A journal is a plain single-domain buffer owned by whoever created it
    (the CLI) and threaded by option into the manager/simulator — when no
    journal is configured, producers skip all event assembly, so the
    journaling-off solver trajectory is bit-identical to a build without
    this module. *)

type t

val version : int
(** Current schema version (written into every line's [v] field).
    v2 added the fault events ("resource-crash", "resource-rejoin",
    "task-attempt-failed", "straggler") and the run-end fault totals
    (crash/rejoin/failure/straggler counters, [lost_work_ms]); v1 readers
    must reject it. *)

val create : unit -> t

val event :
  t ->
  t_ms:int ->
  ?wall:(string * Json.t) list ->
  string ->
  (string * Json.t) list ->
  unit
(** [event j ~t_ms kind payload] appends one line.  [t_ms] is virtual
    time; [wall] fields are wall-clock measurements, kept out of the
    canonical form.  Payload keys must not collide with the envelope
    ([v]/[seq]/[t]/[ev]/[wall]). *)

val events : t -> int
(** Number of lines appended so far (the next line's [seq]). *)

val to_string : t -> string
val write : t -> path:string -> unit

val canonical_line : string -> string
(** One journal line with its trailing [wall] sub-object stripped — the
    deterministic part. *)

val fingerprint : string -> string
(** MD5 hex digest of the canonicalized journal text (each line passed
    through {!canonical_line}).  Equal fingerprints across same-seed runs
    is the replay-determinism acceptance check. *)
