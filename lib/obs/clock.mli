(** Monotonic clock for durations.

    [now ()] is seconds from an arbitrary origin (CLOCK_MONOTONIC), strictly
    unaffected by wall-clock adjustments — use it for measuring elapsed time
    ({!Trace} spans, {!Store.run_metered}-style propagator metering), never
    for timestamps of record.  Thread/domain-safe: it is a single syscall
    with no shared state. *)

val now : unit -> float
