external now : unit -> float = "mrcp_obs_monotonic_seconds"
