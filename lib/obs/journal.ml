let version = 2

type t = { buf : Buffer.t; mutable seq : int }

let create () = { buf = Buffer.create 4096; seq = 0 }
let events t = t.seq

let event t ~t_ms ?(wall = []) ev fields =
  let seq = t.seq in
  t.seq <- seq + 1;
  let base =
    [
      ("v", Json.Int version);
      ("seq", Json.Int seq);
      ("t", Json.Int t_ms);
      ("ev", Json.String ev);
    ]
  in
  (* [wall] MUST stay the final key: canonicalization strips it textually. *)
  let tail = match wall with [] -> [] | w -> [ ("wall", Json.Obj w) ] in
  Json.to_buffer t.buf (Json.Obj (base @ fields @ tail));
  Buffer.add_char t.buf '\n'

let to_string t = Buffer.contents t.buf

let write t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let wall_marker = ",\"wall\":{"

let last_index_of ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i < 0 then None
    else if String.sub s i n = sub then Some i
    else go (i - 1)
  in
  if n > m then None else go (m - n)

let canonical_line line =
  match last_index_of ~sub:wall_marker line with
  | None -> line
  | Some i -> String.sub line 0 i ^ "}"

let fingerprint text =
  let b = Buffer.create (String.length text) in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then begin
           Buffer.add_string b (canonical_line line);
           Buffer.add_char b '\n'
         end);
  Digest.to_hex (Digest.string (Buffer.contents b))
