type stop_reason =
  | Proved
  | Hit_carried_bound
  | Cache_hit
  | Fail_limit
  | Node_limit
  | Wall_limit
  | Lns_stall
  | Interrupted

let stop_reason_to_string = function
  | Proved -> "proved"
  | Hit_carried_bound -> "hit_carried_bound"
  | Cache_hit -> "cache_hit"
  | Fail_limit -> "fail_limit"
  | Node_limit -> "node_limit"
  | Wall_limit -> "wall_limit"
  | Lns_stall -> "lns_stall"
  | Interrupted -> "interrupted"

let all_stop_reasons =
  [
    Proved;
    Hit_carried_bound;
    Cache_hit;
    Fail_limit;
    Node_limit;
    Wall_limit;
    Lns_stall;
    Interrupted;
  ]

type t = {
  seed_late : int;
  lower_bound : int;
  proved_optimal : bool;
  warm_seeded : bool;
  stop_reason : stop_reason;
  nodes : int;
  failures : int;
  restarts : int;
  lns_moves : int;
  elapsed : float;
  metrics : Metrics.snapshot option;
}

let pp fmt s =
  Format.fprintf fmt
    "cp-stats<seed_late=%d lb=%d optimal=%b%s stop=%s nodes=%d fails=%d \
     restarts=%d lns=%d t=%.4fs>"
    s.seed_late s.lower_bound s.proved_optimal
    (if s.warm_seeded then " warm" else "")
    (stop_reason_to_string s.stop_reason)
    s.nodes s.failures s.restarts s.lns_moves s.elapsed

let to_metrics s =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "solver/solves") 1;
  Metrics.add (Metrics.counter m "solver/nodes") s.nodes;
  Metrics.add (Metrics.counter m "solver/failures") s.failures;
  Metrics.add (Metrics.counter m "solver/restarts") s.restarts;
  Metrics.add (Metrics.counter m "solver/lns_moves") s.lns_moves;
  if s.proved_optimal then Metrics.add (Metrics.counter m "solver/proofs") 1;
  if s.warm_seeded then
    Metrics.add (Metrics.counter m "solver/warm_seeded") 1;
  Metrics.add
    (Metrics.counter m
       ("solver/stop/" ^ stop_reason_to_string s.stop_reason))
    1;
  Metrics.observe (Metrics.histogram m "solver/solve_s") s.elapsed;
  let base = Metrics.snapshot m in
  match s.metrics with
  | None -> base
  | Some inner -> Metrics.merge base inner
