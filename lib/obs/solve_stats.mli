(** The canonical solver-telemetry record.

    One solve — whether the MapReduce solver ({!Cp.Solver}), a portfolio
    worker ({!Cp.Portfolio}) or the DAG-workflow solver ({!Workflow.Solve})
    — reports this shape; those modules re-export it (OCaml's
    [type t = Obs.Solve_stats.t = {...}] idiom) rather than each declaring
    its own copy of the node/failure/LNS fields. *)

type stop_reason =
  | Proved  (** search (or a bound match) established optimality outright *)
  | Hit_carried_bound
      (** proved, but only thanks to a session-carried optimality
          certificate raising the classic lower bound ({!Cp.Session}) *)
  | Cache_hit
      (** warm-start plan cache hit: the carried plan already met the
          bound, no search ran *)
  | Fail_limit  (** stopped by [fail_limit] with the incumbent unproved *)
  | Node_limit  (** stopped by [node_limit] *)
  | Wall_limit  (** stopped by the wall-clock deadline *)
  | Lns_stall
      (** large-neighbourhood search gave up after [lns_max_stall]
          non-improving moves *)
  | Interrupted
      (** an external interrupt (portfolio cancellation) cut the solve *)

val stop_reason_to_string : stop_reason -> string
(** Stable snake_case name, used for metrics counters
    ([solver/stop/<name>]) and journal events. *)

val all_stop_reasons : stop_reason list

type t = {
  seed_late : int;  (** late jobs in the starting incumbent *)
  lower_bound : int;  (** provable lower bound on Σ N_j *)
  proved_optimal : bool;
  warm_seeded : bool;
      (** the starting incumbent was the warm-start candidate carried over
          from a previous plan (always [false] without
          {!Cp.Solver.options.warm_start}) *)
  stop_reason : stop_reason;
      (** why the solve returned — the explicit cause, not guesswork
          reconstructed from counters *)
  nodes : int;  (** branch-and-bound nodes explored *)
  failures : int;  (** search failures (dead ends) *)
  restarts : int;  (** restart-policy slice cuts across all searches run *)
  lns_moves : int;  (** large-neighbourhood moves attempted (0: pure B&B) *)
  elapsed : float;  (** wall-clock seconds spent *)
  metrics : Metrics.snapshot option;
      (** per-propagator and solver metrics; [None] unless the solve ran
          with instrumentation enabled *)
}

val pp : Format.formatter -> t -> unit

val to_metrics : t -> Metrics.snapshot
(** The record's scalar fields as a snapshot (counters [solver/*],
    including [solver/stop/<reason>]), merged over [metrics] when present
    — the machine-readable payload. *)
