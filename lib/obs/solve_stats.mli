(** The canonical solver-telemetry record.

    One solve — whether the MapReduce solver ({!Cp.Solver}), a portfolio
    worker ({!Cp.Portfolio}) or the DAG-workflow solver ({!Workflow.Solve})
    — reports this shape; those modules re-export it (OCaml's
    [type t = Obs.Solve_stats.t = {...}] idiom) rather than each declaring
    its own copy of the node/failure/LNS fields. *)

type t = {
  seed_late : int;  (** late jobs in the starting incumbent *)
  lower_bound : int;  (** provable lower bound on Σ N_j *)
  proved_optimal : bool;
  warm_seeded : bool;
      (** the starting incumbent was the warm-start candidate carried over
          from a previous plan (always [false] without
          {!Cp.Solver.options.warm_start}) *)
  nodes : int;  (** branch-and-bound nodes explored *)
  failures : int;  (** search failures (dead ends) *)
  restarts : int;  (** restart-policy slice cuts across all searches run *)
  lns_moves : int;  (** large-neighbourhood moves attempted (0: pure B&B) *)
  elapsed : float;  (** wall-clock seconds spent *)
  metrics : Metrics.snapshot option;
      (** per-propagator and solver metrics; [None] unless the solve ran
          with instrumentation enabled *)
}

val pp : Format.formatter -> t -> unit

val to_metrics : t -> Metrics.snapshot
(** The record's scalar fields as a snapshot (counters [solver/*]), merged
    over [metrics] when present — the machine-readable payload. *)
