/* CLOCK_MONOTONIC as seconds-since-boot (double).  Used by Obs.Clock so
   span timings and propagator metering survive wall-clock jumps (NTP
   slews, suspend/resume).  CLOCK_MONOTONIC is POSIX; both Linux and macOS
   provide it. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value mrcp_obs_monotonic_seconds(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
