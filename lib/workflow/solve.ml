module T = Mapreduce.Types

type instance = {
  map_capacity : int;
  reduce_capacity : int;
  jobs : Dag.t array;
}

type solution = {
  starts : (int, int) Hashtbl.t;
  late_jobs : int;
  total_tardiness : int;
}

let stage_completion starts (s : Dag.stage) =
  Array.fold_left
    (fun acc (t : T.task) ->
      acc |> max (Hashtbl.find starts t.T.task_id + t.T.exec_time))
    0 s.Dag.tasks

let job_completion starts (w : Dag.t) =
  Array.fold_left
    (fun acc s -> max acc (stage_completion starts s))
    w.Dag.earliest_start w.Dag.stages

let evaluate inst starts =
  let late = ref 0 and tardiness = ref 0 in
  Array.iter
    (fun (w : Dag.t) ->
      let over = job_completion starts w - w.Dag.deadline in
      if over > 0 then begin
        incr late;
        tardiness := !tardiness + over
      end)
    inst.jobs;
  { starts; late_jobs = !late; total_tardiness = !tardiness }

let greedy inst =
  let map_profile = Sched.Profile.create ~capacity:inst.map_capacity in
  let reduce_profile = Sched.Profile.create ~capacity:inst.reduce_capacity in
  let profile_of = function
    | T.Map_task -> map_profile
    | T.Reduce_task -> reduce_profile
  in
  let starts = Hashtbl.create 256 in
  let jobs = Array.copy inst.jobs in
  Array.sort (fun (a : Dag.t) b -> compare (a.Dag.deadline, a.Dag.id) (b.Dag.deadline, b.Dag.id)) jobs;
  Array.iter
    (fun (w : Dag.t) ->
      let order = Dag.topological_order w in
      let stage_end = Hashtbl.create 8 in
      Array.iter
        (fun sid ->
          let s = Dag.stage w sid in
          let floor =
            List.fold_left
              (fun acc p -> max acc (Hashtbl.find stage_end p))
              w.Dag.earliest_start (Dag.predecessors w sid)
          in
          let profile = profile_of s.Dag.pool in
          let tasks = Array.copy s.Dag.tasks in
          Array.sort
            (fun (a : T.task) b ->
              compare (b.T.exec_time, a.T.task_id) (a.T.exec_time, b.T.task_id))
            tasks;
          let finish = ref floor in
          Array.iter
            (fun (t : T.task) ->
              let start =
                Sched.Profile.earliest_fit profile ~from:floor
                  ~duration:t.T.exec_time ~amount:t.T.capacity_req
              in
              Sched.Profile.add profile ~start ~duration:t.T.exec_time
                ~amount:t.T.capacity_req;
              Hashtbl.replace starts t.T.task_id start;
              if start + t.T.exec_time > !finish then
                finish := start + t.T.exec_time)
            tasks;
          Hashtbl.replace stage_end sid !finish)
        order)
    jobs;
  evaluate inst starts

let lower_bound inst =
  Array.fold_left
    (fun acc (w : Dag.t) ->
      if w.Dag.earliest_start + Dag.critical_path w > w.Dag.deadline then
        acc + 1
      else acc)
    0 inst.jobs

let feasibility_errors inst sol =
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let map_profile = Sched.Profile.create ~capacity:inst.map_capacity in
  let reduce_profile = Sched.Profile.create ~capacity:inst.reduce_capacity in
  let profile_of = function
    | T.Map_task -> map_profile
    | T.Reduce_task -> reduce_profile
  in
  Array.iter
    (fun (w : Dag.t) ->
      let missing = ref false in
      Dag.all_tasks w
      |> List.iter (fun (t : T.task) ->
             if not (Hashtbl.mem sol.starts t.T.task_id) then begin
               missing := true;
               error "task %d of workflow %d has no start" t.T.task_id w.Dag.id
             end);
      if not !missing then begin
        Array.iter
          (fun (s : Dag.stage) ->
            let preds = Dag.predecessors w s.Dag.stage_id in
            let floor =
              List.fold_left
                (fun acc p -> max acc (stage_completion sol.starts (Dag.stage w p)))
                w.Dag.earliest_start preds
            in
            Array.iter
              (fun (t : T.task) ->
                let start = Hashtbl.find sol.starts t.T.task_id in
                if start < floor then
                  error
                    "task %d (stage %d, workflow %d) starts at %d before \
                     floor %d"
                    t.T.task_id s.Dag.stage_id w.Dag.id start floor;
                let profile = profile_of s.Dag.pool in
                if
                  not
                    (Sched.Profile.fits profile ~start ~duration:t.T.exec_time
                       ~amount:t.T.capacity_req)
                then
                  error "capacity violated by task %d (workflow %d)"
                    t.T.task_id w.Dag.id;
                Sched.Profile.add profile ~start ~duration:t.T.exec_time
                  ~amount:t.T.capacity_req)
              s.Dag.tasks)
          w.Dag.stages
      end)
    inst.jobs;
  let recomputed = evaluate inst sol.starts in
  if recomputed.late_jobs <> sol.late_jobs then
    error "late count %d does not match recomputed %d" sol.late_jobs
      recomputed.late_jobs;
  List.rev !errors

type stats = Obs.Solve_stats.t = {
  seed_late : int;
  lower_bound : int;
  proved_optimal : bool;
  warm_seeded : bool;
  stop_reason : Obs.Solve_stats.stop_reason;
  nodes : int;
  failures : int;
  restarts : int;
  lns_moves : int;
  elapsed : float;
  metrics : Obs.Metrics.snapshot option;
}

(* CP model: the Table-1 formulation with arbitrary stage precedence. *)
let build_problem inst ~bound_init =
  let store = Cp.Store.create () in
  (* big enough for any semi-active schedule: latest release plus the whole
     batch run serially *)
  let max_est, total_work =
    Array.fold_left
      (fun (est, work) (w : Dag.t) ->
        ( max est w.Dag.earliest_start,
          work
          + List.fold_left (fun a (t : T.task) -> a + t.T.exec_time) 0
              (Dag.all_tasks w) ))
      (0, 0) inst.jobs
  in
  let horizon = max_est + total_work + 1 in
  let start_infos = ref [] in
  let task_vars = ref [] in
  let map_terms = ref [] and reduce_terms = ref [] in
  let lates = ref [] in
  Array.iter
    (fun (w : Dag.t) ->
      let est = w.Dag.earliest_start in
      (* stage completion variables, created in topological order so that
         precedence floors propagate through initial bounds *)
      let completions = Hashtbl.create 8 in
      Array.iter
        (fun sid ->
          let s = Dag.stage w sid in
          let completion = Cp.Store.new_var store ~min:est ~max:(2 * horizon) in
          let terms = ref [] in
          Array.iter
            (fun (t : T.task) ->
              let var = Cp.Store.new_var store ~min:est ~max:horizon in
              start_infos :=
                {
                  Cp.Search.svar = var;
                  duration = t.T.exec_time;
                  deadline = w.Dag.deadline;
                }
                :: !start_infos;
              task_vars := (t.T.task_id, var) :: !task_vars;
              (* precedence: after every predecessor stage *)
              List.iter
                (fun p ->
                  Cp.Propagators.ge_offset store var (Hashtbl.find completions p) 0)
                (Dag.predecessors w sid);
              terms := (var, t.T.exec_time) :: !terms;
              let bucket =
                match s.Dag.pool with
                | T.Map_task -> map_terms
                | T.Reduce_task -> reduce_terms
              in
              bucket :=
                { Cp.Propagators.start = var;
                  duration = t.T.exec_time;
                  demand = t.T.capacity_req }
                :: !bucket)
            s.Dag.tasks;
          Cp.Propagators.max_of store ~result:completion ~terms:!terms
            ~floor:est;
          Hashtbl.replace completions sid completion)
        (Dag.topological_order w);
      (* job completion = max over stage completions *)
      let job_completion = Cp.Store.new_var store ~min:est ~max:(2 * horizon) in
      Cp.Propagators.max_of store ~result:job_completion
        ~terms:(Hashtbl.fold (fun _ c acc -> (c, 0) :: acc) completions [])
        ~floor:est;
      let late = Cp.Store.new_var store ~min:0 ~max:1 in
      Cp.Propagators.lateness store ~late ~completion:job_completion
        ~deadline:w.Dag.deadline;
      lates := (late, w.Dag.deadline) :: !lates)
    inst.jobs;
  Cp.Propagators.cumulative store
    ~tasks:(Array.of_list !map_terms)
    ~fixed:[||] ~capacity:inst.map_capacity;
  Cp.Propagators.cumulative store
    ~tasks:(Array.of_list !reduce_terms)
    ~fixed:[||] ~capacity:inst.reduce_capacity;
  let bound = ref bound_init in
  let late_vars = Array.of_list (List.rev_map fst !lates) in
  let bound_pid = Cp.Propagators.sum_lt_bound store ~vars:late_vars ~bound in
  let task_vars = !task_vars in
  {
    Cp.Search.store;
    starts = Array.of_list (List.rev !start_infos);
    lates = Array.of_list (List.rev !lates);
    bound;
    bound_pid;
    extract =
      (fun () ->
        let starts = Hashtbl.create 256 in
        List.iter
          (fun (task_id, var) ->
            Hashtbl.replace starts task_id (Cp.Store.value store var))
          task_vars;
        let sol = evaluate inst starts in
        (sol, sol.late_jobs));
  }

(* Same metric names as Cp.Solver's harvest, so workflow and MapReduce solves
   merge into one propagator table. *)
let harvest store =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter m "store/propagations")
    (Cp.Store.stats_propagations store);
  List.iter
    (fun (pm : Cp.Store.prop_metric) ->
      let pfx = "prop/" ^ pm.Cp.Store.prop_name in
      Obs.Metrics.add (Obs.Metrics.counter m (pfx ^ "/fires")) pm.Cp.Store.fires;
      Obs.Metrics.add (Obs.Metrics.counter m (pfx ^ "/fails")) pm.Cp.Store.fails;
      Obs.Metrics.observe
        (Obs.Metrics.histogram m (pfx ^ "/time_s"))
        pm.Cp.Store.time_s)
    (Cp.Store.propagator_metrics store);
  Obs.Metrics.snapshot m

let solve ?(limits = Cp.Search.no_limits) ?(instrument = false) inst =
  let t0 = Obs.Clock.now () in
  let seed = greedy inst in
  let lb = lower_bound inst in
  if seed.late_jobs <= lb then
    ( seed,
      {
        seed_late = seed.late_jobs;
        lower_bound = lb;
        proved_optimal = true;
        warm_seeded = false;
        stop_reason = Obs.Solve_stats.Proved;
        nodes = 0;
        failures = 0;
        restarts = 0;
        lns_moves = 0;
        elapsed = Obs.Clock.now () -. t0;
        metrics = (if instrument then Some Obs.Metrics.empty else None);
      } )
  else begin
    let problem = build_problem inst ~bound_init:seed.late_jobs in
    if instrument then Cp.Store.set_instrumented problem.Cp.Search.store true;
    let outcome = Cp.Search.run_problem problem limits in
    let best = Option.value outcome.Cp.Search.best ~default:seed in
    ( best,
      {
        seed_late = seed.late_jobs;
        lower_bound = lb;
        proved_optimal = outcome.Cp.Search.proved_optimal;
        warm_seeded = false;
        stop_reason = Cp.Search.stop_reason_of_cause outcome.Cp.Search.stopped;
        nodes = outcome.Cp.Search.nodes;
        failures = outcome.Cp.Search.failures;
        restarts = outcome.Cp.Search.restarts;
        lns_moves = 0;
        elapsed = Obs.Clock.now () -. t0;
        metrics =
          (if instrument then Some (harvest problem.Cp.Search.store) else None);
      } )
  end
