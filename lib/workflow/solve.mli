(** Matchmaking and scheduling for DAG workflows: the Table-1 CP model
    generalized from the fixed map→reduce barrier to arbitrary stage
    precedence, solved with the same machinery (greedy seed, per-job lower
    bound, exact branch-and-bound via {!Cp.Search.run_problem}).

    This is a closed-batch solver (the §VII future-work scenario); the
    open-system manager remains MapReduce-specific. *)

type instance = {
  map_capacity : int;  (** pool capacity for [Map_task]-pool stages *)
  reduce_capacity : int;  (** pool capacity for [Reduce_task]-pool stages *)
  jobs : Dag.t array;
}

type solution = {
  starts : (int, int) Hashtbl.t;  (** task_id → start *)
  late_jobs : int;
  total_tardiness : int;
}

val evaluate : instance -> (int, int) Hashtbl.t -> solution
(** Objective values from a start map (all tasks must be present). *)

val greedy : instance -> solution
(** EDF-ordered serial schedule generation: per job, stages in topological
    order, each stage's tasks placed longest-first at their earliest
    capacity-feasible time after all predecessor stages complete.  Always
    feasible. *)

val lower_bound : instance -> int
(** Jobs late in every schedule: est + critical path already misses d_j. *)

val feasibility_errors : instance -> solution -> string list
(** Constraint oracle: completeness, earliest start times, stage precedence,
    pool capacities, and objective accounting. *)

(** The repo-wide solver-telemetry record ({!Obs.Solve_stats.t}) — the same
    type {!Cp.Solver.stats} re-exports, so workflow and MapReduce solves
    share one stats shape.  [lns_moves] is always 0 here (this solver is
    pure B&B). *)
type stats = Obs.Solve_stats.t = {
  seed_late : int;
  lower_bound : int;
  proved_optimal : bool;
  warm_seeded : bool;  (** always [false]: the DAG solver has no warm start *)
  stop_reason : Obs.Solve_stats.stop_reason;
      (** [Proved] or the limit that cut the search — never the
          cache/session/LNS reasons, which don't exist here *)
  nodes : int;
  failures : int;
  restarts : int;  (** always 0: the DAG solver runs without restarts *)
  lns_moves : int;
  elapsed : float;
  metrics : Obs.Metrics.snapshot option;
}

val solve :
  ?limits:Cp.Search.limits -> ?instrument:bool -> instance -> solution * stats
(** Greedy seed, then exact branch-and-bound when the seed does not meet the
    lower bound.  Never fails; at worst returns the seed.  With
    [~instrument:true], [stats.metrics] carries the per-propagator
    fire/fail/time counters (same names as {!Cp.Solver}'s). *)
