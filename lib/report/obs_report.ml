module M = Obs.Metrics

let prop_names (snap : M.snapshot) =
  List.filter_map
    (fun (name, _) ->
      match String.split_on_char '/' name with
      | [ "prop"; p; "fires" ] -> Some p
      | _ -> None)
    snap.M.counters

let propagator_table (snap : M.snapshot) =
  match prop_names snap with
  | [] -> None
  | names ->
      let rows =
        List.map
          (fun p ->
            let find suffix =
              Option.value (M.find_counter snap ("prop/" ^ p ^ "/" ^ suffix))
                ~default:0
            in
            let fires = find "fires" and fails = find "fails" in
            let time_s =
              match M.find_histo snap ("prop/" ^ p ^ "/time_s") with
              | Some h -> h.M.sum
              | None -> 0.
            in
            let fail_pct =
              if fires = 0 then 0. else float_of_int fails /. float_of_int fires
            in
            let us_per_fire =
              if fires = 0 then 0. else time_s *. 1e6 /. float_of_int fires
            in
            [
              p;
              string_of_int fires;
              string_of_int fails;
              Table.fmt_pct fail_pct;
              Table.fmt_seconds time_s;
              Table.fmt_float ~decimals:2 us_per_fire;
            ])
          names
      in
      Some
        (Table.render ~title:"propagators"
           ~headers:
             [ "propagator"; "fires"; "fails"; "fail%"; "time"; "µs/fire" ]
           ~rows ())

let scalar_table (snap : M.snapshot) =
  let rows =
    List.map (fun (n, v) -> [ n; string_of_int v ]) snap.M.counters
    @ List.map (fun (n, v) -> [ n; Table.fmt_float ~decimals:3 v ]) snap.M.gauges
  in
  if rows = [] then None
  else Some (Table.render ~title:"counters" ~headers:[ "metric"; "value" ] ~rows ())

let histo_table (snap : M.snapshot) =
  match snap.M.histos with
  | [] -> None
  | histos ->
      let rows =
        List.map
          (fun (n, (h : M.histo_data)) ->
            let q v =
              if h.M.count = 0 then "n/a"
              else Table.fmt_seconds (M.quantile h v)
            in
            [
              n;
              string_of_int h.M.count;
              Table.fmt_seconds h.M.sum;
              (if h.M.count = 0 then "n/a" else Table.fmt_seconds h.M.vmin);
              q 0.5;
              q 0.99;
              (if h.M.count = 0 then "n/a" else Table.fmt_seconds h.M.vmax);
            ])
          histos
      in
      Some
        (Table.render ~title:"histograms"
           ~headers:
             [ "histogram"; "count"; "sum"; "min"; "p50"; "p99"; "max" ]
           ~rows ())

(* why did each solve stop: the solver/stop/<reason> counters that
   Obs.Solve_stats.to_metrics accumulates *)
let stop_reason_table (snap : M.snapshot) =
  let prefix = "solver/stop/" in
  let plen = String.length prefix in
  let rows =
    List.filter_map
      (fun (name, v) ->
        if String.length name > plen && String.sub name 0 plen = prefix then
          Some [ String.sub name plen (String.length name - plen);
                 string_of_int v ]
        else None)
      snap.M.counters
  in
  if rows = [] then None
  else
    Some
      (Table.render ~title:"solver stop reasons"
         ~headers:[ "stop reason"; "solves" ]
         ~rows ())

let summary snap =
  [
    scalar_table snap;
    stop_reason_table snap;
    histo_table snap;
    propagator_table snap;
  ]
  |> List.filter_map Fun.id
  |> String.concat "\n"
