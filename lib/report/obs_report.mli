(** Human-readable rendering of {!Obs.Metrics} snapshots — the terminal-side
    counterpart of the Chrome-trace output ([--metrics] vs [--trace]). *)

val propagator_table : Obs.Metrics.snapshot -> string option
(** The per-propagator fire/fail/time table, built from the [prop/<name>/*]
    entries a solve records under [instrument].  [None] when the snapshot
    contains no propagator metrics (e.g. every solve took the greedy fast
    path, which never builds a store). *)

val summary : Obs.Metrics.snapshot -> string
(** The whole snapshot: a counters/gauges table, a histogram table
    (count/sum/min/max), and the propagator table when present. *)
