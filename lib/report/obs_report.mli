(** Human-readable rendering of {!Obs.Metrics} snapshots — the terminal-side
    counterpart of the Chrome-trace output ([--metrics] vs [--trace]). *)

val propagator_table : Obs.Metrics.snapshot -> string option
(** The per-propagator fire/fail/time table, built from the [prop/<name>/*]
    entries a solve records under [instrument].  [None] when the snapshot
    contains no propagator metrics (e.g. every solve took the greedy fast
    path, which never builds a store). *)

val stop_reason_table : Obs.Metrics.snapshot -> string option
(** Solve counts by {!Obs.Solve_stats.stop_reason}, from the
    [solver/stop/<reason>] counters.  [None] when no solves were
    recorded. *)

val summary : Obs.Metrics.snapshot -> string
(** The whole snapshot: a counters/gauges table, the stop-reason table, a
    histogram table (count/sum/min/p50/p99/max — quantiles estimated from
    the log-2 buckets via {!Obs.Metrics.quantile}), and the propagator
    table when present. *)
