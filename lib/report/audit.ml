module J = Obs.Json

type job_audit = {
  job : int;
  est : int;
  deadline : int;
  arrival : int;
  deferred : bool;
  completion : int;
  late : bool;
  first_start : int;
  queue_wait_ms : int;
  exec_ms : int;
  lateness_ms : int;
  solver_overhead_s : float;
  transitions : (int * string * string) list;
}

type check = { name : string; expected : string; actual : string; ok : bool }

type report = {
  events : (int * J.t) list;
  jobs : job_audit list;
  invokes : int;
  cache_hits : int;
  stop_reasons : (string * int) list;
  latencies_s : float array;
  n_late : int;
  total_overhead_s : float;
  crashes : int;
  rejoins : int;
  task_failures : int;
  stragglers : int;
  lost_work_ms : int;
  checks : check list;
}

let mem = J.member
let int_field k j = Option.bind (mem k j) J.to_int_opt
let str_field k j = Option.bind (mem k j) J.to_string_opt
let bool_field k j = Option.bind (mem k j) J.to_bool_opt
let wall_field k j = Option.bind (mem "wall" j) (fun w -> mem k w)

let req what line = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "line %d: missing %s" line what)

(* mutable accumulator per job while folding over the event stream *)
type job_acc = {
  mutable a_est : int;
  mutable a_deadline : int;
  mutable a_arrival : int;
  mutable a_deferred : bool;
  mutable a_done : (int * bool * int * int * int * int * float) option;
  mutable a_transitions : (int * string * string) list;
}

let parse_lines text =
  let lines = String.split_on_char '\n' text in
  let events = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match J.of_string line with
        | Ok j -> events := (i + 1, j) :: !events
        | Error e -> failwith (Printf.sprintf "line %d: %s" (i + 1) e))
    lines;
  List.rev !events

let of_string text =
  try
    let events = parse_lines text in
    if events = [] then failwith "empty journal";
    let jobs = Hashtbl.create 64 in
    let job_acc line j =
      let id = req "job" line (int_field "job" j) in
      match Hashtbl.find_opt jobs id with
      | Some a -> a
      | None ->
          let a =
            {
              a_est = 0;
              a_deadline = 0;
              a_arrival = 0;
              a_deferred = false;
              a_done = None;
              a_transitions = [];
            }
          in
          Hashtbl.replace jobs id a;
          a
    in
    let invokes = ref 0 and cache_hits = ref 0 in
    let stop_reasons = Hashtbl.create 8 in
    let latencies = ref [] in
    let total_overhead = ref 0. in
    let run_end = ref None in
    let crashes = ref 0 and rejoins = ref 0 in
    let task_failures = ref 0 and stragglers = ref 0 in
    let lost_work = ref 0 in
    List.iter
      (fun (line, j) ->
        (match int_field "v" j with
        | Some (1 | 2) -> ()
        | Some v ->
            failwith (Printf.sprintf "line %d: unsupported version %d" line v)
        | None -> failwith (Printf.sprintf "line %d: missing version" line));
        match req "ev" line (str_field "ev" j) with
        | "arrival" ->
            let a = job_acc line j in
            a.a_est <- req "est" line (int_field "est" j);
            a.a_deadline <- req "deadline" line (int_field "deadline" j);
            a.a_arrival <- req "t" line (int_field "t" j)
        | "submit" ->
            let a = job_acc line j in
            if str_field "action" j = Some "defer" then a.a_deferred <- true
        | "invoke" ->
            incr invokes;
            if bool_field "cache_hit" j = Some true then incr cache_hits;
            (match
               Option.bind (mem "solve" j) (fun s -> str_field "stop_reason" s)
             with
            | Some r ->
                Hashtbl.replace stop_reasons r
                  (1 + Option.value (Hashtbl.find_opt stop_reasons r) ~default:0)
            | None -> ());
            (* Σ in seq order: bitwise-reproduces the manager's own
               accumulation of total overhead *)
            let e = req "wall.elapsed_s" line (wall_field "elapsed_s" j) in
            let e = req "wall.elapsed_s" line (J.to_float_opt e) in
            total_overhead := !total_overhead +. e;
            latencies := e :: !latencies
        | "job-done" ->
            let a = job_acc line j in
            a.a_done <-
              Some
                ( req "completion" line (int_field "completion" j),
                  req "late" line (bool_field "late" j),
                  req "first_start" line (int_field "first_start" j),
                  req "queue_wait_ms" line (int_field "queue_wait_ms" j),
                  req "exec_ms" line (int_field "exec_ms" j),
                  req "lateness_ms" line (int_field "lateness_ms" j),
                  Option.value ~default:0.
                    (Option.bind (wall_field "solver_overhead_s" j)
                       J.to_float_opt) )
        | "sla" ->
            let a = job_acc line j in
            let to_ = req "to" line (str_field "to" j) in
            let from = Option.value (str_field "from" j) ~default:"" in
            let t = req "t" line (int_field "t" j) in
            a.a_transitions <- (t, from, to_) :: a.a_transitions
        | "resource-crash" ->
            incr crashes;
            lost_work := !lost_work + req "lost_ms" line (int_field "lost_ms" j)
        | "resource-rejoin" -> incr rejoins
        | "task-attempt-failed" ->
            incr task_failures;
            lost_work :=
              !lost_work + req "wasted_ms" line (int_field "wasted_ms" j)
        | "straggler" ->
            incr stragglers;
            (* sanity: the inflated duration must strictly exceed nominal *)
            let nominal = req "exec_ms" line (int_field "exec_ms" j) in
            let inflated = req "inflated_ms" line (int_field "inflated_ms" j) in
            if inflated <= nominal then
              failwith
                (Printf.sprintf "line %d: straggler inflated_ms %d <= exec_ms %d"
                   line inflated nominal)
        | "run-end" -> run_end := Some (line, j)
        | "snapshot" -> ()
        | _ -> () (* forward compatibility: ignore unknown events *))
      events;
    let job_list =
      Hashtbl.fold
        (fun id a acc ->
          match a.a_done with
          | None -> acc (* job never completed: truncated journal *)
          | Some (completion, late, first_start, qw, ex, lt, ov) ->
              {
                job = id;
                est = a.a_est;
                deadline = a.a_deadline;
                arrival = a.a_arrival;
                deferred = a.a_deferred;
                completion;
                late;
                first_start;
                queue_wait_ms = qw;
                exec_ms = ex;
                lateness_ms = lt;
                solver_overhead_s = ov;
                transitions = List.rev a.a_transitions;
              }
              :: acc)
        jobs []
      |> List.sort (fun a b -> compare a.job b.job)
    in
    let n_late = List.length (List.filter (fun j -> j.late) job_list) in
    let checks =
      match !run_end with
      | None ->
          [
            {
              name = "run-end present";
              expected = "1";
              actual = "0";
              ok = false;
            };
          ]
      | Some (line, re) ->
          let ic name expected actual =
            {
              name;
              expected = string_of_int expected;
              actual = string_of_int actual;
              ok = expected = actual;
            }
          in
          let jobs_total = req "jobs_total" line (int_field "jobs_total" re) in
          let o_per_job = !total_overhead /. float_of_int jobs_total in
          let fc name expected actual =
            (* exact equality on purpose: journal floats round-trip, and the
               recomputation replays the very same additions in the same
               order, so any difference is a real bookkeeping bug *)
            {
              name;
              expected = Printf.sprintf "%.17g" expected;
              actual = Printf.sprintf "%.17g" actual;
              ok = Float.equal expected actual;
            }
          in
          [
            ic "jobs_total (run-end = completed jobs seen)" jobs_total
              (List.length job_list);
            ic "n_late (run-end = recomputed Σ N_j)"
              (req "n_late" line (int_field "n_late" re))
              n_late;
            ic "solves (run-end = invoke events)"
              (req "solves" line (int_field "solves" re))
              !invokes;
            ic "makespan_ms (run-end = max completion)"
              (req "makespan_ms" line (int_field "makespan_ms" re))
              (List.fold_left (fun m j -> max m j.completion) 0 job_list);
            fc "total_overhead_s (run-end = Σ invoke elapsed)"
              (req "wall.total_overhead_s" line
                 (Option.bind
                    (wall_field "total_overhead_s" re)
                    J.to_float_opt))
              !total_overhead;
            fc "o_per_job_s (run-end = Σ elapsed / jobs)"
              (req "wall.o_per_job_s" line
                 (Option.bind (wall_field "o_per_job_s" re) J.to_float_opt))
              o_per_job;
          ]
          @
          (* v2 fault totals: present on every v2 run-end line; absent from
             archived v1 journals, whose fault counters are necessarily 0 *)
          (match int_field "crashes" re with
          | None ->
              if !crashes + !rejoins + !task_failures + !stragglers > 0 then
                [
                  {
                    name = "fault events require v2 run-end totals";
                    expected = "crashes field present";
                    actual = "absent";
                    ok = false;
                  };
                ]
              else []
          | Some c ->
              [
                ic "crashes (run-end = resource-crash events)" c !crashes;
                ic "rejoins (run-end = resource-rejoin events)"
                  (req "rejoins" line (int_field "rejoins" re))
                  !rejoins;
                ic "task_failures (run-end = task-attempt-failed events)"
                  (req "task_failures" line (int_field "task_failures" re))
                  !task_failures;
                ic "stragglers (run-end = straggler events)"
                  (req "stragglers" line (int_field "stragglers" re))
                  !stragglers;
                ic "lost_work_ms (run-end = Σ lost_ms + wasted_ms)"
                  (req "lost_work_ms" line (int_field "lost_work_ms" re))
                  !lost_work;
              ])
    in
    Ok
      {
        events;
        jobs = job_list;
        invokes = !invokes;
        cache_hits = !cache_hits;
        stop_reasons =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) stop_reasons []
          |> List.sort compare;
        latencies_s = Array.of_list (List.rev !latencies);
        n_late;
        total_overhead_s = !total_overhead;
        crashes = !crashes;
        rejoins = !rejoins;
        task_failures = !task_failures;
        stragglers = !stragglers;
        lost_work_ms = !lost_work;
        checks;
      }
  with Failure msg -> Error msg

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let checks_ok r = List.for_all (fun c -> c.ok) r.checks

(* exact empirical quantile (nearest-rank, the same ceil(q·n) convention as
   Obs.Metrics.quantile) over the full latency sample *)
let latency_quantile r q =
  let n = Array.length r.latencies_s in
  if n = 0 then nan
  else begin
    let sorted = Array.copy r.latencies_s in
    Array.sort compare sorted;
    let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
    sorted.(rank - 1)
  end

let render r =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf
       "journal: %d events, %d jobs completed, %d invocations (%d plan-cache \
        hits)\n"
       (List.length r.events) (List.length r.jobs) r.invokes r.cache_hits);
  if r.crashes + r.rejoins + r.task_failures + r.stragglers > 0 then
    add
      (Printf.sprintf
         "chaos: %d crashes (%d rejoins), %d failed attempts, %d stragglers, \
          %.1fs of slot-time lost\n"
         r.crashes r.rejoins r.task_failures r.stragglers
         (float_of_int r.lost_work_ms /. 1000.));
  add
    (Printf.sprintf
       "decision latency: p50 %ss, p99 %ss, max %ss over %d invocations\n\n"
       (Table.fmt_float ~decimals:4 (latency_quantile r 0.5))
       (Table.fmt_float ~decimals:4 (latency_quantile r 0.99))
       (Table.fmt_float ~decimals:4 (latency_quantile r 1.0))
       (Array.length r.latencies_s));
  if r.stop_reasons <> [] then
    add
      (Table.render ~title:"solver stop reasons"
         ~headers:[ "stop reason"; "solves" ]
         ~rows:
           (List.map
              (fun (k, v) -> [ k; string_of_int v ])
              r.stop_reasons)
         ());
  add
    (Table.render ~title:"per-job outcome"
       ~headers:
         [
           "job";
           "est";
           "deadline";
           "completion";
           "late";
           "queue wait (s)";
           "exec (s)";
           "solver (s)";
           "sla flips";
         ]
       ~rows:
         (List.map
            (fun j ->
              [
                string_of_int j.job;
                string_of_int j.est;
                string_of_int j.deadline;
                string_of_int j.completion;
                (if j.late then "LATE" else "ok");
                Table.fmt_float ~decimals:1
                  (float_of_int j.queue_wait_ms /. 1000.);
                Table.fmt_float ~decimals:1 (float_of_int j.exec_ms /. 1000.);
                Table.fmt_float ~decimals:3 j.solver_overhead_s;
                string_of_int (List.length j.transitions);
              ])
            r.jobs)
       ());
  let late = List.filter (fun j -> j.late) r.jobs in
  if late <> [] then
    add
      (Table.render ~title:"lateness attribution (late jobs)"
         ~headers:
           [
             "job";
             "lateness (s)";
             "queue wait (s)";
             "exec (s)";
             "solver (s)";
             "dominant";
           ]
         ~rows:
           (List.map
              (fun j ->
                let qw = float_of_int j.queue_wait_ms /. 1000. in
                let ex = float_of_int j.exec_ms /. 1000. in
                let dominant =
                  (* solver overhead is wall seconds of real compute, not
                     virtual time; it dominates only when it exceeds the
                     whole virtual lateness *)
                  if j.solver_overhead_s > float_of_int j.lateness_ms /. 1000.
                  then "solver overhead"
                  else if qw >= ex then "queue wait"
                  else "execution"
                in
                [
                  string_of_int j.job;
                  Table.fmt_float ~decimals:1
                    (float_of_int j.lateness_ms /. 1000.);
                  Table.fmt_float ~decimals:1 qw;
                  Table.fmt_float ~decimals:1 ex;
                  Table.fmt_float ~decimals:3 j.solver_overhead_s;
                  dominant;
                ])
              late)
         ());
  add
    (Table.render ~title:"cross-checks (journal vs recomputed)"
       ~headers:[ "check"; "journal"; "recomputed"; "ok" ]
       ~rows:
         (List.map
            (fun c ->
              [ c.name; c.expected; c.actual; (if c.ok then "ok" else "FAIL") ])
            r.checks)
       ());
  Buffer.contents buf

let render_timeline r job_id =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add (Printf.sprintf "timeline for job %d:\n" job_id);
  List.iter
    (fun (_, j) ->
      let mentions =
        match int_field "job" j with
        | Some id -> id = job_id
        | None -> (
            (* invoke events list arrivals instead of a single job field *)
            match mem "arrived" j with
            | Some (J.List l) ->
                List.exists (fun v -> J.to_int_opt v = Some job_id) l
            | _ -> false)
      in
      if mentions then
        match (int_field "t" j, str_field "ev" j) with
        | Some t, Some ev ->
            add (Printf.sprintf "  %10dms  %-8s  %s\n" t ev (J.to_string j))
        | _ -> ())
    r.events;
  Buffer.contents buf
