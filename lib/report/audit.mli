(** Decision-journal audit: parse an {!Obs.Journal} JSONL file back and
    explain a run from its journal alone — per-job timelines, lateness
    attribution (queue wait vs execution vs solver overhead), exact
    decision-latency quantiles, and an independent recomputation of the
    run's headline totals (Σ N_j, O) cross-checked against the journal's
    own "run-end" line.

    The cross-checks are a correctness oracle over the whole
    journal-emission pipeline: the totals are recomputed from the per-job
    and per-invocation lines only, replaying the manager's float additions
    in sequence order, so they must match the simulator's figures {e
    exactly} (integer equality for counts, bitwise [Float.equal] for the
    overhead sums — journal floats round-trip). *)

type job_audit = {
  job : int;
  est : int;
  deadline : int;
  arrival : int;  (** virtual arrival time (from the "arrival" event) *)
  deferred : bool;  (** was parked by the §V.E deferral rule on submit *)
  completion : int;
  late : bool;
  first_start : int;  (** first task start; [completion] if never started *)
  queue_wait_ms : int;  (** first_start − s_j *)
  exec_ms : int;  (** completion − first_start *)
  lateness_ms : int;  (** max 0 (completion − d_j) *)
  solver_overhead_s : float;
      (** wall-clock solver+matchmaking seconds attributed to the job *)
  transitions : (int * string * string) list;
      (** SLA state changes: (virtual time, from, to); includes the final
          ("", late/met) verdict with [from = ""] *)
}

type check = { name : string; expected : string; actual : string; ok : bool }

type report = {
  events : (int * Obs.Json.t) list;  (** (line number, parsed event) *)
  jobs : job_audit list;  (** completed jobs, sorted by id *)
  invokes : int;
  cache_hits : int;
  stop_reasons : (string * int) list;  (** stop reason → solve count *)
  latencies_s : float array;  (** invoke elapsed, journal order *)
  n_late : int;  (** recomputed Σ N_j *)
  total_overhead_s : float;  (** recomputed Σ invoke elapsed *)
  crashes : int;  (** counted "resource-crash" events (v2 journals) *)
  rejoins : int;
  task_failures : int;
  stragglers : int;
  lost_work_ms : int;
      (** recomputed Σ crash [lost_ms] + attempt-failure [wasted_ms],
          cross-checked against the run-end total *)
  checks : check list;
}

val of_string : string -> (report, string) result
(** Parse journal text (one JSON event per line).  [Error] on malformed
    JSON, an unsupported journal version, or events missing required
    fields — always with the offending line number. *)

val of_file : string -> (report, string) result

val checks_ok : report -> bool
(** All cross-checks passed. *)

val latency_quantile : report -> float -> float
(** Exact empirical quantile (nearest rank, ceil(q·n) — the convention
    {!Obs.Metrics.quantile} approximates) of per-invocation decision
    latency in seconds; [nan] when no invocations were journaled. *)

val render : report -> string
(** Summary, stop-reason table, per-job outcomes, lateness attribution for
    late jobs, and the cross-check table. *)

val render_timeline : report -> int -> string
(** Every journal event touching one job, in order, with raw payloads. *)
