module T = Mapreduce.Types
module Dispatch = Sched.Dispatch
module Engine = Desim.Engine

type job_outcome = {
  job : T.job;
  completion : int;
  late : bool;
  turnaround_ms : int;
}

type results = {
  manager : string;
  outcomes : job_outcome list;
  jobs_total : int;
  n_late : int;
  p_late : float;
  avg_turnaround_s : float;
  avg_turnaround_from_arrival_s : float;
  overhead_per_job_s : float;
  total_overhead_s : float;
  solves : int;
  max_invocation_s : float;
  makespan_ms : int;
  map_busy_ms : int;  (* Σ slot-occupancy over map attempts, incl. lost work *)
  reduce_busy_ms : int;
  map_utilization : float option;
  reduce_utilization : float option;
  events_executed : int;
  metrics : Obs.Metrics.snapshot option;
  crashes : int;
  rejoins : int;
  task_failures : int;
  stragglers : int;
  lost_work_ms : int;
}

type job_progress = {
  j : T.job;
  mutable tasks_done : int;
  mutable maps_done : int;
  task_count : int;
  map_count : int;
}

(* A started attempt: the dispatch as executed (a straggler's inflated
   execution time replaces the nominal one) plus the handle of its pending
   completion/failure event, so a crash can cancel it. *)
type attempt = { r_d : Dispatch.t; r_done : Engine.handle }

type state = {
  driver : Driver.t;
  validate : bool;
  journal : Obs.Journal.t option;
  engine : Engine.t;
  progress : (int, job_progress) Hashtbl.t; (* job_id -> progress *)
  planned : (int, Engine.handle * Dispatch.t) Hashtbl.t; (* unstarted *)
  started : (int, attempt) Hashtbl.t;
  completed : (int, unit) Hashtbl.t;
  first_start : (int, int) Hashtbl.t; (* job_id -> first task start time *)
  slot_busy_until : (T.task_kind * int, int * int) Hashtbl.t;
      (* (kind, slot) -> (occupant task, busy until) *)
  (* chaos: per-(task, attempt) fault lookups materialized from the plan,
     the next attempt index per task, and the resources currently down *)
  chaos_fail : (int * int, int) Hashtbl.t; (* -> frac_1000 *)
  chaos_straggle : (int * int, int) Hashtbl.t; (* -> factor_1000 *)
  attempts : (int, int) Hashtbl.t;
  down : (int, unit) Hashtbl.t;
  mutable wake : (int * Engine.handle) option;
  mutable outcomes : job_outcome list;
  mutable map_busy_ms : int;
  mutable reduce_busy_ms : int;
  mutable crashes : int;
  mutable rejoins : int;
  mutable task_failures : int;
  mutable stragglers : int;
  mutable lost_work_ms : int;
  mutable last_fault_t : int;
}

let fail fmt = Format.kasprintf failwith fmt

let record_busy st (task : T.task) ms =
  match task.T.kind with
  | T.Map_task -> st.map_busy_ms <- st.map_busy_ms + ms
  | T.Reduce_task -> st.reduce_busy_ms <- st.reduce_busy_ms + ms

let record_first_start st (task : T.task) now =
  if not (Hashtbl.mem st.first_start task.T.job_id) then
    Hashtbl.replace st.first_start task.T.job_id now

(* Terminal journal lines for one completed job: "job-done" with the
   lateness split into queue wait (first task start − s_j), execution
   (first start → completion) and — under the wall key, because it is
   measured in wall-clock seconds — the solver/matchmaking overhead the
   manager attributed to the job; then the job's final SLA verdict. *)
let journal_job_done st (outcome : job_outcome) =
  match st.journal with
  | None -> ()
  | Some jr ->
      let j = outcome.job in
      let first_start =
        Option.value
          (Hashtbl.find_opt st.first_start j.T.id)
          ~default:outcome.completion
      in
      Obs.Journal.event jr ~t_ms:outcome.completion "job-done"
        ~wall:
          [
            ( "solver_overhead_s",
              Obs.Json.Float (st.driver.Driver.job_overhead_seconds j.T.id) );
          ]
        [
          ("job", Obs.Json.Int j.T.id);
          ("arrival", Obs.Json.Int j.T.arrival);
          ("est", Obs.Json.Int j.T.earliest_start);
          ("deadline", Obs.Json.Int j.T.deadline);
          ("completion", Obs.Json.Int outcome.completion);
          ("late", Obs.Json.Bool outcome.late);
          ("first_start", Obs.Json.Int first_start);
          ("queue_wait_ms", Obs.Json.Int (first_start - j.T.earliest_start));
          ("exec_ms", Obs.Json.Int (outcome.completion - first_start));
          ( "lateness_ms",
            Obs.Json.Int (max 0 (outcome.completion - j.T.deadline)) );
        ];
      Obs.Journal.event jr ~t_ms:outcome.completion "sla"
        [
          ("job", Obs.Json.Int j.T.id);
          ("to", Obs.Json.String (if outcome.late then "late" else "met"));
          ("final", Obs.Json.Bool true);
        ]

let check_start st (d : Dispatch.t) now =
  let task = d.Dispatch.task in
  if Hashtbl.mem st.started task.T.task_id then
    fail "task %d started twice" task.T.task_id;
  if Hashtbl.mem st.down d.Dispatch.resource_id then
    fail "task %d dispatched to crashed resource %d" task.T.task_id
      d.Dispatch.resource_id;
  let jp =
    match Hashtbl.find_opt st.progress task.T.job_id with
    | Some jp -> jp
    | None -> fail "task %d belongs to unknown job %d" task.T.task_id task.T.job_id
  in
  if now < jp.j.T.earliest_start then
    fail "task %d of job %d started at %d before s_j=%d" task.T.task_id
      task.T.job_id now jp.j.T.earliest_start;
  (match task.T.kind with
  | T.Reduce_task ->
      if jp.maps_done < jp.map_count then
        fail "reduce task %d of job %d started with %d/%d maps done"
          task.T.task_id task.T.job_id jp.maps_done jp.map_count
  | T.Map_task -> ());
  let key = (task.T.kind, d.Dispatch.slot) in
  (match Hashtbl.find_opt st.slot_busy_until key with
  | Some (other, until) when until > now ->
      fail "%s slot %d double-booked at %d: task %d overlaps task %d"
        (T.task_kind_to_string task.T.kind)
        d.Dispatch.slot now task.T.task_id other
  | Some _ | None -> ());
  Hashtbl.replace st.slot_busy_until key
    (task.T.task_id, now + task.T.exec_time)

let rec on_task_complete st (d : Dispatch.t) sim =
  let now = Engine.now sim in
  let task = d.Dispatch.task in
  if st.validate then begin
    if Hashtbl.mem st.completed task.T.task_id then
      fail "task %d completed twice" task.T.task_id
  end;
  Hashtbl.replace st.completed task.T.task_id ();
  record_busy st task task.T.exec_time;
  let jp = Hashtbl.find st.progress task.T.job_id in
  jp.tasks_done <- jp.tasks_done + 1;
  if task.T.kind = T.Map_task then jp.maps_done <- jp.maps_done + 1;
  if jp.tasks_done = jp.task_count then begin
    let outcome =
      {
        job = jp.j;
        completion = now;
        late = now > jp.j.T.deadline;
        turnaround_ms = now - jp.j.T.earliest_start;
      }
    in
    st.outcomes <- outcome :: st.outcomes;
    journal_job_done st outcome;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"sim" "job-done"
        ~args:
          [
            ("job", Obs.Trace.Int jp.j.T.id);
            ("late", Obs.Trace.Bool outcome.late);
            ("completion_ms", Obs.Trace.Int now);
          ]
  end;
  st.driver.Driver.task_completed ~now ~task_id:task.T.task_id;
  react st sim

(* A chaos-injected attempt failure: the slot frees, the wasted work is
   accounted as lost, and the manager is told to re-enter the task. *)
and on_attempt_fail st (d : Dispatch.t) ~attempt ~wasted sim =
  let now = Engine.now sim in
  let task = d.Dispatch.task in
  Hashtbl.remove st.started task.T.task_id;
  Hashtbl.replace st.slot_busy_until (task.T.kind, d.Dispatch.slot)
    (task.T.task_id, now);
  record_busy st task wasted;
  st.lost_work_ms <- st.lost_work_ms + wasted;
  st.task_failures <- st.task_failures + 1;
  st.last_fault_t <- now;
  (match st.journal with
  | None -> ()
  | Some jr ->
      Obs.Journal.event jr ~t_ms:now "task-attempt-failed"
        [
          ("task", Obs.Json.Int task.T.task_id);
          ("job", Obs.Json.Int task.T.job_id);
          ("attempt", Obs.Json.Int attempt);
          ("wasted_ms", Obs.Json.Int wasted);
        ]);
  st.driver.Driver.task_attempt_failed ~now ~task_id:task.T.task_id;
  react st sim

(* Start one attempt of a task.  Chaos faults are looked up by (task,
   attempt): a straggler inflates the executed duration (the manager is
   notified so its frozen record matches reality), an injected failure
   replaces the completion event with a failure event part-way through. *)
and start_attempt st (d : Dispatch.t) sim =
  let now = Engine.now sim in
  let task = d.Dispatch.task in
  let attempt =
    Option.value (Hashtbl.find_opt st.attempts task.T.task_id) ~default:0
  in
  Hashtbl.replace st.attempts task.T.task_id (attempt + 1);
  let key = (task.T.task_id, attempt) in
  let straggle = Hashtbl.find_opt st.chaos_straggle key in
  let actual =
    match straggle with
    | Some factor_1000 ->
        max (task.T.exec_time + 1)
          (((task.T.exec_time * factor_1000) + 999) / 1000)
    | None -> task.T.exec_time
  in
  let d =
    if actual = task.T.exec_time then d
    else { d with Dispatch.task = { task with T.exec_time = actual } }
  in
  if st.validate then check_start st d now;
  record_first_start st d.Dispatch.task now;
  let handle =
    match Hashtbl.find_opt st.chaos_fail key with
    | Some frac_1000 ->
        let wasted = min actual (max 1 (actual * frac_1000 / 1000)) in
        Engine.schedule_after ~rank:0 sim ~delay:wasted
          (on_attempt_fail st d ~attempt ~wasted)
    | None ->
        Engine.schedule_after ~rank:0 sim ~delay:actual
          (on_task_complete st d)
  in
  Hashtbl.replace st.started task.T.task_id { r_d = d; r_done = handle };
  match straggle with
  | None -> ()
  | Some factor_1000 ->
      st.stragglers <- st.stragglers + 1;
      st.last_fault_t <- now;
      (match st.journal with
      | None -> ()
      | Some jr ->
          Obs.Journal.event jr ~t_ms:now "straggler"
            [
              ("task", Obs.Json.Int task.T.task_id);
              ("job", Obs.Json.Int task.T.job_id);
              ("attempt", Obs.Json.Int attempt);
              ("factor_1000", Obs.Json.Int factor_1000);
              ("exec_ms", Obs.Json.Int task.T.exec_time);
              ("inflated_ms", Obs.Json.Int actual);
            ]);
      st.driver.Driver.task_started ~now ~task_id:task.T.task_id
        ~exec_ms:actual;
      (* re-plan immediately: the slot is now busy past the nominal finish
         the manager planned around, and pending starts may collide with it *)
      react st sim

and on_task_start st (d : Dispatch.t) sim =
  Hashtbl.remove st.planned d.Dispatch.task.T.task_id;
  start_attempt st d sim

and launch_now st (d : Dispatch.t) sim =
  (* immediate managers mark tasks running themselves; just execute *)
  let now = Engine.now sim in
  if d.Dispatch.start <> now then
    fail "immediate dispatch of task %d at %d but now=%d"
      d.Dispatch.task.T.task_id d.Dispatch.start now;
  start_attempt st d sim

(* A resource crash (rank 3: same-instant completions and starts settle
   first).  Every in-flight attempt on the resource dies, its partial work
   is lost, and the manager is notified before reacting. *)
and on_crash st ~resource ~rejoin sim =
  let now = Engine.now sim in
  Hashtbl.replace st.down resource ();
  st.crashes <- st.crashes + 1;
  st.last_fault_t <- now;
  let victims =
    Hashtbl.fold
      (fun id (a : attempt) acc ->
        if
          a.r_d.Dispatch.resource_id = resource
          && not (Hashtbl.mem st.completed id)
        then (id, a) :: acc
        else acc)
      st.started []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let lost_ms = ref 0 in
  List.iter
    (fun (id, (a : attempt)) ->
      Engine.cancel sim a.r_done;
      Hashtbl.remove st.started id;
      let task = a.r_d.Dispatch.task in
      let consumed = now - a.r_d.Dispatch.start in
      lost_ms := !lost_ms + consumed;
      record_busy st task consumed;
      Hashtbl.replace st.slot_busy_until (task.T.kind, a.r_d.Dispatch.slot)
        (id, now))
    victims;
  st.lost_work_ms <- st.lost_work_ms + !lost_ms;
  let lost = List.map fst victims in
  (match st.journal with
  | None -> ()
  | Some jr ->
      Obs.Journal.event jr ~t_ms:now "resource-crash"
        [
          ("resource", Obs.Json.Int resource);
          ("lost", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) lost));
          ("lost_ms", Obs.Json.Int !lost_ms);
          ( "rejoin",
            match rejoin with Some t -> Obs.Json.Int t | None -> Obs.Json.Null
          );
        ]);
  st.driver.Driver.resource_lost ~now ~resource_id:resource ~lost;
  react st sim

and on_rejoin st ~resource sim =
  let now = Engine.now sim in
  Hashtbl.remove st.down resource;
  st.rejoins <- st.rejoins + 1;
  st.last_fault_t <- now;
  (match st.journal with
  | None -> ()
  | Some jr ->
      Obs.Journal.event jr ~t_ms:now "resource-rejoin"
        [ ("resource", Obs.Json.Int resource) ]);
  st.driver.Driver.resource_rejoined ~now ~resource_id:resource;
  react st sim

and reconcile st plan sim =
  let now = Engine.now sim in
  let fresh = Hashtbl.create 64 in
  List.iter
    (fun (d : Dispatch.t) ->
      Hashtbl.replace fresh d.Dispatch.task.T.task_id d)
    plan;
  (* drop or keep existing pending start events.  An event whose start time
     is <= now is "in flight": it fires later within this same instant
     (start events carry a later rank than arrivals), and the manager has
     already classified its task as started/frozen, so it is legitimately
     absent from the new plan — keep it. *)
  let stale = ref [] in
  Hashtbl.iter
    (fun task_id ((handle, old_d) : Engine.handle * Dispatch.t) ->
      if old_d.Dispatch.start > now then begin
        match Hashtbl.find_opt fresh task_id with
        | Some new_d when new_d = old_d -> Hashtbl.remove fresh task_id
        | Some _ | None -> stale := (task_id, handle) :: !stale
      end
      else Hashtbl.remove fresh task_id)
    st.planned;
  List.iter
    (fun (task_id, handle) ->
      Engine.cancel sim handle;
      Hashtbl.remove st.planned task_id)
    !stale;
  (* schedule the new or changed dispatches.  A manager whose plan is only
     refreshed on re-solves may re-present dispatches for tasks that started
     meanwhile: identical dispatches are stale-but-consistent and skipped;
     a different dispatch for a started task is a real manager bug. *)
  Hashtbl.iter
    (fun task_id (d : Dispatch.t) ->
      match Hashtbl.find_opt st.started task_id with
      | Some a when a.r_d = d -> ()
      | Some _ -> fail "plan re-schedules already-started task %d" task_id
      | None ->
      if d.Dispatch.start < now then
        fail "plan schedules task %d at %d in the past (now=%d)" task_id
          d.Dispatch.start now;
      let handle =
        Engine.schedule ~rank:2 sim ~at:d.Dispatch.start (on_task_start st d)
      in
      Hashtbl.replace st.planned task_id (handle, d))
    fresh

and update_wake st sim =
  let now = Engine.now sim in
  let desired = st.driver.Driver.next_wake ~now in
  let desired = Option.map (fun w -> max w (now + 1)) desired in
  match (st.wake, desired) with
  | None, None -> ()
  | Some (at, _), Some at' when at = at' -> ()
  | prev, _ ->
      (match prev with
      | Some (_, handle) -> Engine.cancel sim handle
      | None -> ());
      st.wake <-
        Option.map
          (fun at ->
            let handle =
              Engine.schedule sim ~at (fun sim ->
                  st.wake <- None;
                  react st sim)
            in
            (at, handle))
          desired

and react st sim =
  let now = Engine.now sim in
  (match st.driver.Driver.react ~now with
  | Driver.Full_plan plan -> reconcile st plan sim
  | Driver.Launch ds -> List.iter (fun d -> launch_now st d sim) ds
  | Driver.No_change -> ());
  update_wake st sim

(* With ~validate: every submitted task must have completed exactly once
   (the run-end completeness half of the oracle; the exactly-once half is
   the completed-twice check as events execute).  Tasks are never "lost":
   crash-killed and failed attempts re-enter the open set, so a missing
   completion is a manager/simulator bug, not an expected chaos outcome. *)
let check_completeness st =
  Hashtbl.iter
    (fun _ jp ->
      let check (task : T.task) =
        if not (Hashtbl.mem st.completed task.T.task_id) then
          fail "task %d of job %d was submitted but never completed"
            task.T.task_id jp.j.T.id
      in
      Array.iter check jp.j.T.map_tasks;
      Array.iter check jp.j.T.reduce_tasks)
    st.progress

let run ?(validate = false) ?journal ?metrics_every ?cluster
    ?(chaos = Chaos.no_faults) ~driver ~jobs () =
  if jobs = [] then invalid_arg "Simulator.run: no jobs";
  let engine = Engine.create () in
  let st =
    {
      driver;
      validate;
      journal;
      engine;
      progress = Hashtbl.create 256;
      planned = Hashtbl.create 256;
      started = Hashtbl.create 1024;
      completed = Hashtbl.create 1024;
      first_start = Hashtbl.create 256;
      slot_busy_until = Hashtbl.create 256;
      chaos_fail = Hashtbl.create 16;
      chaos_straggle = Hashtbl.create 16;
      attempts = Hashtbl.create 64;
      down = Hashtbl.create 8;
      wake = None;
      outcomes = [];
      map_busy_ms = 0;
      reduce_busy_ms = 0;
      crashes = 0;
      rejoins = 0;
      task_failures = 0;
      stragglers = 0;
      lost_work_ms = 0;
      last_fault_t = 0;
    }
  in
  (* materialized fault plan -> lookup tables + scheduled crash events *)
  List.iter
    (function
      | Chaos.Crash { resource; at; rejoin } ->
          ignore
            (Engine.schedule ~rank:3 engine ~at (on_crash st ~resource ~rejoin));
          (match rejoin with
          | Some rt ->
              ignore (Engine.schedule ~rank:3 engine ~at:rt (on_rejoin st ~resource))
          | None -> ())
      | Chaos.Task_failure { task; attempt; frac_1000 } ->
          Hashtbl.replace st.chaos_fail (task, attempt) frac_1000
      | Chaos.Straggler { task; attempt; factor_1000 } ->
          Hashtbl.replace st.chaos_straggle (task, attempt) factor_1000)
    chaos;
  List.iter
    (fun (job : T.job) ->
      Hashtbl.replace st.progress job.T.id
        {
          j = job;
          tasks_done = 0;
          maps_done = 0;
          task_count = T.task_count job;
          map_count = Array.length job.T.map_tasks;
        };
      ignore
        (Engine.schedule engine ~at:job.T.arrival (fun sim ->
             if Obs.Trace.enabled () then
               Obs.Trace.instant ~cat:"sim" "job-arrival"
                 ~args:[ ("job", Obs.Trace.Int job.T.id) ];
             (match st.journal with
             | None -> ()
             | Some jr ->
                 Obs.Journal.event jr ~t_ms:(Engine.now sim) "arrival"
                   [
                     ("job", Obs.Json.Int job.T.id);
                     ("est", Obs.Json.Int job.T.earliest_start);
                     ("deadline", Obs.Json.Int job.T.deadline);
                     ("tasks", Obs.Json.Int (T.task_count job));
                   ]);
             st.driver.Driver.submit ~now:(Engine.now sim) job;
             react st sim)))
    jobs;
  Obs.Trace.with_span ~cat:"sim" "simulate"
    ~args:[ ("jobs", Obs.Trace.Int (List.length jobs)) ]
    (fun () ->
      match (journal, metrics_every) with
      | Some jr, Some every when every > 0 ->
          (* drain in virtual-time slices, dumping a metrics snapshot at
             every multiple of [every].  The snapshot body lives under the
             wall key: histograms of wall-clock latencies are not
             deterministic across runs, only the snapshot's presence is. *)
          let next = ref every in
          while Engine.pending engine > 0 do
            Engine.run ~until:!next engine;
            if Engine.pending engine > 0 then begin
              let m =
                match driver.Driver.metrics () with
                | Some s -> Obs.Metrics.to_json s
                | None -> Obs.Json.Null
              in
              Obs.Journal.event jr ~t_ms:!next "snapshot"
                ~wall:[ ("metrics", m) ]
                [
                  ("completed", Obs.Json.Int (List.length st.outcomes));
                  ("solves", Obs.Json.Int (driver.Driver.solve_count ()));
                ]
            end;
            next := !next + every
          done
      | _ -> Engine.run_until_empty engine);
  let jobs_total = List.length jobs in
  let done_total = List.length st.outcomes in
  if done_total <> jobs_total then
    fail "simulation ended with %d/%d jobs completed" done_total jobs_total;
  if validate then check_completeness st;
  let outcomes = List.rev st.outcomes in
  let n_late = List.length (List.filter (fun o -> o.late) outcomes) in
  let sum f = List.fold_left (fun acc o -> acc +. f o) 0. outcomes in
  let nf = float_of_int jobs_total in
  let total_overhead_s = driver.Driver.overhead_seconds () in
  let makespan_ms =
    List.fold_left (fun acc o -> max acc o.completion) 0 outcomes
  in
  (* run-end oracle line: the totals the audit tool recomputes from the
     per-job and fault lines alone and cross-checks against.  Its timestamp
     covers trailing fault events (a rejoin can postdate the last
     completion), keeping t monotone within the run. *)
  (match journal with
  | None -> ()
  | Some jr ->
      Obs.Journal.event jr ~t_ms:(max makespan_ms st.last_fault_t) "run-end"
        ~wall:
          [
            ("total_overhead_s", Obs.Json.Float total_overhead_s);
            ( "o_per_job_s",
              Obs.Json.Float (total_overhead_s /. float_of_int jobs_total) );
            ( "max_invocation_s",
              Obs.Json.Float (driver.Driver.max_invocation_seconds ()) );
          ]
        [
          ("manager", Obs.Json.String driver.Driver.name);
          ("jobs_total", Obs.Json.Int jobs_total);
          ("n_late", Obs.Json.Int n_late);
          ("solves", Obs.Json.Int (driver.Driver.solve_count ()));
          ("makespan_ms", Obs.Json.Int makespan_ms);
          ("crashes", Obs.Json.Int st.crashes);
          ("rejoins", Obs.Json.Int st.rejoins);
          ("task_failures", Obs.Json.Int st.task_failures);
          ("stragglers", Obs.Json.Int st.stragglers);
          ("lost_work_ms", Obs.Json.Int st.lost_work_ms);
        ]);
  let utilization cluster slots_of busy makespan =
    match cluster with
    | None -> None
    | Some c ->
        let slots = slots_of c in
        if slots = 0 || makespan = 0 then None
        else Some (float_of_int busy /. float_of_int (slots * makespan))
  in
  {
    manager = driver.Driver.name;
    outcomes;
    jobs_total;
    n_late;
    p_late = float_of_int n_late /. nf;
    avg_turnaround_s = sum (fun o -> float_of_int o.turnaround_ms /. 1000.) /. nf;
    avg_turnaround_from_arrival_s =
      sum (fun o -> float_of_int (o.completion - o.job.T.arrival) /. 1000.)
      /. nf;
    overhead_per_job_s = total_overhead_s /. nf;
    total_overhead_s;
    solves = driver.Driver.solve_count ();
    max_invocation_s = driver.Driver.max_invocation_seconds ();
    makespan_ms;
    map_busy_ms = st.map_busy_ms;
    reduce_busy_ms = st.reduce_busy_ms;
    map_utilization =
      utilization cluster T.total_map_slots st.map_busy_ms makespan_ms;
    reduce_utilization =
      utilization cluster T.total_reduce_slots st.reduce_busy_ms makespan_ms;
    events_executed = Engine.events_executed engine;
    metrics = driver.Driver.metrics ();
    crashes = st.crashes;
    rejoins = st.rejoins;
    task_failures = st.task_failures;
    stragglers = st.stragglers;
    lost_work_ms = st.lost_work_ms;
  }

let pp_results fmt r =
  Format.fprintf fmt
    "@[<v>%s: %d jobs, N=%d (P=%.2f%%), T=%.1fs, O=%.6fs/job (total %.3fs, \
     %d solves), makespan=%.1fs%s@]"
    r.manager r.jobs_total r.n_late (100. *. r.p_late) r.avg_turnaround_s
    r.overhead_per_job_s r.total_overhead_s r.solves
    (float_of_int r.makespan_ms /. 1000.)
    (if r.crashes + r.task_failures + r.stragglers = 0 then ""
     else
       Printf.sprintf ", chaos: %d crashes, %d failed attempts, %d stragglers, %.1fs lost"
         r.crashes r.task_failures r.stragglers
         (float_of_int r.lost_work_ms /. 1000.))
