(** Seed-controlled fault injection for the open-system simulator.

    The paper's evaluation (§VI) assumes resources and tasks never fail;
    this module supplies the chaos axis: a {!config} of hazard rates is
    {!materialize}d — deterministically, from one integer seed — into an
    explicit, shrinkable {!plan} of discrete fault events that
    {!Simulator.run} executes alongside the workload:

    - {!Crash}: the resource drops at [at]; every in-flight task on it is
      killed (its work so far is lost), and the resource re-accepts work at
      [rejoin] ([None] = retired for good).
    - {!Task_failure}: attempt [attempt] of the task aborts after
      [frac_1000]/1000 of its (possibly inflated) duration; the task
      re-enters the open set and is re-executed from scratch.
    - {!Straggler}: attempt [attempt] runs [factor_1000]/1000 times its
      nominal execution time (> 1000, i.e. always slower).

    Determinism contract: the plan is a pure function of (config, cluster,
    jobs, seed).  Per-entity decisions are drawn from streams keyed by the
    entity id, so dropping a job or a fault from a scenario (DST shrinking)
    never changes the faults assigned to the remaining entities.
    [materialize] additionally guarantees at least one resource is up at
    every instant (and injects at most [max_failures] failures per task),
    so a fault plan can never make a workload uncompletable. *)

type config = {
  crash_rate : float;
      (** expected crashes per resource per second of virtual time (a
          Poisson hazard; 0 disables crashes) *)
  repair_s : int * int;
      (** inclusive bounds, in seconds, on the crash→rejoin delay *)
  permanent_p : float;
      (** probability that a crash never rejoins (retired resource) *)
  straggler_p : float;  (** per-attempt straggler probability *)
  straggler_factor : float * float;
      (** execution-time inflation range; both ends must be > 1 *)
  task_failure_p : float;  (** per-attempt failure probability *)
  max_failures : int;  (** injected failures per task are bounded by this *)
  horizon_ms : int;
      (** crash events are drawn over [0, horizon); 0 (default) derives the
          horizon from the workload span *)
}

val default : config
(** All rates 0 (materializes to the empty plan), repair 30–120 s,
    permanent_p 0.1, straggler factor 1.5–3.0, max_failures 2. *)

type fault =
  | Crash of { resource : int; at : int; rejoin : int option }
  | Task_failure of { task : int; attempt : int; frac_1000 : int }
  | Straggler of { task : int; attempt : int; factor_1000 : int }

type plan = fault list

val no_faults : plan

val materialize :
  config ->
  cluster:Mapreduce.Types.resource array ->
  jobs:Mapreduce.Types.job list ->
  seed:int ->
  plan
(** Draw an explicit fault plan.  Equal inputs yield equal plans. *)

val pp_fault : Format.formatter -> fault -> unit

val fault_to_json : fault -> Obs.Json.t

val fault_of_json : Obs.Json.t -> fault
(** @raise Failure on malformed input. *)
