(** Open-system discrete event simulation (paper §VI).

    A stream of jobs (with pre-generated Poisson arrival times) is fed to a
    resource manager through a {!Driver.t}.  The simulator executes the
    manager's dispatches on the virtual cluster: it fires task-start events
    at planned times, task-completion events [exec_time] later, and manager
    wake-ups (deferred-job releases, §V.E).  Completion of a job's last task
    fixes the job's completion time CT_j.

    An optional {!Chaos.plan} injects faults deterministically: resource
    crashes (in-flight attempts die, their partial work is lost, the manager
    is notified and must re-plan around the smaller cluster), rejoins,
    straggler attempts (the executed duration is inflated at start and the
    manager is told the real duration), and per-attempt task failures (the
    attempt aborts part-way, the slot frees, the task re-enters).  Fault
    events at the same instant as normal events settle last (rank 3), so a
    completion at the crash instant counts as completed and a start at the
    crash instant is killed in flight.  With an empty plan (the default) the
    simulation is bit-identical to a chaos-free build.

    Metrics produced per run (paper §VI):
    - N: number of jobs that missed their deadline;
    - P: N / total jobs;
    - T: average turnaround, Σ (CT_j − s_j) / n, in seconds;
    - O: average matchmaking-and-scheduling time per job, in seconds, from
      the manager's real wall-clock overhead (the paper measures CPLEX the
      same way). *)

type job_outcome = {
  job : Mapreduce.Types.job;
  completion : int;  (** CT_j, ms *)
  late : bool;  (** CT_j > d_j *)
  turnaround_ms : int;  (** CT_j − s_j *)
}

type results = {
  manager : string;
  outcomes : job_outcome list;
  jobs_total : int;
  n_late : int;  (** the paper's N *)
  p_late : float;  (** the paper's P, in [0,1] *)
  avg_turnaround_s : float;  (** the paper's T, seconds *)
  avg_turnaround_from_arrival_s : float;  (** Σ (CT_j − v_j)/n, for reference *)
  overhead_per_job_s : float;  (** the paper's O, seconds *)
  total_overhead_s : float;
  solves : int;
  max_invocation_s : float;
      (** longest single scheduling pass (paper: "O was observed to be
          0.57s" at small m) *)
  makespan_ms : int;  (** completion of the last job *)
  map_busy_ms : int;
      (** Σ slot-occupancy over map attempts, including the consumed part of
          crash-killed and failed attempts (lost work occupies slots too) *)
  reduce_busy_ms : int;
  map_utilization : float option;
      (** busy slot-time / (map slots × makespan); requires [~cluster] *)
  reduce_utilization : float option;
  events_executed : int;  (** discrete events fired by the engine *)
  metrics : Obs.Metrics.snapshot option;
      (** the driver's accumulated telemetry; [None] unless the manager ran
          with instrumentation enabled *)
  crashes : int;  (** chaos: resource crash events executed *)
  rejoins : int;
  task_failures : int;  (** chaos: injected attempt failures executed *)
  stragglers : int;  (** chaos: straggler attempts executed *)
  lost_work_ms : int;
      (** slot-time consumed by attempts that did not complete (crash-killed
          partial work + failed-attempt partial work) *)
}

val run :
  ?validate:bool ->
  ?journal:Obs.Journal.t ->
  ?metrics_every:int ->
  ?cluster:Mapreduce.Types.resource array ->
  ?chaos:Chaos.plan ->
  driver:Driver.t ->
  jobs:Mapreduce.Types.job list ->
  unit ->
  results
(** Simulate to completion of every job.  With [~validate:true] the simulator
    additionally checks, as events execute, that no unit slot ever runs two
    tasks at once, that reduces never start before the job's maps are all
    done, that no task starts before its job's s_j, that no task starts on a
    crashed resource, and that no task completes twice; at run end it checks
    that every submitted task completed (completeness) — an end-to-end oracle
    over the whole manager + matchmaker + simulator pipeline.

    [~chaos] (default: {!Chaos.no_faults}) injects the given fault plan; the
    run remains fully deterministic (the plan is data, not randomness).

    With [~journal] the simulator appends its side of the decision journal
    (the manager writes its own events through {!Mrcp.Manager.config}):
    one "arrival" event per job, a terminal "job-done" event with the
    lateness attribution split (queue wait / execution / solver overhead)
    plus the job's final "sla" verdict, fault events ("resource-crash" with
    the killed task ids and lost slot-time, "resource-rejoin",
    "task-attempt-failed", "straggler"), and a closing "run-end" event
    carrying the run totals (Σ N_j, O, fault counters, lost work) that
    {!Report.Audit} independently recomputes.  [~metrics_every] (virtual ms,
    requires [~journal]) additionally dumps a metrics snapshot event at
    every multiple of the period; snapshot bodies sit under the journal's
    wall key because wall-clock histograms are not deterministic.
    @raise Failure on a validation violation. *)

val pp_results : Format.formatter -> results -> unit
