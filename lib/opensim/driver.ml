type reaction =
  | Full_plan of Sched.Dispatch.t list
  | Launch of Sched.Dispatch.t list
  | No_change

type t = {
  name : string;
  submit : now:int -> Mapreduce.Types.job -> unit;
  task_completed : now:int -> task_id:int -> unit;
  task_started : now:int -> task_id:int -> exec_ms:int -> unit;
  task_attempt_failed : now:int -> task_id:int -> unit;
  resource_lost : now:int -> resource_id:int -> lost:int list -> unit;
  resource_rejoined : now:int -> resource_id:int -> unit;
  react : now:int -> reaction;
  next_wake : now:int -> int option;
  overhead_seconds : unit -> float;
  max_invocation_seconds : unit -> float;
  job_overhead_seconds : int -> float;
  solve_count : unit -> int;
  metrics : unit -> Obs.Metrics.snapshot option;
  description : string;
}

let of_mrcp mgr =
  {
    name = "mrcp-rm";
    submit = (fun ~now job -> Mrcp.Manager.submit mgr ~now job);
    task_completed = (fun ~now:_ ~task_id:_ -> ());
    task_started =
      (fun ~now ~task_id ~exec_ms ->
        Mrcp.Manager.task_started mgr ~now ~task_id ~exec_ms);
    task_attempt_failed =
      (fun ~now ~task_id -> Mrcp.Manager.task_attempt_failed mgr ~now ~task_id);
    resource_lost =
      (fun ~now ~resource_id ~lost ->
        Mrcp.Manager.resource_lost mgr ~now ~resource_id ~lost);
    resource_rejoined =
      (fun ~now ~resource_id ->
        Mrcp.Manager.resource_rejoined mgr ~now ~resource_id);
    react =
      (let last_version = ref (-1) in
       fun ~now ->
         Mrcp.Manager.invoke mgr ~now;
         let version = Mrcp.Manager.plan_version mgr in
         if version = !last_version then No_change
         else begin
           last_version := version;
           Full_plan (Mrcp.Manager.plan mgr)
         end);
    next_wake = (fun ~now:_ -> Mrcp.Manager.next_wake mgr);
    overhead_seconds = (fun () -> Mrcp.Manager.overhead_seconds mgr);
    max_invocation_seconds =
      (fun () -> Mrcp.Manager.max_invocation_seconds mgr);
    job_overhead_seconds = (fun id -> Mrcp.Manager.job_overhead_seconds mgr id);
    solve_count = (fun () -> Mrcp.Manager.solve_count mgr);
    metrics = (fun () -> Mrcp.Manager.metrics mgr);
    description =
      "CP-based matchmaking and scheduling (paper Table 2), re-planning \
       unstarted tasks at every arrival";
  }

let of_slot_scheduler sched =
  {
    name =
      Baselines.Slot_scheduler.policy_to_string
        (Baselines.Slot_scheduler.policy sched);
    submit = (fun ~now job -> Baselines.Slot_scheduler.submit sched ~now job);
    task_completed =
      (fun ~now ~task_id ->
        Baselines.Slot_scheduler.task_completed sched ~now ~task_id);
    task_started = (fun ~now:_ ~task_id:_ ~exec_ms:_ -> ());
    task_attempt_failed =
      (fun ~now ~task_id ->
        Baselines.Slot_scheduler.task_attempt_failed sched ~now ~task_id);
    resource_lost =
      (fun ~now ~resource_id ~lost ->
        Baselines.Slot_scheduler.resource_lost sched ~now ~resource_id ~lost);
    resource_rejoined =
      (fun ~now ~resource_id ->
        Baselines.Slot_scheduler.resource_rejoined sched ~now ~resource_id);
    react = (fun ~now -> Launch (Baselines.Slot_scheduler.dispatches sched ~now));
    next_wake = (fun ~now:_ -> Baselines.Slot_scheduler.next_wake sched);
    overhead_seconds =
      (fun () -> Baselines.Slot_scheduler.overhead_seconds sched);
    max_invocation_seconds = (fun () -> 0.);
    job_overhead_seconds = (fun _ -> 0.);
    solve_count = (fun () -> 0);
    metrics = (fun () -> None);
    description = "slot-based dynamic scheduler";
  }
