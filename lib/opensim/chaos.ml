module T = Mapreduce.Types
module Rng = Simrand.Rng

type config = {
  crash_rate : float;
  repair_s : int * int;
  permanent_p : float;
  straggler_p : float;
  straggler_factor : float * float;
  task_failure_p : float;
  max_failures : int;
  horizon_ms : int;
}

let default =
  {
    crash_rate = 0.;
    repair_s = (30, 120);
    permanent_p = 0.1;
    straggler_p = 0.;
    straggler_factor = (1.5, 3.0);
    task_failure_p = 0.;
    max_failures = 2;
    horizon_ms = 0;
  }

type fault =
  | Crash of { resource : int; at : int; rejoin : int option }
  | Task_failure of { task : int; attempt : int; frac_1000 : int }
  | Straggler of { task : int; attempt : int; factor_1000 : int }

type plan = fault list

let no_faults : plan = []

let pp_fault fmt = function
  | Crash { resource; at; rejoin } ->
      Format.fprintf fmt "crash(r%d at %d%s)" resource at
        (match rejoin with
        | Some t -> Printf.sprintf ", rejoin %d" t
        | None -> ", permanent")
  | Task_failure { task; attempt; frac_1000 } ->
      Format.fprintf fmt "fail(task %d attempt %d @%d/1000)" task attempt
        frac_1000
  | Straggler { task; attempt; factor_1000 } ->
      Format.fprintf fmt "straggle(task %d attempt %d x%d/1000)" task attempt
        factor_1000

(* Per-dimension streams are derived by mixing the scenario seed with a
   stable per-entity key, so the decision for one task/resource never
   depends on how many variates another entity consumed. *)
let stream seed key = Rng.create ((seed * 1_000_003) lxor (key * 8_191))

let auto_horizon jobs =
  let span =
    List.fold_left
      (fun acc (j : T.job) ->
        let work =
          Array.fold_left (fun a (t : T.task) -> a + t.T.exec_time) 0 j.T.map_tasks
          + Array.fold_left
              (fun a (t : T.task) -> a + t.T.exec_time)
              0 j.T.reduce_tasks
        in
        max acc (max j.T.deadline (j.T.earliest_start + work)))
      0 jobs
  in
  (2 * span) + 60_000

(* One candidate crash interval per draw; [filter_all_down] then drops any
   candidate whose downtime could leave zero resources up (conservatively:
   the candidate overlaps kept intervals of every other resource).  This
   keeps the materialized plan deadlock-free by construction. *)
let crash_candidates cfg ~seed ~horizon (r : T.resource) =
  if cfg.crash_rate <= 0. then []
  else begin
    let rng = stream seed (r.T.res_id + 1) in
    let lo_s, hi_s = cfg.repair_s in
    let out = ref [] in
    let t = ref 0. in
    let stop = ref false in
    while not !stop do
      let u = Rng.unit_float rng in
      let gap_ms = -.log (1. -. u) /. cfg.crash_rate *. 1000. in
      t := !t +. gap_ms;
      if !t >= float_of_int horizon then stop := true
      else begin
        let at = max 1 (int_of_float !t) in
        let repair_ms = 1000 * Rng.int_incl rng (min lo_s hi_s) (max lo_s hi_s) in
        let permanent = Rng.unit_float rng < cfg.permanent_p in
        let rejoin = if permanent then None else Some (at + max 1 repair_ms) in
        out := (r.T.res_id, at, rejoin) :: !out;
        match rejoin with
        | None -> stop := true
        | Some rt -> t := float_of_int rt
      end
    done;
    List.rev !out
  end

let filter_all_down ~m candidates =
  let ends = function Some rt -> rt | None -> max_int in
  let sorted =
    List.sort
      (fun (r1, a1, _) (r2, a2, _) -> compare (a1, r1) (a2, r2))
      candidates
  in
  let kept = ref [] in
  List.iter
    (fun (res, at, rejoin) ->
      let fin = ends rejoin in
      let overlapping_others =
        List.filter
          (fun (res', at', rejoin') ->
            res' <> res && at' < fin && ends rejoin' > at)
          !kept
        |> List.map (fun (res', _, _) -> res')
        |> List.sort_uniq compare
      in
      if List.length overlapping_others + 1 < m then
        kept := (res, at, rejoin) :: !kept)
    sorted;
  List.rev !kept

let task_faults cfg ~seed (task : T.task) =
  if cfg.straggler_p <= 0. && cfg.task_failure_p <= 0. then []
  else begin
    let rng = stream seed (task.T.task_id * 2 + 1) in
    let f_lo, f_hi = cfg.straggler_factor in
    let out = ref [] in
    let k = ref 0 in
    let continue = ref true in
    while !continue do
      (* fixed draw order per attempt: straggle?, factor, fail?, fraction *)
      let straggle = Rng.unit_float rng < cfg.straggler_p in
      let factor =
        let lo = int_of_float (1000. *. min f_lo f_hi) in
        let hi = int_of_float (1000. *. max f_lo f_hi) in
        Rng.int_incl rng (max 1001 lo) (max 1001 hi)
      in
      if straggle then
        out := Straggler { task = task.T.task_id; attempt = !k; factor_1000 = factor } :: !out;
      let fails =
        !k < cfg.max_failures && Rng.unit_float rng < cfg.task_failure_p
      in
      if fails then begin
        let frac = Rng.int_incl rng 1 999 in
        out :=
          Task_failure { task = task.T.task_id; attempt = !k; frac_1000 = frac }
          :: !out;
        incr k
      end
      else continue := false
    done;
    List.rev !out
  end

let materialize cfg ~cluster ~jobs ~seed =
  let m = Array.length cluster in
  let horizon =
    if cfg.horizon_ms > 0 then cfg.horizon_ms else auto_horizon jobs
  in
  let crashes =
    (* a 1-resource cluster never crashes: losing the only resource would
       deadlock every non-started task *)
    if m < 2 then []
    else
      Array.to_list cluster
      |> List.concat_map (crash_candidates cfg ~seed ~horizon)
      |> filter_all_down ~m
      |> List.map (fun (resource, at, rejoin) -> Crash { resource; at; rejoin })
  in
  let per_task =
    List.concat_map
      (fun (j : T.job) ->
        let arr a = Array.to_list a in
        List.concat_map (task_faults cfg ~seed) (arr j.T.map_tasks @ arr j.T.reduce_tasks))
      jobs
  in
  crashes @ per_task

(* --- JSON (de)serialization for repro files ----------------------------- *)

module J = Obs.Json

let fault_to_json = function
  | Crash { resource; at; rejoin } ->
      J.Obj
        [
          ("kind", J.String "crash");
          ("resource", J.Int resource);
          ("at", J.Int at);
          ("rejoin", match rejoin with Some t -> J.Int t | None -> J.Null);
        ]
  | Task_failure { task; attempt; frac_1000 } ->
      J.Obj
        [
          ("kind", J.String "task-failure");
          ("task", J.Int task);
          ("attempt", J.Int attempt);
          ("frac_1000", J.Int frac_1000);
        ]
  | Straggler { task; attempt; factor_1000 } ->
      J.Obj
        [
          ("kind", J.String "straggler");
          ("task", J.Int task);
          ("attempt", J.Int attempt);
          ("factor_1000", J.Int factor_1000);
        ]

let fault_of_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let req k = match int k with
    | Some v -> v
    | None -> failwith (Printf.sprintf "fault: missing %s" k)
  in
  match Option.bind (J.member "kind" j) J.to_string_opt with
  | Some "crash" ->
      let rejoin =
        match J.member "rejoin" j with
        | Some J.Null | None -> None
        | Some v -> J.to_int_opt v
      in
      Crash { resource = req "resource"; at = req "at"; rejoin }
  | Some "task-failure" ->
      Task_failure
        { task = req "task"; attempt = req "attempt"; frac_1000 = req "frac_1000" }
  | Some "straggler" ->
      Straggler
        {
          task = req "task";
          attempt = req "attempt";
          factor_1000 = req "factor_1000";
        }
  | Some k -> failwith ("fault: unknown kind " ^ k)
  | None -> failwith "fault: missing kind"
