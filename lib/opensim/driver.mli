(** Adapter interface between the event simulator and a resource manager.

    Two reaction styles exist in this repo:
    - {e plan-based} managers (MRCP-RM) publish, at each invocation, a full
      plan of future (resource, slot, start) dispatches for every task that
      has not started; the simulator reconciles its pending start events
      against the new plan (tasks may be re-mapped and re-scheduled until the
      moment they start — Table 2's remapping behaviour);
    - {e immediate} managers (MinEDF-WC and the other slot schedulers)
      return tasks to launch right now whenever a slot frees or a job
      arrives. *)

type reaction =
  | Full_plan of Sched.Dispatch.t list
      (** authoritative plan for every unstarted task *)
  | Launch of Sched.Dispatch.t list
      (** start these now (all starts = now); previously launched tasks are
          unaffected *)
  | No_change
      (** the manager did not re-plan; keep all pending start events *)

type t = {
  name : string;
  submit : now:int -> Mapreduce.Types.job -> unit;
  task_completed : now:int -> task_id:int -> unit;
  task_started : now:int -> task_id:int -> exec_ms:int -> unit;
      (** chaos only: an attempt started with an execution time that differs
          from the nominal one (a {!Chaos.Straggler}); [exec_ms] is the
          actual duration.  Never called in fault-free runs. *)
  task_attempt_failed : now:int -> task_id:int -> unit;
      (** chaos only: the running attempt aborted; the task must re-enter the
          manager's open set and be re-executed from scratch *)
  resource_lost : now:int -> resource_id:int -> lost:int list -> unit;
      (** the resource crashed; [lost] are the task ids whose in-flight
          attempts were killed.  An explicit topology notification — not an
          overload of [react] — so immediate schedulers (MinEDF-WC) also
          stop dispatching to dead resources. *)
  resource_rejoined : now:int -> resource_id:int -> unit;
      (** a crashed resource is accepting work again *)
  react : now:int -> reaction;
      (** called after every submit / completion / fault / wake *)
  next_wake : now:int -> int option;
  overhead_seconds : unit -> float;
  max_invocation_seconds : unit -> float;
      (** longest single scheduling pass (0 when not tracked) *)
  job_overhead_seconds : int -> float;
      (** wall-clock scheduling overhead attributed to one job
          ({!Mrcp.Manager.job_overhead_seconds}); 0 when not tracked — only
          the MRCP manager with journaling enabled accumulates it *)
  solve_count : unit -> int;
  metrics : unit -> Obs.Metrics.snapshot option;
      (** accumulated manager/solver telemetry ({!Mrcp.Manager.metrics});
          [None] for managers without instrumentation *)
  description : string;
}

val of_mrcp : Mrcp.Manager.t -> t
(** Wrap an MRCP-RM manager (plan-based). *)

val of_slot_scheduler : Baselines.Slot_scheduler.t -> t
(** Wrap a slot scheduler (immediate). *)
