(** Adapter interface between the event simulator and a resource manager.

    Two reaction styles exist in this repo:
    - {e plan-based} managers (MRCP-RM) publish, at each invocation, a full
      plan of future (resource, slot, start) dispatches for every task that
      has not started; the simulator reconciles its pending start events
      against the new plan (tasks may be re-mapped and re-scheduled until the
      moment they start — Table 2's remapping behaviour);
    - {e immediate} managers (MinEDF-WC and the other slot schedulers)
      return tasks to launch right now whenever a slot frees or a job
      arrives. *)

type reaction =
  | Full_plan of Sched.Dispatch.t list
      (** authoritative plan for every unstarted task *)
  | Launch of Sched.Dispatch.t list
      (** start these now (all starts = now); previously launched tasks are
          unaffected *)
  | No_change
      (** the manager did not re-plan; keep all pending start events *)

type t = {
  name : string;
  submit : now:int -> Mapreduce.Types.job -> unit;
  task_completed : now:int -> task_id:int -> unit;
  react : now:int -> reaction;
      (** called after every submit / completion / wake *)
  next_wake : now:int -> int option;
  overhead_seconds : unit -> float;
  max_invocation_seconds : unit -> float;
      (** longest single scheduling pass (0 when not tracked) *)
  job_overhead_seconds : int -> float;
      (** wall-clock scheduling overhead attributed to one job
          ({!Mrcp.Manager.job_overhead_seconds}); 0 when not tracked — only
          the MRCP manager with journaling enabled accumulates it *)
  solve_count : unit -> int;
  metrics : unit -> Obs.Metrics.snapshot option;
      (** accumulated manager/solver telemetry ({!Mrcp.Manager.metrics});
          [None] for managers without instrumentation *)
  description : string;
}

val of_mrcp : Mrcp.Manager.t -> t
(** Wrap an MRCP-RM manager (plan-based). *)

val of_slot_scheduler : Baselines.Slot_scheduler.t -> t
(** Wrap a slot scheduler (immediate). *)
