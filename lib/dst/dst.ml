module T = Mapreduce.Types
module Chaos = Opensim.Chaos
module Rng = Simrand.Rng
module J = Obs.Json

type manager = Mrcp_rm | Min_edf_wc | Edf_wc | Fcfs_wc

let manager_to_string = function
  | Mrcp_rm -> "mrcp-rm"
  | Min_edf_wc -> "minedf-wc"
  | Edf_wc -> "edf-wc"
  | Fcfs_wc -> "fcfs-wc"

let manager_of_string = function
  | "mrcp-rm" -> Mrcp_rm
  | "minedf-wc" -> Min_edf_wc
  | "edf-wc" -> Edf_wc
  | "fcfs-wc" -> Fcfs_wc
  | s -> failwith ("unknown manager " ^ s)

type scenario = {
  seed : int;
  m : int;
  map_capacity : int;
  reduce_capacity : int;
  manager : manager;
  jobs : T.job list;
  faults : Chaos.plan;
}

type mutation = No_mutation | Drop_attempt_failed | Drop_resource_lost

let mutation_to_string = function
  | No_mutation -> "none"
  | Drop_attempt_failed -> "drop-attempt-failed"
  | Drop_resource_lost -> "drop-resource-lost"

let mutation_of_string = function
  | "none" -> No_mutation
  | "drop-attempt-failed" -> Drop_attempt_failed
  | "drop-resource-lost" -> Drop_resource_lost
  | s -> failwith ("unknown mutation " ^ s)

(* --- generation --------------------------------------------------------- *)

(* Small instances on purpose: the invariants are size-independent, and
   violations shrink faster from a small starting point.  Times are in ms
   but drawn in coarse 100 ms grains so schedules stay readable. *)
let generate ~seed =
  let rng = Rng.create seed in
  let m = 1 + Rng.int rng 3 in
  let map_capacity = 1 + Rng.int rng 2 in
  let reduce_capacity = 1 + Rng.int rng 2 in
  let manager =
    match Rng.int rng 6 with
    | 0 -> Min_edf_wc
    | 1 -> Edf_wc
    | 2 -> Fcfs_wc
    | _ -> Mrcp_rm
  in
  let n_jobs = 1 + Rng.int rng 7 in
  let task_counter = ref 0 in
  let jobs =
    List.init n_jobs (fun i ->
        let arrival = Rng.int rng 5_000 in
        let est = arrival + (if Rng.int rng 3 = 0 then Rng.int rng 4_000 else 0) in
        let mk kind =
          incr task_counter;
          {
            T.task_id = !task_counter;
            job_id = i;
            kind;
            exec_time = 100 * (1 + Rng.int rng 20);
            capacity_req = 1;
          }
        in
        let map_tasks = Array.init (1 + Rng.int rng 4) (fun _ -> mk T.Map_task) in
        let reduce_tasks = Array.init (Rng.int rng 3) (fun _ -> mk T.Reduce_task) in
        let sum = Array.fold_left (fun acc t -> acc + t.T.exec_time) 0 in
        let work = sum map_tasks + sum reduce_tasks in
        let deadline = est + work + Rng.int rng (work + 2_000) in
        { T.id = i; arrival; earliest_start = est; deadline; map_tasks; reduce_tasks })
  in
  let cluster = T.uniform_cluster ~m ~map_capacity ~reduce_capacity in
  let cfg =
    {
      Chaos.default with
      Chaos.crash_rate = 0.02;         (* ~1 crash per resource per 50 s *)
      straggler_p = 0.15;
      task_failure_p = 0.15;
    }
  in
  let faults = Chaos.materialize cfg ~cluster ~jobs ~seed:(seed lxor 0x5157) in
  { seed; m; map_capacity; reduce_capacity; manager; jobs; faults }

(* --- execution ---------------------------------------------------------- *)

let make_driver scenario cluster ~journal =
  match scenario.manager with
  | Mrcp_rm ->
      (* deterministic cutoffs: bounded fail/task limits with an effectively
         infinite wall budget, so the search never depends on the clock *)
      let solver =
        {
          Cp.Solver.default_options with
          Cp.Solver.exact_task_limit = 400;
          fail_limit = 2_000;
          time_limit = 1e9;
          seed = scenario.seed;
        }
      in
      Opensim.Driver.of_mrcp
        (Mrcp.Manager.create ~cluster
           {
             Mrcp.Manager.default_config with
             Mrcp.Manager.solver;
             validate = true;
             deferral_window = Some 2_000;
             journal = Some journal;
           })
  | (Min_edf_wc | Edf_wc | Fcfs_wc) as p ->
      let policy =
        match p with
        | Min_edf_wc -> Baselines.Slot_scheduler.Min_edf_wc
        | Edf_wc -> Baselines.Slot_scheduler.Edf_wc
        | _ -> Baselines.Slot_scheduler.Fcfs_wc
      in
      Opensim.Driver.of_slot_scheduler
        (Baselines.Slot_scheduler.create ~cluster ~policy)

let mutate mutation (d : Opensim.Driver.t) =
  match mutation with
  | No_mutation -> d
  | Drop_attempt_failed ->
      (* the manager is never told the attempt died: the task silently
         vanishes from the system — the completeness oracle must object *)
      { d with Opensim.Driver.task_attempt_failed = (fun ~now:_ ~task_id:_ -> ()) }
  | Drop_resource_lost ->
      (* the manager keeps planning onto the dead resource and believes the
         killed attempts are still running *)
      {
        d with
        Opensim.Driver.resource_lost = (fun ~now:_ ~resource_id:_ ~lost:_ -> ());
      }

type outcome = {
  fingerprint : string;  (** canonical journal digest *)
  journal : string;  (** raw JSONL text *)
  results : Opensim.Simulator.results;
}

(* One full simulation of the scenario under the invariant oracle.  [Error]
   carries the violation message (a [Failure] raised by the simulator's
   checks, the manager's validation, or the driver reconciliation). *)
let run_once ?(mutation = No_mutation) scenario =
  let cluster =
    T.uniform_cluster ~m:scenario.m ~map_capacity:scenario.map_capacity
      ~reduce_capacity:scenario.reduce_capacity
  in
  let journal = Obs.Journal.create () in
  let driver = mutate mutation (make_driver scenario cluster ~journal) in
  match
    Opensim.Simulator.run ~validate:true ~journal ~cluster
      ~chaos:scenario.faults ~driver ~jobs:scenario.jobs ()
  with
  | results ->
      let text = Obs.Journal.to_string journal in
      Ok { fingerprint = Obs.Journal.fingerprint text; journal = text; results }
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid_arg: " ^ msg)

type verdict =
  | Pass of { fingerprint : string }
  | Violation of { message : string }

(* The audit tool independently recomputes the run totals (Σ N_j, O, fault
   counters, lost work) from the per-event lines and cross-checks them
   against the run-end record with exact equality.  The overhead half of
   that contract only holds for managers that journal their invocations
   (MRCP-RM); the slot-scheduler baselines journal no "invoke" lines. *)
let audit scenario (o : outcome) =
  match scenario.manager with
  | Min_edf_wc | Edf_wc | Fcfs_wc -> None
  | Mrcp_rm -> (
      match Report.Audit.of_string o.journal with
      | Error e -> Some ("journal does not parse: " ^ e)
      | Ok r ->
          if Report.Audit.checks_ok r then None
          else
            Some
              (String.concat "; "
                 (List.filter_map
                    (fun (c : Report.Audit.check) ->
                      if c.Report.Audit.ok then None
                      else
                        Some
                          (Printf.sprintf "audit: %s: run-end %s <> recomputed %s"
                             c.Report.Audit.name c.Report.Audit.expected
                             c.Report.Audit.actual))
                    r.Report.Audit.checks)))

(* The full check: run the scenario twice and demand (a) no invariant
   violation, (b) byte-identical canonical journals across the two runs
   (same-seed determinism), (c) a clean audit of the journal's totals. *)
let check ?(mutation = No_mutation) scenario =
  match run_once ~mutation scenario with
  | Error msg -> Violation { message = msg }
  | Ok o1 -> (
      match audit scenario o1 with
      | Some msg -> Violation { message = msg }
      | None -> (
          match run_once ~mutation scenario with
          | Error msg ->
              Violation
                { message = "non-deterministic: second run failed: " ^ msg }
          | Ok o2 ->
              if o1.fingerprint <> o2.fingerprint then
                Violation
                  {
                    message =
                      Printf.sprintf
                        "non-deterministic: journal fingerprints differ (%s \
                         vs %s)"
                        o1.fingerprint o2.fingerprint;
                  }
              else Pass { fingerprint = o1.fingerprint }))

(* --- shrinking ---------------------------------------------------------- *)

(* Candidate reductions, coarsest first.  Each is scenario -> scenario list
   (all single-step reductions of that kind). *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let drop_job_candidates s =
  if List.length s.jobs <= 1 then []
  else List.init (List.length s.jobs) (fun n -> { s with jobs = drop_nth n s.jobs })

let drop_fault_candidates s =
  List.init (List.length s.faults) (fun n ->
      { s with faults = drop_nth n s.faults })

(* round an execution time down to the next coarser grain (1 s, else 100 ms)
   without reaching 0; None if already minimal *)
let round_time t =
  if t > 1_000 && t mod 1_000 <> 0 then Some (t - (t mod 1_000))
  else if t > 100 && t mod 100 <> 0 then Some (t - (t mod 100))
  else None

let round_job (j : T.job) =
  let changed = ref false in
  let round_task (t : T.task) =
    match round_time t.T.exec_time with
    | Some e ->
        changed := true;
        { t with T.exec_time = e }
    | None -> t
  in
  let map_tasks = Array.map round_task j.T.map_tasks in
  let reduce_tasks = Array.map round_task j.T.reduce_tasks in
  if !changed then Some { j with T.map_tasks; reduce_tasks } else None

let round_candidates s =
  List.concat
    (List.mapi
       (fun n j ->
         match round_job j with
         | Some j' ->
             [ { s with jobs = List.mapi (fun i x -> if i = n then j' else x) s.jobs } ]
         | None -> [])
       s.jobs)

type shrink_result = {
  minimal : scenario;
  violation : string;
  steps : int;  (** successful reductions applied *)
  runs : int;  (** scenarios executed while shrinking *)
}

(* Greedy delta-debugging: repeatedly try every single-step reduction (drop
   a job, drop a fault, round a duration) and restart from the first one
   that still violates *some* invariant (not necessarily the same message:
   the minimal repro for the underlying bug is what we are after).  [fuel]
   bounds the number of simulations. *)
let shrink ?(mutation = No_mutation) ?(fuel = 400) scenario ~violation =
  let runs = ref 0 in
  let steps = ref 0 in
  let still_fails s =
    if !runs >= fuel then None
    else begin
      incr runs;
      match run_once ~mutation s with
      | Error msg -> Some msg
      | Ok _ -> None
    end
  in
  let rec loop s violation =
    let candidates =
      drop_job_candidates s @ drop_fault_candidates s @ round_candidates s
    in
    let rec try_each = function
      | [] -> { minimal = s; violation; steps = !steps; runs = !runs }
      | c :: rest -> (
          if !runs >= fuel then { minimal = s; violation; steps = !steps; runs = !runs }
          else
            match still_fails c with
            | Some msg ->
                incr steps;
                loop c msg
            | None -> try_each rest)
    in
    try_each candidates
  in
  loop scenario violation

(* --- repro files -------------------------------------------------------- *)

let task_to_json (t : T.task) =
  J.Obj [ ("id", J.Int t.T.task_id); ("e", J.Int t.T.exec_time) ]

let task_of_json ~job_id ~kind j =
  let get k = Option.bind (J.member k j) J.to_int_opt in
  match (get "id", get "e") with
  | Some task_id, Some exec_time ->
      { T.task_id; job_id; kind; exec_time; capacity_req = 1 }
  | _ -> failwith "task: missing id/e"

let job_to_json (j : T.job) =
  J.Obj
    [
      ("id", J.Int j.T.id);
      ("arrival", J.Int j.T.arrival);
      ("est", J.Int j.T.earliest_start);
      ("deadline", J.Int j.T.deadline);
      ("maps", J.List (Array.to_list (Array.map task_to_json j.T.map_tasks)));
      ( "reduces",
        J.List (Array.to_list (Array.map task_to_json j.T.reduce_tasks)) );
    ]

let job_of_json j =
  let geti k =
    match Option.bind (J.member k j) J.to_int_opt with
    | Some v -> v
    | None -> failwith ("job: missing " ^ k)
  in
  let tasks k kind =
    match J.member k j with
    | Some (J.List l) ->
        Array.of_list (List.map (task_of_json ~job_id:(geti "id") ~kind) l)
    | _ -> failwith ("job: missing " ^ k)
  in
  {
    T.id = geti "id";
    arrival = geti "arrival";
    earliest_start = geti "est";
    deadline = geti "deadline";
    map_tasks = tasks "maps" T.Map_task;
    reduce_tasks = tasks "reduces" T.Reduce_task;
  }

let to_json s =
  J.Obj
    [
      ("seed", J.Int s.seed);
      ("m", J.Int s.m);
      ("map_capacity", J.Int s.map_capacity);
      ("reduce_capacity", J.Int s.reduce_capacity);
      ("manager", J.String (manager_to_string s.manager));
      ("jobs", J.List (List.map job_to_json s.jobs));
      ("faults", J.List (List.map Chaos.fault_to_json s.faults));
    ]

let of_json j =
  let geti k =
    match Option.bind (J.member k j) J.to_int_opt with
    | Some v -> v
    | None -> failwith ("scenario: missing " ^ k)
  in
  let gets k =
    match Option.bind (J.member k j) J.to_string_opt with
    | Some v -> v
    | None -> failwith ("scenario: missing " ^ k)
  in
  let list k =
    match J.member k j with
    | Some (J.List l) -> l
    | _ -> failwith ("scenario: missing " ^ k)
  in
  {
    seed = geti "seed";
    m = geti "m";
    map_capacity = geti "map_capacity";
    reduce_capacity = geti "reduce_capacity";
    manager = manager_of_string (gets "manager");
    jobs = List.map job_of_json (list "jobs");
    faults = List.map Chaos.fault_of_json (list "faults");
  }

let save s ~path =
  let oc = open_out path in
  output_string oc (J.to_string (to_json s));
  output_char oc '\n';
  close_out oc

let load ~path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match J.of_string text with
  | Ok j -> of_json j
  | Error e -> failwith ("repro file: " ^ e)

let pp_scenario fmt s =
  Format.fprintf fmt
    "@[<v>scenario seed=%d %s m=%d caps=(%d,%d) jobs=%d tasks=%d faults=%d@,%a@]"
    s.seed
    (manager_to_string s.manager)
    s.m s.map_capacity s.reduce_capacity (List.length s.jobs)
    (List.fold_left (fun acc j -> acc + T.task_count j) 0 s.jobs)
    (List.length s.faults)
    (Format.pp_print_list Chaos.pp_fault)
    s.faults
