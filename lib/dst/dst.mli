(** Deterministic simulation testing (DST) over the full
    manager → matchmaker → simulator pipeline.

    One integer seed expands into a whole {!scenario} — cluster shape,
    manager choice, job stream, and a materialized {!Opensim.Chaos} fault
    plan — which {!check} executes under the simulator's invariant oracle
    ([~validate:true]: no double-booked slot, no dispatch to a crashed
    resource, reduces never precede maps, every submitted task completes
    exactly once) with the decision journal on, {e twice}, demanding
    byte-identical canonical journals (same-seed determinism).

    A violation shrinks ({!shrink}) to a minimal failing scenario by greedy
    delta-debugging — drop jobs, drop faults, round durations — and the
    result serializes to a replayable JSON repro file ({!save}/{!load},
    [mrcp_dst --replay]).

    {!mutation}s deliberately break a manager invariant (e.g. swallowing
    fault notifications); the harness must catch and shrink them — the
    standard self-test that the oracle actually bites. *)

type manager = Mrcp_rm | Min_edf_wc | Edf_wc | Fcfs_wc

val manager_to_string : manager -> string
val manager_of_string : string -> manager

type scenario = {
  seed : int;
  m : int;
  map_capacity : int;
  reduce_capacity : int;
  manager : manager;
  jobs : Mapreduce.Types.job list;
  faults : Opensim.Chaos.plan;
}

type mutation =
  | No_mutation
  | Drop_attempt_failed
      (** swallow {!Opensim.Driver.t.task_attempt_failed}: the failed task
          is never re-entered, so its job never completes *)
  | Drop_resource_lost
      (** swallow {!Opensim.Driver.t.resource_lost}: the manager keeps
          planning onto the dead resource *)

val mutation_to_string : mutation -> string
val mutation_of_string : string -> mutation

val generate : seed:int -> scenario
(** Deterministically expand a seed into a scenario (small on purpose:
    1–4 resources, 1–8 jobs, moderate fault rates). *)

type outcome = {
  fingerprint : string;  (** canonical journal digest *)
  journal : string;  (** raw JSONL text *)
  results : Opensim.Simulator.results;
}

val run_once : ?mutation:mutation -> scenario -> (outcome, string) result
(** One simulation under the oracle; [Error] is the violation message. *)

type verdict =
  | Pass of { fingerprint : string }
  | Violation of { message : string }

val check : ?mutation:mutation -> scenario -> verdict
(** {!run_once} twice: any invariant violation, a failed {!Report.Audit}
    cross-check of the first run's journal (MRCP-RM scenarios — the
    baselines journal no invoke lines, so their overhead totals cannot be
    recomputed), or differing canonical journal fingerprints between the
    runs, is a {!Violation}. *)

type shrink_result = {
  minimal : scenario;
  violation : string;  (** the minimal scenario's violation message *)
  steps : int;  (** successful reductions applied *)
  runs : int;  (** simulations spent shrinking *)
}

val shrink :
  ?mutation:mutation -> ?fuel:int -> scenario -> violation:string -> shrink_result
(** Greedy minimization of a failing scenario; [fuel] (default 400) bounds
    the number of simulations. *)

val to_json : scenario -> Obs.Json.t
val of_json : Obs.Json.t -> scenario
(** @raise Failure on malformed input. *)

val save : scenario -> path:string -> unit
val load : path:string -> scenario
(** @raise Failure on malformed input. *)

val pp_scenario : Format.formatter -> scenario -> unit
