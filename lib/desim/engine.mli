(** Discrete event simulation engine.

    Virtual time is an integer (the repo's convention: milliseconds).  Events
    are closures executed at their scheduled time; events scheduled for the
    same instant fire in scheduling (FIFO) order, which keeps runs
    deterministic.  Handlers may schedule further events, including at the
    current time (processed before time advances). *)

type t

type handle
(** Token for a scheduled event, usable to cancel it. *)

val create : ?start_time:int -> unit -> t
val now : t -> int

val schedule : ?rank:int -> t -> at:int -> (t -> unit) -> handle
(** [schedule sim ~at f] runs [f sim] when the clock reaches [at].
    Events at the same instant fire in ascending [rank] (0–3, default 1),
    then insertion order — e.g. rank 0 task-completion events are processed
    before rank 2 task-start events scheduled for the same time, so that a
    successor starting exactly when its predecessor ends observes the
    completed state.  Times must stay below 2^59 (the key packs time and
    rank).  @raise Invalid_argument if [at] is in the past. *)

val schedule_after : ?rank:int -> t -> delay:int -> (t -> unit) -> handle
(** Relative form; [delay >= 0]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled, unfired) events. *)

val step : t -> bool
(** Execute the earliest event.  Returns [false] when no events remain. *)

val run : ?until:int -> t -> unit
(** Drain the event queue.  With [~until:h], stops (clock set to [h]) once the
    next event would fire strictly after [h]; events at exactly [h] run. *)

val run_until_empty : t -> unit

val events_executed : t -> int
(** Events fired since {!create}.  When tracing is enabled the engine also
    emits a ["sim-clock"] counter series (virtual clock and queue depth)
    every 4096 events, correlating simulated time with wall time. *)
