type t = {
  mutable clock : int;
  queue : (int * int * (t -> unit)) Heap.t; (* payload: (id, at, action) *)
  scheduled : (int, unit) Hashtbl.t; (* ids in the queue, not yet cancelled *)
  mutable next_id : int;
  mutable executed : int; (* events fired so far *)
}

type handle = int

let create ?(start_time = 0) () =
  {
    clock = start_time;
    queue = Heap.create ();
    scheduled = Hashtbl.create 64;
    next_id = 0;
    executed = 0;
  }

let now t = t.clock

(* Events at the same instant fire in (rank, insertion order): ranks let a
   simulation express that e.g. task completions must be processed before
   task starts scheduled for the same time.  The heap key packs
   (at, rank) into one int; virtual times therefore must stay below 2^59. *)
let max_rank = 3

let pack ~at ~rank = (at lsl 2) lor rank

let schedule ?(rank = 1) t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  if rank < 0 || rank > max_rank then
    invalid_arg "Engine.schedule: rank out of range";
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.push t.queue ~key:(pack ~at ~rank) (id, at, action);
  Hashtbl.replace t.scheduled id ();
  id

let schedule_after ?rank t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule ?rank t ~at:(t.clock + delay) action

(* Cancelling an event that already fired (or was already cancelled) is a
   no-op by design: handles may be kept past the event's lifetime. *)
let cancel t handle = Hashtbl.remove t.scheduled handle

let pending t = Hashtbl.length t.scheduled

(* Pop the next live event, discarding cancelled entries. *)
let rec pop_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some (_, (id, at, action)) ->
      if Hashtbl.mem t.scheduled id then begin
        Hashtbl.remove t.scheduled id;
        Some (at, action)
      end
      else pop_live t

let peek_live t =
  let rec loop () =
    match Heap.peek t.queue with
    | None -> None
    | Some (_, (id, at, _)) ->
        if Hashtbl.mem t.scheduled id then Some at
        else begin
          ignore (Heap.pop t.queue);
          loop ()
        end
  in
  loop ()

let step t =
  match pop_live t with
  | None -> false
  | Some (at, action) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      (* Simulated-vs-wall-clock telemetry: a counter sample every 4096
         events is dense enough to plot and far too sparse to slow the
         untraced loop (one land + branch per event). *)
      if t.executed land 4095 = 0 && Obs.Trace.enabled () then
        Obs.Trace.counter ~cat:"sim" "sim-clock"
          [
            ("sim_ms", float_of_int t.clock);
            ("pending", float_of_int (Hashtbl.length t.scheduled));
          ];
      action t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match peek_live t with
        | Some at when at <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
      done

let run_until_empty t = run t
let events_executed t = t.executed
