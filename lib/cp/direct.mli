(** The {e direct} CP formulation of Table 1: explicit x_tr matchmaking
    variables (here: one resource-choice variable per task) and one
    cumulative constraint {e per resource} — the formulation the paper
    describes first, before §V.D replaces it with the combined-resource
    solve + matchmaking decomposition because "it takes the system with one
    resource about 15 seconds ... on the system with 50 resources it took
    approximately 60 seconds".

    This module exists to reproduce that comparison (`ablation-decomp`):
    same objective, same semantics, but branching must also decide the
    choice variables and per-resource propagation is much weaker.  Closed
    batches only (no frozen tasks). *)

type assignment = {
  solution : Sched.Solution.t;  (** start times (task_id → start) *)
  resource_of : (int, int) Hashtbl.t;  (** task_id → resource index *)
}

type stats = {
  proved_optimal : bool;
  nodes : int;
  failures : int;
  elapsed : float;
}

val solve :
  ?limits:Search.limits ->
  ?kernel:Propagators.kernel ->
  cluster:Mapreduce.Types.resource array ->
  Sched.Instance.t ->
  (assignment option * stats)
(** Branch-and-bound on the direct model.  [kernel] (default
    {!Propagators.Both}) only selects whether the gated cumulative also runs
    the energetic-reasoning failure check ([Edge_finding]/[Both] do).  The objective bound starts at
    (greedy late count + 1), so the search must find its own full
    task-to-resource assignment at least as good as the greedy combined
    schedule — i.e. the direct formulation performs matchmaking and
    scheduling together, which is exactly what makes it slow (§V.D).
    Returns [None] if no solution was found within the limits.
    The instance's combined capacities must equal the cluster totals.
    @raise Invalid_argument on frozen tasks or capacity mismatch. *)
