type policy =
  | Off
  | Luby of int
  | Geometric of { base : int; grow : float }

let default = Luby 128

(* Luby et al.'s universal sequence, 1-indexed: if i = 2^k - 1 the value is
   2^(k-1); otherwise recurse on the position within the repeated prefix. *)
let rec luby i =
  if i < 1 then invalid_arg "Restart.luby";
  let k2 = ref 2 in
  while !k2 - 1 < i do
    k2 := !k2 * 2
  done;
  if !k2 - 1 = i then !k2 / 2 else luby (i - ((!k2 / 2) - 1))

let slice policy k =
  match policy with
  | Off -> 0
  | Luby scale -> scale * luby k
  | Geometric { base; grow } ->
      let b = float_of_int base *. (grow ** float_of_int (k - 1)) in
      if b >= float_of_int max_int then max_int else max 1 (int_of_float b)

let to_string = function
  | Off -> "off"
  | Luby scale -> Printf.sprintf "luby:%d" scale
  | Geometric { base; grow } -> Printf.sprintf "geom:%d:%g" base grow

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "off" ] | [ "none" ] -> Ok Off
  | [ "luby" ] -> Ok default
  | [ "luby"; scale ] -> (
      match int_of_string_opt scale with
      | Some n when n > 0 -> Ok (Luby n)
      | _ -> Error (Printf.sprintf "invalid luby scale %S" scale))
  | [ "geom" ] | [ "geometric" ] -> Ok (Geometric { base = 100; grow = 1.5 })
  | [ ("geom" | "geometric"); base; grow ] -> (
      match (int_of_string_opt base, float_of_string_opt grow) with
      | Some b, Some g when b > 0 && g >= 1.0 ->
          Ok (Geometric { base = b; grow = g })
      | _ -> Error (Printf.sprintf "invalid geometric policy %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown restart policy %S (expected off | luby[:SCALE] | \
            geom[:BASE:GROW])"
           s)

let all_names = [ "off"; "luby"; "luby:SCALE"; "geom:BASE:GROW" ]
