(* Persistent solver session: one store per manager, mutated between
   invocations instead of rebuilt.  See session.mli for the contract and
   the soundness argument of each piece. *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution

type task_state = Pending | Frozen | Retired

type task_slot = {
  t_var : Store.var;
  t_task : T.task;
  t_is_map : bool;
  mutable t_state : task_state;
  (* generation mark: tasks not seen by the current sync have completed *)
  mutable t_gen : int;
}

type job_slot = {
  j_late : Store.var;
  j_tasks : task_slot array;
  mutable j_active : bool;
  mutable j_gen : int;
}

type core = {
  store : Store.t;
  horizon : int;  (* map-start maximum; headroom over the creation need *)
  value_horizon : int;  (* reduce-start / lfmt maximum *)
  map_pool : Propagators.dyn_pool;
  reduce_pool : Propagators.dyn_pool;
  bound : int ref;  (* max_int between searches: the cut is disarmed *)
  objective : Propagators.dyn_sum;
  nogoods : Nogood.t option;
  jobs : (int, job_slot) Hashtbl.t;  (* job id -> slot *)
  tasks : (int, task_slot) Hashtbl.t;  (* task id -> slot *)
  (* previous-solve store counter values, for per-invocation deltas *)
  mutable generation : int;  (* bumped by every sync *)
  mutable last_propagations : int;
  mutable last_wakeups : int;
  mutable last_ng_prunes : int;
  mutable last_scratch : int;
  mutable last_ef : int;
  mutable last_pm : (string * Store.prop_metric) list;
}

(* Persistent optimality certificate.  A proved invocation's "no schedule
   beats [c_bound] late jobs" survives the clock: feasible sets only shrink
   as time advances and frozen prefixes grow (both per dispatched plans),
   and appending never-seen jobs cannot lower the remaining jobs' optimum.
   A certificate job that has since completed weakens the bound by exactly
   its realized lateness — so the carried lower bound for a later instance
   is [c_bound - Σ lateness of departed certificate jobs].  [c_lates] is
   refreshed from every installed plan (proved or not), which keeps the
   recorded (lateness, completion) of each certificate job equal to what
   execution will realize; a certificate job that is absent from the
   instance without having completed (deferred) makes the certificate
   inapplicable for that invocation, not invalid. *)
type cert = {
  c_bound : int;  (* proved minimum number of late jobs of the set below *)
  c_lates : (int, int * int) Hashtbl.t;
      (* certificate job id -> (lateness, completion) under the last
         dispatched plan *)
}

type t = {
  restart : Restart.policy;
  (* realized start per dispatched task: filled from every returned plan and
     every freeze, read when a task leaves the instance (completed) and its
     variable must be fixed at the start it actually ran at *)
  last_starts : (int, int) Hashtbl.t;
  mutable core : core option;
  mutable cert : cert option;
  mutable cert_proofs : int;
  (* jobs that departed with lateness 1: the part of every previously
     recorded nogood bound that is now a realized constant (see
     {!Nogood.refresh}) *)
  mutable departed_late : int;
  mutable retracted : int;
  mutable appended : int;
  mutable rebuilds : int;
  mutable reused : int;
}

let create ~options () =
  {
    restart = options.Solver.restart;
    last_starts = Hashtbl.create 256;
    core = None;
    cert = None;
    cert_proofs = 0;
    departed_late = 0;
    retracted = 0;
    appended = 0;
    rebuilds = 0;
    reused = 0;
  }

let stats_retracted t = t.retracted
let stats_cert_proofs t = t.cert_proofs
let stats_appended_jobs t = t.appended
let stats_rebuilds t = t.rebuilds
let stats_reused_nogoods t = t.reused

(* --- store construction --------------------------------------------------- *)

let make_core restart (inst : Instance.t) =
  let store = Store.create () in
  (* Headroom over the creation instance's need, so later instances fit
     without a rebuild until the workload genuinely outgrows it.  A wider
     domain never changes the optimum: any schedule left-shifts into the
     tight horizon without increasing lateness.  [default_horizon] grows
     with the absolute clock, so the multiplicative factor amortizes
     rebuilds to O(log T) over an open stream, and the additive floor keeps
     short-horizon streams (tests, small simulations) from ever rebuilding
     just because the clock ticked past an idle stretch. *)
  let horizon = (4 * Model.default_horizon inst) + 65_536 in
  let value_horizon = 2 * horizon in
  let bound = ref max_int in
  let nogoods =
    if restart = Restart.Off then None
    else begin
      let db = Nogood.create () in
      Nogood.attach db store ~vars:[||];
      (* armed only inside a search's guard level: root syncs mutate the
         store with no objective bound in force *)
      Nogood.set_armed db false;
      Some db
    end
  in
  {
    store;
    horizon;
    value_horizon;
    map_pool =
      Propagators.cumulative_dyn store ~capacity:inst.Instance.map_capacity;
    reduce_pool =
      Propagators.cumulative_dyn store ~capacity:inst.Instance.reduce_capacity;
    bound;
    objective = Propagators.sum_lt_bound_dyn store ~bound;
    nogoods;
    jobs = Hashtbl.create 64;
    tasks = Hashtbl.create 256;
    generation = 0;
    last_propagations = 0;
    last_wakeups = 0;
    last_ng_prunes = 0;
    last_scratch = 0;
    last_ef = 0;
    last_pm = [];
  }

(* Append one job's constraint block — the Table-1 rows of Model.build, with
   two differences: frozen tasks become root-fixed variables (so they live
   in the same dynamic pool registries their pending siblings do), and the
   pool/objective propagators are the session's dynamic registries. *)
let append_job t core (pj : Instance.pending_job) =
  let s = core.store in
  let est = pj.Instance.est in
  let gen = core.generation in
  let mk_pending ~is_map ~vmax (task : T.task) =
    {
      t_var = Store.new_var s ~min:est ~max:vmax;
      t_task = task;
      t_is_map = is_map;
      t_state = Pending;
      t_gen = gen;
    }
  in
  let mk_fixed ~is_map (f : Instance.fixed_task) =
    Hashtbl.replace t.last_starts f.Instance.task.T.task_id f.Instance.start;
    {
      t_var = Store.new_var s ~min:f.Instance.start ~max:f.Instance.start;
      t_task = f.Instance.task;
      t_is_map = is_map;
      t_state = Frozen;
      t_gen = gen;
    }
  in
  let maps =
    Array.append
      (Array.map (mk_pending ~is_map:true ~vmax:core.horizon)
         pj.Instance.pending_maps)
      (Array.map (mk_fixed ~is_map:true) pj.Instance.fixed_maps)
  in
  let lfmt = Store.new_var s ~min:0 ~max:core.value_horizon in
  Propagators.max_of s ~result:lfmt
    ~terms:
      (Array.to_list
         (Array.map (fun sl -> (sl.t_var, sl.t_task.T.exec_time)) maps))
    ~floor:(max pj.Instance.frozen_lfmt est);
  let pending_reduces =
    Array.map
      (mk_pending ~is_map:false ~vmax:core.value_horizon)
      pj.Instance.pending_reduces
  in
  (* precedence (3) only for movable reduces: a frozen reduce already ran
     after its maps, and re-imposing lfmt <= start on a fixed variable could
     only fail spuriously *)
  Array.iter
    (fun sl -> Propagators.ge_offset s sl.t_var lfmt 0)
    pending_reduces;
  let reduces =
    Array.append pending_reduces
      (Array.map (mk_fixed ~is_map:false) pj.Instance.fixed_reduces)
  in
  let completion = Store.new_var s ~min:0 ~max:(2 * core.value_horizon) in
  Propagators.max_of s ~result:completion
    ~terms:
      ((lfmt, 0)
      :: Array.to_list
           (Array.map (fun sl -> (sl.t_var, sl.t_task.T.exec_time)) reduces))
    ~floor:pj.Instance.frozen_completion;
  let late = Store.new_var s ~min:0 ~max:1 in
  Propagators.lateness s ~late ~completion
    ~deadline:pj.Instance.job.T.deadline;
  Propagators.dyn_sum_add core.objective s late;
  let slot =
    {
      j_late = late;
      j_tasks = Array.append maps reduces;
      j_active = true;
      j_gen = gen;
    }
  in
  Array.iter
    (fun sl ->
      Hashtbl.replace core.tasks sl.t_task.T.task_id sl;
      let pool = if sl.t_is_map then core.map_pool else core.reduce_pool in
      Propagators.dyn_add pool s
        {
          Propagators.start = sl.t_var;
          duration = sl.t_task.T.exec_time;
          demand = sl.t_task.T.capacity_req;
        })
    slot.j_tasks;
  Hashtbl.replace core.jobs pj.Instance.job.T.id slot;
  t.appended <- t.appended + 1

(* A task left the instance: it completed.  Fix its variable at the start it
   actually ran at (always inside the root domain: the plan that dispatched
   it was a solution of this very store) and remove it from its pool
   registry — its execution window ends at or before [now], every pending
   est is at least [now], so the removal never loosens the profile any
   still-movable task sees. *)
let retire_task t core sl =
  if sl.t_state <> Retired then begin
    let s = core.store in
    (match Hashtbl.find_opt t.last_starts sl.t_task.T.task_id with
    | Some start ->
        Store.fix s sl.t_var start;
        Hashtbl.remove t.last_starts sl.t_task.T.task_id
    | None -> raise (Store.Fail "session: completed task has no known start"));
    let pool = if sl.t_is_map then core.map_pool else core.reduce_pool in
    Propagators.dyn_retire pool s sl.t_var;
    sl.t_state <- Retired;
    t.retracted <- t.retracted + 1
  end

(* Diff one already-known job against its instance row: bump pending ests
   (est = max(s_j, now) only grows), fix newly frozen tasks at their
   dispatched starts, retire tasks that no longer appear (completed). *)
let sync_job t core (pj : Instance.pending_job) slot =
  let s = core.store in
  let est = pj.Instance.est in
  let gen = core.generation in
  let bump (task : T.task) =
    let sl = Hashtbl.find core.tasks task.T.task_id in
    sl.t_gen <- gen;
    Store.set_min s sl.t_var est
  in
  Array.iter bump pj.Instance.pending_maps;
  Array.iter bump pj.Instance.pending_reduces;
  let freeze (f : Instance.fixed_task) =
    let id = f.Instance.task.T.task_id in
    let sl = Hashtbl.find core.tasks id in
    sl.t_gen <- gen;
    if sl.t_state = Pending then begin
      Store.fix s sl.t_var f.Instance.start;
      Hashtbl.replace t.last_starts id f.Instance.start;
      sl.t_state <- Frozen
    end
  in
  Array.iter freeze pj.Instance.fixed_maps;
  Array.iter freeze pj.Instance.fixed_reduces;
  Array.iter
    (fun sl -> if sl.t_gen <> gen then retire_task t core sl)
    slot.j_tasks

let fresh_core t inst =
  let core = make_core t.restart inst in
  Array.iter (fun pj -> append_job t core pj) inst.Instance.jobs;
  Store.propagate core.store;
  t.core <- Some core;
  core

(* Bring the persistent store in line with the invocation's instance.  Any
   root failure during the diff — a horizon outgrown, a realized start
   outside its domain (which would indicate a propagator bug, but must not
   take the manager down) — falls back to rebuilding from scratch, which is
   exactly a cold solve's store. *)
let sync t (inst : Instance.t) =
  let apply core =
    core.generation <- core.generation + 1;
    Array.iter
      (fun (pj : Instance.pending_job) ->
        match Hashtbl.find_opt core.jobs pj.Instance.job.T.id with
        | None -> append_job t core pj
        | Some slot ->
            slot.j_gen <- core.generation;
            sync_job t core pj slot)
      inst.Instance.jobs;
    let departed = ref [] in
    Hashtbl.iter
      (fun _ slot ->
        if slot.j_active && slot.j_gen <> core.generation then
          departed := slot :: !departed)
      core.jobs;
    List.iter
      (fun slot -> Array.iter (retire_task t core) slot.j_tasks)
      !departed;
    Store.propagate core.store;
    if !departed <> [] then begin
      List.iter
        (fun slot ->
          (* with every task fixed, propagation fixed the completion chain
             and hence the lateness variable *)
          if not (Store.is_fixed core.store slot.j_late) then
            raise (Store.Fail "session: departed job with open lateness");
          t.departed_late <-
            t.departed_late + Store.value core.store slot.j_late;
          Propagators.dyn_sum_remove core.objective core.store slot.j_late;
          slot.j_active <- false)
        !departed;
      Store.propagate core.store
    end
  in
  match t.core with
  | Some core when Model.default_horizon inst <= core.horizon -> (
      try
        apply core;
        core
      with Store.Fail _ ->
        t.rebuilds <- t.rebuilds + 1;
        fresh_core t inst)
  | Some _ ->
      t.rebuilds <- t.rebuilds + 1;
      fresh_core t inst
  | None -> fresh_core t inst

(* --- telemetry ------------------------------------------------------------ *)

let harvest registry core =
  let s = core.store in
  let count name v = Obs.Metrics.add (Obs.Metrics.counter registry name) v in
  count "store/propagations"
    (Store.stats_propagations s - core.last_propagations);
  core.last_propagations <- Store.stats_propagations s;
  count "prop/wakeups_skipped"
    (Store.stats_wakeups_skipped s - core.last_wakeups);
  core.last_wakeups <- Store.stats_wakeups_skipped s;
  count "prop/scratch_reuse" (Store.stats_scratch_reuse s - core.last_scratch);
  core.last_scratch <- Store.stats_scratch_reuse s;
  count "prop/edge_finder_prunes"
    (Store.stats_edge_finder_prunes s - core.last_ef);
  core.last_ef <- Store.stats_edge_finder_prunes s;
  count "nogood/prunes" (Store.stats_nogood_prunes s - core.last_ng_prunes);
  core.last_ng_prunes <- Store.stats_nogood_prunes s;
  if Store.instrumented s then begin
    let pms = Store.propagator_metrics s in
    List.iter
      (fun (pm : Store.prop_metric) ->
        let fires0, fails0, time0 =
          match List.assoc_opt pm.Store.prop_name core.last_pm with
          | Some p -> (p.Store.fires, p.Store.fails, p.Store.time_s)
          | None -> (0, 0, 0.)
        in
        let pfx = "prop/" ^ pm.Store.prop_name in
        count (pfx ^ "/fires") (pm.Store.fires - fires0);
        count (pfx ^ "/fails") (pm.Store.fails - fails0);
        Obs.Metrics.observe
          (Obs.Metrics.histogram registry (pfx ^ "/time_s"))
          (pm.Store.time_s -. time0))
      pms;
    core.last_pm <-
      List.map (fun (pm : Store.prop_metric) -> (pm.Store.prop_name, pm)) pms
  end

(* --- persistent optimality certificate ------------------------------------ *)

(* Lower bound the certificate yields for [inst]: [c_bound] minus the
   realized lateness of certificate jobs that have completed and left.
   [min_int] when there is no certificate or it is inapplicable (a
   certificate job absent without a completion on record). *)
let cert_lower_bound t (inst : Instance.t) =
  match t.cert with
  | None -> min_int
  | Some c ->
      let present = Hashtbl.create 64 in
      Array.iter
        (fun (pj : Instance.pending_job) ->
          Hashtbl.replace present pj.Instance.job.T.id ())
        inst.Instance.jobs;
      let bound = ref c.c_bound and applicable = ref true in
      Hashtbl.iter
        (fun id (late, completion) ->
          if not (Hashtbl.mem present id) then
            if completion <= inst.Instance.now then bound := !bound - late
            else applicable := false)
        c.c_lates;
      (* jobs outside the certificate set add their solo dooms: a job that
         cannot meet its deadline even alone is late in every schedule,
         independently of the certificate jobs — the two bounds add *)
      Array.iter
        (fun (pj : Instance.pending_job) ->
          if
            (not (Hashtbl.mem c.c_lates pj.Instance.job.T.id))
            && Solver.job_doomed inst pj
          then incr bound)
        inst.Instance.jobs;
      if !applicable then !bound else min_int

(* Record what the plan being installed means for each job: its lateness
   and completion under that plan.  A proved solve re-grounds the whole
   certificate on the instance; an unproved one may only refresh recorded
   jobs (the proof does not cover newcomers). *)
let update_cert t ~proved (inst : Instance.t) (sol : Solution.t) =
  let entry (pj : Instance.pending_job) =
    let completion = Solution.job_completion pj sol.Solution.starts in
    let late = if completion > pj.Instance.job.T.deadline then 1 else 0 in
    (late, completion)
  in
  if proved then begin
    let lates = Hashtbl.create 64 in
    Array.iter
      (fun (pj : Instance.pending_job) ->
        Hashtbl.replace lates pj.Instance.job.T.id (entry pj))
      inst.Instance.jobs;
    t.cert <- Some { c_bound = sol.Solution.late_jobs; c_lates = lates }
  end
  else
    match t.cert with
    | None -> ()
    | Some c ->
        Array.iter
          (fun (pj : Instance.pending_job) ->
            let id = pj.Instance.job.T.id in
            if Hashtbl.mem c.c_lates id then
              Hashtbl.replace c.c_lates id (entry pj))
          inst.Instance.jobs

(* --- the solve ------------------------------------------------------------ *)

let solve t ~options (inst : Instance.t) =
  let t0 = Obs.Clock.now () in
  let words0 = Gc.minor_words () in
  let registry =
    if options.Solver.instrument then Some (Obs.Metrics.create ()) else None
  in
  let retracted0 = t.retracted
  and appended0 = t.appended
  and rebuilds0 = t.rebuilds
  and reused0 = t.reused
  and cert0 = t.cert_proofs in
  let lb_classic = Solver.late_lower_bound inst in
  let lb = max lb_classic (cert_lower_bound t inst) in
  let seed, warm_seeded = Solver.starting_incumbent ~options ~lb inst in
  (* every dispatched plan is a future fix point for its tasks: remember it *)
  let remember (sol : Solution.t) =
    let note (task : T.task) =
      match Hashtbl.find_opt sol.Solution.starts task.T.task_id with
      | Some st -> Hashtbl.replace t.last_starts task.T.task_id st
      | None -> ()
    in
    Array.iter
      (fun (pj : Instance.pending_job) ->
        Array.iter note pj.Instance.pending_maps;
        Array.iter note pj.Instance.pending_reduces)
      inst.Instance.jobs
  in
  let session_metrics ~core () =
    match registry with
    | None -> None
    | Some r ->
        let count name v = Obs.Metrics.add (Obs.Metrics.counter r name) v in
        count "session/retracted" (t.retracted - retracted0);
        count "session/appended_jobs" (t.appended - appended0);
        count "session/rebuilds" (t.rebuilds - rebuilds0);
        count "session/reused_nogoods" (t.reused - reused0);
        count "session/cert_proofs" (t.cert_proofs - cert0);
        count "store/words_allocated"
          (int_of_float (Gc.minor_words () -. words0));
        (match core with Some core -> harvest r core | None -> ());
        Some (Obs.Metrics.snapshot r)
  in
  let finish ?(core = None) ?(nodes = 0) ?(failures = 0) ?(restarts = 0)
      ~proved ~stop incumbent =
    remember incumbent;
    update_cert t ~proved inst incumbent;
    ( incumbent,
      {
        Obs.Solve_stats.seed_late = seed.Solution.late_jobs;
        lower_bound = lb;
        proved_optimal = proved;
        warm_seeded;
        stop_reason = stop;
        nodes;
        failures;
        restarts;
        lns_moves = 0;
        elapsed = Obs.Clock.now () -. t0;
        metrics = session_metrics ~core ();
      } )
  in
  (* Laziness mirrors the cold pipeline: a seed-optimal invocation never
     touches any model there, so it must not pay a store sync here either
     ([remember] keeps enough — the realized starts — for a later sync to
     retire whatever completed in between; [sync] is a diff against the
     instance, not an event log, so skipped invocations simply fold into
     the next one's diff). *)
  if seed.Solution.late_jobs <= lb then begin
    (* proofs the classic bound alone could not have delivered *)
    let via_cert = seed.Solution.late_jobs > lb_classic in
    if via_cert then t.cert_proofs <- t.cert_proofs + 1;
    finish ~proved:true
      ~stop:
        (if via_cert then Obs.Solve_stats.Hit_carried_bound
         else if warm_seeded then Obs.Solve_stats.Cache_hit
         else Obs.Solve_stats.Proved)
      seed
  end
  else if
    Instance.pending_task_count inst > options.Solver.exact_task_limit
  then begin
    (* LNS regime: the neighbourhood moves each solve their own fragment
       models — nothing for the persistent store to carry.  Fall back to the
       ephemeral pipeline for this invocation without syncing. *)
    let sol, st = Solver.solve_linked ~options ~link:Solver.null_link inst in
    remember sol;
    update_cert t ~proved:st.Obs.Solve_stats.proved_optimal inst sol;
    let st =
      match session_metrics ~core:None () with
      | None -> st
      | Some snap ->
          {
            st with
            Obs.Solve_stats.metrics =
              Some
                (match st.Obs.Solve_stats.metrics with
                | None -> snap
                | Some m -> Obs.Metrics.merge m snap);
          }
    in
    (sol, st)
  end
  else begin
    let core = sync t inst in
    if options.Solver.instrument && not (Store.instrumented core.store) then
      Store.set_instrumented core.store true;
    let s = core.store in
    (* search views in the cold model's ordering: instance job order, each
       job's pending maps then pending reduces *)
    let lates =
      Array.map
        (fun (pj : Instance.pending_job) ->
          ( (Hashtbl.find core.jobs pj.Instance.job.T.id).j_late,
            pj.Instance.job.T.deadline ))
        inst.Instance.jobs
    in
    let infos = ref []
    and pairs = ref []
    and guides = ref [] in
    Array.iter
      (fun (pj : Instance.pending_job) ->
        let add (task : T.task) =
          let sl = Hashtbl.find core.tasks task.T.task_id in
          infos :=
            {
              Search.svar = sl.t_var;
              duration = task.T.exec_time;
              deadline = pj.Instance.job.T.deadline;
            }
            :: !infos;
          pairs := (task.T.task_id, sl.t_var) :: !pairs;
          guides :=
            (match Hashtbl.find_opt seed.Solution.starts task.T.task_id with
            | Some g -> g
            | None -> min_int)
            :: !guides
        in
        Array.iter add pj.Instance.pending_maps;
        Array.iter add pj.Instance.pending_reduces)
      inst.Instance.jobs;
    let starts = Array.of_list (List.rev !infos) in
    let pairs = Array.of_list (List.rev !pairs) in
    let guide = Array.of_list (List.rev !guides) in
    let late_vrefs = Array.map fst lates in
    let start_vrefs =
      Array.map (fun (i : Search.start_info) -> i.Search.svar) starts
    in
    let extract () =
      let m = Hashtbl.create (Array.length pairs) in
      Array.iter (fun (id, v) -> Hashtbl.replace m id (Store.value s v)) pairs;
      let sol = Solution.evaluate inst m in
      (sol, sol.Solution.late_jobs)
    in
    (* Everything objective-relative — the armed bound, committed nogood
       watches and unit assertions — lives inside this guard level, so
       nothing of it survives into the root the next sync mutates. *)
    core.bound := seed.Solution.late_jobs;
    Store.push_level s;
    let hit_lb = ref false in
    let proved_by_nogood = ref false in
    (match core.nogoods with
    | Some db when options.Solver.restart <> Restart.Off ->
        Nogood.grow_vars db ~vars:(Array.init (Store.num_vars s) Fun.id);
        Nogood.refresh db ~departed_late:t.departed_late
          ~initial_bound:seed.Solution.late_jobs;
        t.reused <- t.reused + Nogood.size db;
        Nogood.set_armed db true;
        (try Nogood.commit db
         with Store.Fail _ ->
           (* a carried clause is violated before the search even starts:
              no solution beats the seed — a free optimality proof *)
           proved_by_nogood := true)
    | _ -> ());
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          (match core.nogoods with
          | Some db -> Nogood.set_armed db false
          | None -> ());
          Store.backtrack_to s 0;
          core.bound := max_int)
        (fun () ->
          if !proved_by_nogood then
            ({
               Search.best = None;
               proved_optimal = true;
               stopped = Search.Exhausted;
               nodes = 0;
               failures = 1;
               restarts = 0;
             }
              : Solution.t Search.generic_outcome)
          else begin
            Store.schedule s (Propagators.dyn_sum_pid core.objective);
            let problem =
              {
                Search.store = s;
                starts;
                lates;
                bound = core.bound;
                bound_pid = Propagators.dyn_sum_pid core.objective;
                extract;
              }
            in
            (* the carried certificate gives this search a bound the cold
               pipeline does not have: an improving solution that reaches
               [lb] is optimal, so stop there instead of exhausting the
               rest of the tree to prove what the certificate already
               knows *)
            let limits =
              {
                Search.fail_limit = options.Solver.fail_limit;
                node_limit = 0;
                wall_deadline = Some (t0 +. options.Solver.time_limit);
                interrupt = Some (fun () -> !hit_lb);
                tighten_bound = None;
                on_improve = Some (fun v -> if v <= lb then hit_lb := true);
              }
            in
            Search.run_problem ~tie_break:options.Solver.tie_break
              ~restart:options.Solver.restart ?nogoods:core.nogoods ~guide
              ~late_vrefs ~start_vrefs problem limits
          end)
    in
    let incumbent =
      match outcome.Search.best with Some b -> b | None -> seed
    in
    (* an incumbent meeting [lb] is optimal even when the search was cut
       short by [hit_lb] before exhausting the tree *)
    let proved =
      outcome.Search.proved_optimal || incumbent.Solution.late_jobs <= lb
    in
    let via_cert =
      proved
      && (not outcome.Search.proved_optimal)
      && incumbent.Solution.late_jobs > lb_classic
    in
    if via_cert then t.cert_proofs <- t.cert_proofs + 1;
    let stop =
      if via_cert then Obs.Solve_stats.Hit_carried_bound
      else if proved then Obs.Solve_stats.Proved
      else Search.stop_reason_of_cause outcome.Search.stopped
    in
    finish ~core:(Some core) ~nodes:outcome.Search.nodes
      ~failures:outcome.Search.failures ~restarts:outcome.Search.restarts
      ~proved ~stop incumbent
  end
