type term = { start : Store.var; duration : int; demand : int }

let ge_offset s y x c =
  let pid =
    Store.register s ~priority:0 ~name:"ge_offset" (fun s ->
        Store.set_min s y (Store.min_of s x + c);
        Store.set_max s x (Store.max_of s y - c))
  in
  Store.watch s x pid;
  Store.watch s y pid;
  Store.schedule s pid

let precedence s ~before ~duration ~after = ge_offset s after before duration

let max_of s ~result ~terms ~floor =
  match terms with
  | [] ->
      (* result is the constant floor *)
      let pid =
        Store.register s ~priority:0 ~name:"max_of" (fun s ->
            Store.set_min s result floor;
            Store.set_max s result floor)
      in
      Store.schedule s pid
  | _ ->
      let pid =
        Store.register s ~priority:1 ~name:"max_of" (fun s ->
            (* result >= every term and >= floor *)
            Store.set_min s result floor;
            let max_min = ref floor and max_max = ref floor in
            List.iter
              (fun (x, c) ->
                let mn = Store.min_of s x + c and mx = Store.max_of s x + c in
                if mn > !max_min then max_min := mn;
                if mx > !max_max then max_max := mx)
              terms;
            Store.set_min s result !max_min;
            Store.set_max s result !max_max;
            (* every term <= result *)
            let ub = Store.max_of s result in
            List.iter (fun (x, c) -> Store.set_max s x (ub - c)) terms)
      in
      List.iter (fun (x, _) -> Store.watch s x pid) terms;
      Store.watch s result pid;
      Store.schedule s pid

let lateness s ~late ~completion ~deadline =
  let pid =
    Store.register s ~priority:0 ~name:"lateness" (fun s ->
        if Store.min_of s completion > deadline then Store.set_min s late 1;
        if Store.max_of s late = 0 then Store.set_max s completion deadline;
        if Store.max_of s completion <= deadline then Store.set_max s late 0)
  in
  Store.watch s completion pid;
  Store.watch s late pid;
  Store.schedule s pid

let sum_lt_bound s ~vars ~bound =
  let pid_ref = ref None in
  let pid =
    Store.register s ~priority:0 ~name:"sum_lt_bound" (fun s ->
        let sum_min = Array.fold_left (fun acc v -> acc + Store.min_of s v) 0 vars in
        if sum_min >= !bound then raise (Store.Fail "objective bound");
        if sum_min = !bound - 1 then
          (* no slack left: every undecided job must meet its deadline *)
          Array.iter
            (fun v -> if Store.min_of s v = 0 then Store.set_max s v 0)
            vars)
  in
  pid_ref := Some pid;
  Array.iter (fun v -> Store.watch s v pid) vars;
  Store.schedule s pid;
  pid

(* --- time-table cumulative ------------------------------------------------ *)

(* One propagator instance keeps scratch buffers to avoid reallocation. *)
let cumulative s ~tasks ~fixed ~capacity =
  if capacity <= 0 then invalid_arg "cumulative: capacity must be positive";
  Array.iter
    (fun t ->
      if t.duration < 0 || t.demand < 0 then
        invalid_arg "cumulative: negative duration/demand";
      if t.demand > capacity then raise (Store.Fail "task demand > capacity"))
    tasks;
  let n = Array.length tasks in
  (* events of the frozen tasks never change: precompute *)
  let fixed_events =
    Array.to_list fixed
    |> List.concat_map (fun (start, duration, demand) ->
           if duration > 0 && demand > 0 then
             [ (start, demand); (start + duration, -demand) ]
           else [])
  in
  let run s =
    (* 1. collect compulsory parts *)
    let events = ref fixed_events in
    let comp_lo = Array.make n 0 and comp_hi = Array.make n 0 in
    for i = 0 to n - 1 do
      let t = tasks.(i) in
      if t.duration > 0 && t.demand > 0 then begin
        let est = Store.min_of s t.start and lst = Store.max_of s t.start in
        let lo = lst and hi = est + t.duration in
        if lo < hi then begin
          comp_lo.(i) <- lo;
          comp_hi.(i) <- hi;
          events := (lo, t.demand) :: (hi, -t.demand) :: !events
        end
        else begin
          comp_lo.(i) <- max_int;
          comp_hi.(i) <- max_int
        end
      end
      else begin
        comp_lo.(i) <- max_int;
        comp_hi.(i) <- max_int
      end
    done;
    (* 2. sweep into a step profile *)
    let events = Array.of_list !events in
    Array.sort (fun (a, _) (b, _) -> compare a b) events;
    let ne = Array.length events in
    (* segments: (seg_start, seg_end, usage), usage > 0 only *)
    let seg_start = ref [] in
    let i = ref 0 in
    let usage = ref 0 in
    while !i < ne do
      let time = fst events.(!i) in
      while !i < ne && fst events.(!i) = time do
        usage := !usage + snd events.(!i);
        incr i
      done;
      if !usage > capacity then raise (Store.Fail "cumulative overload");
      let next = if !i < ne then fst events.(!i) else max_int in
      if !usage > 0 && next > time then
        seg_start := (time, next, !usage) :: !seg_start
    done;
    let segments = Array.of_list (List.rev !seg_start) in
    let nseg = Array.length segments in
    if nseg > 0 then begin
      (* 3. prune: for each task, push est right (and lst left) past segments
         where the remaining capacity cannot fit its demand.  A task's own
         compulsory contribution is subtracted before testing. *)
      for t = 0 to n - 1 do
        let task = tasks.(t) in
        if task.duration > 0 && task.demand > 0
           && not (Store.is_fixed s task.start)
        then begin
          let own_lo = comp_lo.(t) and own_hi = comp_hi.(t) in
          let overloaded (a, b, u) =
            let u =
              if own_lo < b && own_hi > a then u - task.demand else u
            in
            u + task.demand > capacity
          in
          (* min side *)
          let est = ref (Store.min_of s task.start) in
          for k = 0 to nseg - 1 do
            let (a, b, _) = segments.(k) in
            if
              a < !est + task.duration && b > !est
              && overloaded segments.(k)
            then est := b
          done;
          Store.set_min s task.start !est;
          (* max side (mirror, sweep right to left) *)
          let lst = ref (Store.max_of s task.start) in
          for k = nseg - 1 downto 0 do
            let (a, b, _) = segments.(k) in
            if
              a < !lst + task.duration && b > !lst
              && overloaded segments.(k)
            then lst := a - task.duration
          done;
          Store.set_max s task.start !lst
        end
      done
    end
  in
  let pid = Store.register s ~priority:2 ~name:"cumulative" run in
  Array.iter (fun t -> Store.watch s t.start pid) tasks;
  Store.schedule s pid

(* --- per-resource cumulative gated on assignment variables --------------- *)

type gated = {
  g_start : Store.var;
  g_duration : int;
  g_demand : int;
  g_member : Store.var;
  g_value : int;
}

let cumulative_gated s ~tasks ~capacity =
  if capacity <= 0 then invalid_arg "cumulative_gated: capacity must be > 0";
  let n = Array.length tasks in
  let run s =
    (* members: tasks whose choice variable is fixed to this resource *)
    let events = ref [] in
    let comp_lo = Array.make n max_int and comp_hi = Array.make n max_int in
    let member = Array.make n false in
    for i = 0 to n - 1 do
      let t = tasks.(i) in
      if
        Store.is_fixed s t.g_member
        && Store.value s t.g_member = t.g_value
        && t.g_duration > 0 && t.g_demand > 0
      then begin
        member.(i) <- true;
        let est = Store.min_of s t.g_start and lst = Store.max_of s t.g_start in
        let lo = lst and hi = est + t.g_duration in
        if lo < hi then begin
          comp_lo.(i) <- lo;
          comp_hi.(i) <- hi;
          events := (lo, t.g_demand) :: (hi, -t.g_demand) :: !events
        end
      end
    done;
    let events = Array.of_list !events in
    Array.sort (fun (a, _) (b, _) -> compare a b) events;
    let ne = Array.length events in
    let segs = ref [] in
    let i = ref 0 and usage = ref 0 in
    while !i < ne do
      let time = fst events.(!i) in
      while !i < ne && fst events.(!i) = time do
        usage := !usage + snd events.(!i);
        incr i
      done;
      if !usage > capacity then raise (Store.Fail "gated cumulative overload");
      let next = if !i < ne then fst events.(!i) else max_int in
      if !usage > 0 && next > time then segs := (time, next, !usage) :: !segs
    done;
    let segments = Array.of_list (List.rev !segs) in
    let nseg = Array.length segments in
    if nseg > 0 then
      for t = 0 to n - 1 do
        let task = tasks.(t) in
        if member.(t) && not (Store.is_fixed s task.g_start) then begin
          let own_lo = comp_lo.(t) and own_hi = comp_hi.(t) in
          let overloaded (a, b, u) =
            let u = if own_lo < b && own_hi > a then u - task.g_demand else u in
            u + task.g_demand > capacity
          in
          let est = ref (Store.min_of s task.g_start) in
          for k = 0 to nseg - 1 do
            let (a, b, _) = segments.(k) in
            if a < !est + task.g_duration && b > !est && overloaded segments.(k)
            then est := b
          done;
          Store.set_min s task.g_start !est;
          let lst = ref (Store.max_of s task.g_start) in
          for k = nseg - 1 downto 0 do
            let (a, b, _) = segments.(k) in
            if a < !lst + task.g_duration && b > !lst && overloaded segments.(k)
            then lst := a - task.g_duration
          done;
          Store.set_max s task.g_start !lst
        end
      done
  in
  let pid = Store.register s ~priority:2 ~name:"cumulative_gated" run in
  Array.iter
    (fun t ->
      Store.watch s t.g_start pid;
      Store.watch s t.g_member pid)
    tasks;
  Store.schedule s pid
