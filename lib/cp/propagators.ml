type term = { start : Store.var; duration : int; demand : int }

type kernel = Naive | Timetable | Edge_finding | Both

let kernel_to_string = function
  | Naive -> "naive"
  | Timetable -> "timetable"
  | Edge_finding -> "edge-finding"
  | Both -> "both"

let kernel_of_string = function
  | "naive" -> Some Naive
  | "timetable" -> Some Timetable
  | "edge-finding" | "edge_finding" -> Some Edge_finding
  | "both" -> Some Both
  | _ -> None

let all_kernels = [ Naive; Timetable; Edge_finding; Both ]

let ge_offset s y x c =
  let pid =
    Store.register s ~priority:0 ~name:"ge_offset" ~idempotent:true (fun s ->
        Store.set_min s y (Store.min_of s x + c);
        Store.set_max s x (Store.max_of s y - c))
  in
  (* the rule only reads x's lower and y's upper bound *)
  Store.watch_min s x pid;
  Store.watch_max s y pid;
  Store.schedule s pid

let precedence s ~before ~duration ~after = ge_offset s after before duration

let max_of s ~result ~terms ~floor =
  match terms with
  | [] ->
      (* result is the constant floor *)
      let pid =
        Store.register s ~priority:0 ~name:"max_of" ~idempotent:true (fun s ->
            Store.set_min s result floor;
            Store.set_max s result floor)
      in
      Store.schedule s pid
  | _ ->
      let pid =
        Store.register s ~priority:1 ~name:"max_of" ~idempotent:true (fun s ->
            (* result >= every term and >= floor *)
            Store.set_min s result floor;
            let max_min = ref floor and max_max = ref floor in
            List.iter
              (fun (x, c) ->
                let mn = Store.min_of s x + c and mx = Store.max_of s x + c in
                if mn > !max_min then max_min := mn;
                if mx > !max_max then max_max := mx)
              terms;
            Store.set_min s result !max_min;
            Store.set_max s result !max_max;
            (* every term <= result *)
            let ub = Store.max_of s result in
            List.iter (fun (x, c) -> Store.set_max s x (ub - c)) terms)
      in
      (* reads both bounds of the terms but only result's upper bound (no
         rule propagates from result's min back to the terms) *)
      List.iter (fun (x, _) -> Store.watch s x pid) terms;
      Store.watch_max s result pid;
      Store.schedule s pid

let lateness s ~late ~completion ~deadline =
  let pid =
    Store.register s ~priority:0 ~name:"lateness" ~idempotent:true (fun s ->
        if Store.min_of s completion > deadline then Store.set_min s late 1;
        if Store.max_of s late = 0 then Store.set_max s completion deadline;
        if Store.max_of s completion <= deadline then Store.set_max s late 0)
  in
  (* reads completion's min and max, but only late's upper bound *)
  Store.watch s completion pid;
  Store.watch_max s late pid;
  Store.schedule s pid

let sum_lt_bound s ~vars ~bound =
  let pid =
    Store.register s ~priority:0 ~name:"sum_lt_bound" ~idempotent:true (fun s ->
        let sum_min = Array.fold_left (fun acc v -> acc + Store.min_of s v) 0 vars in
        if sum_min >= !bound then raise (Store.Fail "objective bound");
        if sum_min = !bound - 1 then
          (* no slack left: every undecided job must meet its deadline *)
          Array.iter
            (fun v -> if Store.min_of s v = 0 then Store.set_max s v 0)
            vars)
  in
  (* only the lower bounds enter the sum *)
  Array.iter (fun v -> Store.watch_min s v pid) vars;
  Store.schedule s pid;
  pid

(* --- time-table cumulative ------------------------------------------------ *)

let check_cumulative_args ~tasks ~capacity =
  if capacity <= 0 then invalid_arg "cumulative: capacity must be positive";
  Array.iter
    (fun t ->
      if t.duration < 0 || t.demand < 0 then
        invalid_arg "cumulative: negative duration/demand";
      if t.demand > capacity then raise (Store.Fail "task demand > capacity"))
    tasks

(* Reference kernel, kept verbatim as the [Naive] baseline for differential
   tests and benchmarks: rebuilds the profile with list allocation and a
   full O(n log n) sort on every run.  [cumulative] below computes the same
   fixpoint without allocating. *)
let cumulative_naive s ~tasks ~fixed ~capacity =
  check_cumulative_args ~tasks ~capacity;
  let n = Array.length tasks in
  (* events of the frozen tasks never change: precompute *)
  let fixed_events =
    Array.to_list fixed
    |> List.concat_map (fun (start, duration, demand) ->
           if duration > 0 && demand > 0 then
             [ (start, demand); (start + duration, -demand) ]
           else [])
  in
  let run s =
    (* 1. collect compulsory parts *)
    let events = ref fixed_events in
    let comp_lo = Array.make n 0 and comp_hi = Array.make n 0 in
    for i = 0 to n - 1 do
      let t = tasks.(i) in
      if t.duration > 0 && t.demand > 0 then begin
        let est = Store.min_of s t.start and lst = Store.max_of s t.start in
        let lo = lst and hi = est + t.duration in
        if lo < hi then begin
          comp_lo.(i) <- lo;
          comp_hi.(i) <- hi;
          events := (lo, t.demand) :: (hi, -t.demand) :: !events
        end
        else begin
          comp_lo.(i) <- max_int;
          comp_hi.(i) <- max_int
        end
      end
      else begin
        comp_lo.(i) <- max_int;
        comp_hi.(i) <- max_int
      end
    done;
    (* 2. sweep into a step profile *)
    let events = Array.of_list !events in
    Array.sort (fun (a, _) (b, _) -> compare a b) events;
    let ne = Array.length events in
    (* segments: (seg_start, seg_end, usage), usage > 0 only *)
    let seg_start = ref [] in
    let i = ref 0 in
    let usage = ref 0 in
    while !i < ne do
      let time = fst events.(!i) in
      while !i < ne && fst events.(!i) = time do
        usage := !usage + snd events.(!i);
        incr i
      done;
      if !usage > capacity then raise (Store.Fail "cumulative overload");
      let next = if !i < ne then fst events.(!i) else max_int in
      if !usage > 0 && next > time then
        seg_start := (time, next, !usage) :: !seg_start
    done;
    let segments = Array.of_list (List.rev !seg_start) in
    let nseg = Array.length segments in
    if nseg > 0 then begin
      (* 3. prune: for each task, push est right (and lst left) past segments
         where the remaining capacity cannot fit its demand.  A task's own
         compulsory contribution is subtracted before testing. *)
      for t = 0 to n - 1 do
        let task = tasks.(t) in
        if task.duration > 0 && task.demand > 0
           && not (Store.is_fixed s task.start)
        then begin
          let own_lo = comp_lo.(t) and own_hi = comp_hi.(t) in
          let overloaded (a, b, u) =
            let u =
              if own_lo < b && own_hi > a then u - task.demand else u
            in
            u + task.demand > capacity
          in
          (* min side *)
          let est = ref (Store.min_of s task.start) in
          for k = 0 to nseg - 1 do
            let (a, b, _) = segments.(k) in
            if
              a < !est + task.duration && b > !est
              && overloaded segments.(k)
            then est := b
          done;
          Store.set_min s task.start !est;
          (* max side (mirror, sweep right to left) *)
          let lst = ref (Store.max_of s task.start) in
          for k = nseg - 1 downto 0 do
            let (a, b, _) = segments.(k) in
            if
              a < !lst + task.duration && b > !lst
              && overloaded segments.(k)
            then lst := a - task.duration
          done;
          Store.set_max s task.start !lst
        end
      done
    end
  in
  let pid = Store.register s ~priority:2 ~name:"cumulative_naive" run in
  Array.iter (fun t -> Store.watch s t.start pid) tasks;
  Store.schedule s pid

(* Allocation-free incremental time-table kernel.  Same propagation (segment
   profile + per-task overload test) as [cumulative_naive], so search
   trajectories are identical; only the mechanics differ:

   - every task owns two stable event slots (2i for the compulsory-part
     start, 2i+1 for its end); frozen occupations live in the tail slots,
     written once.  Absent compulsory parts park their slots at a [max_int]
     time sentinel, which sorts past every real event.
   - only tasks whose start bounds moved since the previous run rewrite
     their slots (value-compared cache, so backtracking needs no hook);
   - the sort is an insertion sort over a persistent permutation, which is
     nearly sorted between consecutive runs;
   - if the previous run completed without pruning anything and no bounds
     moved since, the store state is a witnessed fixpoint of this
     propagator and the run is skipped outright ([Store.note_scratch_reuse]).
     [valid] is false from run entry to successful no-change completion, so
     a state identical to one that pruned — or failed — is never skipped. *)
let cumulative s ~tasks ~fixed ~capacity =
  check_cumulative_args ~tasks ~capacity;
  let n = Array.length tasks in
  let nfix =
    Array.fold_left
      (fun acc (_, d, r) -> if d > 0 && r > 0 then acc + 1 else acc)
      0 fixed
  in
  let ne = (2 * n) + (2 * nfix) in
  let ev_time = Array.make (max 1 ne) max_int in
  let ev_delta = Array.make (max 1 ne) 0 in
  let k = ref (2 * n) in
  Array.iter
    (fun (start, d, r) ->
      if d > 0 && r > 0 then begin
        ev_time.(!k) <- start;
        ev_delta.(!k) <- r;
        ev_time.(!k + 1) <- start + d;
        ev_delta.(!k + 1) <- -r;
        k := !k + 2
      end)
    fixed;
  let perm = Array.init (max 1 ne) (fun i -> i) in
  let comp_lo = Array.make (max 1 n) max_int in
  let comp_hi = Array.make (max 1 n) max_int in
  (* start bounds each task's slots were last computed from *)
  let cache_est = Array.make (max 1 n) min_int in
  let cache_lst = Array.make (max 1 n) min_int in
  let valid = ref false in
  let seg_a = Array.make (ne + 1) 0 in
  let seg_b = Array.make (ne + 1) 0 in
  let seg_u = Array.make (ne + 1) 0 in
  let run s =
    (* 1. refresh event slots of tasks whose bounds moved *)
    let moved = ref false in
    for i = 0 to n - 1 do
      let t = tasks.(i) in
      if t.duration > 0 && t.demand > 0 then begin
        let est = Store.min_of s t.start and lst = Store.max_of s t.start in
        if est <> cache_est.(i) || lst <> cache_lst.(i) then begin
          moved := true;
          cache_est.(i) <- est;
          cache_lst.(i) <- lst;
          let lo = lst and hi = est + t.duration in
          if lo < hi then begin
            comp_lo.(i) <- lo;
            comp_hi.(i) <- hi;
            ev_time.(2 * i) <- lo;
            ev_delta.(2 * i) <- t.demand;
            ev_time.((2 * i) + 1) <- hi;
            ev_delta.((2 * i) + 1) <- -t.demand
          end
          else begin
            comp_lo.(i) <- max_int;
            comp_hi.(i) <- max_int;
            ev_time.(2 * i) <- max_int;
            ev_delta.(2 * i) <- 0;
            ev_time.((2 * i) + 1) <- max_int;
            ev_delta.((2 * i) + 1) <- 0
          end
        end
      end
    done;
    if (not !moved) && !valid then Store.note_scratch_reuse s
    else begin
      valid := false;
      (* 2. insertion-sort the permutation by event time *)
      for a = 1 to ne - 1 do
        let pa = perm.(a) in
        let ta = ev_time.(pa) in
        let b = ref (a - 1) in
        while !b >= 0 && ev_time.(perm.(!b)) > ta do
          perm.(!b + 1) <- perm.(!b);
          decr b
        done;
        perm.(!b + 1) <- pa
      done;
      (* 3. sweep into maximal segments with usage > 0; sentinel events
         (absent compulsory parts) sit past every real event *)
      let nseg = ref 0 in
      let i = ref 0 and usage = ref 0 in
      while !i < ne && ev_time.(perm.(!i)) < max_int do
        let time = ev_time.(perm.(!i)) in
        while !i < ne && ev_time.(perm.(!i)) = time do
          usage := !usage + ev_delta.(perm.(!i));
          incr i
        done;
        if !usage > capacity then raise (Store.Fail "cumulative overload");
        let next =
          if !i < ne && ev_time.(perm.(!i)) < max_int then ev_time.(perm.(!i))
          else max_int
        in
        if !usage > 0 && next > time then begin
          seg_a.(!nseg) <- time;
          seg_b.(!nseg) <- next;
          seg_u.(!nseg) <- !usage;
          incr nseg
        end
      done;
      let nseg = !nseg in
      (* 4. prune — same rules and same order as the naive kernel *)
      let changed = ref false in
      if nseg > 0 then
        for t = 0 to n - 1 do
          let task = tasks.(t) in
          if task.duration > 0 && task.demand > 0
             && not (Store.is_fixed s task.start)
          then begin
            let own_lo = comp_lo.(t) and own_hi = comp_hi.(t) in
            let overloaded k =
              let u =
                if own_lo < seg_b.(k) && own_hi > seg_a.(k) then
                  seg_u.(k) - task.demand
                else seg_u.(k)
              in
              u + task.demand > capacity
            in
            (* Segments are sorted and disjoint, so only those overlapping
               the task's window can fire: binary-search the window edge and
               stop at the first segment past it.  [est] only grows during
               the scan (the window's far edge moves right), so a forward
               scan with the live window test visits exactly the segments
               the full scan would have triggered on. *)
            let est = ref (Store.min_of s task.start) in
            let lo = ref 0 and hi = ref nseg in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if seg_b.(mid) > !est then hi := mid else lo := mid + 1
            done;
            let k = ref !lo in
            while !k < nseg && seg_a.(!k) < !est + task.duration do
              if seg_b.(!k) > !est && overloaded !k then est := seg_b.(!k);
              incr k
            done;
            if !est > Store.min_of s task.start then changed := true;
            Store.set_min s task.start !est;
            (* mirror: [lst] only shrinks, and once a segment ends at or
               before it no earlier segment can fire either *)
            let lst = ref (Store.max_of s task.start) in
            let lo = ref 0 and hi = ref nseg in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if seg_a.(mid) < !lst + task.duration then lo := mid + 1
              else hi := mid
            done;
            let k = ref (!lo - 1) in
            let scanning = ref true in
            while !scanning && !k >= 0 do
              if seg_b.(!k) > !lst then begin
                if seg_a.(!k) < !lst + task.duration && overloaded !k then
                  lst := seg_a.(!k) - task.duration;
                decr k
              end
              else scanning := false
            done;
            if !lst < Store.max_of s task.start then changed := true;
            Store.set_max s task.start !lst
          end
        done;
      if not !changed then valid := true
    end
  in
  let pid = Store.register s ~priority:2 ~name:"cumulative" run in
  Array.iter (fun t -> Store.watch s t.start pid) tasks;
  Store.schedule s pid

(* --- disjunctive edge finding --------------------------------------------- *)

let disjunctive_applicable ~tasks ~fixed ~capacity =
  let any_var =
    Array.exists (fun t -> t.duration > 0 && t.demand > 0) tasks
  in
  any_var
  && Array.for_all
       (fun t -> t.duration <= 0 || t.demand <= 0 || t.demand = capacity)
       tasks
  && Array.for_all
       (fun (_, d, r) -> d <= 0 || r <= 0 || r = capacity)
       fixed

(* Vilím's O(n log n) Θ-Λ-tree edge finding + overload checking for a unary
   resource.  Engaged (see [disjunctive_applicable]) when every active task
   saturates the resource, i.e. at most one can run at a time: capacity 1,
   or all demands equal to the capacity.

   Frozen occupations participate as immutable tasks: a strengthened bound
   on one is an inconsistency, reported as an overload failure.  The max
   side reuses the est-side pass on the reflected time axis
   (est' = -lct, lct' = -est). *)
let disjunctive s ~tasks ~fixed =
  let vtasks =
    Array.of_list
      (List.filter
         (fun t -> t.duration > 0 && t.demand > 0)
         (Array.to_list tasks))
  in
  let ftasks =
    Array.of_list
      (List.filter (fun (_, d, r) -> d > 0 && r > 0) (Array.to_list fixed))
  in
  let nv = Array.length vtasks and nf = Array.length ftasks in
  let n = nv + nf in
  if n >= 2 && nv >= 1 then begin
    (* tasks 0..nv-1 are variable, nv..n-1 frozen *)
    let est = Array.make n 0 and lct = Array.make n 0 and p = Array.make n 0 in
    let m_est = Array.make n 0 and m_lct = Array.make n 0 in
    for i = 0 to nv - 1 do
      p.(i) <- vtasks.(i).duration
    done;
    for i = 0 to nf - 1 do
      let st, d, _ = ftasks.(i) in
      p.(nv + i) <- d;
      est.(nv + i) <- st;
      lct.(nv + i) <- st + d;
      m_est.(nv + i) <- -(st + d);
      m_lct.(nv + i) <- -st
    done;
    let est_perm = Array.init n (fun i -> i) in
    let lct_perm = Array.init n (fun i -> i) in
    let m_est_perm = Array.init n (fun i -> i) in
    let m_lct_perm = Array.init n (fun i -> i) in
    let rank = Array.make n 0 in
    let upd = Array.make n min_int in
    let tree = Theta_tree.create () in
    (* nearly sorted between runs: insertion sort *)
    let insertion_sort key perm =
      for a = 1 to n - 1 do
        let pa = perm.(a) in
        let ka = key.(pa) in
        let b = ref (a - 1) in
        while !b >= 0 && key.(perm.(!b)) > ka do
          perm.(!b + 1) <- perm.(!b);
          decr b
        done;
        perm.(!b + 1) <- pa
      done
    in
    (* one est-side pass over (est, lct, p): overload check, then edge
       finding; strengthened ests land in [upd] *)
    let pass est lct est_perm lct_perm =
      insertion_sort est est_perm;
      insertion_sort lct lct_perm;
      for k = 0 to n - 1 do
        rank.(est_perm.(k)) <- k
      done;
      Theta_tree.prepare tree n;
      (* overload check: grow Θ in lct order; ect(Θ) must stay within lct *)
      for k = 0 to n - 1 do
        let j = lct_perm.(k) in
        Theta_tree.add tree rank.(j) ~est:est.(j) ~p:p.(j);
        if Theta_tree.ect tree > lct.(j) then
          raise (Store.Fail "disjunctive overload")
      done;
      Array.fill upd 0 n min_int;
      (* edge finding: peel tasks off Θ in lct-descending order; whenever
         some gray i makes ect(Θ ∪ {i}) overshoot lct(Θ), i must run after
         all of Θ, so est_i ≥ ect(Θ) *)
      for k = n - 1 downto 1 do
        let j = lct_perm.(k) in
        Theta_tree.gray tree rank.(j);
        let limit = lct.(lct_perm.(k - 1)) in
        if Theta_tree.ect tree > limit then
          raise (Store.Fail "disjunctive overload");
        let continue = ref true in
        while !continue && Theta_tree.ect_bar tree > limit do
          let r = Theta_tree.responsible tree in
          if r < 0 then continue := false
          else begin
            let i = est_perm.(r) in
            let e = Theta_tree.ect tree in
            if e > upd.(i) then upd.(i) <- e;
            Theta_tree.remove tree r
          end
        done
      done
    in
    let run s =
      for i = 0 to nv - 1 do
        let t = vtasks.(i) in
        est.(i) <- Store.min_of s t.start;
        lct.(i) <- Store.max_of s t.start + t.duration
      done;
      pass est lct est_perm lct_perm;
      let prunes = ref 0 in
      for i = 0 to n - 1 do
        if upd.(i) > est.(i) then
          if i < nv then begin
            if upd.(i) > Store.min_of s vtasks.(i).start then incr prunes;
            Store.set_min s vtasks.(i).start upd.(i)
          end
          else raise (Store.Fail "disjunctive overload")
      done;
      (* mirror pass on the reflected axis: an est cut there is an lct cut
         here.  Bounds are re-read so the est-side prunes carry over. *)
      for i = 0 to nv - 1 do
        let t = vtasks.(i) in
        m_est.(i) <- -(Store.max_of s t.start + t.duration);
        m_lct.(i) <- -(Store.min_of s t.start)
      done;
      pass m_est m_lct m_est_perm m_lct_perm;
      for i = 0 to n - 1 do
        if upd.(i) > m_est.(i) then
          if i < nv then begin
            let t = vtasks.(i) in
            let new_max = -upd.(i) - t.duration in
            if new_max < Store.max_of s t.start then incr prunes;
            Store.set_max s t.start new_max
          end
          else raise (Store.Fail "disjunctive overload")
      done;
      if !prunes > 0 then Store.note_edge_finder_prunes s !prunes
    in
    let pid = Store.register s ~priority:2 ~name:"disjunctive" run in
    Array.iter (fun t -> Store.watch s t.start pid) vtasks;
    Store.schedule s pid
  end

(* --- kernel dispatch ------------------------------------------------------ *)

let cumulative_kernel s ~kernel ~tasks ~fixed ~capacity =
  let eligible () = disjunctive_applicable ~tasks ~fixed ~capacity in
  match kernel with
  | Naive -> cumulative_naive s ~tasks ~fixed ~capacity
  | Timetable -> cumulative s ~tasks ~fixed ~capacity
  | Edge_finding ->
      (* sound alone only on unary-equivalent pools: there any overlap is an
         overload the Θ-tree check catches, so leaf states are fully
         verified; elsewhere fall back to the timetable *)
      if eligible () then disjunctive s ~tasks ~fixed
      else cumulative s ~tasks ~fixed ~capacity
  | Both ->
      cumulative s ~tasks ~fixed ~capacity;
      if eligible () then disjunctive s ~tasks ~fixed

(* --- per-resource cumulative gated on assignment variables --------------- *)

type gated = {
  g_start : Store.var;
  g_duration : int;
  g_demand : int;
  g_member : Store.var;
  g_value : int;
}

(* How many members the O(m^2)-window energetic check is allowed to cover.
   The direct formulation is only practical on small instances (that is why
   the paper decomposes, §V.D), so the bound is generous in practice. *)
let energetic_member_limit = 24

let cumulative_gated ?(energetic = false) s ~tasks ~capacity =
  if capacity <= 0 then invalid_arg "cumulative_gated: capacity must be > 0";
  let n = Array.length tasks in
  (* same incremental machinery as [cumulative]: stable per-task event
     slots, value-compared cache (membership + start bounds), insertion-
     sorted permutation, witnessed-fixpoint full skip *)
  let ne = 2 * n in
  let ev_time = Array.make (max 1 ne) max_int in
  let ev_delta = Array.make (max 1 ne) 0 in
  let perm = Array.init (max 1 ne) (fun i -> i) in
  let comp_lo = Array.make (max 1 n) max_int in
  let comp_hi = Array.make (max 1 n) max_int in
  let member = Array.make (max 1 n) false in
  let cache_member = Array.make (max 1 n) false in
  let cache_est = Array.make (max 1 n) min_int in
  let cache_lst = Array.make (max 1 n) min_int in
  let valid = ref false in
  let seg_a = Array.make (ne + 1) 0 in
  let seg_b = Array.make (ne + 1) 0 in
  let seg_u = Array.make (ne + 1) 0 in
  let clear_slot i =
    comp_lo.(i) <- max_int;
    comp_hi.(i) <- max_int;
    ev_time.(2 * i) <- max_int;
    ev_delta.(2 * i) <- 0;
    ev_time.((2 * i) + 1) <- max_int;
    ev_delta.((2 * i) + 1) <- 0
  in
  (* energetic-reasoning failure check over the current members: for every
     window [t1, t2) spanned by member release dates and deadlines, the sum
     of minimal-intersection energies may not exceed capacity * (t2 - t1) *)
  let energetic_check s =
    let m = ref 0 in
    for i = 0 to n - 1 do
      if member.(i) then incr m
    done;
    if !m >= 2 && !m <= energetic_member_limit then begin
      let mi t1 t2 i =
        let t = tasks.(i) in
        let est = Store.min_of s t.g_start
        and lst = Store.max_of s t.g_start in
        let left = est + t.g_duration - t1 in
        let right = t2 - lst in
        let e = min (min (t2 - t1) t.g_duration) (min left right) in
        if e > 0 then e * t.g_demand else 0
      in
      for i = 0 to n - 1 do
        if member.(i) then begin
          let t1 = Store.min_of s tasks.(i).g_start in
          for j = 0 to n - 1 do
            if member.(j) then begin
              let tj = tasks.(j) in
              let t2 = Store.max_of s tj.g_start + tj.g_duration in
              if t2 > t1 then begin
                let energy = ref 0 in
                for q = 0 to n - 1 do
                  if member.(q) then energy := !energy + mi t1 t2 q
                done;
                if !energy > capacity * (t2 - t1) then
                  raise (Store.Fail "gated cumulative energetic overload")
              end
            end
          done
        end
      done
    end
  in
  let run s =
    let moved = ref false in
    for i = 0 to n - 1 do
      let t = tasks.(i) in
      let mem =
        t.g_duration > 0 && t.g_demand > 0
        && Store.is_fixed s t.g_member
        && Store.value s t.g_member = t.g_value
      in
      member.(i) <- mem;
      if mem then begin
        let est = Store.min_of s t.g_start and lst = Store.max_of s t.g_start in
        if
          (not cache_member.(i))
          || est <> cache_est.(i)
          || lst <> cache_lst.(i)
        then begin
          moved := true;
          cache_member.(i) <- true;
          cache_est.(i) <- est;
          cache_lst.(i) <- lst;
          let lo = lst and hi = est + t.g_duration in
          if lo < hi then begin
            comp_lo.(i) <- lo;
            comp_hi.(i) <- hi;
            ev_time.(2 * i) <- lo;
            ev_delta.(2 * i) <- t.g_demand;
            ev_time.((2 * i) + 1) <- hi;
            ev_delta.((2 * i) + 1) <- -t.g_demand
          end
          else clear_slot i
        end
      end
      else if cache_member.(i) then begin
        moved := true;
        cache_member.(i) <- false;
        clear_slot i
      end
    done;
    if (not !moved) && !valid then Store.note_scratch_reuse s
    else begin
      valid := false;
      for a = 1 to ne - 1 do
        let pa = perm.(a) in
        let ta = ev_time.(pa) in
        let b = ref (a - 1) in
        while !b >= 0 && ev_time.(perm.(!b)) > ta do
          perm.(!b + 1) <- perm.(!b);
          decr b
        done;
        perm.(!b + 1) <- pa
      done;
      let nseg = ref 0 in
      let i = ref 0 and usage = ref 0 in
      while !i < ne && ev_time.(perm.(!i)) < max_int do
        let time = ev_time.(perm.(!i)) in
        while !i < ne && ev_time.(perm.(!i)) = time do
          usage := !usage + ev_delta.(perm.(!i));
          incr i
        done;
        if !usage > capacity then
          raise (Store.Fail "gated cumulative overload");
        let next =
          if !i < ne && ev_time.(perm.(!i)) < max_int then ev_time.(perm.(!i))
          else max_int
        in
        if !usage > 0 && next > time then begin
          seg_a.(!nseg) <- time;
          seg_b.(!nseg) <- next;
          seg_u.(!nseg) <- !usage;
          incr nseg
        end
      done;
      let nseg = !nseg in
      let changed = ref false in
      if nseg > 0 then
        for t = 0 to n - 1 do
          let task = tasks.(t) in
          if member.(t) && not (Store.is_fixed s task.g_start) then begin
            let own_lo = comp_lo.(t) and own_hi = comp_hi.(t) in
            let overloaded k =
              let u =
                if own_lo < seg_b.(k) && own_hi > seg_a.(k) then
                  seg_u.(k) - task.g_demand
                else seg_u.(k)
              in
              u + task.g_demand > capacity
            in
            let est = ref (Store.min_of s task.g_start) in
            for k = 0 to nseg - 1 do
              if seg_a.(k) < !est + task.g_duration && seg_b.(k) > !est
                 && overloaded k
              then est := seg_b.(k)
            done;
            if !est > Store.min_of s task.g_start then changed := true;
            Store.set_min s task.g_start !est;
            let lst = ref (Store.max_of s task.g_start) in
            for k = nseg - 1 downto 0 do
              if seg_a.(k) < !lst + task.g_duration && seg_b.(k) > !lst
                 && overloaded k
              then lst := seg_a.(k) - task.g_duration
            done;
            if !lst < Store.max_of s task.g_start then changed := true;
            Store.set_max s task.g_start !lst
          end
        done;
      if energetic then energetic_check s;
      if not !changed then valid := true
    end
  in
  let pid = Store.register s ~priority:2 ~name:"cumulative_gated" run in
  Array.iter
    (fun t ->
      Store.watch s t.g_start pid;
      (* only a domain collapse can flip membership *)
      Store.watch_fix s t.g_member pid)
    tasks;
  Store.schedule s pid

(* --- dynamic registries (persistent sessions) ----------------------------- *)

(* [cumulative]'s task set is fixed at posting time; a {!Session} needs one
   capacity propagator per pool whose registry grows (job arrivals) and
   shrinks (completed tasks retracted) across solver invocations.  The
   kernel below is the [cumulative_naive] algorithm — identical segment
   profile, identical per-task overload pruning — run over a mutable
   registry, with the allocation-free machinery of [cumulative]: stable
   per-task event slots ([max_int] sentinel when a task has no compulsory
   part), a persistent insertion-sorted event permutation (reset to the
   identity whenever the registry changes shape), and preallocated segment
   scratch. *)
type dyn_pool = {
  dp_capacity : int;
  mutable dp_pid : Store.propagator_id option;
  mutable dp_start : Store.var array;
  mutable dp_dur : int array;
  mutable dp_dem : int array;
  mutable dp_n : int;
  (* scratch, grown with the registry *)
  mutable dp_comp_lo : int array;
  mutable dp_comp_hi : int array;
  mutable dp_ev_time : int array;  (* slots 2i / 2i+1 belong to task i *)
  mutable dp_ev_dem : int array;
  mutable dp_perm : int array;
  mutable dp_seg_a : int array;
  mutable dp_seg_b : int array;
  mutable dp_seg_u : int array;
  mutable dp_perm_dirty : bool;
  (* start bounds each task's event slots were last computed from, plus a
     fixpoint marker — the same incremental skip the static [cumulative]
     does, which matters even more here: a session store keeps one pool
     alive across thousands of propagations *)
  mutable dp_cache_est : int array;
  mutable dp_cache_lst : int array;
  mutable dp_valid : bool;
}

let dyn_pool_pid p = Option.get p.dp_pid

let dyn_run p s =
  let n = p.dp_n in
  if n > 0 then begin
    let ne = 2 * n in
    (* 1. refresh event slots of tasks whose bounds moved since last run *)
    let moved = ref false in
    for i = 0 to n - 1 do
      let dur = p.dp_dur.(i) and dem = p.dp_dem.(i) in
      if dur > 0 && dem > 0 then begin
        let est = Store.min_of s p.dp_start.(i)
        and lst = Store.max_of s p.dp_start.(i) in
        if est <> p.dp_cache_est.(i) || lst <> p.dp_cache_lst.(i) then begin
          moved := true;
          p.dp_cache_est.(i) <- est;
          p.dp_cache_lst.(i) <- lst;
          let lo = lst and hi = est + dur in
          if lo < hi then begin
            p.dp_comp_lo.(i) <- lo;
            p.dp_comp_hi.(i) <- hi;
            p.dp_ev_time.(2 * i) <- lo;
            p.dp_ev_dem.(2 * i) <- dem;
            p.dp_ev_time.((2 * i) + 1) <- hi;
            p.dp_ev_dem.((2 * i) + 1) <- -dem
          end
          else begin
            p.dp_comp_lo.(i) <- max_int;
            p.dp_comp_hi.(i) <- max_int;
            p.dp_ev_time.(2 * i) <- max_int;
            p.dp_ev_dem.(2 * i) <- 0;
            p.dp_ev_time.((2 * i) + 1) <- max_int;
            p.dp_ev_dem.((2 * i) + 1) <- 0
          end
        end
      end
      else begin
        p.dp_comp_lo.(i) <- max_int;
        p.dp_comp_hi.(i) <- max_int;
        p.dp_ev_time.(2 * i) <- max_int;
        p.dp_ev_dem.(2 * i) <- 0;
        p.dp_ev_time.((2 * i) + 1) <- max_int;
        p.dp_ev_dem.((2 * i) + 1) <- 0
      end
    done;
    if (not !moved) && p.dp_valid then Store.note_scratch_reuse s
    else begin
      p.dp_valid <- false;
      if p.dp_perm_dirty then begin
        for k = 0 to ne - 1 do
          p.dp_perm.(k) <- k
        done;
        p.dp_perm_dirty <- false
      end;
      (* insertion sort: nearly sorted between consecutive runs *)
      for k = 1 to ne - 1 do
        let e = p.dp_perm.(k) in
        let te = p.dp_ev_time.(e) in
        let j = ref (k - 1) in
        while !j >= 0 && p.dp_ev_time.(p.dp_perm.(!j)) > te do
          p.dp_perm.(!j + 1) <- p.dp_perm.(!j);
          decr j
        done;
        p.dp_perm.(!j + 1) <- e
      done;
      (* 2. sweep into a step profile (sentinel events terminate the scan) *)
      let i = ref 0 and usage = ref 0 and nseg = ref 0 in
      while !i < ne && p.dp_ev_time.(p.dp_perm.(!i)) < max_int do
        let time = p.dp_ev_time.(p.dp_perm.(!i)) in
        while !i < ne && p.dp_ev_time.(p.dp_perm.(!i)) = time do
          usage := !usage + p.dp_ev_dem.(p.dp_perm.(!i));
          incr i
        done;
        if !usage > p.dp_capacity then
          raise (Store.Fail "cumulative overload");
        let next =
          if !i < ne then p.dp_ev_time.(p.dp_perm.(!i)) else max_int
        in
        if !usage > 0 && next > time then begin
          p.dp_seg_a.(!nseg) <- time;
          p.dp_seg_b.(!nseg) <- next;
          p.dp_seg_u.(!nseg) <- !usage;
          incr nseg
        end
      done;
      let nseg = !nseg in
      (* 3. prune exactly as [cumulative_naive]; segments are sorted and
         disjoint, so binary-search the first candidate and stop past the
         window (same reasoning as the static kernel) *)
      let changed = ref false in
      if nseg > 0 then
        for t = 0 to n - 1 do
          let dur = p.dp_dur.(t) and dem = p.dp_dem.(t) in
          if dur > 0 && dem > 0 && not (Store.is_fixed s p.dp_start.(t))
          then begin
            let own_lo = p.dp_comp_lo.(t) and own_hi = p.dp_comp_hi.(t) in
            let overloaded k =
              let u = p.dp_seg_u.(k) in
              let u =
                if own_lo < p.dp_seg_b.(k) && own_hi > p.dp_seg_a.(k) then
                  u - dem
                else u
              in
              u + dem > p.dp_capacity
            in
            let est = ref (Store.min_of s p.dp_start.(t)) in
            let lo = ref 0 and hi = ref nseg in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if p.dp_seg_b.(mid) > !est then hi := mid else lo := mid + 1
            done;
            let k = ref !lo in
            while !k < nseg && p.dp_seg_a.(!k) < !est + dur do
              if p.dp_seg_b.(!k) > !est && overloaded !k then
                est := p.dp_seg_b.(!k);
              incr k
            done;
            if !est > Store.min_of s p.dp_start.(t) then changed := true;
            Store.set_min s p.dp_start.(t) !est;
            let lst = ref (Store.max_of s p.dp_start.(t)) in
            let lo = ref 0 and hi = ref nseg in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if p.dp_seg_a.(mid) < !lst + dur then lo := mid + 1
              else hi := mid
            done;
            let k = ref (!lo - 1) in
            let scanning = ref true in
            while !scanning && !k >= 0 do
              if p.dp_seg_b.(!k) > !lst then begin
                if p.dp_seg_a.(!k) < !lst + dur && overloaded !k then
                  lst := p.dp_seg_a.(!k) - dur;
                decr k
              end
              else scanning := false
            done;
            if !lst < Store.max_of s p.dp_start.(t) then changed := true;
            Store.set_max s p.dp_start.(t) !lst
          end
        done;
      if not !changed then p.dp_valid <- true
    end
  end

let cumulative_dyn s ~capacity =
  if capacity <= 0 then invalid_arg "cumulative_dyn: capacity must be positive";
  let cap0 = 16 in
  let p =
    {
      dp_capacity = capacity;
      dp_pid = None;
      dp_start = Array.make cap0 0;
      dp_dur = Array.make cap0 0;
      dp_dem = Array.make cap0 0;
      dp_n = 0;
      dp_comp_lo = Array.make cap0 max_int;
      dp_comp_hi = Array.make cap0 max_int;
      dp_ev_time = Array.make (2 * cap0) max_int;
      dp_ev_dem = Array.make (2 * cap0) 0;
      dp_perm = Array.init (2 * cap0) Fun.id;
      dp_seg_a = Array.make (2 * cap0) 0;
      dp_seg_b = Array.make (2 * cap0) 0;
      dp_seg_u = Array.make (2 * cap0) 0;
      dp_perm_dirty = true;
      dp_cache_est = Array.make cap0 min_int;
      dp_cache_lst = Array.make cap0 min_int;
      dp_valid = false;
    }
  in
  p.dp_pid <-
    Some (Store.register s ~priority:2 ~name:"cumulative" (fun s -> dyn_run p s));
  p

let dyn_grow p =
  let cap = Array.length p.dp_start in
  if p.dp_n = cap then begin
    let cap' = 2 * cap in
    let ext a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    let ext2 a fill =
      let a' = Array.make (2 * cap') fill in
      Array.blit a 0 a' 0 (2 * cap);
      a'
    in
    p.dp_start <- ext p.dp_start 0;
    p.dp_dur <- ext p.dp_dur 0;
    p.dp_dem <- ext p.dp_dem 0;
    p.dp_comp_lo <- ext p.dp_comp_lo max_int;
    p.dp_comp_hi <- ext p.dp_comp_hi max_int;
    p.dp_cache_est <- ext p.dp_cache_est min_int;
    p.dp_cache_lst <- ext p.dp_cache_lst min_int;
    p.dp_ev_time <- ext2 p.dp_ev_time max_int;
    p.dp_ev_dem <- ext2 p.dp_ev_dem 0;
    p.dp_perm <- Array.init (2 * cap') Fun.id;
    p.dp_seg_a <- ext2 p.dp_seg_a 0;
    p.dp_seg_b <- ext2 p.dp_seg_b 0;
    p.dp_seg_u <- ext2 p.dp_seg_u 0
  end

let dyn_add p s term =
  if term.duration < 0 || term.demand < 0 then
    invalid_arg "dyn_add: negative duration/demand";
  if term.demand > p.dp_capacity then
    raise (Store.Fail "task demand > capacity");
  dyn_grow p;
  let i = p.dp_n in
  p.dp_start.(i) <- term.start;
  p.dp_dur.(i) <- term.duration;
  p.dp_dem.(i) <- term.demand;
  p.dp_cache_est.(i) <- min_int;
  p.dp_cache_lst.(i) <- min_int;
  p.dp_n <- i + 1;
  p.dp_perm_dirty <- true;
  p.dp_valid <- false;
  let pid = dyn_pool_pid p in
  Store.watch s term.start pid;
  Store.schedule s pid

let dyn_retire p s start =
  let i = ref (-1) in
  for k = 0 to p.dp_n - 1 do
    if p.dp_start.(k) = start then i := k
  done;
  if !i < 0 then invalid_arg "dyn_retire: variable not in registry";
  let last = p.dp_n - 1 in
  p.dp_start.(!i) <- p.dp_start.(last);
  p.dp_dur.(!i) <- p.dp_dur.(last);
  p.dp_dem.(!i) <- p.dp_dem.(last);
  (* the swapped-in task inherits a slot whose events belong to the retired
     one: poison its cache so the next run rewrites them *)
  p.dp_cache_est.(!i) <- min_int;
  p.dp_cache_lst.(!i) <- min_int;
  p.dp_n <- last;
  p.dp_perm_dirty <- true;
  p.dp_valid <- false;
  let pid = dyn_pool_pid p in
  Store.unwatch s start pid;
  Store.schedule s pid

(* Growable Σ N_j < bound — [sum_lt_bound] over a mutable variable set. *)
type dyn_sum = {
  ds_bound : int ref;
  mutable ds_pid : Store.propagator_id option;
  mutable ds_vars : Store.var array;
  mutable ds_n : int;
}

let dyn_sum_pid d = Option.get d.ds_pid

let sum_lt_bound_dyn s ~bound =
  let d = { ds_bound = bound; ds_pid = None; ds_vars = Array.make 16 0; ds_n = 0 } in
  d.ds_pid <-
    Some
      (Store.register s ~priority:0 ~name:"sum_lt_bound" ~idempotent:true
         (fun s ->
           let sum_min = ref 0 in
           for k = 0 to d.ds_n - 1 do
             sum_min := !sum_min + Store.min_of s d.ds_vars.(k)
           done;
           if !sum_min >= !(d.ds_bound) then
             raise (Store.Fail "objective bound");
           if !sum_min = !(d.ds_bound) - 1 then
             for k = 0 to d.ds_n - 1 do
               let v = d.ds_vars.(k) in
               if Store.min_of s v = 0 then Store.set_max s v 0
             done));
  d

let dyn_sum_add d s v =
  let cap = Array.length d.ds_vars in
  if d.ds_n = cap then begin
    let a = Array.make (2 * cap) 0 in
    Array.blit d.ds_vars 0 a 0 cap;
    d.ds_vars <- a
  end;
  d.ds_vars.(d.ds_n) <- v;
  d.ds_n <- d.ds_n + 1;
  let pid = dyn_sum_pid d in
  Store.watch_min s v pid;
  Store.schedule s pid

let dyn_sum_remove d s v =
  let i = ref (-1) in
  for k = 0 to d.ds_n - 1 do
    if d.ds_vars.(k) = v then i := k
  done;
  if !i < 0 then invalid_arg "dyn_sum_remove: variable not in sum";
  d.ds_vars.(!i) <- d.ds_vars.(d.ds_n - 1);
  d.ds_n <- d.ds_n - 1;
  let pid = dyn_sum_pid d in
  Store.unwatch s v pid;
  Store.schedule s pid
