module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution

type assignment = {
  solution : Sched.Solution.t;
  resource_of : (int, int) Hashtbl.t;
}

type stats = {
  proved_optimal : bool;
  nodes : int;
  failures : int;
  elapsed : float;
}

type task_entry = {
  task : T.task;
  job_index : int;
  svar : Store.var;  (** start *)
  avar : Store.var;  (** resource choice, 0..m-1 *)
}

type model = {
  store : Store.t;
  instance : Instance.t;
  entries : task_entry array;
  lates : (Store.var * int) array;
  bound : int ref;
  bound_pid : Store.propagator_id;
}

let build ?(kernel = Propagators.Both) (inst : Instance.t) ~cluster ~horizon =
  (* the gated kernel is always the incremental time table; [kernel] decides
     whether the energetic-reasoning failure check rides along *)
  let energetic =
    match kernel with
    | Propagators.Edge_finding | Propagators.Both -> true
    | Propagators.Naive | Propagators.Timetable -> false
  in
  if Instance.fixed_task_count inst > 0 then
    invalid_arg "Direct.build: frozen tasks are not supported";
  if
    T.total_map_slots cluster <> inst.Instance.map_capacity
    || T.total_reduce_slots cluster <> inst.Instance.reduce_capacity
  then invalid_arg "Direct.build: cluster capacities do not match instance";
  let m = Array.length cluster in
  let store = Store.create () in
  let entries = ref [] in
  let lates = ref [] in
  Array.iteri
    (fun job_index (j : Instance.pending_job) ->
      let est = j.Instance.est in
      let map_vars =
        Array.map
          (fun (task : T.task) ->
            let svar = Store.new_var store ~min:est ~max:horizon in
            let avar = Store.new_var store ~min:0 ~max:(m - 1) in
            entries := { task; job_index; svar; avar } :: !entries;
            (svar, task.T.exec_time))
          j.Instance.pending_maps
      in
      let lfmt = Store.new_var store ~min:0 ~max:(2 * horizon) in
      Propagators.max_of store ~result:lfmt ~terms:(Array.to_list map_vars)
        ~floor:(max j.Instance.frozen_lfmt est);
      let reduce_vars =
        Array.map
          (fun (task : T.task) ->
            let svar = Store.new_var store ~min:est ~max:(2 * horizon) in
            let avar = Store.new_var store ~min:0 ~max:(m - 1) in
            entries := { task; job_index; svar; avar } :: !entries;
            Propagators.ge_offset store svar lfmt 0;
            (svar, task.T.exec_time))
          j.Instance.pending_reduces
      in
      let completion = Store.new_var store ~min:0 ~max:(4 * horizon) in
      Propagators.max_of store ~result:completion
        ~terms:((lfmt, 0) :: Array.to_list reduce_vars)
        ~floor:j.Instance.frozen_completion;
      let late = Store.new_var store ~min:0 ~max:1 in
      Propagators.lateness store ~late ~completion
        ~deadline:j.Instance.job.T.deadline;
      lates := (late, j.Instance.job.T.deadline) :: !lates)
    inst.Instance.jobs;
  let entries = Array.of_list (List.rev !entries) in
  (* one gated cumulative per resource per pool: the x_tr decomposition *)
  Array.iteri
    (fun r (res : T.resource) ->
      let gated kind =
        entries
        |> Array.to_list
        |> List.filter_map (fun e ->
               if e.task.T.kind = kind then
                 Some
                   {
                     Propagators.g_start = e.svar;
                     g_duration = e.task.T.exec_time;
                     g_demand = e.task.T.capacity_req;
                     g_member = e.avar;
                     g_value = r;
                   }
               else None)
        |> Array.of_list
      in
      if res.T.map_capacity > 0 then
        Propagators.cumulative_gated ~energetic store ~tasks:(gated T.Map_task)
          ~capacity:res.T.map_capacity
      else if
        Array.exists (fun e -> e.task.T.kind = T.Map_task) entries
      then
        (* resource with no map slots: no map task may choose it *)
        Array.iter
          (fun e ->
            if e.task.T.kind = T.Map_task then begin
              let pid =
                Store.register store ~priority:0 (fun s ->
                    if Store.is_fixed s e.avar && Store.value s e.avar = r
                    then raise (Store.Fail "no map slots on resource"))
              in
              (* only reads fixedness: a fix event is the only trigger *)
              Store.watch_fix store e.avar pid;
              Store.schedule store pid
            end)
          entries;
      if res.T.reduce_capacity > 0 then
        Propagators.cumulative_gated ~energetic store
          ~tasks:(gated T.Reduce_task) ~capacity:res.T.reduce_capacity
      else if Array.exists (fun e -> e.task.T.kind = T.Reduce_task) entries
      then
        Array.iter
          (fun e ->
            if e.task.T.kind = T.Reduce_task then begin
              let pid =
                Store.register store ~priority:0 (fun s ->
                    if Store.is_fixed s e.avar && Store.value s e.avar = r
                    then raise (Store.Fail "no reduce slots on resource"))
              in
              Store.watch_fix store e.avar pid;
              Store.schedule store pid
            end)
          entries)
    cluster;
  let lates = Array.of_list (List.rev !lates) in
  let bound = ref (Array.length inst.Instance.jobs + 1) in
  let bound_pid =
    Propagators.sum_lt_bound store ~vars:(Array.map fst lates) ~bound
  in
  { store; instance = inst; entries; lates; bound; bound_pid }

(* Dedicated DFS: lateness phase, then assignment variables (m-ary), then
   SetTimes on starts — the combined model's search with one extra phase. *)

exception Limit_reached

type search_state = {
  model : model;
  limits : Search.limits;
  mutable best : assignment option;
  mutable nodes : int;
  mutable failures : int;
  mutable ticks : int;
}

let check_limits st =
  if st.limits.Search.node_limit > 0 && st.nodes >= st.limits.Search.node_limit
  then raise Limit_reached;
  if
    st.limits.Search.fail_limit > 0
    && st.failures >= st.limits.Search.fail_limit
  then raise Limit_reached;
  st.ticks <- st.ticks - 1;
  if st.ticks <= 0 then begin
    st.ticks <- 64;
    match st.limits.Search.wall_deadline with
    | Some deadline when Obs.Clock.now () > deadline -> raise Limit_reached
    | _ -> ()
  end

let select_late st =
  let s = st.model.store in
  let best = ref None in
  Array.iter
    (fun (late, deadline) ->
      if not (Store.is_fixed s late) then
        match !best with
        | Some (_, d) when d <= deadline -> ()
        | _ -> best := Some (late, deadline))
    st.model.lates;
  Option.map fst !best

let select_assignment st =
  let s = st.model.store in
  let best = ref None in
  Array.iter
    (fun e ->
      if not (Store.is_fixed s e.avar) then begin
        let est = Store.min_of s e.svar in
        match !best with
        | Some (_, k) when k <= (est, e.task.T.task_id) -> ()
        | _ -> best := Some (e, (est, e.task.T.task_id))
      end)
    st.model.entries;
  Option.map fst !best

let select_start st postponed =
  let s = st.model.store in
  let best = ref (-1) and best_key = ref (max_int, max_int, min_int) in
  Array.iteri
    (fun i e ->
      if not (Store.is_fixed s e.svar) then begin
        let est = Store.min_of s e.svar in
        if postponed.(i) <> est then begin
          let deadline =
            st.model.instance.Instance.jobs.(e.job_index).Instance.job
              .T.deadline
          in
          let key = (est, deadline - est - e.task.T.exec_time, -e.task.T.exec_time) in
          if key < !best_key then begin
            best_key := key;
            best := i
          end
        end
      end)
    st.model.entries;
  if !best < 0 then None else Some !best

let record st =
  let m = st.model in
  let starts = Hashtbl.create 64 and resource_of = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      Hashtbl.replace starts e.task.T.task_id (Store.value m.store e.svar);
      Hashtbl.replace resource_of e.task.T.task_id (Store.value m.store e.avar))
    m.entries;
  let solution = Solution.evaluate m.instance starts in
  if solution.Solution.late_jobs < !(m.bound) then begin
    st.best <- Some { solution; resource_of };
    m.bound := solution.Solution.late_jobs
  end

let rec dfs st postponed =
  check_limits st;
  st.nodes <- st.nodes + 1;
  let s = st.model.store in
  let attempt f =
    Store.push_level s;
    (try
       f ();
       Store.schedule s st.model.bound_pid;
       Store.propagate s;
       dfs st postponed
     with Store.Fail _ -> st.failures <- st.failures + 1);
    Store.backtrack s
  in
  match select_late st with
  | Some late ->
      attempt (fun () -> Store.set_max s late 0);
      attempt (fun () -> Store.set_min s late 1)
  | None -> (
      match select_assignment st with
      | Some e ->
          for r = Store.min_of s e.avar to Store.max_of s e.avar do
            attempt (fun () -> Store.fix s e.avar r)
          done
      | None -> (
          match select_start st postponed with
          | None ->
              if
                Array.for_all
                  (fun e -> Store.is_fixed s e.svar)
                  st.model.entries
              then record st
          | Some i ->
              let e = st.model.entries.(i) in
              let est = Store.min_of s e.svar in
              attempt (fun () -> Store.fix s e.svar est);
              let postponed' = Array.copy postponed in
              postponed'.(i) <- est;
              dfs st postponed'))

let solve ?(limits = Search.no_limits) ?kernel ~cluster (inst : Instance.t) =
  let t0 = Obs.Clock.now () in
  let greedy = Sched.Greedy.solve inst in
  let horizon = Model.default_horizon inst in
  let model = build ?kernel inst ~cluster ~horizon in
  model.bound := greedy.Solution.late_jobs + 1;
  let st =
    { model; limits; best = None; nodes = 0; failures = 0; ticks = 1 }
  in
  let postponed = Array.make (Array.length model.entries) min_int in
  let proved =
    try
      (try
         Store.propagate model.store;
         dfs st postponed
       with Store.Fail _ -> st.failures <- st.failures + 1);
      true
    with Limit_reached -> false
  in
  Store.backtrack_to_root model.store;
  ( st.best,
    {
      proved_optimal = proved;
      nodes = st.nodes;
      failures = st.failures;
      elapsed = Obs.Clock.now () -. t0;
    } )
