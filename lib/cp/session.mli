(** Persistent solver session: the zero-rebuild hot path.

    The cold pipeline ({!Solver.solve}) builds a fresh {!Store} and
    {!Model} at every manager invocation — variable allocation, propagator
    registration, watch wiring and first propagation all land on the
    per-invocation overhead O the paper measures.  A session keeps {e one}
    store alive for the manager's lifetime and {e diffs} the job set
    between invocations instead:

    - a newly arrived job appends its Table-1 constraint block (start
      variables, LFMT/completion [max_of], precedence, lateness, entries in
      the per-pool capacity registries and the objective sum);
    - a pending task's est bump ([est = max(s_j, now)] only grows) is a
      root-level [set_min];
    - a task that started running is root-fixed at its dispatched start;
    - a completed task is {e retracted}: fixed at the start it actually ran
      at, removed from its pool registry ({!Propagators.dyn_retire}), its
      watch-list entries unhooked ({!Store.unwatch}).  Its window ends at
      or before [now] while every pending est is at least [now], so the
      retraction never changes what the remaining tasks see;
    - a departed job's realized lateness moves into the session's
      departed-late counter and its variables go inert.

    Search then re-enters the {e same} store: the nogood database survives
    (clauses revalidated against departures by {!Nogood.refresh}), and all
    propagation scratch — pool event permutations, Θ-tree buffers, watch
    pools — is already warm.  Everything objective-relative (the armed
    bound, committed nogood watches and unit assertions) lives in a guard
    level pushed around each search, because root state must stay valid
    across invocations whose objectives differ.

    The session also carries an {e optimality certificate} between
    invocations: after a proved solve it records the proved Σ N_j together
    with each job's lateness and completion under the installed plan.  On a
    later instance the certificate yields a lower bound — the proved bound
    minus the realized lateness of jobs that have since departed, plus the
    solo dooms of jobs outside the certified set (a job that cannot meet
    its deadline even alone is late in every schedule, so the two bounds
    add; see {!Solver.job_doomed}).  Time only shrinks the feasible set
    (ests grow, started tasks freeze at their dispatched starts), so the
    old proof remains a valid bound on the surviving subset.  A seed that
    meets the carried bound is proved optimal with {e no search at all},
    and a search whose improving incumbent reaches the bound stops
    immediately instead of exhausting the tree to re-prove it — the two
    mechanisms behind the session's overhead reduction on contended
    streams, where the expensive part of every cold invocation is
    re-proving optimality the previous invocation already established.

    The session store's domains are a superset of the cold model's (the
    horizon is doubled at creation), and the search is complete, so per
    invocation the session proves the {e same optimum} a cold solve does —
    the differential property test in [test/test_session.ml] checks exactly
    that.  When an instance outgrows the horizon — or any root operation
    fails unexpectedly — the session rebuilds from scratch, which is
    precisely a cold store.  Instances past [options.exact_task_limit] fall
    back to the ephemeral LNS pipeline for that invocation (fragment models
    are throwaway by design); the store stays synced throughout.

    A session serves one manager sequentially — it is not thread-safe and
    is not used by the multi-domain {!Portfolio} (managers run sessions
    only with [domains = 1]). *)

type t

val create : options:Solver.options -> unit -> t
(** A session for a manager that will solve with (at least) these options.
    [options.restart] decides once whether the session carries a nogood
    database across invocations; the remaining options are read per
    {!solve} call. *)

val solve :
  t ->
  options:Solver.options ->
  Sched.Instance.t ->
  Sched.Solution.t * Solver.stats
(** Run the seed → bound → search pipeline against the persistent store.
    The sync is {e lazy}, mirroring the cold pipeline's laziness: an
    invocation settled by the bound (seed-optimal, possibly via the carried
    certificate) or routed to LNS never touches the store at all — the
    skipped diff simply folds into the next searching invocation's diff.
    Same contract as {!Solver.solve}: never fails, at worst returns the
    greedy seed.  With [options.instrument] the stats carry the session
    counters ([session/retracted], [session/appended_jobs],
    [session/rebuilds], [session/reused_nogoods], [session/cert_proofs],
    [store/words_allocated]) along with per-invocation deltas of the store
    counters. *)

(** {1 Introspection} (cumulative over the session's lifetime) *)

val stats_retracted : t -> int
(** Completed tasks retracted from pool registries. *)

val stats_appended_jobs : t -> int
(** Job blocks appended (rebuilds re-append live jobs). *)

val stats_rebuilds : t -> int
(** Times the store was rebuilt from scratch (outgrown horizon, or a root
    sync failure). *)

val stats_reused_nogoods : t -> int
(** Carried clauses surviving {!Nogood.refresh}, summed over solves. *)

val stats_cert_proofs : t -> int
(** Invocations proved optimal by the carried optimality certificate alone —
    proofs the instance's own lower bound could not deliver, so a cold solve
    would have had to search for them. *)
