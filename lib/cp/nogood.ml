(* Nld-nogoods over bound literals, propagated with two watched literals
   per clause.

   A literal (v, <=, a) or (v, >=, a) is
   - ENTAILED when the current domain of v is contained in it,
   - REFUTED when the current domain is disjoint from it,
   - undecided otherwise.

   A clause is a set of literals that cannot all hold in an improving
   solution: when all are entailed the search fails, when all but one are
   entailed and the last is undecided its complement is asserted.

   Per-clause state is the pair of watched positions (w1, w2); the watch
   invariant is the classic SAT one — a watch only rests on a literal that
   was not entailed when it was placed, and every entailment of a watched
   literal is (eventually) processed through the occurrence list of its
   variable.  Watch positions are deliberately not trailed: after a
   backtrack a watch may rest on an entailed literal, but then the clause
   was unit or satisfied when the watch was last examined, and the
   occurrence entry is still in place, so the next event on either watched
   variable re-examines it — and the propagator rescans all watched
   variables on every run, so nothing is missed.  Occurrence lists are
   keyed by variable (not literal) and use lazy deletion: entries whose
   clause no longer watches any literal of the variable are dropped during
   compaction. *)

(* lit = (a lsl 21) lor (vref lsl 1) lor dir, dir 1 = ">=".  Constants and
   variable references are non-negative and small (horizon-sized times,
   task-count-sized refs), asserted at construction. *)

let max_vref = (1 lsl 20) - 1

let lit_make vref a dir =
  if vref < 0 || vref > max_vref then invalid_arg "Nogood.lit: vref";
  if a < 0 then invalid_arg "Nogood.lit: negative constant";
  (a lsl 21) lor (vref lsl 1) lor dir

let lit_le vref a = lit_make vref a 0
let lit_ge vref a = lit_make vref a 1
let lit_var l = (l lsr 1) land max_vref
let lit_is_ge l = l land 1 = 1
let lit_const l = l lsr 21

type t = {
  max_clauses : int;
  max_lits : int;
  mutable clauses : int array array;  (* clause -> packed literals *)
  mutable bounds : int array;  (* incumbent bound when the clause was derived *)
  mutable marks : int array;
  (* caller's departed-late counter when the clause was derived; {!refresh}
     uses [bounds.(c) - (departed_late - marks.(c))] as the clause's bound
     on the *current* objective (each job that departed late since the
     derivation moved one unit of the old objective into a realized
     constant) *)
  mutable current_mark : int;
  mutable w1 : int array;  (* watched positions; -1 = inert *)
  mutable w2 : int array;
  mutable n : int;
  mutable committed : int;  (* clauses below this are wired into the store *)
  mutable recorded : int;
  mutable dropped : int;
  mutable expired : int;
  mutable unit_props : int;
  mutable conflicts : int;
  mutable context : string option;
  (* Clause pruning is only sound relative to the objective bound the
     clauses were committed under.  A {!Session} mutates its store at the
     root between searches (est bumps, task fixes) with no bound armed;
     propagating clauses there would assert objective-relative facts as
     permanent root prunes.  [armed = false] makes {!run} a no-op (the
     seen snapshots go stale, which is fine: {!refresh} resets them before
     the next commit).  Cold solves never toggle this. *)
  mutable armed : bool;
  (* attachment *)
  mutable store : Store.t option;
  mutable pid : Store.propagator_id option;
  mutable vars : Store.var array;  (* vref -> store var *)
  mutable store_watched : Bytes.t;  (* (vref, dir) pairs already watched *)
  mutable occ : int array array;  (* vref -> clause ids watching a lit of it *)
  mutable occ_len : int array;
  (* Bounds + restore stamp each vref was last processed at.  Between
     backtracks bounds only tighten, and any loosening (or re-tightening to
     the same values, which can silently undo a unit assertion recorded in
     the snapshot state) goes through a trail restore that bumps the var's
     {!Store.restore_stamp} — so "bounds and stamp both unchanged" means no
     watched literal of the vref changed entailment status since the
     snapshot, and the vref needs no re-examination. *)
  mutable seen_min : int array;
  mutable seen_max : int array;
  mutable seen_undo : int array;
}

let create ?(max_clauses = 20_000) ?(max_lits = 64) () =
  {
    max_clauses;
    max_lits;
    clauses = Array.make 64 [||];
    bounds = Array.make 64 0;
    marks = Array.make 64 0;
    current_mark = 0;
    w1 = Array.make 64 (-1);
    w2 = Array.make 64 (-1);
    n = 0;
    committed = 0;
    recorded = 0;
    dropped = 0;
    expired = 0;
    unit_props = 0;
    conflicts = 0;
    context = None;
    armed = true;
    store = None;
    pid = None;
    vars = [||];
    store_watched = Bytes.empty;
    occ = [||];
    occ_len = [||];
    seen_min = [||];
    seen_max = [||];
    seen_undo = [||];
  }

let size t = t.n
let stats_recorded t = t.recorded
let stats_dropped t = t.dropped
let stats_expired t = t.expired
let set_mark t m = t.current_mark <- m
let set_armed t b = t.armed <- b
let stats_unit_props t = t.unit_props
let stats_conflicts t = t.conflicts

let iter t f =
  for c = 0 to t.n - 1 do
    f ~lits:t.clauses.(c) ~bound:t.bounds.(c)
  done

let grow_clause_arrays t =
  let cap = Array.length t.clauses in
  if t.n >= cap then begin
    let cap' = 2 * cap in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.clauses <- extend t.clauses [||];
    t.bounds <- extend t.bounds 0;
    t.marks <- extend t.marks 0;
    t.w1 <- extend t.w1 (-1);
    t.w2 <- extend t.w2 (-1)
  end

let record t ~lits ~bound =
  let len = Array.length lits in
  if len = 0 then ()
  else if len > t.max_lits || t.n >= t.max_clauses then
    t.dropped <- t.dropped + 1
  else begin
    grow_clause_arrays t;
    t.clauses.(t.n) <- lits;
    t.bounds.(t.n) <- bound;
    t.marks.(t.n) <- t.current_mark;
    t.w1.(t.n) <- -1;
    t.w2.(t.n) <- -1;
    t.n <- t.n + 1;
    t.recorded <- t.recorded + 1
  end

let set_context t ctx =
  match t.context with
  | Some c when String.equal c ctx -> ()
  | _ ->
      t.context <- Some ctx;
      t.n <- 0;
      t.committed <- 0

(* --- literal tests against the attached store -------------------------- *)

let entailed t s l =
  let v = t.vars.(lit_var l) in
  if lit_is_ge l then Store.min_of s v >= lit_const l
  else Store.max_of s v <= lit_const l

let refuted t s l =
  let v = t.vars.(lit_var l) in
  if lit_is_ge l then Store.max_of s v < lit_const l
  else Store.min_of s v > lit_const l

(* assert the complement of l; only called on undecided literals, so the
   write is a genuine tightening and cannot fail *)
let assert_complement t s l =
  t.unit_props <- t.unit_props + 1;
  Store.note_nogood_prune s;
  let v = t.vars.(lit_var l) in
  if lit_is_ge l then Store.set_max s v (lit_const l - 1)
  else Store.set_min s v (lit_const l + 1)

(* --- occurrence lists and store watches -------------------------------- *)

let occ_push t vref c =
  let a = t.occ.(vref) and len = t.occ_len.(vref) in
  let a =
    if len >= Array.length a then begin
      let a' = Array.make (max 8 (2 * len)) 0 in
      Array.blit a 0 a' 0 len;
      t.occ.(vref) <- a';
      a'
    end
    else a
  in
  a.(len) <- c;
  t.occ_len.(vref) <- len + 1

(* A [<=] literal becomes entailed when the max drops, a [>=] one when the
   min rises; store watches are registered once per (vref, direction). *)
let ensure_store_watch t s l =
  let vref = lit_var l in
  let slot = (vref * 2) + if lit_is_ge l then 1 else 0 in
  if Bytes.get t.store_watched slot = '\000' then begin
    Bytes.set t.store_watched slot '\001';
    let v = t.vars.(vref) in
    let pid = Option.get t.pid in
    if lit_is_ge l then Store.watch_min s v pid else Store.watch_max s v pid
  end

(* [act] moves the watch at position [which] (1 or 2) of clause [c] off its
   entailed literal.  [Moved]: a replacement watch was placed (and, if its
   variable differs from the old one, an occurrence entry pushed there).
   [Resolved]: no replacement exists — the clause is satisfied (other watch
   refuted) or unit (other watch's complement asserted); the watch stays on
   the entailed literal, which is exactly the untrailed-watch invariant. *)
type act_result = Moved | Resolved

let act t s c which =
  let lits = t.clauses.(c) in
  let p1 = t.w1.(c) and p2 = t.w2.(c) in
  let mine = if which = 1 then p1 else p2 in
  let other = if which = 1 then p2 else p1 in
  let len = Array.length lits in
  let found = ref (-1) in
  let p = ref 0 in
  while !found < 0 && !p < len do
    if !p <> p1 && !p <> p2 && not (entailed t s lits.(!p)) then found := !p;
    incr p
  done;
  if !found >= 0 then begin
    let l' = lits.(!found) in
    if which = 1 then t.w1.(c) <- !found else t.w2.(c) <- !found;
    ensure_store_watch t s l';
    if lit_var l' <> lit_var lits.(mine) then occ_push t (lit_var l') c;
    Moved
  end
  else begin
    let lo = lits.(other) in
    if refuted t s lo then Resolved (* satisfied via the other watch *)
    else if entailed t s lo then begin
      t.conflicts <- t.conflicts + 1;
      raise (Store.Fail "nogood")
    end
    else begin
      assert_complement t s lo;
      Resolved
    end
  end

(* Re-examine clause [c] from vref's occurrence list; [true] keeps the
   entry.  Terminates: [act] only ever moves a watch onto a non-entailed
   literal, so at most both watches move before the else-branch is hit. *)
let rec handle t s vref c =
  let p1 = t.w1.(c) in
  if p1 < 0 then false (* inert clause *)
  else begin
    let lits = t.clauses.(c) in
    let p2 = t.w2.(c) in
    let on1 = lit_var lits.(p1) = vref and on2 = lit_var lits.(p2) = vref in
    if not (on1 || on2) then false (* watches moved elsewhere: stale entry *)
    else if on1 && entailed t s lits.(p1) then
      match act t s c 1 with
      | Moved -> handle t s vref c
      | Resolved -> true
    else if on2 && entailed t s lits.(p2) then
      match act t s c 2 with
      | Moved -> handle t s vref c
      | Resolved -> true
    else true
  end

(* Process the occurrence list of [vref]: lazily compact stale entries and
   act on clauses whose watched literal(s) on vref became entailed. *)
let process t s vref =
  let a = t.occ.(vref) in
  let n = t.occ_len.(vref) in
  let w = ref 0 in
  try
    for r = 0 to n - 1 do
      if handle t s vref a.(r) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    t.occ_len.(vref) <- !w
  with Store.Fail _ as e ->
    (* conservative on unwind: keep the whole list (already-compacted
       entries may sit duplicated in the tail; they are stale-dropped on
       the next examination) *)
    t.occ_len.(vref) <- n;
    raise e

let run t s =
  if not t.armed then ()
  else
    let nv = Array.length t.vars in
    for vref = 0 to nv - 1 do
    if t.occ_len.(vref) > 0 then begin
      let v = t.vars.(vref) in
      let mn = Store.min_of s v
      and mx = Store.max_of s v
      and us = Store.restore_stamp s v in
      if
        mn <> t.seen_min.(vref)
        || mx <> t.seen_max.(vref)
        || us <> t.seen_undo.(vref)
      then begin
        (* snapshot before processing: unit assertions on vref itself
           re-wake this propagator, and the next run must re-examine it *)
        t.seen_min.(vref) <- mn;
        t.seen_max.(vref) <- mx;
        t.seen_undo.(vref) <- us;
        process t s vref
      end
    end
  done

(* Wire one clause against the (root-level) store: find two undecided
   literals to watch; with one undecided assert its complement, with none
   fail.  A literal refuted at the root keeps the clause satisfied forever
   (root bounds are never undone), so such clauses stay inert. *)
let wire t s c =
  let lits = t.clauses.(c) in
  let satisfied = ref false in
  let p1 = ref (-1) and p2 = ref (-1) in
  Array.iteri
    (fun p l ->
      if refuted t s l then satisfied := true
      else if not (entailed t s l) then
        if !p1 < 0 then p1 := p else if !p2 < 0 then p2 := p)
    lits;
  if !satisfied then begin
    t.w1.(c) <- -1;
    t.w2.(c) <- -1
  end
  else if !p1 < 0 then begin
    t.conflicts <- t.conflicts + 1;
    raise (Store.Fail "nogood at root")
  end
  else if !p2 < 0 then begin
    assert_complement t s lits.(!p1);
    t.w1.(c) <- -1;
    t.w2.(c) <- -1
  end
  else begin
    t.w1.(c) <- !p1;
    t.w2.(c) <- !p2;
    ensure_store_watch t s lits.(!p1);
    ensure_store_watch t s lits.(!p2);
    occ_push t (lit_var lits.(!p1)) c;
    if lit_var lits.(!p2) <> lit_var lits.(!p1) then
      occ_push t (lit_var lits.(!p2)) c
  end

let commit t =
  match t.store with
  | None -> ()
  | Some s ->
      while t.committed < t.n do
        let c = t.committed in
        t.committed <- t.committed + 1;
        wire t s c
      done

(* --- cross-invocation reuse (persistent sessions) ---------------------- *)

let grow_vars t ~vars =
  let old = Array.length t.vars in
  let nv = Array.length vars in
  if nv < old then invalid_arg "Nogood.grow_vars: vars may only grow";
  if nv > max_vref then invalid_arg "Nogood.grow_vars: too many variables";
  t.vars <- vars;
  if nv > old then begin
    let extend a fill =
      let a' = Array.make nv fill in
      Array.blit a 0 a' 0 old;
      a'
    in
    t.occ <- extend t.occ [||];
    t.occ_len <- extend t.occ_len 0;
    t.seen_min <- extend t.seen_min max_int;
    t.seen_max <- extend t.seen_max min_int;
    t.seen_undo <- extend t.seen_undo (-1);
    let b = Bytes.make (2 * nv) '\000' in
    Bytes.blit t.store_watched 0 b 0 (2 * old);
    t.store_watched <- b
  end

let refresh t ~departed_late ~initial_bound =
  let w = ref 0 in
  for c = 0 to t.n - 1 do
    (* The clause proved "lits ⟹ old objective ≥ bounds.(c)".  Every job
       that departed late since the derivation turned one unit of that old
       objective into a realized constant outside the current objective, so
       the clause now only supports "lits ⟹ current objective ≥ b".  Using
       it unconditionally in a search whose bound starts at [initial_bound]
       is sound exactly when b ≥ initial_bound (bounds only tighten from
       there).  [departed_late - marks.(c)] over-counts k for clauses that
       outlived jobs which both arrived and departed after their derivation,
       which only expires clauses early — conservative, never unsound. *)
    let b = t.bounds.(c) - (departed_late - t.marks.(c)) in
    if b >= initial_bound then begin
      t.clauses.(!w) <- t.clauses.(c);
      t.bounds.(!w) <- b;
      t.marks.(!w) <- departed_late;
      t.w1.(!w) <- -1;
      t.w2.(!w) <- -1;
      incr w
    end
    else t.expired <- t.expired + 1
  done;
  t.n <- !w;
  t.committed <- 0;
  t.current_mark <- departed_late;
  (* every surviving clause is rewired by the next {!commit}: drop all
     occurrence entries and force a full re-examination of every vref *)
  Array.fill t.occ_len 0 (Array.length t.occ_len) 0;
  Array.fill t.seen_min 0 (Array.length t.seen_min) max_int;
  Array.fill t.seen_max 0 (Array.length t.seen_max) min_int;
  Array.fill t.seen_undo 0 (Array.length t.seen_undo) (-1)

let attach t store ~vars =
  t.store <- Some store;
  t.vars <- vars;
  let nv = Array.length vars in
  if nv > max_vref then invalid_arg "Nogood.attach: too many variables";
  t.occ <- Array.make nv [||];
  t.occ_len <- Array.make nv 0;
  t.store_watched <- Bytes.make (2 * nv) '\000';
  t.seen_min <- Array.make nv max_int;
  t.seen_max <- Array.make nv min_int;
  t.seen_undo <- Array.make nv (-1);
  t.pid <-
    Some
      (Store.register store ~priority:0 ~name:"nogood" ~idempotent:false
         (fun s -> run t s));
  t.committed <- 0;
  commit t
