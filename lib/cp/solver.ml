module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Greedy = Sched.Greedy

type options = {
  ordering : Greedy.order;
  exact_task_limit : int;
  fail_limit : int;
  time_limit : float;
  lns_neighbors : int;
  lns_max_stall : int;
  seed : int;
  tie_break : Search.tie_break;
  instrument : bool;
}

let default_options =
  {
    ordering = Greedy.Edf;
    exact_task_limit = 120;
    fail_limit = 20_000;
    time_limit = 0.5;
    lns_neighbors = 4;
    lns_max_stall = 12;
    seed = 0;
    tie_break = Search.Slack_first;
    instrument = false;
  }

(* Hooks a portfolio coordinator installs so concurrent workers share the
   incumbent Σ N_j and stop as soon as one of them proves optimality.  The
   null link (used by the plain sequential {!solve}) makes every hook a
   no-op, so the linked code path is observably identical to the historical
   sequential solver. *)
type link = {
  should_stop : unit -> bool;
  global_bound : unit -> int;
  announce : int -> unit;
  isolated : bool;
}

let null_link =
  {
    should_stop = (fun () -> false);
    global_bound = (fun () -> max_int);
    announce = ignore;
    isolated = true;
  }

type stats = Obs.Solve_stats.t = {
  seed_late : int;
  lower_bound : int;
  proved_optimal : bool;
  nodes : int;
  failures : int;
  lns_moves : int;
  elapsed : float;
  metrics : Obs.Metrics.snapshot option;
}

let pp_stats = Obs.Solve_stats.pp

(* Wave-based lower bound on the span of a task set under a capacity:
   no schedule can beat the longest task, nor total-work/capacity. *)
let wave_bound tasks capacity =
  if Array.length tasks = 0 then 0
  else begin
    let total = ref 0 and longest = ref 0 in
    Array.iter
      (fun (t : T.task) ->
        total := !total + (t.T.exec_time * t.T.capacity_req);
        if t.T.exec_time > !longest then longest := t.T.exec_time)
      tasks;
    max !longest (((!total + capacity) - 1) / capacity)
  end

let job_min_completion (inst : Instance.t) (j : Instance.pending_job) =
  let map_span = wave_bound j.Instance.pending_maps inst.Instance.map_capacity in
  let map_end = max j.Instance.frozen_lfmt (j.Instance.est + map_span) in
  let completion =
    if Array.length j.Instance.pending_reduces = 0 then map_end
    else
      map_end
      + wave_bound j.Instance.pending_reduces inst.Instance.reduce_capacity
  in
  max j.Instance.frozen_completion completion

let late_lower_bound (inst : Instance.t) =
  Array.fold_left
    (fun acc j ->
      if job_min_completion inst j > j.Instance.job.T.deadline then acc + 1
      else acc)
    0 inst.Instance.jobs

(* EDF sequence with provably-doomed jobs pushed last: a job that cannot meet
   its deadline in any schedule should not take resources ahead of savable
   ones — the sacrifice the CP objective makes naturally, pre-baked into a
   seed. *)
let doomed_last_sequence (inst : Instance.t) =
  let n = Array.length inst.Instance.jobs in
  let seq = Array.init n (fun i -> i) in
  let key i =
    let j = inst.Instance.jobs.(i) in
    let doomed =
      if job_min_completion inst j > j.Instance.job.T.deadline then 1 else 0
    in
    (doomed, j.Instance.job.T.deadline, j.Instance.job.T.id)
  in
  Array.sort (fun a b -> compare (key a) (key b)) seq;
  seq

(* Best greedy seed across the orderings (plus the doomed-last variant),
   preferring the configured one on ties. *)
let greedy_seed ~ordering inst =
  let preferred = Greedy.solve ~order:ordering inst in
  let best =
    List.fold_left
      (fun best order ->
        if order = ordering then best
        else
          let sol = Greedy.solve ~order inst in
          if Solution.better sol best then sol else best)
      preferred
      [ Greedy.By_job_id; Greedy.Edf; Greedy.Least_laxity ]
  in
  let doomed_last =
    Greedy.solve_with_sequence inst (doomed_last_sequence inst)
  in
  if Solution.better doomed_last best then doomed_last else best

(* Freeze the pending tasks of every non-relaxed job at their incumbent
   start times, producing the LNS subproblem. *)
let freeze_except (inst : Instance.t) (incumbent : Solution.t) relax_set =
  let jobs =
    Array.mapi
      (fun jdx (j : Instance.pending_job) ->
        if Hashtbl.mem relax_set jdx then j
        else begin
          let freeze (task : T.task) =
            {
              Instance.task;
              start = Solution.start_of incumbent ~task_id:task.T.task_id;
            }
          in
          let new_fixed_maps = Array.map freeze j.Instance.pending_maps in
          let new_fixed_reduces = Array.map freeze j.Instance.pending_reduces in
          let completion_of (f : Instance.fixed_task) =
            f.Instance.start + f.Instance.task.T.exec_time
          in
          let fold = Array.fold_left (fun acc f -> max acc (completion_of f)) in
          let frozen_lfmt = fold j.Instance.frozen_lfmt new_fixed_maps in
          let frozen_completion =
            fold (fold (max j.Instance.frozen_completion frozen_lfmt)
                    new_fixed_maps)
              new_fixed_reduces
          in
          {
            j with
            Instance.pending_maps = [||];
            pending_reduces = [||];
            fixed_maps = Array.append j.Instance.fixed_maps new_fixed_maps;
            fixed_reduces =
              Array.append j.Instance.fixed_reduces new_fixed_reduces;
            frozen_lfmt;
            frozen_completion;
          }
        end)
      inst.Instance.jobs
  in
  { inst with Instance.jobs = jobs }

let merge_starts (inst : Instance.t) (incumbent : Solution.t)
    (partial : Solution.t) =
  let merged = Hashtbl.copy incumbent.Solution.starts in
  Hashtbl.iter (Hashtbl.replace merged) partial.Solution.starts;
  Solution.evaluate inst merged

(* Drain a searched store's per-propagator telemetry into the registry. *)
let harvest_store registry store =
  Obs.Metrics.add (Obs.Metrics.counter registry "store/propagations")
    (Store.stats_propagations store);
  List.iter
    (fun (pm : Store.prop_metric) ->
      let pfx = "prop/" ^ pm.Store.prop_name in
      Obs.Metrics.add (Obs.Metrics.counter registry (pfx ^ "/fires"))
        pm.Store.fires;
      Obs.Metrics.add (Obs.Metrics.counter registry (pfx ^ "/fails"))
        pm.Store.fails;
      Obs.Metrics.observe
        (Obs.Metrics.histogram registry (pfx ^ "/time_s"))
        pm.Store.time_s)
    (Store.propagator_metrics store)

let run_exact ?tie_break ?registry inst ~bound_to_beat ~limits =
  let model = Model.build inst ~horizon:(Model.default_horizon inst) in
  model.Model.bound := bound_to_beat;
  (match registry with
  | Some _ -> Store.set_instrumented model.Model.store true
  | None -> ());
  let outcome = Search.run ?tie_break model limits in
  (match registry with
  | Some r -> harvest_store r model.Model.store
  | None -> ());
  outcome

let solve_linked ~options ~link (inst : Instance.t) =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. options.time_limit in
  let registry =
    if options.instrument then Some (Obs.Metrics.create ()) else None
  in
  let seed_sol = greedy_seed ~ordering:options.ordering inst in
  let lb = late_lower_bound inst in
  link.announce seed_sol.Solution.late_jobs;
  let nodes = ref 0 and failures = ref 0 and lns_moves = ref 0 in
  let finish incumbent proved =
    ( incumbent,
      {
        seed_late = seed_sol.Solution.late_jobs;
        lower_bound = lb;
        proved_optimal = proved;
        nodes = !nodes;
        failures = !failures;
        lns_moves = !lns_moves;
        elapsed = Unix.gettimeofday () -. t0;
        metrics = Option.map Obs.Metrics.snapshot registry;
      } )
  in
  if seed_sol.Solution.late_jobs <= lb then finish seed_sol true
  else begin
    let task_count = Instance.pending_task_count inst in
    if task_count <= options.exact_task_limit then begin
      let limits =
        {
          Search.fail_limit = options.fail_limit;
          node_limit = 0;
          wall_deadline = Some deadline;
          interrupt = Some link.should_stop;
          tighten_bound =
            (if link.isolated then None else Some link.global_bound);
          on_improve = Some link.announce;
        }
      in
      let outcome =
        run_exact ~tie_break:options.tie_break ?registry inst
          ~bound_to_beat:seed_sol.Solution.late_jobs ~limits
      in
      nodes := outcome.Search.nodes;
      failures := outcome.Search.failures;
      let incumbent =
        match outcome.Search.best with
        | Some better -> better
        | None -> seed_sol
      in
      finish incumbent outcome.Search.proved_optimal
    end
    else begin
      (* LNS over job neighbourhoods *)
      let rng = Simrand.Rng.create options.seed in
      let n_jobs = Array.length inst.Instance.jobs in
      let incumbent = ref seed_sol in
      let stall = ref 0 in
      let continue () =
        !incumbent.Solution.late_jobs > lb
        && !stall < options.lns_max_stall
        && Unix.gettimeofday () < deadline
        && not (link.should_stop ())
      in
      while continue () do
        incr lns_moves;
        let relax_set = Hashtbl.create 16 in
        (* all currently-late jobs ... *)
        Array.iteri
          (fun jdx (j : Instance.pending_job) ->
            let completion =
              Solution.job_completion j !incumbent.Solution.starts
            in
            if completion > j.Instance.job.T.deadline then
              Hashtbl.replace relax_set jdx ())
          inst.Instance.jobs;
        (* ... plus a few random neighbours *)
        for _ = 1 to options.lns_neighbors do
          Hashtbl.replace relax_set (Simrand.Rng.int rng n_jobs) ()
        done;
        let sub = freeze_except inst !incumbent relax_set in
        let limits =
          {
            Search.fail_limit = options.fail_limit;
            node_limit = 0;
            wall_deadline = Some deadline;
            interrupt = Some link.should_stop;
            (* the subsearch walks a local neighbourhood; foreign bounds feed
               in through [bound_to_beat] below, not mid-search, so the
               isolated (sequential-replica) trajectory stays reproducible *)
            tighten_bound = None;
            on_improve = None;
          }
        in
        (* prune against the best solution found anywhere: a fragment is only
           worth exploring if it can beat the global incumbent *)
        let bound_to_beat =
          if link.isolated then !incumbent.Solution.late_jobs
          else min !incumbent.Solution.late_jobs (link.global_bound ())
        in
        let outcome =
          if Obs.Trace.enabled () then
            Obs.Trace.with_span ~cat:"search" "lns-move"
              ~args:[ ("relaxed_jobs", Obs.Trace.Int (Hashtbl.length relax_set)) ]
              (fun () ->
                run_exact ~tie_break:options.tie_break ?registry sub
                  ~bound_to_beat ~limits)
          else
            run_exact ~tie_break:options.tie_break ?registry sub ~bound_to_beat
              ~limits
        in
        nodes := !nodes + outcome.Search.nodes;
        failures := !failures + outcome.Search.failures;
        match outcome.Search.best with
        | Some partial ->
            let merged = merge_starts inst !incumbent partial in
            if Solution.better merged !incumbent then begin
              incumbent := merged;
              stall := 0;
              link.announce merged.Solution.late_jobs
            end
            else incr stall
        | None -> incr stall
      done;
      finish !incumbent (!incumbent.Solution.late_jobs <= lb)
    end
  end

let solve ?(options = default_options) (inst : Instance.t) =
  solve_linked ~options ~link:null_link inst
