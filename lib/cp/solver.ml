module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Greedy = Sched.Greedy

type incumbent = {
  carried_starts : (int, int) Hashtbl.t;
  changed_jobs : int list;
}

type options = {
  ordering : Greedy.order;
  exact_task_limit : int;
  fail_limit : int;
  time_limit : float;
  lns_neighbors : int;
  lns_max_stall : int;
  seed : int;
  tie_break : Search.tie_break;
  instrument : bool;
  warm_start : incumbent option;
  kernel : Propagators.kernel;
  restart : Restart.policy;
}

let default_options =
  {
    ordering = Greedy.Edf;
    exact_task_limit = 120;
    fail_limit = 20_000;
    time_limit = 0.5;
    lns_neighbors = 4;
    lns_max_stall = 12;
    seed = 0;
    tie_break = Search.Slack_first;
    instrument = false;
    warm_start = None;
    kernel = Propagators.Both;
    restart = Restart.Off;
  }

(* Hooks a portfolio coordinator installs so concurrent workers share the
   incumbent Σ N_j and stop as soon as one of them proves optimality.  The
   null link (used by the plain sequential {!solve}) makes every hook a
   no-op, so the linked code path is observably identical to the historical
   sequential solver. *)
type link = {
  should_stop : unit -> bool;
  global_bound : unit -> int;
  announce : int -> unit;
  isolated : bool;
}

let null_link =
  {
    should_stop = (fun () -> false);
    global_bound = (fun () -> max_int);
    announce = ignore;
    isolated = true;
  }

type stats = Obs.Solve_stats.t = {
  seed_late : int;
  lower_bound : int;
  proved_optimal : bool;
  warm_seeded : bool;
  stop_reason : Obs.Solve_stats.stop_reason;
  nodes : int;
  failures : int;
  restarts : int;
  lns_moves : int;
  elapsed : float;
  metrics : Obs.Metrics.snapshot option;
}

let pp_stats = Obs.Solve_stats.pp

(* Wave-based lower bound on the span of a task set under a capacity:
   no schedule can beat the longest task, nor total-work/capacity. *)
let wave_bound tasks capacity =
  if Array.length tasks = 0 then 0
  else begin
    let total = ref 0 and longest = ref 0 in
    Array.iter
      (fun (t : T.task) ->
        total := !total + (t.T.exec_time * t.T.capacity_req);
        if t.T.exec_time > !longest then longest := t.T.exec_time)
      tasks;
    max !longest (((!total + capacity) - 1) / capacity)
  end

let job_min_completion (inst : Instance.t) (j : Instance.pending_job) =
  let map_span = wave_bound j.Instance.pending_maps inst.Instance.map_capacity in
  let map_end = max j.Instance.frozen_lfmt (j.Instance.est + map_span) in
  let completion =
    if Array.length j.Instance.pending_reduces = 0 then map_end
    else
      map_end
      + wave_bound j.Instance.pending_reduces inst.Instance.reduce_capacity
  in
  max j.Instance.frozen_completion completion

let job_doomed (inst : Instance.t) (j : Instance.pending_job) =
  job_min_completion inst j > j.Instance.job.T.deadline

let late_lower_bound (inst : Instance.t) =
  Array.fold_left
    (fun acc j -> if job_doomed inst j then acc + 1 else acc)
    0 inst.Instance.jobs

(* EDF sequence with provably-doomed jobs pushed last: a job that cannot meet
   its deadline in any schedule should not take resources ahead of savable
   ones — the sacrifice the CP objective makes naturally, pre-baked into a
   seed. *)
let doomed_last_sequence (inst : Instance.t) =
  let n = Array.length inst.Instance.jobs in
  let seq = Array.init n (fun i -> i) in
  let key i =
    let j = inst.Instance.jobs.(i) in
    let doomed =
      if job_min_completion inst j > j.Instance.job.T.deadline then 1 else 0
    in
    (doomed, j.Instance.job.T.deadline, j.Instance.job.T.id)
  in
  Array.sort (fun a b -> compare (key a) (key b)) seq;
  seq

(* Best greedy seed across the orderings (plus the doomed-last variant),
   preferring the configured one on ties.  [?preferred] lets a caller that
   already ran the configured ordering hand the result in. *)
let greedy_seed ?preferred ~ordering inst =
  let preferred =
    match preferred with
    | Some p -> p
    | None -> Greedy.solve ~order:ordering inst
  in
  let best =
    List.fold_left
      (fun best order ->
        if order = ordering then best
        else
          let sol = Greedy.solve ~order inst in
          if Solution.better sol best then sol else best)
      preferred
      [ Greedy.By_job_id; Greedy.Edf; Greedy.Least_laxity ]
  in
  let doomed_last =
    Greedy.solve_with_sequence inst (doomed_last_sequence inst)
  in
  if Solution.better doomed_last best then doomed_last else best

(* Freeze the pending tasks of every non-relaxed job at their incumbent
   start times, producing the LNS subproblem. *)
let freeze_except (inst : Instance.t) (incumbent : Solution.t) relax_set =
  let jobs =
    Array.mapi
      (fun jdx (j : Instance.pending_job) ->
        if Hashtbl.mem relax_set jdx then j
        else begin
          let freeze (task : T.task) =
            {
              Instance.task;
              start = Solution.start_of incumbent ~task_id:task.T.task_id;
            }
          in
          let new_fixed_maps = Array.map freeze j.Instance.pending_maps in
          let new_fixed_reduces = Array.map freeze j.Instance.pending_reduces in
          let completion_of (f : Instance.fixed_task) =
            f.Instance.start + f.Instance.task.T.exec_time
          in
          let fold = Array.fold_left (fun acc f -> max acc (completion_of f)) in
          let frozen_lfmt = fold j.Instance.frozen_lfmt new_fixed_maps in
          let frozen_completion =
            fold (fold (max j.Instance.frozen_completion frozen_lfmt)
                    new_fixed_maps)
              new_fixed_reduces
          in
          {
            j with
            Instance.pending_maps = [||];
            pending_reduces = [||];
            fixed_maps = Array.append j.Instance.fixed_maps new_fixed_maps;
            fixed_reduces =
              Array.append j.Instance.fixed_reduces new_fixed_reduces;
            frozen_lfmt;
            frozen_completion;
          }
        end)
      inst.Instance.jobs
  in
  { inst with Instance.jobs = jobs }

let merge_starts (inst : Instance.t) (incumbent : Solution.t)
    (partial : Solution.t) =
  let merged = Hashtbl.copy incumbent.Solution.starts in
  Hashtbl.iter (Hashtbl.replace merged) partial.Solution.starts;
  Solution.evaluate inst merged

(* Structural fingerprint of an LNS fragment: which jobs are frozen and at
   which start times.  Nogoods recorded against a fragment are only valid
   for bit-identical frozen context, so this is compared as a full string —
   never a hash, where a collision would make the pruning unsound. *)
let frozen_fingerprint (inst : Instance.t) (incumbent : Solution.t) relax_set =
  let b = Buffer.create 256 in
  Array.iteri
    (fun jdx (j : Instance.pending_job) ->
      if not (Hashtbl.mem relax_set jdx) then begin
        Buffer.add_string b (string_of_int jdx);
        Buffer.add_char b ':';
        let add (task : T.task) =
          Buffer.add_string b
            (string_of_int
               (Solution.start_of incumbent ~task_id:task.T.task_id));
          Buffer.add_char b ','
        in
        Array.iter add j.Instance.pending_maps;
        Array.iter add j.Instance.pending_reduces;
        Buffer.add_char b ';'
      end)
    inst.Instance.jobs;
  Buffer.contents b

(* Checks the same Table-1 constraints as [Solution.feasibility_errors] —
   every pending task has a start, starts respect est, reduces respect the
   job's latest-finishing-map time, pool capacities are never exceeded — but
   with per-task arithmetic plus one event sweep per pool instead of
   replaying every task through a capacity profile.  This runs on every
   warm-started solve, where the profile replay was measured to cost as much
   as a whole greedy pass. *)
let candidate_feasible (inst : Instance.t) (sol : Solution.t) =
  let ok = ref true in
  let map_events = ref [] and reduce_events = ref [] in
  let push evs start (task : T.task) =
    evs :=
      (start, task.T.capacity_req)
      :: (start + task.T.exec_time, -task.T.capacity_req)
      :: !evs
  in
  Array.iter
    (fun (j : Instance.pending_job) ->
      Array.iter
        (fun (f : Instance.fixed_task) ->
          push map_events f.Instance.start f.Instance.task)
        j.Instance.fixed_maps;
      Array.iter
        (fun (f : Instance.fixed_task) ->
          push reduce_events f.Instance.start f.Instance.task)
        j.Instance.fixed_reduces;
      let lfmt = ref j.Instance.frozen_lfmt in
      Array.iter
        (fun (task : T.task) ->
          match Hashtbl.find_opt sol.Solution.starts task.T.task_id with
          | None -> ok := false
          | Some s ->
              if s < j.Instance.est then ok := false;
              if s + task.T.exec_time > !lfmt then
                lfmt := s + task.T.exec_time;
              push map_events s task)
        j.Instance.pending_maps;
      Array.iter
        (fun (task : T.task) ->
          match Hashtbl.find_opt sol.Solution.starts task.T.task_id with
          | None -> ok := false
          | Some s ->
              if s < !lfmt then ok := false;
              push reduce_events s task)
        j.Instance.pending_reduces)
    inst.Instance.jobs;
  let capacity_ok events capacity =
    let evs = Array.of_list !events in
    (* releases sort before acquisitions at equal times, so back-to-back
       tasks on the same slot don't double-count *)
    Array.sort
      (fun (t1, d1) (t2, d2) ->
        if t1 <> t2 then compare t1 t2 else compare d1 d2)
      evs;
    let load = ref 0 and fits = ref true in
    Array.iter
      (fun (_, delta) ->
        load := !load + delta;
        if !load > capacity then fits := false)
      evs;
    !fits
  in
  !ok
  && capacity_ok map_events inst.Instance.map_capacity
  && capacity_ok reduce_events inst.Instance.reduce_capacity

(* Complete a carried-over plan into a full candidate solution for the
   updated instance.  A job is "covered" when every one of its pending tasks
   still has a carried (non-stale) start; covered jobs are frozen at those
   starts and the remaining jobs (new arrivals, or jobs whose carried entries
   went stale) are list-scheduled around them.  The result is only returned
   when it passes the Table-1 constraint check, so a warm start can never
   inject an infeasible incumbent. *)
let warm_candidate (inst : Instance.t) (inc : incumbent) =
  let fresh j (task : T.task) =
    (* a carried start below the job's current est is stale (the clock or a
       deferral release bumped s_j past it) and poisons the whole job *)
    match Hashtbl.find_opt inc.carried_starts task.T.task_id with
    | Some s -> s >= j.Instance.est
    | None -> false
  in
  let covered (j : Instance.pending_job) =
    Array.for_all (fresh j) j.Instance.pending_maps
    && Array.for_all (fresh j) j.Instance.pending_reduces
  in
  let uncovered = Hashtbl.create 8 in
  Array.iteri
    (fun jdx j -> if not (covered j) then Hashtbl.replace uncovered jdx ())
    inst.Instance.jobs;
  let n_jobs = Array.length inst.Instance.jobs in
  if n_jobs = 0 || Hashtbl.length uncovered = n_jobs then None
  else begin
    let starts = Hashtbl.create 64 in
    Array.iteri
      (fun jdx (j : Instance.pending_job) ->
        if not (Hashtbl.mem uncovered jdx) then begin
          let copy (task : T.task) =
            Hashtbl.replace starts task.T.task_id
              (Hashtbl.find inc.carried_starts task.T.task_id)
          in
          Array.iter copy j.Instance.pending_maps;
          Array.iter copy j.Instance.pending_reduces
        end)
      inst.Instance.jobs;
    if Hashtbl.length uncovered > 0 then begin
      let pseudo = { Solution.starts; late_jobs = 0; total_tardiness = 0 } in
      let sub = freeze_except inst pseudo uncovered in
      (* fixed Edf completion order keeps the candidate identical across
         portfolio workers whatever their own seed ordering is *)
      let partial = Greedy.solve ~order:Greedy.Edf sub in
      Hashtbl.iter (Hashtbl.replace starts) partial.Solution.starts
    end;
    let sol = Solution.evaluate inst starts in
    if candidate_feasible inst sol then Some sol else None
  end

(* The incumbent the search pipeline actually starts from.  Cold solves take
   the best greedy seed over every ordering.  Warm solves put the carried
   plan on the critical path instead of on top of it: when the caller
   supplies the lower bound and the warm candidate already meets it, no
   greedy runs at all (the plan-cache-hit fast path — the whole solve
   reduces to one coverage check plus a list-scheduling completion);
   otherwise the candidate is raced against a single pass of the configured
   ordering, and only when it loses does the full multi-ordering cold seed
   run.  Ties go to the warm plan — it minimizes churn against the previous
   schedule.  The returned flag records whether the warm candidate won. *)
let starting_incumbent ~options ?lb inst =
  let cold () = (greedy_seed ~ordering:options.ordering inst, false) in
  match options.warm_start with
  | None -> cold ()
  | Some inc -> (
      match warm_candidate inst inc with
      | None -> cold ()
      | Some warm
        when (match lb with
             | Some b -> warm.Solution.late_jobs <= b
             | None -> false) ->
          (warm, true)
      | Some warm ->
          let preferred = Greedy.solve ~order:options.ordering inst in
          if not (Solution.better preferred warm) then (warm, true)
          else (greedy_seed ~preferred ~ordering:options.ordering inst, false))

(* Drain a searched store's per-propagator telemetry into the registry. *)
let harvest_store registry store =
  Obs.Metrics.add (Obs.Metrics.counter registry "store/propagations")
    (Store.stats_propagations store);
  Obs.Metrics.add (Obs.Metrics.counter registry "prop/wakeups_skipped")
    (Store.stats_wakeups_skipped store);
  Obs.Metrics.add (Obs.Metrics.counter registry "prop/edge_finder_prunes")
    (Store.stats_edge_finder_prunes store);
  Obs.Metrics.add (Obs.Metrics.counter registry "prop/scratch_reuse")
    (Store.stats_scratch_reuse store);
  Obs.Metrics.add (Obs.Metrics.counter registry "nogood/prunes")
    (Store.stats_nogood_prunes store);
  List.iter
    (fun (pm : Store.prop_metric) ->
      let pfx = "prop/" ^ pm.Store.prop_name in
      Obs.Metrics.add (Obs.Metrics.counter registry (pfx ^ "/fires"))
        pm.Store.fires;
      Obs.Metrics.add (Obs.Metrics.counter registry (pfx ^ "/fails"))
        pm.Store.fails;
      Obs.Metrics.observe
        (Obs.Metrics.histogram registry (pfx ^ "/time_s"))
        pm.Store.time_s)
    (Store.propagator_metrics store)

(* One incumbent start value per model start variable, for solution-guided
   value ordering; tasks the solution does not cover get no guidance. *)
let guide_of_solution model (sol : Solution.t) =
  Array.map
    (fun (tv : Model.task_var) ->
      match Hashtbl.find_opt sol.Solution.starts tv.Model.task.T.task_id with
      | Some s -> s
      | None -> min_int)
    model.Model.starts

let run_exact ?tie_break ?registry ?kernel ?(restart = Restart.Off) ?nogoods
    ?guide_sol inst ~bound_to_beat ~limits =
  let model = Model.build ?kernel inst ~horizon:(Model.default_horizon inst) in
  model.Model.bound := bound_to_beat;
  (match registry with
  | Some _ -> Store.set_instrumented model.Model.store true
  | None -> ());
  let nogoods = if restart = Restart.Off then None else nogoods in
  let attach_ok =
    match nogoods with
    | None -> true
    | Some db -> (
        let vars =
          Array.append model.Model.lates
            (Array.map (fun (tv : Model.task_var) -> tv.Model.var)
               model.Model.starts)
        in
        try
          Nogood.attach db model.Model.store ~vars;
          true
        with Store.Fail _ -> false)
  in
  let outcome =
    if attach_ok then
      let guide = Option.map (guide_of_solution model) guide_sol in
      Search.run ?tie_break ~restart ?nogoods ?guide model limits
    else
      (* a carried nogood failed the fresh root: no solution beats
         [bound_to_beat], which is a (cheap) proof of optimality *)
      {
        Search.best = None;
        proved_optimal = true;
        stopped = Search.Exhausted;
        nodes = 0;
        failures = 1;
        restarts = 0;
      }
  in
  (match registry with
  | Some r ->
      harvest_store r model.Model.store;
      Obs.Metrics.add
        (Obs.Metrics.counter r "restart/restarts")
        outcome.Search.restarts
  | None -> ());
  outcome

let solve_linked ~options ~link (inst : Instance.t) =
  let t0 = Obs.Clock.now () in
  let deadline = t0 +. options.time_limit in
  let registry =
    if options.instrument then Some (Obs.Metrics.create ()) else None
  in
  let lb = late_lower_bound inst in
  let seed_sol, warm_seeded = starting_incumbent ~options ~lb inst in
  link.announce seed_sol.Solution.late_jobs;
  let nodes = ref 0
  and failures = ref 0
  and restarts = ref 0
  and lns_moves = ref 0 in
  (* one nogood database for the whole solve: the exact path keeps a single
     context, LNS moves share clauses across identically-frozen fragments *)
  let db =
    if options.restart = Restart.Off then None else Some (Nogood.create ())
  in
  let finish ~stop incumbent proved =
    (match (registry, db) with
    | Some r, Some d ->
        Obs.Metrics.add
          (Obs.Metrics.counter r "nogood/recorded")
          (Nogood.stats_recorded d);
        Obs.Metrics.add
          (Obs.Metrics.counter r "nogood/unit_props")
          (Nogood.stats_unit_props d);
        Obs.Metrics.add
          (Obs.Metrics.counter r "nogood/conflicts")
          (Nogood.stats_conflicts d)
    | _ -> ());
    ( incumbent,
      {
        seed_late = seed_sol.Solution.late_jobs;
        lower_bound = lb;
        proved_optimal = proved;
        warm_seeded;
        stop_reason = stop;
        nodes = !nodes;
        failures = !failures;
        restarts = !restarts;
        lns_moves = !lns_moves;
        elapsed = Obs.Clock.now () -. t0;
        metrics = Option.map Obs.Metrics.snapshot registry;
      } )
  in
  if seed_sol.Solution.late_jobs <= lb then
    finish seed_sol true
      ~stop:
        (if warm_seeded then Obs.Solve_stats.Cache_hit
         else Obs.Solve_stats.Proved)
  else begin
    let task_count = Instance.pending_task_count inst in
    if task_count <= options.exact_task_limit then begin
      (* an improving solution that reaches [lb] is already optimal — stop
         there instead of exhausting the rest of the tree to re-prove it *)
      let hit_lb = ref false in
      let limits =
        {
          Search.fail_limit = options.fail_limit;
          node_limit = 0;
          wall_deadline = Some deadline;
          interrupt = Some (fun () -> !hit_lb || link.should_stop ());
          tighten_bound =
            (if link.isolated then None else Some link.global_bound);
          on_improve =
            Some
              (fun v ->
                if v <= lb then hit_lb := true;
                link.announce v);
        }
      in
      (match db with Some d -> Nogood.set_context d "exact" | None -> ());
      let outcome =
        run_exact ~tie_break:options.tie_break ?registry ~kernel:options.kernel
          ~restart:options.restart ?nogoods:db ~guide_sol:seed_sol inst
          ~bound_to_beat:seed_sol.Solution.late_jobs ~limits
      in
      nodes := outcome.Search.nodes;
      failures := outcome.Search.failures;
      restarts := outcome.Search.restarts;
      let incumbent =
        match outcome.Search.best with
        | Some better -> better
        | None -> seed_sol
      in
      let proved =
        outcome.Search.proved_optimal || incumbent.Solution.late_jobs <= lb
      in
      finish incumbent proved
        ~stop:
          (if proved then Obs.Solve_stats.Proved
           else Search.stop_reason_of_cause outcome.Search.stopped)
    end
    else begin
      (* LNS over job neighbourhoods *)
      let rng = Simrand.Rng.create options.seed in
      let n_jobs = Array.length inst.Instance.jobs in
      let incumbent = ref seed_sol in
      let stall = ref 0 in
      (* warm start: the jobs the caller flagged as changed since the last
         solve (new arrivals, repaired jobs) are relaxed on the first move,
         so the search immediately re-optimizes around the delta instead of
         a random neighbourhood *)
      let changed_idxs =
        match options.warm_start with
        | Some { changed_jobs = (_ :: _) as ids; _ } ->
            let wanted = Hashtbl.create 16 in
            List.iter (fun id -> Hashtbl.replace wanted id ()) ids;
            let acc = ref [] in
            Array.iteri
              (fun jdx (j : Instance.pending_job) ->
                if Hashtbl.mem wanted j.Instance.job.T.id then acc := jdx :: !acc)
              inst.Instance.jobs;
            !acc
        | Some _ | None -> []
      in
      let continue () =
        !incumbent.Solution.late_jobs > lb
        && !stall < options.lns_max_stall
        && Obs.Clock.now () < deadline
        && not (link.should_stop ())
      in
      while continue () do
        incr lns_moves;
        let relax_set = Hashtbl.create 16 in
        if !lns_moves = 1 then
          List.iter (fun jdx -> Hashtbl.replace relax_set jdx ()) changed_idxs;
        (* all currently-late jobs ... *)
        Array.iteri
          (fun jdx (j : Instance.pending_job) ->
            let completion =
              Solution.job_completion j !incumbent.Solution.starts
            in
            if completion > j.Instance.job.T.deadline then
              Hashtbl.replace relax_set jdx ())
          inst.Instance.jobs;
        (* ... plus a few random neighbours *)
        for _ = 1 to options.lns_neighbors do
          Hashtbl.replace relax_set (Simrand.Rng.int rng n_jobs) ()
        done;
        let sub = freeze_except inst !incumbent relax_set in
        let limits =
          {
            Search.fail_limit = options.fail_limit;
            node_limit = 0;
            wall_deadline = Some deadline;
            interrupt = Some link.should_stop;
            (* the subsearch walks a local neighbourhood; foreign bounds feed
               in through [bound_to_beat] below, not mid-search, so the
               isolated (sequential-replica) trajectory stays reproducible *)
            tighten_bound = None;
            on_improve = None;
          }
        in
        (* prune against the best solution found anywhere: a fragment is only
           worth exploring if it can beat the global incumbent *)
        let bound_to_beat =
          if link.isolated then !incumbent.Solution.late_jobs
          else min !incumbent.Solution.late_jobs (link.global_bound ())
        in
        (* clauses survive to the next move exactly when its frozen context
           is identical (common when consecutive moves relax the same late
           jobs); otherwise the context switch clears them *)
        (match db with
        | Some d ->
            Nogood.set_context d (frozen_fingerprint inst !incumbent relax_set)
        | None -> ());
        let run () =
          run_exact ~tie_break:options.tie_break ?registry
            ~kernel:options.kernel ~restart:options.restart ?nogoods:db
            ~guide_sol:!incumbent sub ~bound_to_beat ~limits
        in
        let outcome =
          if Obs.Trace.enabled () then
            Obs.Trace.with_span ~cat:"search" "lns-move"
              ~args:[ ("relaxed_jobs", Obs.Trace.Int (Hashtbl.length relax_set)) ]
              run
          else run ()
        in
        nodes := !nodes + outcome.Search.nodes;
        failures := !failures + outcome.Search.failures;
        restarts := !restarts + outcome.Search.restarts;
        match outcome.Search.best with
        | Some partial ->
            let merged = merge_starts inst !incumbent partial in
            if Solution.better merged !incumbent then begin
              incumbent := merged;
              stall := 0;
              link.announce merged.Solution.late_jobs
            end
            else incr stall
        | None -> incr stall
      done;
      (* mirror [continue]'s evaluation order for the attributed cause *)
      let stop =
        if !incumbent.Solution.late_jobs <= lb then Obs.Solve_stats.Proved
        else if !stall >= options.lns_max_stall then Obs.Solve_stats.Lns_stall
        else if not (Obs.Clock.now () < deadline) then
          Obs.Solve_stats.Wall_limit
        else Obs.Solve_stats.Interrupted
      in
      finish !incumbent (!incumbent.Solution.late_jobs <= lb) ~stop
    end
  end

let solve ?(options = default_options) (inst : Instance.t) =
  solve_linked ~options ~link:null_link inst
