(* Θ-Λ tree (Vilím): a balanced binary tree over tasks placed at leaves in
   est order.  Each node summarises its subtree's Θ tasks (white set) with

     sum  = Σ p             (total processing time)
     ect  = earliest completion time of the subtree's Θ tasks

   and the Θ ∪ Λ extension allowing at most one gray (Λ) task with

     sum_bar = max over ≤1 gray of Σ p
     ect_bar = max over ≤1 gray of ect

   together with the leaf responsible for the gray choice.  All queries and
   leaf updates are O(log n); the arrays are reused across runs so steady-
   state operation allocates nothing. *)

(* far below any real time point, but safe to add processing-time sums to
   without wrapping *)
let neg_inf = min_int / 4

type t = {
  mutable cap : int;  (* leaf slots; power of two (0 until first prepare) *)
  mutable n : int;  (* active leaves *)
  mutable sum : int array;  (* 1-indexed heap layout, length 2*cap *)
  mutable ect : int array;
  mutable sum_bar : int array;
  mutable ect_bar : int array;
  mutable resp_sum : int array;  (* leaf responsible for the gray in sum_bar *)
  mutable resp_ect : int array;  (* leaf responsible for the gray in ect_bar *)
  mutable leaf_est : int array;  (* per-leaf task data, kept for [gray] *)
  mutable leaf_p : int array;
}

let create () =
  {
    cap = 0;
    n = 0;
    sum = [||];
    ect = [||];
    sum_bar = [||];
    ect_bar = [||];
    resp_sum = [||];
    resp_ect = [||];
    leaf_est = [||];
    leaf_p = [||];
  }

let ensure t n =
  if n > t.cap then begin
    let cap = ref (max 1 t.cap) in
    while !cap < n do
      cap := !cap * 2
    done;
    let cap = !cap in
    t.cap <- cap;
    t.sum <- Array.make (2 * cap) 0;
    t.ect <- Array.make (2 * cap) neg_inf;
    t.sum_bar <- Array.make (2 * cap) 0;
    t.ect_bar <- Array.make (2 * cap) neg_inf;
    t.resp_sum <- Array.make (2 * cap) (-1);
    t.resp_ect <- Array.make (2 * cap) (-1);
    t.leaf_est <- Array.make cap 0;
    t.leaf_p <- Array.make cap 0
  end

let prepare t n =
  if n < 1 then invalid_arg "Theta_tree.prepare: need at least one leaf";
  ensure t n;
  t.n <- n;
  Array.fill t.sum 0 (2 * t.cap) 0;
  Array.fill t.ect 0 (2 * t.cap) neg_inf;
  Array.fill t.sum_bar 0 (2 * t.cap) 0;
  Array.fill t.ect_bar 0 (2 * t.cap) neg_inf;
  Array.fill t.resp_sum 0 (2 * t.cap) (-1);
  Array.fill t.resp_ect 0 (2 * t.cap) (-1)

let combine t v =
  let l = 2 * v and r = (2 * v) + 1 in
  t.sum.(v) <- t.sum.(l) + t.sum.(r);
  t.ect.(v) <- max t.ect.(r) (t.ect.(l) + t.sum.(r));
  let sb_l = t.sum_bar.(l) + t.sum.(r) and sb_r = t.sum.(l) + t.sum_bar.(r) in
  if sb_l >= sb_r then begin
    t.sum_bar.(v) <- sb_l;
    t.resp_sum.(v) <- t.resp_sum.(l)
  end
  else begin
    t.sum_bar.(v) <- sb_r;
    t.resp_sum.(v) <- t.resp_sum.(r)
  end;
  (* ect_bar = max of: gray on the right of the right child; gray feeding
     the right child's sum after the left's ect; gray on the left *)
  let c1 = t.ect_bar.(r) in
  let c2 = t.ect.(l) + t.sum_bar.(r) in
  let c3 = t.ect_bar.(l) + t.sum.(r) in
  if c1 >= c2 && c1 >= c3 then begin
    t.ect_bar.(v) <- c1;
    t.resp_ect.(v) <- t.resp_ect.(r)
  end
  else if c2 >= c3 then begin
    t.ect_bar.(v) <- c2;
    t.resp_ect.(v) <- t.resp_sum.(r)
  end
  else begin
    t.ect_bar.(v) <- c3;
    t.resp_ect.(v) <- t.resp_ect.(l)
  end

let update_path t leaf =
  let v = ref ((t.cap + leaf) / 2) in
  while !v >= 1 do
    combine t !v;
    v := !v / 2
  done

let add t k ~est ~p =
  if k < 0 || k >= t.n then invalid_arg "Theta_tree.add: leaf out of range";
  t.leaf_est.(k) <- est;
  t.leaf_p.(k) <- p;
  let v = t.cap + k in
  t.sum.(v) <- p;
  t.ect.(v) <- est + p;
  t.sum_bar.(v) <- p;
  t.ect_bar.(v) <- est + p;
  t.resp_sum.(v) <- -1;
  t.resp_ect.(v) <- -1;
  update_path t k

let gray t k =
  if k < 0 || k >= t.n then invalid_arg "Theta_tree.gray: leaf out of range";
  let v = t.cap + k in
  t.sum.(v) <- 0;
  t.ect.(v) <- neg_inf;
  t.sum_bar.(v) <- t.leaf_p.(k);
  t.ect_bar.(v) <- t.leaf_est.(k) + t.leaf_p.(k);
  t.resp_sum.(v) <- k;
  t.resp_ect.(v) <- k;
  update_path t k

let remove t k =
  if k < 0 || k >= t.n then invalid_arg "Theta_tree.remove: leaf out of range";
  let v = t.cap + k in
  t.sum.(v) <- 0;
  t.ect.(v) <- neg_inf;
  t.sum_bar.(v) <- 0;
  t.ect_bar.(v) <- neg_inf;
  t.resp_sum.(v) <- -1;
  t.resp_ect.(v) <- -1;
  update_path t k

let ect t = t.ect.(1)
let ect_bar t = t.ect_bar.(1)
let responsible t = t.resp_ect.(1)
