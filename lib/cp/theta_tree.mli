(** Θ-Λ tree for unary-resource reasoning (Vilím).

    Tasks sit at leaves (callers place them in est order so that subtree
    [ect] values are meaningful); internal nodes maintain the processing-time
    sum and earliest completion time of the white (Θ) set, plus the best
    extension by at most one gray (Λ) task.  Leaf updates and root queries
    are O(log n), and the structure reuses its arrays across {!prepare}
    calls, so steady-state use allocates nothing.  Used by
    {!Propagators.disjunctive} for overload checking and edge finding. *)

type t

val neg_inf : int
(** The "empty set" completion time: far below any schedule time, yet safe
    to add processing-time sums to without overflow. *)

val create : unit -> t

val prepare : t -> int -> unit
(** [prepare t n] readies [n] leaves, all empty (growing the arrays only
    when [n] exceeds every earlier size). *)

val add : t -> int -> est:int -> p:int -> unit
(** [add t k ~est ~p] places a task with release date [est] and processing
    time [p] at leaf [k], in the Θ set. *)

val gray : t -> int -> unit
(** Move leaf [k] from Θ to Λ (the task keeps the [est]/[p] it was added
    with). *)

val remove : t -> int -> unit
(** Empty leaf [k] (removing it from Θ or Λ). *)

val ect : t -> int
(** Earliest completion time of the Θ set ({!neg_inf} when empty). *)

val ect_bar : t -> int
(** Earliest completion time of Θ extended by the best single Λ task. *)

val responsible : t -> int
(** The leaf of the Λ task realising {!ect_bar}, or [-1] when {!ect_bar} is
    achieved by Θ alone. *)
