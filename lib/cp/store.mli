(** Constraint store: trailed integer variables with bounds domains, a
    propagation queue, and chronological backtracking.

    This is the kernel under the scheduling model of paper Table 1.  Domains
    are intervals [min, max] — bounds consistency is the standard (and
    sufficient) level for scheduling propagators such as [cumulative]; the
    0/1 lateness variables are intervals of size ≤ 2.

    Failure is signalled with the {!Fail} exception, caught by the search.

    {b Domain-locality (audited for the parallel portfolio).}  Every piece
    of mutable state — bounds arrays, watcher lists, propagator queue, trail
    vectors, statistics counters — lives inside the [t] record; the module
    has no top-level mutable state and registered propagator closures only
    capture variables of their own store.  A store is therefore {e not}
    thread-safe to share, but distinct stores are fully independent:
    {!Portfolio} gives each worker domain its own store/model and never
    migrates one across domains mid-search.  Keep it that way — any new
    global cache or counter added here must become a field of [t]. *)

exception Fail of string
(** Raised when a domain empties or a propagator detects inconsistency. *)

type t
type var = int

val create : unit -> t

val new_var : t -> min:int -> max:int -> var
(** Fresh variable with the given bounds.  [min <= max] required. *)

val min_of : t -> var -> int
val max_of : t -> var -> int
val is_fixed : t -> var -> bool
val value : t -> var -> int
(** @raise Invalid_argument if not fixed. *)

val set_min : t -> var -> int -> unit
(** Raise the lower bound.  No-op if already at least that.  @raise Fail when
    it would cross the upper bound. *)

val set_max : t -> var -> int -> unit
val fix : t -> var -> int -> unit

(** {2 Propagators} *)

type propagator_id

val register :
  t ->
  ?priority:int ->
  ?name:string ->
  ?idempotent:bool ->
  (t -> unit) ->
  propagator_id
(** Add a propagator.  Lower [priority] runs first (default 1; use 0 for
    cheap binary constraints, 2 for heavy global constraints).  The function
    is called with the store and must prune via [set_min]/[set_max] or raise
    {!Fail}.  [name] (default ["anon"]) labels the propagator in
    {!propagator_metrics}; instances registered under the same name are
    aggregated.

    [idempotent] (default [false]) declares that immediately re-running the
    propagator on the store state it just produced is a no-op — true for
    functional bound rules such as [y = max_i x_i] whose reads and writes do
    not feed back within one run.  The store then drops the propagator's
    {e self}-notifications (its own writes re-queueing itself), which is the
    main source of redundant wakeups; foreign wakeups are never dropped, so
    the propagation fixpoint — and hence the search trajectory — is
    unchanged.  Declare it only when the no-op property genuinely holds:
    e.g. [cumulative] is {e not} idempotent (pruning a start grows its own
    compulsory part, enabling further pruning on re-run). *)

val watch_min : t -> var -> propagator_id -> unit
(** Wake the propagator when the variable's {e lower} bound rises. *)

val watch_max : t -> var -> propagator_id -> unit
(** Wake the propagator when the variable's {e upper} bound drops. *)

val watch_fix : t -> var -> propagator_id -> unit
(** Wake the propagator when the variable becomes fixed (domain collapses to
    a singleton, from either side). *)

val watch : t -> var -> propagator_id -> unit
(** Wake on any bound change: [watch_min] + [watch_max]. *)

val unwatch : t -> var -> propagator_id -> unit
(** Remove every watch of [pid] on [var] (all three event lists): the
    propagator is never again notified of the variable's changes.  Used by
    {!Session} to unhook retracted tasks from their pool propagators.  Cost
    is linear in the variable's watch-list lengths. *)

val schedule : t -> propagator_id -> unit
(** Explicitly enqueue (for the initial run after registration, and whenever
    a non-variable input — e.g. an objective bound ref — changed, which the
    watch lists cannot see).  Never subject to wakeup suppression. *)

val propagate : t -> unit
(** Run the queue to fixpoint.  @raise Fail on inconsistency. *)

(** {2 Backtracking} *)

val push_level : t -> unit
val backtrack : t -> unit
(** Undo to the most recent level.  @raise Invalid_argument at root. *)

val level : t -> int
(** Current depth (0 at root). *)

val backtrack_to : t -> int -> unit
(** [backtrack_to t n] pops levels until {!level} is [n] and clears the
    propagation queues.  Lets a search started above the root (e.g. inside a
    {!Session} guard level) reset to its own entry level instead of
    unwinding state it does not own.  @raise Invalid_argument when [n] is
    negative or above the current level. *)

val backtrack_to_root : t -> unit
(** [backtrack_to t 0]. *)

val restore_stamp : t -> var -> int
(** Monotone per-variable undo stamp: bumped whenever a {!backtrack} restores
    one of the variable's bounds (0 if never restored).  Lets an incremental
    propagator cache "already processed at bounds (min, max)" snapshots
    exactly: if a variable's bounds {e and} restore stamp both match the
    snapshot, nothing about it changed since — bounds only tighten between
    backtracks, and any loosening (or re-tightening back to the same values)
    went through a restore that bumped the stamp (see {!Nogood}). *)

(** {2 Introspection} *)

val num_vars : t -> int
val stats_propagations : t -> int
(** Number of propagator executions so far (for benchmarks). *)

val stats_wakeups_skipped : t -> int
(** Wakeups suppressed by the modification-timestamp rule: notifications of
    propagators already at fixpoint for the change (idempotent
    self-notifications).  Each would have been a queued no-op execution. *)

val stats_scratch_reuse : t -> int
(** Times a cumulative kernel skipped a full recompute because its cached
    compulsory-part state matched the current bounds (see
    {!Propagators.cumulative}); bumped via {!note_scratch_reuse}. *)

val stats_edge_finder_prunes : t -> int
(** Bound tightenings performed by the disjunctive edge-finding propagator
    (see {!Propagators.disjunctive}); bumped via {!note_edge_finder_prunes}. *)

val stats_nogood_prunes : t -> int
(** Lateness variables forced by nogood unit propagation (see {!Nogood});
    bumped via {!note_nogood_prune}. *)

val note_scratch_reuse : t -> unit
val note_edge_finder_prunes : t -> int -> unit
val note_nogood_prune : t -> unit
(** Counter hooks for propagator kernels (all state lives in [t] — the
    domain-locality contract above). *)

(** {2 Per-propagator telemetry}

    Off by default.  When enabled via {!set_instrumented}, the propagation
    loop counts each propagator's executions ([fires]), {!Fail}s raised
    ([fails]) and cumulative wall time.  The only cost on the uninstrumented
    path is a single bool load per propagator execution, and instrumentation
    never changes pruning, so search trajectories are identical either way. *)

val set_instrumented : t -> bool -> unit
val instrumented : t -> bool

type prop_metric = {
  prop_name : string;  (** the [name] given at {!register} time *)
  fires : int;
  fails : int;
  time_s : float;
}

val propagator_metrics : t -> prop_metric list
(** Telemetry aggregated over propagator instances sharing a name, sorted by
    name.  All-zero entries are included (one per registered name). *)
