(** Constraint store: trailed integer variables with bounds domains, a
    propagation queue, and chronological backtracking.

    This is the kernel under the scheduling model of paper Table 1.  Domains
    are intervals [min, max] — bounds consistency is the standard (and
    sufficient) level for scheduling propagators such as [cumulative]; the
    0/1 lateness variables are intervals of size ≤ 2.

    Failure is signalled with the {!Fail} exception, caught by the search.

    {b Domain-locality (audited for the parallel portfolio).}  Every piece
    of mutable state — bounds arrays, watcher lists, propagator queue, trail
    vectors, statistics counters — lives inside the [t] record; the module
    has no top-level mutable state and registered propagator closures only
    capture variables of their own store.  A store is therefore {e not}
    thread-safe to share, but distinct stores are fully independent:
    {!Portfolio} gives each worker domain its own store/model and never
    migrates one across domains mid-search.  Keep it that way — any new
    global cache or counter added here must become a field of [t]. *)

exception Fail of string
(** Raised when a domain empties or a propagator detects inconsistency. *)

type t
type var = int

val create : unit -> t

val new_var : t -> min:int -> max:int -> var
(** Fresh variable with the given bounds.  [min <= max] required. *)

val min_of : t -> var -> int
val max_of : t -> var -> int
val is_fixed : t -> var -> bool
val value : t -> var -> int
(** @raise Invalid_argument if not fixed. *)

val set_min : t -> var -> int -> unit
(** Raise the lower bound.  No-op if already at least that.  @raise Fail when
    it would cross the upper bound. *)

val set_max : t -> var -> int -> unit
val fix : t -> var -> int -> unit

(** {2 Propagators} *)

type propagator_id

val register : t -> ?priority:int -> ?name:string -> (t -> unit) -> propagator_id
(** Add a propagator.  Lower [priority] runs first (default 1; use 0 for
    cheap binary constraints, 2 for heavy global constraints).  The function
    is called with the store and must prune via [set_min]/[set_max] or raise
    {!Fail}.  [name] (default ["anon"]) labels the propagator in
    {!propagator_metrics}; instances registered under the same name are
    aggregated. *)

val watch : t -> var -> propagator_id -> unit
(** Enqueue the propagator whenever the variable's bounds change. *)

val schedule : t -> propagator_id -> unit
(** Explicitly enqueue (e.g. once after registration, for the initial run). *)

val propagate : t -> unit
(** Run the queue to fixpoint.  @raise Fail on inconsistency. *)

(** {2 Backtracking} *)

val push_level : t -> unit
val backtrack : t -> unit
(** Undo to the most recent level.  @raise Invalid_argument at root. *)

val level : t -> int
(** Current depth (0 at root). *)

val backtrack_to_root : t -> unit

(** {2 Introspection} *)

val num_vars : t -> int
val stats_propagations : t -> int
(** Number of propagator executions so far (for benchmarks). *)

(** {2 Per-propagator telemetry}

    Off by default.  When enabled via {!set_instrumented}, the propagation
    loop counts each propagator's executions ([fires]), {!Fail}s raised
    ([fails]) and cumulative wall time.  The only cost on the uninstrumented
    path is a single bool load per propagator execution, and instrumentation
    never changes pruning, so search trajectories are identical either way. *)

val set_instrumented : t -> bool -> unit
val instrumented : t -> bool

type prop_metric = {
  prop_name : string;  (** the [name] given at {!register} time *)
  fires : int;
  fails : int;
  time_s : float;
}

val propagator_metrics : t -> prop_metric list
(** Telemetry aggregated over propagator instances sharing a name, sorted by
    name.  All-zero entries are included (one per registered name). *)
