(** Anytime solver for a scheduling instance — the role CPLEX CP Optimizer
    plays in the paper (§IV–V).

    Pipeline:
    + seed with greedy list schedules under the paper's three job orderings
      (§VI.B) and keep the best;
    + compute a per-job lower bound on Σ N_j ({!late_lower_bound}: a job whose
      est + wave-bound makespan already exceeds its deadline is late in every
      schedule); if the seed meets the bound it is optimal — the common case
      in the paper's open system, which is what keeps the measured overhead
      O small;
    + otherwise run exact branch-and-bound when the instance is small enough,
      or large-neighbourhood search (relax the late jobs plus a few random
      ones, fix everything else, exactly re-solve the fragment) under a time
      budget — the same anytime regime CP Optimizer applies to models of this
      shape. *)

(** A carried-over plan from a previous solve, injected as a warm start.
    [carried_starts] maps task ids to the start times the previous schedule
    gave them (entries for tasks that are no longer pending are ignored);
    [changed_jobs] lists the job ids that changed since that schedule was
    produced (new arrivals, repaired jobs) — LNS relaxes them on its first
    move so the search re-optimizes around the delta first. *)
type incumbent = {
  carried_starts : (int, int) Hashtbl.t;
  changed_jobs : int list;
}

type options = {
  ordering : Sched.Greedy.order;
      (** job-ordering strategy for the greedy seed (paper §VI.B) *)
  exact_task_limit : int;
      (** run global B&B when #pending tasks ≤ this (default 120) *)
  fail_limit : int;  (** failure budget per exact search (default 20_000) *)
  time_limit : float;  (** wall-clock seconds for the whole solve *)
  lns_neighbors : int;  (** extra random jobs relaxed per LNS move *)
  lns_max_stall : int;  (** stop after this many non-improving moves *)
  seed : int;  (** randomization seed for LNS *)
  tie_break : Search.tie_break;
      (** SetTimes branching tie-break (default {!Search.Slack_first}); the
          portfolio diversifies its B&B workers along this axis *)
  instrument : bool;
      (** collect per-propagator fire/fail/time metrics into
          [stats.metrics] (default [false]).  Metering never changes
          pruning, so the search trajectory is identical either way. *)
  warm_start : incumbent option;
      (** seed the solve from the previous invocation's surviving schedule
          (default [None], the historical cold solve).  The completed warm
          candidate only replaces the greedy seed when it passes the Table-1
          oracle and is at least as good, so a warm solve is never seeded
          worse than a cold one. *)
  kernel : Propagators.kernel;
      (** capacity-constraint implementation for every model the solve
          builds (default {!Propagators.Both}; [Timetable] is the escape
          hatch reproducing the pre-overhaul trajectory exactly, [Naive] the
          allocation-heavy reference kernel). *)
  restart : Restart.policy;
      (** restart policy for every exact search the solve runs (default
          {!Restart.Off}: the deterministic chronological DFS, bit-for-bit
          the pre-restart trajectories).  Any other policy makes searches
          record rightmost-branch nogoods into one {!Nogood} database shared
          across LNS moves (clauses survive between identically-frozen
          fragments), branch with last-conflict reasoning, and use the
          incumbent's start times for solution-guided value ordering.
          Restarted search visits fewer bad subtrees but costs more wall
          time per failure (slice replays + nogood propagation), so it pays
          on contended instances and hurts on easy ones — opt in per run
          with {!Restart.default} (Luby-128), via [--restarts] in the CLIs,
          or implicitly through {!Portfolio}'s restart-diversified arms. *)
}

val default_options : options

(** Re-export of the repo-wide solver-telemetry record
    ({!Obs.Solve_stats.t}) — the same fields, same type. *)
type stats = Obs.Solve_stats.t = {
  seed_late : int;
      (** late jobs in the starting incumbent (greedy seed, or the
          warm-start candidate when one was adopted) *)
  lower_bound : int;
  proved_optimal : bool;
  warm_seeded : bool;
      (** the starting incumbent was the carried-over {!warm_candidate};
          combined with [seed_late <= lower_bound] this identifies a plan
          cache hit (no model was built, no search ran) *)
  stop_reason : Obs.Solve_stats.stop_reason;
      (** why the solve returned: [Cache_hit] on the warm-seeded fast path,
          [Proved] when search or the bound settled it, otherwise the limit
          (or LNS stall / portfolio interrupt) that cut it *)
  nodes : int;
  failures : int;
  restarts : int;  (** restart slice cuts, summed over all searches run *)
  lns_moves : int;
  elapsed : float;  (** wall-clock seconds spent *)
  metrics : Obs.Metrics.snapshot option;
      (** [Some] iff [options.instrument] was set *)
}

type link = {
  should_stop : unit -> bool;
      (** polled between LNS moves and inside the tree search; [true] makes
          the solver return its incumbent immediately (first-to-prove-optimal
          cancellation) *)
  global_bound : unit -> int;
      (** best Σ N_j found by any portfolio worker ([max_int] when none);
          non-isolated workers prune against it *)
  announce : int -> unit;
      (** called with every improved local Σ N_j — the write side of the
          shared incumbent *)
  isolated : bool;
      (** [true]: never let foreign bounds steer this worker's own search —
          its trajectory (and thus its result, absent cancellation) is
          bit-identical to the sequential {!solve}.  The portfolio runs its
          worker 0 isolated so the parallel solve can never return a worse
          Σ N_j than the sequential one. *)
}

val null_link : link
(** All hooks are no-ops, [isolated = true].  [solve = solve_linked
    ~link:null_link]. *)

val solve_linked :
  options:options -> link:link -> Sched.Instance.t -> Sched.Solution.t * stats
(** One portfolio worker: the full seed → bound → B&B-or-LNS pipeline of
    {!solve}, wired to the coordinator through [link].  Thread-safety: the
    worker builds its own {!Store}/{!Model} and RNG, shares only the
    read-only instance and the [link] callbacks, and is therefore safe to
    run on its own domain (see {!Portfolio}). *)

val greedy_seed :
  ?preferred:Sched.Solution.t ->
  ordering:Sched.Greedy.order -> Sched.Instance.t -> Sched.Solution.t
(** Best greedy solution across the three §VI.B orderings plus the
    doomed-last variant, preferring [ordering] on ties — the cold seed
    {!solve} starts from.  Deterministic; exported so the portfolio
    coordinator can take the seed-is-optimal shortcut without spawning
    domains. *)

val warm_candidate :
  Sched.Instance.t -> incumbent -> Sched.Solution.t option
(** Complete a carried-over plan into a full solution for the (updated)
    instance: jobs whose pending tasks all still have non-stale carried
    starts are frozen there, every other job (new arrivals, jobs with stale
    entries) is EDF-list-scheduled around them.  Returns [None] when nothing
    usable was carried or the completed candidate fails the Table-1 oracle —
    a returned candidate always passes {!Sched.Solution.feasibility_errors}.
    Deterministic.  The manager uses this directly for its plan-cache-hit
    fast path (skip the solve when the candidate already meets
    {!late_lower_bound}). *)

val starting_incumbent :
  options:options -> ?lb:int -> Sched.Instance.t ->
  Sched.Solution.t * bool
(** The incumbent the seed → bound → B&B/LNS pipeline actually starts from:
    {!greedy_seed}, or the {!warm_candidate} when [options.warm_start] is
    set and the candidate is at least as good (ties prefer the warm plan to
    minimize schedule churn).  The flag is [true] iff the warm candidate was
    adopted.  Passing [?lb] (from {!late_lower_bound}) enables the
    plan-cache-hit fast path: a warm candidate that already meets the bound
    is returned without computing any greedy seed. *)

val late_lower_bound : Sched.Instance.t -> int
(** Number of jobs that are late in {e every} schedule: est plus the
    single-job wave lower bound (max task length vs. total-work/capacity,
    per phase) already exceeds the deadline. *)

val job_doomed : Sched.Instance.t -> Sched.Instance.pending_job -> bool
(** Can the job provably not meet its deadline even with the whole cluster
    to itself (wave bound from est over frozen floors)?  Independent of
    every other job, so these dooms add onto any lower bound for a disjoint
    job set — {!Cp.Session} exploits exactly that. *)

val solve : ?options:options -> Sched.Instance.t -> Sched.Solution.t * stats
(** Never fails: at worst returns the greedy seed. *)

val pp_stats : Format.formatter -> stats -> unit
