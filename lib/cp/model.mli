(** CP model of the paper's Table-1 formulation, built over a
    {!Sched.Instance.t} (combined-resource form, §V.D).

    Decision variables per pending task: an integer start time (the paper's
    a_t, realized as an interval of fixed length e_t).  Per job: an LFMT
    variable (max of map completions — constraint (3)), a completion variable
    (max of reduce completions / LFMT), and a 0/1 lateness variable N_j
    (constraint (4)).  Two [cumulative] constraints — one over map slots,
    one over reduce slots — encode constraints (5)/(6); frozen
    (isPrevScheduled) tasks enter them as fixed occupations (§V.B line 11).
    Matchmaking (constraint (1) / the x_tr variables) is resolved after
    solving by the matchmaker in [lib/core], exactly as §V.D separates the
    two concerns. *)

type task_var = {
  var : Store.var;
  task : Mapreduce.Types.task;
  job_index : int;  (** index into the instance's jobs array *)
}

type t = {
  store : Store.t;
  instance : Sched.Instance.t;
  starts : task_var array;  (** every pending task, maps then reduces *)
  lates : Store.var array;  (** N_j per job, aligned with instance.jobs *)
  completions : Store.var array;  (** C_j per job *)
  bound : int ref;  (** strict upper bound on Σ N_j for branch-and-bound *)
  bound_pid : Store.propagator_id;
  horizon : int;
}

val build : ?kernel:Propagators.kernel -> Sched.Instance.t -> horizon:int -> t
(** Construct and post all constraints.  Does not propagate; callers run
    {!Store.propagate} (and should catch {!Store.Fail} — an instance can be
    infeasible only if the horizon is too small, since lateness is soft).
    [kernel] selects the capacity-constraint implementation (default
    {!Propagators.Both}: incremental time table everywhere, plus
    edge finding on unary-equivalent pools). *)

val default_horizon : Sched.Instance.t -> int
(** A horizon provably large enough to contain some optimal semi-active
    schedule: max est + total pending work + max frozen end. *)

val extract : t -> Sched.Solution.t
(** Read a solution once every start variable is fixed.
    @raise Invalid_argument otherwise. *)

val late_count_min : t -> int
(** Σ over jobs of min N_j under current bounds (a lower bound on the
    objective in the current subtree). *)

val all_starts_fixed : t -> bool
