exception Fail of string

type var = int
type propagator_id = int

(* Growable int array. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 64 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data' = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data' 0 v.len;
      v.data <- data'
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let pop v =
    v.len <- v.len - 1;
    v.data.(v.len)

  let length v = v.len
end

type propagator = { run : t -> unit; priority : int; mutable queued : bool }

and t = {
  mutable mins : int array;
  mutable maxs : int array;
  mutable nvars : int;
  mutable watchers : propagator_id list array;
  mutable props : propagator array;
  mutable nprops : int;
  (* Three priority buckets of pending propagators. *)
  queues : propagator_id Queue.t array;
  (* trail: packed entries (var lsl 1 lor is_min_bit, old_value) *)
  trail_tags : Vec.t;
  trail_values : Vec.t;
  level_marks : Vec.t;
  mutable propagations : int;
  (* Per-propagator telemetry, off by default: the propagation loop guards on
     the single [instrumented] bool, so the uninstrumented hot path costs one
     load.  All state lives in this record (store.mli's domain-locality
     contract), so portfolio workers meter their own stores independently. *)
  mutable instrumented : bool;
  mutable prop_names : string array;
  mutable prop_fires : int array;
  mutable prop_fails : int array;
  mutable prop_time : float array; (* seconds, per propagator *)
}

let create () =
  {
    mins = Array.make 64 0;
    maxs = Array.make 64 0;
    nvars = 0;
    watchers = Array.make 64 [];
    props = Array.make 16 { run = (fun _ -> ()); priority = 1; queued = false };
    nprops = 0;
    queues = Array.init 3 (fun _ -> Queue.create ());
    trail_tags = Vec.create ();
    trail_values = Vec.create ();
    level_marks = Vec.create ();
    propagations = 0;
    instrumented = false;
    prop_names = Array.make 16 "";
    prop_fires = Array.make 16 0;
    prop_fails = Array.make 16 0;
    prop_time = Array.make 16 0.;
  }

let grow_watchers a len n =
  let a' = Array.make n [] in
  Array.blit a 0 a' 0 len;
  a'

let new_var t ~min ~max =
  if min > max then invalid_arg "Store.new_var: min > max";
  let id = t.nvars in
  if id = Array.length t.mins then begin
    let n = 2 * id in
    let grow a fill =
      let a' = Array.make n fill in
      Array.blit a 0 a' 0 id;
      a'
    in
    t.mins <- grow t.mins 0;
    t.maxs <- grow t.maxs 0;
    t.watchers <- grow_watchers t.watchers id n
  end;
  t.mins.(id) <- min;
  t.maxs.(id) <- max;
  t.watchers.(id) <- [];
  t.nvars <- id + 1;
  id

let min_of t v = t.mins.(v)
let max_of t v = t.maxs.(v)
let is_fixed t v = t.mins.(v) = t.maxs.(v)

let value t v =
  if not (is_fixed t v) then invalid_arg "Store.value: variable not fixed";
  t.mins.(v)

let enqueue t pid =
  let p = t.props.(pid) in
  if not p.queued then begin
    p.queued <- true;
    Queue.push pid t.queues.(p.priority)
  end

let notify t v = List.iter (enqueue t) t.watchers.(v)

let set_min t v x =
  if x > t.maxs.(v) then
    raise (Fail (Printf.sprintf "var %d: min %d > max %d" v x t.maxs.(v)));
  if x > t.mins.(v) then begin
    Vec.push t.trail_tags ((v lsl 1) lor 1);
    Vec.push t.trail_values t.mins.(v);
    t.mins.(v) <- x;
    notify t v
  end

let set_max t v x =
  if x < t.mins.(v) then
    raise (Fail (Printf.sprintf "var %d: max %d < min %d" v x t.mins.(v)));
  if x < t.maxs.(v) then begin
    Vec.push t.trail_tags (v lsl 1);
    Vec.push t.trail_values t.maxs.(v);
    t.maxs.(v) <- x;
    notify t v
  end

let fix t v x =
  set_min t v x;
  set_max t v x

let register t ?(priority = 1) ?(name = "anon") run =
  if priority < 0 || priority > 2 then
    invalid_arg "Store.register: priority must be 0, 1 or 2";
  let id = t.nprops in
  if id = Array.length t.props then begin
    let grow a fill =
      let a' = Array.make (2 * id) fill in
      Array.blit a 0 a' 0 id;
      a'
    in
    t.props <- grow t.props t.props.(0);
    t.prop_names <- grow t.prop_names "";
    t.prop_fires <- grow t.prop_fires 0;
    t.prop_fails <- grow t.prop_fails 0;
    t.prop_time <- grow t.prop_time 0.
  end;
  t.props.(id) <- { run; priority; queued = false };
  t.prop_names.(id) <- name;
  t.nprops <- id + 1;
  id

let watch t v pid = t.watchers.(v) <- pid :: t.watchers.(v)
let schedule = enqueue

let run_metered t pid p =
  t.prop_fires.(pid) <- t.prop_fires.(pid) + 1;
  let t0 = Unix.gettimeofday () in
  let record () =
    t.prop_time.(pid) <- t.prop_time.(pid) +. (Unix.gettimeofday () -. t0)
  in
  match p.run t with
  | () -> record ()
  | exception e ->
      t.prop_fails.(pid) <- t.prop_fails.(pid) + 1;
      record ();
      raise e

let propagate t =
  let rec next_pid () =
    if not (Queue.is_empty t.queues.(0)) then Some (Queue.pop t.queues.(0))
    else if not (Queue.is_empty t.queues.(1)) then Some (Queue.pop t.queues.(1))
    else if not (Queue.is_empty t.queues.(2)) then Some (Queue.pop t.queues.(2))
    else None
  and loop () =
    match next_pid () with
    | None -> ()
    | Some pid ->
        let p = t.props.(pid) in
        p.queued <- false;
        t.propagations <- t.propagations + 1;
        if t.instrumented then run_metered t pid p else p.run t;
        loop ()
  in
  try loop ()
  with Fail _ as e ->
    (* Drain the queue so the next propagation starts clean. *)
    Array.iter
      (fun q ->
        Queue.iter (fun pid -> t.props.(pid).queued <- false) q;
        Queue.clear q)
      t.queues;
    raise e

let push_level t = Vec.push t.level_marks (Vec.length t.trail_tags)

let backtrack t =
  if Vec.length t.level_marks = 0 then
    invalid_arg "Store.backtrack: already at root";
  let mark = Vec.pop t.level_marks in
  while Vec.length t.trail_tags > mark do
    let tag = Vec.pop t.trail_tags in
    let old_value = Vec.pop t.trail_values in
    let v = tag lsr 1 in
    if tag land 1 = 1 then t.mins.(v) <- old_value else t.maxs.(v) <- old_value
  done

let level t = Vec.length t.level_marks

let backtrack_to_root t =
  while level t > 0 do
    backtrack t
  done;
  (* no propagators should survive across a full reset *)
  Array.iter
    (fun q ->
      Queue.iter (fun pid -> t.props.(pid).queued <- false) q;
      Queue.clear q)
    t.queues

let num_vars t = t.nvars
let stats_propagations t = t.propagations
let set_instrumented t on = t.instrumented <- on
let instrumented t = t.instrumented

type prop_metric = {
  prop_name : string;
  fires : int;
  fails : int;
  time_s : float;
}

let propagator_metrics t =
  let by_name = Hashtbl.create 16 in
  for pid = 0 to t.nprops - 1 do
    let name = t.prop_names.(pid) in
    let fires, fails, time_s =
      Option.value (Hashtbl.find_opt by_name name) ~default:(0, 0, 0.)
    in
    Hashtbl.replace by_name name
      ( fires + t.prop_fires.(pid),
        fails + t.prop_fails.(pid),
        time_s +. t.prop_time.(pid) )
  done;
  Hashtbl.fold
    (fun prop_name (fires, fails, time_s) acc ->
      { prop_name; fires; fails; time_s } :: acc)
    by_name []
  |> List.sort (fun a b -> compare a.prop_name b.prop_name)
