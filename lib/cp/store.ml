exception Fail of string

type var = int
type propagator_id = int

(* Growable int array. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 64) () = { data = Array.make (max capacity 1) 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data' = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data' 0 v.len;
      v.data <- data'
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let pop v =
    if v.len = 0 then invalid_arg "Store.Vec.pop: empty vector";
    v.len <- v.len - 1;
    v.data.(v.len)

  let length v = v.len
end

(* Intrusive ring buffer of propagator ids: a power-of-two circular int
   array, so a push is two stores and a mask — no per-element allocation the
   way [Queue.t] blocks have.  FIFO order is preserved exactly (the search
   trajectory depends on it). *)
module Ring = struct
  type t = { mutable data : int array; mutable head : int; mutable len : int }

  let create () = { data = Array.make 16 0; head = 0; len = 0 }
  let is_empty r = r.len = 0

  let push r x =
    let cap = Array.length r.data in
    if r.len = cap then begin
      (* full: unroll into a doubled array, head at 0 *)
      let data' = Array.make (2 * cap) 0 in
      let tail = cap - r.head in
      Array.blit r.data r.head data' 0 tail;
      Array.blit r.data 0 data' tail r.head;
      r.data <- data';
      r.head <- 0
    end;
    r.data.((r.head + r.len) land (Array.length r.data - 1)) <- x;
    r.len <- r.len + 1

  let pop r =
    if r.len = 0 then invalid_arg "Store.Ring.pop: empty ring";
    let x = r.data.(r.head) in
    r.head <- (r.head + 1) land (Array.length r.data - 1);
    r.len <- r.len - 1;
    x

  let iter f r =
    let mask = Array.length r.data - 1 in
    for k = 0 to r.len - 1 do
      f r.data.((r.head + k) land mask)
    done

  let clear r =
    r.head <- 0;
    r.len <- 0
end

type propagator = {
  run : t -> unit;
  priority : int;
  idempotent : bool;
  mutable queued : bool;
  mutable seen : int;  (* stamp up to which this propagator is at fixpoint *)
}

and t = {
  mutable mins : int array;
  mutable maxs : int array;
  mutable nvars : int;
  (* Event-granular watch lists: set_min wakes only the min list (plus the
     fix list when the domain just became a singleton), set_max
     symmetrically.  A propagator that reads both bounds registers in both
     lists.  Struct-of-arrays layout: instead of one growable vector per
     (variable, event), every watch edge is a slot in the shared
     [wl_pid]/[wl_next] pool and each (variable, event) keeps only head/tail
     slot indices ([3 * var + event], -1 = empty).  Appending at the tail
     preserves registration order, so notification order — and hence the
     search trajectory — is identical to the per-variable vectors this
     replaces, while [new_var] no longer allocates anything. *)
  mutable watch_head : int array;
  mutable watch_tail : int array;
  mutable wl_pid : int array;
  mutable wl_next : int array;
  mutable wl_len : int;
  mutable props : propagator array;
  mutable nprops : int;
  (* Three priority buckets of pending propagators. *)
  queues : Ring.t array;
  (* trail: packed entries (var lsl 1 lor is_min_bit, old_value) *)
  trail_tags : Vec.t;
  trail_values : Vec.t;
  level_marks : Vec.t;
  (* Modification timestamps: [stamp] counts every bound change; a
     propagator whose watched vars all have [mod_stamp <= seen] is provably
     at fixpoint and its dequeued wakeup can be skipped. *)
  mutable stamp : int;
  mutable mod_stamp : int array;
  mutable running : int;  (* pid executing right now, -1 outside propagate *)
  mutable backtracks : int;  (* monotone undo counter, never reset *)
  mutable undo_stamp : int array;
  (* per var: value of [backtracks] when a backtrack last restored one of
     its bounds; 0 when never restored.  Read via {!restore_stamp}. *)
  mutable propagations : int;
  mutable wakeups_skipped : int;
  mutable scratch_reuse : int;
  mutable edge_finder_prunes : int;
  mutable nogood_prunes : int;
  (* Per-propagator telemetry, off by default: the propagation loop guards on
     the single [instrumented] bool, so the uninstrumented hot path costs one
     load.  All state lives in this record (store.mli's domain-locality
     contract), so portfolio workers meter their own stores independently. *)
  mutable instrumented : bool;
  mutable prop_names : string array;
  mutable prop_fires : int array;
  mutable prop_fails : int array;
  mutable prop_time : float array; (* seconds, per propagator *)
}

let dummy_prop =
  { run = (fun _ -> ()); priority = 1; idempotent = false; queued = false;
    seen = 0 }

(* Watch-event indices into [watch_head]/[watch_tail]. *)
let ev_min = 0
let ev_max = 1
let ev_fix = 2

let create () =
  {
    mins = Array.make 64 0;
    maxs = Array.make 64 0;
    nvars = 0;
    watch_head = Array.make (3 * 64) (-1);
    watch_tail = Array.make (3 * 64) (-1);
    wl_pid = Array.make 64 0;
    wl_next = Array.make 64 (-1);
    wl_len = 0;
    props = Array.make 16 dummy_prop;
    nprops = 0;
    queues = Array.init 3 (fun _ -> Ring.create ());
    trail_tags = Vec.create ();
    trail_values = Vec.create ();
    level_marks = Vec.create ();
    stamp = 0;
    mod_stamp = Array.make 64 0;
    undo_stamp = Array.make 64 0;
    running = -1;
    backtracks = 0;
    propagations = 0;
    wakeups_skipped = 0;
    scratch_reuse = 0;
    edge_finder_prunes = 0;
    nogood_prunes = 0;
    instrumented = false;
    prop_names = Array.make 16 "";
    prop_fires = Array.make 16 0;
    prop_fails = Array.make 16 0;
    prop_time = Array.make 16 0.;
  }

let new_var t ~min ~max =
  if min > max then invalid_arg "Store.new_var: min > max";
  let id = t.nvars in
  if id = Array.length t.mins then begin
    let n = 2 * id in
    let grow a fill =
      let a' = Array.make n fill in
      Array.blit a 0 a' 0 id;
      a'
    in
    t.mins <- grow t.mins 0;
    t.maxs <- grow t.maxs 0;
    t.mod_stamp <- grow t.mod_stamp 0;
    t.undo_stamp <- grow t.undo_stamp 0;
    let grow3 a =
      let a' = Array.make (3 * n) (-1) in
      Array.blit a 0 a' 0 (3 * id);
      a'
    in
    t.watch_head <- grow3 t.watch_head;
    t.watch_tail <- grow3 t.watch_tail
  end;
  t.mins.(id) <- min;
  t.maxs.(id) <- max;
  t.mod_stamp.(id) <- 0;
  t.undo_stamp.(id) <- 0;
  let base = 3 * id in
  t.watch_head.(base) <- -1;
  t.watch_head.(base + 1) <- -1;
  t.watch_head.(base + 2) <- -1;
  t.watch_tail.(base) <- -1;
  t.watch_tail.(base + 1) <- -1;
  t.watch_tail.(base + 2) <- -1;
  t.nvars <- id + 1;
  id

let min_of t v = t.mins.(v)
let max_of t v = t.maxs.(v)
let is_fixed t v = t.mins.(v) = t.maxs.(v)

let value t v =
  if not (is_fixed t v) then invalid_arg "Store.value: variable not fixed";
  t.mins.(v)

(* Wake a propagator because [v] changed.  The modification-timestamp rule:
   a propagator whose [seen] stamp already covers the change is provably at
   fixpoint for it and is not re-queued.  Since stamps grow monotonically and
   [seen] is only advanced past a write by {!touch} (the writer itself, when
   idempotent) or at run completion, the rule exactly suppresses redundant
   self-notification of idempotent propagators and never drops a foreign
   wakeup. *)
let enqueue_for t v pid =
  let p = t.props.(pid) in
  if t.mod_stamp.(v) <= p.seen then begin
    if not p.queued then t.wakeups_skipped <- t.wakeups_skipped + 1
  end
  else if not p.queued then begin
    p.queued <- true;
    Ring.push t.queues.(p.priority) pid
  end

let notify_list t v ev =
  let k = ref t.watch_head.((3 * v) + ev) in
  while !k >= 0 do
    enqueue_for t v t.wl_pid.(!k);
    k := t.wl_next.(!k)
  done

let touch t v =
  t.stamp <- t.stamp + 1;
  t.mod_stamp.(v) <- t.stamp;
  (* the running idempotent propagator stays at fixpoint across its own
     writes: re-running it on the state it just produced is a no-op *)
  if t.running >= 0 then begin
    let p = t.props.(t.running) in
    if p.idempotent then p.seen <- t.stamp
  end

(* Static failure messages: bound violations are raised (and caught) on the
   search hot path, so the message must not allocate a formatted string. *)
let min_gt_max = "set_min: new min above max"
let max_lt_min = "set_max: new max below min"

let set_min t v x =
  if x > t.maxs.(v) then raise (Fail min_gt_max);
  if x > t.mins.(v) then begin
    Vec.push t.trail_tags ((v lsl 1) lor 1);
    Vec.push t.trail_values t.mins.(v);
    t.mins.(v) <- x;
    touch t v;
    notify_list t v ev_min;
    if t.mins.(v) = t.maxs.(v) then notify_list t v ev_fix
  end

let set_max t v x =
  if x < t.mins.(v) then raise (Fail max_lt_min);
  if x < t.maxs.(v) then begin
    Vec.push t.trail_tags (v lsl 1);
    Vec.push t.trail_values t.maxs.(v);
    t.maxs.(v) <- x;
    touch t v;
    notify_list t v ev_max;
    if t.mins.(v) = t.maxs.(v) then notify_list t v ev_fix
  end

let fix t v x =
  set_min t v x;
  set_max t v x

let register t ?(priority = 1) ?(name = "anon") ?(idempotent = false) run =
  if priority < 0 || priority > 2 then
    invalid_arg "Store.register: priority must be 0, 1 or 2";
  let id = t.nprops in
  if id = Array.length t.props then begin
    let grow a fill =
      let a' = Array.make (2 * id) fill in
      Array.blit a 0 a' 0 id;
      a'
    in
    t.props <- grow t.props dummy_prop;
    t.prop_names <- grow t.prop_names "";
    t.prop_fires <- grow t.prop_fires 0;
    t.prop_fails <- grow t.prop_fails 0;
    t.prop_time <- grow t.prop_time 0.
  end;
  t.props.(id) <- { run; priority; idempotent; queued = false; seen = 0 };
  t.prop_names.(id) <- name;
  t.nprops <- id + 1;
  id

(* Append one watch edge at the tail of (v, ev)'s list so that walking the
   list replays registrations in order. *)
let watch_ev t v ev pid =
  if t.wl_len = Array.length t.wl_pid then begin
    let grow a fill =
      let a' = Array.make (2 * t.wl_len) fill in
      Array.blit a 0 a' 0 t.wl_len;
      a'
    in
    t.wl_pid <- grow t.wl_pid 0;
    t.wl_next <- grow t.wl_next (-1)
  end;
  let slot = t.wl_len in
  t.wl_len <- slot + 1;
  t.wl_pid.(slot) <- pid;
  t.wl_next.(slot) <- -1;
  let key = (3 * v) + ev in
  let tail = t.watch_tail.(key) in
  if tail < 0 then t.watch_head.(key) <- slot else t.wl_next.(tail) <- slot;
  t.watch_tail.(key) <- slot

let watch_min t v pid = watch_ev t v ev_min pid
let watch_max t v pid = watch_ev t v ev_max pid
let watch_fix t v pid = watch_ev t v ev_fix pid

let watch t v pid =
  watch_min t v pid;
  watch_max t v pid

(* Unlink every watch edge of [pid] from [v]'s three lists.  The pool slots
   are not recycled — retraction is rare compared to registration, and a
   leaked slot is one int pair — but the lists themselves stay exact, so a
   retracted propagator is never notified again. *)
let unwatch t v pid =
  for ev = 0 to 2 do
    let key = (3 * v) + ev in
    let prev = ref (-1) and k = ref t.watch_head.(key) in
    while !k >= 0 do
      let next = t.wl_next.(!k) in
      if t.wl_pid.(!k) = pid then begin
        if !prev < 0 then t.watch_head.(key) <- next
        else t.wl_next.(!prev) <- next;
        if next < 0 then t.watch_tail.(key) <- !prev
      end
      else prev := !k;
      k := next
    done
  done

(* Unconditional wakeup: used for the initial run and when non-variable
   input changed (e.g. the objective bound ref), which the timestamp rule
   cannot see. *)
let schedule t pid =
  let p = t.props.(pid) in
  if not p.queued then begin
    p.queued <- true;
    Ring.push t.queues.(p.priority) pid
  end

let run_metered t pid p =
  t.prop_fires.(pid) <- t.prop_fires.(pid) + 1;
  let t0 = Obs.Clock.now () in
  let record () =
    t.prop_time.(pid) <- t.prop_time.(pid) +. (Obs.Clock.now () -. t0)
  in
  match p.run t with
  | () -> record ()
  | exception e ->
      t.prop_fails.(pid) <- t.prop_fails.(pid) + 1;
      record ();
      raise e

(* Clear pending wakeups so the next propagation starts clean — the shared
   tail of [propagate]'s fail path and [backtrack_to_root]. *)
let drain_queues t =
  Array.iter
    (fun q ->
      Ring.iter (fun pid -> t.props.(pid).queued <- false) q;
      Ring.clear q)
    t.queues

let propagate t =
  let rec next_pid () =
    if not (Ring.is_empty t.queues.(0)) then Some (Ring.pop t.queues.(0))
    else if not (Ring.is_empty t.queues.(1)) then Some (Ring.pop t.queues.(1))
    else if not (Ring.is_empty t.queues.(2)) then Some (Ring.pop t.queues.(2))
    else None
  and loop () =
    match next_pid () with
    | None -> ()
    | Some pid ->
        let p = t.props.(pid) in
        p.queued <- false;
        t.propagations <- t.propagations + 1;
        let start_stamp = t.stamp in
        t.running <- pid;
        (match if t.instrumented then run_metered t pid p else p.run t with
        | () ->
            t.running <- -1;
            (* Idempotent propagators are at fixpoint w.r.t. their own
               writes too ([touch] kept [seen] current); others have only
               provably absorbed the state they started from. *)
            p.seen <- (if p.idempotent then t.stamp else start_stamp)
        | exception e ->
            t.running <- -1;
            raise e);
        loop ()
  in
  try loop ()
  with Fail _ as e ->
    drain_queues t;
    raise e

let push_level t = Vec.push t.level_marks (Vec.length t.trail_tags)

let backtrack t =
  if Vec.length t.level_marks = 0 then
    invalid_arg "Store.backtrack: already at root";
  t.backtracks <- t.backtracks + 1;
  let mark = Vec.pop t.level_marks in
  while Vec.length t.trail_tags > mark do
    let tag = Vec.pop t.trail_tags in
    let old_value = Vec.pop t.trail_values in
    let v = tag lsr 1 in
    t.undo_stamp.(v) <- t.backtracks;
    if tag land 1 = 1 then t.mins.(v) <- old_value else t.maxs.(v) <- old_value
  done

let level t = Vec.length t.level_marks

let backtrack_to t target =
  if target < 0 || target > level t then
    invalid_arg "Store.backtrack_to: bad target level";
  while level t > target do
    backtrack t
  done;
  (* no pending wakeups should survive across a search reset *)
  drain_queues t

let backtrack_to_root t = backtrack_to t 0

let num_vars t = t.nvars
let stats_propagations t = t.propagations
let stats_wakeups_skipped t = t.wakeups_skipped
let stats_scratch_reuse t = t.scratch_reuse
let stats_edge_finder_prunes t = t.edge_finder_prunes
let note_scratch_reuse t = t.scratch_reuse <- t.scratch_reuse + 1

let note_edge_finder_prunes t n =
  t.edge_finder_prunes <- t.edge_finder_prunes + n

let stats_nogood_prunes t = t.nogood_prunes
let note_nogood_prune t = t.nogood_prunes <- t.nogood_prunes + 1
let restore_stamp t v = t.undo_stamp.(v)

let set_instrumented t on = t.instrumented <- on
let instrumented t = t.instrumented

type prop_metric = {
  prop_name : string;
  fires : int;
  fails : int;
  time_s : float;
}

let propagator_metrics t =
  let by_name = Hashtbl.create 16 in
  for pid = 0 to t.nprops - 1 do
    let name = t.prop_names.(pid) in
    let fires, fails, time_s =
      Option.value (Hashtbl.find_opt by_name name) ~default:(0, 0, 0.)
    in
    Hashtbl.replace by_name name
      ( fires + t.prop_fires.(pid),
        fails + t.prop_fails.(pid),
        time_s +. t.prop_time.(pid) )
  done;
  Hashtbl.fold
    (fun prop_name (fires, fails, time_s) acc ->
      { prop_name; fires; fails; time_s } :: acc)
    by_name []
  |> List.sort (fun a b -> compare a.prop_name b.prop_name)
