module Instance = Sched.Instance
module Solution = Sched.Solution
module Greedy = Sched.Greedy

type worker_stats = {
  strategy : string;
  w_late_jobs : int;
  w_nodes : int;
  w_failures : int;
  w_restarts : int;
  w_lns_moves : int;
  w_proved : bool;
  w_elapsed : float;
}

type stats = {
  base : Solver.stats;
  workers : worker_stats array;
  winner : string;
  domains_used : int;
}

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let pp_stats fmt s =
  Format.fprintf fmt "portfolio<%a domains=%d winner=%s workers=[" Solver.pp_stats
    s.base s.domains_used s.winner;
  Array.iteri
    (fun i w ->
      Format.fprintf fmt "%s%s:late=%d,n=%d,f=%d,r=%d,lns=%d%s"
        (if i > 0 then " " else "")
        w.strategy w.w_late_jobs w.w_nodes w.w_failures w.w_restarts
        w.w_lns_moves
        (if w.w_proved then ",proved" else ""))
    s.workers;
  Format.fprintf fmt "]>"

let worker_of_solver ~strategy (sol : Solution.t) (s : Solver.stats) =
  {
    strategy;
    w_late_jobs = sol.Solution.late_jobs;
    w_nodes = s.Solver.nodes;
    w_failures = s.Solver.failures;
    w_restarts = s.Solver.restarts;
    w_lns_moves = s.Solver.lns_moves;
    w_proved = s.Solver.proved_optimal;
    w_elapsed = s.Solver.elapsed;
  }

(* Worker 0 replicates the sequential solver exactly (same ordering, same
   tie-break, same restart policy, same RNG seed, isolated from foreign
   bounds); workers 1.. walk the (ordering × tie-break × restart-policy)
   grid with distinct RNG streams. *)
let strategy (base : Solver.options) i =
  if i = 0 then (base, "sequential", true)
  else begin
    let orders = [| Greedy.Edf; Greedy.Least_laxity; Greedy.By_job_id |] in
    let ties =
      [| Search.Slack_first; Search.Duration_first; Search.Deadline_first |]
    in
    (* restart arms anchored on the configured policy: the base policy, a
       slower Luby (longer slices, deeper dives), an aggressive geometric
       one, and the plain chronological DFS *)
    let scale =
      match base.Solver.restart with Restart.Luby s -> s | _ -> 128
    in
    let restarts =
      [|
        base.Solver.restart;
        Restart.Luby (2 * scale);
        Restart.Geometric { base = scale; grow = 2.0 };
        Restart.Off;
      |]
    in
    let idx = i - 1 in
    let ordering = orders.(idx mod 3) in
    (* Latin-square walk of the grid, varying the tie-break immediately:
       the greedy seed already tries every ordering, so for B&B workers the
       tie-break and restart policy are the axes that actually change the
       tree explored. *)
    let tie_break = ties.((idx + (idx / 3) + 1) mod 3) in
    let restart = restarts.(idx mod 4) in
    let seed = base.Solver.seed + (7919 * i) in
    let name =
      Printf.sprintf "%s/%s/%s/s%d"
        (Greedy.order_to_string ordering)
        (Search.tie_break_to_string tie_break)
        (Restart.to_string restart) seed
    in
    ({ base with Solver.ordering; tie_break; restart; seed }, name, false)
  end

let solve ?(domains = 1) ?(options = Solver.default_options)
    (inst : Instance.t) =
  let t0 = Obs.Clock.now () in
  if domains <= 1 then begin
    let sol, s = Solver.solve ~options inst in
    ( sol,
      {
        base = s;
        workers = [| worker_of_solver ~strategy:"sequential" sol s |];
        winner = "sequential";
        domains_used = 1;
      } )
  end
  else begin
    let lb = Solver.late_lower_bound inst in
    let seed_sol, warm_seeded = Solver.starting_incumbent ~options ~lb inst in
    if seed_sol.Solution.late_jobs <= lb then begin
      (* the common open-system case: the starting incumbent (greedy seed,
         or the warm-start candidate carried over from the previous solve)
         meets the lower bound, so the sequential fast path is optimal —
         don't spawn domains.  The stats mirror Solver.solve's fast path
         exactly. *)
      let s =
        {
          Solver.seed_late = seed_sol.Solution.late_jobs;
          lower_bound = lb;
          proved_optimal = true;
          warm_seeded;
          stop_reason =
            (if warm_seeded then Obs.Solve_stats.Cache_hit
             else Obs.Solve_stats.Proved);
          nodes = 0;
          failures = 0;
          restarts = 0;
          lns_moves = 0;
          elapsed = Obs.Clock.now () -. t0;
          metrics =
            (if options.Solver.instrument then Some Obs.Metrics.empty
             else None);
        }
      in
      ( seed_sol,
        {
          base = s;
          workers = [| worker_of_solver ~strategy:"seed" seed_sol s |];
          winner = "seed";
          domains_used = 1;
        } )
    end
    else begin
      (* Shared state: the incumbent Σ N_j (an Atomic every worker prunes
         against) and the first-to-prove-optimal cancellation flag.  Workers
         share nothing else mutable — each builds its own store, model and
         RNG on its own domain. *)
      let incumbent = Atomic.make max_int in
      let stop = Atomic.make false in
      let rec publish v =
        let cur = Atomic.get incumbent in
        if v < cur then begin
          if Atomic.compare_and_set incumbent cur v then begin
            if Obs.Trace.enabled () then
              Obs.Trace.instant ~cat:"portfolio" "incumbent"
                ~args:[ ("late", Obs.Trace.Int v) ]
          end
          else publish v
        end
      in
      let worker i () =
        let opts, name, isolated = strategy options i in
        let link =
          {
            Solver.should_stop = (fun () -> Atomic.get stop);
            global_bound = (fun () -> Atomic.get incumbent);
            announce = publish;
            isolated;
          }
        in
        let sol, s =
          Obs.Trace.with_span ~cat:"portfolio" ("worker:" ^ name) (fun () ->
              Solver.solve_linked ~options:opts ~link inst)
        in
        if s.Solver.proved_optimal then Atomic.set stop true;
        (name, sol, s)
      in
      let others =
        Array.init (domains - 1) (fun k ->
            Domain.spawn (fun () -> worker (k + 1) ()))
      in
      (* worker 0 (the sequential replica) runs on the calling domain, so a
         [domains]-way portfolio uses exactly [domains] domains *)
      let first = (try Ok (worker 0 ()) with e -> Error e) in
      let rest =
        Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) others
      in
      let results =
        Array.to_list (Array.append [| first |] rest)
        |> List.filter_map (function Ok r -> Some r | Error _ -> None)
      in
      (match
         Array.find_opt
           (function Error _ -> true | Ok _ -> false)
           (Array.append [| first |] rest)
       with
      | Some (Error e) -> raise e
      | _ -> ());
      match results with
      | [] -> assert false
      | (name0, sol0, _) :: _ ->
          let best_name, best_sol =
            List.fold_left
              (fun (bn, bs) (name, sol, _) ->
                if Solution.better sol bs then (name, sol) else (bn, bs))
              (name0, sol0) results
          in
          let workers =
            Array.of_list
              (List.map
                 (fun (name, sol, s) -> worker_of_solver ~strategy:name sol s)
                 results)
          in
          let sum f = List.fold_left (fun acc (_, _, s) -> acc + f s) 0 results in
          let seed_late =
            match results with (_, _, s0) :: _ -> s0.Solver.seed_late | [] -> 0
          in
          let warm_seeded =
            match results with
            | (_, _, s0) :: _ -> s0.Solver.warm_seeded
            | [] -> false
          in
          let proved =
            List.exists (fun (_, _, s) -> s.Solver.proved_optimal) results
            || best_sol.Solution.late_jobs <= lb
          in
          let metrics =
            match
              List.filter_map (fun (_, _, s) -> s.Solver.metrics) results
            with
            | [] -> None
            | snaps -> Some (Obs.Metrics.merge_all snaps)
          in
          (* the prover's reason when someone proved (the losers report
             [Interrupted] from the cancellation); the sequential replica's
             otherwise *)
          let stop_reason =
            match
              List.find_opt (fun (_, _, s) -> s.Solver.proved_optimal) results
            with
            | Some (_, _, s) -> s.Solver.stop_reason
            | None when proved -> Obs.Solve_stats.Proved
            | None -> (
                match results with
                | (_, _, s0) :: _ -> s0.Solver.stop_reason
                | [] -> Obs.Solve_stats.Proved)
          in
          let base =
            {
              Solver.seed_late;
              lower_bound = lb;
              proved_optimal = proved;
              warm_seeded;
              stop_reason;
              nodes = sum (fun s -> s.Solver.nodes);
              failures = sum (fun s -> s.Solver.failures);
              restarts = sum (fun s -> s.Solver.restarts);
              lns_moves = sum (fun s -> s.Solver.lns_moves);
              elapsed = Obs.Clock.now () -. t0;
              metrics;
            }
          in
          (best_sol, { base; workers; winner = best_name; domains_used = domains })
    end
  end
