(** Branch-and-bound depth-first search.

    Two branching phases, both standard for CP scheduling:

    1. {e lateness phase}: pick the undecided N_j with the earliest deadline
       and try N_j = 0 first (commit to meeting the deadline, which tightens
       the job's completion and start maxima) then N_j = 1;
    2. {e SetTimes phase}: among unfixed, non-postponed start variables pick
       the one with minimal est (tie: least slack, then longest duration);
       left branch fixes start = est, right branch marks the task postponed.
       A postponed task becomes selectable again when propagation raises its
       est; a node where every unfixed task is postponed and no est moved is
       a dominated dead end.  This scheme explores only semi-active
       schedules, which is exhaustive for regular objectives such as the
       paper's Σ N_j.

    With a {!Restart.policy} other than [Off], the DFS is additionally cut
    into slices by a per-slice fail budget: each slice restarts from the
    root (keeping the incumbent and bound), rightmost-branch nogoods are
    recorded into the optional {!Nogood} database at every cut, failed
    decisions steer variable selection (last-conflict reasoning), and the
    incumbent's start times steer value selection (solution-guided domain
    splits).  With [Off] — the default — the search is bit-identical to the
    plain chronological DFS.

    The search is generic over a {!problem} view so that both the MapReduce
    model ({!Model}) and extensions (e.g. DAG workflows in [lib/workflow])
    reuse it; {!run} is the MapReduce-model entry point. *)

type limits = {
  fail_limit : int;  (** max failures before giving up (0 = unlimited) *)
  node_limit : int;  (** max nodes (0 = unlimited) *)
  wall_deadline : float option;
      (** {!Obs.Clock.now} cutoff (monotonic seconds, {e not}
          [Unix.gettimeofday]) *)
  interrupt : (unit -> bool) option;
      (** polled every ~64 nodes; [true] abandons the search (reported as not
          proved).  The portfolio's first-to-prove-optimal cancellation. *)
  tighten_bound : (unit -> int) option;
      (** polled every ~64 nodes; when it returns a value below
          [problem.bound] the bound is adopted, so this search prunes against
          incumbents found by sibling portfolio workers.  The callback must be
          safe to call from this search's domain (e.g. read an [Atomic]). *)
  on_improve : (int -> unit) option;
      (** called with the new Σ N_j whenever this search records a better
          solution — the write side of the shared incumbent. *)
}

val no_limits : limits
(** No limits and no portfolio hooks — plain sequential search. *)

type tie_break =
  | Slack_first  (** est, then least slack, then longest duration (default) *)
  | Duration_first  (** est, then longest duration, then least slack *)
  | Deadline_first  (** est, then earliest owning-job deadline *)

val tie_break_to_string : tie_break -> string

type start_info = {
  svar : Store.var;
  duration : int;
  deadline : int;  (** of the owning job, for slack tie-breaking *)
}

type 'a problem = {
  store : Store.t;
  starts : start_info array;  (** every pending start variable *)
  lates : (Store.var * int) array;  (** (N_j, d_j) per job *)
  bound : int ref;  (** strict upper bound on Σ N_j *)
  bound_pid : Store.propagator_id;  (** re-scheduled at every node *)
  extract : unit -> 'a * int;
      (** payload and its true late count, called at full leaves; only
          strictly-bound-improving payloads are kept *)
}

(** Which condition ended the search.  [Exhausted] means the tree was
    explored to completion (or cut to emptiness by the bound) — the proof
    case; the others name the hard limit whose [Limit_reached] unwound the
    final slice.  Restart-slice cuts are {e not} stops and never surface
    here. *)
type stop_cause = Exhausted | Node_budget | Fail_budget | Wall_clock | Interrupt

val stop_reason_of_cause : stop_cause -> Obs.Solve_stats.stop_reason
(** The telemetry-level reason for a search-level cause ([Exhausted] maps
    to [Proved]; callers with richer context — cache hits, carried
    certificates, LNS stalls — substitute their own). *)

type 'a generic_outcome = {
  best : 'a option;
  proved_optimal : bool;
  stopped : stop_cause;
      (** [Exhausted] iff [proved_optimal]; otherwise the limit that cut
          the search *)
  nodes : int;
  failures : int;
  restarts : int;  (** slices cut by the restart policy *)
}

val run_problem :
  ?tie_break:tie_break ->
  ?restart:Restart.policy ->
  ?nogoods:Nogood.t ->
  ?guide:int array ->
  ?late_vrefs:int array ->
  ?start_vrefs:int array ->
  'a problem ->
  limits ->
  'a generic_outcome
(** Explore.  [problem.bound] must hold the strict bound to beat on entry.
    [tie_break] picks the SetTimes tie-breaking rule (default
    {!Slack_first}, the historical behaviour).

    The search treats the store level at entry as its base: restarts and the
    final unwind return to that level, never below it, so a caller may set
    up trailed state (objective cut, committed nogoods) in a pushed guard
    level around the search — {!Session} does.  Called at the root this is
    the historical behaviour exactly.

    [late_vrefs] / [start_vrefs] name [problem.lates] / [problem.starts]
    entries in recorded nogood literals (matching the [vars] mapping of the
    attached {!Nogood} database).  The defaults are the dense convention
    [j] and [n_lates + i]; a {!Session} passes store variable ids, which
    stay stable across invocations.

    [restart] (default {!Restart.Off}) cuts the DFS into fail-budgeted
    slices.  [nogoods] — only consulted when restarts are on — receives the
    rightmost-branch nogoods at every cut; pass a database already
    {!Nogood.attach}ed to [problem.store] so the clauses also prune.
    [guide], when given, must be one incumbent start value per entry of
    [problem.starts] ([min_int] = no guidance) and seeds solution-guided
    value ordering (used only under restarts; updated in place as better
    incumbents are found). *)

type outcome = {
  best : Sched.Solution.t option;
  proved_optimal : bool;
  stopped : stop_cause;
  nodes : int;
  failures : int;
  restarts : int;
}

val run :
  ?tie_break:tie_break ->
  ?restart:Restart.policy ->
  ?nogoods:Nogood.t ->
  ?guide:int array ->
  Model.t ->
  limits ->
  outcome
(** {!run_problem} specialized to the Table-1 MapReduce model. *)
