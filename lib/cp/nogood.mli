(** Nogood recording from restarts (Lecoutre et al., "Nogood recording from
    restarts", 2007), over the bound literals of the branch-and-bound
    search.

    At each restart the rightmost branch of the aborted slice is read off as
    a sequence of decisions.  Every decision's left branch is a bound
    literal on a search variable:

    - lateness left branch: [N_j <= 0];
    - solution-guided split: [v <= g] (or [v >= g] when the guide sits on
      the domain maximum);
    - SetTimes left branch: [v <= est] — equivalent to [v = est] because
      the node's propagated minimum is [est], which every solution of the
      decision prefix satisfies.

    For every {e refutation point} on the rightmost branch — a lateness or
    guided right branch (the true complement of its left sibling), or a
    SetTimes postponement (a vacuous right branch: no constraint is
    asserted, so dropping it from later prefixes is exact) — the positive
    literals before it plus the refuted left literal form an {e
    nld-nogood}: that conjunction admits no improving solution.  Soundness
    follows from (a) the left sibling of every refutation point having been
    exhausted before the right branch was entered, and (b) the objective
    bound only ever tightening, so a subtree proved empty of improving
    solutions stays empty.

    The database propagates its clauses with two watched literals per
    clause over the store's event-granular watch lists ([watch_max] for
    [<=] literals, [watch_min] for [>=] literals, registered lazily): one
    propagator services all clauses, watch positions are not trailed (the
    classic watched-literal invariant survives backtracking), and
    occurrence lists are compacted lazily.  A unit clause asserts the
    complement of its last undecided literal and is counted in
    {!Store.stats_nogood_prunes}. *)

type t

val create : ?max_clauses:int -> ?max_lits:int -> unit -> t
(** An empty database.  Once [max_clauses] (default 20_000) clauses are
    held, further recordings are dropped; so are clauses longer than
    [max_lits] (default 64) literals — deep-cut nogoods are long and almost
    never fire, while the short ones near the top of the tree carry the
    pruning.  Both drops are counted. *)

(** {1 Literals}

    A literal is a packed int built with {!lit_le}/{!lit_ge}.  Variables
    are named by a compact reference: job index [j] for the lateness
    variable of job [j], [n_lates + i] for entry [i] of the search's starts
    array — the same convention as the [vars] argument of {!attach}. *)

val lit_le : int -> int -> int
(** [lit_le vref a] is the literal [var(vref) <= a]; [a >= 0]. *)

val lit_ge : int -> int -> int
(** [lit_ge vref a] is the literal [var(vref) >= a]; [a >= 0]. *)

val lit_var : int -> int
val lit_is_ge : int -> bool
val lit_const : int -> int

(** {1 Recording} *)

val record : t -> lits:int array -> bound:int -> unit
(** [record t ~lits ~bound] adds the nogood "the conjunction of [lits]
    admits no solution with objective [< bound]" ([bound] being the
    incumbent bound when the nogood was derived; bounds only tighten, so it
    stays valid for the rest of the solve).  Takes ownership of [lits].
    The clause is integrated into the attached store at the next
    {!commit}. *)

val set_mark : t -> int -> unit
(** Set the derivation mark stored with every subsequent {!record}: the
    caller's departed-late counter (jobs that left the system with their
    lateness realized) at derivation time.  {!refresh} consumes it.
    Irrelevant (and zero) outside {!Session} use. *)

val set_context : t -> string -> unit
(** Nogoods are only valid against the model they were derived from.
    [set_context t fingerprint] clears the database unless [fingerprint]
    equals the current context — LNS iterations share clauses exactly when
    their frozen-task context is identical, while the exact whole-problem
    path keeps one context for the entire solve.  Call before {!attach}. *)

(** {1 Attachment} *)

val attach : t -> Store.t -> vars:Store.var array -> unit
(** Wire the database to [store]: registers the clause propagator and
    integrates any clauses carried over from a previous attachment.
    [vars] maps variable references to store variables (lateness variables
    first, then starts — see the literal convention above).  The store must
    be at the root level.  May raise [Store.Fail] if a carried clause is
    already violated at the root. *)

val grow_vars : t -> vars:Store.var array -> unit
(** Extend the attached variable mapping after new store variables were
    appended (a {!Session} sync).  [vars] must be a prefix-preserving
    extension of the mapping given to {!attach}: existing references keep
    naming the same store variables — the property that lets recorded
    clauses survive across invocations.  Does not register watches; new
    variables get theirs lazily as clauses mention them. *)

val set_armed : t -> bool -> unit
(** Gate the clause propagator.  While disarmed its runs are no-ops — a
    {!Session} disarms the database around the root-level store mutations it
    performs between searches (est bumps, retractions), where clause
    pruning, being relative to an objective bound that is not armed there,
    would wrongly become permanent.  Re-arm (after {!refresh}) before
    {!commit}.  Databases start armed; cold solves never toggle this. *)

val refresh : t -> departed_late:int -> initial_bound:int -> unit
(** Cross-invocation revalidation, called between {!Session} solves with
    the store inside the fresh guard level.  Each clause's bound on the
    current objective is [bound - k], where [k] counts the jobs that
    departed late since its derivation ([departed_late] minus the clause's
    {!set_mark} value); clauses whose adjusted bound falls below
    [initial_bound] — the strict bound the next search starts from — would
    prune solutions the new search still wants, so they are dropped (counted
    in {!stats_expired}).  Survivors have their bounds and marks rebased,
    their watches cleared, and are rewired into the store by the next
    {!commit} (which may raise [Store.Fail]: no improving solution exists). *)

val commit : t -> unit
(** Integrate clauses recorded since the last commit into the attached
    store: set up their watches and assert root-level units.  Call with the
    store at the root (i.e. after the restart's backtrack).  May raise
    [Store.Fail] when a clause is violated at the root — the search is then
    complete (no improving solution exists). *)

(** {1 Introspection} *)

val size : t -> int
(** Live clauses currently held. *)

val stats_recorded : t -> int
(** Clauses ever recorded (across contexts). *)

val stats_dropped : t -> int
(** Recordings discarded (database full, or clause over [max_lits]). *)

val stats_expired : t -> int
(** Clauses dropped by {!refresh} because departures invalidated them. *)

val stats_unit_props : t -> int
(** Unit propagations performed (complement literals asserted). *)

val stats_conflicts : t -> int
(** Clause violations detected (search backtracks). *)

val iter : t -> (lits:int array -> bound:int -> unit) -> unit
(** Iterate over live clauses — the soundness tests check each against a
    known optimal solution. *)
