(** The constraint propagators needed by the paper's Table-1 model:

    - {!precedence}: start_after ≥ start_before + duration (constraint (3)
      once the per-job LFMT is expressed with {!max_of});
    - {!max_of}: y = max_i (x_i + c_i), for LFMT/LFRT;
    - {!lateness}: constraint (4), "completion > deadline ⟹ N_j = 1",
      together with the useful contrapositive "N_j = 0 ⟹ completion ≤ d";
    - {!sum_lt_bound}: the branch-and-bound objective cut Σ N_j < bound;
    - {!cumulative}: constraints (5)/(6), time-table propagation with overload
      checking, handling both variable-start tasks and frozen
      (isPrevScheduled) tasks;
    - {!disjunctive}: Θ-tree overload checking + edge finding for pools that
      behave as a unary resource.

    Each function registers the propagator, wires its watches (to exactly
    the variable events its rules read — see {!Store.watch_min} etc.), and
    schedules an initial run; callers then invoke {!Store.propagate}. *)

type term = { start : Store.var; duration : int; demand : int }
(** A task as seen by [cumulative]. *)

(** Which capacity-constraint implementation the model posts.  [Naive] is
    the allocation-heavy reference time-table kernel, kept as the baseline
    for differential tests and benchmarks.  [Timetable] is the incremental
    allocation-free kernel with the identical fixpoint (and hence identical
    search trajectory).  [Edge_finding] replaces the time-table with
    {!disjunctive} on pools where that is sound (see
    {!disjunctive_applicable}), falling back to [Timetable] elsewhere.
    [Both] — the default — runs the time-table everywhere and additionally
    posts {!disjunctive} on eligible pools. *)
type kernel = Naive | Timetable | Edge_finding | Both

val kernel_to_string : kernel -> string
val kernel_of_string : string -> kernel option
(** Accepts ["naive"], ["timetable"], ["edge-finding"] (or
    ["edge_finding"]), ["both"]. *)

val all_kernels : kernel list

val ge_offset : Store.t -> Store.var -> Store.var -> int -> unit
(** [ge_offset s y x c] enforces y ≥ x + c (bounds in both directions). *)

val precedence : Store.t -> before:Store.var -> duration:int -> after:Store.var -> unit
(** [after ≥ before + duration]. *)

val max_of : Store.t -> result:Store.var -> terms:(Store.var * int) list -> floor:int -> unit
(** result = max(floor, max_i (x_i + c_i)).  With an empty term list, fixes
    result to [floor]. *)

val lateness :
  Store.t -> late:Store.var -> completion:Store.var -> deadline:int -> unit
(** [late] is a 0/1 variable: completion_min > deadline forces late = 1;
    late = 0 forces completion ≤ deadline; completion_max ≤ deadline forces
    late = 0. *)

val sum_lt_bound :
  Store.t -> vars:Store.var array -> bound:int ref -> Store.propagator_id
(** Σ vars < !bound (strict).  Re-schedule the returned token after lowering
    [bound].  When Σ min reaches [!bound - 1], remaining free vars are forced
    to 0. *)

val cumulative :
  Store.t ->
  tasks:term array ->
  fixed:(int * int * int) array ->
  capacity:int ->
  unit
(** Time-table (compulsory part) propagation over [tasks] plus frozen
    [(start, duration, demand)] occupations, under the capacity limit.
    Prunes both start minima and start maxima; fails on profile overload.
    Exact (overload = capacity violation) once all starts are fixed.

    Allocation-free on the hot path: per-instance scratch arrays, stable
    per-task event slots refreshed only when the task's bounds moved, an
    insertion sort over the (nearly sorted) event permutation, and a
    witnessed-fixpoint skip counted in {!Store.stats_scratch_reuse}.  The
    propagation — and so the search trajectory — is identical to
    {!cumulative_naive}. *)

val cumulative_naive :
  Store.t ->
  tasks:term array ->
  fixed:(int * int * int) array ->
  capacity:int ->
  unit
(** The pre-overhaul reference implementation of {!cumulative} (rebuilds
    the profile with fresh lists and a full sort each run).  Same pruning;
    kept for differential testing and as the benchmark baseline. *)

val disjunctive_applicable :
  tasks:term array -> fixed:(int * int * int) array -> capacity:int -> bool
(** Whether the pool behaves as a unary resource, making {!disjunctive}
    sound on its own: at least one active variable task, and every active
    task (variable or frozen) has [demand = capacity].  (With capacity 1
    this is the usual disjunctive machine.) *)

val disjunctive :
  Store.t -> tasks:term array -> fixed:(int * int * int) array -> unit
(** Unary-resource filtering via a Θ-Λ tree (Vilím, O(n log n) per run):
    overload checking plus edge finding on both bound sides (the max side
    runs the est-side pass on the reflected time axis).  Demands are
    ignored — post only where {!disjunctive_applicable} holds.  Frozen
    occupations participate as immutable tasks; a bound strengthened on one
    is reported as an overload failure.  Prunes are counted in
    {!Store.stats_edge_finder_prunes}. *)

val cumulative_kernel :
  Store.t ->
  kernel:kernel ->
  tasks:term array ->
  fixed:(int * int * int) array ->
  capacity:int ->
  unit
(** Post the capacity constraint for one pool according to [kernel] (see
    {!type:kernel}). *)

type gated = {
  g_start : Store.var;
  g_duration : int;
  g_demand : int;
  g_member : Store.var;  (** resource-choice variable *)
  g_value : int;  (** the task occupies this resource iff g_member = value *)
}

val cumulative_gated :
  ?energetic:bool -> Store.t -> tasks:gated array -> capacity:int -> unit
(** Per-resource cumulative for the paper's {e direct} formulation (the x_tr
    variables of Table 1, before the §V.D decomposition): a task contributes
    to this resource's profile only once its choice variable is fixed to
    [g_value], and only such tasks have their start bounds pruned here.
    Weaker propagation than {!cumulative} (unassigned tasks are invisible),
    but exact once every choice and start is fixed — which is all the
    branch-and-bound needs for soundness.

    Incremental like {!cumulative} (membership + bounds cache, stable event
    slots, witnessed-fixpoint skip).  With [energetic] (default false), a
    run additionally performs an energetic-reasoning failure check over the
    current members: for every window spanned by member release dates and
    deadlines, the summed minimal-intersection energy must fit
    [capacity × window]; the check detects some infeasible partial
    assignments the time table cannot, and is skipped beyond a small member
    count to bound its O(m²)-windows cost. *)

(** {1 Dynamic registries}

    {!Session} keeps one store alive across solver invocations; the
    propagators below are the growable/shrinkable counterparts of
    {!cumulative} and {!sum_lt_bound} it posts once at store creation.
    Their task/variable registries are mutated at the root between searches
    — never during one. *)

type dyn_pool
(** A capacity propagator over a mutable task registry: the
    {!cumulative_naive} profile and pruning (identical fixpoint), with
    {!cumulative}'s allocation-free event machinery. *)

val cumulative_dyn : Store.t -> capacity:int -> dyn_pool
(** Register the propagator with an empty registry (priority 2). *)

val dyn_add : dyn_pool -> Store.t -> term -> unit
(** Append a task: watch its start and reschedule the pool.  Frozen tasks
    enter as fixed variables (their compulsory part is their whole
    execution window).  @raise Store.Fail when [demand > capacity]. *)

val dyn_retire : dyn_pool -> Store.t -> Store.var -> unit
(** Remove the task whose start variable is the given one: unhooks the
    pool from the variable's watch lists ({!Store.unwatch}) and reschedules.
    The caller fixes the variable at its realized start first, so removal
    never loosens the profile seen by the remaining tasks.
    @raise Invalid_argument when the variable is not in the registry. *)

val dyn_pool_pid : dyn_pool -> Store.propagator_id

type dyn_sum
(** Growable Σ N_j < bound over a mutable variable set. *)

val sum_lt_bound_dyn : Store.t -> bound:int ref -> dyn_sum
(** Register with an empty variable set.  With [!bound = max_int] the
    propagator is inert — the session disarms the cut this way between
    searches. *)

val dyn_sum_add : dyn_sum -> Store.t -> Store.var -> unit
val dyn_sum_remove : dyn_sum -> Store.t -> Store.var -> unit

val dyn_sum_pid : dyn_sum -> Store.propagator_id
(** The cut's propagator token — {!Session} passes it as the search's
    [bound_pid] and reschedules it after arming the bound. *)
