module T = Mapreduce.Types

type limits = {
  fail_limit : int;
  node_limit : int;
  wall_deadline : float option;
  interrupt : (unit -> bool) option;
  tighten_bound : (unit -> int) option;
  on_improve : (int -> unit) option;
}

let no_limits =
  {
    fail_limit = 0;
    node_limit = 0;
    wall_deadline = None;
    interrupt = None;
    tighten_bound = None;
    on_improve = None;
  }

type tie_break = Slack_first | Duration_first | Deadline_first

let tie_break_to_string = function
  | Slack_first -> "slack"
  | Duration_first -> "duration"
  | Deadline_first -> "deadline"

type start_info = { svar : Store.var; duration : int; deadline : int }

type 'a problem = {
  store : Store.t;
  starts : start_info array;
  lates : (Store.var * int) array;
  bound : int ref;
  bound_pid : Store.propagator_id;
  extract : unit -> 'a * int;
}

type stop_cause = Exhausted | Node_budget | Fail_budget | Wall_clock | Interrupt

let stop_reason_of_cause = function
  | Exhausted -> Obs.Solve_stats.Proved
  | Node_budget -> Obs.Solve_stats.Node_limit
  | Fail_budget -> Obs.Solve_stats.Fail_limit
  | Wall_clock -> Obs.Solve_stats.Wall_limit
  | Interrupt -> Obs.Solve_stats.Interrupted

type 'a generic_outcome = {
  best : 'a option;
  proved_optimal : bool;
  stopped : stop_cause;
  nodes : int;
  failures : int;
  restarts : int;
}

exception Limit_reached

type 'a state = {
  problem : 'a problem;
  limits : limits;
  tie_break : tie_break;
  (* [Obs.Trace.enabled] sampled once per search, so the hot path tests a
     plain immutable bool instead of an atomic. *)
  tracing : bool;
  (* restart machinery; with [restart_on = false] every field below is inert
     and the search is the single chronological DFS it always was *)
  restart_on : bool;
  nogoods : Nogood.t option;
  guide : int array;  (* per-start incumbent value; min_int = none *)
  (* lates indices presorted by (deadline, index): [select_late] resumes
     from the first entry not yet fixed on the current path instead of
     rescanning all jobs at every node *)
  late_order : int array;
  (* nogood variable references: [late_vref.(j)] / [start_vref.(i)] name
     lates.(j) / starts.(i) in recorded literals.  The default is the
     historical dense convention (j, and n_lates + i); a {!Session} search
     passes store variable ids instead, which stay stable across
     invocations so carried clauses keep meaning the same variables. *)
  late_vref : int array;
  start_vref : int array;
  (* current path's decisions as bound literals, two ints per entry:
     [(vref lsl 2) lor (dir lsl 1) lor pos; const] with dir 1 = ">=" and
     pos 1 = a positive (left) decision, 0 = a refutation point.  The
     rightmost branch at a restart, read off for nogood extraction.
     vref is the job index for a lateness variable, n_lates + i for
     starts.(i) — the {!Nogood} attachment convention. *)
  mutable dtrail : int array;
  mutable dtrail_len : int;
  mutable best : 'a option;
  mutable nodes : int;
  mutable failures : int;
  mutable restarts : int;
  mutable slice_fail_stop : int;  (* failure count ending the slice *)
  mutable slice_hit : bool;  (* Limit_reached meant "restart", not "stop" *)
  mutable stop_cause : stop_cause;  (* which hard limit cut the search *)
  mutable last_conflict_late : int;  (* lates index, -1 = none *)
  mutable last_conflict_start : int;  (* starts index, -1 = none *)
  mutable late_cursor : int;  (* out-param of [select_late] *)
  mutable ticks : int;  (* countdown to the next wall-clock check *)
}

(* The closures below are only allocated on the tracing branch, so the
   untraced path is exactly the direct call. *)
let propagate_st st s =
  if st.tracing then
    Obs.Trace.with_span ~cat:"search" "propagate" (fun () -> Store.propagate s)
  else Store.propagate s

let backtrack_st st s =
  if st.tracing then
    Obs.Trace.with_span ~cat:"search" "backtrack" (fun () -> Store.backtrack s)
  else Store.backtrack s

(* Push one decision-trail entry; pops are a plain [dtrail_len - 2].  Both
   are skipped on a [Limit_reached] unwind so that at a restart cut the
   trail holds exactly the current (rightmost) path, and the length is
   reset at the start of every slice. *)
let dpush st ~vref ~ge ~positive const =
  if st.dtrail_len + 2 > Array.length st.dtrail then begin
    let a = Array.make (2 * Array.length st.dtrail) 0 in
    Array.blit st.dtrail 0 a 0 st.dtrail_len;
    st.dtrail <- a
  end;
  st.dtrail.(st.dtrail_len) <-
    (vref lsl 2) lor (if ge then 2 else 0) lor (if positive then 1 else 0);
  st.dtrail.(st.dtrail_len + 1) <- const;
  st.dtrail_len <- st.dtrail_len + 2

let check_limits st =
  if st.limits.node_limit > 0 && st.nodes >= st.limits.node_limit then begin
    st.slice_hit <- false;
    st.stop_cause <- Node_budget;
    raise Limit_reached
  end;
  if st.limits.fail_limit > 0 && st.failures >= st.limits.fail_limit then begin
    st.slice_hit <- false;
    st.stop_cause <- Fail_budget;
    raise Limit_reached
  end;
  if st.failures >= st.slice_fail_stop then begin
    st.slice_hit <- true;
    raise Limit_reached
  end;
  st.ticks <- st.ticks - 1;
  if st.ticks <= 0 then begin
    st.ticks <- 64;
    (match st.limits.interrupt with
    | Some stop when stop () ->
        st.slice_hit <- false;
        st.stop_cause <- Interrupt;
        raise Limit_reached
    | _ -> ());
    (* Adopt an incumbent bound found by a sibling portfolio worker.  The
       bound ref only ever tightens, and the objective cut is re-scheduled at
       every node, so lowering it here is safe mid-search. *)
    (match st.limits.tighten_bound with
    | Some global ->
        let g = global () in
        if g < !(st.problem.bound) then st.problem.bound := g
    | None -> ());
    match st.limits.wall_deadline with
    | Some deadline when Obs.Clock.now () > deadline ->
        st.slice_hit <- false;
        st.stop_cause <- Wall_clock;
        raise Limit_reached
    | _ -> ()
  end

(* Pick the undecided lateness variable of the job with the earliest
   deadline: the first undecided entry of [late_order] at or after
   [late_from] (everything before was fixed when skipped, and fixing is
   monotone down a branch).  Returns the lates index, or -1 when all are
   decided; [st.late_cursor] is set to the resume position for the
   children.  Under restarts, an undecided last-conflict variable takes
   priority. *)
let select_late st late_from =
  let s = st.problem.store in
  let lates = st.problem.lates in
  if
    st.restart_on
    && st.last_conflict_late >= 0
    && not (Store.is_fixed s (fst lates.(st.last_conflict_late)))
  then begin
    st.late_cursor <- late_from;
    st.last_conflict_late
  end
  else begin
    let order = st.late_order in
    let n = Array.length order in
    let k = ref late_from in
    while !k < n && Store.is_fixed s (fst lates.(Array.unsafe_get order !k)) do
      incr k
    done;
    st.late_cursor <- !k;
    if !k >= n then -1 else order.(!k)
  end

(* Pick the SetTimes candidate: unfixed, and not postponed at its current
   est.  postponed.(i) holds the est at which task i was postponed, or
   min_int. *)
let select_start st postponed =
  let s = st.problem.store in
  let starts = st.problem.starts in
  (* under restarts, re-branch first on the start whose decision caused the
     most recent failure (last-conflict reasoning) *)
  let lc = if st.restart_on then st.last_conflict_start else -1 in
  if
    lc >= 0
    && (not (Store.is_fixed s starts.(lc).svar))
    && postponed.(lc) <> Store.min_of s starts.(lc).svar
  then lc
  else begin
    let best = ref (-1) in
    (* the (est, k2, k3) selection key, kept in three int refs so the scan —
       O(tasks) per node — never allocates or falls into polymorphic compare *)
    let b_est = ref max_int and b_k2 = ref max_int and b_k3 = ref min_int in
    for i = 0 to Array.length starts - 1 do
      let info = Array.unsafe_get starts i in
      if not (Store.is_fixed s info.svar) then begin
        let est = Store.min_of s info.svar in
        if postponed.(i) <> est then begin
          let slack = info.deadline - est - info.duration in
          (* always prefer small est; the remaining tie-break is the
             portfolio's diversification axis *)
          let k2 =
            match st.tie_break with
            | Slack_first -> slack
            | Duration_first -> -info.duration
            | Deadline_first -> info.deadline
          and k3 =
            match st.tie_break with
            | Slack_first | Deadline_first -> -info.duration
            | Duration_first -> slack
          in
          if
            est < !b_est
            || (est = !b_est && (k2 < !b_k2 || (k2 = !b_k2 && k3 < !b_k3)))
          then begin
            b_est := est;
            b_k2 := k2;
            b_k3 := k3;
            best := i
          end
        end
      end
    done;
    !best
  end

let all_starts_fixed st =
  Array.for_all
    (fun info -> Store.is_fixed st.problem.store info.svar)
    st.problem.starts

let record_solution st =
  (* The true late count can be below Σ N_j (constraint (4) is
     one-directional), and the bound may have been tightened by a solution in
     a sibling subtree, so re-check improvement here. *)
  let payload, late_count = st.problem.extract () in
  if late_count < !(st.problem.bound) then begin
    st.best <- Some payload;
    st.problem.bound := late_count;
    (* solution-guided value ordering: later branching steers each start
       toward the incumbent's value *)
    if st.restart_on then begin
      let s = st.problem.store in
      let starts = st.problem.starts in
      for k = 0 to Array.length starts - 1 do
        st.guide.(k) <- Store.min_of s starts.(k).svar
      done
    end;
    match st.limits.on_improve with
    | Some announce -> announce late_count
    | None -> ()
  end

let rec dfs st postponed late_from =
  check_limits st;
  st.nodes <- st.nodes + 1;
  match select_late st late_from with
  | -1 ->
      (* all lates decided: children resume past the whole order *)
      start_phase st postponed st.late_cursor
  | j ->
      let cur = st.late_cursor in
      branch_late st postponed cur j

and start_phase st postponed late_from =
  let s = st.problem.store in
  match select_start st postponed with
  | -1 ->
      if all_starts_fixed st then record_solution st
      (* else: every unfixed task is postponed at an unchanged est —
         dominated dead end *)
  | i ->
      let info = st.problem.starts.(i) in
      let v = info.svar in
      let min_ = Store.min_of s v in
      let g = if st.restart_on then st.guide.(i) else min_int in
      if g >= min_ && g <= Store.max_of s v then begin
        (* solution-guided domain split converging on the incumbent start g:
           a strict partition on both sides, so SetTimes dominance is not
           needed for completeness here.  The left literal (v <= g, or
           v >= g when g sits on the max) goes on the decision trail; the
           right branch asserts its true complement. *)
        let max_ = Store.max_of s v in
        let vref = st.start_vref.(i) in
        if g < max_ then
          branch_start st postponed late_from i ~vref ~ge:false ~const:g
            ~left:(fun () -> Store.set_max s v g)
            ~right:(fun () -> Store.set_min s v (g + 1))
        else
          branch_start st postponed late_from i ~vref ~ge:true ~const:g
            ~left:(fun () -> Store.set_min s v g)
            ~right:(fun () -> Store.set_max s v (g - 1))
      end
      else branch_asym st postponed late_from i min_

(* Two store-changing branches over a lateness variable, with decision
   recording (for nogood extraction) and conflict attribution. *)
and branch_late st postponed late_from j =
  let s = st.problem.store in
  let late = fst st.problem.lates.(j) in
  (* left literal N_j <= 0; the right branch asserts its true complement *)
  let attempt positive f =
    if st.restart_on then dpush st ~vref:st.late_vref.(j) ~ge:false ~positive 0;
    Store.push_level s;
    (try
       f ();
       (* the incumbent bound may have moved: re-check the objective cut *)
       Store.schedule s st.problem.bound_pid;
       propagate_st st s;
       dfs st postponed late_from
     with Store.Fail _ ->
       st.failures <- st.failures + 1;
       if st.restart_on then st.last_conflict_late <- j);
    backtrack_st st s;
    if st.restart_on then st.dtrail_len <- st.dtrail_len - 2
  in
  let left () = attempt true (fun () -> Store.set_max s late 0)
  and right () = attempt false (fun () -> Store.set_min s late 1) in
  if st.tracing then begin
    Obs.Trace.with_span ~cat:"search" "branch" left;
    Obs.Trace.with_span ~cat:"search" "branch" right
  end
  else begin
    left ();
    right ()
  end

(* Two store-changing branches over a start variable (guided split); the
   left literal is (vref, <=/>=, const) per [ge]. *)
and branch_start st postponed late_from i ~vref ~ge ~const ~left ~right =
  let s = st.problem.store in
  let attempt positive f =
    dpush st ~vref ~ge ~positive const;
    Store.push_level s;
    (try
       f ();
       Store.schedule s st.problem.bound_pid;
       propagate_st st s;
       dfs st postponed late_from
     with Store.Fail _ ->
       st.failures <- st.failures + 1;
       if st.restart_on then st.last_conflict_start <- i);
    backtrack_st st s;
    st.dtrail_len <- st.dtrail_len - 2
  in
  if st.tracing then begin
    Obs.Trace.with_span ~cat:"search" "branch" (fun () -> attempt true left);
    Obs.Trace.with_span ~cat:"search" "branch" (fun () -> attempt false right)
  end
  else begin
    attempt true left;
    attempt false right
  end

(* SetTimes: left fixes at est and changes the store; right only updates
   the postponed bookkeeping in place (no store change, hence no
   propagation and no new level needed) and undoes it afterwards — the
   restore is skipped on a [Limit_reached] unwind, which is fine because
   the array is refilled at the start of every slice. *)
and branch_asym st postponed late_from i est =
  let s = st.problem.store in
  (* The left literal is v <= est: the node's propagated minimum is est, so
     under the decision prefix it is equivalent to fixing v = est.  The
     postponement asserts nothing (a vacuous negative), but it is still a
     refutation point — the fix subtree was exhausted first — so it leaves
     a pos=0 trail entry for nogood extraction. *)
  let vref = st.start_vref.(i) in
  let attempt () =
    if st.restart_on then dpush st ~vref ~ge:false ~positive:true est;
    Store.push_level s;
    (try
       Store.fix s st.problem.starts.(i).svar est;
       Store.schedule s st.problem.bound_pid;
       propagate_st st s;
       dfs st postponed late_from
     with Store.Fail _ ->
       st.failures <- st.failures + 1;
       if st.restart_on then st.last_conflict_start <- i);
    backtrack_st st s;
    if st.restart_on then st.dtrail_len <- st.dtrail_len - 2
  in
  if st.tracing then Obs.Trace.with_span ~cat:"search" "branch" attempt
  else attempt ();
  if st.restart_on then dpush st ~vref ~ge:false ~positive:false est;
  let old = postponed.(i) in
  postponed.(i) <- est;
  dfs st postponed late_from;
  postponed.(i) <- old;
  if st.restart_on then st.dtrail_len <- st.dtrail_len - 2

(* At a restart, every refutation point on the current (rightmost) path
   yields an nld-nogood: the positive literals before it, plus its refuted
   left literal (see nogood.mli for why negatives can be dropped — guided
   and lateness rights are true complements, postponements are vacuous).
   Recorded against the incumbent bound at this restart, which is at least
   as tight as when each left subtree was exhausted; bounds only tighten,
   so the clauses stay valid for the rest of the solve. *)
let extract_nogoods st db =
  let bound = !(st.problem.bound) in
  let prefix = Array.make ((st.dtrail_len / 2) + 1) 0 in
  let n_pos = ref 0 in
  let d = ref 0 in
  while !d < st.dtrail_len do
    let tag = st.dtrail.(!d) and a = st.dtrail.(!d + 1) in
    let vref = tag lsr 2 in
    let lit =
      if tag land 2 <> 0 then Nogood.lit_ge vref a else Nogood.lit_le vref a
    in
    if tag land 1 = 1 then begin
      prefix.(!n_pos) <- lit;
      incr n_pos
    end
    else begin
      let lits = Array.make (!n_pos + 1) 0 in
      Array.blit prefix 0 lits 0 !n_pos;
      lits.(!n_pos) <- lit;
      Nogood.record db ~lits ~bound
    end;
    d := !d + 2
  done

let run_problem ?(tie_break = Slack_first) ?(restart = Restart.Off) ?nogoods
    ?guide ?late_vrefs ?start_vrefs problem limits =
  let tracing = Obs.Trace.enabled () in
  let t0 = if tracing then Obs.Trace.now_us () else 0. in
  let restart_on = restart <> Restart.Off in
  let n_starts = Array.length problem.starts in
  let n_lates = Array.length problem.lates in
  let late_order = Array.init n_lates (fun j -> j) in
  Array.sort
    (fun a b ->
      let da = snd problem.lates.(a) and db = snd problem.lates.(b) in
      if da <> db then compare da db else compare a b)
    late_order;
  let st =
    {
      problem;
      limits;
      tie_break;
      tracing;
      restart_on;
      nogoods = (if restart_on then nogoods else None);
      guide =
        (match guide with
        | Some g -> g
        | None -> Array.make n_starts min_int);
      late_order;
      late_vref =
        (match late_vrefs with
        | Some a -> a
        | None -> Array.init n_lates (fun j -> j));
      start_vref =
        (match start_vrefs with
        | Some a -> a
        | None -> Array.init n_starts (fun i -> n_lates + i));
      dtrail = Array.make (4 * (n_lates + n_starts + 1)) 0;
      dtrail_len = 0;
      best = None;
      nodes = 0;
      failures = 0;
      restarts = 0;
      slice_fail_stop = max_int;
      slice_hit = false;
      stop_cause = Exhausted;
      last_conflict_late = -1;
      last_conflict_start = -1;
      late_cursor = 0;
      ticks = 1;
    }
  in
  let s = problem.store in
  (* The search never unwinds below its entry level: a {!Session} pushes a
     guard level (objective cut, rewired nogoods) before calling in, and
     that state must survive restarts.  At the root ([base = 0]) this is
     exactly the historical backtrack-to-root behaviour. *)
  let base = Store.level s in
  let postponed = Array.make n_starts min_int in
  let rec slices k =
    st.slice_hit <- false;
    st.slice_fail_stop <-
      (match Restart.slice restart k with
      | 0 -> max_int
      | budget -> st.failures + budget);
    Array.fill postponed 0 n_starts min_int;
    st.dtrail_len <- 0;
    let completed =
      try
        (try
           if k > 1 then Store.schedule s problem.bound_pid;
           propagate_st st s;
           dfs st postponed 0
         with Store.Fail _ -> st.failures <- st.failures + 1);
        true
      with Limit_reached -> false
    in
    if completed then true
    else if st.slice_hit then begin
      (match st.nogoods with
      | Some db -> extract_nogoods st db
      | None -> ());
      Store.backtrack_to s base;
      st.restarts <- st.restarts + 1;
      if tracing then
        Obs.Trace.instant ~cat:"search" "restart"
          ~args:
            [
              ("slice", Obs.Trace.Int k);
              ("failures", Obs.Trace.Int st.failures);
              ( "nogoods",
                Obs.Trace.Int
                  (match st.nogoods with
                  | Some db -> Nogood.size db
                  | None -> 0) );
            ];
      (* committing the fresh nogoods can fail the root: then no improving
         solution exists and the search is complete *)
      match
        match st.nogoods with Some db -> Nogood.commit db | None -> ()
      with
      | () -> slices (k + 1)
      | exception Store.Fail _ ->
          st.failures <- st.failures + 1;
          true
    end
    else false
  in
  let proved_optimal = slices 1 in
  Store.backtrack_to s base;
  if tracing then
    Obs.Trace.complete ~cat:"search" ~ts:t0 "search"
      ~args:
        [
          ("nodes", Obs.Trace.Int st.nodes);
          ("failures", Obs.Trace.Int st.failures);
          ("restarts", Obs.Trace.Int st.restarts);
          ("proved_optimal", Obs.Trace.Bool proved_optimal);
          ("tie_break", Obs.Trace.Str (tie_break_to_string tie_break));
          ("restart_policy", Obs.Trace.Str (Restart.to_string restart));
        ];
  {
    best = st.best;
    proved_optimal;
    stopped = (if proved_optimal then Exhausted else st.stop_cause);
    nodes = st.nodes;
    failures = st.failures;
    restarts = st.restarts;
  }

(* --- MapReduce-model entry point -------------------------------------- *)

type outcome = {
  best : Sched.Solution.t option;
  proved_optimal : bool;
  stopped : stop_cause;
  nodes : int;
  failures : int;
  restarts : int;
}

let problem_of_model (m : Model.t) =
  let deadline_of jdx =
    m.Model.instance.Sched.Instance.jobs.(jdx).Sched.Instance.job.T.deadline
  in
  {
    store = m.Model.store;
    starts =
      Array.map
        (fun (tv : Model.task_var) ->
          {
            svar = tv.Model.var;
            duration = tv.Model.task.T.exec_time;
            deadline = deadline_of tv.Model.job_index;
          })
        m.Model.starts;
    lates = Array.mapi (fun jdx late -> (late, deadline_of jdx)) m.Model.lates;
    bound = m.Model.bound;
    bound_pid = m.Model.bound_pid;
    extract =
      (fun () ->
        let sol = Model.extract m in
        (sol, sol.Sched.Solution.late_jobs));
  }

let run ?tie_break ?restart ?nogoods ?guide model limits =
  let o =
    run_problem ?tie_break ?restart ?nogoods ?guide (problem_of_model model)
      limits
  in
  {
    best = o.best;
    proved_optimal = o.proved_optimal;
    stopped = o.stopped;
    nodes = o.nodes;
    failures = o.failures;
    restarts = o.restarts;
  }
