module T = Mapreduce.Types

type limits = {
  fail_limit : int;
  node_limit : int;
  wall_deadline : float option;
  interrupt : (unit -> bool) option;
  tighten_bound : (unit -> int) option;
  on_improve : (int -> unit) option;
}

let no_limits =
  {
    fail_limit = 0;
    node_limit = 0;
    wall_deadline = None;
    interrupt = None;
    tighten_bound = None;
    on_improve = None;
  }

type tie_break = Slack_first | Duration_first | Deadline_first

let tie_break_to_string = function
  | Slack_first -> "slack"
  | Duration_first -> "duration"
  | Deadline_first -> "deadline"

type start_info = { svar : Store.var; duration : int; deadline : int }

type 'a problem = {
  store : Store.t;
  starts : start_info array;
  lates : (Store.var * int) array;
  bound : int ref;
  bound_pid : Store.propagator_id;
  extract : unit -> 'a * int;
}

type 'a generic_outcome = {
  best : 'a option;
  proved_optimal : bool;
  nodes : int;
  failures : int;
}

exception Limit_reached

type 'a state = {
  problem : 'a problem;
  limits : limits;
  tie_break : tie_break;
  (* [Obs.Trace.enabled] sampled once per search, so the hot path tests a
     plain immutable bool instead of an atomic. *)
  tracing : bool;
  mutable best : 'a option;
  mutable nodes : int;
  mutable failures : int;
  mutable ticks : int;  (* countdown to the next wall-clock check *)
}

(* The closures below are only allocated on the tracing branch, so the
   untraced path is exactly the direct call. *)
let propagate_st st s =
  if st.tracing then
    Obs.Trace.with_span ~cat:"search" "propagate" (fun () -> Store.propagate s)
  else Store.propagate s

let backtrack_st st s =
  if st.tracing then
    Obs.Trace.with_span ~cat:"search" "backtrack" (fun () -> Store.backtrack s)
  else Store.backtrack s

let check_limits st =
  if st.limits.node_limit > 0 && st.nodes >= st.limits.node_limit then
    raise Limit_reached;
  if st.limits.fail_limit > 0 && st.failures >= st.limits.fail_limit then
    raise Limit_reached;
  st.ticks <- st.ticks - 1;
  if st.ticks <= 0 then begin
    st.ticks <- 64;
    (match st.limits.interrupt with
    | Some stop when stop () -> raise Limit_reached
    | _ -> ());
    (* Adopt an incumbent bound found by a sibling portfolio worker.  The
       bound ref only ever tightens, and the objective cut is re-scheduled at
       every node, so lowering it here is safe mid-search. *)
    (match st.limits.tighten_bound with
    | Some global ->
        let g = global () in
        if g < !(st.problem.bound) then st.problem.bound := g
    | None -> ());
    match st.limits.wall_deadline with
    | Some deadline when Unix.gettimeofday () > deadline -> raise Limit_reached
    | _ -> ()
  end

(* Pick the undecided lateness variable of the job with the earliest
   deadline. *)
let select_late st =
  let s = st.problem.store in
  let best = ref None in
  Array.iter
    (fun (late, deadline) ->
      if not (Store.is_fixed s late) then
        match !best with
        | Some (_, d) when d <= deadline -> ()
        | _ -> best := Some (late, deadline))
    st.problem.lates;
  Option.map fst !best

(* Pick the SetTimes candidate: unfixed, and not postponed at its current
   est.  postponed.(i) holds the est at which task i was postponed, or
   min_int. *)
let select_start st postponed =
  let s = st.problem.store in
  let starts = st.problem.starts in
  let best = ref (-1) in
  (* the (est, k2, k3) selection key, kept in three int refs so the scan —
     O(tasks) per node — never allocates or falls into polymorphic compare *)
  let b_est = ref max_int and b_k2 = ref max_int and b_k3 = ref min_int in
  for i = 0 to Array.length starts - 1 do
    let info = Array.unsafe_get starts i in
    if not (Store.is_fixed s info.svar) then begin
      let est = Store.min_of s info.svar in
      if postponed.(i) <> est then begin
        let slack = info.deadline - est - info.duration in
        (* always prefer small est; the remaining tie-break is the
           portfolio's diversification axis *)
        let k2 =
          match st.tie_break with
          | Slack_first -> slack
          | Duration_first -> -info.duration
          | Deadline_first -> info.deadline
        and k3 =
          match st.tie_break with
          | Slack_first | Deadline_first -> -info.duration
          | Duration_first -> slack
        in
        if
          est < !b_est
          || (est = !b_est
              && (k2 < !b_k2 || (k2 = !b_k2 && k3 < !b_k3)))
        then begin
          b_est := est;
          b_k2 := k2;
          b_k3 := k3;
          best := i
        end
      end
    end
  done;
  if !best < 0 then None else Some !best

let all_starts_fixed st =
  Array.for_all
    (fun info -> Store.is_fixed st.problem.store info.svar)
    st.problem.starts

let record_solution st =
  (* The true late count can be below Σ N_j (constraint (4) is
     one-directional), and the bound may have been tightened by a solution in
     a sibling subtree, so re-check improvement here. *)
  let payload, late_count = st.problem.extract () in
  if late_count < !(st.problem.bound) then begin
    st.best <- Some payload;
    st.problem.bound := late_count;
    match st.limits.on_improve with
    | Some announce -> announce late_count
    | None -> ()
  end

let rec dfs st postponed =
  check_limits st;
  st.nodes <- st.nodes + 1;
  let s = st.problem.store in
  match select_late st with
  | Some late ->
      branch st postponed
        ~left:(fun () -> Store.set_max s late 0)
        ~right:(fun () -> Store.set_min s late 1)
  | None -> (
      match select_start st postponed with
      | None ->
          if all_starts_fixed st then record_solution st
          (* else: every unfixed task is postponed at an unchanged est —
             dominated dead end *)
      | Some i ->
          let info = st.problem.starts.(i) in
          let est = Store.min_of s info.svar in
          branch_asym st postponed
            ~left:(fun () -> Store.fix s info.svar est)
            ~right:(fun postponed' ->
              postponed'.(i) <- est;
              dfs st postponed'))

(* Two store-changing branches. *)
and branch st postponed ~left ~right =
  let s = st.problem.store in
  let attempt f =
    Store.push_level s;
    (try
       f ();
       (* the incumbent bound may have moved: re-check the objective cut *)
       Store.schedule s st.problem.bound_pid;
       propagate_st st s;
       dfs st postponed
     with Store.Fail _ -> st.failures <- st.failures + 1);
    backtrack_st st s
  in
  if st.tracing then begin
    Obs.Trace.with_span ~cat:"search" "branch" (fun () -> attempt left);
    Obs.Trace.with_span ~cat:"search" "branch" (fun () -> attempt right)
  end
  else begin
    attempt left;
    attempt right
  end

(* Left changes the store; right only updates the postponed bookkeeping (no
   store change, hence no propagation and no new level needed). *)
and branch_asym st postponed ~left ~right =
  let s = st.problem.store in
  let attempt () =
    Store.push_level s;
    (try
       left ();
       Store.schedule s st.problem.bound_pid;
       propagate_st st s;
       dfs st postponed
     with Store.Fail _ -> st.failures <- st.failures + 1);
    backtrack_st st s
  in
  if st.tracing then Obs.Trace.with_span ~cat:"search" "branch" attempt
  else attempt ();
  let postponed' = Array.copy postponed in
  right postponed'

let run_problem ?(tie_break = Slack_first) problem limits =
  let tracing = Obs.Trace.enabled () in
  let t0 = if tracing then Obs.Trace.now_us () else 0. in
  let st =
    { problem; limits; tie_break; tracing; best = None; nodes = 0;
      failures = 0; ticks = 1 }
  in
  let s = problem.store in
  let postponed = Array.make (Array.length problem.starts) min_int in
  let proved_optimal =
    try
      (try
         propagate_st st s;
         dfs st postponed
       with Store.Fail _ -> st.failures <- st.failures + 1);
      true
    with Limit_reached -> false
  in
  Store.backtrack_to_root s;
  if tracing then
    Obs.Trace.complete ~cat:"search" ~ts:t0 "search"
      ~args:
        [
          ("nodes", Obs.Trace.Int st.nodes);
          ("failures", Obs.Trace.Int st.failures);
          ("proved_optimal", Obs.Trace.Bool proved_optimal);
          ("tie_break", Obs.Trace.Str (tie_break_to_string tie_break));
        ];
  { best = st.best; proved_optimal; nodes = st.nodes; failures = st.failures }

(* --- MapReduce-model entry point -------------------------------------- *)

type outcome = {
  best : Sched.Solution.t option;
  proved_optimal : bool;
  nodes : int;
  failures : int;
}

let problem_of_model (m : Model.t) =
  let deadline_of jdx =
    m.Model.instance.Sched.Instance.jobs.(jdx).Sched.Instance.job.T.deadline
  in
  {
    store = m.Model.store;
    starts =
      Array.map
        (fun (tv : Model.task_var) ->
          {
            svar = tv.Model.var;
            duration = tv.Model.task.T.exec_time;
            deadline = deadline_of tv.Model.job_index;
          })
        m.Model.starts;
    lates = Array.mapi (fun jdx late -> (late, deadline_of jdx)) m.Model.lates;
    bound = m.Model.bound;
    bound_pid = m.Model.bound_pid;
    extract =
      (fun () ->
        let sol = Model.extract m in
        (sol, sol.Sched.Solution.late_jobs));
  }

let run ?tie_break model limits =
  let o = run_problem ?tie_break (problem_of_model model) limits in
  {
    best = o.best;
    proved_optimal = o.proved_optimal;
    nodes = o.nodes;
    failures = o.failures;
  }
