module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution

type task_var = { var : Store.var; task : T.task; job_index : int }

type t = {
  store : Store.t;
  instance : Instance.t;
  starts : task_var array;
  lates : Store.var array;
  completions : Store.var array;
  bound : int ref;
  bound_pid : Store.propagator_id;
  horizon : int;
}

let default_horizon (inst : Instance.t) =
  let work = ref 0 and max_est = ref inst.Instance.now and frozen = ref 0 in
  Array.iter
    (fun (j : Instance.pending_job) ->
      if j.Instance.est > !max_est then max_est := j.Instance.est;
      let add (task : T.task) = work := !work + task.T.exec_time in
      Array.iter add j.Instance.pending_maps;
      Array.iter add j.Instance.pending_reduces;
      let add_fixed (f : Instance.fixed_task) =
        let finish = f.Instance.start + f.Instance.task.T.exec_time in
        if finish > !frozen then frozen := finish
      in
      Array.iter add_fixed j.Instance.fixed_maps;
      Array.iter add_fixed j.Instance.fixed_reduces;
      if j.Instance.frozen_completion > !frozen then
        frozen := j.Instance.frozen_completion)
    inst.Instance.jobs;
  max (max !max_est !frozen) inst.Instance.now + !work + 1

let build ?(kernel = Propagators.Both) (inst : Instance.t) ~horizon =
  let store = Store.create () in
  let n_jobs = Array.length inst.Instance.jobs in
  let starts = ref [] in
  let lates = Array.make (max n_jobs 1) 0 in
  let completions = Array.make (max n_jobs 1) 0 in
  let map_terms = ref [] and reduce_terms = ref [] in
  let max_dur = ref 1 in
  Array.iter
    (fun (j : Instance.pending_job) ->
      Array.iter
        (fun (task : T.task) -> max_dur := max !max_dur task.T.exec_time)
        j.Instance.pending_maps;
      Array.iter
        (fun (task : T.task) -> max_dur := max !max_dur task.T.exec_time)
        j.Instance.pending_reduces)
    inst.Instance.jobs;
  let value_horizon = horizon + !max_dur in
  for jdx = 0 to n_jobs - 1 do
    let j = inst.Instance.jobs.(jdx) in
    let est = j.Instance.est in
    (* map task start variables: constraint (2) as an initial bound *)
    let map_vars =
      Array.map
        (fun (task : T.task) ->
          let var = Store.new_var store ~min:est ~max:horizon in
          starts := { var; task; job_index = jdx } :: !starts;
          map_terms :=
            { Propagators.start = var;
              duration = task.T.exec_time;
              demand = task.T.capacity_req }
            :: !map_terms;
          (var, task.T.exec_time))
        j.Instance.pending_maps
    in
    (* LFMT: max of map completions over pending and frozen maps (3) *)
    let lfmt = Store.new_var store ~min:0 ~max:value_horizon in
    Propagators.max_of store ~result:lfmt
      ~terms:(Array.to_list map_vars)
      ~floor:(max j.Instance.frozen_lfmt est);
    (* reduce start variables: after LFMT *)
    let reduce_vars =
      Array.map
        (fun (task : T.task) ->
          let var = Store.new_var store ~min:est ~max:value_horizon in
          starts := { var; task; job_index = jdx } :: !starts;
          reduce_terms :=
            { Propagators.start = var;
              duration = task.T.exec_time;
              demand = task.T.capacity_req }
            :: !reduce_terms;
          Propagators.ge_offset store var lfmt 0;
          (var, task.T.exec_time))
        j.Instance.pending_reduces
    in
    (* completion: max of reduce completions, LFMT, frozen completions *)
    let completion = Store.new_var store ~min:0 ~max:(value_horizon * 2) in
    Propagators.max_of store ~result:completion
      ~terms:((lfmt, 0) :: Array.to_list reduce_vars)
      ~floor:j.Instance.frozen_completion;
    completions.(jdx) <- completion;
    (* N_j: constraint (4) *)
    let late = Store.new_var store ~min:0 ~max:1 in
    Propagators.lateness store ~late ~completion
      ~deadline:j.Instance.job.T.deadline;
    lates.(jdx) <- late
  done;
  (* capacity constraints (5)/(6) on the combined resource *)
  let fixed_of select =
    Array.to_list inst.Instance.jobs
    |> List.concat_map (fun j ->
           Array.to_list (select j)
           |> List.map (fun (f : Instance.fixed_task) ->
                  ( f.Instance.start,
                    f.Instance.task.T.exec_time,
                    f.Instance.task.T.capacity_req )))
    |> Array.of_list
  in
  Propagators.cumulative_kernel store ~kernel
    ~tasks:(Array.of_list !map_terms)
    ~fixed:(fixed_of (fun j -> j.Instance.fixed_maps))
    ~capacity:inst.Instance.map_capacity;
  Propagators.cumulative_kernel store ~kernel
    ~tasks:(Array.of_list !reduce_terms)
    ~fixed:(fixed_of (fun j -> j.Instance.fixed_reduces))
    ~capacity:inst.Instance.reduce_capacity;
  (* objective cut for branch-and-bound: Σ N_j < bound *)
  let bound = ref (n_jobs + 1) in
  let lates = Array.sub lates 0 n_jobs in
  let completions = Array.sub completions 0 n_jobs in
  let bound_pid = Propagators.sum_lt_bound store ~vars:lates ~bound in
  {
    store;
    instance = inst;
    starts = Array.of_list (List.rev !starts);
    lates;
    completions;
    bound;
    bound_pid;
    horizon;
  }

let all_starts_fixed m =
  Array.for_all (fun tv -> Store.is_fixed m.store tv.var) m.starts

let extract m =
  if not (all_starts_fixed m) then
    invalid_arg "Model.extract: not all start variables are fixed";
  let starts = Hashtbl.create (Array.length m.starts) in
  Array.iter
    (fun tv ->
      Hashtbl.replace starts tv.task.T.task_id (Store.value m.store tv.var))
    m.starts;
  Solution.evaluate m.instance starts

let late_count_min m =
  Array.fold_left (fun acc v -> acc + Store.min_of m.store v) 0 m.lates
