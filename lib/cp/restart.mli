(** Restart policies for the branch-and-bound search.

    A policy turns the search into a sequence of {e slices}: each slice is a
    chronological DFS cut after a fail budget; between slices the store is
    rewound to the root (keeping the incumbent bound and any recorded
    nogoods, see {!Nogood}) and the search starts over.  Budgets follow
    either the Luby universal sequence — optimal up to a constant factor
    when the runtime distribution is unknown — or a plain geometric
    schedule. *)

type policy =
  | Off  (** single chronological DFS, exactly the pre-restart search *)
  | Luby of int
      (** [Luby scale]: slice [k] gets [scale * luby k] failures, where
          [luby] is the 1 1 2 1 1 2 4 … universal sequence *)
  | Geometric of { base : int; grow : float }
      (** slice [k] gets [base * grow^(k-1)] failures *)

val default : policy
(** [Luby 128] — small enough to escape early mistakes quickly, large
    enough that later slices can finish the proof.  This is the recommended
    policy when turning restarts on; note {!Solver.default_options} keeps
    [restart = Off] so the default solve stays the deterministic DFS. *)

val luby : int -> int
(** The universal sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … *)

val slice : policy -> int -> int
(** [slice policy k] is the fail budget of the [k]-th slice (1-indexed);
    [0] means unlimited (no restarts). *)

val to_string : policy -> string
(** ["off"], ["luby:128"], ["geom:512:2.0"]. *)

val of_string : string -> (policy, string) result
(** Parses ["off"], ["luby"], ["luby:SCALE"], ["geom"],
    ["geom:BASE:GROW"] (also ["geometric…"]).  Errors on anything else —
    the CLIs surface the message. *)

val all_names : string list
(** Example spellings for [--restarts] doc strings. *)
