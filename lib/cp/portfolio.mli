(** Parallel portfolio solver on OCaml 5 domains.

    The paper's resource manager re-solves the whole CP model at every job
    arrival, so solver wall-clock {e is} the scheduling overhead O it
    reports.  This module runs K independent solver strategies concurrently,
    one per domain:

    + worker 0 is a {e sequential replica}: the exact configuration (job
      ordering, tie-break, RNG seed) of {!Solver.solve}, isolated from
      foreign bounds so its trajectory is reproducible;
    + workers 1..K-1 walk the (job-ordering × branching-tie-break ×
      restart-policy) grid — the three greedy orderings of §VI.B seed the
      search, exact B&B workers differ in their SetTimes tie-break
      ({!Search.tie_break}) and {!Restart.policy} (base / slow Luby /
      geometric / off), and LNS workers (chosen automatically on large
      instances, as in {!Solver.solve}) draw from distinct RNG streams.

    All workers share the incumbent Σ N_j through an [Atomic]: B&B workers
    adopt it as their bound mid-search (pruning against the best solution
    found anywhere), LNS workers use it to cut hopeless fragment searches,
    and the first worker to prove optimality raises a cancellation flag that
    stops the rest.

    Guarantees:
    - [solve ~domains:1] delegates to {!Solver.solve} — bit-identical
      results, keeping simulations deterministic by default;
    - with [domains ≥ 2] the returned Σ N_j is never worse than the
      sequential solver's on the same instance and options (worker 0 runs
      the identical trajectory and the coordinator returns the best worker
      solution), and the greedy-seed-is-optimal fast path short-circuits
      without spawning any domain;
    - every worker owns its {!Store}, {!Model} and RNG; the only shared
      mutable state is the two [Atomic]s (see the store's domain-locality
      notes in [store.mli]);
    - a warm start ([options.warm_start], see {!Solver.incumbent}) flows
      through unchanged to every worker: each seeds from the same carried
      candidate (completed deterministically, so all workers agree on it)
      and publishes it into the shared incumbent immediately, and the
      seed-is-optimal shortcut above also takes the warm candidate into
      account. *)

type worker_stats = {
  strategy : string;
      (** e.g. ["sequential"], ["edf/duration/luby:256/s7919"] *)
  w_late_jobs : int;  (** best Σ N_j this worker found *)
  w_nodes : int;
  w_failures : int;
  w_restarts : int;  (** restart slice cuts across this worker's searches *)
  w_lns_moves : int;
  w_proved : bool;  (** this worker completed an optimality proof *)
  w_elapsed : float;
}

type stats = {
  base : Solver.stats;
      (** aggregate view, shape-compatible with the sequential solver:
          node/failure/LNS counts summed over workers, [seed_late] from
          worker 0, wall-clock [elapsed] of the whole portfolio *)
  workers : worker_stats array;  (** one entry per worker that ran *)
  winner : string;  (** [strategy] of the worker whose solution is returned *)
  domains_used : int;
}

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val solve :
  ?domains:int ->
  ?options:Solver.options ->
  Sched.Instance.t ->
  Sched.Solution.t * stats
(** Never fails: at worst returns the greedy seed.  [domains] defaults to 1
    (sequential).  Ties between equally good worker solutions go to the
    earliest worker (worker 0 first), so the reported [winner] is
    deterministic. *)

val pp_stats : Format.formatter -> stats -> unit
