(* Advance reservations (AR): jobs whose SLA says "do not start before s_j"
   (s_j > arrival), the request class the paper adds over prior work.  This
   example shows (a) MRCP-RM honouring future earliest start times while
   backfilling other work into the idle window, and (b) the §V.E deferral
   optimization keeping far-future jobs out of the solver.

   Run with:  dune exec examples/advance_reservation.exe *)

module T = Mapreduce.Types

let task_id = ref 0

let task ~job ~kind ~seconds =
  incr task_id;
  {
    T.task_id = !task_id;
    job_id = job;
    kind;
    exec_time = seconds * 1000;
    capacity_req = 1;
  }

let job ~id ~arrival_s ~start_s ~deadline_s ~maps ~reduces =
  {
    T.id;
    arrival = arrival_s * 1000;
    earliest_start = start_s * 1000;
    deadline = deadline_s * 1000;
    map_tasks =
      Array.of_list
        (List.map (fun s -> task ~job:id ~kind:T.Map_task ~seconds:s) maps);
    reduce_tasks =
      Array.of_list
        (List.map (fun s -> task ~job:id ~kind:T.Reduce_task ~seconds:s) reduces);
  }

let () =
  let cluster = T.uniform_cluster ~m:2 ~map_capacity:1 ~reduce_capacity:1 in
  (* Two ARs booked at t=0 for windows later in the day, plus best-effort
     jobs streaming in: the manager must keep the reserved windows clear
     while using them for other work until the reservations begin. *)
  let jobs =
    [
      (* reservation 1: a 2x40s map + 60s reduce batch at t >= 600s *)
      job ~id:0 ~arrival_s:0 ~start_s:600 ~deadline_s:800 ~maps:[ 40; 40 ]
        ~reduces:[ 60 ];
      (* reservation 2: far future (t >= 3600s) — §V.E defers it *)
      job ~id:1 ~arrival_s:0 ~start_s:3600 ~deadline_s:3900 ~maps:[ 50; 50 ]
        ~reduces:[ 80 ];
      (* best-effort stream *)
      job ~id:2 ~arrival_s:10 ~start_s:10 ~deadline_s:1000 ~maps:[ 120 ]
        ~reduces:[ 100 ];
      job ~id:3 ~arrival_s:30 ~start_s:30 ~deadline_s:900 ~maps:[ 90; 70 ]
        ~reduces:[];
      job ~id:4 ~arrival_s:500 ~start_s:500 ~deadline_s:1500 ~maps:[ 200 ]
        ~reduces:[ 60 ];
    ]
  in
  let config =
    {
      Mrcp.Manager.default_config with
      Mrcp.Manager.deferral_window = Some 300_000 (* §V.E: 300 s *);
      validate = true;
    }
  in
  let manager = Mrcp.Manager.create ~cluster config in
  let driver = Opensim.Driver.of_mrcp manager in
  let r = Opensim.Simulator.run ~validate:true ~driver ~jobs () in
  Format.printf "=== advance reservations under MRCP-RM ===@.%a@.@."
    Opensim.Simulator.pp_results r;
  List.iter
    (fun (o : Opensim.Simulator.job_outcome) ->
      let j = o.Opensim.Simulator.job in
      Format.printf
        "job %d: arrival=%4ds  s_j=%4ds  deadline=%4ds  completed=%4ds  %s@."
        j.T.id (j.T.arrival / 1000)
        (j.T.earliest_start / 1000)
        (j.T.deadline / 1000)
        (o.Opensim.Simulator.completion / 1000)
        (if o.Opensim.Simulator.late then "LATE" else "on time"))
    (List.sort
       (fun a b ->
         compare a.Opensim.Simulator.job.T.id b.Opensim.Simulator.job.T.id)
       r.Opensim.Simulator.outcomes);
  Format.printf
    "@.note: job 1 (s_j=3600s) was deferred by the Section V.E optimization; \
     the manager ran %d scheduling passes for 5 jobs because the far-future \
     reservation only entered matchmaking near its start window.@."
    (Mrcp.Manager.solve_count manager)
