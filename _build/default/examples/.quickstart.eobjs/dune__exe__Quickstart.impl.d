examples/quickstart.ml: Array Format List Mapreduce Mrcp Opensim
