examples/solver_playground.mli:
