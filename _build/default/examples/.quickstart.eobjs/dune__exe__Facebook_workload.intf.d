examples/facebook_workload.mli:
