examples/advance_reservation.mli:
