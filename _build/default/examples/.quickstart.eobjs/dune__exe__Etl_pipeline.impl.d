examples/etl_pipeline.ml: Array Format Hashtbl List Mapreduce Workflow
