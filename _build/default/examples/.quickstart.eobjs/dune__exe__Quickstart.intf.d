examples/quickstart.mli:
