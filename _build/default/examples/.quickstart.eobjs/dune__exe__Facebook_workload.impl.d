examples/facebook_workload.ml: Array Baselines Format Mapreduce Mrcp Opensim Sys
