examples/advance_reservation.ml: Array Format List Mapreduce Mrcp Opensim
