examples/solver_playground.ml: Array Cp Format List Mapreduce Mrcp Report Sched
