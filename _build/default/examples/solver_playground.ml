(* Using the CP solver library directly, without the resource manager or the
   simulator: model a small batch matchmaking-and-scheduling problem
   (Table 1 of the paper) and inspect the solution and search statistics.
   This is the "closed system" usage mode from the paper's §III/IV: a fixed
   batch of jobs, one solve.

   Run with:  dune exec examples/solver_playground.exe *)

module T = Mapreduce.Types

let task_id = ref 0

let task ~job ~kind ~e =
  incr task_id;
  { T.task_id = !task_id; job_id = job; kind; exec_time = e; capacity_req = 1 }

let job ~id ~est ~deadline ~maps ~reduces =
  {
    T.id;
    arrival = 0;
    earliest_start = est;
    deadline;
    map_tasks =
      Array.of_list (List.map (fun e -> task ~job:id ~kind:T.Map_task ~e) maps);
    reduce_tasks =
      Array.of_list
        (List.map (fun e -> task ~job:id ~kind:T.Reduce_task ~e) reduces);
  }

let print_schedule inst (solution : Sched.Solution.t) =
  Array.iter
    (fun (pj : Sched.Instance.pending_job) ->
      let j = pj.Sched.Instance.job in
      let completion =
        Sched.Solution.job_completion pj solution.Sched.Solution.starts
      in
      Format.printf "job %d (est=%d, deadline=%d): completes at %d -> %s@."
        j.T.id pj.Sched.Instance.est j.T.deadline completion
        (if completion > j.T.deadline then "LATE" else "on time");
      let show (t : T.task) =
        let s = Sched.Solution.start_of solution ~task_id:t.T.task_id in
        Format.printf "    %s task %d: [%d, %d)@."
          (T.task_kind_to_string t.T.kind)
          t.T.task_id s (s + t.T.exec_time)
      in
      Array.iter show pj.Sched.Instance.pending_maps;
      Array.iter show pj.Sched.Instance.pending_reduces)
    inst.Sched.Instance.jobs

let () =
  (* A deliberately contended batch: 3 jobs on a single (2 map, 1 reduce)
     resource.  The reduce slot is oversubscribed, so one job must be late;
     the exact branch-and-bound proves that the greedy answer (1 late job)
     is in fact optimal. *)
  let jobs =
    [
      job ~id:0 ~est:0 ~deadline:100 ~maps:[ 30; 30 ] ~reduces:[ 40 ];
      job ~id:1 ~est:0 ~deadline:95 ~maps:[ 25 ] ~reduces:[ 35 ];
      job ~id:2 ~est:10 ~deadline:120 ~maps:[ 20; 20 ] ~reduces:[ 30 ];
    ]
  in
  let inst =
    Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:1 jobs
  in
  Format.printf "instance: %a@.@." Sched.Instance.pp inst;

  (* 1. greedy list schedules, the solver's seeds *)
  List.iter
    (fun order ->
      let g = Sched.Greedy.solve ~order inst in
      Format.printf "greedy %-12s -> %a@."
        (Sched.Greedy.order_to_string order)
        Sched.Solution.pp g)
    [ Sched.Greedy.By_job_id; Sched.Greedy.Edf; Sched.Greedy.Least_laxity ];

  (* 2. the full CP solve (seed + lower bound + exact branch-and-bound) *)
  let solution, stats = Cp.Solver.solve inst in
  Format.printf "@.cp solver  -> %a@." Sched.Solution.pp solution;
  Format.printf "           %a@.@." Cp.Solver.pp_stats stats;
  print_schedule inst solution;

  (* 3. the solution passes the paper's Table-1 constraint oracle *)
  (match Sched.Solution.feasibility_errors inst solution with
  | [] -> Format.printf "@.feasibility oracle: all Table-1 constraints hold@."
  | errs ->
      Format.printf "@.feasibility oracle found violations:@.";
      List.iter (Format.printf "  %s@.") errs);

  (* 4. matchmake the combined schedule onto the physical cluster (§V.D)
        and draw it *)
  let cluster =
    T.uniform_cluster ~m:1 ~map_capacity:2 ~reduce_capacity:1
  in
  let mm = Mrcp.Matchmaker.create ~cluster in
  let pending =
    Array.to_list inst.Sched.Instance.jobs
    |> List.concat_map (fun (pj : Sched.Instance.pending_job) ->
           Array.to_list pj.Sched.Instance.pending_maps
           @ Array.to_list pj.Sched.Instance.pending_reduces)
  in
  let dispatches =
    Mrcp.Matchmaker.assign_all mm ~starts:solution.Sched.Solution.starts
      ~pending
  in
  Format.printf "@.%s@." (Report.Gantt.render ~width:60 dispatches);

  (* 5. drive the branch-and-bound machinery by hand for full control *)
  let model = Cp.Model.build inst ~horizon:(Cp.Model.default_horizon inst) in
  let outcome = Cp.Search.run model Cp.Search.no_limits in
  Format.printf
    "@.manual search: %d nodes, %d failures, optimal=%b, best late count=%s@."
    outcome.Cp.Search.nodes outcome.Cp.Search.failures
    outcome.Cp.Search.proved_optimal
    (match outcome.Cp.Search.best with
    | Some s -> string_of_int s.Sched.Solution.late_jobs
    | None -> "(no improvement over bound)")
