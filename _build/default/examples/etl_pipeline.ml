(* DAG workflows (the paper's §VII future-work extension): an ETL pipeline
   with branching precedence, scheduled against a deadline by the workflow
   CP solver.

       ingest ──→ clean ──────→ aggregate ──→ export
              └──→ enrich ───↗

   Stage semantics follow the paper's model: a stage starts only when every
   task of every predecessor stage has completed; stages draw slots from the
   map or reduce pool.

   Run with:  dune exec examples/etl_pipeline.exe *)

module T = Mapreduce.Types
module Dag = Workflow.Dag

let task_counter = ref 0

let tasks ~kind ~job seconds_list =
  Array.of_list
    (List.map
       (fun s ->
         incr task_counter;
         {
           T.task_id = !task_counter;
           job_id = job;
           kind;
           exec_time = s * 1000;
           capacity_req = 1;
         })
       seconds_list)

let etl_job ~id ~est_s ~deadline_s =
  {
    Dag.id;
    earliest_start = est_s * 1000;
    deadline = deadline_s * 1000;
    stages =
      [|
        (* ingest: 4 parallel fetch tasks *)
        { Dag.stage_id = 0; pool = T.Map_task; tasks = tasks ~kind:T.Map_task ~job:id [ 30; 25; 35; 20 ] };
        (* clean: heavy CPU parse *)
        { Dag.stage_id = 1; pool = T.Map_task; tasks = tasks ~kind:T.Map_task ~job:id [ 60; 55 ] };
        (* enrich: joins against reference data *)
        { Dag.stage_id = 2; pool = T.Map_task; tasks = tasks ~kind:T.Map_task ~job:id [ 40 ] };
        (* aggregate: reduce-side rollups *)
        { Dag.stage_id = 3; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 50; 45 ] };
        (* export: single writer *)
        { Dag.stage_id = 4; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 20 ] };
      |];
    precedences = [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
  }

let () =
  (* three ETL pipelines with staggered SLAs competing for a small pool *)
  let jobs =
    [
      etl_job ~id:0 ~est_s:0 ~deadline_s:260;
      etl_job ~id:1 ~est_s:30 ~deadline_s:420;
      etl_job ~id:2 ~est_s:60 ~deadline_s:600;
    ]
  in
  List.iter
    (fun w ->
      match Dag.validate w with
      | Ok () -> ()
      | Error e -> failwith ("invalid workflow: " ^ e))
    jobs;
  let inst =
    {
      Workflow.Solve.map_capacity = 4;
      reduce_capacity = 2;
      jobs = Array.of_list jobs;
    }
  in
  List.iter
    (fun (w : Dag.t) ->
      Format.printf "%a  critical path %.0fs@." Dag.pp w
        (float_of_int (Dag.critical_path w) /. 1000.))
    jobs;
  Format.printf "@.";

  let greedy = Workflow.Solve.greedy inst in
  Format.printf "greedy EDF: %d late, %.0fs total tardiness@."
    greedy.Workflow.Solve.late_jobs
    (float_of_int greedy.Workflow.Solve.total_tardiness /. 1000.);

  let sol, stats = Workflow.Solve.solve inst in
  Format.printf
    "cp solve:   %d late (lower bound %d, optimal=%b, %d nodes)@.@."
    sol.Workflow.Solve.late_jobs stats.Workflow.Solve.lower_bound
    stats.Workflow.Solve.proved_optimal stats.Workflow.Solve.nodes;

  (match Workflow.Solve.feasibility_errors inst sol with
  | [] -> Format.printf "oracle: precedence/capacity/est constraints hold@.@."
  | errs -> List.iter (Format.printf "VIOLATION: %s@.") errs);

  (* per-job stage timeline *)
  List.iter
    (fun (w : Dag.t) ->
      Format.printf "workflow %d (deadline %ds):@." w.Dag.id (w.Dag.deadline / 1000);
      Array.iter
        (fun (s : Dag.stage) ->
          let start =
            Array.fold_left
              (fun acc (t : T.task) ->
                min acc (Hashtbl.find sol.Workflow.Solve.starts t.T.task_id))
              max_int s.Dag.tasks
          in
          let finish =
            Array.fold_left
              (fun acc (t : T.task) ->
                max acc
                  (Hashtbl.find sol.Workflow.Solve.starts t.T.task_id
                  + t.T.exec_time))
              0 s.Dag.tasks
          in
          Format.printf "  stage %d (%s, %d tasks): [%ds, %ds)@." s.Dag.stage_id
            (T.task_kind_to_string s.Dag.pool)
            (Array.length s.Dag.tasks) (start / 1000) (finish / 1000))
        w.Dag.stages)
    jobs
