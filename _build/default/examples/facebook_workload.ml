(* The paper's headline comparison (Fig. 2/3), runnable as an example: the
   Table-4 synthetic Facebook workload on a 64-node cluster, scheduled by
   MRCP-RM and by MinEDF-WC, side by side.

   Run with:  dune exec examples/facebook_workload.exe [-- n_jobs lambda]  *)

let () =
  let n_jobs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150
  in
  let lambda =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.0004
  in
  let cluster = Mapreduce.Facebook.cluster () in
  let params =
    { Mapreduce.Facebook.default with Mapreduce.Facebook.n_jobs; lambda }
  in
  Format.printf
    "Facebook workload (Table 4): %d jobs, lambda=%g jobs/s, 64 resources \
     with 1 map + 1 reduce slot each@."
    n_jobs lambda;
  Format.printf "job mix: %.1f maps and %.1f reduces per job on average@.@."
    (Mapreduce.Facebook.expected_maps_per_job ())
    (Mapreduce.Facebook.expected_reduces_per_job ());
  let jobs = Mapreduce.Facebook.generate params ~cluster ~seed:7 in
  let run_with name driver =
    let r = Opensim.Simulator.run ~driver ~jobs () in
    Format.printf "%-10s %a@." name Opensim.Simulator.pp_results r;
    r
  in
  let mrcp =
    run_with "MRCP-RM"
      (Opensim.Driver.of_mrcp
         (Mrcp.Manager.create ~cluster Mrcp.Manager.default_config))
  in
  let minedf =
    run_with "MinEDF-WC"
      (Opensim.Driver.of_slot_scheduler
         (Baselines.Slot_scheduler.create ~cluster
            ~policy:Baselines.Slot_scheduler.Min_edf_wc))
  in
  Format.printf "@.";
  let pct x = 100. *. x in
  if minedf.Opensim.Simulator.n_late > 0 then
    Format.printf
      "MRCP-RM late-job reduction vs MinEDF-WC: %.0f%% (P %.2f%% -> %.2f%%)@."
      (100.
      *. (1.
         -. (mrcp.Opensim.Simulator.p_late /. minedf.Opensim.Simulator.p_late)))
      (pct minedf.Opensim.Simulator.p_late)
      (pct mrcp.Opensim.Simulator.p_late)
  else Format.printf "no late jobs for either manager at this arrival rate@."
