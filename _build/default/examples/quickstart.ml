(* Quickstart: build a tiny cluster and a handful of MapReduce jobs with
   SLAs, run them through MRCP-RM in an open-system simulation, and print
   what happened.

   Run with:  dune exec examples/quickstart.exe *)

module T = Mapreduce.Types

let () =
  (* A cluster of 4 resources, each with 2 map slots and 2 reduce slots
     (Table 3's system model, scaled down). *)
  let cluster = T.uniform_cluster ~m:4 ~map_capacity:2 ~reduce_capacity:2 in

  (* Three jobs with SLAs: earliest start time, per-task execution times,
     end-to-end deadline.  Times are in milliseconds. *)
  let task_id = ref 0 in
  let task ~job ~kind ~seconds =
    incr task_id;
    {
      T.task_id = !task_id;
      job_id = job;
      kind;
      exec_time = seconds * 1000;
      capacity_req = 1;
    }
  in
  let job ~id ~arrival_s ~start_s ~deadline_s ~map_seconds ~reduce_seconds =
    {
      T.id;
      arrival = arrival_s * 1000;
      earliest_start = start_s * 1000;
      deadline = deadline_s * 1000;
      map_tasks =
        Array.of_list
          (List.map (fun s -> task ~job:id ~kind:T.Map_task ~seconds:s) map_seconds);
      reduce_tasks =
        Array.of_list
          (List.map
             (fun s -> task ~job:id ~kind:T.Reduce_task ~seconds:s)
             reduce_seconds);
    }
  in
  let jobs =
    [
      (* an ordinary job: start as soon as it arrives *)
      job ~id:0 ~arrival_s:0 ~start_s:0 ~deadline_s:120
        ~map_seconds:[ 20; 30; 25 ] ~reduce_seconds:[ 40 ];
      (* a tight-deadline job arriving shortly after *)
      job ~id:1 ~arrival_s:5 ~start_s:5 ~deadline_s:70 ~map_seconds:[ 15; 15 ]
        ~reduce_seconds:[ 30 ];
      (* an advance reservation: arrives early, must not start before t=60s *)
      job ~id:2 ~arrival_s:10 ~start_s:60 ~deadline_s:200
        ~map_seconds:[ 10; 10; 10; 10 ] ~reduce_seconds:[ 20; 20 ];
    ]
  in

  (* MRCP-RM with validation on: every CP solution is re-checked against the
     paper's Table-1 constraints and every plan against slot exclusivity. *)
  let config = { Mrcp.Manager.default_config with Mrcp.Manager.validate = true } in
  let manager = Mrcp.Manager.create ~cluster config in
  let driver = Opensim.Driver.of_mrcp manager in
  let results = Opensim.Simulator.run ~validate:true ~driver ~jobs () in

  Format.printf "=== quickstart: MRCP-RM on a 4-node cluster ===@.";
  Format.printf "%a@.@." Opensim.Simulator.pp_results results;
  List.iter
    (fun (o : Opensim.Simulator.job_outcome) ->
      Format.printf
        "job %d: s_j=%3ds deadline=%3ds completed=%3ds -> %s (turnaround %ds)@."
        o.Opensim.Simulator.job.T.id
        (o.Opensim.Simulator.job.T.earliest_start / 1000)
        (o.Opensim.Simulator.job.T.deadline / 1000)
        (o.Opensim.Simulator.completion / 1000)
        (if o.Opensim.Simulator.late then "LATE" else "on time")
        (o.Opensim.Simulator.turnaround_ms / 1000))
    results.Opensim.Simulator.outcomes
