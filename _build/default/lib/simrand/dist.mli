(** The random distributions used by the paper's workload models (Table 3 and
    the Table-4 Facebook workload): continuous and discrete uniform, Bernoulli,
    exponential (for Poisson arrival processes), normal and lognormal.

    All samplers take the generator explicitly so that callers control stream
    assignment. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Continuous uniform on [lo, hi).  Requires [lo <= hi]. *)

val discrete_uniform : Rng.t -> lo:int -> hi:int -> int
(** Discrete uniform on the inclusive integer range [lo, hi] — the paper's
    DU[lo, hi]. *)

val bernoulli : Rng.t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p].  Requires 0 <= p <= 1. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1/rate]); inter-arrival times of a
    Poisson process.  Requires [rate > 0]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller.  [sigma >= 0]. *)

val lognormal : Rng.t -> mu:float -> sigma2:float -> float
(** LogNormal(mu, sigma2) parameterized exactly as the paper's LN(μ, σ²): μ and
    σ² are the mean and variance of the *underlying normal*, so the sample is
    [exp (normal ~mu ~sigma:(sqrt sigma2))]. *)

val lognormal_mean : mu:float -> sigma2:float -> float
(** Analytic mean [exp (mu + sigma2/2)] — used by tests and by capacity
    planning in the MinEDF-WC baseline. *)

val poisson : Rng.t -> mean:float -> int
(** A Poisson-distributed count with the given mean (Knuth for small means,
    normal approximation above 700 to avoid underflow). *)

type categorical
(** Sampler over a fixed finite set of weighted categories. *)

val categorical : weights:float array -> categorical
(** [categorical ~weights] precomputes the cumulative table.  Weights must be
    non-negative and sum to a positive value; they are normalized. *)

val categorical_draw : categorical -> Rng.t -> int
(** Index of the drawn category. *)
