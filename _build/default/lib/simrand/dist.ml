let uniform g ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo +. Rng.float g (hi -. lo)

let discrete_uniform g ~lo ~hi = Rng.int_incl g lo hi

let bernoulli g ~p =
  if p < 0. || p > 1. then invalid_arg "Dist.bernoulli: p outside [0,1]";
  Rng.unit_float g < p

let exponential g ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  (* Inverse transform; 1 - u avoids log 0. *)
  -.log (1. -. Rng.unit_float g) /. rate

let normal g ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: negative sigma";
  let u1 = 1. -. Rng.unit_float g in
  let u2 = Rng.unit_float g in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal g ~mu ~sigma2 =
  if sigma2 < 0. then invalid_arg "Dist.lognormal: negative variance";
  exp (normal g ~mu ~sigma:(sqrt sigma2))

let lognormal_mean ~mu ~sigma2 = exp (mu +. (sigma2 /. 2.))

let poisson g ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: negative mean";
  if mean > 700. then
    (* Normal approximation; exact Knuth would underflow exp(-mean). *)
    let x = normal g ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.unit_float g in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.
  end

type categorical = { cumulative : float array }

let categorical ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: no categories";
  Array.iter
    (fun w ->
      if w < 0. || Float.is_nan w then
        invalid_arg "Dist.categorical: negative weight")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist.categorical: zero total weight";
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.;
  { cumulative }

let categorical_draw { cumulative } g =
  let u = Rng.unit_float g in
  (* First index whose cumulative weight exceeds u (binary search). *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if u < cumulative.(mid) then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cumulative - 1)
