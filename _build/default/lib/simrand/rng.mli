(** Deterministic pseudo-random number generation for simulations.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a small,
    fast, splittable PRNG with 64 bits of state.  Every simulation replication
    owns its own generator so runs are reproducible and independent streams can
    be derived for each workload dimension (arrival process, task sizing,
    deadlines, ...) without cross-contamination when one dimension draws a
    different number of variates. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split g] derives a new, statistically independent generator and advances
    [g].  Used to hand each workload dimension its own stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits (an OCaml [int] on 64-bit). *)

val int : t -> int -> int
(** [int g n] is uniform on [0, n-1].  [n] must be positive.  Uses rejection
    sampling, so there is no modulo bias. *)

val int_incl : t -> int -> int -> int
(** [int_incl g lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x). *)

val unit_float : t -> float
(** Uniform on [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** A fair coin. *)

val state : t -> int64
(** Current internal state (for diagnostics / serialization). *)

val of_state : int64 -> t
(** Rebuild a generator from a saved state. *)
