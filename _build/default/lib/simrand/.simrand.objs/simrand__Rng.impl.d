lib/simrand/rng.ml: Int64
