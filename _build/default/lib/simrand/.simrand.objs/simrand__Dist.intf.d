lib/simrand/dist.mli: Rng
