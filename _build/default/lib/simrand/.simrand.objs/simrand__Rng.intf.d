lib/simrand/rng.mli:
