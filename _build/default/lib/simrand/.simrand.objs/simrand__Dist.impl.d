lib/simrand/dist.ml: Array Float Rng
