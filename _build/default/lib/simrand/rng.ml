type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let create seed = { state = mix64 (Int64.of_int seed) }
let copy g = { state = g.state }
let split g = { state = mix64 (next_int64 g) }
let state g = g.state
let of_state s = { state = s }

let bits g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over 62 random bits to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let bucket = max_int62 / n in
  let limit = bucket * n in
  let rec draw () =
    let v = bits g in
    if v < limit then v / bucket else draw ()
  in
  draw ()

let int_incl g lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits scaled into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int v *. 0x1p-53

let float g x = unit_float g *. x
let bool g = Int64.logand (next_int64 g) 1L = 1L
