(** A minimum binary heap specialized to [(key, payload)] pairs with integer
    keys, used as the simulator's future event list and by several schedulers
    (e.g. the earliest-available-slot queues of the greedy list scheduler).

    Ties on the key are broken by insertion order (FIFO), which makes every
    simulation deterministic for a given seed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit

val peek : 'a t -> (int * 'a) option
(** Smallest key with its payload, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the smallest element; FIFO among equal keys. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (int * 'a) list
(** Non-destructive ascending-key drain (copies the heap); for tests. *)
