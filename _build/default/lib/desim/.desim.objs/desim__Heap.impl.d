lib/desim/heap.ml: Array List
