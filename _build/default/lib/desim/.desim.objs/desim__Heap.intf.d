lib/desim/heap.mli:
