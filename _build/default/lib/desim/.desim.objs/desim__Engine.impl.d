lib/desim/engine.ml: Hashtbl Heap Printf
