lib/desim/engine.mli:
