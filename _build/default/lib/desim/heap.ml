(* Array-backed binary min-heap ordered by (key, seq): seq is a monotonically
   increasing stamp giving FIFO order among equal keys. *)

type 'a entry = { key : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = max 16 (capacity * 2) in
    let data' = Array.make capacity' entry in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && less t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && less t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key payload =
  let entry = { key; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.key, e.payload)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.payload)
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let to_sorted_list t =
  let copy =
    { data = Array.sub t.data 0 t.size; size = t.size; next_seq = t.next_seq }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
