type 'a spec = {
  run : seed:int -> 'a;
  metrics : (string * ('a -> float)) list;
}

type summary = {
  name : string;
  samples : float array;
  interval : Confidence.interval option;
}

type result = { replications : int; summaries : summary list }

let run ?(level = 0.95) ?(target_relative = None) ?(min_reps = 3) ~max_reps
    ~base_seed spec =
  if max_reps < 1 then invalid_arg "Replicate.run: max_reps must be >= 1";
  let buffers = List.map (fun (name, _) -> (name, ref [])) spec.metrics in
  let record out =
    List.iter2
      (fun (_, extract) (_, buf) -> buf := extract out :: !buf)
      spec.metrics buffers
  in
  let samples_of name =
    let buf = List.assoc name buffers in
    Array.of_list (List.rev !buf)
  in
  let reached_target n =
    match target_relative with
    | None -> false
    | Some (metric, r) ->
        n >= min_reps && n >= 2
        &&
        let ci = Confidence.of_samples ~level (samples_of metric) in
        Confidence.within_relative ci r
  in
  let rec loop i =
    if i >= max_reps then i
    else begin
      record (spec.run ~seed:(base_seed + i));
      let n = i + 1 in
      if reached_target n then n else loop n
    end
  in
  let replications = loop 0 in
  let summaries =
    List.map
      (fun (name, _) ->
        let samples = samples_of name in
        let interval =
          if Array.length samples >= 2 then
            Some (Confidence.of_samples ~level samples)
          else None
        in
        { name; samples; interval })
      spec.metrics
  in
  { replications; summaries }

let summary result name = List.find (fun s -> s.name = name) result.summaries

let mean result name =
  let s = summary result name in
  let w = Welford.create () in
  Array.iter (Welford.add w) s.samples;
  Welford.mean w
