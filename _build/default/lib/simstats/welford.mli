(** Online mean/variance accumulation (Welford's algorithm).

    Used for per-run metric accumulation (turnaround times, overheads) and for
    across-replication summaries.  Numerically stable for long streams. *)

type t

val create : unit -> t
val add : t -> float -> unit
val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both streams
    (Chan et al. parallel combination). *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (n-1 denominator); [nan] when fewer than two
    observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float
(** Sum of all observations. *)
