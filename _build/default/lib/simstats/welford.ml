type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; minv = infinity; maxv = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.sum <- t.sum +. x

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
         /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
      sum = a.sum +. b.sum;
    }
  end

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.minv
let max_value t = if t.n = 0 then nan else t.maxv
let total t = t.sum
