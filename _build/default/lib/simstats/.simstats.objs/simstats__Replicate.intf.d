lib/simstats/replicate.mli: Confidence
