lib/simstats/confidence.mli: Format Welford
