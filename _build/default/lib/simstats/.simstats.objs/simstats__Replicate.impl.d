lib/simstats/replicate.ml: Array Confidence List Welford
