lib/simstats/welford.mli:
