lib/simstats/welford.ml: Float
