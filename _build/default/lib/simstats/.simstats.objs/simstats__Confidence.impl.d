lib/simstats/confidence.ml: Array Float Format Welford
