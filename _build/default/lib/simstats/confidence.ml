type interval = { mean : float; half_width : float; level : float; n : int }

(* Two-sided critical values of the Student-t distribution.  Rows: degrees of
   freedom 1..30; columns: confidence levels 0.90, 0.95, 0.99. *)
let t_table =
  [|
    (6.314, 12.706, 63.657);
    (2.920, 4.303, 9.925);
    (2.353, 3.182, 5.841);
    (2.132, 2.776, 4.604);
    (2.015, 2.571, 4.032);
    (1.943, 2.447, 3.707);
    (1.895, 2.365, 3.499);
    (1.860, 2.306, 3.355);
    (1.833, 2.262, 3.250);
    (1.812, 2.228, 3.169);
    (1.796, 2.201, 3.106);
    (1.782, 2.179, 3.055);
    (1.771, 2.160, 3.012);
    (1.761, 2.145, 2.977);
    (1.753, 2.131, 2.947);
    (1.746, 2.120, 2.921);
    (1.740, 2.110, 2.898);
    (1.734, 2.101, 2.878);
    (1.729, 2.093, 2.861);
    (1.725, 2.086, 2.845);
    (1.721, 2.080, 2.831);
    (1.717, 2.074, 2.819);
    (1.714, 2.069, 2.807);
    (1.711, 2.064, 2.797);
    (1.708, 2.060, 2.787);
    (1.706, 2.056, 2.779);
    (1.703, 2.052, 2.771);
    (1.701, 2.048, 2.763);
    (1.699, 2.045, 2.756);
    (1.697, 2.042, 2.750);
  |]

(* Large-df limits (standard normal quantiles). *)
let z_values = (1.645, 1.960, 2.576)

let pick (a, b, c) ~level =
  if level <= 0.90 then a
  else if level <= 0.95 then
    (* linear interpolation between 0.90 and 0.95 *)
    a +. ((b -. a) *. (level -. 0.90) /. 0.05)
  else if level <= 0.99 then b +. ((c -. b) *. (level -. 0.95) /. 0.04)
  else c

let t_critical ~df ~level =
  if df < 1 then invalid_arg "Confidence.t_critical: df must be >= 1";
  if level <= 0. || level >= 1. then
    invalid_arg "Confidence.t_critical: level must be in (0,1)";
  if df <= 30 then pick t_table.(df - 1) ~level
  else
    (* Beyond the table, blend the df=30 row toward the normal limit. *)
    let row30 = pick t_table.(29) ~level in
    let z = pick z_values ~level in
    if df >= 200 then z
    else
      let f = float_of_int (df - 30) /. 170. in
      row30 +. ((z -. row30) *. f)

let of_welford ?(level = 0.95) w =
  let n = Welford.count w in
  if n < 2 then invalid_arg "Confidence.of_welford: need at least 2 samples";
  let mean = Welford.mean w in
  let se = Welford.stddev w /. sqrt (float_of_int n) in
  let t = t_critical ~df:(n - 1) ~level in
  { mean; half_width = t *. se; level; n }

let of_samples ?(level = 0.95) samples =
  let w = Welford.create () in
  Array.iter (Welford.add w) samples;
  of_welford ~level w

let relative_half_width ci =
  if ci.mean = 0. then if ci.half_width = 0. then 0. else infinity
  else ci.half_width /. Float.abs ci.mean

let within_relative ci r = relative_half_width ci <= r

let pp fmt ci =
  Format.fprintf fmt "%.6g ± %.3g (%.0f%%, n=%d)" ci.mean ci.half_width
    (100. *. ci.level) ci.n
