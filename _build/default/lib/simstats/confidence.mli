(** Student-t confidence intervals across simulation replications.

    The paper runs each configuration until the 95% confidence interval of the
    mean turnaround time is within ±1% of the mean; this module provides the
    machinery to reproduce that stopping rule. *)

type interval = {
  mean : float;
  half_width : float;  (** half-width of the CI around [mean] *)
  level : float;  (** confidence level, e.g. 0.95 *)
  n : int;  (** number of replications *)
}

val t_critical : df:int -> level:float -> float
(** Two-sided Student-t critical value with [df] degrees of freedom.  Exact
    table for small [df], normal-tail approximation beyond; supported levels
    are interpolated from {0.90, 0.95, 0.99}. *)

val of_samples : ?level:float -> float array -> interval
(** CI of the mean of the samples.  Default level 0.95.  Requires at least two
    samples. *)

val of_welford : ?level:float -> Welford.t -> interval
(** Same, from an accumulated summary. *)

val relative_half_width : interval -> float
(** [half_width /. |mean|]; [infinity] when the mean is 0. *)

val within_relative : interval -> float -> bool
(** [within_relative ci r] is true when the CI is within ±r of the mean, the
    paper's ±1% criterion being [within_relative ci 0.01]. *)

val pp : Format.formatter -> interval -> unit
