(** Replication driver: run a seeded simulation several times and summarize
    each metric across replications, optionally stopping early once a target
    confidence-interval width is reached (the paper's ±1%-of-mean rule on
    turnaround time). *)

type 'a spec = {
  run : seed:int -> 'a;  (** one replication *)
  metrics : (string * ('a -> float)) list;  (** named metric extractors *)
}

type summary = {
  name : string;
  samples : float array;
  interval : Confidence.interval option;
      (** [None] when fewer than 2 replications ran *)
}

type result = { replications : int; summaries : summary list }

val run :
  ?level:float ->
  ?target_relative:(string * float) option ->
  ?min_reps:int ->
  max_reps:int ->
  base_seed:int ->
  'a spec ->
  result
(** [run ~max_reps ~base_seed spec] executes up to [max_reps] replications with
    seeds [base_seed], [base_seed+1], ....  If [target_relative] is
    [Some (metric, r)], stops as soon as at least [min_reps] (default 3)
    replications have run and the CI of [metric] is within ±r of its mean. *)

val summary : result -> string -> summary
(** Lookup by metric name.  @raise Not_found if absent. *)

val mean : result -> string -> float
