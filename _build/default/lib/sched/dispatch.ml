type t = {
  task : Mapreduce.Types.task;
  resource_id : int;
  slot : int;
  start : int;
}

let finish d = d.start + d.task.Mapreduce.Types.exec_time

let pp fmt d =
  Format.fprintf fmt "dispatch<task=%d res=%d slot=%d [%d,%d)>"
    d.task.Mapreduce.Types.task_id d.resource_id d.slot d.start (finish d)

let compare_by_start a b =
  let c = compare a.start b.start in
  if c <> 0 then c
  else compare a.task.Mapreduce.Types.task_id b.task.Mapreduce.Types.task_id
