lib/sched/solution.ml: Array Format Hashtbl Instance List Mapreduce Profile
