lib/sched/dispatch.mli: Format Mapreduce
