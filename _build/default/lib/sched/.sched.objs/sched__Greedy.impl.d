lib/sched/greedy.ml: Array Hashtbl Instance Mapreduce Profile Solution
