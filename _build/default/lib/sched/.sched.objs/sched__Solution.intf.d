lib/sched/solution.mli: Format Hashtbl Instance
