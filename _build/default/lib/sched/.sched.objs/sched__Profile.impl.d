lib/sched/profile.ml: Array List Option
