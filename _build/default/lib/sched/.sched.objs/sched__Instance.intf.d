lib/sched/instance.mli: Format Mapreduce
