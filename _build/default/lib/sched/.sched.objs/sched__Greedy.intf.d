lib/sched/greedy.mli: Instance Solution
