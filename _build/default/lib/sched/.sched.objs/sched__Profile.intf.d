lib/sched/profile.mli:
