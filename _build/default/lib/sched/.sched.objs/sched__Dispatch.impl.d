lib/sched/dispatch.ml: Format Mapreduce
