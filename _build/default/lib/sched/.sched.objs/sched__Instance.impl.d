lib/sched/instance.ml: Array Format List Mapreduce
