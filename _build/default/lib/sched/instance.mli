(** A matchmaking-and-scheduling problem instance, as seen by a solver at one
    MRCP-RM invocation (paper Table 2).

    The instance is expressed against the *combined* resource of paper §V.D:
    one virtual resource holding every map slot and every reduce slot of the
    cluster.  Solvers produce start times on the combined resource; the
    matchmaker (in [lib/core]) then distributes tasks over physical resources.

    Tasks of a job are split into:
    - [pending_*]: not started — the solver must (re)assign their start times;
    - [fixed_*]: started but not completed (isPrevScheduled) — they occupy
      capacity at a frozen [start, start+e) window and the solver must not
      move them;
    - completed tasks are not in the instance; their influence survives via
      [frozen_lfmt] (precedence floor for reduces) and [frozen_completion]
      (floor of the job's completion time, for lateness accounting). *)

type fixed_task = { task : Mapreduce.Types.task; start : int }

type pending_job = {
  job : Mapreduce.Types.job;
  est : int;  (** effective earliest start: max(s_j, now) per Table 2 l.1-4 *)
  pending_maps : Mapreduce.Types.task array;
  pending_reduces : Mapreduce.Types.task array;
  fixed_maps : fixed_task array;
  fixed_reduces : fixed_task array;
  frozen_lfmt : int;
      (** latest completion among completed+fixed map tasks; 0 if none *)
  frozen_completion : int;
      (** latest completion among all completed+fixed tasks; 0 if none *)
}

type t = {
  now : int;
  map_capacity : int;  (** total map slots of the cluster *)
  reduce_capacity : int;  (** total reduce slots *)
  jobs : pending_job array;
}

val of_fresh_jobs :
  now:int ->
  map_capacity:int ->
  reduce_capacity:int ->
  Mapreduce.Types.job list ->
  t
(** Instance where nothing has started yet (closed-system case / first
    invocation): every task pending, est = max(s_j, now). *)

val pending_task_count : t -> int
val fixed_task_count : t -> int

val job_lfmt_floor : pending_job -> int
(** Lower bound for reduce starts before scheduling: [frozen_lfmt]. *)

val pending_exec_total : pending_job -> int
(** Σ e_t over pending tasks (for the laxity ordering). *)

val laxity : pending_job -> int
(** d_j - est - Σ pending e_t, the least-laxity-first key (§VI.B). *)

val pp : Format.formatter -> t -> unit
