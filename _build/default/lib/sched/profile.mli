(** Resource-usage step profile over integer time.

    Tracks the total capacity in use as a piecewise-constant function of time,
    supporting the two queries every list scheduler here needs:

    - does a task of duration [d] and requirement [q] fit at time [t] under
      capacity [cap]?
    - what is the earliest [t' >= t] where it fits?

    Used for the combined-resource greedy schedulers (paper §V.D solves on one
    combined resource), for schedule validation, and by the MinEDF-WC
    baseline's slot accounting. *)

type t

val create : capacity:int -> t
(** An empty profile with the given capacity limit (must be positive). *)

val capacity : t -> int

val add : t -> start:int -> duration:int -> amount:int -> unit
(** Occupy [amount] units over [start, start+duration).  Zero-duration tasks
    occupy nothing.  No overflow check — see {!fits} / {!val-max_usage}. *)

val remove : t -> start:int -> duration:int -> amount:int -> unit
(** Inverse of {!add} (used by LNS relaxation). *)

val usage_at : t -> int -> int
(** Units in use at time [t]. *)

val fits : t -> start:int -> duration:int -> amount:int -> bool
(** True when adding the task would not exceed capacity anywhere in
    [start, start+duration). *)

val earliest_fit : t -> from:int -> duration:int -> amount:int -> int
(** Earliest [t >= from] such that [fits t].  Always terminates: after the
    last profile step the profile is empty. *)

val max_usage : t -> int
(** Peak usage over all time (0 for an empty profile). *)

val steps : t -> (int * int) list
(** The profile as [(time, usage-from-time-on)] steps, ascending, usage 0
    before the first step; for tests and debugging. *)
