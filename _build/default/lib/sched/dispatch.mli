(** A matchmade scheduling decision: run [task] on resource [resource_id],
    occupying unit slot [slot] (a global slot index, see
    [Core.Matchmaker.slots_of_cluster]), starting at absolute time [start].
    This is the common currency between resource managers and the
    open-system simulator. *)

type t = {
  task : Mapreduce.Types.task;
  resource_id : int;
  slot : int;
  start : int;
}

val finish : t -> int
(** [start + exec_time]. *)

val pp : Format.formatter -> t -> unit
val compare_by_start : t -> t -> int
