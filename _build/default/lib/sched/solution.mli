(** Solver output on the combined resource: a start time per pending task,
    plus the objective values the paper optimizes (number of late jobs, with
    total tardiness as a search tie-breaker), and a feasibility checker that
    re-verifies every constraint of the paper's Table 1 against a concrete
    solution — the oracle used by tests and (in debug mode) by the manager. *)

type t = {
  starts : (int, int) Hashtbl.t;  (** task_id → assigned start time *)
  late_jobs : int;  (** Σ N_j *)
  total_tardiness : int;  (** Σ max(0, C_j − d_j) *)
}

val start_of : t -> task_id:int -> int
(** @raise Not_found when the task has no assigned start. *)

val better : t -> t -> bool
(** [better a b]: does [a] strictly improve on [b] (fewer late jobs, or equal
    late jobs and less tardiness)? *)

val job_completion : Instance.pending_job -> (int, int) Hashtbl.t -> int
(** Completion time of a job under the given start map: max over pending task
    completions and the frozen floor. *)

val job_lfmt : Instance.pending_job -> (int, int) Hashtbl.t -> int
(** Latest finishing map task (pending + frozen). *)

val evaluate : Instance.t -> (int, int) Hashtbl.t -> t
(** Compute the objective from a start map. *)

val feasibility_errors : Instance.t -> t -> string list
(** Empty when the solution satisfies, for every job: completeness (every
    pending task has a start), est (maps not before est — Table 1 (2)),
    precedence (reduces not before the job's LFMT — (3)), non-preemption
    of fixed tasks, and the combined map/reduce capacity profiles (5)(6).
    Late-job accounting (4) is also cross-checked. *)

val pp : Format.formatter -> t -> unit
