(* The profile is a piecewise-constant usage function stored as two parallel
   sorted arrays: [times.(i)] is a step boundary and [usage.(i)] the units in
   use on [times.(i), times.(i+1)) (and beyond, for the last step).  Usage is
   0 before the first boundary.  Storing running usage (not deltas) lets
   queries binary-search a boundary and scan only the steps inside the window
   of interest, which keeps the greedy schedulers and the CP timetable fast
   even with tens of thousands of tasks. *)

type t = {
  capacity : int;
  mutable times : int array;
  mutable usage : int array;
  mutable n : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Profile.create: capacity must be > 0";
  { capacity; times = Array.make 16 0; usage = Array.make 16 0; n = 0 }

let capacity t = t.capacity

(* Rightmost index i with times.(i) <= time, or -1. *)
let floor_index t time =
  let lo = ref 0 and hi = ref (t.n - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.times.(mid) <= time then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let usage_at t time =
  let i = floor_index t time in
  if i < 0 then 0 else t.usage.(i)

let grow t =
  if t.n = Array.length t.times then begin
    let cap' = max 32 (2 * t.n) in
    let times' = Array.make cap' 0 and usage' = Array.make cap' 0 in
    Array.blit t.times 0 times' 0 t.n;
    Array.blit t.usage 0 usage' 0 t.n;
    t.times <- times';
    t.usage <- usage'
  end

(* Index of the boundary at exactly [time], inserting one if absent (the new
   step initially copies the usage level in force at [time]). *)
let ensure_boundary t time =
  let i = floor_index t time in
  if i >= 0 && t.times.(i) = time then i
  else begin
    grow t;
    let pos = i + 1 in
    let level = if i < 0 then 0 else t.usage.(i) in
    Array.blit t.times pos t.times (pos + 1) (t.n - pos);
    Array.blit t.usage pos t.usage (pos + 1) (t.n - pos);
    t.times.(pos) <- time;
    t.usage.(pos) <- level;
    t.n <- t.n + 1;
    pos
  end

let apply t ~start ~duration ~amount =
  if duration > 0 && amount <> 0 then begin
    let i = ensure_boundary t start in
    let j = ensure_boundary t (start + duration) in
    for k = i to j - 1 do
      t.usage.(k) <- t.usage.(k) + amount
    done
  end

let add t ~start ~duration ~amount =
  if duration < 0 then invalid_arg "Profile.add: negative duration";
  if amount < 0 then invalid_arg "Profile.add: negative amount";
  apply t ~start ~duration ~amount

let remove t ~start ~duration ~amount =
  if duration < 0 then invalid_arg "Profile.remove: negative duration";
  if amount < 0 then invalid_arg "Profile.remove: negative amount";
  apply t ~start ~duration ~amount:(-amount)

let fits t ~start ~duration ~amount =
  if duration <= 0 || amount = 0 then true
  else begin
    let finish = start + duration in
    let i = floor_index t start in
    let ok = ref true in
    if i >= 0 && t.usage.(i) + amount > t.capacity then ok := false;
    let j = ref (i + 1) in
    while !ok && !j < t.n && t.times.(!j) < finish do
      if t.usage.(!j) + amount > t.capacity then ok := false;
      incr j
    done;
    !ok
  end

let earliest_fit t ~from ~duration ~amount =
  if duration <= 0 || amount = 0 then from
  else if amount > t.capacity then
    invalid_arg "Profile.earliest_fit: amount exceeds capacity"
  else begin
    let limit = t.capacity - amount in
    let candidate = ref from in
    let i = ref (floor_index t from + 1) in
    (* invariant: usage is <= limit on [candidate, times.(i)) *)
    if !i > 0 && t.usage.(!i - 1) > limit then begin
      (* the segment containing [from] is too full: jump to the next step
         where usage drops low enough *)
      while !i < t.n && t.usage.(!i) > limit do
        incr i
      done;
      candidate := (if !i < t.n then t.times.(!i) else t.times.(t.n - 1));
      incr i
    end;
    let result = ref None in
    while !result = None do
      if !i >= t.n || t.times.(!i) >= !candidate + duration then
        (* window [candidate, candidate+duration) is clear *)
        result := Some !candidate
      else if t.usage.(!i) > limit then begin
        (* violation inside the window: restart after the congestion *)
        while !i < t.n && t.usage.(!i) > limit do
          incr i
        done;
        candidate := (if !i < t.n then t.times.(!i) else t.times.(t.n - 1));
        incr i
      end
      else incr i
    done;
    Option.get !result
  end

let max_usage t =
  let peak = ref 0 in
  for i = 0 to t.n - 1 do
    if t.usage.(i) > !peak then peak := t.usage.(i)
  done;
  !peak

let steps t = List.init t.n (fun i -> (t.times.(i), t.usage.(i)))
