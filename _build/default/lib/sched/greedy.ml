module T = Mapreduce.Types

type order = By_job_id | Edf | Least_laxity

let order_to_string = function
  | By_job_id -> "job-id"
  | Edf -> "edf"
  | Least_laxity -> "least-laxity"

let compare_jobs order (a : Instance.pending_job) (b : Instance.pending_job) =
  let key (j : Instance.pending_job) =
    match order with
    | By_job_id -> j.Instance.job.T.id
    | Edf -> j.Instance.job.T.deadline
    | Least_laxity -> Instance.laxity j
  in
  let c = compare (key a) (key b) in
  if c <> 0 then c else compare a.Instance.job.T.id b.Instance.job.T.id

(* Longest tasks first within a phase: pairs well with earliest-fit since the
   big tasks claim contiguous room before fragmentation sets in. *)
let by_duration_desc (a : T.task) (b : T.task) =
  let c = compare b.T.exec_time a.T.exec_time in
  if c <> 0 then c else compare a.T.task_id b.T.task_id

let schedule_sequence (inst : Instance.t) sequence =
  let map_profile = Profile.create ~capacity:inst.Instance.map_capacity in
  let reduce_profile = Profile.create ~capacity:inst.Instance.reduce_capacity in
  (* fixed tasks occupy their frozen windows first *)
  Array.iter
    (fun (j : Instance.pending_job) ->
      let occupy profile (f : Instance.fixed_task) =
        Profile.add profile ~start:f.Instance.start
          ~duration:f.Instance.task.T.exec_time
          ~amount:f.Instance.task.T.capacity_req
      in
      Array.iter (occupy map_profile) j.Instance.fixed_maps;
      Array.iter (occupy reduce_profile) j.Instance.fixed_reduces)
    inst.Instance.jobs;
  let starts = Hashtbl.create 256 in
  let place profile ~floor (task : T.task) =
    let start =
      Profile.earliest_fit profile ~from:floor ~duration:task.T.exec_time
        ~amount:task.T.capacity_req
    in
    Profile.add profile ~start ~duration:task.T.exec_time
      ~amount:task.T.capacity_req;
    Hashtbl.replace starts task.T.task_id start;
    start + task.T.exec_time
  in
  Array.iter
    (fun idx ->
      let j = inst.Instance.jobs.(idx) in
      let maps = Array.copy j.Instance.pending_maps in
      Array.sort by_duration_desc maps;
      let lfmt = ref j.Instance.frozen_lfmt in
      Array.iter
        (fun task ->
          let finish = place map_profile ~floor:j.Instance.est task in
          if finish > !lfmt then lfmt := finish)
        maps;
      let reduces = Array.copy j.Instance.pending_reduces in
      Array.sort by_duration_desc reduces;
      let reduce_floor = max !lfmt j.Instance.est in
      Array.iter
        (fun task -> ignore (place reduce_profile ~floor:reduce_floor task))
        reduces)
    sequence;
  Solution.evaluate inst starts

let solve_with_sequence inst sequence =
  let n = Array.length inst.Instance.jobs in
  if Array.length sequence <> n then
    invalid_arg "Greedy.solve_with_sequence: sequence length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Greedy.solve_with_sequence: not a permutation";
      seen.(i) <- true)
    sequence;
  schedule_sequence inst sequence

let solve ?(order = Edf) (inst : Instance.t) =
  let n = Array.length inst.Instance.jobs in
  let sequence = Array.init n (fun i -> i) in
  let cmp a b = compare_jobs order inst.Instance.jobs.(a) inst.Instance.jobs.(b) in
  Array.sort cmp sequence;
  schedule_sequence inst sequence
