module T = Mapreduce.Types

type t = {
  starts : (int, int) Hashtbl.t;
  late_jobs : int;
  total_tardiness : int;
}

let start_of t ~task_id = Hashtbl.find t.starts task_id

let better a b =
  a.late_jobs < b.late_jobs
  || (a.late_jobs = b.late_jobs && a.total_tardiness < b.total_tardiness)

let completion_of starts (task : T.task) =
  Hashtbl.find starts task.T.task_id + task.T.exec_time

let job_lfmt (j : Instance.pending_job) starts =
  Array.fold_left
    (fun acc task -> max acc (completion_of starts task))
    j.Instance.frozen_lfmt j.Instance.pending_maps

let job_completion (j : Instance.pending_job) starts =
  let acc =
    Array.fold_left
      (fun acc task -> max acc (completion_of starts task))
      j.Instance.frozen_completion j.Instance.pending_reduces
  in
  (* Map-only jobs finish with their last map. *)
  Array.fold_left
    (fun acc task -> max acc (completion_of starts task))
    acc j.Instance.pending_maps

let evaluate (inst : Instance.t) starts =
  let late = ref 0 and tardiness = ref 0 in
  Array.iter
    (fun j ->
      let completion = job_completion j starts in
      let over = completion - j.Instance.job.T.deadline in
      if over > 0 then begin
        incr late;
        tardiness := !tardiness + over
      end)
    inst.Instance.jobs;
  { starts; late_jobs = !late; total_tardiness = !tardiness }

let feasibility_errors (inst : Instance.t) t =
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let lookup task =
    match Hashtbl.find_opt t.starts task.T.task_id with
    | Some s -> Some s
    | None ->
        error "task %d (job %d) has no assigned start" task.T.task_id
          task.T.job_id;
        None
  in
  let map_profile = Profile.create ~capacity:inst.Instance.map_capacity in
  let reduce_profile = Profile.create ~capacity:inst.Instance.reduce_capacity in
  let occupy profile (task : T.task) start =
    if not (Profile.fits profile ~start ~duration:task.T.exec_time
              ~amount:task.T.capacity_req)
    then
      error "capacity violated by task %d (job %d) at %d" task.T.task_id
        task.T.job_id start;
    Profile.add profile ~start ~duration:task.T.exec_time
      ~amount:task.T.capacity_req
  in
  Array.iter
    (fun (j : Instance.pending_job) ->
      let job = j.Instance.job in
      (* fixed tasks occupy capacity at frozen positions *)
      Array.iter
        (fun (f : Instance.fixed_task) ->
          occupy map_profile f.Instance.task f.Instance.start)
        j.Instance.fixed_maps;
      Array.iter
        (fun (f : Instance.fixed_task) ->
          occupy reduce_profile f.Instance.task f.Instance.start)
        j.Instance.fixed_reduces;
      (* pending maps: est + capacity *)
      Array.iter
        (fun task ->
          match lookup task with
          | None -> ()
          | Some s ->
              if s < j.Instance.est then
                error "map task %d of job %d starts at %d before est %d"
                  task.T.task_id job.T.id s j.Instance.est;
              occupy map_profile task s)
        j.Instance.pending_maps;
      (* pending reduces: precedence + capacity *)
      let all_maps_assigned =
        Array.for_all
          (fun task -> Hashtbl.mem t.starts task.T.task_id)
          j.Instance.pending_maps
      in
      let lfmt = if all_maps_assigned then job_lfmt j t.starts else min_int in
      Array.iter
        (fun task ->
          match lookup task with
          | None -> ()
          | Some s ->
              if all_maps_assigned && s < lfmt then
                error
                  "reduce task %d of job %d starts at %d before LFMT %d"
                  task.T.task_id job.T.id s lfmt;
              occupy reduce_profile task s)
        j.Instance.pending_reduces)
    inst.Instance.jobs;
  (* cross-check the objective accounting *)
  let recomputed = evaluate inst t.starts in
  if recomputed.late_jobs <> t.late_jobs then
    error "late-job count %d does not match recomputed %d" t.late_jobs
      recomputed.late_jobs;
  if recomputed.total_tardiness <> t.total_tardiness then
    error "tardiness %d does not match recomputed %d" t.total_tardiness
      recomputed.total_tardiness;
  List.rev !errors

let pp fmt t =
  Format.fprintf fmt "solution<late=%d tardiness=%dms assigned=%d>" t.late_jobs
    t.total_tardiness (Hashtbl.length t.starts)
