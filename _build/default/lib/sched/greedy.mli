(** Greedy list scheduling on the combined resource.

    Serial schedule-generation scheme: jobs in a priority order (the paper's
    three job-ordering strategies, §VI.B), each job's pending map tasks placed
    longest-first at their earliest capacity-feasible time ≥ est, then its
    reduces longest-first at their earliest feasible time ≥ the job's latest
    finishing map task.  Fixed (running) tasks pre-occupy the profiles.

    The result is always feasible.  It serves as (a) the seed/incumbent for
    the CP solver's branch-and-bound and LNS, and (b) a baseline in its own
    right (a deadline-aware but non-backtracking scheduler). *)

type order =
  | By_job_id  (** submission order (paper strategy 1) *)
  | Edf  (** earliest deadline first (strategy 2) *)
  | Least_laxity  (** least laxity first (strategy 3) *)

val order_to_string : order -> string

val solve : ?order:order -> Instance.t -> Solution.t
(** Default order is {!Edf} (the configuration the paper reports). *)

val solve_with_sequence : Instance.t -> int array -> Solution.t
(** Schedule jobs in the explicit sequence of indices into [inst.jobs]
    (building block for LNS neighbourhood moves).  The sequence must be a
    permutation of all job indices. *)
