module T = Mapreduce.Types

type fixed_task = { task : T.task; start : int }

type pending_job = {
  job : T.job;
  est : int;
  pending_maps : T.task array;
  pending_reduces : T.task array;
  fixed_maps : fixed_task array;
  fixed_reduces : fixed_task array;
  frozen_lfmt : int;
  frozen_completion : int;
}

type t = {
  now : int;
  map_capacity : int;
  reduce_capacity : int;
  jobs : pending_job array;
}

let of_fresh_jobs ~now ~map_capacity ~reduce_capacity jobs =
  let make job =
    {
      job;
      est = max job.T.earliest_start now;
      pending_maps = Array.copy job.T.map_tasks;
      pending_reduces = Array.copy job.T.reduce_tasks;
      fixed_maps = [||];
      fixed_reduces = [||];
      frozen_lfmt = 0;
      frozen_completion = 0;
    }
  in
  { now; map_capacity; reduce_capacity; jobs = Array.of_list (List.map make jobs) }

let pending_task_count t =
  Array.fold_left
    (fun acc j ->
      acc + Array.length j.pending_maps + Array.length j.pending_reduces)
    0 t.jobs

let fixed_task_count t =
  Array.fold_left
    (fun acc j -> acc + Array.length j.fixed_maps + Array.length j.fixed_reduces)
    0 t.jobs

let job_lfmt_floor j = j.frozen_lfmt

let pending_exec_total j =
  let sum = Array.fold_left (fun acc t -> acc + t.T.exec_time) in
  sum (sum 0 j.pending_maps) j.pending_reduces

let laxity j = j.job.T.deadline - j.est - pending_exec_total j

let pp fmt t =
  Format.fprintf fmt "instance<now=%d cap=(%d,%d) jobs=%d pending=%d fixed=%d>"
    t.now t.map_capacity t.reduce_capacity (Array.length t.jobs)
    (pending_task_count t) (fixed_task_count t)
