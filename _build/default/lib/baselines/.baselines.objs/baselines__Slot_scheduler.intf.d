lib/baselines/slot_scheduler.mli: Mapreduce Sched
