lib/baselines/slot_scheduler.ml: Array Hashtbl List Mapreduce Printf Sched Unix
