(** Table-4 synthetic Facebook workload (paper §VI.B.1, after Verma et al.).

    1000 jobs drawn from ten job classes (the October-2009 Facebook trace mix),
    with task execution times in milliseconds following the lognormal fits the
    paper reports: maps ~ LN(9.9511, 1.6764), reduces ~ LN(12.375, 1.6262)
    (μ, σ² of the underlying normal).  Earliest start = arrival (p = 0) and
    deadline multiplier d_M = 2, matching the Fig. 2/3 comparison setup. *)

type job_class = {
  class_id : int;  (** 1..10 *)
  maps : int;  (** k_mp for this class *)
  reduces : int;  (** k_rd (0 = map-only job) *)
  count : int;  (** jobs of this class per 1000 *)
}

val job_classes : job_class array
(** The Table-4 mix; counts sum to 1000. *)

type params = {
  n_jobs : int;
  lambda : float;  (** jobs/second; paper sweeps 0.0001 .. 0.0005 *)
  d_m : float;  (** deadline multiplier bound (paper: 2) *)
  map_mu : float;
  map_sigma2 : float;
  reduce_mu : float;
  reduce_sigma2 : float;
}

val default : params
(** 1000 jobs, λ = 0.0005, d_M = 2, lognormal parameters from the paper. *)

val cluster : unit -> Types.resource array
(** The Fig. 2/3 system: 64 resources, one map slot and one reduce slot each. *)

val generate : params -> cluster:Types.resource array -> seed:int -> Types.job list
(** Stream of jobs with Poisson arrivals; class of each job drawn from the
    Table-4 empirical mix. *)

val expected_maps_per_job : unit -> float
(** Mean k_mp over the mix — used by tests. *)

val expected_reduces_per_job : unit -> float
