(** Workload (de)serialization: persist generated job streams as CSV traces
    and load them back — so experiments can be pinned to an exact workload
    file, inspected, or fed from externally produced traces.

    Format: one row per task, preceded by a header.

    {v
    job_id,arrival_ms,earliest_start_ms,deadline_ms,task_id,kind,exec_ms,capacity_req
    0,0,0,120000,1,map,20000,1
    0,0,0,120000,2,reduce,40000,1
    ...
    v}

    Rows of a job must be contiguous; job-level fields must agree across a
    job's rows (checked on load). *)

val to_csv : Types.job list -> string
val of_csv : string -> (Types.job list, string) result
(** Parse; returns [Error] with a line-numbered message on malformed input,
    inconsistent job fields, duplicate task ids, or jobs with no tasks. *)

val save : path:string -> Types.job list -> unit
val load : path:string -> (Types.job list, string) result
