let header =
  "job_id,arrival_ms,earliest_start_ms,deadline_ms,task_id,kind,exec_ms,capacity_req"

let to_csv jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (j : Types.job) ->
      let row (t : Types.task) =
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,%d,%d,%d,%s,%d,%d\n" j.Types.id
             j.Types.arrival j.Types.earliest_start j.Types.deadline
             t.Types.task_id
             (Types.task_kind_to_string t.Types.kind)
             t.Types.exec_time t.Types.capacity_req)
      in
      Array.iter row j.Types.map_tasks;
      Array.iter row j.Types.reduce_tasks)
    jobs;
  Buffer.contents buf

type parsed_row = {
  job_id : int;
  arrival : int;
  earliest_start : int;
  deadline : int;
  task : Types.task;
}

let parse_row ~line_no line =
  let fields = String.split_on_char ',' (String.trim line) in
  let fail msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
  match fields with
  | [ job_id; arrival; est; deadline; task_id; kind; exec_ms; capacity ] -> (
      let int name s =
        match int_of_string_opt (String.trim s) with
        | Some v -> Ok v
        | None -> fail (Printf.sprintf "field %s is not an integer: %S" name s)
      in
      let ( let* ) = Result.bind in
      let* job_id = int "job_id" job_id in
      let* arrival = int "arrival_ms" arrival in
      let* earliest_start = int "earliest_start_ms" est in
      let* deadline = int "deadline_ms" deadline in
      let* task_id = int "task_id" task_id in
      let* exec_time = int "exec_ms" exec_ms in
      let* capacity_req = int "capacity_req" capacity in
      match String.trim kind with
      | "map" | "reduce" ->
          Ok
            {
              job_id;
              arrival;
              earliest_start;
              deadline;
              task =
                {
                  Types.task_id;
                  job_id;
                  kind =
                    (if String.trim kind = "map" then Types.Map_task
                     else Types.Reduce_task);
                  exec_time;
                  capacity_req;
                };
            }
      | other -> fail (Printf.sprintf "unknown task kind %S" other))
  | _ -> fail "expected 8 comma-separated fields"

let of_csv contents =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' contents
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> Error "empty trace"
  | (_, first) :: rest ->
      let* () =
        if first = header then Ok ()
        else Error (Printf.sprintf "bad header: %S" first)
      in
      let* rows =
        List.fold_left
          (fun acc (line_no, line) ->
            let* acc = acc in
            let* row = parse_row ~line_no line in
            Ok (row :: acc))
          (Ok []) rest
      in
      let rows = List.rev rows in
      (* group contiguous rows by job id *)
      let seen_jobs = Hashtbl.create 64 in
      let seen_tasks = Hashtbl.create 256 in
      let* groups =
        List.fold_left
          (fun acc row ->
            let* groups = acc in
            let* () =
              if Hashtbl.mem seen_tasks row.task.Types.task_id then
                Error
                  (Printf.sprintf "duplicate task id %d" row.task.Types.task_id)
              else Ok (Hashtbl.replace seen_tasks row.task.Types.task_id ())
            in
            match groups with
            | (current_id, rows) :: tail when current_id = row.job_id ->
                Ok ((current_id, row :: rows) :: tail)
            | _ ->
                if Hashtbl.mem seen_jobs row.job_id then
                  Error
                    (Printf.sprintf "rows of job %d are not contiguous"
                       row.job_id)
                else begin
                  Hashtbl.replace seen_jobs row.job_id ();
                  Ok ((row.job_id, [ row ]) :: groups)
                end)
          (Ok []) rows
      in
      let* jobs =
        List.fold_left
          (fun acc (job_id, rows) ->
            let* jobs = acc in
            let rows = List.rev rows in
            let first = List.hd rows in
            let* () =
              if
                List.for_all
                  (fun r ->
                    r.arrival = first.arrival
                    && r.earliest_start = first.earliest_start
                    && r.deadline = first.deadline)
                  rows
              then Ok ()
              else
                Error
                  (Printf.sprintf "job %d has inconsistent job-level fields"
                     job_id)
            in
            let tasks kind =
              rows
              |> List.filter_map (fun r ->
                     if r.task.Types.kind = kind then Some r.task else None)
              |> Array.of_list
            in
            let job =
              {
                Types.id = job_id;
                arrival = first.arrival;
                earliest_start = first.earliest_start;
                deadline = first.deadline;
                map_tasks = tasks Types.Map_task;
                reduce_tasks = tasks Types.Reduce_task;
              }
            in
            let* () =
              match Types.validate_job job with
              | Ok () -> Ok ()
              | Error e -> Error (Printf.sprintf "job %d invalid: %s" job_id e)
            in
            Ok (job :: jobs))
          (Ok []) groups
      in
      Ok jobs

let save ~path jobs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv jobs))

let load ~path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv contents
