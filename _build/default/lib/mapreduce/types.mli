(** Domain model of the matchmaking and scheduling problem (paper §III.A).

    A workload is a set of MapReduce jobs; each job [j] carries a set of map
    tasks, a set of reduce tasks, an earliest start time [s_j], and an
    end-to-end deadline [d_j].  Each task has an execution time and a resource
    capacity requirement [q_t] (normally 1).  Resources have independent map
    and reduce slot capacities.

    All times are integer milliseconds of virtual time. *)

type task_kind = Map_task | Reduce_task

type task = {
  task_id : int;  (** unique within the workload *)
  job_id : int;
  kind : task_kind;
  exec_time : int;  (** e_t, in ms; includes I/O and shuffle per the paper *)
  capacity_req : int;  (** q_t; the paper sets this to 1 *)
}

type job = {
  id : int;
  arrival : int;  (** v_j: when the job enters the system *)
  earliest_start : int;  (** s_j >= arrival *)
  deadline : int;  (** d_j, absolute *)
  map_tasks : task array;
  reduce_tasks : task array;
}

type resource = {
  res_id : int;
  map_capacity : int;  (** c_r^mp: map slots *)
  reduce_capacity : int;  (** c_r^rd: reduce slots *)
}

val task_kind_to_string : task_kind -> string
val pp_task : Format.formatter -> task -> unit
val pp_job : Format.formatter -> job -> unit
val pp_resource : Format.formatter -> resource -> unit

val job_tasks : job -> task list
(** Map tasks then reduce tasks. *)

val task_count : job -> int

val total_exec_time : job -> int
(** Sum of all task execution times (used in the laxity formula). *)

val total_map_time : job -> int

val laxity : job -> int
(** L_j = d_j - s_j - sum of task execution times (paper §VI.B). *)

val validate_job : job -> (unit, string) result
(** Structural sanity: tasks belong to the job, kinds match the arrays,
    non-negative times, [earliest_start >= arrival], positive capacity
    requirements. *)

val uniform_cluster :
  m:int -> map_capacity:int -> reduce_capacity:int -> resource array
(** [m] identical resources, ids 0..m-1 (Table 3's system parameters). *)

val total_map_slots : resource array -> int
val total_reduce_slots : resource array -> int

val minimum_execution_time : job -> resource array -> int
(** TE of Table 3: the job's minimal completion-time span when it is alone on
    the cluster — an LPT list-schedule of the map tasks over all map slots,
    followed by the reduce tasks over all reduce slots.  Exact when each phase
    fits in one wave (the common case in the paper's configurations). *)
