type task_kind = Map_task | Reduce_task

type task = {
  task_id : int;
  job_id : int;
  kind : task_kind;
  exec_time : int;
  capacity_req : int;
}

type job = {
  id : int;
  arrival : int;
  earliest_start : int;
  deadline : int;
  map_tasks : task array;
  reduce_tasks : task array;
}

type resource = { res_id : int; map_capacity : int; reduce_capacity : int }

let task_kind_to_string = function
  | Map_task -> "map"
  | Reduce_task -> "reduce"

let pp_task fmt t =
  Format.fprintf fmt "task<%d job=%d %s e=%dms q=%d>" t.task_id t.job_id
    (task_kind_to_string t.kind)
    t.exec_time t.capacity_req

let pp_job fmt j =
  Format.fprintf fmt "job<%d v=%d s=%d d=%d |mp|=%d |rd|=%d>" j.id j.arrival
    j.earliest_start j.deadline
    (Array.length j.map_tasks)
    (Array.length j.reduce_tasks)

let pp_resource fmt r =
  Format.fprintf fmt "res<%d mp=%d rd=%d>" r.res_id r.map_capacity
    r.reduce_capacity

let job_tasks j = Array.to_list j.map_tasks @ Array.to_list j.reduce_tasks
let task_count j = Array.length j.map_tasks + Array.length j.reduce_tasks

let sum_exec tasks = Array.fold_left (fun acc t -> acc + t.exec_time) 0 tasks

let total_exec_time j = sum_exec j.map_tasks + sum_exec j.reduce_tasks
let total_map_time j = sum_exec j.map_tasks
let laxity j = j.deadline - j.earliest_start - total_exec_time j

let validate_job j =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let check_task kind t =
    let* () = check (t.job_id = j.id) "task job_id mismatch" in
    let* () = check (t.kind = kind) "task kind in wrong array" in
    let* () = check (t.exec_time >= 0) "negative exec_time" in
    check (t.capacity_req > 0) "capacity_req must be positive"
  in
  let check_all kind tasks =
    Array.fold_left
      (fun acc t -> Result.bind acc (fun () -> check_task kind t))
      (Ok ()) tasks
  in
  let* () = check (j.earliest_start >= j.arrival) "s_j before arrival" in
  let* () = check (j.deadline >= j.earliest_start) "deadline before s_j" in
  let* () = check (task_count j > 0) "job has no tasks" in
  let* () = check_all Map_task j.map_tasks in
  check_all Reduce_task j.reduce_tasks

let uniform_cluster ~m ~map_capacity ~reduce_capacity =
  if m <= 0 then invalid_arg "uniform_cluster: m must be positive";
  Array.init m (fun i -> { res_id = i; map_capacity; reduce_capacity })

let total_map_slots rs =
  Array.fold_left (fun acc r -> acc + r.map_capacity) 0 rs

let total_reduce_slots rs =
  Array.fold_left (fun acc r -> acc + r.reduce_capacity) 0 rs

(* LPT (longest processing time first) list scheduling of [durations] on
   [slots] identical machines; returns the makespan.  Exact for one wave,
   a 4/3-approximation otherwise — adequate for the TE deadline knob. *)
let lpt_makespan durations slots =
  if Array.length durations = 0 then 0
  else begin
    let slots = max 1 slots in
    let sorted = Array.copy durations in
    Array.sort (fun a b -> compare b a) sorted;
    let load = Array.make slots 0 in
    Array.iter
      (fun d ->
        (* assign to the least-loaded machine *)
        let best = ref 0 in
        for i = 1 to slots - 1 do
          if load.(i) < load.(!best) then best := i
        done;
        load.(!best) <- load.(!best) + d)
      sorted;
    Array.fold_left max 0 load
  end

let minimum_execution_time j resources =
  let map_durations = Array.map (fun t -> t.exec_time) j.map_tasks in
  let reduce_durations = Array.map (fun t -> t.exec_time) j.reduce_tasks in
  lpt_makespan map_durations (total_map_slots resources)
  + lpt_makespan reduce_durations (total_reduce_slots resources)
