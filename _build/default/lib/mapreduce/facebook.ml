type job_class = { class_id : int; maps : int; reduces : int; count : int }

let job_classes =
  [|
    { class_id = 1; maps = 1; reduces = 0; count = 380 };
    { class_id = 2; maps = 2; reduces = 0; count = 160 };
    { class_id = 3; maps = 10; reduces = 3; count = 140 };
    { class_id = 4; maps = 50; reduces = 0; count = 80 };
    { class_id = 5; maps = 100; reduces = 0; count = 60 };
    { class_id = 6; maps = 200; reduces = 50; count = 60 };
    { class_id = 7; maps = 400; reduces = 0; count = 40 };
    { class_id = 8; maps = 800; reduces = 180; count = 40 };
    { class_id = 9; maps = 2400; reduces = 360; count = 20 };
    { class_id = 10; maps = 4800; reduces = 0; count = 20 };
  |]

type params = {
  n_jobs : int;
  lambda : float;
  d_m : float;
  map_mu : float;
  map_sigma2 : float;
  reduce_mu : float;
  reduce_sigma2 : float;
}

let default =
  {
    n_jobs = 1000;
    lambda = 0.0005;
    d_m = 2.0;
    map_mu = 9.9511;
    map_sigma2 = 1.6764;
    reduce_mu = 12.375;
    reduce_sigma2 = 1.6262;
  }

let cluster () = Types.uniform_cluster ~m:64 ~map_capacity:1 ~reduce_capacity:1

let mix_mean f =
  let weighted =
    Array.fold_left (fun acc c -> acc +. (float_of_int (f c * c.count))) 0.
      job_classes
  in
  let total = Array.fold_left (fun acc c -> acc + c.count) 0 job_classes in
  weighted /. float_of_int total

let expected_maps_per_job () = mix_mean (fun c -> c.maps)
let expected_reduces_per_job () = mix_mean (fun c -> c.reduces)

let ms_per_s = 1000.

let generate p ~cluster ~seed =
  if p.n_jobs <= 0 then invalid_arg "Facebook.generate: n_jobs must be > 0";
  if p.lambda <= 0. then invalid_arg "Facebook.generate: lambda must be > 0";
  if p.d_m < 1. then invalid_arg "Facebook.generate: d_M must be >= 1";
  let root = Simrand.Rng.create seed in
  let arrivals_rng = Simrand.Rng.split root in
  let class_rng = Simrand.Rng.split root in
  let exec_rng = Simrand.Rng.split root in
  let sla_rng = Simrand.Rng.split root in
  let class_sampler =
    Simrand.Dist.categorical
      ~weights:(Array.map (fun c -> float_of_int c.count) job_classes)
  in
  (* Lognormal samples are already in ms; round up so no task is 0-length. *)
  let sample_ms ~mu ~sigma2 =
    max 1 (int_of_float (ceil (Simrand.Dist.lognormal exec_rng ~mu ~sigma2)))
  in
  let next_task_id = ref 0 in
  let fresh_task job_id kind exec_time =
    let id = !next_task_id in
    incr next_task_id;
    { Types.task_id = id; job_id; kind; exec_time; capacity_req = 1 }
  in
  let clock = ref 0. in
  let make_job id =
    let gap = Simrand.Dist.exponential arrivals_rng ~rate:p.lambda *. ms_per_s in
    clock := !clock +. gap;
    let arrival = int_of_float !clock in
    let cls = job_classes.(Simrand.Dist.categorical_draw class_sampler class_rng) in
    let map_tasks =
      Array.init cls.maps (fun _ ->
          fresh_task id Types.Map_task
            (sample_ms ~mu:p.map_mu ~sigma2:p.map_sigma2))
    in
    let reduce_tasks =
      Array.init cls.reduces (fun _ ->
          fresh_task id Types.Reduce_task
            (sample_ms ~mu:p.reduce_mu ~sigma2:p.reduce_sigma2))
    in
    let skeleton =
      {
        Types.id;
        arrival;
        earliest_start = arrival;
        deadline = max_int;
        map_tasks;
        reduce_tasks;
      }
    in
    let te = Types.minimum_execution_time skeleton cluster in
    let multiplier = Simrand.Dist.uniform sla_rng ~lo:1. ~hi:p.d_m in
    let deadline = arrival + int_of_float (float_of_int te *. multiplier) in
    { skeleton with deadline }
  in
  List.init p.n_jobs make_job
