lib/mapreduce/facebook.ml: Array List Simrand Types
