lib/mapreduce/types.mli: Format
