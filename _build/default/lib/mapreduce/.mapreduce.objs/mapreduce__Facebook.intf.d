lib/mapreduce/facebook.mli: Types
