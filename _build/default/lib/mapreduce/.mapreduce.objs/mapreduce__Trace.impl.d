lib/mapreduce/trace.ml: Array Buffer Fun Hashtbl List Printf Result String Types
