lib/mapreduce/synthetic.mli: Format Types
