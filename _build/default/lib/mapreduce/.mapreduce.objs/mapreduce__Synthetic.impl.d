lib/mapreduce/synthetic.ml: Array Format List Simrand Types
