lib/mapreduce/trace.mli: Types
