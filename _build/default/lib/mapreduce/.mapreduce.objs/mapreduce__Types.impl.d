lib/mapreduce/types.ml: Array Format Result
