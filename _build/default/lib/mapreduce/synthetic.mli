(** Table-3 synthetic workload generator (paper §VI, Table 3).

    Per job [j]:
    - number of map tasks    k_mp ~ DU[1, 100]
    - number of reduce tasks k_rd ~ DU[1, 100]
    - map task time          me   ~ DU[1, e_max] seconds
    - reduce task time       re   = (reduce_factor × Σme)/k_rd + DU[1, 10] s
    - earliest start         s_j  = v_j, or v_j + DU[1, s_max] w.p. [p]
    - deadline               d_j  = s_j + TE × U[1, d_M]
    - arrivals: Poisson process with rate λ jobs/s

    TE is the job's minimum execution time on the target cluster
    ({!Types.minimum_execution_time}).  Defaults are the boldface values of
    Table 3 as reconstructed in DESIGN.md §4. *)

type params = {
  n_jobs : int;  (** length of the arrival stream *)
  map_tasks_max : int;  (** upper bound of DU[1,·] for k_mp (paper: 100) *)
  reduce_tasks_max : int;  (** upper bound for k_rd (paper: 100) *)
  e_max : int;  (** map-task time upper bound, seconds ∈ {10,50,100} *)
  reduce_factor : float;
      (** multiplier on Σme in the reduce-time formula (paper text: 3) *)
  p : float;  (** probability that s_j > v_j ∈ {0.1,0.5,0.9} *)
  s_max : int;  (** advance-reservation bound, seconds ∈ {10k,50k,250k} *)
  d_m : float;  (** deadline multiplier upper bound ∈ {2,5,10} *)
  lambda : float;  (** arrival rate, jobs/second *)
}

val default : params
(** n_jobs=200, e_max=50, reduce_factor=3, p=0.5, s_max=50000, d_m=5,
    lambda=0.01 — the factor-at-a-time default point. *)

val generate : params -> cluster:Types.resource array -> seed:int -> Types.job list
(** Jobs sorted by (strictly increasing ids and) non-decreasing arrival time.
    Task ids are globally unique across the returned workload.  The [cluster]
    is needed to compute TE for the deadline formula. *)

val pp_params : Format.formatter -> params -> unit
