type params = {
  n_jobs : int;
  map_tasks_max : int;
  reduce_tasks_max : int;
  e_max : int;
  reduce_factor : float;
  p : float;
  s_max : int;
  d_m : float;
  lambda : float;
}

let default =
  {
    n_jobs = 200;
    map_tasks_max = 100;
    reduce_tasks_max = 100;
    e_max = 50;
    reduce_factor = 3.0;
    p = 0.5;
    s_max = 50_000;
    d_m = 5.0;
    lambda = 0.01;
  }

let pp_params fmt p =
  Format.fprintf fmt
    "synthetic<n=%d e_max=%ds p=%.2f s_max=%ds d_M=%.1f lambda=%g/s>" p.n_jobs
    p.e_max p.p p.s_max p.d_m p.lambda

let ms_per_s = 1000

let validate p =
  if p.n_jobs <= 0 then invalid_arg "Synthetic.generate: n_jobs must be > 0";
  if p.e_max <= 0 then invalid_arg "Synthetic.generate: e_max must be > 0";
  if p.map_tasks_max <= 0 || p.reduce_tasks_max <= 0 then
    invalid_arg "Synthetic.generate: task count bounds must be > 0";
  if p.p < 0. || p.p > 1. then invalid_arg "Synthetic.generate: p in [0,1]";
  if p.d_m < 1. then invalid_arg "Synthetic.generate: d_M must be >= 1";
  if p.lambda <= 0. then invalid_arg "Synthetic.generate: lambda must be > 0"

let generate p ~cluster ~seed =
  validate p;
  let root = Simrand.Rng.create seed in
  (* One independent stream per workload dimension so that changing, say,
     e_max does not perturb the arrival process of the same seed. *)
  let arrivals_rng = Simrand.Rng.split root in
  let shape_rng = Simrand.Rng.split root in
  let exec_rng = Simrand.Rng.split root in
  let sla_rng = Simrand.Rng.split root in
  let next_task_id = ref 0 in
  let fresh_task job_id kind exec_time =
    let id = !next_task_id in
    incr next_task_id;
    { Types.task_id = id; job_id; kind; exec_time; capacity_req = 1 }
  in
  let clock = ref 0. in
  let make_job id =
    (* Arrival: Poisson process, rate in jobs/s, clock kept in ms. *)
    let gap =
      Simrand.Dist.exponential arrivals_rng ~rate:p.lambda
      *. float_of_int ms_per_s
    in
    clock := !clock +. gap;
    let arrival = int_of_float !clock in
    let k_mp = Simrand.Dist.discrete_uniform shape_rng ~lo:1 ~hi:p.map_tasks_max in
    let k_rd =
      Simrand.Dist.discrete_uniform shape_rng ~lo:1 ~hi:p.reduce_tasks_max
    in
    let map_seconds =
      Array.init k_mp (fun _ ->
          Simrand.Dist.discrete_uniform exec_rng ~lo:1 ~hi:p.e_max)
    in
    let total_me = Array.fold_left ( + ) 0 map_seconds in
    let reduce_base =
      p.reduce_factor *. float_of_int total_me /. float_of_int k_rd
    in
    let reduce_seconds =
      Array.init k_rd (fun _ ->
          let noise = Simrand.Dist.discrete_uniform exec_rng ~lo:1 ~hi:10 in
          int_of_float reduce_base + noise)
    in
    let map_tasks =
      Array.map (fun s -> fresh_task id Types.Map_task (s * ms_per_s)) map_seconds
    in
    let reduce_tasks =
      Array.map
        (fun s -> fresh_task id Types.Reduce_task (s * ms_per_s))
        reduce_seconds
    in
    let earliest_start =
      if Simrand.Dist.bernoulli sla_rng ~p:p.p then
        arrival
        + Simrand.Dist.discrete_uniform sla_rng ~lo:1 ~hi:p.s_max * ms_per_s
      else arrival
    in
    let skeleton =
      {
        Types.id;
        arrival;
        earliest_start;
        deadline = max_int;
        map_tasks;
        reduce_tasks;
      }
    in
    let te = Types.minimum_execution_time skeleton cluster in
    let multiplier = Simrand.Dist.uniform sla_rng ~lo:1. ~hi:p.d_m in
    let deadline =
      earliest_start + int_of_float (float_of_int te *. multiplier)
    in
    { skeleton with deadline }
  in
  List.init p.n_jobs make_job
