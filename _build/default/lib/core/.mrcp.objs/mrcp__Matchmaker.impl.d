lib/core/matchmaker.ml: Array Hashtbl List Mapreduce Printf Sched
