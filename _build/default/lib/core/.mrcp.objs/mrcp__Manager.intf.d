lib/core/manager.mli: Cp Mapreduce Sched
