lib/core/manager.ml: Array Cp Fmt Hashtbl List Logs Mapreduce Matchmaker Option Printf Queue Sched String Unix
