lib/core/matchmaker.mli: Hashtbl Mapreduce Sched
