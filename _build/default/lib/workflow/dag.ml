module T = Mapreduce.Types

type stage = { stage_id : int; pool : T.task_kind; tasks : T.task array }

type t = {
  id : int;
  earliest_start : int;
  deadline : int;
  stages : stage array;
  precedences : (int * int) list;
}

let stage w id =
  match Array.find_opt (fun s -> s.stage_id = id) w.stages with
  | Some s -> s
  | None -> raise Not_found

let predecessors w id =
  List.filter_map (fun (a, b) -> if b = id then Some a else None) w.precedences

let successors w id =
  List.filter_map (fun (a, b) -> if a = id then Some b else None) w.precedences

(* Kahn's algorithm; returns None on a cycle. *)
let topo_opt w =
  let ids = Array.map (fun s -> s.stage_id) w.stages in
  let in_degree = Hashtbl.create 16 in
  Array.iter (fun id -> Hashtbl.replace in_degree id 0) ids;
  List.iter
    (fun (_, b) ->
      Hashtbl.replace in_degree b (Hashtbl.find in_degree b + 1))
    w.precedences;
  let ready =
    Array.to_list ids |> List.filter (fun id -> Hashtbl.find in_degree id = 0)
  in
  let order = ref [] in
  let rec drain = function
    | [] -> ()
    | id :: rest ->
        order := id :: !order;
        let next =
          List.fold_left
            (fun acc succ ->
              let d = Hashtbl.find in_degree succ - 1 in
              Hashtbl.replace in_degree succ d;
              if d = 0 then succ :: acc else acc)
            rest (successors w id)
        in
        drain next
  in
  drain ready;
  if List.length !order = Array.length ids then
    Some (Array.of_list (List.rev !order))
  else None

let validate w =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (Array.length w.stages > 0) "workflow has no stages" in
  let ids = Array.map (fun s -> s.stage_id) w.stages in
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  let dup = ref false in
  Array.iteri
    (fun i id -> if i > 0 && sorted.(i - 1) = id then dup := true)
    sorted;
  let* () = check (not !dup) "duplicate stage ids" in
  let exists id = Array.exists (( = ) id) ids in
  let* () =
    check
      (List.for_all (fun (a, b) -> exists a && exists b) w.precedences)
      "precedence references unknown stage"
  in
  let* () =
    check
      (List.for_all (fun (a, b) -> a <> b) w.precedences)
      "self-precedence"
  in
  let* () =
    check (w.deadline >= w.earliest_start) "deadline before earliest start"
  in
  let* () =
    check
      (Array.for_all
         (fun s ->
           Array.for_all
             (fun (t : T.task) -> t.T.exec_time >= 0 && t.T.capacity_req > 0)
             s.tasks)
         w.stages)
      "task with negative time or non-positive capacity requirement"
  in
  check (topo_opt w <> None) "precedence cycle"

let topological_order w =
  match topo_opt w with
  | Some order -> order
  | None -> invalid_arg "Dag.topological_order: cycle"

let all_tasks w =
  Array.to_list w.stages |> List.concat_map (fun s -> Array.to_list s.tasks)

let stage_span s =
  Array.fold_left (fun acc (t : T.task) -> max acc t.T.exec_time) 0 s.tasks

let critical_path w =
  let order = topological_order w in
  let finish = Hashtbl.create 16 in
  Array.iter
    (fun id ->
      let preds = predecessors w id in
      let start =
        List.fold_left (fun acc p -> max acc (Hashtbl.find finish p)) 0 preds
      in
      Hashtbl.replace finish id (start + stage_span (stage w id)))
    order;
  Hashtbl.fold (fun _ f acc -> max acc f) finish 0

let of_mapreduce_job (job : T.job) =
  let stages =
    List.filter_map
      (fun (pool, tasks) ->
        if Array.length tasks = 0 then None else Some (pool, tasks))
      [ (T.Map_task, job.T.map_tasks); (T.Reduce_task, job.T.reduce_tasks) ]
  in
  let stages =
    List.mapi (fun i (pool, tasks) -> { stage_id = i; pool; tasks }) stages
  in
  {
    id = job.T.id;
    earliest_start = job.T.earliest_start;
    deadline = job.T.deadline;
    stages = Array.of_list stages;
    precedences = (if List.length stages = 2 then [ (0, 1) ] else []);
  }

let chain ~id ~earliest_start ~deadline ~stages =
  let stages =
    List.mapi (fun i (pool, tasks) -> { stage_id = i; pool; tasks }) stages
  in
  let n = List.length stages in
  {
    id;
    earliest_start;
    deadline;
    stages = Array.of_list stages;
    precedences = List.init (max 0 (n - 1)) (fun i -> (i, i + 1));
  }

let pp fmt w =
  Format.fprintf fmt "workflow<%d s=%d d=%d stages=%d edges=%d>" w.id
    w.earliest_start w.deadline (Array.length w.stages)
    (List.length w.precedences)
