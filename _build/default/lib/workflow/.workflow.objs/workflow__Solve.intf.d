lib/workflow/solve.mli: Cp Dag Hashtbl
