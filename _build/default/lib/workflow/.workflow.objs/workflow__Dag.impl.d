lib/workflow/dag.ml: Array Format Hashtbl List Mapreduce Result
