lib/workflow/solve.ml: Array Cp Dag Format Hashtbl List Mapreduce Option Sched
