lib/workflow/dag.mli: Format Mapreduce
