(** Generalized multi-stage workflows with user-specified precedence — the
    extension the paper's §VII names as future work ("handling more complex
    workflows with user-specified precedence relationships").

    A workflow job is a DAG of {e stages}.  Each stage owns a set of tasks
    that may run in parallel (subject to slot capacity) and draws its slots
    from one of the two pools of the paper's system model (map slots or
    reduce slots).  A stage may start only when {e all} tasks of {e all} its
    predecessor stages have completed — the same AND-semantics as the
    map→reduce barrier, applied to an arbitrary DAG.

    A classic MapReduce job is the special case of a two-stage chain
    ({!of_mapreduce_job}). *)

type stage = {
  stage_id : int;  (** unique within the workflow *)
  pool : Mapreduce.Types.task_kind;  (** which slot pool the tasks occupy *)
  tasks : Mapreduce.Types.task array;
}

type t = {
  id : int;
  earliest_start : int;  (** s_j *)
  deadline : int;  (** d_j *)
  stages : stage array;
  precedences : (int * int) list;
      (** (a, b): stage [b] starts after stage [a] completes *)
}

val validate : t -> (unit, string) result
(** Unique stage ids, precedence endpoints exist, no self-edges, acyclic,
    at least one stage, non-negative task times. *)

val topological_order : t -> int array
(** Stage ids in dependency order.  @raise Invalid_argument on a cycle (use
    {!validate} first for a [result]). *)

val predecessors : t -> int -> int list
(** Stage ids that must complete before the given stage starts. *)

val stage : t -> int -> stage
(** Lookup by id.  @raise Not_found. *)

val all_tasks : t -> Mapreduce.Types.task list

val critical_path : t -> int
(** Lower bound on the workflow's makespan with unlimited slots: the longest
    est-to-sink chain of per-stage spans, where a stage's span is its longest
    task. *)

val of_mapreduce_job : Mapreduce.Types.job -> t
(** Two-stage chain (maps → reduces); single-stage if the job has no reduce
    tasks (or no map tasks). *)

val chain :
  id:int ->
  earliest_start:int ->
  deadline:int ->
  stages:(Mapreduce.Types.task_kind * Mapreduce.Types.task array) list ->
  t
(** Convenience constructor for a linear pipeline. *)

val pp : Format.formatter -> t -> unit
