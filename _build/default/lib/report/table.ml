type cell = string

let render ?title ~headers ~rows () =
  let all = headers :: rows in
  let cols = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> cols then
        invalid_arg "Table.render: ragged rows")
    rows;
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let pad i cell =
    let n = widths.(i) - String.length cell in
    cell ^ String.make (max 0 n) ' '
  in
  let emit_row row =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let csv_escape cell =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~headers ~rows =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line headers :: List.map line rows) ^ "\n"

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_pct ?(decimals = 2) x = Printf.sprintf "%.*f%%" decimals (100. *. x)

let fmt_seconds x =
  if x = 0. then "0s"
  else if Float.abs x >= 0.1 then Printf.sprintf "%.2fs" x
  else if Float.abs x >= 0.001 then Printf.sprintf "%.4fs" x
  else Printf.sprintf "%.6fs" x
