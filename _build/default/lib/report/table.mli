(** ASCII tables and CSV emission for the experiment harness — every figure
    and table of the paper is regenerated as one of these. *)

type cell = string

val render :
  ?title:string -> headers:cell list -> rows:cell list list -> unit -> string
(** Monospace table with a header rule; columns are sized to fit. *)

val csv : headers:cell list -> rows:cell list list -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val write_file : path:string -> string -> unit

val fmt_float : ?decimals:int -> float -> cell
val fmt_pct : ?decimals:int -> float -> cell
(** [fmt_pct 0.0346] is ["3.46%"]. *)

val fmt_seconds : float -> cell
(** Adaptive precision: "0.57s", "0.0003s". *)
