(** ASCII Gantt charts of dispatch plans: one row per unit slot, time flowing
    right, each task drawn as a run of its job-id digit.  Used by the examples
    and handy when debugging manager decisions. *)

val render :
  ?width:int ->
  ?from_time:int ->
  ?until_time:int ->
  Sched.Dispatch.t list ->
  string
(** [render dispatches] draws map slots then reduce slots.  [width] is the
    number of character columns for the time axis (default 78).  The time
    window defaults to the dispatches' span.  Empty input yields a note
    instead of a chart. *)
