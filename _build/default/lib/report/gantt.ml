module T = Mapreduce.Types
module Dispatch = Sched.Dispatch

let job_char job_id =
  let digits = "0123456789abcdefghijklmnopqrstuvwxyz" in
  digits.[job_id mod String.length digits]

let render ?(width = 78) ?from_time ?until_time dispatches =
  if dispatches = [] then "(empty plan)\n"
  else begin
    let lo =
      Option.value from_time
        ~default:
          (List.fold_left
             (fun acc (d : Dispatch.t) -> min acc d.Dispatch.start)
             max_int dispatches)
    in
    let hi =
      Option.value until_time
        ~default:
          (List.fold_left
             (fun acc d -> max acc (Dispatch.finish d))
             min_int dispatches)
    in
    let hi = max hi (lo + 1) in
    let span = hi - lo in
    let col_start time =
      let c = (time - lo) * width / span in
      min (max c 0) (width - 1)
    in
    let col_end time =
      let c = (time - lo) * width / span in
      min (max c 0) width
    in
    let buf = Buffer.create 1024 in
    let slots kind =
      dispatches
      |> List.filter_map (fun (d : Dispatch.t) ->
             if d.Dispatch.task.T.kind = kind then Some d.Dispatch.slot
             else None)
      |> List.sort_uniq compare
    in
    let draw kind label =
      let slot_list = slots kind in
      if slot_list <> [] then begin
        Buffer.add_string buf label;
        Buffer.add_char buf '\n';
        List.iter
          (fun slot ->
            let line = Bytes.make width '.' in
            List.iter
              (fun (d : Dispatch.t) ->
                if d.Dispatch.task.T.kind = kind && d.Dispatch.slot = slot
                then begin
                  let a = col_start d.Dispatch.start in
                  let b = max (a + 1) (col_end (Dispatch.finish d)) in
                  for i = a to min (b - 1) (width - 1) do
                    Bytes.set line i (job_char d.Dispatch.task.T.job_id)
                  done
                end)
              dispatches;
            Buffer.add_string buf (Printf.sprintf "  slot %3d |%s|\n" slot (Bytes.to_string line)))
          slot_list
      end
    in
    Buffer.add_string buf
      (Printf.sprintf "time window [%d, %d) ms, one column ~ %d ms\n" lo hi
         (max 1 (span / width)));
    draw T.Map_task "map slots:";
    draw T.Reduce_task "reduce slots:";
    Buffer.contents buf
  end
