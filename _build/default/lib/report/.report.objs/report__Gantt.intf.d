lib/report/gantt.mli: Sched
