lib/report/table.mli:
