lib/report/gantt.ml: Buffer Bytes List Mapreduce Option Printf Sched String
