lib/opensim/driver.mli: Baselines Mapreduce Mrcp Sched
