lib/opensim/simulator.mli: Driver Format Mapreduce
