lib/opensim/simulator.ml: Array Desim Driver Format Hashtbl List Mapreduce Option Sched
