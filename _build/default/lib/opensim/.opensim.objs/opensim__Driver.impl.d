lib/opensim/driver.ml: Baselines Mapreduce Mrcp Sched
