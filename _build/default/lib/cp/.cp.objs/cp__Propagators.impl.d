lib/cp/propagators.ml: Array List Store
