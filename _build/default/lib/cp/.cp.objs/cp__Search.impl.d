lib/cp/search.ml: Array Mapreduce Model Option Sched Store Unix
