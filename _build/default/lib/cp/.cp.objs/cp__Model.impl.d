lib/cp/model.ml: Array Hashtbl List Mapreduce Propagators Sched Store
