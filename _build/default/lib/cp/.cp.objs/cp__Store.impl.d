lib/cp/store.ml: Array List Printf Queue
