lib/cp/search.mli: Model Sched Store
