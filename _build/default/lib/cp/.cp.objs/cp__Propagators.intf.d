lib/cp/propagators.mli: Store
