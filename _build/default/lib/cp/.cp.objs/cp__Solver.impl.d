lib/cp/solver.ml: Array Format Hashtbl List Mapreduce Model Sched Search Simrand Unix
