lib/cp/direct.ml: Array Hashtbl List Mapreduce Model Option Propagators Sched Search Store Unix
