lib/cp/solver.mli: Format Sched
