lib/cp/model.mli: Mapreduce Sched Store
