lib/cp/direct.mli: Hashtbl Mapreduce Sched Search
