lib/cp/store.mli:
