(** The constraint propagators needed by the paper's Table-1 model:

    - {!precedence}: start_after ≥ start_before + duration (constraint (3)
      once the per-job LFMT is expressed with {!max_of});
    - {!max_of}: y = max_i (x_i + c_i), for LFMT/LFRT;
    - {!lateness}: constraint (4), "completion > deadline ⟹ N_j = 1",
      together with the useful contrapositive "N_j = 0 ⟹ completion ≤ d";
    - {!sum_lt_bound}: the branch-and-bound objective cut Σ N_j < bound;
    - {!cumulative}: constraints (5)/(6), time-table propagation with overload
      checking, handling both variable-start tasks and frozen
      (isPrevScheduled) tasks.

    Each function registers the propagator, wires its watches, and schedules
    an initial run; callers then invoke {!Store.propagate}. *)

type term = { start : Store.var; duration : int; demand : int }
(** A task as seen by [cumulative]. *)

val ge_offset : Store.t -> Store.var -> Store.var -> int -> unit
(** [ge_offset s y x c] enforces y ≥ x + c (bounds in both directions). *)

val precedence : Store.t -> before:Store.var -> duration:int -> after:Store.var -> unit
(** [after ≥ before + duration]. *)

val max_of : Store.t -> result:Store.var -> terms:(Store.var * int) list -> floor:int -> unit
(** result = max(floor, max_i (x_i + c_i)).  With an empty term list, fixes
    result to [floor]. *)

val lateness :
  Store.t -> late:Store.var -> completion:Store.var -> deadline:int -> unit
(** [late] is a 0/1 variable: completion_min > deadline forces late = 1;
    late = 0 forces completion ≤ deadline; completion_max ≤ deadline forces
    late = 0. *)

val sum_lt_bound :
  Store.t -> vars:Store.var array -> bound:int ref -> Store.propagator_id
(** Σ vars < !bound (strict).  Re-schedule the returned token after lowering
    [bound].  When Σ min reaches [!bound - 1], remaining free vars are forced
    to 0. *)

val cumulative :
  Store.t ->
  tasks:term array ->
  fixed:(int * int * int) array ->
  capacity:int ->
  unit
(** Time-table (compulsory part) propagation over [tasks] plus frozen
    [(start, duration, demand)] occupations, under the capacity limit.
    Prunes both start minima and start maxima; fails on profile overload.
    Exact (overload = capacity violation) once all starts are fixed. *)

type gated = {
  g_start : Store.var;
  g_duration : int;
  g_demand : int;
  g_member : Store.var;  (** resource-choice variable *)
  g_value : int;  (** the task occupies this resource iff g_member = value *)
}

val cumulative_gated :
  Store.t -> tasks:gated array -> capacity:int -> unit
(** Per-resource cumulative for the paper's {e direct} formulation (the x_tr
    variables of Table 1, before the §V.D decomposition): a task contributes
    to this resource's profile only once its choice variable is fixed to
    [g_value], and only such tasks have their start bounds pruned here.
    Weaker propagation than {!cumulative} (unassigned tasks are invisible),
    but exact once every choice and start is fixed — which is all the
    branch-and-bound needs for soundness. *)
