(** Anytime solver for a scheduling instance — the role CPLEX CP Optimizer
    plays in the paper (§IV–V).

    Pipeline:
    + seed with greedy list schedules under the paper's three job orderings
      (§VI.B) and keep the best;
    + compute a per-job lower bound on Σ N_j ({!late_lower_bound}: a job whose
      est + wave-bound makespan already exceeds its deadline is late in every
      schedule); if the seed meets the bound it is optimal — the common case
      in the paper's open system, which is what keeps the measured overhead
      O small;
    + otherwise run exact branch-and-bound when the instance is small enough,
      or large-neighbourhood search (relax the late jobs plus a few random
      ones, fix everything else, exactly re-solve the fragment) under a time
      budget — the same anytime regime CP Optimizer applies to models of this
      shape. *)

type options = {
  ordering : Sched.Greedy.order;
      (** job-ordering strategy for the greedy seed (paper §VI.B) *)
  exact_task_limit : int;
      (** run global B&B when #pending tasks ≤ this (default 120) *)
  fail_limit : int;  (** failure budget per exact search (default 20_000) *)
  time_limit : float;  (** wall-clock seconds for the whole solve *)
  lns_neighbors : int;  (** extra random jobs relaxed per LNS move *)
  lns_max_stall : int;  (** stop after this many non-improving moves *)
  seed : int;  (** randomization seed for LNS *)
}

val default_options : options

type stats = {
  seed_late : int;  (** late jobs in the greedy seed *)
  lower_bound : int;
  proved_optimal : bool;
  nodes : int;
  failures : int;
  lns_moves : int;
  elapsed : float;  (** wall-clock seconds spent *)
}

val late_lower_bound : Sched.Instance.t -> int
(** Number of jobs that are late in {e every} schedule: est plus the
    single-job wave lower bound (max task length vs. total-work/capacity,
    per phase) already exceeds the deadline. *)

val solve : ?options:options -> Sched.Instance.t -> Sched.Solution.t * stats
(** Never fails: at worst returns the greedy seed. *)

val pp_stats : Format.formatter -> stats -> unit
