(** The §V.D experiment: matchmaking/scheduling decomposition vs the direct
    per-resource formulation.

    The paper measured a 25-job batch: ~15 s with the combined-resource
    solve + matchmaking, ~60 s with the direct model (one cumulative per
    resource, x_tr variables).  Our absolute times differ; what reproduces
    is the {e direction and growth}: the direct model's search must also
    decide a resource per task, so its effort explodes with batch size while
    the decomposed pipeline barely notices. *)

type row = {
  jobs : int;
  tasks : int;
  resources : int;
  combined_time_s : float;  (** full pipeline: solve + matchmaking *)
  combined_late : int;
  direct_time_s : float;
  direct_late : int option;  (** [None] when no solution within limits *)
  direct_nodes : int;
  direct_optimal : bool;
}

val run :
  ?sizes:int list -> ?m:int -> ?direct_budget:float -> ?seed:int -> unit -> row list
(** Defaults: sizes [2;4;6;8], m = 4 unit-slot resources, 5 s budget for the
    direct solve. *)

val render : row list -> string
val to_csv : row list -> string
