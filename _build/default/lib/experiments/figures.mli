(** One entry per table/figure of the paper's evaluation (§VI), plus the
    ablations called out in DESIGN.md.  Each figure is a list of {!Runner}
    points (one per x-axis value and manager); rendering and CSV emission are
    shared.

    Factor-at-a-time defaults (DESIGN.md §4): e_max=50 s, p=0.5,
    s_max=50 000 s, d_M=5, λ=0.01 jobs/s, m=50 resources with 2+2 slots. *)

type figure = {
  id : string;  (** e.g. "fig2" *)
  title : string;
  x_label : string;
  points : Runner.point list;
}

val synthetic_defaults : Mapreduce.Synthetic.params
(** The boldface column of Table 3 as reconstructed in DESIGN.md. *)

val fig2_3 : config:Runner.config -> lambdas:float list -> figure
(** Fig. 2 and Fig. 3 share their runs: MRCP-RM vs MinEDF-WC on the Facebook
    workload; P is Fig. 2's metric, T is Fig. 3's. *)

val fig4 : config:Runner.config -> figure
(** Effect of task execution time: e_max ∈ {10, 50, 100} s. *)

val fig5 : config:Runner.config -> figure
(** Effect of earliest start time: s_max ∈ {10 000, 50 000, 250 000} s. *)

val fig6 : config:Runner.config -> figure
(** Effect of p ∈ {0.1, 0.5, 0.9}. *)

val fig7 : config:Runner.config -> figure
(** Effect of deadline multiplier: d_M ∈ {2, 5, 10}. *)

val fig8 : config:Runner.config -> figure
(** Effect of arrival rate: λ ∈ {0.001, 0.01, 0.015, 0.02} jobs/s. *)

val fig9 : config:Runner.config -> figure
(** Effect of number of resources: m ∈ {25, 50, 100}. *)

val ablation_ordering : config:Runner.config -> figure
(** §VI.B job-ordering strategies: job-id vs EDF vs least-laxity. *)

val ablation_cp : config:Runner.config -> figure
(** MRCP-RM vs the same pipeline with CP search disabled (greedy only) vs the
    slot baselines — isolates the CP solver's contribution to P. *)

val ablation_deferral : config:Runner.config -> figure
(** §V.E deferral window off / 300 s / 3000 s at high s_max. *)

val render : figure -> string
val to_csv : figure -> string
