lib/experiments/runner.mli: Mapreduce Sched Simstats
