lib/experiments/figures.mli: Mapreduce Runner
