lib/experiments/runner.ml: Array Baselines Cp Format List Mapreduce Mrcp Opensim Option Printf Report Sched Simstats Unix
