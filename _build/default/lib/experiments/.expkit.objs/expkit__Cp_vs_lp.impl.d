lib/experiments/cp_vs_lp.ml: Array Cp List Lp Mapreduce Option Report Sched Simrand Unix
