lib/experiments/decomp.ml: Array Cp List Mapreduce Mrcp Option Report Sched Simrand Unix
