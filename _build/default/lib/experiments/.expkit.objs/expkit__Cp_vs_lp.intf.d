lib/experiments/cp_vs_lp.mli:
