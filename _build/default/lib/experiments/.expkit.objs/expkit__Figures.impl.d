lib/experiments/figures.ml: List Mapreduce Printf Report Runner Sched
