lib/experiments/decomp.mli:
