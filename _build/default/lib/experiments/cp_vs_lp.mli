(** The CP-vs-LP scaling comparison that motivated the paper (§I, citing the
    authors' earlier study [12]: CP offered "lower processing time overhead
    and the ability to handle larger workloads" than an LP formulation).

    Closed batches of growing size are solved by (a) the CP solver (exact
    Table-1 model, integer time, no discretization) and (b) the time-indexed
    MILP ({!Lp.Milp_model}) under a wall-clock budget.  The table reports,
    per batch size: solver time, late-job count, optimality proof, and for
    the MILP its variable count — the quantity that explodes with the
    horizon and caps the LP approach. *)

type row = {
  jobs : int;
  tasks : int;
  cp_time_s : float;
  cp_late : int;
  cp_optimal : bool;
  milp_vars : int;
  milp_time_s : float;
  milp_late : int option;  (** [None] when no incumbent within budget *)
  milp_optimal : bool;
}

val run :
  ?sizes:int list -> ?milp_budget:float -> ?seed:int -> unit -> row list
(** Defaults: sizes [1;2;3;4;5], 5 s MILP budget per batch (the budget can
    be exceeded by the node in flight — the simplex is not interruptible,
    which is itself part of the scaling story). *)

val render : row list -> string
val to_csv : row list -> string
