type figure = {
  id : string;
  title : string;
  x_label : string;
  points : Runner.point list;
}

let synthetic_defaults =
  {
    Mapreduce.Synthetic.default with
    Mapreduce.Synthetic.e_max = 50;
    p = 0.5;
    s_max = 50_000;
    d_m = 5.0;
    lambda = 0.01;
  }

let fig2_3 ~config ~lambdas =
  let points =
    List.concat_map
      (fun lambda ->
        List.map
          (fun manager ->
            let config = { config with Runner.manager } in
            Runner.run_facebook
              ~label:
                (Printf.sprintf "%s lambda=%g"
                   (Runner.manager_to_string manager)
                   lambda)
              ~params:{ Mapreduce.Facebook.default with Mapreduce.Facebook.lambda }
              ~config ())
          [ Runner.Mrcp_rm; Runner.Min_edf_wc ])
      lambdas
  in
  {
    id = "fig2-3";
    title =
      "Fig. 2/3: MRCP-RM vs MinEDF-WC on the Facebook workload (P and T)";
    x_label = "lambda (jobs/s)";
    points;
  }

let sweep ~id ~title ~x_label ~config ~values ~apply ~label =
  let points =
    List.map
      (fun v ->
        Runner.run_synthetic ~label:(label v)
          ~params:(apply synthetic_defaults v)
          ~config ())
      values
  in
  { id; title; x_label; points }

let fig4 ~config =
  sweep ~id:"fig4" ~title:"Fig. 4: effect of task execution time (e_max)"
    ~x_label:"e_max (s)" ~config ~values:[ 10; 50; 100 ]
    ~apply:(fun p v -> { p with Mapreduce.Synthetic.e_max = v })
    ~label:(Printf.sprintf "e_max=%d")

let fig5 ~config =
  sweep ~id:"fig5" ~title:"Fig. 5: effect of earliest start time (s_max)"
    ~x_label:"s_max (s)" ~config
    ~values:[ 10_000; 50_000; 250_000 ]
    ~apply:(fun p v -> { p with Mapreduce.Synthetic.s_max = v })
    ~label:(Printf.sprintf "s_max=%d")

let fig6 ~config =
  sweep ~id:"fig6" ~title:"Fig. 6: effect of earliest-start probability (p)"
    ~x_label:"p" ~config ~values:[ 0.1; 0.5; 0.9 ]
    ~apply:(fun p v -> { p with Mapreduce.Synthetic.p = v })
    ~label:(Printf.sprintf "p=%.1f")

let fig7 ~config =
  sweep ~id:"fig7" ~title:"Fig. 7: effect of deadline multiplier (d_M)"
    ~x_label:"d_M" ~config ~values:[ 2.; 5.; 10. ]
    ~apply:(fun p v -> { p with Mapreduce.Synthetic.d_m = v })
    ~label:(Printf.sprintf "d_M=%.0f")

let fig8 ~config =
  sweep ~id:"fig8" ~title:"Fig. 8: effect of arrival rate (lambda)"
    ~x_label:"lambda (jobs/s)" ~config
    ~values:[ 0.001; 0.01; 0.015; 0.02 ]
    ~apply:(fun p v -> { p with Mapreduce.Synthetic.lambda = v })
    ~label:(Printf.sprintf "lambda=%g")

let fig9 ~config =
  let points =
    List.map
      (fun m ->
        Runner.run_synthetic ~m
          ~label:(Printf.sprintf "m=%d" m)
          ~params:synthetic_defaults ~config ())
      [ 25; 50; 100 ]
  in
  {
    id = "fig9";
    title = "Fig. 9: effect of the number of resources (m)";
    x_label = "m (resources)";
    points;
  }

let ablation_ordering ~config =
  let points =
    List.map
      (fun ordering ->
        let config = { config with Runner.ordering } in
        Runner.run_synthetic
          ~label:(Sched.Greedy.order_to_string ordering)
          ~params:synthetic_defaults ~config ())
      [ Sched.Greedy.By_job_id; Sched.Greedy.Edf; Sched.Greedy.Least_laxity ]
  in
  {
    id = "ablation-ordering";
    title = "Ablation: MRCP-RM job-ordering strategies (§VI.B)";
    x_label = "ordering";
    points;
  }

let ablation_cp ~config =
  (* tighter deadlines than the defaults so scheduling quality matters *)
  let params = { synthetic_defaults with Mapreduce.Synthetic.d_m = 2.0 } in
  let points =
    List.map
      (fun manager ->
        let config = { config with Runner.manager } in
        Runner.run_synthetic
          ~label:(Runner.manager_to_string manager)
          ~params ~config ())
      [
        Runner.Mrcp_rm; Runner.Greedy_only; Runner.Min_edf_wc; Runner.Edf_wc;
        Runner.Fcfs_wc;
      ]
  in
  {
    id = "ablation-cp";
    title = "Ablation: CP search vs greedy-only vs slot baselines (d_M = 2)";
    x_label = "manager";
    points;
  }

let ablation_deferral ~config =
  let params =
    {
      synthetic_defaults with
      Mapreduce.Synthetic.p = 0.9;
      s_max = 250_000;
    }
  in
  let points =
    List.map
      (fun (label, window) ->
        let config = { config with Runner.deferral_window = window } in
        Runner.run_synthetic ~label ~params ~config ())
      [
        ("no deferral", None);
        ("window=300s", Some 300_000);
        ("window=3000s", Some 3_000_000);
      ]
  in
  {
    id = "ablation-deferral";
    title = "Ablation: §V.E deferral of far-future jobs (p=0.9, s_max=250000)";
    x_label = "deferral window";
    points;
  }

let render fig =
  Report.Table.render ~title:fig.title ~headers:Runner.point_headers
    ~rows:(List.map Runner.point_row fig.points)
    ()

let to_csv fig =
  let headers =
    [ "label"; "o_s"; "t_s"; "p_late"; "n_late_mean"; "solves_mean"; "reps" ]
  in
  let rows =
    List.map
      (fun (p : Runner.point) ->
        [
          p.Runner.label;
          Printf.sprintf "%.6f" p.Runner.o_mean;
          Printf.sprintf "%.3f" p.Runner.t_mean;
          Printf.sprintf "%.6f" p.Runner.p_late;
          Printf.sprintf "%.2f" p.Runner.n_late_mean;
          Printf.sprintf "%.1f" p.Runner.solves_mean;
          string_of_int p.Runner.config.Runner.reps;
        ])
      fig.points
  in
  Report.Table.csv ~headers ~rows
