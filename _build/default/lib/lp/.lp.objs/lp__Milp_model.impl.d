lib/lp/milp_model.ml: Array Fun Hashtbl List Mapreduce Mip Option Printf Sched Simplex
