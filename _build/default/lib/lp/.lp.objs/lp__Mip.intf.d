lib/lp/mip.mli: Simplex
