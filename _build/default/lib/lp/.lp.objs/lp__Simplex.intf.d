lib/lp/simplex.mli:
