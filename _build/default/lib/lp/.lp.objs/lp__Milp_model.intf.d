lib/lp/milp_model.mli: Mip Sched Simplex
