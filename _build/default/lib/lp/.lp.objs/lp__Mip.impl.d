lib/lp/mip.ml: Array Float List Simplex Unix
