(** Dense two-phase primal simplex.

    Solves   minimize    c·x
             subject to  a_i·x (≤ | = | ≥) b_i   for each row i
                         x ≥ 0

    Bland's rule is used throughout, so the algorithm cannot cycle.  This is
    the LP kernel under the MILP comparator ({!Mip}, {!Milp_model}) used to
    reproduce the paper's CP-vs-LP motivation (§I, [12]); it is exact
    rational-free floating-point simplex with an epsilon tolerance, adequate
    for the small 0/1 models it serves. *)

type relation = Le | Eq | Ge

type constraint_row = {
  coeffs : float array;  (** length = number of variables *)
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;  (** minimized *)
  rows : constraint_row list;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** @raise Invalid_argument on ragged coefficient rows. *)

val feasible : problem -> float array -> bool
(** [feasible p x] checks all constraints of [p] at the point [x] (within
    1e-6) — the test oracle. *)
