module T = Mapreduce.Types
module Instance = Sched.Instance

type task_cols = {
  task : T.task;
  job_index : int;
  dur_slots : int;
  lo : int;  (** first allowed start slot *)
  hi : int;  (** last allowed start slot *)
  base : int;  (** variable index of x_{t,lo} *)
}

type model = {
  instance : Instance.t;
  quantum : int;
  horizon : int;  (** slots *)
  tasks : task_cols array;
  n_base : int;  (** variable index of N_0 *)
  n_vars : int;
  prob : Simplex.problem;
}

let ceil_div a b = (a + b - 1) / b

let variables m = m.n_vars
let problem m = m.prob

let build (inst : Instance.t) ~quantum ~horizon_slots =
  if quantum <= 0 then invalid_arg "Milp_model.build: quantum must be > 0";
  if Instance.fixed_task_count inst > 0 then
    invalid_arg "Milp_model.build: frozen tasks are not supported";
  let horizon = horizon_slots in
  let jobs = inst.Instance.jobs in
  (* per-task column ranges *)
  let tasks = ref [] in
  let next_var = ref 0 in
  Array.iteri
    (fun job_index (j : Instance.pending_job) ->
      let est_slot = ceil_div j.Instance.est quantum in
      let add (task : T.task) =
        let dur_slots = max 1 (ceil_div task.T.exec_time quantum) in
        let lo = est_slot and hi = horizon - dur_slots in
        if hi < lo then
          invalid_arg
            (Printf.sprintf
               "Milp_model.build: task %d does not fit in the horizon"
               task.T.task_id);
        tasks := { task; job_index; dur_slots; lo; hi; base = !next_var } :: !tasks;
        next_var := !next_var + (hi - lo + 1)
      in
      Array.iter add j.Instance.pending_maps;
      Array.iter add j.Instance.pending_reduces)
    jobs;
  let tasks = Array.of_list (List.rev !tasks) in
  let n_base = !next_var in
  let n_vars = n_base + Array.length jobs in
  let row coeffs relation rhs = { Simplex.coeffs; relation; rhs } in
  let zero () = Array.make n_vars 0. in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  (* 1. each task starts exactly once *)
  Array.iter
    (fun tc ->
      let c = zero () in
      for k = 0 to tc.hi - tc.lo do
        c.(tc.base + k) <- 1.
      done;
      push (row c Simplex.Eq 1.))
    tasks;
  (* helper: add Σ f(τ)·x_{t,τ} into a coefficient vector *)
  let accumulate c tc f =
    for k = 0 to tc.hi - tc.lo do
      c.(tc.base + k) <- c.(tc.base + k) +. f (tc.lo + k)
    done
  in
  (* 2. precedence: each reduce starts after each map of its job ends *)
  Array.iteri
    (fun job_index (_ : Instance.pending_job) ->
      let of_kind kind =
        Array.to_list tasks
        |> List.filter (fun tc ->
               tc.job_index = job_index && tc.task.T.kind = kind)
      in
      List.iter
        (fun reduce_tc ->
          List.iter
            (fun map_tc ->
              let c = zero () in
              accumulate c reduce_tc float_of_int;
              accumulate c map_tc (fun tau ->
                  -.float_of_int (tau + map_tc.dur_slots));
              push (row c Simplex.Ge 0.))
            (of_kind T.Map_task))
        (of_kind T.Reduce_task))
    jobs;
  (* 3. per-slot pool capacities *)
  let capacity_rows kind cap =
    for sigma = 0 to horizon - 1 do
      let c = zero () in
      let nonzero = ref false in
      Array.iter
        (fun tc ->
          if tc.task.T.kind = kind then
            for k = 0 to tc.hi - tc.lo do
              let tau = tc.lo + k in
              if tau <= sigma && sigma < tau + tc.dur_slots then begin
                c.(tc.base + k) <-
                  c.(tc.base + k) +. float_of_int tc.task.T.capacity_req;
                nonzero := true
              end
            done)
        tasks;
      if !nonzero then push (row c Simplex.Le (float_of_int cap))
    done
  in
  capacity_rows T.Map_task inst.Instance.map_capacity;
  capacity_rows T.Reduce_task inst.Instance.reduce_capacity;
  (* 4. lateness links: completion of any task of job j within d_j unless
        N_j = 1 (big-M = horizon) *)
  Array.iteri
    (fun job_index (j : Instance.pending_job) ->
      let d_slot = j.Instance.job.T.deadline / quantum in
      Array.iter
        (fun tc ->
          if tc.job_index = job_index then begin
            let c = zero () in
            accumulate c tc (fun tau -> float_of_int (tau + tc.dur_slots));
            c.(n_base + job_index) <- -.float_of_int horizon;
            push (row c Simplex.Le (float_of_int d_slot))
          end)
        tasks;
      (* N_j <= 1 *)
      let c = zero () in
      c.(n_base + job_index) <- 1.;
      push (row c Simplex.Le 1.))
    jobs;
  let objective = Array.make n_vars 0. in
  Array.iteri (fun i _ -> objective.(n_base + i) <- 1.) jobs;
  {
    instance = inst;
    quantum;
    horizon;
    tasks;
    n_base;
    n_vars;
    prob = { Simplex.objective; rows = List.rev !rows };
  }

let solve ?(limits = Mip.no_limits) m =
  let integer = List.init m.n_vars Fun.id in
  let outcome = Mip.solve ~limits m.prob ~integer in
  let solution =
    Option.map
      (fun ((_, x) : float * float array) ->
        let starts = Hashtbl.create 64 in
        Array.iter
          (fun tc ->
            let chosen = ref tc.lo in
            for k = 0 to tc.hi - tc.lo do
              if x.(tc.base + k) > 0.5 then chosen := tc.lo + k
            done;
            Hashtbl.replace starts tc.task.T.task_id (!chosen * m.quantum))
          m.tasks;
        Sched.Solution.evaluate m.instance starts)
      outcome.Mip.best
  in
  (solution, outcome)

let suggested_horizon_slots (inst : Instance.t) ~quantum =
  (* greedy-seed makespan: usually contains an optimal schedule; for a
     guaranteed bound use max est + total work (much larger) *)
  let seed = Sched.Greedy.solve inst in
  let makespan =
    Hashtbl.fold
      (fun task_id start acc ->
        let dur =
          Array.fold_left
            (fun d (j : Instance.pending_job) ->
              let scan =
                Array.fold_left (fun d (t : T.task) ->
                    if t.T.task_id = task_id then t.T.exec_time else d)
              in
              scan (scan d j.Instance.pending_maps) j.Instance.pending_reduces)
            0 inst.Instance.jobs
        in
        max acc (start + dur))
      seed.Sched.Solution.starts 0
  in
  ceil_div makespan quantum + 1
