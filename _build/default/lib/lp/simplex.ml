type relation = Le | Eq | Ge

type constraint_row = {
  coeffs : float array;
  relation : relation;
  rhs : float;
}

type problem = { objective : float array; rows : constraint_row list }

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Internal tableau for phase 1/2.

   Layout: columns 0..n-1 original variables, then slack/surplus columns,
   then artificial columns, last column = RHS.  [basis.(i)] is the column
   basic in row i.  The objective row is kept separately as reduced costs
   plus current objective value. *)
type tableau = {
  mutable a : float array array; (* m rows, each of width ncols+1 *)
  m : int;
  ncols : int;
  basis : int array;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  for j = 0 to t.ncols do
    arow.(j) <- arow.(j) /. p
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let r = t.a.(i) in
      let f = r.(col) in
      if Float.abs f > eps then
        for j = 0 to t.ncols do
          r.(j) <- r.(j) -. (f *. arow.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Minimize the objective encoded in reduced-cost vector [z] (length ncols)
   with value cell [zval]; Bland's rule.  Returns `Optimal or `Unbounded.
   [allowed] masks columns that may enter (used to bar artificials in
   phase 2). *)
let optimize t z zval ~allowed =
  let rec loop () =
    (* entering: smallest index with negative reduced cost *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed.(j) && z.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* leaving: min ratio, ties by smallest basis column (Bland) *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > eps then begin
          let ratio = t.a.(i).(t.ncols) /. aij in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        let row = !best_row in
        pivot t ~row ~col;
        (* update objective row *)
        let f = z.(col) in
        if Float.abs f > eps then begin
          let arow = t.a.(row) in
          for j = 0 to t.ncols - 1 do
            z.(j) <- z.(j) -. (f *. arow.(j))
          done;
          zval := !zval -. (f *. arow.(t.ncols))
        end;
        loop ()
      end
    end
  in
  loop ()

let solve { objective; rows } =
  let n = Array.length objective in
  List.iter
    (fun r ->
      if Array.length r.coeffs <> n then
        invalid_arg "Simplex.solve: ragged constraint row")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* normalize to non-negative RHS *)
  let rows =
    Array.map
      (fun r ->
        if r.rhs < 0. then
          {
            coeffs = Array.map (fun c -> -.c) r.coeffs;
            relation = (match r.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.r.rhs;
          }
        else r)
      rows
  in
  (* column layout *)
  let n_slack =
    Array.fold_left
      (fun acc r -> match r.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_artificial =
    Array.fold_left
      (fun acc r -> match r.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let ncols = n + n_slack + n_artificial in
  let t =
    {
      a = Array.init m (fun _ -> Array.make (ncols + 1) 0.);
      m;
      ncols;
      basis = Array.make m (-1);
    }
  in
  let next_slack = ref n in
  let next_artificial = ref (n + n_slack) in
  let artificial_cols = ref [] in
  Array.iteri
    (fun i r ->
      Array.blit r.coeffs 0 t.a.(i) 0 n;
      t.a.(i).(ncols) <- r.rhs;
      (match r.relation with
      | Le ->
          t.a.(i).(!next_slack) <- 1.;
          t.basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          t.a.(i).(!next_slack) <- -1.;
          incr next_slack;
          t.a.(i).(!next_artificial) <- 1.;
          t.basis.(i) <- !next_artificial;
          artificial_cols := !next_artificial :: !artificial_cols;
          incr next_artificial
      | Eq ->
          t.a.(i).(!next_artificial) <- 1.;
          t.basis.(i) <- !next_artificial;
          artificial_cols := !next_artificial :: !artificial_cols;
          incr next_artificial))
    rows;
  let is_artificial = Array.make ncols false in
  List.iter (fun c -> is_artificial.(c) <- true) !artificial_cols;
  let all_allowed = Array.make ncols true in
  (* phase 1: minimize sum of artificials *)
  let outcome_phase1 =
    if !artificial_cols = [] then `Optimal
    else begin
      let z = Array.make ncols 0. in
      let zval = ref 0. in
      (* cost 1 on artificials; subtract basic rows to get reduced costs *)
      Array.iter (fun c -> if is_artificial.(c) then z.(c) <- 1.) (Array.init ncols Fun.id);
      for i = 0 to m - 1 do
        if is_artificial.(t.basis.(i)) then begin
          for j = 0 to ncols - 1 do
            z.(j) <- z.(j) -. t.a.(i).(j)
          done;
          zval := !zval -. t.a.(i).(ncols)
        end
      done;
      match optimize t z zval ~allowed:all_allowed with
      | `Unbounded -> `Unbounded (* cannot happen: phase-1 obj bounded below *)
      | `Optimal -> if Float.abs !zval > 1e-6 then `Infeasible else `Optimal
    end
  in
  match outcome_phase1 with
  | `Infeasible -> Infeasible
  | `Unbounded -> Unbounded
  | `Optimal -> (
      (* drive any artificial still basic at 0 out of the basis *)
      for i = 0 to m - 1 do
        if is_artificial.(t.basis.(i)) then begin
          let pivot_col = ref (-1) in
          for j = n + n_slack - 1 downto 0 do
            if Float.abs t.a.(i).(j) > eps then pivot_col := j
          done;
          if !pivot_col >= 0 then pivot t ~row:i ~col:!pivot_col
          (* else the row is all-zero: redundant constraint, harmless *)
        end
      done;
      (* phase 2: original objective, artificials barred *)
      let allowed = Array.init ncols (fun j -> not is_artificial.(j)) in
      let z = Array.make ncols 0. in
      Array.blit objective 0 z 0 n;
      let zval = ref 0. in
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        if b < ncols && Float.abs z.(b) > eps then begin
          let f = z.(b) in
          for j = 0 to ncols - 1 do
            z.(j) <- z.(j) -. (f *. t.a.(i).(j))
          done;
          zval := !zval -. (f *. t.a.(i).(ncols))
        end
      done;
      match optimize t z zval ~allowed with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let solution = Array.make n 0. in
          for i = 0 to m - 1 do
            if t.basis.(i) < n then solution.(t.basis.(i)) <- t.a.(i).(ncols)
          done;
          let objective =
            Array.fold_left ( +. ) 0.
              (Array.mapi (fun j c -> c *. solution.(j)) objective)
          in
          Optimal { objective; solution })

let feasible { objective = _; rows } x =
  List.for_all
    (fun r ->
      let lhs =
        Array.fold_left ( +. ) 0. (Array.mapi (fun j c -> c *. x.(j)) r.coeffs)
      in
      match r.relation with
      | Le -> lhs <= r.rhs +. 1e-6
      | Ge -> lhs >= r.rhs -. 1e-6
      | Eq -> Float.abs (lhs -. r.rhs) <= 1e-6)
    rows
  && Array.for_all (fun v -> v >= -1e-6) x
