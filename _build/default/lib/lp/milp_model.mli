(** Time-indexed MILP formulation of the matchmaking-and-scheduling problem —
    the LP-based alternative the paper compares CP against (§I, citing the
    authors' earlier CP-vs-LP study [12] and the LP formulation of [18]).

    Unlike the CP model (integer start variables, no time discretization —
    an advantage §IV explicitly credits to CP Optimizer), an LP/MILP
    formulation must discretize time: binary variable x_{t,τ} means "task t
    starts at slot τ".  Constraints: each task starts exactly once at or
    after its job's earliest start; per-slot pool capacities; reduces start
    after every map of their job completes; a job finishing after its
    deadline forces its binary N_j.  Objective: minimize Σ N_j.

    The variable count is Σ_t O(horizon/quantum), which is why this
    formulation only works for small batches — exactly the scaling contrast
    with CP that motivated the paper.  Solved with the in-repo
    {!Simplex}/{!Mip}. *)

type model

val build :
  Sched.Instance.t -> quantum:int -> horizon_slots:int -> model
(** Discretize with [quantum] ms per slot over [horizon_slots] slots.  The
    instance must be a fresh closed batch (no frozen tasks).  Execution
    times and earliest starts are rounded up, deadlines down — the MILP is
    conservative w.r.t. the exact-time CP model unless [quantum] divides all
    times (tests use such instances for exact cross-checks).
    @raise Invalid_argument on frozen tasks or a horizon too short for some
    task. *)

val variables : model -> int
val problem : model -> Simplex.problem

val solve :
  ?limits:Mip.limits -> model -> (Sched.Solution.t option * Mip.outcome)
(** Run branch-and-bound and decode the incumbent into task start times (in
    ms, on the combined resource), evaluated against the original instance. *)

val suggested_horizon_slots : Sched.Instance.t -> quantum:int -> int
(** Greedy-seed makespan rounded up — a horizon that provably contains an
    optimal schedule. *)
