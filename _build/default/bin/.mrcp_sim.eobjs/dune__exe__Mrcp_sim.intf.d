bin/mrcp_sim.mli:
