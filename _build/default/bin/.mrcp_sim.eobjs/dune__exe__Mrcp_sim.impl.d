bin/mrcp_sim.ml: Arg Baselines Cmd Cmdliner Cp Expkit Format Logs Mapreduce Mrcp Opensim Printf Report Sched Term
