bin/experiments.mli:
