bin/experiments.ml: Arg Cmd Cmdliner Expkit Filename List Printf Report String Term Unix
