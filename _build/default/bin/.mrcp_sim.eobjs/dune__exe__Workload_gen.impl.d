bin/workload_gen.ml: Arg Array Cmd Cmdliner List Mapreduce Printf Term
