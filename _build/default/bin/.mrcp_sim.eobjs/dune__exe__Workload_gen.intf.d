bin/workload_gen.mli:
