(* Workload generator CLI: produce Table-3 synthetic or Table-4 Facebook
   job streams as CSV traces (see Mapreduce.Trace for the format).

   Examples:
     dune exec bin/workload_gen.exe -- --kind synthetic --jobs 100 \
       --lambda 0.01 --out trace.csv
     dune exec bin/workload_gen.exe -- --kind facebook --jobs 1000 \
       --lambda 0.0003 --seed 7 --out fb.csv
     dune exec bin/workload_gen.exe -- --summarize trace.csv *)

open Cmdliner

type kind = Synthetic | Facebook

let summarize path =
  match Mapreduce.Trace.load ~path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok jobs ->
      let n = List.length jobs in
      let tasks =
        List.fold_left (fun acc j -> acc + Mapreduce.Types.task_count j) 0 jobs
      in
      let maps =
        List.fold_left
          (fun acc (j : Mapreduce.Types.job) ->
            acc + Array.length j.Mapreduce.Types.map_tasks)
          0 jobs
      in
      let horizon =
        List.fold_left
          (fun acc (j : Mapreduce.Types.job) ->
            max acc j.Mapreduce.Types.arrival)
          0 jobs
      in
      let ar =
        List.length
          (List.filter
             (fun (j : Mapreduce.Types.job) ->
               j.Mapreduce.Types.earliest_start > j.Mapreduce.Types.arrival)
             jobs)
      in
      Printf.printf
        "%s: %d jobs, %d tasks (%d map / %d reduce), %d advance \
         reservations, arrivals span %.1fs\n"
        path n tasks maps (tasks - maps) ar
        (float_of_int horizon /. 1000.);
      0

let run kind jobs lambda e_max p s_max d_m m map_cap reduce_cap seed out
    summarize_path =
  match summarize_path with
  | Some path -> summarize path
  | None ->
      let stream =
        match kind with
        | Synthetic ->
            let cluster =
              Mapreduce.Types.uniform_cluster ~m ~map_capacity:map_cap
                ~reduce_capacity:reduce_cap
            in
            Mapreduce.Synthetic.generate
              {
                Mapreduce.Synthetic.default with
                Mapreduce.Synthetic.n_jobs = jobs;
                e_max;
                p;
                s_max;
                d_m;
                lambda;
              }
              ~cluster ~seed
        | Facebook ->
            Mapreduce.Facebook.generate
              {
                Mapreduce.Facebook.default with
                Mapreduce.Facebook.n_jobs = jobs;
                lambda;
              }
              ~cluster:(Mapreduce.Facebook.cluster ())
              ~seed
      in
      (match out with
      | Some path ->
          Mapreduce.Trace.save ~path stream;
          Printf.printf "wrote %d jobs to %s\n" (List.length stream) path
      | None -> print_string (Mapreduce.Trace.to_csv stream));
      0

let kind_conv = Arg.enum [ ("synthetic", Synthetic); ("facebook", Facebook) ]

let term =
  Term.(
    const run
    $ Arg.(value & opt kind_conv Synthetic & info [ "kind" ] ~doc:"synthetic or facebook.")
    $ Arg.(value & opt int 100 & info [ "jobs" ] ~doc:"Number of jobs.")
    $ Arg.(value & opt float 0.01 & info [ "lambda" ] ~doc:"Arrival rate, jobs/s.")
    $ Arg.(value & opt int 50 & info [ "e-max" ] ~doc:"Map-task time bound, s.")
    $ Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"P(s_j > arrival).")
    $ Arg.(value & opt int 50_000 & info [ "s-max" ] ~doc:"AR offset bound, s.")
    $ Arg.(value & opt float 5.0 & info [ "d-m" ] ~doc:"Deadline multiplier bound.")
    $ Arg.(value & opt int 50 & info [ "m" ] ~doc:"Resources (for TE).")
    $ Arg.(value & opt int 2 & info [ "map-cap" ] ~doc:"Map slots per resource.")
    $ Arg.(value & opt int 2 & info [ "reduce-cap" ] ~doc:"Reduce slots per resource.")
    $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
    $ Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Output CSV path (default stdout).")
    $ Arg.(value & opt (some string) None
           & info [ "summarize" ] ~doc:"Summarize an existing trace instead of generating."))

let cmd =
  Cmd.v (Cmd.info "workload_gen" ~doc:"Generate or inspect workload traces") term

let () = exit (Cmd.eval' cmd)
