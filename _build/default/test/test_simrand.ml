(* Tests for the PRNG and the distribution samplers: determinism, stream
   independence, range/moment checks against analytic values. *)

let rng seed = Simrand.Rng.create seed

let test_determinism () =
  let a = rng 42 and b = rng 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Simrand.Rng.next_int64 a)
      (Simrand.Rng.next_int64 b)
  done

let test_different_seeds_differ () =
  let a = rng 1 and b = rng 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Simrand.Rng.next_int64 a = Simrand.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  let g = rng 7 in
  let a = Simrand.Rng.split g in
  let b = Simrand.Rng.split g in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Simrand.Rng.next_int64 a = Simrand.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_copy_preserves_state () =
  let g = rng 11 in
  ignore (Simrand.Rng.next_int64 g);
  let c = Simrand.Rng.copy g in
  Alcotest.(check int64)
    "copy continues identically" (Simrand.Rng.next_int64 g)
    (Simrand.Rng.next_int64 c)

let test_state_roundtrip () =
  let g = rng 13 in
  ignore (Simrand.Rng.next_int64 g);
  let saved = Simrand.Rng.state g in
  let g' = Simrand.Rng.of_state saved in
  Alcotest.(check int64) "resume from state" (Simrand.Rng.next_int64 g)
    (Simrand.Rng.next_int64 g')

let test_int_bounds () =
  let g = rng 3 in
  for _ = 1 to 10_000 do
    let v = Simrand.Rng.int g 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_rejects_nonpositive () =
  let g = rng 3 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Simrand.Rng.int g 0))

let test_int_uniformity () =
  let g = rng 5 in
  let n = 60_000 and k = 6 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let v = Simrand.Rng.int g k in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int k in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 5% of uniform" true (dev < 0.05))
    counts

let mean_of f n g =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f g
  done;
  !acc /. float_of_int n

let test_unit_float_range_and_mean () =
  let g = rng 17 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let u = Simrand.Rng.unit_float g in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.);
    acc := !acc +. u
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_exponential_mean () =
  let g = rng 19 in
  let rate = 0.02 in
  let mean = mean_of (fun g -> Simrand.Dist.exponential g ~rate) 50_000 g in
  Alcotest.(check bool) "mean near 1/rate" true
    (Float.abs (mean -. 50.) /. 50. < 0.03)

let test_discrete_uniform_range () =
  let g = rng 23 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 5_000 do
    let v = Simrand.Dist.discrete_uniform g ~lo:1 ~hi:10 in
    Alcotest.(check bool) "in [1,10]" true (v >= 1 && v <= 10);
    if v = 1 then seen_lo := true;
    if v = 10 then seen_hi := true
  done;
  Alcotest.(check bool) "both endpoints reachable" true (!seen_lo && !seen_hi)

let test_bernoulli_mean () =
  let g = rng 29 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Simrand.Dist.bernoulli g ~p:0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (Float.abs (p -. 0.3) < 0.01)

let test_bernoulli_degenerate () =
  let g = rng 31 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false
      (Simrand.Dist.bernoulli g ~p:0.);
    Alcotest.(check bool) "p=1 always true" true
      (Simrand.Dist.bernoulli g ~p:1.)
  done

let test_normal_moments () =
  let g = rng 37 in
  let n = 100_000 in
  let acc = ref 0. and acc2 = ref 0. in
  for _ = 1 to n do
    let x = Simrand.Dist.normal g ~mu:5. ~sigma:2. in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.) < 0.05);
  Alcotest.(check bool) "variance near 4" true (Float.abs (var -. 4.) < 0.15)

let test_lognormal_mean_matches_analytic () =
  (* The paper's map-task distribution: LN(9.9511, 1.6764) in ms. *)
  let g = rng 41 in
  let mu = 9.9511 and sigma2 = 1.6764 in
  let analytic = Simrand.Dist.lognormal_mean ~mu ~sigma2 in
  let n = 400_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Simrand.Dist.lognormal g ~mu ~sigma2
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "empirical mean within 5% of analytic" true
    (Float.abs (mean -. analytic) /. analytic < 0.05)

let test_poisson_mean () =
  let g = rng 43 in
  let mean = mean_of (fun g -> float_of_int (Simrand.Dist.poisson g ~mean:4.2)) 50_000 g in
  Alcotest.(check bool) "mean near 4.2" true (Float.abs (mean -. 4.2) < 0.1)

let test_categorical_frequencies () =
  let g = rng 47 in
  let sampler = Simrand.Dist.categorical ~weights:[| 1.; 3.; 6. |] in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Simrand.Dist.categorical_draw sampler g in
    counts.(i) <- counts.(i) + 1
  done;
  let freq i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "10%" true (Float.abs (freq 0 -. 0.1) < 0.01);
  Alcotest.(check bool) "30%" true (Float.abs (freq 1 -. 0.3) < 0.015);
  Alcotest.(check bool) "60%" true (Float.abs (freq 2 -. 0.6) < 0.015)

let test_categorical_rejects_bad_weights () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dist.categorical: negative weight") (fun () ->
      ignore (Simrand.Dist.categorical ~weights:[| 1.; -1. |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Dist.categorical: zero total weight") (fun () ->
      ignore (Simrand.Dist.categorical ~weights:[| 0.; 0. |]))

(* qcheck: Rng.int never exceeds its bound for arbitrary bounds/seeds *)
let prop_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int in range"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = rng seed in
      let v = Simrand.Rng.int g bound in
      v >= 0 && v < bound)

let prop_int_incl_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int_incl in range"
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let g = rng seed in
      let v = Simrand.Rng.int_incl g lo (lo + width) in
      v >= lo && v <= lo + width)

let prop_exponential_positive =
  QCheck.Test.make ~count:500 ~name:"exponential > 0"
    QCheck.(pair small_int (float_range 0.0001 10.))
    (fun (seed, rate) ->
      let g = rng seed in
      Simrand.Dist.exponential g ~rate >= 0.)

let () =
  Alcotest.run "simrand"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "copy" `Quick test_copy_preserves_state;
          Alcotest.test_case "state roundtrip" `Quick test_state_roundtrip;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick
            test_int_rejects_nonpositive;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "unit_float" `Slow test_unit_float_range_and_mean;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "discrete uniform" `Quick
            test_discrete_uniform_range;
          Alcotest.test_case "bernoulli mean" `Slow test_bernoulli_mean;
          Alcotest.test_case "bernoulli degenerate" `Quick
            test_bernoulli_degenerate;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "lognormal analytic mean" `Slow
            test_lognormal_mean_matches_analytic;
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "categorical frequencies" `Slow
            test_categorical_frequencies;
          Alcotest.test_case "categorical bad weights" `Quick
            test_categorical_rejects_bad_weights;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_in_range; prop_int_incl_in_range; prop_exponential_positive ]
      );
    ]
