(* Tests for table/CSV rendering and the Gantt chart. *)

module T = Mapreduce.Types

let test_table_render () =
  let s =
    Report.Table.render ~title:"t" ~headers:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check string) "title" "t" (List.nth lines 0);
  Alcotest.(check string) "header" "a    bb" (List.nth lines 1);
  Alcotest.(check string) "rule" "---  --" (List.nth lines 2);
  Alcotest.(check string) "row" "333  4 " (List.nth lines 4)

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged rows")
    (fun () ->
      ignore (Report.Table.render ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ] ()))

let test_csv_escaping () =
  let s =
    Report.Table.csv ~headers:[ "x"; "y" ]
      ~rows:[ [ "a,b"; "say \"hi\"" ]; [ "plain"; "3" ] ]
  in
  Alcotest.(check string) "escaped"
    "x,y\n\"a,b\",\"say \"\"hi\"\"\"\nplain,3\n" s

let test_fmt_helpers () =
  Alcotest.(check string) "pct" "3.46%" (Report.Table.fmt_pct 0.0346);
  Alcotest.(check string) "seconds big" "0.57s" (Report.Table.fmt_seconds 0.57);
  Alcotest.(check string) "seconds small" "0.0030s"
    (Report.Table.fmt_seconds 0.003);
  Alcotest.(check string) "seconds tiny" "0.000300s"
    (Report.Table.fmt_seconds 0.0003);
  Alcotest.(check string) "zero" "0s" (Report.Table.fmt_seconds 0.)

let test_write_file () =
  let path = Filename.temp_file "mrcp" ".csv" in
  Report.Table.write_file ~path "hello\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "hello" line

let dispatch ~task_id ~job ~kind ~slot ~start ~e =
  {
    Sched.Dispatch.task =
      { T.task_id; job_id = job; kind; exec_time = e; capacity_req = 1 };
    resource_id = 0;
    slot;
    start;
  }

let test_gantt_empty () =
  Alcotest.(check string) "empty" "(empty plan)\n" (Report.Gantt.render [])

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_gantt_draws_tasks () =
  let ds =
    [
      dispatch ~task_id:1 ~job:0 ~kind:T.Map_task ~slot:0 ~start:0 ~e:50;
      dispatch ~task_id:2 ~job:1 ~kind:T.Map_task ~slot:0 ~start:50 ~e:50;
      dispatch ~task_id:3 ~job:0 ~kind:T.Reduce_task ~slot:0 ~start:50 ~e:50;
    ]
  in
  let s = Report.Gantt.render ~width:10 ds in
  (* map slot row: first half 0s, second half 1s *)
  Alcotest.(check bool) "map section" true (contains s "map slots:");
  Alcotest.(check bool) "job 0 drawn" true (contains s "00000");
  Alcotest.(check bool) "job 1 drawn" true (contains s "11111");
  Alcotest.(check bool) "reduce section" true (contains s "reduce slots:")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged_rejected;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "fmt helpers" `Quick test_fmt_helpers;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "empty" `Quick test_gantt_empty;
          Alcotest.test_case "draws tasks" `Quick test_gantt_draws_tasks;
        ] );
    ]
