test/test_lp.ml: Alcotest Array Cp Float Fun List Lp Mapreduce QCheck QCheck_alcotest Sched Simrand
