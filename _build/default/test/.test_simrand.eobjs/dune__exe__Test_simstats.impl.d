test/test_simstats.ml: Alcotest Float Fun List QCheck QCheck_alcotest Simstats
