test/test_sched.ml: Alcotest Array Hashtbl List Mapreduce QCheck QCheck_alcotest Sched String
