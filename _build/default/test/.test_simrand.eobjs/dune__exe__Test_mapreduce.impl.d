test/test_mapreduce.ml: Alcotest Array Filename Float List Mapreduce QCheck QCheck_alcotest Result Simrand Sys
