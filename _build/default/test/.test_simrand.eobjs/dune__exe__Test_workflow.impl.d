test/test_workflow.ml: Alcotest Array Cp Hashtbl List Mapreduce Printf QCheck QCheck_alcotest Result Sched Simrand String Workflow
