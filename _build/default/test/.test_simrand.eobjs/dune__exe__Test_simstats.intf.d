test/test_simstats.mli:
