test/test_baselines.ml: Alcotest Array Baselines List Mapreduce Sched
