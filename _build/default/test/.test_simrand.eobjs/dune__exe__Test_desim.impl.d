test/test_desim.ml: Alcotest Desim List Option QCheck QCheck_alcotest Simrand
