test/test_mapreduce.mli:
