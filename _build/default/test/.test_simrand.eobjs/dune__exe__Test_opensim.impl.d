test/test_opensim.ml: Alcotest Array Baselines Cp Float List Mapreduce Mrcp Opensim QCheck QCheck_alcotest Sched
