test/test_opensim.mli:
