test/test_simrand.mli:
