test/test_cp.ml: Alcotest Array Cp Format Fun Hashtbl List Mapreduce QCheck QCheck_alcotest Sched String
