test/test_simrand.ml: Alcotest Array Float List QCheck QCheck_alcotest Simrand
