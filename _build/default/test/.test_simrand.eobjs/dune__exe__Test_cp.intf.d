test/test_cp.mli:
