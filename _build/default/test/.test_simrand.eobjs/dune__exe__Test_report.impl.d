test/test_report.ml: Alcotest Filename List Mapreduce Report Sched String Sys
