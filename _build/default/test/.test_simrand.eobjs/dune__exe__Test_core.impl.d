test/test_core.ml: Alcotest Array Hashtbl List Mapreduce Mrcp Sched
