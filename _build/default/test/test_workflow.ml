(* Tests for the DAG-workflow extension (paper §VII future work): DAG
   validation/topology, the generalized greedy, the CP model, and agreement
   with the MapReduce pipeline on two-stage chains. *)

module T = Mapreduce.Types

let task_counter = ref 0

let task ?(kind = T.Map_task) ?(q = 1) ~job e =
  incr task_counter;
  { T.task_id = !task_counter; job_id = job; kind; exec_time = e; capacity_req = q }

let tasks ?(kind = T.Map_task) ~job es =
  Array.of_list (List.map (task ~kind ~job) es)

(* diamond:  0 -> 1,2 -> 3 *)
let diamond ?(id = 0) ?(est = 0) ~deadline () =
  {
    Workflow.Dag.id;
    earliest_start = est;
    deadline;
    stages =
      [|
        { Workflow.Dag.stage_id = 0; pool = T.Map_task; tasks = tasks ~job:id [ 10; 10 ] };
        { Workflow.Dag.stage_id = 1; pool = T.Map_task; tasks = tasks ~job:id [ 20 ] };
        { Workflow.Dag.stage_id = 2; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 15 ] };
        { Workflow.Dag.stage_id = 3; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 5; 5 ] };
      |];
    precedences = [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  }

(* --- dag ---------------------------------------------------------------- *)

let test_validate_ok () =
  Alcotest.(check bool) "diamond valid" true
    (Workflow.Dag.validate (diamond ~deadline:1000 ()) = Ok ())

let test_validate_cycle () =
  let w = { (diamond ~deadline:1000 ()) with Workflow.Dag.precedences = [ (0, 1); (1, 0) ] } in
  (match Workflow.Dag.validate w with
  | Error msg -> Alcotest.(check string) "cycle reported" "precedence cycle" msg
  | Ok () -> Alcotest.fail "cycle not caught")

let test_validate_unknown_stage () =
  let w = { (diamond ~deadline:1000 ()) with Workflow.Dag.precedences = [ (0, 9) ] } in
  Alcotest.(check bool) "unknown stage rejected" true
    (Result.is_error (Workflow.Dag.validate w))

let test_validate_self_edge () =
  let w = { (diamond ~deadline:1000 ()) with Workflow.Dag.precedences = [ (1, 1) ] } in
  Alcotest.(check bool) "self edge rejected" true
    (Result.is_error (Workflow.Dag.validate w))

let test_topological_order () =
  let w = diamond ~deadline:1000 () in
  let order = Workflow.Dag.topological_order w in
  let pos id =
    let p = ref (-1) in
    Array.iteri (fun i x -> if x = id then p := i) order;
    !p
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d before %d" a b)
        true
        (pos a < pos b))
    w.Workflow.Dag.precedences

let test_critical_path () =
  (* diamond spans: s0=10, s1=20, s2=15, s3=5; longest chain 10+20+5 = 35 *)
  Alcotest.(check int) "critical path" 35
    (Workflow.Dag.critical_path (diamond ~deadline:1000 ()))

let test_of_mapreduce_job () =
  let job =
    {
      T.id = 7;
      arrival = 0;
      earliest_start = 5;
      deadline = 500;
      map_tasks = tasks ~job:7 [ 10; 20 ];
      reduce_tasks = tasks ~kind:T.Reduce_task ~job:7 [ 30 ];
    }
  in
  let w = Workflow.Dag.of_mapreduce_job job in
  Alcotest.(check bool) "valid" true (Workflow.Dag.validate w = Ok ());
  Alcotest.(check int) "two stages" 2 (Array.length w.Workflow.Dag.stages);
  Alcotest.(check (list (pair int int))) "chain edge" [ (0, 1) ]
    w.Workflow.Dag.precedences;
  (* map-only job: single stage, no edges *)
  let mo = Workflow.Dag.of_mapreduce_job { job with T.reduce_tasks = [||] } in
  Alcotest.(check int) "one stage" 1 (Array.length mo.Workflow.Dag.stages);
  Alcotest.(check (list (pair int int))) "no edges" [] mo.Workflow.Dag.precedences

let test_chain_constructor () =
  let w =
    Workflow.Dag.chain ~id:1 ~earliest_start:0 ~deadline:100
      ~stages:
        [
          (T.Map_task, tasks ~job:1 [ 10 ]);
          (T.Map_task, tasks ~job:1 [ 10 ]);
          (T.Reduce_task, tasks ~kind:T.Reduce_task ~job:1 [ 10 ]);
        ]
  in
  Alcotest.(check bool) "valid" true (Workflow.Dag.validate w = Ok ());
  Alcotest.(check (list (pair int int))) "linear edges" [ (0, 1); (1, 2) ]
    w.Workflow.Dag.precedences;
  Alcotest.(check int) "critical path 30" 30 (Workflow.Dag.critical_path w)

(* --- greedy + solve ------------------------------------------------------ *)

let inst ?(map_cap = 2) ?(reduce_cap = 2) jobs =
  { Workflow.Solve.map_capacity = map_cap; reduce_capacity = reduce_cap;
    jobs = Array.of_list jobs }

let check_feasible i sol =
  match Workflow.Solve.feasibility_errors i sol with
  | [] -> ()
  | errs -> Alcotest.failf "infeasible: %s" (String.concat "; " errs)

let test_greedy_diamond () =
  let i = inst [ diamond ~deadline:1000 () ] in
  let sol = Workflow.Solve.greedy i in
  check_feasible i sol;
  Alcotest.(check int) "on time" 0 sol.Workflow.Solve.late_jobs

let test_greedy_respects_precedence_order () =
  (* stage 3's tasks must start at >= 35 (critical path through 0 -> 1) *)
  let w = diamond ~deadline:1000 () in
  let i = inst [ w ] in
  let sol = Workflow.Solve.greedy i in
  let s3 = Workflow.Dag.stage w 3 in
  Array.iter
    (fun (t : T.task) ->
      Alcotest.(check bool) "after both branches" true
        (Hashtbl.find sol.Workflow.Solve.starts t.T.task_id >= 30))
    s3.Workflow.Dag.tasks

let test_greedy_est () =
  let i = inst [ diamond ~est:500 ~deadline:5000 () ] in
  let sol = Workflow.Solve.greedy i in
  check_feasible i sol;
  Hashtbl.iter
    (fun _ start -> Alcotest.(check bool) "after est" true (start >= 500))
    sol.Workflow.Solve.starts

let test_solve_doomed () =
  (* deadline below the critical path: provably late *)
  let i = inst [ diamond ~deadline:30 () ] in
  let sol, stats = Workflow.Solve.solve i in
  check_feasible i sol;
  Alcotest.(check int) "late" 1 sol.Workflow.Solve.late_jobs;
  Alcotest.(check int) "lower bound" 1 stats.Workflow.Solve.lower_bound;
  Alcotest.(check bool) "proved" true stats.Workflow.Solve.proved_optimal

let test_solve_contended_pair () =
  (* two single-stage jobs on one map slot, only one can be on time; search
     must prove 1 is optimal *)
  let single id deadline =
    Workflow.Dag.chain ~id ~earliest_start:0 ~deadline
      ~stages:[ (T.Map_task, tasks ~job:id [ 10 ]) ]
  in
  let i = inst ~map_cap:1 [ single 0 15; single 1 15 ] in
  let sol, stats = Workflow.Solve.solve i in
  check_feasible i sol;
  Alcotest.(check int) "one late" 1 sol.Workflow.Solve.late_jobs;
  Alcotest.(check bool) "proved optimal" true stats.Workflow.Solve.proved_optimal

let test_solve_matches_mapreduce_pipeline () =
  (* two-stage chains solved by the workflow solver agree (in late-job count)
     with the MapReduce CP solver on the converted instance *)
  let rng = Simrand.Rng.create 99 in
  for _ = 1 to 25 do
    let n = 1 + Simrand.Rng.int rng 4 in
    let jobs =
      List.init n (fun id ->
          let maps = List.init (1 + Simrand.Rng.int rng 3) (fun _ -> 1 + Simrand.Rng.int rng 30) in
          let reduces = List.init (Simrand.Rng.int rng 3) (fun _ -> 1 + Simrand.Rng.int rng 30) in
          let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
          let est = Simrand.Rng.int rng 40 in
          let deadline = est + (total / 2) + Simrand.Rng.int rng 80 in
          {
            T.id;
            arrival = 0;
            earliest_start = est;
            deadline;
            map_tasks = tasks ~job:id maps;
            reduce_tasks = tasks ~kind:T.Reduce_task ~job:id reduces;
          })
    in
    let mr_inst =
      Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:2 jobs
    in
    let mr_sol, _ = Cp.Solver.solve mr_inst in
    let wf_inst = inst (List.map Workflow.Dag.of_mapreduce_job jobs) in
    let wf_sol, _ = Workflow.Solve.solve wf_inst in
    check_feasible wf_inst wf_sol;
    Alcotest.(check int) "same optimal late count"
      mr_sol.Sched.Solution.late_jobs wf_sol.Workflow.Solve.late_jobs
  done

let test_dag_beats_chain_makespan () =
  (* parallel branches must overlap: diamond completes well before the
     serialized sum of stage spans *)
  let i = inst ~map_cap:4 ~reduce_cap:4 [ diamond ~deadline:10_000 () ] in
  let sol = Workflow.Solve.greedy i in
  let w = i.Workflow.Solve.jobs.(0) in
  let completion =
    Workflow.Dag.all_tasks w
    |> List.fold_left
         (fun acc (t : T.task) ->
           max acc (Hashtbl.find sol.Workflow.Solve.starts t.T.task_id + t.T.exec_time))
         0
  in
  (* serial stage spans: 10+20+15+5 = 50; with branch overlap: 35 *)
  Alcotest.(check int) "branches overlap" 35 completion

(* property: random DAGs — greedy always feasible, solve never worse *)
let gen_random_dag =
  QCheck.Gen.(
    let* id = int_range 0 5 in
    let* n_stages = int_range 1 5 in
    let* pools = list_repeat n_stages bool in
    let* sizes = list_repeat n_stages (int_range 1 3) in
    let* durations = list_repeat n_stages (int_range 1 30) in
    let stages =
      List.mapi
        (fun i (pool, (size, d)) ->
          {
            Workflow.Dag.stage_id = i;
            pool = (if pool then T.Map_task else T.Reduce_task);
            tasks =
              Array.of_list (List.init size (fun k -> task ~job:id (d + k)));
          })
        (List.combine pools (List.combine sizes durations))
    in
    (* random forward edges only: guaranteed acyclic *)
    let* edge_flags =
      list_repeat (n_stages * n_stages) (int_range 0 3)
    in
    let precedences =
      List.concat
        (List.mapi
           (fun idx flag ->
             let a = idx / n_stages and b = idx mod n_stages in
             if a < b && flag = 0 then [ (a, b) ] else [])
           edge_flags)
    in
    let* est = int_range 0 50 in
    let* slack = int_range 0 150 in
    let w =
      {
        Workflow.Dag.id;
        earliest_start = est;
        deadline = 0;
        stages = Array.of_list stages;
        precedences;
      }
    in
    let deadline = est + Workflow.Dag.critical_path w + slack - 50 in
    return { w with Workflow.Dag.deadline = max est deadline })

let prop_random_dags =
  QCheck.Test.make ~count:100 ~name:"random DAGs: greedy feasible, solve <= greedy"
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* ws = list_repeat n gen_random_dag in
         let ws = List.mapi (fun i w -> { w with Workflow.Dag.id = i }) ws in
         return (inst ws)))
    (fun i ->
      Array.for_all (fun w -> Workflow.Dag.validate w = Ok ()) i.Workflow.Solve.jobs
      &&
      let g = Workflow.Solve.greedy i in
      Workflow.Solve.feasibility_errors i g = []
      &&
      let sol, stats = Workflow.Solve.solve ~limits:{ Cp.Search.no_limits with Cp.Search.fail_limit = 5000 } i in
      Workflow.Solve.feasibility_errors i sol = []
      && sol.Workflow.Solve.late_jobs <= g.Workflow.Solve.late_jobs
      && sol.Workflow.Solve.late_jobs >= stats.Workflow.Solve.lower_bound)

let () =
  Alcotest.run "workflow"
    [
      ( "dag",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "cycle" `Quick test_validate_cycle;
          Alcotest.test_case "unknown stage" `Quick test_validate_unknown_stage;
          Alcotest.test_case "self edge" `Quick test_validate_self_edge;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "of_mapreduce_job" `Quick test_of_mapreduce_job;
          Alcotest.test_case "chain" `Quick test_chain_constructor;
        ] );
      ( "solve",
        [
          Alcotest.test_case "greedy diamond" `Quick test_greedy_diamond;
          Alcotest.test_case "greedy precedence" `Quick
            test_greedy_respects_precedence_order;
          Alcotest.test_case "greedy est" `Quick test_greedy_est;
          Alcotest.test_case "doomed" `Quick test_solve_doomed;
          Alcotest.test_case "contended pair" `Quick test_solve_contended_pair;
          Alcotest.test_case "matches mapreduce solver" `Slow
            test_solve_matches_mapreduce_pipeline;
          Alcotest.test_case "branch overlap" `Quick
            test_dag_beats_chain_makespan;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_dags ]);
    ]
