(* Tests for the LP/MILP comparator: simplex on known LPs, branch-and-bound
   on known IPs, and the time-indexed scheduling MILP cross-checked against
   the CP solver on exact-quantum instances. *)

module S = Lp.Simplex

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

let row coeffs relation rhs = { S.coeffs; relation; rhs }

(* --- simplex ------------------------------------------------------------- *)

(* classic: max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  -> x=2,y=6, obj 36 *)
let test_simplex_dantzig () =
  let p =
    {
      S.objective = [| -3.; -5. |];
      rows =
        [
          row [| 1.; 0. |] S.Le 4.;
          row [| 0.; 2. |] S.Le 12.;
          row [| 3.; 2. |] S.Le 18.;
        ];
    }
  in
  match S.solve p with
  | S.Optimal { objective; solution } ->
      Alcotest.(check bool) "objective -36" true (feq objective (-36.));
      Alcotest.(check bool) "x=2" true (feq solution.(0) 2.);
      Alcotest.(check bool) "y=6" true (feq solution.(1) 6.);
      Alcotest.(check bool) "feasible point" true (S.feasible p solution)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality_and_ge () =
  (* min x + y s.t. x + y = 10, x >= 3  -> obj 10 *)
  let p =
    {
      S.objective = [| 1.; 1. |];
      rows = [ row [| 1.; 1. |] S.Eq 10.; row [| 1.; 0. |] S.Ge 3. ];
    }
  in
  match S.solve p with
  | S.Optimal { objective; solution } ->
      Alcotest.(check bool) "objective 10" true (feq objective 10.);
      Alcotest.(check bool) "x >= 3" true (solution.(0) >= 3. -. 1e-6);
      Alcotest.(check bool) "feasible" true (S.feasible p solution)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let p =
    {
      S.objective = [| 1. |];
      rows = [ row [| 1. |] S.Le 1.; row [| 1. |] S.Ge 2. ];
    }
  in
  Alcotest.(check bool) "infeasible" true (S.solve p = S.Infeasible)

let test_simplex_unbounded () =
  (* min -x with only x >= 0 and x >= 1 *)
  let p = { S.objective = [| -1. |]; rows = [ row [| 1. |] S.Ge 1. ] } in
  Alcotest.(check bool) "unbounded" true (S.solve p = S.Unbounded)

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -5  (i.e. x >= 5) *)
  let p = { S.objective = [| 1. |]; rows = [ row [| -1. |] S.Le (-5.) ] } in
  match S.solve p with
  | S.Optimal { objective; _ } ->
      Alcotest.(check bool) "x = 5" true (feq objective 5.)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate_no_cycle () =
  (* a classic degenerate LP; Bland's rule must terminate *)
  let p =
    {
      S.objective = [| -0.75; 150.; -0.02; 6. |];
      rows =
        [
          row [| 0.25; -60.; -0.04; 9. |] S.Le 0.;
          row [| 0.5; -90.; -0.02; 3. |] S.Le 0.;
          row [| 0.; 0.; 1.; 0. |] S.Le 1.;
        ];
    }
  in
  match S.solve p with
  | S.Optimal { objective; solution } ->
      Alcotest.(check bool) "Beale optimum -0.05" true (feq objective (-0.05));
      Alcotest.(check bool) "feasible" true (S.feasible p solution)
  | _ -> Alcotest.fail "expected optimal"

(* random LPs: any Optimal answer must be a feasible point *)
let prop_simplex_solution_feasible =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* m = int_range 1 6 in
      let* obj = list_repeat n (float_range (-5.) 5.) in
      let* rows =
        list_repeat m
          (pair (list_repeat n (float_range (-3.) 3.)) (float_range 0. 10.))
      in
      return
        {
          S.objective = Array.of_list obj;
          rows =
            List.map
              (fun (cs, rhs) -> row (Array.of_list cs) S.Le rhs)
              rows;
        })
  in
  QCheck.Test.make ~count:300 ~name:"simplex optimal point is feasible"
    (QCheck.make gen) (fun p ->
      match S.solve p with
      | S.Optimal { solution; _ } -> S.feasible p solution
      | S.Infeasible -> false (* all-Le with rhs >= 0 admits x = 0 *)
      | S.Unbounded -> true)

(* --- mip ----------------------------------------------------------------- *)

let test_mip_knapsack () =
  (* max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14, binaries ->
     optimum 21 at a=0 b=1 c=1 d=1 *)
  let p =
    {
      S.objective = [| -8.; -11.; -6.; -4. |];
      rows =
        [
          row [| 5.; 7.; 4.; 3. |] S.Le 14.;
          row [| 1.; 0.; 0.; 0. |] S.Le 1.;
          row [| 0.; 1.; 0.; 0. |] S.Le 1.;
          row [| 0.; 0.; 1.; 0. |] S.Le 1.;
          row [| 0.; 0.; 0.; 1. |] S.Le 1.;
        ];
    }
  in
  let o = Lp.Mip.solve p ~integer:[ 0; 1; 2; 3 ] in
  (match o.Lp.Mip.best with
  | Some (obj, x) ->
      Alcotest.(check bool) "objective -21" true (feq obj (-21.));
      Alcotest.(check bool) "b,c,d chosen" true
        (feq x.(0) 0. && feq x.(1) 1. && feq x.(2) 1. && feq x.(3) 1.)
  | None -> Alcotest.fail "no incumbent");
  Alcotest.(check bool) "proved" true o.Lp.Mip.proved_optimal

let test_mip_integrality_matters () =
  (* max x s.t. 2x <= 3, x integer -> 1 (relaxation gives 1.5) *)
  let p = { S.objective = [| -1. |]; rows = [ row [| 2. |] S.Le 3. ] } in
  let o = Lp.Mip.solve p ~integer:[ 0 ] in
  match o.Lp.Mip.best with
  | Some (obj, _) -> Alcotest.(check bool) "x=1" true (feq obj (-1.))
  | None -> Alcotest.fail "no incumbent"

let test_mip_infeasible () =
  let p =
    {
      S.objective = [| 1. |];
      rows = [ row [| 2. |] S.Ge 1.; row [| 2. |] S.Le 1. ];
    }
  in
  (* 0.5 <= x <= 0.5: LP feasible at 0.5 but no integer point *)
  let o = Lp.Mip.solve p ~integer:[ 0 ] in
  Alcotest.(check bool) "no integer solution" true (o.Lp.Mip.best = None);
  Alcotest.(check bool) "proved" true o.Lp.Mip.proved_optimal

let test_mip_node_limit () =
  let p =
    {
      S.objective = Array.make 8 (-1.);
      rows =
        List.init 8 (fun i ->
            let c = Array.make 8 0. in
            c.(i) <- 2.;
            row c S.Le 1.)
        @ [ row (Array.make 8 1.) S.Le 3.5 ];
    }
  in
  let o =
    Lp.Mip.solve ~limits:{ Lp.Mip.max_nodes = 2; wall_deadline = None } p
      ~integer:(List.init 8 Fun.id)
  in
  Alcotest.(check bool) "limit respected" true (o.Lp.Mip.nodes <= 2);
  Alcotest.(check bool) "not proved" false o.Lp.Mip.proved_optimal

(* --- time-indexed scheduling MILP ---------------------------------------- *)

module T = Mapreduce.Types

let counter = ref 0

let mk_job ~id ?(est = 0) ~deadline ~maps ~reduces () =
  let fresh kind e =
    incr counter;
    { T.task_id = !counter; job_id = id; kind; exec_time = e; capacity_req = 1 }
  in
  {
    T.id;
    arrival = 0;
    earliest_start = est;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

let inst ?(map_cap = 1) ?(reduce_cap = 1) jobs =
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:map_cap
    ~reduce_capacity:reduce_cap jobs

let test_milp_single_job () =
  let i = inst [ mk_job ~id:0 ~deadline:20 ~maps:[ 3 ] ~reduces:[ 4 ] () ] in
  let m = Lp.Milp_model.build i ~quantum:1 ~horizon_slots:12 in
  let sol, outcome = Lp.Milp_model.solve m in
  Alcotest.(check bool) "proved" true outcome.Lp.Mip.proved_optimal;
  match sol with
  | Some s ->
      Alcotest.(check int) "on time" 0 s.Sched.Solution.late_jobs;
      Alcotest.(check (list string)) "feasible" []
        (Sched.Solution.feasibility_errors i s)
  | None -> Alcotest.fail "no solution"

let test_milp_matches_cp_on_small_instances () =
  let rng = Simrand.Rng.create 5 in
  for _ = 1 to 10 do
    let n = 1 + Simrand.Rng.int rng 2 in
    let jobs =
      List.init n (fun id ->
          let maps = [ 1 + Simrand.Rng.int rng 4 ] in
          let reduces =
            if Simrand.Rng.bool rng then [ 1 + Simrand.Rng.int rng 3 ] else []
          in
          let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
          mk_job ~id ~deadline:(total + Simrand.Rng.int rng 6) ~maps ~reduces ())
    in
    let i = inst jobs in
    let cp_sol, _ = Cp.Solver.solve i in
    let horizon = Lp.Milp_model.suggested_horizon_slots i ~quantum:1 + 4 in
    let m = Lp.Milp_model.build i ~quantum:1 ~horizon_slots:horizon in
    let milp_sol, outcome = Lp.Milp_model.solve m in
    Alcotest.(check bool) "milp proved" true outcome.Lp.Mip.proved_optimal;
    match milp_sol with
    | Some s ->
        Alcotest.(check (list string)) "milp feasible" []
          (Sched.Solution.feasibility_errors i s);
        Alcotest.(check int) "same optimal late count"
          cp_sol.Sched.Solution.late_jobs s.Sched.Solution.late_jobs
    | None -> Alcotest.fail "milp found nothing"
  done

let test_milp_respects_est () =
  let i = inst [ mk_job ~id:0 ~est:5 ~deadline:30 ~maps:[ 2 ] ~reduces:[] () ] in
  let m = Lp.Milp_model.build i ~quantum:1 ~horizon_slots:12 in
  let sol, _ = Lp.Milp_model.solve m in
  match sol with
  | Some s ->
      let start =
        Sched.Solution.start_of s
          ~task_id:i.Sched.Instance.jobs.(0).Sched.Instance.pending_maps.(0).T.task_id
      in
      Alcotest.(check bool) "start >= est" true (start >= 5)
  | None -> Alcotest.fail "no solution"

let test_milp_rejects_frozen () =
  let i = inst [ mk_job ~id:0 ~deadline:20 ~maps:[ 3 ] ~reduces:[] () ] in
  let pj = i.Sched.Instance.jobs.(0) in
  incr counter;
  let frozen =
    { T.task_id = !counter; job_id = 0; kind = T.Map_task; exec_time = 5; capacity_req = 1 }
  in
  let pj =
    { pj with Sched.Instance.fixed_maps = [| { Sched.Instance.task = frozen; start = 0 } |] }
  in
  let i = { i with Sched.Instance.jobs = [| pj |] } in
  Alcotest.(check bool) "frozen rejected" true
    (try
       ignore (Lp.Milp_model.build i ~quantum:1 ~horizon_slots:12);
       false
     with Invalid_argument _ -> true)

let test_milp_variable_count_explodes () =
  (* the documented scaling contrast: variables grow with horizon x tasks *)
  let i =
    inst
      [ mk_job ~id:0 ~deadline:100 ~maps:[ 2; 2; 2; 2 ] ~reduces:[ 2; 2 ] () ]
  in
  let small = Lp.Milp_model.build i ~quantum:1 ~horizon_slots:20 in
  let large = Lp.Milp_model.build i ~quantum:1 ~horizon_slots:60 in
  Alcotest.(check bool) "variables grow with horizon" true
    (Lp.Milp_model.variables large > 2 * Lp.Milp_model.variables small)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "dantzig" `Quick test_simplex_dantzig;
          Alcotest.test_case "equality and ge" `Quick
            test_simplex_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate (Beale)" `Quick
            test_simplex_degenerate_no_cycle;
        ] );
      ( "mip",
        [
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integrality" `Quick test_mip_integrality_matters;
          Alcotest.test_case "integer infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "node limit" `Quick test_mip_node_limit;
        ] );
      ( "milp scheduling",
        [
          Alcotest.test_case "single job" `Quick test_milp_single_job;
          Alcotest.test_case "matches cp" `Slow
            test_milp_matches_cp_on_small_instances;
          Alcotest.test_case "respects est" `Quick test_milp_respects_est;
          Alcotest.test_case "rejects frozen" `Quick test_milp_rejects_frozen;
          Alcotest.test_case "variable explosion" `Quick
            test_milp_variable_count_explodes;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_simplex_solution_feasible ] );
    ]
