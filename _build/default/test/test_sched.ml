(* Tests for profiles, instances, solutions and the greedy list scheduler. *)

module T = Mapreduce.Types
module Instance = Sched.Instance
module Solution = Sched.Solution
module Profile = Sched.Profile

(* --- profile ------------------------------------------------------------ *)

let test_profile_empty () =
  let p = Profile.create ~capacity:2 in
  Alcotest.(check int) "usage 0" 0 (Profile.usage_at p 100);
  Alcotest.(check bool) "fits anywhere" true
    (Profile.fits p ~start:5 ~duration:10 ~amount:2);
  Alcotest.(check int) "earliest is from" 7
    (Profile.earliest_fit p ~from:7 ~duration:3 ~amount:1);
  Alcotest.(check int) "peak" 0 (Profile.max_usage p)

let test_profile_add_and_usage () =
  let p = Profile.create ~capacity:3 in
  Profile.add p ~start:10 ~duration:10 ~amount:2;
  Alcotest.(check int) "before" 0 (Profile.usage_at p 9);
  Alcotest.(check int) "inside" 2 (Profile.usage_at p 10);
  Alcotest.(check int) "inside end" 2 (Profile.usage_at p 19);
  Alcotest.(check int) "after" 0 (Profile.usage_at p 20);
  Profile.add p ~start:15 ~duration:10 ~amount:1;
  Alcotest.(check int) "overlap" 3 (Profile.usage_at p 16);
  Alcotest.(check int) "peak" 3 (Profile.max_usage p)

let test_profile_fits_capacity () =
  let p = Profile.create ~capacity:2 in
  Profile.add p ~start:0 ~duration:10 ~amount:2;
  Alcotest.(check bool) "full window rejected" false
    (Profile.fits p ~start:5 ~duration:2 ~amount:1);
  Alcotest.(check bool) "after window ok" true
    (Profile.fits p ~start:10 ~duration:2 ~amount:2);
  Alcotest.(check bool) "partial overlap rejected" false
    (Profile.fits p ~start:9 ~duration:2 ~amount:1)

let test_profile_earliest_fit_gap () =
  let p = Profile.create ~capacity:1 in
  Profile.add p ~start:0 ~duration:10 ~amount:1;
  Profile.add p ~start:15 ~duration:10 ~amount:1;
  (* gap [10,15) fits a 5-long task but not 6 *)
  Alcotest.(check int) "fits in gap" 10
    (Profile.earliest_fit p ~from:0 ~duration:5 ~amount:1);
  Alcotest.(check int) "too long for gap" 25
    (Profile.earliest_fit p ~from:0 ~duration:6 ~amount:1);
  Alcotest.(check int) "from inside gap" 11
    (Profile.earliest_fit p ~from:11 ~duration:4 ~amount:1)

let test_profile_remove () =
  let p = Profile.create ~capacity:1 in
  Profile.add p ~start:0 ~duration:10 ~amount:1;
  Profile.remove p ~start:0 ~duration:10 ~amount:1;
  Alcotest.(check int) "usage back to 0" 0 (Profile.usage_at p 5);
  Alcotest.(check bool) "fits again" true
    (Profile.fits p ~start:0 ~duration:10 ~amount:1)

let test_profile_zero_duration () =
  let p = Profile.create ~capacity:1 in
  Profile.add p ~start:5 ~duration:0 ~amount:1;
  Alcotest.(check int) "zero-duration adds nothing" 0 (Profile.usage_at p 5)

let test_profile_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Profile.create: capacity must be > 0") (fun () ->
      ignore (Profile.create ~capacity:0))

(* earliest_fit against a brute-force oracle *)
let prop_earliest_fit_matches_oracle =
  let gen =
    QCheck.Gen.(
      let* cap = int_range 1 3 in
      let* n = int_range 0 8 in
      let* tasks =
        list_repeat n (triple (int_range 0 40) (int_range 1 10) (int_range 1 cap))
      in
      let* from = int_range 0 50 in
      let* dur = int_range 1 10 in
      let* amount = int_range 1 cap in
      return (cap, tasks, from, dur, amount))
  in
  QCheck.Test.make ~count:1000 ~name:"earliest_fit matches brute force"
    (QCheck.make gen) (fun (cap, tasks, from, dur, amount) ->
      let p = Profile.create ~capacity:cap in
      List.iter
        (fun (s, d, a) ->
          if Profile.fits p ~start:s ~duration:d ~amount:a then
            Profile.add p ~start:s ~duration:d ~amount:a)
        tasks;
      let result = Profile.earliest_fit p ~from ~duration:dur ~amount in
      (* oracle: scan times one by one *)
      let rec scan t =
        if Profile.fits p ~start:t ~duration:dur ~amount then t
        else scan (t + 1)
      in
      let oracle = scan from in
      result = oracle)

(* --- instance ----------------------------------------------------------- *)

let counter = ref 0

let mk_job ~id ?(est = 0) ~deadline ~maps ~reduces () =
  let fresh kind e =
    incr counter;
    { T.task_id = !counter; job_id = id; kind; exec_time = e; capacity_req = 1 }
  in
  {
    T.id;
    arrival = 0;
    earliest_start = est;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

let test_instance_of_fresh_jobs () =
  let j = mk_job ~id:0 ~est:5 ~deadline:100 ~maps:[ 10; 20 ] ~reduces:[ 5 ] () in
  let inst =
    Instance.of_fresh_jobs ~now:10 ~map_capacity:4 ~reduce_capacity:4 [ j ]
  in
  Alcotest.(check int) "pending" 3 (Instance.pending_task_count inst);
  Alcotest.(check int) "fixed" 0 (Instance.fixed_task_count inst);
  let pj = inst.Instance.jobs.(0) in
  Alcotest.(check int) "est bumped to now" 10 pj.Instance.est;
  Alcotest.(check int) "laxity" (100 - 10 - 35) (Instance.laxity pj)

(* --- greedy -------------------------------------------------------------- *)

let fresh_instance ?(map_cap = 2) ?(reduce_cap = 2) jobs =
  Instance.of_fresh_jobs ~now:0 ~map_capacity:map_cap ~reduce_capacity:reduce_cap
    jobs

let test_greedy_single_job () =
  let j = mk_job ~id:0 ~deadline:1000 ~maps:[ 10; 20 ] ~reduces:[ 5 ] () in
  let inst = fresh_instance [ j ] in
  let sol = Sched.Greedy.solve inst in
  Alcotest.(check (list string)) "feasible" []
    (Solution.feasibility_errors inst sol);
  Alcotest.(check int) "on time" 0 sol.Solution.late_jobs;
  (* both maps fit in parallel (cap 2), so reduce starts at 20 *)
  let r = j.T.reduce_tasks.(0) in
  Alcotest.(check int) "reduce at LFMT" 20 (Solution.start_of sol ~task_id:r.T.task_id)

let test_greedy_respects_capacity () =
  let j = mk_job ~id:0 ~deadline:10_000 ~maps:[ 10; 10; 10 ] ~reduces:[] () in
  let inst = fresh_instance ~map_cap:1 [ j ] in
  let sol = Sched.Greedy.solve inst in
  Alcotest.(check (list string)) "feasible" []
    (Solution.feasibility_errors inst sol);
  (* serialized on one slot: completions at 10,20,30 *)
  let completion = Solution.job_completion inst.Instance.jobs.(0) sol.Solution.starts in
  Alcotest.(check int) "serialized" 30 completion

let test_greedy_respects_est () =
  let j = mk_job ~id:0 ~est:500 ~deadline:10_000 ~maps:[ 10 ] ~reduces:[] () in
  let inst = fresh_instance [ j ] in
  let sol = Sched.Greedy.solve inst in
  let s = Solution.start_of sol ~task_id:j.T.map_tasks.(0).T.task_id in
  Alcotest.(check int) "starts at est" 500 s

let test_greedy_edf_order_helps () =
  (* one slot: tight job must go first under EDF *)
  let loose = mk_job ~id:0 ~deadline:10_000 ~maps:[ 10 ] ~reduces:[] () in
  let tight = mk_job ~id:1 ~deadline:10 ~maps:[ 10 ] ~reduces:[] () in
  let inst = fresh_instance ~map_cap:1 [ loose; tight ] in
  let edf = Sched.Greedy.solve ~order:Sched.Greedy.Edf inst in
  Alcotest.(check int) "edf meets both" 0 edf.Solution.late_jobs;
  let by_id = Sched.Greedy.solve ~order:Sched.Greedy.By_job_id inst in
  Alcotest.(check int) "by-id misses one" 1 by_id.Solution.late_jobs

let test_greedy_backfills_ar_gap () =
  (* an advance reservation leaves the machine idle; a later-priority job
     must backfill the gap *)
  let ar = mk_job ~id:0 ~est:1000 ~deadline:1200 ~maps:[ 100 ] ~reduces:[] () in
  let small = mk_job ~id:1 ~deadline:5000 ~maps:[ 50 ] ~reduces:[] () in
  let inst = fresh_instance ~map_cap:1 [ ar; small ] in
  let sol = Sched.Greedy.solve ~order:Sched.Greedy.Edf inst in
  let s_small = Solution.start_of sol ~task_id:small.T.map_tasks.(0).T.task_id in
  Alcotest.(check int) "backfilled at 0" 0 s_small;
  Alcotest.(check int) "none late" 0 sol.Solution.late_jobs

let test_greedy_precedence_with_frozen_lfmt () =
  (* job with a frozen map finishing at 100: pending reduce must start >= 100 *)
  incr counter;
  let frozen_map =
    { T.task_id = !counter; job_id = 0; kind = T.Map_task; exec_time = 100; capacity_req = 1 }
  in
  let j = mk_job ~id:0 ~deadline:10_000 ~maps:[] ~reduces:[ 10 ] () in
  let inst = fresh_instance [ j ] in
  let pj = inst.Instance.jobs.(0) in
  let pj =
    {
      pj with
      Instance.fixed_maps = [| { Instance.task = frozen_map; start = 0 } |];
      frozen_lfmt = 100;
      frozen_completion = 100;
    }
  in
  let inst = { inst with Instance.jobs = [| pj |] } in
  let sol = Sched.Greedy.solve inst in
  Alcotest.(check (list string)) "feasible" []
    (Solution.feasibility_errors inst sol);
  let r = j.T.reduce_tasks.(0) in
  Alcotest.(check bool) "reduce after frozen LFMT" true
    (Solution.start_of sol ~task_id:r.T.task_id >= 100)

let test_greedy_zero_duration_task () =
  (* zero-length tasks are legal (e_t >= 0): they occupy nothing and
     complete instantly at their start *)
  let j = mk_job ~id:0 ~deadline:100 ~maps:[ 0; 10 ] ~reduces:[ 0 ] () in
  let inst = fresh_instance ~map_cap:1 ~reduce_cap:1 [ j ] in
  let sol = Sched.Greedy.solve inst in
  Alcotest.(check (list string)) "feasible" []
    (Solution.feasibility_errors inst sol);
  Alcotest.(check int) "on time" 0 sol.Solution.late_jobs;
  (* completion = the 10-long map; the zero reduce adds nothing *)
  let completion = Solution.job_completion inst.Instance.jobs.(0) sol.Solution.starts in
  Alcotest.(check int) "completion from real work" 10 completion

let test_greedy_many_jobs_single_slot () =
  (* saturation: n serial jobs on one slot complete back to back *)
  let jobs =
    List.init 20 (fun i -> mk_job ~id:i ~deadline:1_000_000 ~maps:[ 5 ] ~reduces:[] ())
  in
  let inst = fresh_instance ~map_cap:1 jobs in
  let sol = Sched.Greedy.solve inst in
  Alcotest.(check (list string)) "feasible" []
    (Solution.feasibility_errors inst sol);
  let makespan =
    Array.fold_left
      (fun acc j -> max acc (Solution.job_completion j sol.Solution.starts))
      0 inst.Instance.jobs
  in
  Alcotest.(check int) "no idle gaps" 100 makespan

let test_solution_better () =
  let mk late tard =
    { Solution.starts = Hashtbl.create 1; late_jobs = late; total_tardiness = tard }
  in
  Alcotest.(check bool) "fewer late wins" true (Solution.better (mk 1 99) (mk 2 0));
  Alcotest.(check bool) "tie broken by tardiness" true
    (Solution.better (mk 1 5) (mk 1 9));
  Alcotest.(check bool) "equal is not better" false
    (Solution.better (mk 1 5) (mk 1 5))

let test_feasibility_catches_violations () =
  let j = mk_job ~id:0 ~est:100 ~deadline:1000 ~maps:[ 10 ] ~reduces:[ 10 ] () in
  let inst = fresh_instance [ j ] in
  let starts = Hashtbl.create 4 in
  (* map before est, reduce before map completes *)
  Hashtbl.replace starts j.T.map_tasks.(0).T.task_id 50;
  Hashtbl.replace starts j.T.reduce_tasks.(0).T.task_id 55;
  let sol = Solution.evaluate inst starts in
  let errs = Solution.feasibility_errors inst sol in
  Alcotest.(check bool) "est violation reported" true
    (List.exists (fun e -> String.length e > 0 && String.sub e 0 3 = "map") errs);
  Alcotest.(check bool) "precedence violation reported" true
    (List.exists
       (fun e -> String.length e > 6 && String.sub e 0 6 = "reduce")
       errs)

(* property: greedy solutions always pass the oracle, across random instances *)
let gen_jobs =
  QCheck.Gen.(
    let gen_job id =
      let* n_maps = int_range 1 5 in
      let* n_reduces = int_range 0 4 in
      let* maps = list_repeat n_maps (int_range 1 50) in
      let* reduces = list_repeat n_reduces (int_range 1 50) in
      let* est = int_range 0 100 in
      let* slack = int_range 0 200 in
      let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
      return (mk_job ~id ~est ~deadline:(est + total + slack) ~maps ~reduces ())
    in
    let* n = int_range 1 8 in
    flatten_l (List.init n gen_job))

let prop_greedy_feasible =
  QCheck.Test.make ~count:300 ~name:"greedy always feasible"
    (QCheck.make
       QCheck.Gen.(
         let* jobs = gen_jobs in
         let* map_cap = int_range 1 4 in
         let* reduce_cap = int_range 1 4 in
         return (fresh_instance ~map_cap ~reduce_cap jobs)))
    (fun inst ->
      List.for_all
        (fun order ->
          let sol = Sched.Greedy.solve ~order inst in
          Solution.feasibility_errors inst sol = [])
        [ Sched.Greedy.By_job_id; Sched.Greedy.Edf; Sched.Greedy.Least_laxity ])

let () =
  Alcotest.run "sched"
    [
      ( "profile",
        [
          Alcotest.test_case "empty" `Quick test_profile_empty;
          Alcotest.test_case "add/usage" `Quick test_profile_add_and_usage;
          Alcotest.test_case "fits capacity" `Quick test_profile_fits_capacity;
          Alcotest.test_case "earliest fit gaps" `Quick
            test_profile_earliest_fit_gap;
          Alcotest.test_case "remove" `Quick test_profile_remove;
          Alcotest.test_case "zero duration" `Quick test_profile_zero_duration;
          Alcotest.test_case "bad capacity" `Quick
            test_profile_rejects_bad_capacity;
        ] );
      ( "instance",
        [ Alcotest.test_case "of_fresh_jobs" `Quick test_instance_of_fresh_jobs ]
      );
      ( "greedy",
        [
          Alcotest.test_case "single job" `Quick test_greedy_single_job;
          Alcotest.test_case "capacity" `Quick test_greedy_respects_capacity;
          Alcotest.test_case "est" `Quick test_greedy_respects_est;
          Alcotest.test_case "edf order" `Quick test_greedy_edf_order_helps;
          Alcotest.test_case "backfill AR gap" `Quick
            test_greedy_backfills_ar_gap;
          Alcotest.test_case "frozen lfmt" `Quick
            test_greedy_precedence_with_frozen_lfmt;
          Alcotest.test_case "zero duration" `Quick
            test_greedy_zero_duration_task;
          Alcotest.test_case "saturated slot" `Quick
            test_greedy_many_jobs_single_slot;
        ] );
      ( "solution",
        [
          Alcotest.test_case "better" `Quick test_solution_better;
          Alcotest.test_case "oracle catches violations" `Quick
            test_feasibility_catches_violations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_earliest_fit_matches_oracle; prop_greedy_feasible ] );
    ]
