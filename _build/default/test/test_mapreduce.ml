(* Tests for the domain model and both workload generators: structural
   validity, Table-3/Table-4 distributional properties, determinism. *)

module T = Mapreduce.Types

let default_cluster =
  T.uniform_cluster ~m:50 ~map_capacity:2 ~reduce_capacity:2

(* --- types ------------------------------------------------------------ *)

let mk_task ?(id = 0) ?(job = 0) ?(kind = T.Map_task) ?(e = 10) ?(q = 1) () =
  { T.task_id = id; job_id = job; kind; exec_time = e; capacity_req = q }

let simple_job =
  {
    T.id = 0;
    arrival = 100;
    earliest_start = 150;
    deadline = 1000;
    map_tasks = [| mk_task ~id:1 ~e:10 (); mk_task ~id:2 ~e:20 () |];
    reduce_tasks = [| mk_task ~id:3 ~kind:T.Reduce_task ~e:30 () |];
  }

let test_job_accessors () =
  Alcotest.(check int) "task count" 3 (T.task_count simple_job);
  Alcotest.(check int) "total exec" 60 (T.total_exec_time simple_job);
  Alcotest.(check int) "map exec" 30 (T.total_map_time simple_job);
  (* laxity = 1000 - 150 - 60 *)
  Alcotest.(check int) "laxity" 790 (T.laxity simple_job)

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (T.validate_job simple_job = Ok ())

let test_validate_catches_errors () =
  let bad_est = { simple_job with T.earliest_start = 50 } in
  Alcotest.(check bool) "s_j before arrival" true
    (Result.is_error (T.validate_job bad_est));
  let bad_kind =
    { simple_job with T.map_tasks = [| mk_task ~kind:T.Reduce_task () |] }
  in
  Alcotest.(check bool) "kind mismatch" true
    (Result.is_error (T.validate_job bad_kind));
  let empty = { simple_job with T.map_tasks = [||]; reduce_tasks = [||] } in
  Alcotest.(check bool) "no tasks" true (Result.is_error (T.validate_job empty))

let test_cluster_slots () =
  Alcotest.(check int) "map slots" 100 (T.total_map_slots default_cluster);
  Alcotest.(check int) "reduce slots" 100
    (T.total_reduce_slots default_cluster);
  Alcotest.(check int) "resources" 50 (Array.length default_cluster)

let test_minimum_execution_time_single_wave () =
  (* all tasks fit in one wave: TE = max map + max reduce *)
  let te = T.minimum_execution_time simple_job default_cluster in
  Alcotest.(check int) "TE = 20 + 30" 50 te

let test_minimum_execution_time_multi_wave () =
  (* 3 maps of 10 on one map slot: map phase = 30; 1 reduce of 5: TE = 35 *)
  let job =
    {
      simple_job with
      T.map_tasks =
        [| mk_task ~id:1 ~e:10 (); mk_task ~id:2 ~e:10 (); mk_task ~id:3 ~e:10 () |];
      reduce_tasks = [| mk_task ~id:4 ~kind:T.Reduce_task ~e:5 () |];
    }
  in
  let tiny = T.uniform_cluster ~m:1 ~map_capacity:1 ~reduce_capacity:1 in
  Alcotest.(check int) "TE = 30 + 5" 35 (T.minimum_execution_time job tiny)

(* --- synthetic (Table 3) ----------------------------------------------- *)

let gen_synthetic ?(n = 300) ?(seed = 1) ?(params = Mapreduce.Synthetic.default)
    () =
  Mapreduce.Synthetic.generate
    { params with Mapreduce.Synthetic.n_jobs = n }
    ~cluster:default_cluster ~seed

let test_synthetic_structure () =
  let jobs = gen_synthetic () in
  Alcotest.(check int) "count" 300 (List.length jobs);
  List.iter
    (fun j ->
      (match T.validate_job j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "job %d invalid: %s" j.T.id e);
      Alcotest.(check bool) "1..100 maps" true
        (Array.length j.T.map_tasks >= 1 && Array.length j.T.map_tasks <= 100);
      Alcotest.(check bool) "1..100 reduces" true
        (Array.length j.T.reduce_tasks >= 1
        && Array.length j.T.reduce_tasks <= 100);
      Array.iter
        (fun t ->
          Alcotest.(check bool) "map time in [1s, 50s]" true
            (t.T.exec_time >= 1000 && t.T.exec_time <= 50_000))
        j.T.map_tasks)
    jobs

let test_synthetic_arrivals_sorted_and_poisson () =
  let jobs = gen_synthetic ~n:2000 () in
  let arrivals = List.map (fun j -> j.T.arrival) jobs in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing arrivals" true (sorted arrivals);
  (* mean inter-arrival should be ~ 1/lambda = 100 s = 100_000 ms *)
  let rec gaps acc = function
    | a :: (b :: _ as rest) -> gaps (float_of_int (b - a) :: acc) rest
    | _ -> acc
  in
  let g = gaps [] arrivals in
  let mean = List.fold_left ( +. ) 0. g /. float_of_int (List.length g) in
  Alcotest.(check bool) "mean gap within 10% of 100s" true
    (Float.abs (mean -. 100_000.) /. 100_000. < 0.10)

let test_synthetic_earliest_start_probability () =
  let params = { Mapreduce.Synthetic.default with Mapreduce.Synthetic.p = 0.5 } in
  let jobs = gen_synthetic ~n:2000 ~params () in
  let ar = List.filter (fun j -> j.T.earliest_start > j.T.arrival) jobs in
  let frac = float_of_int (List.length ar) /. 2000. in
  Alcotest.(check bool) "about half are advance reservations" true
    (Float.abs (frac -. 0.5) < 0.05);
  List.iter
    (fun j ->
      let delta = j.T.earliest_start - j.T.arrival in
      Alcotest.(check bool) "s_j - v_j within (0, s_max]" true
        (delta > 0 && delta <= 50_000 * 1000))
    ar

let test_synthetic_p_zero_means_immediate () =
  let params = { Mapreduce.Synthetic.default with Mapreduce.Synthetic.p = 0. } in
  let jobs = gen_synthetic ~n:200 ~params () in
  List.iter
    (fun j -> Alcotest.(check int) "s_j = v_j" j.T.arrival j.T.earliest_start)
    jobs

let test_synthetic_deadline_bounds () =
  let jobs = gen_synthetic ~n:500 () in
  List.iter
    (fun j ->
      let te = T.minimum_execution_time j default_cluster in
      let d = j.T.deadline - j.T.earliest_start in
      (* d_j - s_j = TE * U[1, d_M], d_M default 5 *)
      Alcotest.(check bool) "deadline >= s + TE" true (d >= te - 1);
      Alcotest.(check bool) "deadline <= s + 5*TE" true
        (d <= (5 * te) + 1))
    jobs

let test_synthetic_deterministic () =
  let a = gen_synthetic ~seed:9 () and b = gen_synthetic ~seed:9 () in
  Alcotest.(check bool) "same seed, same workload" true (a = b);
  let c = gen_synthetic ~seed:10 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_synthetic_unique_ids () =
  let jobs = gen_synthetic ~n:100 () in
  let ids = List.concat_map (fun j -> List.map (fun t -> t.T.task_id) (T.job_tasks j)) jobs in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "task ids unique" (List.length ids) (List.length sorted)

let test_synthetic_reduce_time_formula () =
  (* re = factor * sum(me)/k_rd + DU[1,10]; check against bounds *)
  let jobs = gen_synthetic ~n:200 () in
  List.iter
    (fun j ->
      let total_me_s = T.total_map_time j / 1000 in
      let k_rd = Array.length j.T.reduce_tasks in
      let base = 3.0 *. float_of_int total_me_s /. float_of_int k_rd in
      Array.iter
        (fun t ->
          let re_s = t.T.exec_time / 1000 in
          Alcotest.(check bool) "re in [base+1, base+10]" true
            (float_of_int re_s >= base && float_of_int re_s <= base +. 11.))
        j.T.reduce_tasks)
    jobs

(* --- facebook (Table 4) ------------------------------------------------ *)

let fb_cluster = Mapreduce.Facebook.cluster ()

let test_facebook_cluster () =
  Alcotest.(check int) "64 resources" 64 (Array.length fb_cluster);
  Array.iter
    (fun r ->
      Alcotest.(check int) "1 map slot" 1 r.T.map_capacity;
      Alcotest.(check int) "1 reduce slot" 1 r.T.reduce_capacity)
    fb_cluster

let test_facebook_classes_sum_to_1000 () =
  let total =
    Array.fold_left
      (fun acc c -> acc + c.Mapreduce.Facebook.count)
      0 Mapreduce.Facebook.job_classes
  in
  Alcotest.(check int) "counts" 1000 total

let test_facebook_expected_tasks () =
  (* weighted means of Table 4 *)
  Alcotest.(check bool) "E[maps] = 216.1" true
    (Float.abs (Mapreduce.Facebook.expected_maps_per_job () -. 216.1) < 0.01);
  Alcotest.(check bool) "E[reduces] = 17.82" true
    (Float.abs (Mapreduce.Facebook.expected_reduces_per_job () -. 17.82) < 0.01)

let test_facebook_generation_matches_classes () =
  let jobs =
    Mapreduce.Facebook.generate
      { Mapreduce.Facebook.default with Mapreduce.Facebook.n_jobs = 2000 }
      ~cluster:fb_cluster ~seed:3
  in
  let class_shapes =
    Array.to_list Mapreduce.Facebook.job_classes
    |> List.map (fun c -> (c.Mapreduce.Facebook.maps, c.Mapreduce.Facebook.reduces))
  in
  List.iter
    (fun j ->
      let shape = (Array.length j.T.map_tasks, Array.length j.T.reduce_tasks) in
      Alcotest.(check bool) "job shape is a Table-4 class" true
        (List.mem shape class_shapes);
      Alcotest.(check int) "p = 0: s_j = v_j" j.T.arrival j.T.earliest_start)
    jobs;
  (* the most common class (1 map, 0 reduce) should dominate *)
  let single = List.length (List.filter (fun j -> Array.length j.T.map_tasks = 1) jobs) in
  let frac = float_of_int single /. 2000. in
  Alcotest.(check bool) "~38% single-map jobs" true (Float.abs (frac -. 0.38) < 0.04)

let test_facebook_lognormal_exec_times () =
  let jobs =
    Mapreduce.Facebook.generate
      { Mapreduce.Facebook.default with Mapreduce.Facebook.n_jobs = 500 }
      ~cluster:fb_cluster ~seed:5
  in
  let maps = List.concat_map (fun j -> Array.to_list j.T.map_tasks) jobs in
  let n = List.length maps in
  let mean =
    List.fold_left (fun acc t -> acc +. float_of_int t.T.exec_time) 0. maps
    /. float_of_int n
  in
  let analytic = Simrand.Dist.lognormal_mean ~mu:9.9511 ~sigma2:1.6764 in
  (* heavy-tailed: allow 15% *)
  Alcotest.(check bool) "map exec mean near analytic LN mean" true
    (Float.abs (mean -. analytic) /. analytic < 0.15);
  List.iter
    (fun t -> Alcotest.(check bool) "positive" true (t.T.exec_time >= 1))
    maps

(* --- trace I/O ---------------------------------------------------------- *)

let test_trace_roundtrip () =
  let jobs = gen_synthetic ~n:20 ~seed:31 () in
  match Mapreduce.Trace.of_csv (Mapreduce.Trace.to_csv jobs) with
  | Ok jobs' -> Alcotest.(check bool) "roundtrip equal" true (jobs = jobs')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_trace_roundtrip_facebook () =
  let jobs =
    Mapreduce.Facebook.generate
      { Mapreduce.Facebook.default with Mapreduce.Facebook.n_jobs = 10 }
      ~cluster:fb_cluster ~seed:3
  in
  match Mapreduce.Trace.of_csv (Mapreduce.Trace.to_csv jobs) with
  | Ok jobs' -> Alcotest.(check bool) "roundtrip equal" true (jobs = jobs')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_trace_file_roundtrip () =
  let jobs = gen_synthetic ~n:5 ~seed:8 () in
  let path = Filename.temp_file "mrcp_trace" ".csv" in
  Mapreduce.Trace.save ~path jobs;
  let result = Mapreduce.Trace.load ~path in
  Sys.remove path;
  match result with
  | Ok jobs' -> Alcotest.(check bool) "file roundtrip" true (jobs = jobs')
  | Error e -> Alcotest.failf "load failed: %s" e

let test_trace_rejects_garbage () =
  let is_err s = Result.is_error (Mapreduce.Trace.of_csv s) in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "bad header" true (is_err "nope\n1,2,3\n");
  let h =
    "job_id,arrival_ms,earliest_start_ms,deadline_ms,task_id,kind,exec_ms,capacity_req\n"
  in
  Alcotest.(check bool) "short row" true (is_err (h ^ "1,2,3\n"));
  Alcotest.(check bool) "bad int" true (is_err (h ^ "x,0,0,10,1,map,5,1\n"));
  Alcotest.(check bool) "bad kind" true (is_err (h ^ "0,0,0,10,1,shuffle,5,1\n"));
  Alcotest.(check bool) "duplicate task id" true
    (is_err (h ^ "0,0,0,10,1,map,5,1\n0,0,0,10,1,map,5,1\n"));
  Alcotest.(check bool) "inconsistent job fields" true
    (is_err (h ^ "0,0,0,10,1,map,5,1\n0,0,0,99,2,map,5,1\n"));
  Alcotest.(check bool) "non-contiguous job rows" true
    (is_err
       (h ^ "0,0,0,10,1,map,5,1\n1,0,0,10,2,map,5,1\n0,0,0,10,3,map,5,1\n"))

let prop_trace_roundtrip =
  QCheck.Test.make ~count:25 ~name:"trace roundtrip on random workloads"
    QCheck.(pair (int_range 1 15) (int_range 0 100000))
    (fun (n, seed) ->
      let jobs = gen_synthetic ~n ~seed () in
      Mapreduce.Trace.of_csv (Mapreduce.Trace.to_csv jobs) = Ok jobs)

let prop_synthetic_jobs_valid =
  QCheck.Test.make ~count:30 ~name:"synthetic jobs always validate"
    QCheck.(
      triple (int_range 1 30) (int_range 0 1000000) (int_range 1 100))
    (fun (n, seed, e_max) ->
      let params =
        { Mapreduce.Synthetic.default with Mapreduce.Synthetic.n_jobs = n; e_max }
      in
      let jobs =
        Mapreduce.Synthetic.generate params ~cluster:default_cluster ~seed
      in
      List.for_all (fun j -> T.validate_job j = Ok ()) jobs)

let () =
  Alcotest.run "mapreduce"
    [
      ( "types",
        [
          Alcotest.test_case "accessors" `Quick test_job_accessors;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate errors" `Quick
            test_validate_catches_errors;
          Alcotest.test_case "cluster slots" `Quick test_cluster_slots;
          Alcotest.test_case "TE single wave" `Quick
            test_minimum_execution_time_single_wave;
          Alcotest.test_case "TE multi wave" `Quick
            test_minimum_execution_time_multi_wave;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "structure" `Quick test_synthetic_structure;
          Alcotest.test_case "arrivals" `Slow
            test_synthetic_arrivals_sorted_and_poisson;
          Alcotest.test_case "earliest start p" `Slow
            test_synthetic_earliest_start_probability;
          Alcotest.test_case "p=0" `Quick test_synthetic_p_zero_means_immediate;
          Alcotest.test_case "deadline bounds" `Quick
            test_synthetic_deadline_bounds;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "unique ids" `Quick test_synthetic_unique_ids;
          Alcotest.test_case "reduce formula" `Quick
            test_synthetic_reduce_time_formula;
        ] );
      ( "facebook",
        [
          Alcotest.test_case "cluster" `Quick test_facebook_cluster;
          Alcotest.test_case "classes sum" `Quick
            test_facebook_classes_sum_to_1000;
          Alcotest.test_case "expected tasks" `Quick test_facebook_expected_tasks;
          Alcotest.test_case "generated classes" `Slow
            test_facebook_generation_matches_classes;
          Alcotest.test_case "lognormal times" `Slow
            test_facebook_lognormal_exec_times;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "roundtrip facebook" `Quick
            test_trace_roundtrip_facebook;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_synthetic_jobs_valid; prop_trace_roundtrip ] );
    ]
