(* Tests for Welford accumulators, Student-t confidence intervals and the
   replication driver. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_welford_basic () =
  let w = Simstats.Welford.create () in
  List.iter (Simstats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Simstats.Welford.count w);
  Alcotest.(check bool) "mean" true (feq (Simstats.Welford.mean w) 5.);
  (* sample variance of that classic dataset is 32/7 *)
  Alcotest.(check bool) "variance" true
    (feq (Simstats.Welford.variance w) (32. /. 7.));
  Alcotest.(check bool) "min" true (feq (Simstats.Welford.min_value w) 2.);
  Alcotest.(check bool) "max" true (feq (Simstats.Welford.max_value w) 9.);
  Alcotest.(check bool) "total" true (feq (Simstats.Welford.total w) 40.)

let test_welford_empty () =
  let w = Simstats.Welford.create () in
  Alcotest.(check int) "count 0" 0 (Simstats.Welford.count w);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Simstats.Welford.mean w))

let test_welford_single () =
  let w = Simstats.Welford.create () in
  Simstats.Welford.add w 3.;
  Alcotest.(check bool) "mean" true (feq (Simstats.Welford.mean w) 3.);
  Alcotest.(check bool) "variance nan with n=1" true
    (Float.is_nan (Simstats.Welford.variance w))

let test_welford_merge () =
  let all = Simstats.Welford.create () in
  let a = Simstats.Welford.create () and b = Simstats.Welford.create () in
  List.iteri
    (fun i x ->
      Simstats.Welford.add all x;
      Simstats.Welford.add (if i mod 2 = 0 then a else b) x)
    [ 1.; 10.; 2.; 20.; 3.; 30.; 4.; 40. ];
  let merged = Simstats.Welford.merge a b in
  Alcotest.(check int) "count" (Simstats.Welford.count all)
    (Simstats.Welford.count merged);
  Alcotest.(check bool) "mean" true
    (feq (Simstats.Welford.mean all) (Simstats.Welford.mean merged));
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-6
       (Simstats.Welford.variance all)
       (Simstats.Welford.variance merged))

let test_welford_merge_empty () =
  let a = Simstats.Welford.create () in
  Simstats.Welford.add a 5.;
  let e = Simstats.Welford.create () in
  let m1 = Simstats.Welford.merge a e and m2 = Simstats.Welford.merge e a in
  Alcotest.(check int) "a+empty" 1 (Simstats.Welford.count m1);
  Alcotest.(check int) "empty+a" 1 (Simstats.Welford.count m2)

let test_t_critical_table_values () =
  (* classic table entries *)
  Alcotest.(check bool) "df=1, 95%" true
    (feq ~eps:1e-3 (Simstats.Confidence.t_critical ~df:1 ~level:0.95) 12.706);
  Alcotest.(check bool) "df=10, 95%" true
    (feq ~eps:1e-3 (Simstats.Confidence.t_critical ~df:10 ~level:0.95) 2.228);
  Alcotest.(check bool) "df=30, 99%" true
    (feq ~eps:1e-3 (Simstats.Confidence.t_critical ~df:30 ~level:0.99) 2.750);
  (* large df approaches z *)
  Alcotest.(check bool) "df=1000 ~ z" true
    (feq ~eps:0.01 (Simstats.Confidence.t_critical ~df:1000 ~level:0.95) 1.96)

let test_t_critical_monotone_in_df () =
  let prev = ref infinity in
  for df = 1 to 60 do
    let t = Simstats.Confidence.t_critical ~df ~level:0.95 in
    Alcotest.(check bool) "non-increasing in df" true (t <= !prev +. 1e-9);
    prev := t
  done

let test_confidence_interval () =
  let samples = [| 10.; 12.; 9.; 11.; 10.; 12.; 9.; 11. |] in
  let ci = Simstats.Confidence.of_samples samples in
  Alcotest.(check bool) "mean 10.5" true (feq ci.Simstats.Confidence.mean 10.5);
  Alcotest.(check int) "n" 8 ci.Simstats.Confidence.n;
  Alcotest.(check bool) "half width positive" true
    (ci.Simstats.Confidence.half_width > 0.);
  (* hand-computed: s = sqrt(42/28)... stddev of samples = 1.1952,
     se = 0.4226, t(7, .95) = 2.365 -> hw ~ 0.9995 *)
  Alcotest.(check bool) "half width value" true
    (feq ~eps:1e-2 ci.Simstats.Confidence.half_width 0.9995)

let test_confidence_needs_two () =
  Alcotest.check_raises "one sample rejected"
    (Invalid_argument "Confidence.of_welford: need at least 2 samples")
    (fun () -> ignore (Simstats.Confidence.of_samples [| 1. |]))

let test_within_relative () =
  let tight = Simstats.Confidence.of_samples [| 100.; 100.1; 99.9; 100. |] in
  Alcotest.(check bool) "tight CI within 1%" true
    (Simstats.Confidence.within_relative tight 0.01);
  let loose = Simstats.Confidence.of_samples [| 50.; 150.; 25.; 175. |] in
  Alcotest.(check bool) "loose CI not within 1%" false
    (Simstats.Confidence.within_relative loose 0.01)

let test_replicate_runs_all () =
  let calls = ref [] in
  let spec =
    {
      Simstats.Replicate.run =
        (fun ~seed ->
          calls := seed :: !calls;
          float_of_int seed);
      metrics = [ ("value", Fun.id) ];
    }
  in
  let result = Simstats.Replicate.run ~max_reps:5 ~base_seed:100 spec in
  Alcotest.(check int) "five replications" 5
    result.Simstats.Replicate.replications;
  Alcotest.(check (list int)) "seeds 100..104" [ 100; 101; 102; 103; 104 ]
    (List.rev !calls);
  Alcotest.(check bool) "mean is 102" true
    (feq (Simstats.Replicate.mean result "value") 102.)

let test_replicate_early_stop () =
  (* constant metric: CI collapses immediately after min_reps *)
  let spec =
    {
      Simstats.Replicate.run = (fun ~seed:_ -> 42.);
      metrics = [ ("value", Fun.id) ];
    }
  in
  let result =
    Simstats.Replicate.run
      ~target_relative:(Some ("value", 0.01))
      ~min_reps:3 ~max_reps:100 ~base_seed:0 spec
  in
  Alcotest.(check int) "stopped at min_reps" 3
    result.Simstats.Replicate.replications

let prop_welford_mean_matches_naive =
  QCheck.Test.make ~count:300 ~name:"welford mean = naive mean"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let w = Simstats.Welford.create () in
      List.iter (Simstats.Welford.add w) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Simstats.Welford.mean w -. naive) < 1e-6)

let prop_merge_commutative =
  QCheck.Test.make ~count:300 ~name:"welford merge commutative"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 20) (float_range (-100.) 100.))
        (list_of_size (QCheck.Gen.int_range 0 20) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let fill l =
        let w = Simstats.Welford.create () in
        List.iter (Simstats.Welford.add w) l;
        w
      in
      let ab = Simstats.Welford.merge (fill xs) (fill ys) in
      let ba = Simstats.Welford.merge (fill ys) (fill xs) in
      Simstats.Welford.count ab = Simstats.Welford.count ba
      &&
      if Simstats.Welford.count ab = 0 then true
      else
        Float.abs (Simstats.Welford.mean ab -. Simstats.Welford.mean ba) < 1e-9)

let () =
  Alcotest.run "simstats"
    [
      ( "welford",
        [
          Alcotest.test_case "basic" `Quick test_welford_basic;
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "single" `Quick test_welford_single;
          Alcotest.test_case "merge" `Quick test_welford_merge;
          Alcotest.test_case "merge empty" `Quick test_welford_merge_empty;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "t table" `Quick test_t_critical_table_values;
          Alcotest.test_case "t monotone" `Quick test_t_critical_monotone_in_df;
          Alcotest.test_case "interval" `Quick test_confidence_interval;
          Alcotest.test_case "needs two samples" `Quick test_confidence_needs_two;
          Alcotest.test_case "within relative" `Quick test_within_relative;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "runs all" `Quick test_replicate_runs_all;
          Alcotest.test_case "early stop" `Quick test_replicate_early_stop;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_welford_mean_matches_naive; prop_merge_commutative ] );
    ]
