(* Tests for the slot schedulers, especially MinEDF-WC's minimum-allocation
   model and the allocate/work-conserve/de-allocate behaviour. *)

module T = Mapreduce.Types
module SS = Baselines.Slot_scheduler

let counter = ref 0

let mk_job ~id ?(arrival = 0) ?(est = 0) ~deadline ~maps ~reduces () =
  let fresh kind e =
    incr counter;
    { T.task_id = !counter; job_id = id; kind; exec_time = e; capacity_req = 1 }
  in
  {
    T.id;
    arrival;
    earliest_start = max est arrival;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

let cluster ?(m = 2) ?(mc = 1) ?(rc = 1) () =
  T.uniform_cluster ~m ~map_capacity:mc ~reduce_capacity:rc

(* --- min_allocation model ------------------------------------------------ *)

let min_alloc = SS.min_allocation

let test_min_alloc_single_phase () =
  (* 4 map tasks of 10 each (work 40, longest 10), budget 50:
     s=1: 30/1+10=40 <= 50 -> (1,0) *)
  Alcotest.(check (option (pair int int)))
    "one slot suffices"
    (Some (1, 0))
    (min_alloc ~map_work:40 ~map_longest:10 ~map_tasks:4 ~reduce_work:0
       ~reduce_longest:0 ~reduce_tasks:0 ~budget:50 ~map_slots_max:8
       ~reduce_slots_max:8)

let test_min_alloc_needs_parallelism () =
  (* budget 25: need (40-10)/s + 10 <= 25 -> s >= 2 *)
  Alcotest.(check (option (pair int int)))
    "two slots"
    (Some (2, 0))
    (min_alloc ~map_work:40 ~map_longest:10 ~map_tasks:4 ~reduce_work:0
       ~reduce_longest:0 ~reduce_tasks:0 ~budget:25 ~map_slots_max:8
       ~reduce_slots_max:8)

let test_min_alloc_both_phases () =
  (* maps: work 30 longest 10; reduces: work 20 longest 10; budget 40.
     sm=1: mt=30; remaining 10 -> reduce needs (20-10)/(10-10) -> infeasible;
     sm=2: mt=20; remaining 20 -> sr = ceil(10/10)=1: total slots 3.
     sm=3: mt=(20)/3+10=17; remaining 23 -> sr=1: 4 slots. best (2,1). *)
  Alcotest.(check (option (pair int int)))
    "minimal total"
    (Some (2, 1))
    (min_alloc ~map_work:30 ~map_longest:10 ~map_tasks:3 ~reduce_work:20
       ~reduce_longest:10 ~reduce_tasks:2 ~budget:40 ~map_slots_max:8
       ~reduce_slots_max:8)

let test_min_alloc_impossible () =
  (* longest map alone exceeds the budget *)
  Alcotest.(check (option (pair int int)))
    "hopeless" None
    (min_alloc ~map_work:100 ~map_longest:100 ~map_tasks:1 ~reduce_work:0
       ~reduce_longest:0 ~reduce_tasks:0 ~budget:50 ~map_slots_max:8
       ~reduce_slots_max:8);
  Alcotest.(check (option (pair int int)))
    "negative budget" None
    (min_alloc ~map_work:10 ~map_longest:10 ~map_tasks:1 ~reduce_work:0
       ~reduce_longest:0 ~reduce_tasks:0 ~budget:0 ~map_slots_max:8
       ~reduce_slots_max:8)

let test_min_alloc_capped_by_task_count () =
  (* 2 tasks cannot use more than 2 slots: phase time floor is longest *)
  Alcotest.(check (option (pair int int)))
    "capped" None
    (min_alloc ~map_work:20 ~map_longest:10 ~map_tasks:2 ~reduce_work:0
       ~reduce_longest:0 ~reduce_tasks:0 ~budget:9 ~map_slots_max:8
       ~reduce_slots_max:8)

let test_min_alloc_map_only_and_reduce_only () =
  Alcotest.(check (option (pair int int)))
    "reduce-only job"
    (Some (0, 1))
    (min_alloc ~map_work:0 ~map_longest:0 ~map_tasks:0 ~reduce_work:10
       ~reduce_longest:10 ~reduce_tasks:1 ~budget:15 ~map_slots_max:8
       ~reduce_slots_max:8)

(* --- scheduler behaviour -------------------------------------------------- *)

let test_dispatch_basic () =
  let s = SS.create ~cluster:(cluster ()) ~policy:SS.Min_edf_wc in
  SS.submit s ~now:0 (mk_job ~id:0 ~deadline:100_000 ~maps:[ 10; 10 ] ~reduces:[] ());
  let ds = SS.dispatches s ~now:0 in
  Alcotest.(check int) "both maps launch on 2 slots" 2 (List.length ds);
  List.iter
    (fun (d : Sched.Dispatch.t) ->
      Alcotest.(check int) "starts now" 0 d.Sched.Dispatch.start)
    ds;
  Alcotest.(check int) "idempotent" 0 (List.length (SS.dispatches s ~now:0))

let test_reduce_waits_for_maps () =
  let s = SS.create ~cluster:(cluster ()) ~policy:SS.Min_edf_wc in
  let j = mk_job ~id:0 ~deadline:100_000 ~maps:[ 10 ] ~reduces:[ 10 ] () in
  SS.submit s ~now:0 j;
  let ds = SS.dispatches s ~now:0 in
  Alcotest.(check int) "only the map" 1 (List.length ds);
  let map_task = (List.hd ds).Sched.Dispatch.task in
  Alcotest.(check bool) "it is the map" true (map_task.T.kind = T.Map_task);
  SS.task_completed s ~now:10 ~task_id:map_task.T.task_id;
  let ds = SS.dispatches s ~now:10 in
  Alcotest.(check int) "now the reduce" 1 (List.length ds);
  Alcotest.(check bool) "reduce kind" true
    ((List.hd ds).Sched.Dispatch.task.T.kind = T.Reduce_task)

let test_est_holds_job () =
  let s = SS.create ~cluster:(cluster ()) ~policy:SS.Min_edf_wc in
  SS.submit s ~now:0 (mk_job ~id:0 ~est:500 ~deadline:100_000 ~maps:[ 10 ] ~reduces:[] ());
  Alcotest.(check int) "held" 0 (List.length (SS.dispatches s ~now:0));
  Alcotest.(check (option int)) "wake at est" (Some 500) (SS.next_wake s);
  Alcotest.(check int) "released at est" 1 (List.length (SS.dispatches s ~now:500))

let test_edf_priority_on_scarce_slots () =
  let s = SS.create ~cluster:(cluster ~m:1 ()) ~policy:SS.Edf_wc in
  SS.submit s ~now:0 (mk_job ~id:0 ~deadline:900_000 ~maps:[ 100 ] ~reduces:[] ());
  SS.submit s ~now:0 (mk_job ~id:1 ~deadline:50_000 ~maps:[ 100 ] ~reduces:[] ());
  let ds = SS.dispatches s ~now:0 in
  Alcotest.(check int) "one slot, one task" 1 (List.length ds);
  Alcotest.(check int) "tight deadline first" 1
    (List.hd ds).Sched.Dispatch.task.T.job_id

let test_fcfs_priority () =
  let s = SS.create ~cluster:(cluster ~m:1 ()) ~policy:SS.Fcfs_wc in
  SS.submit s ~now:0 (mk_job ~id:0 ~arrival:0 ~deadline:900_000 ~maps:[ 100 ] ~reduces:[] ());
  SS.submit s ~now:0 (mk_job ~id:1 ~arrival:0 ~deadline:50_000 ~maps:[ 100 ] ~reduces:[] ());
  let ds = SS.dispatches s ~now:0 in
  Alcotest.(check int) "first arrival first" 0
    (List.hd ds).Sched.Dispatch.task.T.job_id

let test_work_conserving_spare_slots () =
  (* Min_edf_wc: a job with a huge deadline needs 1 slot minimum, but all 4
     free slots should still be used (work conservation) *)
  let s = SS.create ~cluster:(cluster ~m:4 ()) ~policy:SS.Min_edf_wc in
  SS.submit s ~now:0
    (mk_job ~id:0 ~deadline:10_000_000 ~maps:[ 10; 10; 10; 10 ] ~reduces:[] ());
  let ds = SS.dispatches s ~now:0 in
  Alcotest.(check int) "all four slots busy" 4 (List.length ds)

let test_deallocation_on_needier_arrival () =
  (* job 0 (loose deadline) holds both slots; when tight job 1 arrives, the
     next freed slot must go to job 1, not back to job 0 *)
  let s = SS.create ~cluster:(cluster ~m:2 ()) ~policy:SS.Min_edf_wc in
  SS.submit s ~now:0
    (mk_job ~id:0 ~deadline:10_000_000 ~maps:[ 100; 100; 100; 100 ] ~reduces:[] ());
  let first = SS.dispatches s ~now:0 in
  Alcotest.(check int) "job 0 takes both" 2 (List.length first);
  SS.submit s ~now:50 (mk_job ~id:1 ~deadline:500 ~maps:[ 100 ] ~reduces:[] ());
  Alcotest.(check int) "nothing free yet" 0 (List.length (SS.dispatches s ~now:50));
  (* a task of job 0 finishes: the slot must be re-allocated to job 1 *)
  SS.task_completed s ~now:100 ~task_id:(List.hd first).Sched.Dispatch.task.T.task_id;
  let ds = SS.dispatches s ~now:100 in
  Alcotest.(check int) "one dispatch" 1 (List.length ds);
  Alcotest.(check int) "slot goes to the tight job" 1
    (List.hd ds).Sched.Dispatch.task.T.job_id

let test_unknown_completion_rejected () =
  let s = SS.create ~cluster:(cluster ()) ~policy:SS.Min_edf_wc in
  Alcotest.(check bool) "invalid arg" true
    (try
       SS.task_completed s ~now:0 ~task_id:999;
       false
     with Invalid_argument _ -> true)

let test_job_retires_after_last_task () =
  let s = SS.create ~cluster:(cluster ()) ~policy:SS.Min_edf_wc in
  SS.submit s ~now:0 (mk_job ~id:0 ~deadline:100_000 ~maps:[ 10 ] ~reduces:[] ());
  Alcotest.(check int) "active" 1 (SS.active_jobs s);
  let ds = SS.dispatches s ~now:0 in
  SS.task_completed s ~now:10
    ~task_id:(List.hd ds).Sched.Dispatch.task.T.task_id;
  Alcotest.(check int) "retired" 0 (SS.active_jobs s)

let () =
  Alcotest.run "baselines"
    [
      ( "min-allocation",
        [
          Alcotest.test_case "single phase" `Quick test_min_alloc_single_phase;
          Alcotest.test_case "needs parallelism" `Quick
            test_min_alloc_needs_parallelism;
          Alcotest.test_case "both phases" `Quick test_min_alloc_both_phases;
          Alcotest.test_case "impossible" `Quick test_min_alloc_impossible;
          Alcotest.test_case "capped by tasks" `Quick
            test_min_alloc_capped_by_task_count;
          Alcotest.test_case "single-phase jobs" `Quick
            test_min_alloc_map_only_and_reduce_only;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "dispatch basic" `Quick test_dispatch_basic;
          Alcotest.test_case "reduce waits" `Quick test_reduce_waits_for_maps;
          Alcotest.test_case "est holds" `Quick test_est_holds_job;
          Alcotest.test_case "edf priority" `Quick
            test_edf_priority_on_scarce_slots;
          Alcotest.test_case "fcfs priority" `Quick test_fcfs_priority;
          Alcotest.test_case "work conserving" `Quick
            test_work_conserving_spare_slots;
          Alcotest.test_case "de-allocation" `Quick
            test_deallocation_on_needier_arrival;
          Alcotest.test_case "unknown completion" `Quick
            test_unknown_completion_rejected;
          Alcotest.test_case "job retires" `Quick
            test_job_retires_after_last_task;
        ] );
    ]
