(* Tests for the event heap and the discrete event engine: ordering, FIFO
   tie-breaking, cancellation, horizons, and a small M/M/1-style smoke
   simulation. *)

let test_heap_ordering () =
  let h = Desim.Heap.create () in
  List.iter (fun k -> Desim.Heap.push h ~key:k k) [ 5; 1; 4; 1; 3; 9; 2 ];
  let drained = ref [] in
  let rec drain () =
    match Desim.Heap.pop h with
    | None -> ()
    | Some (k, _) ->
        drained := k :: !drained;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 1; 2; 3; 4; 5; 9 ]
    (List.rev !drained)

let test_heap_fifo_ties () =
  let h = Desim.Heap.create () in
  List.iter (fun v -> Desim.Heap.push h ~key:7 v) [ "a"; "b"; "c" ];
  let pop () = snd (Option.get (Desim.Heap.pop h)) in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_peek () =
  let h = Desim.Heap.create () in
  Alcotest.(check bool) "empty peek" true (Desim.Heap.peek h = None);
  Desim.Heap.push h ~key:3 "x";
  Desim.Heap.push h ~key:1 "y";
  Alcotest.(check bool) "peek smallest" true (Desim.Heap.peek h = Some (1, "y"));
  Alcotest.(check int) "length" 2 (Desim.Heap.length h)

let test_heap_to_sorted_list_nondestructive () =
  let h = Desim.Heap.create () in
  List.iter (fun k -> Desim.Heap.push h ~key:k k) [ 3; 1; 2 ];
  let l = Desim.Heap.to_sorted_list h in
  Alcotest.(check int) "still 3 elements" 3 (Desim.Heap.length h);
  Alcotest.(check (list int)) "sorted keys" [ 1; 2; 3 ] (List.map fst l)

let prop_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"heap drains in sorted order"
    QCheck.(list (int_range 0 10_000))
    (fun keys ->
      let h = Desim.Heap.create () in
      List.iter (fun k -> Desim.Heap.push h ~key:k ()) keys;
      let rec drain acc =
        match Desim.Heap.pop h with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* --- engine ----------------------------------------------------------- *)

let test_engine_executes_in_order () =
  let sim = Desim.Engine.create () in
  let log = ref [] in
  let note tag sim = log := (tag, Desim.Engine.now sim) :: !log in
  ignore (Desim.Engine.schedule sim ~at:30 (note "c"));
  ignore (Desim.Engine.schedule sim ~at:10 (note "a"));
  ignore (Desim.Engine.schedule sim ~at:20 (note "b"));
  Desim.Engine.run_until_empty sim;
  Alcotest.(check (list (pair string int)))
    "order and clocks"
    [ ("a", 10); ("b", 20); ("c", 30) ]
    (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Desim.Engine.now sim)

let test_engine_same_time_fifo () =
  let sim = Desim.Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag ->
      ignore
        (Desim.Engine.schedule sim ~at:5 (fun _ -> log := tag :: !log)))
    [ "first"; "second"; "third" ];
  Desim.Engine.run_until_empty sim;
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ]
    (List.rev !log)

let test_engine_handler_schedules_more () =
  let sim = Desim.Engine.create () in
  let hits = ref 0 in
  let rec ping sim =
    incr hits;
    if !hits < 5 then ignore (Desim.Engine.schedule_after sim ~delay:10 ping)
  in
  ignore (Desim.Engine.schedule sim ~at:0 ping);
  Desim.Engine.run_until_empty sim;
  Alcotest.(check int) "five pings" 5 !hits;
  Alcotest.(check int) "clock 40" 40 (Desim.Engine.now sim)

let test_engine_cancel () =
  let sim = Desim.Engine.create () in
  let fired = ref false in
  let h = Desim.Engine.schedule sim ~at:10 (fun _ -> fired := true) in
  Alcotest.(check int) "one pending" 1 (Desim.Engine.pending sim);
  Desim.Engine.cancel sim h;
  Alcotest.(check int) "none pending" 0 (Desim.Engine.pending sim);
  Desim.Engine.run_until_empty sim;
  Alcotest.(check bool) "never fired" false !fired;
  (* double-cancel is a no-op *)
  Desim.Engine.cancel sim h;
  Alcotest.(check int) "still none" 0 (Desim.Engine.pending sim)

let test_engine_no_past_scheduling () =
  let sim = Desim.Engine.create ~start_time:100 () in
  Alcotest.check_raises "past rejected"
    (Invalid_argument "Engine.schedule: at=50 is before now=100") (fun () ->
      ignore (Desim.Engine.schedule sim ~at:50 (fun _ -> ())))

let test_engine_run_until_horizon () =
  let sim = Desim.Engine.create () in
  let log = ref [] in
  List.iter
    (fun t ->
      ignore (Desim.Engine.schedule sim ~at:t (fun _ -> log := t :: !log)))
    [ 10; 20; 30; 40 ];
  Desim.Engine.run ~until:25 sim;
  Alcotest.(check (list int)) "only <= 25 fired" [ 10; 20 ] (List.rev !log);
  Alcotest.(check int) "clock parked at horizon" 25 (Desim.Engine.now sim);
  Alcotest.(check int) "two still pending" 2 (Desim.Engine.pending sim);
  Desim.Engine.run_until_empty sim;
  Alcotest.(check (list int)) "rest fired" [ 10; 20; 30; 40 ] (List.rev !log)

let test_engine_event_at_horizon_fires () =
  let sim = Desim.Engine.create () in
  let fired = ref false in
  ignore (Desim.Engine.schedule sim ~at:25 (fun _ -> fired := true));
  Desim.Engine.run ~until:25 sim;
  Alcotest.(check bool) "inclusive horizon" true !fired

let test_engine_step () =
  let sim = Desim.Engine.create () in
  ignore (Desim.Engine.schedule sim ~at:1 (fun _ -> ()));
  Alcotest.(check bool) "step true" true (Desim.Engine.step sim);
  Alcotest.(check bool) "step false when empty" false (Desim.Engine.step sim)

(* A tiny single-server queue: exponential arrivals and services; checks that
   the engine sustains a long event cascade and conservation holds. *)
let test_engine_mm1_smoke () =
  let sim = Desim.Engine.create () in
  let rng = Simrand.Rng.create 7 in
  let arrivals = ref 0 and departures = ref 0 and queue = ref 0 in
  let busy = ref false in
  let rec serve sim =
    if !queue > 0 && not !busy then begin
      busy := true;
      decr queue;
      let s = int_of_float (Simrand.Dist.exponential rng ~rate:0.2) + 1 in
      ignore
        (Desim.Engine.schedule_after sim ~delay:s (fun sim ->
             incr departures;
             busy := false;
             serve sim))
    end
  in
  let rec arrive n sim =
    if n > 0 then begin
      incr arrivals;
      incr queue;
      serve sim;
      let gap = int_of_float (Simrand.Dist.exponential rng ~rate:0.1) + 1 in
      ignore (Desim.Engine.schedule_after sim ~delay:gap (arrive (n - 1)))
    end
  in
  ignore (Desim.Engine.schedule sim ~at:0 (arrive 500));
  Desim.Engine.run_until_empty sim;
  Alcotest.(check int) "all arrived" 500 !arrivals;
  Alcotest.(check int) "all served" 500 !departures;
  Alcotest.(check int) "queue drained" 0 !queue

let () =
  Alcotest.run "desim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "to_sorted_list" `Quick
            test_heap_to_sorted_list_nondestructive;
        ] );
      ( "engine",
        [
          Alcotest.test_case "in order" `Quick test_engine_executes_in_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cascading" `Quick
            test_engine_handler_schedules_more;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "no past" `Quick test_engine_no_past_scheduling;
          Alcotest.test_case "horizon" `Quick test_engine_run_until_horizon;
          Alcotest.test_case "horizon inclusive" `Quick
            test_engine_event_at_horizon_fires;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "mm1 smoke" `Quick test_engine_mm1_smoke;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_heap_sorts ]);
    ]
