(* Bechamel benchmark harness.

   Two groups:
   - "micro": the building blocks (profile ops, event heap, greedy SGS, CP
     propagation, exact branch-and-bound, LNS, matchmaking) — the ablation
     surface for DESIGN.md's design choices;
   - one benchmark per table/figure of the paper ("table4", "fig2" ...
     "fig9"): a scaled-down instance of exactly the workload/manager
     configuration that regenerates that artefact (the full-scale series are
     produced by bin/experiments.exe; here we measure their cost and keep
     them exercised).

   Run with:  dune exec bench/main.exe  *)

open Bechamel
open Toolkit
module T = Mapreduce.Types

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let task_counter = ref 0

let mk_job ~id ~est ~deadline ~maps ~reduces =
  let fresh kind e =
    incr task_counter;
    { T.task_id = !task_counter; job_id = id; kind; exec_time = e; capacity_req = 1 }
  in
  {
    T.id;
    arrival = 0;
    earliest_start = est;
    deadline;
    map_tasks = Array.of_list (List.map (fresh T.Map_task) maps);
    reduce_tasks = Array.of_list (List.map (fresh T.Reduce_task) reduces);
  }

(* a contended 40-job batch instance for greedy/CP measurements *)
let batch_instance =
  let rng = Simrand.Rng.create 1 in
  let jobs =
    List.init 40 (fun i ->
        let maps =
          List.init (1 + Simrand.Rng.int rng 6) (fun _ -> 1 + Simrand.Rng.int rng 50)
        in
        let reduces =
          List.init (Simrand.Rng.int rng 4) (fun _ -> 1 + Simrand.Rng.int rng 50)
        in
        let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
        mk_job ~id:i
          ~est:(Simrand.Rng.int rng 100)
          ~deadline:(total + Simrand.Rng.int rng 150)
          ~maps ~reduces)
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:4 ~reduce_capacity:2 jobs

(* a small instance where exact search must run (greedy is suboptimal) *)
let exact_instance =
  let jobs =
    List.init 6 (fun i ->
        mk_job ~id:i ~est:0 ~deadline:(60 + (5 * i)) ~maps:[ 20; 15 ]
          ~reduces:[ 10 ])
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:1 jobs

let synth_cluster = T.uniform_cluster ~m:50 ~map_capacity:2 ~reduce_capacity:2

let synthetic_jobs ~n ~params seed =
  Mapreduce.Synthetic.generate
    { params with Mapreduce.Synthetic.n_jobs = n }
    ~cluster:synth_cluster ~seed

let fb_cluster = Mapreduce.Facebook.cluster ()

let facebook_jobs ~n ~lambda seed =
  Mapreduce.Facebook.generate
    { Mapreduce.Facebook.default with Mapreduce.Facebook.n_jobs = n; lambda }
    ~cluster:fb_cluster ~seed

let run_mrcp ?(cluster = synth_cluster) jobs () =
  let mgr = Mrcp.Manager.create ~cluster Mrcp.Manager.default_config in
  let driver = Opensim.Driver.of_mrcp mgr in
  (Opensim.Simulator.run ~driver ~jobs ()).Opensim.Simulator.n_late

let run_slot ?(cluster = synth_cluster) policy jobs () =
  let sched = Baselines.Slot_scheduler.create ~cluster ~policy in
  let driver = Opensim.Driver.of_slot_scheduler sched in
  (Opensim.Simulator.run ~driver ~jobs ()).Opensim.Simulator.n_late

(* ------------------------------------------------------------------ *)
(* micro benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let bench_profile =
  Test.make ~name:"profile: 1k adds + fits" @@ Staged.stage
  @@ fun () ->
  let p = Sched.Profile.create ~capacity:8 in
  for i = 0 to 999 do
    let start = Sched.Profile.earliest_fit p ~from:(i mod 97) ~duration:10 ~amount:1 in
    Sched.Profile.add p ~start ~duration:10 ~amount:1
  done

let bench_heap =
  Test.make ~name:"heap: 10k push/pop" @@ Staged.stage
  @@ fun () ->
  let h = Desim.Heap.create () in
  for i = 0 to 9_999 do
    Desim.Heap.push h ~key:((i * 7919) mod 65536) i
  done;
  let rec drain () = match Desim.Heap.pop h with None -> () | Some _ -> drain () in
  drain ()

let bench_greedy =
  Test.make ~name:"greedy EDF: 40-job batch" @@ Staged.stage
  @@ fun () -> ignore (Sched.Greedy.solve batch_instance)

let bench_model_build =
  Test.make ~name:"cp model build: 40-job batch" @@ Staged.stage
  @@ fun () ->
  ignore
    (Cp.Model.build batch_instance
       ~horizon:(Cp.Model.default_horizon batch_instance))

let bench_propagation =
  Test.make ~name:"cp root propagation: 40-job batch" @@ Staged.stage
  @@ fun () ->
  let m =
    Cp.Model.build batch_instance
      ~horizon:(Cp.Model.default_horizon batch_instance)
  in
  try Cp.Store.propagate m.Cp.Model.store with Cp.Store.Fail _ -> ()

let bench_exact =
  Test.make ~name:"cp exact B&B: 6-job contended batch" @@ Staged.stage
  @@ fun () -> ignore (Cp.Solver.solve exact_instance)

let bench_full_solve =
  Test.make ~name:"cp solve (seed+LB+search): 40-job batch" @@ Staged.stage
  @@ fun () -> ignore (Cp.Solver.solve batch_instance)

let bench_portfolio =
  Test.make ~name:"cp portfolio solve (2 domains): 40-job batch"
  @@ Staged.stage
  @@ fun () -> ignore (Cp.Portfolio.solve ~domains:2 batch_instance)

let bench_matchmaker =
  let solution, _ = Cp.Solver.solve batch_instance in
  let pending =
    Array.to_list batch_instance.Sched.Instance.jobs
    |> List.concat_map (fun (j : Sched.Instance.pending_job) ->
           Array.to_list j.Sched.Instance.pending_maps
           @ Array.to_list j.Sched.Instance.pending_reduces)
  in
  Test.make ~name:"matchmaker: 40-job combined schedule" @@ Staged.stage
  @@ fun () ->
  let mm = Mrcp.Matchmaker.create ~cluster:(T.uniform_cluster ~m:3 ~map_capacity:2 ~reduce_capacity:1) in
  ignore
    (Mrcp.Matchmaker.assign_all mm ~starts:solution.Sched.Solution.starts
       ~pending)

(* workflow extension: greedy + exact solve on a diamond-DAG batch *)
let workflow_instance =
  let tasks ~kind ~job es =
    Array.of_list
      (List.map
         (fun e ->
           incr task_counter;
           {
             T.task_id = !task_counter;
             job_id = job;
             kind;
             exec_time = e;
             capacity_req = 1;
           })
         es)
  in
  let diamond id =
    {
      Workflow.Dag.id;
      earliest_start = 10 * id;
      deadline = 200 + (40 * id);
      stages =
        [|
          { Workflow.Dag.stage_id = 0; pool = T.Map_task; tasks = tasks ~kind:T.Map_task ~job:id [ 20; 15 ] };
          { Workflow.Dag.stage_id = 1; pool = T.Map_task; tasks = tasks ~kind:T.Map_task ~job:id [ 30 ] };
          { Workflow.Dag.stage_id = 2; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 25 ] };
          { Workflow.Dag.stage_id = 3; pool = T.Reduce_task; tasks = tasks ~kind:T.Reduce_task ~job:id [ 10; 10 ] };
        |];
      precedences = [ (0, 1); (0, 2); (1, 3); (2, 3) ];
    }
  in
  {
    Workflow.Solve.map_capacity = 3;
    reduce_capacity = 2;
    jobs = Array.init 8 diamond;
  }

let bench_workflow =
  Test.make ~name:"workflow: 8 diamond DAGs, greedy + B&B" @@ Staged.stage
  @@ fun () -> ignore (Workflow.Solve.solve workflow_instance)

(* LP comparator: simplex on a medium LP, and the time-indexed MILP *)
let bench_simplex =
  let n = 30 in
  let rng = Simrand.Rng.create 3 in
  let problem =
    {
      Lp.Simplex.objective =
        Array.init n (fun _ -> Simrand.Rng.float rng 4. -. 2.);
      rows =
        List.init 40 (fun _ ->
            {
              Lp.Simplex.coeffs =
                Array.init n (fun _ -> Simrand.Rng.float rng 2.);
              relation = Lp.Simplex.Le;
              rhs = 5. +. Simrand.Rng.float rng 10.;
            });
    }
  in
  Test.make ~name:"lp: simplex 30 vars x 40 rows" @@ Staged.stage
  @@ fun () -> ignore (Lp.Simplex.solve problem)

let bench_milp =
  let jobs =
    List.init 3 (fun id ->
        mk_job ~id ~est:0 ~deadline:14 ~maps:[ 3; 2 ] ~reduces:[ 2 ])
  in
  let inst =
    Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:2 ~reduce_capacity:1 jobs
  in
  Test.make ~name:"lp: time-indexed MILP, 3-job batch" @@ Staged.stage
  @@ fun () ->
  let m = Lp.Milp_model.build inst ~quantum:1 ~horizon_slots:20 in
  ignore (Lp.Milp_model.solve m)

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      bench_profile;
      bench_heap;
      bench_greedy;
      bench_model_build;
      bench_propagation;
      bench_exact;
      bench_full_solve;
      bench_portfolio;
      bench_matchmaker;
      bench_workflow;
      bench_simplex;
      bench_milp;
    ]

(* ------------------------------------------------------------------ *)
(* one benchmark per paper artefact (scaled-down configurations)       *)
(* ------------------------------------------------------------------ *)

let defaults = Expkit.Figures.synthetic_defaults

(* Table 3/4 generators *)
let bench_table3 =
  Test.make ~name:"table3: generate 100 synthetic jobs" @@ Staged.stage
  @@ fun () -> ignore (synthetic_jobs ~n:100 ~params:defaults 5)

let bench_table4 =
  Test.make ~name:"table4: generate 100 facebook jobs" @@ Staged.stage
  @@ fun () -> ignore (facebook_jobs ~n:100 ~lambda:0.0004 11)

(* Fig. 2/3: Facebook comparison, both managers *)
let fb_jobs_small = facebook_jobs ~n:40 ~lambda:0.0004 3

let bench_fig2_mrcp =
  Test.make ~name:"fig2: facebook sim, mrcp-rm (40 jobs)" @@ Staged.stage
  @@ fun () -> ignore (run_mrcp ~cluster:fb_cluster fb_jobs_small ())

let bench_fig2_minedf =
  Test.make ~name:"fig2-3: facebook sim, minedf-wc (40 jobs)" @@ Staged.stage
  @@ fun () ->
  ignore
    (run_slot ~cluster:fb_cluster Baselines.Slot_scheduler.Min_edf_wc
       fb_jobs_small ())

(* Figs. 4-9: factor-at-a-time synthetic sims at the extreme of each factor *)
let sim_bench ~name ~params ?(m = 50) () =
  let cluster = T.uniform_cluster ~m ~map_capacity:2 ~reduce_capacity:2 in
  let jobs =
    Mapreduce.Synthetic.generate
      { params with Mapreduce.Synthetic.n_jobs = 40 }
      ~cluster ~seed:9
  in
  Test.make ~name @@ Staged.stage
  @@ fun () -> ignore (run_mrcp ~cluster jobs ())

let bench_fig4 =
  sim_bench ~name:"fig4: sim at e_max=100"
    ~params:{ defaults with Mapreduce.Synthetic.e_max = 100 } ()

let bench_fig5 =
  sim_bench ~name:"fig5: sim at s_max=250000"
    ~params:{ defaults with Mapreduce.Synthetic.s_max = 250_000 } ()

let bench_fig6 =
  sim_bench ~name:"fig6: sim at p=0.9"
    ~params:{ defaults with Mapreduce.Synthetic.p = 0.9 } ()

let bench_fig7 =
  sim_bench ~name:"fig7: sim at d_M=2"
    ~params:{ defaults with Mapreduce.Synthetic.d_m = 2. } ()

let bench_fig8 =
  sim_bench ~name:"fig8: sim at lambda=0.02"
    ~params:{ defaults with Mapreduce.Synthetic.lambda = 0.02 } ()

let bench_fig9 =
  sim_bench ~name:"fig9: sim at m=25" ~m:25 ~params:defaults ()

let figure_tests =
  Test.make_grouped ~name:"figures"
    [
      bench_table3;
      bench_table4;
      bench_fig2_mrcp;
      bench_fig2_minedf;
      bench_fig4;
      bench_fig5;
      bench_fig6;
      bench_fig7;
      bench_fig8;
      bench_fig9;
    ]

(* ------------------------------------------------------------------ *)
(* portfolio comparison mode (--portfolio-compare): sequential vs      *)
(* portfolio solve on the fixture instances, emitted as JSON so        *)
(* BENCH_*.json snapshots can track the speedup across PRs             *)
(* ------------------------------------------------------------------ *)

(* a larger instance that keeps the LNS regime busy for the comparison *)
let batch80_instance =
  let rng = Simrand.Rng.create 2 in
  let jobs =
    List.init 80 (fun i ->
        let maps =
          List.init (1 + Simrand.Rng.int rng 6) (fun _ -> 1 + Simrand.Rng.int rng 50)
        in
        let reduces =
          List.init (Simrand.Rng.int rng 4) (fun _ -> 1 + Simrand.Rng.int rng 50)
        in
        let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
        mk_job ~id:i
          ~est:(Simrand.Rng.int rng 200)
          ~deadline:(total + Simrand.Rng.int rng 200)
          ~maps ~reduces)
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:4 ~reduce_capacity:2 jobs

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let portfolio_compare ~domains ~out () =
  let options =
    { Cp.Solver.default_options with Cp.Solver.time_limit = 2.0; seed = 42 }
  in
  let case name inst =
    let seq_sol, seq_stats = Cp.Solver.solve ~options inst in
    let par_sol, par_stats = Cp.Portfolio.solve ~domains ~options inst in
    let nodes_per_sec nodes t =
      if t > 0. then float_of_int nodes /. t else 0.
    in
    let workers =
      par_stats.Cp.Portfolio.workers
      |> Array.map (fun (w : Cp.Portfolio.worker_stats) ->
             Printf.sprintf
               {|{"strategy":"%s","late":%d,"nodes":%d,"failures":%d,"lns_moves":%d,"proved":%b,"elapsed_s":%.6f,"nodes_per_sec":%.1f}|}
               (json_escape w.Cp.Portfolio.strategy)
               w.Cp.Portfolio.w_late_jobs w.Cp.Portfolio.w_nodes
               w.Cp.Portfolio.w_failures w.Cp.Portfolio.w_lns_moves
               w.Cp.Portfolio.w_proved w.Cp.Portfolio.w_elapsed
               (nodes_per_sec w.Cp.Portfolio.w_nodes w.Cp.Portfolio.w_elapsed))
      |> Array.to_list |> String.concat ","
    in
    let seq_t = seq_stats.Cp.Solver.elapsed in
    let par_t = par_stats.Cp.Portfolio.base.Cp.Solver.elapsed in
    Printf.sprintf
      {|{"case":"%s","seq":{"late":%d,"tardiness":%d,"nodes":%d,"elapsed_s":%.6f,"nodes_per_sec":%.1f,"proved":%b},"portfolio":{"late":%d,"tardiness":%d,"nodes":%d,"elapsed_s":%.6f,"nodes_per_sec":%.1f,"proved":%b,"winner":"%s","workers":[%s]},"speedup":%.3f}|}
      name seq_sol.Sched.Solution.late_jobs seq_sol.Sched.Solution.total_tardiness
      seq_stats.Cp.Solver.nodes seq_t
      (nodes_per_sec seq_stats.Cp.Solver.nodes seq_t)
      seq_stats.Cp.Solver.proved_optimal
      par_sol.Sched.Solution.late_jobs par_sol.Sched.Solution.total_tardiness
      par_stats.Cp.Portfolio.base.Cp.Solver.nodes par_t
      (nodes_per_sec par_stats.Cp.Portfolio.base.Cp.Solver.nodes par_t)
      par_stats.Cp.Portfolio.base.Cp.Solver.proved_optimal
      (json_escape par_stats.Cp.Portfolio.winner)
      workers
      (if par_t > 0. then seq_t /. par_t else 0.)
  in
  let cases =
    [
      case "exact6" exact_instance;
      case "batch40" batch_instance;
      case "batch80" batch80_instance;
    ]
  in
  let json =
    Printf.sprintf
      {|{"bench":"portfolio-compare","domains":%d,"cases":[%s]}|} domains
      (String.concat "," cases)
  in
  print_endline json;
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* propagation-kernel comparison mode (--prop-compare): the same       *)
(* branch-and-bound search run once per kernel (naive, timetable,      *)
(* edge-finding, both) on three fixtures — a Fig. 2 Facebook batch on  *)
(* the 64x(1,1) cluster, the contended 40-job batch, and a unary       *)
(* cap-1 batch that engages the disjunctive edge finder — emitted as   *)
(* JSON so BENCH_prop.json snapshots can track kernel throughput       *)
(* across PRs                                                          *)
(* ------------------------------------------------------------------ *)

(* Fig. 2 workload as a single batch: Facebook-sampled jobs on the
   64x(1,1) cluster, i.e. combined pool capacities 64/64.  8 jobs is already
   ~600 tasks; the search is node-limited rather than run to completion. *)
let fb_batch_instance =
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:64 ~reduce_capacity:64
    (facebook_jobs ~n:8 ~lambda:0.0004 3)

(* unary pools: every pool has capacity 1, so the edge finder engages *)
let unary_instance =
  let rng = Simrand.Rng.create 11 in
  let jobs =
    List.init 8 (fun i ->
        let maps =
          List.init (1 + Simrand.Rng.int rng 3) (fun _ -> 1 + Simrand.Rng.int rng 20)
        in
        let reduces =
          List.init (Simrand.Rng.int rng 2) (fun _ -> 1 + Simrand.Rng.int rng 20)
        in
        let total = List.fold_left ( + ) 0 maps + List.fold_left ( + ) 0 reduces in
        mk_job ~id:i
          ~est:(Simrand.Rng.int rng 20)
          ~deadline:((total / 2) + Simrand.Rng.int rng 60)
          ~maps ~reduces)
  in
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:1 ~reduce_capacity:1 jobs

let prop_compare ~fail_limit ~out () =
  let run_kernel ~limits inst kernel =
    let model =
      Cp.Model.build ~kernel inst ~horizon:(Cp.Model.default_horizon inst)
    in
    let greedy = Sched.Greedy.solve inst in
    model.Cp.Model.bound := greedy.Sched.Solution.late_jobs + 1;
    let t0 = Unix.gettimeofday () in
    let o = Cp.Search.run model limits in
    let dt = Unix.gettimeofday () -. t0 in
    let late =
      match o.Cp.Search.best with
      | Some s -> s.Sched.Solution.late_jobs
      | None -> greedy.Sched.Solution.late_jobs
    in
    let store = model.Cp.Model.store in
    ( kernel,
      o.Cp.Search.nodes,
      o.Cp.Search.failures,
      late,
      o.Cp.Search.proved_optimal,
      Cp.Store.stats_propagations store,
      Cp.Store.stats_wakeups_skipped store,
      Cp.Store.stats_scratch_reuse store,
      Cp.Store.stats_edge_finder_prunes store,
      dt )
  in
  let per_sec count t = if t > 0. then float_of_int count /. t else 0. in
  let case name inst ~limits =
    let runs = List.map (run_kernel ~limits inst) Cp.Propagators.all_kernels in
    let naive_nps =
      List.fold_left
        (fun acc (k, nodes, _, _, _, _, _, _, _, dt) ->
          if k = Cp.Propagators.Naive then per_sec nodes dt else acc)
        0. runs
    in
    let kernels =
      runs
      |> List.map
           (fun (k, nodes, failures, late, proved, props, skipped, reuse,
                 ef_prunes, dt) ->
             let nps = per_sec nodes dt in
             Printf.sprintf
               {|{"kernel":"%s","late":%d,"nodes":%d,"failures":%d,"proved":%b,"propagations":%d,"wakeups_skipped":%d,"scratch_reuse":%d,"edge_finder_prunes":%d,"elapsed_s":%.6f,"nodes_per_sec":%.1f,"props_per_sec":%.1f,"speedup_vs_naive":%.3f}|}
               (json_escape (Cp.Propagators.kernel_to_string k))
               late nodes failures proved props skipped reuse ef_prunes dt nps
               (per_sec props dt)
               (if naive_nps > 0. then nps /. naive_nps else 0.))
      |> String.concat ","
    in
    Printf.sprintf {|{"case":"%s","kernels":[%s]}|} name kernels
  in
  let cases =
    [
      (* the fb batch never runs dry within any reasonable fail budget, so
         it is node-limited instead: same node count per kernel, compare
         wall time *)
      case "fig2-fb8" fb_batch_instance
        ~limits:
          { Cp.Search.no_limits with Cp.Search.node_limit = 20_000 };
      case "batch40" batch_instance
        ~limits:{ Cp.Search.no_limits with Cp.Search.fail_limit };
      case "unary8" unary_instance
        ~limits:{ Cp.Search.no_limits with Cp.Search.fail_limit };
    ]
  in
  let json =
    Printf.sprintf
      {|{"bench":"prop-compare","fail_limit":%d,"cases":[%s]}|} fail_limit
      (String.concat "," cases)
  in
  print_endline json;
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* warm-start comparison mode (--warm-compare): the Fig. 2 Facebook    *)
(* workload (lambda = 3e-4, seed 42) simulated twice — cold re-solve   *)
(* on every manager invocation (the paper's behaviour) vs warm-start   *)
(* re-solving with the plan cache — emitted as JSON so CI can track    *)
(* the per-invocation overhead saving across PRs                       *)
(* ------------------------------------------------------------------ *)

let warm_compare ~jobs_n ~out () =
  let lambda = 0.0003 and seed = 42 in
  let jobs = facebook_jobs ~n:jobs_n ~lambda seed in
  let run ~warm_start =
    let mgr =
      Mrcp.Manager.create ~cluster:fb_cluster
        { Mrcp.Manager.default_config with Mrcp.Manager.warm_start }
    in
    let driver = Opensim.Driver.of_mrcp mgr in
    let r = Opensim.Simulator.run ~driver ~jobs () in
    let solves = Mrcp.Manager.solve_count mgr in
    let overhead = Mrcp.Manager.overhead_seconds mgr in
    Printf.sprintf
      {|{"mode":"%s","n_late":%d,"jobs":%d,"solves":%d,"cache_hits":%d,"overhead_s":%.6f,"o_per_invocation_s":%.6f,"o_max_invocation_s":%.6f,"o_per_job_s":%.6f}|}
      (if warm_start then "warm" else "cold")
      r.Opensim.Simulator.n_late r.Opensim.Simulator.jobs_total solves
      (Mrcp.Manager.cache_hit_count mgr)
      overhead
      (if solves > 0 then overhead /. float_of_int solves else 0.)
      (Mrcp.Manager.max_invocation_seconds mgr)
      r.Opensim.Simulator.overhead_per_job_s
  in
  let cold = run ~warm_start:false in
  let warm = run ~warm_start:true in
  let json =
    Printf.sprintf
      {|{"bench":"warm-compare","workload":"facebook","lambda":%g,"seed":%d,"jobs":%d,"cold":%s,"warm":%s}|}
      lambda seed jobs_n cold warm
  in
  print_endline json;
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* session comparison mode (--session-compare): the acceptance         *)
(* workload (synthetic, lambda = 0.05, 40 jobs, seed 42) simulated     *)
(* twice — per-invocation model rebuild (--no-session) vs the          *)
(* persistent Cp.Session store — emitted as JSON so BENCH_session.json *)
(* snapshots can track the per-invocation overhead O saving across PRs *)
(* ------------------------------------------------------------------ *)

let session_compare ~jobs_n ~out () =
  let lambda = 0.05 and seed = 42 in
  (* Contended variant of the Fig. 2 workload: a small 4-host cluster with
     modest jobs (<= 12 maps, <= 4 reduces) at lambda = 0.05 keeps a
     dozen-plus jobs in flight with deadlines tight enough (d_m = 1.5) that
     most invocations need an exact search, and the raised
     [exact_task_limit] routes them there (the LNS regime never builds a
     model, so it cannot show a session effect either way).  This is the
     regime where the session pays off twice: the model rebuild is amortized
     into a root-level diff, and the carried optimality certificate lets
     most searches stop at their first improving solution instead of
     exhausting the tree to re-prove what the previous invocation already
     established. *)
  let cluster = T.uniform_cluster ~m:4 ~map_capacity:2 ~reduce_capacity:2 in
  let params =
    {
      Expkit.Figures.synthetic_defaults with
      Mapreduce.Synthetic.n_jobs = jobs_n;
      lambda;
      map_tasks_max = 12;
      reduce_tasks_max = 4;
      e_max = 25;
      s_max = 100;
      d_m = 1.5;
    }
  in
  let solver =
    { Cp.Solver.default_options with exact_task_limit = 400; fail_limit = 2_000 }
  in
  let jobs = Mapreduce.Synthetic.generate params ~cluster ~seed in
  let run ~session =
    (* the journal is written outside the timed invocation window, so it
       does not inflate the O figures; its invoke events give the exact
       per-invocation decision-latency quantiles *)
    let journal = Obs.Journal.create () in
    let mgr =
      Mrcp.Manager.create ~cluster
        { Mrcp.Manager.default_config with
          Mrcp.Manager.solver;
          session;
          journal = Some journal }
    in
    let driver = Opensim.Driver.of_mrcp mgr in
    let r = Opensim.Simulator.run ~journal ~driver ~jobs () in
    let solves = Mrcp.Manager.solve_count mgr in
    let overhead = Mrcp.Manager.overhead_seconds mgr in
    let o_inv = if solves > 0 then overhead /. float_of_int solves else 0. in
    let o_p50, o_p99 =
      match Report.Audit.of_string (Obs.Journal.to_string journal) with
      | Ok rep ->
          ( Report.Audit.latency_quantile rep 0.5,
            Report.Audit.latency_quantile rep 0.99 )
      | Error _ -> (0., 0.)
    in
    ( Printf.sprintf
        {|{"mode":"%s","n_late":%d,"jobs":%d,"solves":%d,"cache_hits":%d,"overhead_s":%.6f,"o_per_invocation_s":%.6f,"o_p50_s":%.6f,"o_p99_s":%.6f,"o_max_invocation_s":%.6f,"o_per_job_s":%.6f}|}
        (if session then "session" else "cold")
        r.Opensim.Simulator.n_late r.Opensim.Simulator.jobs_total solves
        (Mrcp.Manager.cache_hit_count mgr)
        overhead o_inv o_p50 o_p99
        (Mrcp.Manager.max_invocation_seconds mgr)
        r.Opensim.Simulator.overhead_per_job_s,
      o_inv )
  in
  let cold_json, cold_o = run ~session:false in
  let sess_json, sess_o = run ~session:true in
  let reduction_pct =
    if cold_o > 0. then 100. *. (cold_o -. sess_o) /. cold_o else 0.
  in
  let json =
    Printf.sprintf
      {|{"bench":"session-compare","workload":"synthetic","lambda":%g,"seed":%d,"jobs":%d,"cold":%s,"session":%s,"o_reduction_pct":%.2f}|}
      lambda seed jobs_n cold_json sess_json reduction_pct
  in
  print_endline json;
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let benchmark tests =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  Benchmark.all cfg Instance.[ monotonic_clock ] tests

let analyze results =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock results

let print_group name results =
  Printf.printf "\n== %s ==\n" name;
  let rows = ref [] in
  Hashtbl.iter
    (fun test_name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      rows := (test_name, estimate, r2) :: !rows)
    results;
  List.iter
    (fun (test_name, estimate, r2) ->
      let pretty =
        if estimate >= 1e9 then Printf.sprintf "%8.3f s " (estimate /. 1e9)
        else if estimate >= 1e6 then Printf.sprintf "%8.3f ms" (estimate /. 1e6)
        else if estimate >= 1e3 then Printf.sprintf "%8.3f us" (estimate /. 1e3)
        else Printf.sprintf "%8.0f ns" estimate
      in
      Printf.printf "  %-45s %s  (r2=%.3f)\n" test_name pretty r2)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* restart-search comparison mode (--search-compare): the same        *)
(* branch-and-bound model solved by plain DFS, Luby restarts without  *)
(* nogood recording, and Luby restarts with nogood recording, on      *)
(* Fig. 2 Facebook batches (full-width and contended variants) plus   *)
(* the synthetic 40-job batch — all at one shared fail budget, so the *)
(* comparison is about which nodes each search visits, emitted as     *)
(* JSON so BENCH_search.json snapshots can track search quality       *)
(* across PRs                                                         *)
(* ------------------------------------------------------------------ *)

(* contended Fig. 2 variants: the same Facebook-sampled jobs squeezed
   onto an eighth of the cluster, so lateness is unavoidable and the
   search has real packing decisions to get wrong early *)
let fb_tight_instance =
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:8 ~reduce_capacity:8
    (facebook_jobs ~n:8 ~lambda:0.0004 3)

(* half-width Fig. 2 variant: contended but not saturated — the regime
   where restart search pays off most visibly *)
let fb10_half_instance =
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:32 ~reduce_capacity:32
    (facebook_jobs ~n:10 ~lambda:0.0004 5)

(* a draw where plain DFS does prove optimality, eventually — measures
   fails-to-proof rather than proof-vs-no-proof *)
let fb8_seed11_instance =
  Sched.Instance.of_fresh_jobs ~now:0 ~map_capacity:64 ~reduce_capacity:64
    (facebook_jobs ~n:8 ~lambda:0.0004 11)

let search_compare ~fail_limit ~out () =
  let run_arm inst (name, restart, with_nogoods) =
    let model =
      Cp.Model.build inst ~horizon:(Cp.Model.default_horizon inst)
    in
    let greedy = Sched.Greedy.solve inst in
    model.Cp.Model.bound := greedy.Sched.Solution.late_jobs + 1;
    let db =
      if with_nogoods then begin
        let d = Cp.Nogood.create () in
        Cp.Nogood.attach d model.Cp.Model.store
          ~vars:
            (Array.append model.Cp.Model.lates
               (Array.map
                  (fun tv -> tv.Cp.Model.var)
                  model.Cp.Model.starts));
        Some d
      end
      else None
    in
    let t0 = Unix.gettimeofday () in
    let o =
      Cp.Search.run ~restart ?nogoods:db model
        { Cp.Search.no_limits with Cp.Search.fail_limit }
    in
    let dt = Unix.gettimeofday () -. t0 in
    let late =
      match o.Cp.Search.best with
      | Some s -> s.Sched.Solution.late_jobs
      | None -> greedy.Sched.Solution.late_jobs
    in
    let nogoods, unit_props =
      match db with
      | Some d -> (Cp.Nogood.size d, Cp.Nogood.stats_unit_props d)
      | None -> (0, 0)
    in
    Printf.sprintf
      {|{"search":"%s","late":%d,"nodes":%d,"failures":%d,"restarts":%d,"nogoods":%d,"unit_props":%d,"proved":%b,"elapsed_s":%.6f}|}
      (json_escape name) late o.Cp.Search.nodes o.Cp.Search.failures
      o.Cp.Search.restarts nogoods unit_props o.Cp.Search.proved_optimal dt
  in
  let arms =
    [
      ("dfs", Cp.Restart.Off, false);
      ("luby", Cp.Restart.default, false);
      ("luby+nogoods", Cp.Restart.default, true);
    ]
  in
  let case name inst =
    Printf.sprintf {|{"case":"%s","searches":[%s]}|} (json_escape name)
      (String.concat "," (List.map (run_arm inst) arms))
  in
  let cases =
    [
      case "fig2-fb8" fb_batch_instance;
      case "fig2-fb10-half" fb10_half_instance;
      case "fig2-fb8-s11" fb8_seed11_instance;
      case "fig2-fb8-tight" fb_tight_instance;
      case "batch40" batch_instance;
    ]
  in
  let json =
    Printf.sprintf
      {|{"bench":"search-compare","fail_limit":%d,"cases":[%s]}|} fail_limit
      (String.concat "," cases)
  in
  print_endline json;
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  | None -> ()

let () =
  let argv = Sys.argv in
  if Array.exists (( = ) "--portfolio-compare") argv then begin
    (* bench/main.exe --portfolio-compare [N] [--out FILE]:
       sequential-vs-portfolio JSON, optionally also written to FILE *)
    let n = Array.length argv in
    let domains =
      let rec find i =
        if i >= n then Cp.Portfolio.recommended_domains ()
        else if argv.(i) = "--portfolio-compare" && i + 1 < n then
          match int_of_string_opt argv.(i + 1) with
          | Some d when d > 0 -> d
          | _ -> Cp.Portfolio.recommended_domains ()
        else find (i + 1)
      in
      find 1
    in
    let out =
      let rec find i =
        if i >= n then None
        else if argv.(i) = "--out" && i + 1 < n then Some argv.(i + 1)
        else find (i + 1)
      in
      find 1
    in
    portfolio_compare ~domains ~out ()
  end
  else if Array.exists (( = ) "--prop-compare") argv then begin
    (* bench/main.exe --prop-compare [FAIL_LIMIT] [--out FILE]:
       per-kernel search comparison JSON on the fixture instances *)
    let n = Array.length argv in
    let fail_limit =
      let rec find i =
        if i >= n then 20_000
        else if argv.(i) = "--prop-compare" && i + 1 < n then
          match int_of_string_opt argv.(i + 1) with
          | Some f when f > 0 -> f
          | _ -> 20_000
        else find (i + 1)
      in
      find 1
    in
    let out =
      let rec find i =
        if i >= n then None
        else if argv.(i) = "--out" && i + 1 < n then Some argv.(i + 1)
        else find (i + 1)
      in
      find 1
    in
    prop_compare ~fail_limit ~out ()
  end
  else if Array.exists (( = ) "--search-compare") argv then begin
    (* bench/main.exe --search-compare [FAIL_LIMIT] [--out FILE]:
       dfs vs luby vs luby+nogoods JSON on the Fig. 2 fixtures *)
    let n = Array.length argv in
    let fail_limit =
      let rec find i =
        if i >= n then 20_000
        else if argv.(i) = "--search-compare" && i + 1 < n then
          match int_of_string_opt argv.(i + 1) with
          | Some f when f > 0 -> f
          | _ -> 20_000
        else find (i + 1)
      in
      find 1
    in
    let out =
      let rec find i =
        if i >= n then None
        else if argv.(i) = "--out" && i + 1 < n then Some argv.(i + 1)
        else find (i + 1)
      in
      find 1
    in
    search_compare ~fail_limit ~out ()
  end
  else if Array.exists (( = ) "--warm-compare") argv then begin
    (* bench/main.exe --warm-compare [JOBS] [--out FILE]:
       cold-vs-warm manager comparison JSON on the Fig. 2 workload *)
    let n = Array.length argv in
    let jobs_n =
      let rec find i =
        if i >= n then 200
        else if argv.(i) = "--warm-compare" && i + 1 < n then
          match int_of_string_opt argv.(i + 1) with
          | Some j when j > 0 -> j
          | _ -> 200
        else find (i + 1)
      in
      find 1
    in
    let out =
      let rec find i =
        if i >= n then None
        else if argv.(i) = "--out" && i + 1 < n then Some argv.(i + 1)
        else find (i + 1)
      in
      find 1
    in
    warm_compare ~jobs_n ~out ()
  end
  else if Array.exists (( = ) "--session-compare") argv then begin
    (* bench/main.exe --session-compare [JOBS] [--out FILE]:
       cold-vs-persistent-session manager comparison JSON on the
       synthetic lambda=0.05 workload *)
    let n = Array.length argv in
    let jobs_n =
      let rec find i =
        if i >= n then 40
        else if argv.(i) = "--session-compare" && i + 1 < n then
          match int_of_string_opt argv.(i + 1) with
          | Some j when j > 0 -> j
          | _ -> 40
        else find (i + 1)
      in
      find 1
    in
    let out =
      let rec find i =
        if i >= n then None
        else if argv.(i) = "--out" && i + 1 < n then Some argv.(i + 1)
        else find (i + 1)
      in
      find 1
    in
    session_compare ~jobs_n ~out ()
  end
  else begin
    Printf.printf
      "MRCP-RM benchmark harness (bechamel); full-scale figure regeneration \
       lives in bin/experiments.exe\n";
    print_group "micro" (analyze (benchmark micro_tests));
    print_group "figures (scaled-down)" (analyze (benchmark figure_tests));
    Printf.printf "\ndone.\n"
  end
