#!/usr/bin/env python3
"""Validate a decision-journal JSONL file (written with --journal).

Usage: bench/check_journal.py JOURNAL.jsonl

Checks the envelope contract every consumer (mrcp_audit, the determinism
tests) relies on:

  - every line is a JSON object with v in {1, 2} (v2 added the chaos
    fault events and the run-end fault totals);
  - seq is contiguous from 0 (the file is complete and ordered);
  - t (virtual ms) is a non-negative integer, non-decreasing within a
    run (it resets after each run-end: one journal may hold several
    replications);
  - ev is a known event kind carrying its required fields;
  - the "wall" key, when present, is the LAST key of the object -- the
    determinism contract canonicalizes lines by stripping the trailing
    wall suffix textually, so anything after it would survive the strip
    and break same-seed fingerprint equality.

Exit 0 when the journal is well-formed, 1 otherwise (one line per
violation on stderr).
"""

import json
import sys

REQUIRED = {
    "arrival": {"job", "est", "deadline", "tasks"},
    "submit": {"job", "action", "reason", "est", "deadline"},
    "invoke": {"invocation", "arrived", "active_jobs", "pending_tasks",
               "late", "late_delta", "cache_hit", "plan_version", "solve",
               "plan"},
    "sla": {"job", "to"},
    "job-done": {"job", "est", "deadline", "completion", "late",
                 "first_start", "queue_wait_ms", "exec_ms", "lateness_ms"},
    "snapshot": {"completed", "solves"},
    "run-end": {"manager", "jobs_total", "n_late", "solves", "makespan_ms"},
    "resource-crash": {"resource", "lost", "lost_ms", "rejoin"},
    "resource-rejoin": {"resource"},
    "task-attempt-failed": {"task", "job", "attempt", "wasted_ms"},
    "straggler": {"task", "job", "attempt", "factor_1000", "exec_ms",
                  "inflated_ms"},
}

# fault totals every v2 run-end line must carry
RUN_END_V2 = {"crashes", "rejoins", "task_failures", "stragglers",
              "lost_work_ms"}

SOLVE_REQUIRED = {"stop_reason", "seed_late", "lower_bound", "proved",
                  "warm_seeded", "nodes", "failures", "restarts", "lns_moves"}

STOP_REASONS = {"proved", "hit_carried_bound", "cache_hit", "fail_limit",
                "node_limit", "wall_limit", "lns_stall", "interrupted"}


def main(path):
    errors = 0

    def err(lineno, msg):
        nonlocal errors
        errors += 1
        print(f"{path}:{lineno}: {msg}", file=sys.stderr)

    events = runs = 0
    expect_seq = 0
    last_t = None
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                # parse twice: once keeping top-level key order (for the
                # wall-is-last check), once normally for nested values
                pairs = json.loads(raw, object_pairs_hook=list)
                ev = json.loads(raw)
            except json.JSONDecodeError as e:
                err(lineno, f"not JSON: {e}")
                continue
            keys = [k for k, _ in pairs]
            events += 1

            if ev.get("v") not in (1, 2):
                err(lineno, f"unsupported version {ev.get('v')!r}")
            if ev.get("seq") != expect_seq:
                err(lineno, f"seq {ev.get('seq')!r}, expected {expect_seq}")
                expect_seq = ev.get("seq", expect_seq) if isinstance(
                    ev.get("seq"), int) else expect_seq
            expect_seq += 1

            t = ev.get("t")
            if not isinstance(t, int) or t < 0:
                err(lineno, f"t must be a non-negative int, got {t!r}")
            elif last_t is not None and t < last_t:
                err(lineno, f"t went backwards: {last_t} -> {t}")
            else:
                last_t = t

            if "wall" in keys and keys[-1] != "wall":
                err(lineno, "wall is not the last key (breaks the "
                            "canonicalization contract)")

            kind = ev.get("ev")
            if kind not in REQUIRED:
                err(lineno, f"unknown event kind {kind!r}")
                continue
            missing = REQUIRED[kind] - set(keys)
            if missing:
                err(lineno, f"{kind}: missing fields {sorted(missing)}")

            if kind == "invoke":
                solve = ev.get("solve")
                if isinstance(solve, dict):
                    missing = SOLVE_REQUIRED - solve.keys()
                    if missing:
                        err(lineno, f"solve: missing fields {sorted(missing)}")
                    if solve.get("stop_reason") not in STOP_REASONS:
                        err(lineno,
                            f"unknown stop_reason {solve.get('stop_reason')!r}")
                wall = ev.get("wall")
                if not isinstance(wall, dict) or "elapsed_s" not in wall:
                    err(lineno, "invoke: missing wall.elapsed_s")
            elif kind == "run-end":
                runs += 1
                last_t = None  # virtual time restarts with the next run
                if ev.get("v") == 2:
                    missing = RUN_END_V2 - set(keys)
                    if missing:
                        err(lineno,
                            f"run-end: missing v2 fault totals "
                            f"{sorted(missing)}")
            elif kind == "straggler":
                if (isinstance(ev.get("inflated_ms"), int)
                        and isinstance(ev.get("exec_ms"), int)
                        and ev["inflated_ms"] <= ev["exec_ms"]):
                    err(lineno, "straggler: inflated_ms <= exec_ms")
            elif kind == "resource-crash":
                if not isinstance(ev.get("lost"), list):
                    err(lineno, "resource-crash: lost must be a list")

    if events == 0:
        err(0, "empty journal")
    if events and runs == 0:
        err(0, "no run-end event (truncated journal)")
    if errors == 0:
        print(f"{path}: {events} events, {runs} run(s), journal well-formed")
    return 1 if errors else 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
