#!/usr/bin/env python3
"""Diff a freshly run bench JSON against its committed baseline.

Usage: bench/diff.py BASELINE.json FRESH.json

Understands the three snapshot formats bench/main.exe emits
(prop-compare, search-compare, session-compare) and prints one line per
tracked metric.  A regression of more than REGRESSION_PCT — lower
throughput (nodes/s), or higher per-invocation overhead O — is surfaced
as a GitHub Actions ::warning:: annotation so it shows up on the PR
without failing the (non-blocking) CI step.

Exit code is always 0: the numbers are tracked across PRs, not gated on.
CI-hardware noise makes a hard gate flap; a human reads the annotation.
"""

import json
import sys

REGRESSION_PCT = 20.0


def pct(base, fresh):
    if base == 0:
        return 0.0
    return 100.0 * (fresh - base) / base


def warn(msg):
    print(f"::warning title=bench regression::{msg}")


def report(label, base, fresh, *, higher_is_better, unit=""):
    """One tracked metric: print the move, warn past the threshold."""
    delta = pct(base, fresh)
    arrow = "better" if (delta > 0) == higher_is_better or delta == 0 else "worse"
    print(f"  {label}: {base:g}{unit} -> {fresh:g}{unit} ({delta:+.1f}%, {arrow})")
    regressed = -delta if higher_is_better else delta
    if regressed > REGRESSION_PCT:
        warn(f"{label}: {base:g}{unit} -> {fresh:g}{unit} ({delta:+.1f}%)")


def diff_prop(base, fresh):
    fresh_by = {
        (c["case"], k["kernel"]): k
        for c in fresh.get("cases", [])
        for k in c.get("kernels", [])
    }
    for c in base.get("cases", []):
        for k in c.get("kernels", []):
            key = (c["case"], k["kernel"])
            f = fresh_by.get(key)
            if f is None:
                print(f"  {key}: dropped from fresh run")
                continue
            report(
                f"prop {key[0]}/{key[1]} nodes/s",
                k["nodes_per_sec"],
                f["nodes_per_sec"],
                higher_is_better=True,
            )


def diff_search(base, fresh):
    fresh_by = {
        (c["case"], s["search"]): s
        for c in fresh.get("cases", [])
        for s in c.get("searches", [])
    }
    for c in base.get("cases", []):
        for s in c.get("searches", []):
            key = (c["case"], s["search"])
            f = fresh_by.get(key)
            if f is None:
                print(f"  {key}: dropped from fresh run")
                continue
            base_rate = s["nodes"] / s["elapsed_s"] if s["elapsed_s"] > 0 else 0.0
            fresh_rate = f["nodes"] / f["elapsed_s"] if f["elapsed_s"] > 0 else 0.0
            report(
                f"search {key[0]}/{key[1]} nodes/s",
                round(base_rate, 1),
                round(fresh_rate, 1),
                higher_is_better=True,
            )
            if f["late"] != s["late"]:
                warn(
                    f"search {key[0]}/{key[1]} objective moved: "
                    f"{s['late']} -> {f['late']} late jobs"
                )


def diff_session(base, fresh):
    for mode in ("cold", "session"):
        report(
            f"session-compare {mode} O per invocation",
            base[mode]["o_per_invocation_s"],
            fresh[mode]["o_per_invocation_s"],
            higher_is_better=False,
            unit="s",
        )
        # p99 decision latency: present only in baselines regenerated after
        # the journal landed, so guard the key
        if "o_p99_s" in base[mode] and "o_p99_s" in fresh[mode]:
            report(
                f"session-compare {mode} decision latency p99",
                base[mode]["o_p99_s"],
                fresh[mode]["o_p99_s"],
                higher_is_better=False,
                unit="s",
            )
        if fresh[mode]["n_late"] != base[mode]["n_late"]:
            warn(
                f"session-compare {mode} lateness moved: "
                f"{base[mode]['n_late']} -> {fresh[mode]['n_late']} late jobs"
            )
    report(
        "session-compare O reduction",
        base["o_reduction_pct"],
        fresh["o_reduction_pct"],
        higher_is_better=True,
        unit="%",
    )


DIFFERS = {
    "prop-compare": diff_prop,
    "search-compare": diff_search,
    "session-compare": diff_session,
}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fp:
        base = json.load(fp)
    with open(sys.argv[2]) as fp:
        fresh = json.load(fp)
    kind = base.get("bench")
    if kind != fresh.get("bench"):
        warn(f"bench kinds differ: baseline {kind!r} vs fresh {fresh.get('bench')!r}")
        return 0
    differ = DIFFERS.get(kind)
    if differ is None:
        print(f"  unknown bench kind {kind!r}: nothing to diff")
        return 0
    print(f"{kind}: {sys.argv[1]} vs {sys.argv[2]}")
    differ(base, fresh)
    return 0


if __name__ == "__main__":
    sys.exit(main())
