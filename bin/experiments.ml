(* Regenerate every table/figure of the paper's evaluation (§VI).

   Usage:
     dune exec bin/experiments.exe -- fig7
     dune exec bin/experiments.exe -- all --reps 5 --jobs 400 --out results/
     dune exec bin/experiments.exe -- fig2 --fb-jobs 300

   Each figure prints an ASCII table (and optionally writes CSV).  Shapes to
   compare against the paper are recorded in EXPERIMENTS.md. *)

open Cmdliner

let figure_of_id config ~lambdas ~id =
  match id with
  | "fig2" | "fig3" | "fig2-3" -> Expkit.Figures.fig2_3 ~config ~lambdas
  | "fig4" -> Expkit.Figures.fig4 ~config
  | "fig5" -> Expkit.Figures.fig5 ~config
  | "fig6" -> Expkit.Figures.fig6 ~config
  | "fig7" -> Expkit.Figures.fig7 ~config
  | "fig8" -> Expkit.Figures.fig8 ~config
  | "fig9" -> Expkit.Figures.fig9 ~config
  | "ablation-ordering" -> Expkit.Figures.ablation_ordering ~config
  | "ablation-cp" -> Expkit.Figures.ablation_cp ~config
  | "ablation-deferral" -> Expkit.Figures.ablation_deferral ~config
  | other -> failwith (Printf.sprintf "unknown figure %S" other)

let all_ids =
  [
    "fig2-3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
    "ablation-ordering"; "ablation-cp"; "ablation-deferral"; "ablation-lp";
    "ablation-decomp";
  ]

let run_ids ids reps jobs fb_jobs seed budget out validate lambdas trace_out
    metrics no_warm_start no_session kernel restart journal_out metrics_every
    metrics_out trace_limit =
  let journal = Option.map (fun _ -> Obs.Journal.create ()) journal_out in
  let base =
    {
      Expkit.Runner.default_config with
      Expkit.Runner.reps;
      base_seed = seed;
      solver_time_limit = budget;
      validate;
      instrument = metrics;
      warm_start = not no_warm_start;
      session = not no_session;
      kernel;
      restart;
      journal;
      metrics_every =
        Option.map (fun s -> int_of_float (1000. *. s)) metrics_every;
    }
  in
  if trace_out <> None then Obs.Trace.start ?limit:trace_limit ();
  let all_metrics = ref [] in
  List.iter
    (fun id ->
      if id = "ablation-decomp" then begin
        let t0 = Unix.gettimeofday () in
        let rows = Expkit.Decomp.run ~seed () in
        print_string (Expkit.Decomp.render rows);
        Printf.printf "(generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0);
        match out with
        | Some dir ->
            (try Unix.mkdir dir 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let path = Filename.concat dir "ablation-decomp.csv" in
            Report.Table.write_file ~path (Expkit.Decomp.to_csv rows);
            Printf.printf "wrote %s\n\n%!" path
        | None -> ()
      end
      else if id = "ablation-lp" then begin
        (* solver-vs-solver table, not a simulation figure *)
        let t0 = Unix.gettimeofday () in
        let rows = Expkit.Cp_vs_lp.run ~seed () in
        print_string (Expkit.Cp_vs_lp.render rows);
        Printf.printf "(generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0);
        match out with
        | Some dir ->
            (try Unix.mkdir dir 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let path = Filename.concat dir "ablation-lp.csv" in
            Report.Table.write_file ~path (Expkit.Cp_vs_lp.to_csv rows);
            Printf.printf "wrote %s\n\n%!" path
        | None -> ()
      end
      else begin
      let config =
        (* the Facebook comparison uses its own job count: 1000 in the paper *)
        if String.length id >= 4 && String.sub id 0 4 = "fig2" then
          { base with Expkit.Runner.n_jobs = fb_jobs }
        else { base with Expkit.Runner.n_jobs = jobs }
      in
      let t0 = Unix.gettimeofday () in
      let fig = figure_of_id config ~lambdas ~id in
      print_string (Expkit.Figures.render fig);
      Printf.printf "(generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0);
      (match
         List.filter_map
           (fun p -> p.Expkit.Runner.metrics)
           fig.Expkit.Figures.points
       with
      | [] -> ()
      | snaps ->
          all_metrics := snaps @ !all_metrics;
          if metrics then begin
            print_string
              (Report.Obs_report.summary (Obs.Metrics.merge_all snaps));
            (match Obs.Trace.dropped_by_domain () with
            | [] -> ()
            | drops ->
                List.iter
                  (fun (tid, dropped) ->
                    Printf.printf
                      "trace: domain %d dropped %d events (--trace-limit)\n"
                      tid dropped)
                  drops);
            print_newline ()
          end);
      match out with
      | Some dir ->
          (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let path = Filename.concat dir (fig.Expkit.Figures.id ^ ".csv") in
          Report.Table.write_file ~path (Expkit.Figures.to_csv fig);
          Printf.printf "wrote %s\n\n%!" path
      | None -> ()
      end)
    ids;
  (match trace_out with
  | Some path ->
      Obs.Trace.stop ();
      Obs.Trace.write ~path;
      Printf.printf "trace: %d events written to %s\n"
        (Obs.Trace.events_recorded ())
        path
  | None -> ());
  (match (journal_out, journal) with
  | Some path, Some j ->
      Obs.Journal.write j ~path;
      Printf.printf "journal: %d events written to %s\n" (Obs.Journal.events j)
        path
  | _ -> ());
  (match metrics_out with
  | Some path -> (
      match !all_metrics with
      | [] ->
          Printf.eprintf
            "warning: --metrics-out needs solver instrumentation; pass \
             --metrics\n"
      | snaps ->
          let oc = open_out path in
          output_string oc
            (Obs.Json.to_string (Obs.Metrics.to_json (Obs.Metrics.merge_all snaps)));
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics: snapshot written to %s\n" path)
  | None -> ());
  0

let ids_arg =
  let doc =
    "Figures to regenerate: fig2-3 fig4..fig9, ablation-ordering, \
     ablation-cp, ablation-deferral, or 'all'."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FIGURE" ~doc)

let reps = Arg.(value & opt int 3 & info [ "reps" ] ~doc:"Replications per point.")
let jobs = Arg.(value & opt int 200 & info [ "jobs" ] ~doc:"Jobs per synthetic run.")

let fb_jobs =
  Arg.(value & opt int 300
       & info [ "fb-jobs" ] ~doc:"Jobs per Facebook-workload run (paper: 1000).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed.")

let budget =
  Arg.(value & opt float 0.2
       & info [ "budget" ] ~doc:"CP solver time budget per invocation (s).")

let out =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~doc:"Directory for CSV output.")

let validate =
  Arg.(value & flag
       & info [ "validate" ]
           ~doc:"Run the full feasibility oracle during simulation (slow).")

let lambdas =
  Arg.(value & opt (list float) [ 0.0001; 0.0002; 0.0003; 0.0004; 0.0005 ]
       & info [ "lambdas" ] ~doc:"Arrival rates for the Facebook comparison.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace" ]
           ~doc:"Write a Chrome-trace-format JSON file covering every \
                 figure run (open in chrome://tracing or Perfetto).")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Instrument the solver and print the merged \
                 counter/histogram and per-propagator tables per figure.")

let no_warm_start =
  Arg.(value & flag
       & info [ "no-warm-start" ]
           ~doc:"Disable warm-start re-solving: cold solve on every \
                 manager invocation, as in the paper.")

let no_session =
  Arg.(value & flag
       & info [ "no-session" ]
           ~doc:"Disable the persistent solver session: rebuild the store \
                 and model on every manager invocation (the historical \
                 cold path).")

let kernel =
  let kernel_conv =
    Arg.enum
      (List.map
         (fun k -> (Cp.Propagators.kernel_to_string k, k))
         Cp.Propagators.all_kernels)
  in
  Arg.(value & opt kernel_conv Cp.Propagators.Both
       & info [ "kernel" ]
           ~doc:"Propagation kernel for every CP solve: timetable, \
                 edge-finding, both (default), or naive.")

let restart =
  let restart_conv =
    let parse s =
      match Cp.Restart.of_string s with
      | Ok p -> Ok p
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun ppf p -> Format.pp_print_string ppf (Cp.Restart.to_string p))
  in
  Arg.(value & opt restart_conv Cp.Restart.Off
       & info [ "restarts" ]
           ~doc:"Restart policy for every CP solve: off (plain DFS, \
                 default), luby[:SCALE], or geom:BASE:GROW.")

let journal_out =
  Arg.(value & opt (some string) None
       & info [ "journal" ]
           ~doc:"Write the structured decision journal (JSONL) covering \
                 every figure run to this file; audit with mrcp_audit.")

let metrics_every =
  Arg.(value & opt (some float) None
       & info [ "metrics-every" ]
           ~doc:"With --journal: append a metrics snapshot event every T \
                 seconds of virtual time.")

let metrics_out =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ]
           ~doc:"Write the final merged metrics snapshot as JSON to this \
                 file (requires --metrics).")

let trace_limit =
  Arg.(value & opt (some int) None
       & info [ "trace-limit" ]
           ~doc:"With --trace: per-domain ring-buffer capacity in events; \
                 drop counts are reported in the --metrics summary.")

let cmd =
  let expand ids =
    List.concat_map (fun id -> if id = "all" then all_ids else [ id ]) ids
  in
  let term =
    Term.(
      const (fun ids reps jobs fb_jobs seed budget out validate lambdas
                 trace_out metrics no_warm_start no_session kernel restart
                 journal_out metrics_every metrics_out trace_limit ->
          run_ids (expand ids) reps jobs fb_jobs seed budget out validate
            lambdas trace_out metrics no_warm_start no_session kernel restart
            journal_out metrics_every metrics_out trace_limit)
      $ ids_arg $ reps $ jobs $ fb_jobs $ seed $ budget $ out $ validate
      $ lambdas $ trace_out $ metrics $ no_warm_start $ no_session $ kernel
      $ restart $ journal_out $ metrics_every $ metrics_out $ trace_limit)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    term

let () = exit (Cmd.eval' cmd)
