(* Deterministic simulation testing CLI.

   Examples:
     dune exec bin/mrcp_dst.exe -- --seed 1 --count 50
     dune exec bin/mrcp_dst.exe -- --seed 7 --mutate drop-attempt-failed
     dune exec bin/mrcp_dst.exe -- --replay dst-repro-7.json

   Exit 0 when every scenario passes; 1 on a violation (after shrinking it
   to a minimal repro and writing a replayable JSON file); 2 on usage
   errors.  Fully deterministic: the same --seed/--count always explores
   the same scenarios and produces byte-identical journals. *)

open Cmdliner

let mutation_conv =
  Arg.enum
    [
      ("none", Dst.No_mutation);
      ("drop-attempt-failed", Dst.Drop_attempt_failed);
      ("drop-resource-lost", Dst.Drop_resource_lost);
    ]

let report_violation ~mutation ~shrink_fuel ~no_shrink ~out scenario message =
  Printf.printf "VIOLATION (seed %d): %s\n" scenario.Dst.seed message;
  let minimal, violation =
    if no_shrink then (scenario, message)
    else begin
      let r = Dst.shrink ~mutation ~fuel:shrink_fuel scenario ~violation:message in
      Printf.printf
        "shrunk: %d reduction steps over %d runs -> %d jobs, %d faults\n"
        r.Dst.steps r.Dst.runs
        (List.length r.Dst.minimal.Dst.jobs)
        (List.length r.Dst.minimal.Dst.faults);
      (r.Dst.minimal, r.Dst.violation)
    end
  in
  let path =
    match out with
    | Some p -> p
    | None -> Printf.sprintf "dst-repro-%d.json" scenario.Dst.seed
  in
  Dst.save minimal ~path;
  Format.printf "%a@." Dst.pp_scenario minimal;
  Printf.printf "minimal violation: %s\nrepro written to %s\n" violation path

let run seed count shrink_fuel no_shrink out replay mutation expect_violation =
  let check_one scenario =
    match Dst.check ~mutation scenario with
    | Dst.Pass { fingerprint } ->
        Printf.printf "seed %d: ok (journal %s)\n%!" scenario.Dst.seed
          fingerprint;
        true
    | Dst.Violation { message } ->
        report_violation ~mutation ~shrink_fuel ~no_shrink ~out scenario message;
        false
  in
  let all_ok =
    match replay with
    | Some path ->
        let scenario = Dst.load ~path in
        Format.printf "replaying %s:@ %a@." path Dst.pp_scenario scenario;
        check_one scenario
    | None ->
        let ok = ref true in
        (try
           for i = 0 to count - 1 do
             if not (check_one (Dst.generate ~seed:(seed + i))) then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        !ok
  in
  (* --expect-violation (mutation self-test): invert the verdict, so CI can
     assert that a deliberately broken manager is caught *)
  match (expect_violation, all_ok) with
  | false, ok -> if ok then 0 else 1
  | true, false ->
      print_endline "expected violation found";
      0
  | true, true ->
      prerr_endline "error: expected a violation but every scenario passed";
      1

let term =
  Term.(
    const run
    $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base scenario seed.")
    $ Arg.(value & opt int 20
           & info [ "count" ]
               ~doc:"Number of scenarios (seeds seed..seed+count-1).")
    $ Arg.(value & opt int 400
           & info [ "shrink-fuel" ]
               ~doc:"Max simulations to spend shrinking a violation.")
    $ Arg.(value & flag
           & info [ "no-shrink" ]
               ~doc:"Report the raw violating scenario without shrinking.")
    $ Arg.(value & opt (some string) None
           & info [ "out" ] ~doc:"Repro file path (default dst-repro-SEED.json).")
    $ Arg.(value & opt (some string) None
           & info [ "replay" ] ~doc:"Re-check a saved repro file instead of generating.")
    $ Arg.(value & opt mutation_conv Dst.No_mutation
           & info [ "mutate" ]
               ~doc:"Deliberately break a manager invariant (none, \
                     drop-attempt-failed, drop-resource-lost) to self-test \
                     the oracle.")
    $ Arg.(value & flag
           & info [ "expect-violation" ]
               ~doc:"Invert the exit status: succeed only if a violation was \
                     found (for mutation self-tests in CI)."))

let cmd =
  Cmd.v
    (Cmd.info "mrcp_dst"
       ~doc:"Deterministic simulation testing with fault injection, \
             invariant checks and shrinking")
    term

let () = exit (Cmd.eval' cmd)
