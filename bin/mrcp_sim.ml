(* Single-configuration simulation CLI.

   Examples:
     dune exec bin/mrcp_sim.exe -- --jobs 100 --lambda 0.01 --manager mrcp-rm
     dune exec bin/mrcp_sim.exe -- --workload facebook --jobs 200 \
       --lambda 0.0003 --manager minedf-wc
     dune exec bin/mrcp_sim.exe -- --jobs 50 --d-m 2 --validate -v
     dune exec bin/mrcp_sim.exe -- --jobs 40 --d-m 1.05 --metrics \
       --trace run.jsonl *)

open Cmdliner

type workload = Synthetic | Facebook

let print_metrics = function
  | Some snap -> print_string (Report.Obs_report.summary snap)
  | None ->
      print_endline
        "no metrics collected (manager without solver instrumentation)"

let print_trace_drops () =
  match Obs.Trace.dropped_by_domain () with
  | [] -> ()
  | drops ->
      List.iter
        (fun (tid, dropped) ->
          Printf.printf "trace: domain %d dropped %d events (--trace-limit)\n"
            tid dropped)
        drops

let write_metrics_out path = function
  | Some snap ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Obs.Metrics.to_json snap));
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics: snapshot written to %s\n" path
  | None ->
      Printf.eprintf
        "warning: --metrics-out needs solver instrumentation; pass --metrics\n"

let run workload manager jobs lambda e_max p s_max d_m m map_cap reduce_cap
    seed budget ordering domains deferral validate verbose replay trace_out
    metrics no_warm_start no_session kernel restart journal_out metrics_every
    metrics_out trace_limit crash_rate straggler_p straggler_factor task_fail_p
    =
  let warm_start = not no_warm_start in
  let session = not no_session in
  let chaos =
    if crash_rate = 0. && straggler_p = 0. && task_fail_p = 0. then None
    else
      Some
        {
          Opensim.Chaos.default with
          Opensim.Chaos.crash_rate;
          straggler_p;
          straggler_factor = (1.5, max 1.5 straggler_factor);
          task_failure_p = task_fail_p;
        }
  in
  let journal = Option.map (fun _ -> Obs.Journal.create ()) journal_out in
  let metrics_every =
    Option.map (fun s -> int_of_float (1000. *. s)) metrics_every
  in
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let domains =
    if domains = 0 then Cp.Portfolio.recommended_domains () else domains
  in
  let config =
    {
      Expkit.Runner.n_jobs = jobs;
      reps = 1;
      base_seed = seed;
      manager;
      ordering;
      solver_time_limit = budget;
      solver_domains = domains;
      deferral_window = deferral;
      validate;
      instrument = metrics;
      warm_start;
      session;
      kernel;
      restart;
      journal;
      metrics_every;
      chaos;
    }
  in
  if trace_out <> None then Obs.Trace.start ?limit:trace_limit ();
  let finish code =
    (match trace_out with
    | Some path ->
        Obs.Trace.stop ();
        Obs.Trace.write ~path;
        Printf.printf "trace: %d events written to %s\n"
          (Obs.Trace.events_recorded ())
          path
    | None -> ());
    (match (journal_out, journal) with
    | Some path, Some j ->
        Obs.Journal.write j ~path;
        Printf.printf "journal: %d events written to %s\n"
          (Obs.Journal.events j) path
    | _ -> ());
    code
  in
  finish
  @@
  match replay with
  | Some path -> begin
      (* replay a saved trace (see bin/workload_gen.exe) on the given cluster *)
      match Mapreduce.Trace.load ~path with
      | Error e ->
          Printf.eprintf "error loading %s: %s\n" path e;
          1
      | Ok trace_jobs ->
          let cluster =
            Mapreduce.Types.uniform_cluster ~m ~map_capacity:map_cap
              ~reduce_capacity:reduce_cap
          in
          let driver =
            match manager with
            | Expkit.Runner.Mrcp_rm | Expkit.Runner.Greedy_only ->
                let solver =
                  { Cp.Solver.default_options with Cp.Solver.ordering;
                    time_limit = budget; seed; instrument = metrics; kernel;
                    restart }
                in
                Opensim.Driver.of_mrcp
                  (Mrcp.Manager.create ~cluster
                     { Mrcp.Manager.solver; domains;
                       deferral_window = deferral; validate; warm_start;
                       session; journal })
            | Expkit.Runner.Min_edf_wc | Expkit.Runner.Edf_wc
            | Expkit.Runner.Fcfs_wc ->
                let policy =
                  match manager with
                  | Expkit.Runner.Min_edf_wc ->
                      Baselines.Slot_scheduler.Min_edf_wc
                  | Expkit.Runner.Edf_wc -> Baselines.Slot_scheduler.Edf_wc
                  | _ -> Baselines.Slot_scheduler.Fcfs_wc
                in
                Opensim.Driver.of_slot_scheduler
                  (Baselines.Slot_scheduler.create ~cluster ~policy)
          in
          let plan =
            match chaos with
            | None -> Opensim.Chaos.no_faults
            | Some c ->
                Opensim.Chaos.materialize c ~cluster ~jobs:trace_jobs
                  ~seed:(seed + 61)
          in
          let r =
            Opensim.Simulator.run ~validate ?journal ?metrics_every ~cluster
              ~chaos:plan ~driver ~jobs:trace_jobs ()
          in
          Format.printf "%a@." Opensim.Simulator.pp_results r;
          (match (r.Opensim.Simulator.map_utilization,
                  r.Opensim.Simulator.reduce_utilization) with
          | Some mu, Some ru ->
              Format.printf "utilization: map %.1f%%, reduce %.1f%%@."
                (100. *. mu) (100. *. ru)
          | _ -> ());
          if metrics then begin
            print_metrics r.Opensim.Simulator.metrics;
            print_trace_drops ()
          end;
          Option.iter
            (fun path -> write_metrics_out path r.Opensim.Simulator.metrics)
            metrics_out;
          0
    end
  | None ->
  let point =
    match workload with
    | Synthetic ->
        Expkit.Runner.run_synthetic ~m ~map_capacity:map_cap
          ~reduce_capacity:reduce_cap
          ~params:
            {
              Mapreduce.Synthetic.default with
              Mapreduce.Synthetic.e_max;
              p;
              s_max;
              d_m;
              lambda;
            }
          ~config ()
    | Facebook ->
        Expkit.Runner.run_facebook
          ~params:
            { Mapreduce.Facebook.default with Mapreduce.Facebook.lambda }
          ~config ()
  in
  print_string
    (Report.Table.render ~headers:Expkit.Runner.point_headers
       ~rows:[ Expkit.Runner.point_row point ]
       ());
  if metrics then begin
    print_metrics point.Expkit.Runner.metrics;
    print_trace_drops ()
  end;
  Option.iter
    (fun path -> write_metrics_out path point.Expkit.Runner.metrics)
    metrics_out;
  0

let workload_conv =
  Arg.enum [ ("synthetic", Synthetic); ("facebook", Facebook) ]

let manager_conv =
  Arg.enum
    [
      ("mrcp-rm", Expkit.Runner.Mrcp_rm);
      ("minedf-wc", Expkit.Runner.Min_edf_wc);
      ("edf-wc", Expkit.Runner.Edf_wc);
      ("fcfs-wc", Expkit.Runner.Fcfs_wc);
      ("greedy-only", Expkit.Runner.Greedy_only);
    ]

let ordering_conv =
  Arg.enum
    [
      ("job-id", Sched.Greedy.By_job_id);
      ("edf", Sched.Greedy.Edf);
      ("least-laxity", Sched.Greedy.Least_laxity);
    ]

let kernel_conv =
  Arg.enum
    (List.map
       (fun k -> (Cp.Propagators.kernel_to_string k, k))
       Cp.Propagators.all_kernels)

let restart_conv =
  let parse s =
    match Cp.Restart.of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Cp.Restart.to_string p))

let term =
  Term.(
    const run
    $ Arg.(value & opt workload_conv Synthetic
           & info [ "workload" ] ~doc:"synthetic (Table 3) or facebook (Table 4).")
    $ Arg.(value & opt manager_conv Expkit.Runner.Mrcp_rm
           & info [ "manager" ]
               ~doc:"mrcp-rm, minedf-wc, edf-wc, fcfs-wc or greedy-only.")
    $ Arg.(value & opt int 100 & info [ "jobs" ] ~doc:"Number of jobs.")
    $ Arg.(value & opt float 0.01 & info [ "lambda" ] ~doc:"Arrival rate, jobs/s.")
    $ Arg.(value & opt int 50 & info [ "e-max" ] ~doc:"Map-task time bound, s.")
    $ Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"P(s_j > arrival).")
    $ Arg.(value & opt int 50_000 & info [ "s-max" ] ~doc:"AR offset bound, s.")
    $ Arg.(value & opt float 5.0 & info [ "d-m" ] ~doc:"Deadline multiplier bound.")
    $ Arg.(value & opt int 50 & info [ "m" ] ~doc:"Number of resources.")
    $ Arg.(value & opt int 2 & info [ "map-cap" ] ~doc:"Map slots per resource.")
    $ Arg.(value & opt int 2 & info [ "reduce-cap" ] ~doc:"Reduce slots per resource.")
    $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
    $ Arg.(value & opt float 0.2 & info [ "budget" ] ~doc:"CP time budget (s).")
    $ Arg.(value & opt ordering_conv Sched.Greedy.Edf
           & info [ "ordering" ] ~doc:"MRCP-RM job ordering strategy.")
    $ Arg.(value & opt int 1
           & info [ "domains" ]
               ~doc:"Solver domains: 1 = sequential (deterministic), N > 1 \
                     = parallel portfolio on N OCaml domains, 0 = use all \
                     recommended domains.")
    $ Arg.(value & opt (some int) (Some 300_000)
           & info [ "deferral" ] ~doc:"Deferral window in ms (§V.E).")
    $ Arg.(value & flag & info [ "validate" ] ~doc:"Full feasibility oracle.")
    $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")
    $ Arg.(value & opt (some string) None
           & info [ "replay" ]
               ~doc:"Replay a saved workload trace (CSV) instead of generating.")
    $ Arg.(value & opt (some string) None
           & info [ "trace" ]
               ~doc:"Write a Chrome-trace-format JSON file of scheduler, \
                     search and simulator spans (open in chrome://tracing or \
                     Perfetto).")
    $ Arg.(value & flag
           & info [ "metrics" ]
               ~doc:"Instrument the solver and print counter/histogram and \
                     per-propagator fire/fail/time tables after the run.")
    $ Arg.(value & flag
           & info [ "no-warm-start" ]
               ~doc:"Disable warm-start re-solving: cold solve on every \
                     invocation, as in the paper.")
    $ Arg.(value & flag
           & info [ "no-session" ]
               ~doc:"Disable the persistent solver session: rebuild the \
                     store and model on every invocation (the historical \
                     cold path, bit-identical trajectories).")
    $ Arg.(value & opt kernel_conv Cp.Propagators.Both
           & info [ "kernel" ]
               ~doc:"Propagation kernel: timetable (incremental time table), \
                     edge-finding (Θ-tree filtering on unary-equivalent \
                     pools), both (default), or naive (pre-overhaul \
                     reference kernel).")
    $ Arg.(value & opt restart_conv Cp.Restart.Off
           & info [ "restarts" ]
               ~doc:"Restart policy for the CP search: off (plain DFS, \
                     default), luby[:SCALE] (Luby sequence of fail budgets, \
                     scale 128 if omitted), or geom:BASE:GROW (geometric).  \
                     Restarted searches record nogoods from each abandoned \
                     slice and branch with last-conflict reasoning.")
    $ Arg.(value & opt (some string) None
           & info [ "journal" ]
               ~doc:"Write the structured decision journal (JSONL, one event \
                     per admission decision, scheduling pass, SLA transition \
                     and job completion) to this file.  Feed it to \
                     mrcp_audit for per-job timelines and lateness \
                     attribution.")
    $ Arg.(value & opt (some float) None
           & info [ "metrics-every" ]
               ~doc:"With --journal: append a metrics snapshot event to the \
                     journal every T seconds of virtual time.")
    $ Arg.(value & opt (some string) None
           & info [ "metrics-out" ]
               ~doc:"Write the final metrics snapshot as JSON to this file \
                     (requires --metrics for solver instrumentation).")
    $ Arg.(value & opt (some int) None
           & info [ "trace-limit" ]
               ~doc:"With --trace: per-domain ring-buffer capacity in \
                     events; older events beyond it are dropped (drop counts \
                     are reported in the --metrics summary).")
    $ Arg.(value & opt float 0.
           & info [ "crash-rate" ]
               ~doc:"Chaos: expected resource crashes per resource per second \
                     of virtual time (Poisson hazard; crashed resources \
                     rejoin after 30-120 s unless retired).  0 disables.")
    $ Arg.(value & opt float 0.
           & info [ "straggler-p" ]
               ~doc:"Chaos: per-attempt probability that a task attempt runs \
                     inflated (a straggler).  0 disables.")
    $ Arg.(value & opt float 3.0
           & info [ "straggler-factor" ]
               ~doc:"Chaos: upper bound of the straggler inflation factor \
                     (lower bound 1.5).")
    $ Arg.(value & opt float 0.
           & info [ "task-fail-p" ]
               ~doc:"Chaos: per-attempt task failure probability (at most 2 \
                     injected failures per task; failed attempts re-execute \
                     from scratch).  0 disables."))

let cmd =
  Cmd.v
    (Cmd.info "mrcp_sim"
       ~doc:"Run one open-system MapReduce-with-SLAs simulation")
    term

let () = exit (Cmd.eval' cmd)
