(* Journal audit CLI.

   Examples:
     dune exec bin/mrcp_sim.exe -- --jobs 40 --journal run.jsonl
     dune exec bin/mrcp_audit.exe -- run.jsonl
     dune exec bin/mrcp_audit.exe -- run.jsonl --job 7
     dune exec bin/mrcp_audit.exe -- run.jsonl --check *)

open Cmdliner

let run path job check =
  match Report.Audit.of_file path with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      1
  | Ok r -> (
      match job with
      | Some id ->
          print_string (Report.Audit.render_timeline r id);
          0
      | None ->
          if not check then print_string (Report.Audit.render r);
          if Report.Audit.checks_ok r then begin
            if check then
              Printf.printf "%s: %d events, all %d cross-checks passed\n" path
                (List.length r.Report.Audit.events)
                (List.length r.Report.Audit.checks);
            0
          end
          else begin
            if check then print_string (Report.Audit.render r);
            Printf.eprintf
              "error: journal cross-checks FAILED (recomputed totals \
               disagree with run-end)\n";
            2
          end)

let term =
  Term.(
    const run
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:"Journal file written by --journal (JSONL).")
    $ Arg.(
        value
        & opt (some int) None
        & info [ "job" ]
            ~doc:"Print the full event timeline of one job instead of the \
                  report.")
    $ Arg.(
        value & flag
        & info [ "check" ]
            ~doc:"Quiet oracle mode: verify the cross-checks only, print \
                  the report only on failure.  Exit 2 when a recomputed \
                  total disagrees with the journal's run-end line."))

let cmd =
  Cmd.v
    (Cmd.info "mrcp_audit"
       ~doc:
         "Explain a simulation run from its decision journal: per-job \
          timelines, lateness attribution, decision-latency quantiles, and \
          independent recomputation of the run totals")
    term

let () = exit (Cmd.eval' cmd)
